(* Benchmark & reproduction harness.

   Running [dune exec bench/main.exe] regenerates every table and figure of
   the paper's presentation (Figures 1-7, Tables 1-4 — the paper is a
   framework paper, so these worked examples ARE its evaluation), then runs
   the quantitative "shape" experiments on the simulated machine (locality,
   parallelism), and finally a bechamel micro-benchmark suite of the
   framework's own operations. See DESIGN.md (experiment index) and
   EXPERIMENTS.md (paper-vs-measured record).

   [dune exec bench/main.exe -- --quick] skips the bechamel suite. *)

open Itf_ir
module T = Itf_core.Template
module F = Itf_core.Framework
module L = Itf_core.Legality
module Depmap = Itf_core.Depmap
module Depvec = Itf_dep.Depvec
module Intmat = Itf_mat.Intmat
module Cache = Itf_machine.Cache
module Memsim = Itf_machine.Memsim
module Json = Itf_obs.Json
module Tracer = Itf_obs.Tracer

(* Every BENCH_*.json this harness writes is versioned: bump "schema" when
   a field changes meaning so downstream comparisons refuse stale files.
   BENCH_search.json is at 5 (warm timings now report the best-timed run's
   own stats, and the unmemoized compute_* fields were added);
   BENCH_sim.json stays at 3. *)
let write_bench_json ?(schema = 3) path fields =
  let oc = open_out path in
  output_string oc
    (Json.to_string (Json.Obj (("schema", Json.Int schema) :: fields)));
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %s@." path

let section name =
  Format.printf "@.================================================================@.";
  Format.printf "%s@." name;
  Format.printf "================================================================@."

let pp_vectors ppf vs =
  List.iter (fun v -> Format.fprintf ppf " %a" Depvec.pp v) vs

(* ------------------------------------------------------------------ *)
(* Shared nests                                                        *)
(* ------------------------------------------------------------------ *)

let stencil () =
  Itf_lang.Parser.parse_nest
    "do i = 2, n - 1\n\
    \  do j = 2, n - 1\n\
    \    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + a(i, \
     j + 1)) / 5\n\
    \  enddo\n\
     enddo\n"

let matmul () =
  Itf_lang.Parser.parse_nest
    "do i = 1, n\n\
    \  do j = 1, n\n\
    \    do k = 1, n\n\
    \      A(i, j) = A(i, j) + B(i, k) * C(k, j)\n\
    \    enddo\n\
    \  enddo\n\
     enddo\n"

let sparse () =
  Itf_lang.Parser.parse_nest
    "function colstr\n\
     function rowidx\n\
     do i = 1, n\n\
    \  do j = 1, n\n\
    \    do k = colstr(j), colstr(j + 1) - 1\n\
    \      a(i, j) = a(i, j) + b(i, rowidx(k)) * c(k)\n\
    \    enddo\n\
    \  enddo\n\
     enddo\n"

let triangular () =
  Itf_lang.Parser.parse_nest
    "do i = 1, n\n  do j = i, n\n    a(i, j) = i + j\n  enddo\nenddo\n"

let lu () =
  Itf_lang.Parser.parse_nest
    "do k = 1, n\n\
    \  do i = k + 1, n\n\
    \    do j = k + 1, n\n\
    \      a(i, j) = a(i, j) - a(i, k) * a(k, j)\n\
    \    enddo\n\
    \  enddo\n\
     enddo\n"

let fig1_matrix () = Intmat.mul (Intmat.interchange 2 0 1) (Intmat.skew 2 0 1 1)

let fig7_sequence () =
  [
    T.reverse_permute ~rev:[| false; false; false |] ~perm:[| 2; 0; 1 |];
    T.block ~n:3 ~i:0 ~j:2
      ~bsize:[| Expr.var "bj"; Expr.var "bk"; Expr.var "bi" |];
    T.parallelize [| true; false; true; false; false; false |];
    T.reverse_permute ~rev:(Array.make 6 false) ~perm:[| 0; 2; 1; 3; 4; 5 |];
    T.coalesce ~n:6 ~i:0 ~j:1;
  ]

(* ------------------------------------------------------------------ *)
(* EXP-T1: Table 1 — the kernel set                                    *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "EXP-T1 | Table 1: kernel set of transformation templates";
  List.iter
    (fun (t, desc) ->
      Format.printf "%-16s %s@." (T.name t) desc;
      Format.printf "%-16s e.g. %a@." "" T.pp t)
    [
      ( T.unimodular (fig1_matrix ()),
        "n x n unimodular matrix M mapping iteration vectors" );
      ( T.reverse_permute ~rev:[| false; true |] ~perm:[| 1; 0 |],
        "reverse masked loops, then permute loop positions" );
      (T.parallelize [| true; false |], "flagged loops become pardo");
      ( T.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.var "b1"; Expr.var "b2" |],
        "tile contiguous loops i..j with block-size expressions" );
      (T.coalesce ~n:2 ~i:0 ~j:1, "collapse contiguous loops i..j into one");
      ( T.interleave ~n:2 ~i:1 ~j:1 ~isize:[| Expr.var "f" |],
        "split loops i..j into interleaved (strided) phases" );
    ]

(* ------------------------------------------------------------------ *)
(* EXP-F1: Figure 1                                                    *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "EXP-F1 | Figure 1: skew + interchange of the 5-point stencil";
  let nest = stencil () in
  Format.printf "(a) input:@.%a@." Nest.pp nest;
  let r = F.apply_exn nest [ T.unimodular (fig1_matrix ()) ] in
  Format.printf "(b) transformed, with initialization statements:@.%a@."
    Nest.pp r.F.nest;
  Format.printf
    "paper (b): do jj = 4, n+n-2 / do ii = max(2, jj-n+1), min(n-1, jj-2)@."

(* ------------------------------------------------------------------ *)
(* EXP-F2: Figure 2                                                    *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "EXP-F2 | Figure 2: interchange legality for D = {(1,-1), (+,0)}";
  (* The paper's actual program, conditional included; the analyzer
     derives D itself. *)
  let nest =
    Itf_lang.Parser.parse_nest
      "do i = 2, n - 1\n\
      \  do j = 2, n - 1\n\
      \    a(i, j) = b(j)\n\
      \    if b(j) > 0\n\
      \      b(j) = a(i - 1, j + 1)\n\
      \    endif\n\
      \  enddo\n\
       enddo\n"
  in
  Format.printf "(a) program:@.%a@." Nest.pp nest;
  let d = Itf_dep.Analysis.vectors nest in
  Format.printf "analyzer-derived D:%a  (paper: {(1,-1), (+,0)})@." pp_vectors d;
  (match L.check ~vectors:d nest [ T.interchange ~n:2 0 1 ] with
  | L.Dependence_violation { vector } ->
    Format.printf
      "(b) plain interchange: ILLEGAL — transformed vector %a is lex-negative@."
      Depvec.pp vector
  | _ -> Format.printf "(b) plain interchange: unexpected verdict@.");
  let revperm = T.reverse_permute ~rev:[| false; true |] ~perm:[| 1; 0 |] in
  match L.check ~vectors:d nest [ revperm ] with
  | L.Legal { vectors; _ } ->
    Format.printf "(c) reverse j then interchange: LEGAL — D' =%a@."
      pp_vectors vectors;
    Format.printf "paper (c): D' = {(1,1), (0,+)}@."
  | _ -> Format.printf "(c) unexpected verdict@."

(* ------------------------------------------------------------------ *)
(* EXP-T2: Table 2 — dependence-vector mapping rules                   *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "EXP-T2 | Table 2: dependence-vector mapping rules (samples)";
  let show name t inputs =
    List.iter
      (fun s ->
        let d = Depvec.of_string s in
        Format.printf "%-14s %-12s ->%a@." name s pp_vectors
          (Depmap.map_vector ~rectangular_bands:true t d))
      inputs
  in
  show "Unimodular" (T.unimodular (fig1_matrix ())) [ "(1,0)"; "(0,1)"; "(+,-)" ];
  show "ReversePerm"
    (T.reverse_permute ~rev:[| false; true |] ~perm:[| 1; 0 |])
    [ "(1,-1)"; "(+,0)"; "(0+,*)" ];
  show "Parallelize" (T.parallelize [| false; true |])
    [ "(0,1)"; "(+,+)"; "(0,0+)" ];
  show "Block"
    (T.block ~n:2 ~i:1 ~j:1 ~bsize:[| Expr.var "b" |])
    [ "(0,0)"; "(0,1)"; "(+,3)"; "(0,*)" ];
  show "Coalesce" (T.coalesce ~n:2 ~i:0 ~j:1) [ "(0,1)"; "(1,-1)"; "(0+,-)" ];
  show "Interleave"
    (T.interleave ~n:2 ~i:1 ~j:1 ~isize:[| Expr.var "f" |])
    [ "(0,0)"; "(+,0)"; "(0,1)" ]

(* ------------------------------------------------------------------ *)
(* EXP-T34: Tables 3 & 4 — code generation per template                *)
(* ------------------------------------------------------------------ *)

let table34 () =
  section
    "EXP-T34 | Tables 3-4: loop-bounds mapping and initialization statements";
  let demo name nest seq =
    Format.printf "---- %s ----@." name;
    match F.apply ~vectors:[] nest seq with
    | Ok r -> Format.printf "%a@." Nest.pp r.F.nest
    | Error v -> Format.printf "rejected: %a@." L.pp_verdict v
  in
  let rect =
    Itf_lang.Parser.parse_nest
      "do i = 1, n\n  do j = 1, m, s\n    a(i, j) = i + j\n  enddo\nenddo\n"
  in
  demo "ReversePermute (runtime step, reverse j and swap)" rect
    [ T.reverse_permute ~rev:[| false; true |] ~perm:[| 1; 0 |] ];
  demo "Parallelize both loops" rect [ T.parallelize [| true; true |] ];
  demo "Unimodular skew (steps normalized to 1 first)"
    (Itf_lang.Parser.parse_nest
       "do i = 1, n, 2\n  do j = 1, n\n    a(i, j) = i + j\n  enddo\nenddo\n")
    [ T.skew ~n:2 ~src:0 ~dst:1 ~factor:1 ];
  demo "Block a triangular nest (only non-empty tiles)" (triangular ())
    [ T.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.var "b1"; Expr.var "b2" |] ];
  demo "Coalesce both loops (div/mod delinearization)" rect
    [ T.coalesce ~n:2 ~i:0 ~j:1 ];
  demo "Interleave the inner loop by factor f" rect
    [ T.interleave ~n:2 ~i:1 ~j:1 ~isize:[| Expr.var "f" |] ]

(* ------------------------------------------------------------------ *)
(* EXP-F4: Figure 4                                                    *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "EXP-F4 | Figure 4: triangular interchange; nonlinear sparse bounds";
  let tri = triangular () in
  Format.printf "(a) triangular input:@.%a@." Nest.pp tri;
  (match F.apply ~vectors:[] tri [ T.unimodular (Intmat.interchange 2 0 1) ] with
  | Ok r -> Format.printf "(b) interchanged by Unimodular:@.%a@." Nest.pp r.F.nest
  | Error _ -> Format.printf "(b) unexpected rejection@.");
  let sp = sparse () in
  Format.printf "(c) sparse-matrix product:@.%a@." Nest.pp sp;
  (match L.check ~vectors:[] sp [ T.unimodular (Intmat.interchange 3 1 2) ] with
  | L.Bounds_violation { violations; _ } ->
    Format.printf "Unimodular interchange(j,k) rejected:@.";
    List.iter
      (fun v -> Format.printf "  %a@." Itf_core.Boundsmap.pp_violation v)
      violations
  | _ -> Format.printf "unexpected verdict@.");
  match
    F.apply ~vectors:[] sp
      [ T.reverse_permute ~rev:(Array.make 3 false) ~perm:[| 2; 0; 1 |] ]
  with
  | Ok r ->
    Format.printf "ReversePermute (i innermost) ACCEPTED:@.%a@." Nest.pp r.F.nest
  | Error _ -> Format.printf "unexpected rejection@."

(* ------------------------------------------------------------------ *)
(* EXP-F5: Figure 5                                                    *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "EXP-F5 | Figure 5: LB/UB/STEP coefficient matrices";
  let nest =
    Nest.make
      [
        Nest.loop ~step:(Expr.int 2) "i"
          Expr.(max_ (var "n") (int 3))
          (Expr.int 100);
        Nest.loop "j" Expr.one Expr.(min_ (int 2) (add (var "i") (int 512)));
        Nest.loop ~step:(Expr.var "i") "k"
          Expr.(div (Call ("sqrt", [ var "i" ])) (int 2))
          Expr.(mul (int 2) (var "j"));
      ]
      [ Stmt.Set ("x", Expr.var "k") ]
  in
  Format.printf "%a@." Nest.pp nest;
  let bm = Itf_bounds.Bmat.of_nest nest in
  Format.printf "%a@." Itf_bounds.Bmat.pp bm;
  Format.printf "type(u2, i) = %a (paper: linear)@." Itf_bounds.Btype.pp
    (Itf_bounds.Bmat.btype bm Itf_bounds.Bmat.U ~loop:1 ~wrt:0);
  Format.printf "type(l3, i) = %a (paper: nonlinear)@." Itf_bounds.Btype.pp
    (Itf_bounds.Bmat.btype bm Itf_bounds.Bmat.L ~loop:2 ~wrt:0);
  Format.printf "type(u3, j) = %a (paper: linear)@." Itf_bounds.Btype.pp
    (Itf_bounds.Bmat.btype bm Itf_bounds.Bmat.U ~loop:2 ~wrt:1);
  Format.printf "type(s3, i) = %a (paper: linear)@." Itf_bounds.Btype.pp
    (Itf_bounds.Bmat.btype bm Itf_bounds.Bmat.S ~loop:2 ~wrt:0)

(* ------------------------------------------------------------------ *)
(* EXP-F67: Figures 6 & 7                                              *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section "EXP-F67 | Figures 6-7: the matrix-multiply pipeline, stage by stage";
  let nest = matmul () in
  Format.printf "START: vectors:%a@." pp_vectors (Itf_dep.Analysis.vectors nest);
  let seq = fig7_sequence () in
  List.iteri
    (fun k t ->
      let prefix = List.filteri (fun idx _ -> idx <= k) seq in
      match F.apply nest prefix with
      | Ok r ->
        Format.printf "@.step %d: %s@.vectors:%a@." (k + 1) (T.name t)
          pp_vectors r.F.vectors;
        Format.printf "%a@." Nest.pp r.F.nest
      | Error v ->
        Format.printf "step %d unexpectedly illegal: %a@." (k + 1)
          L.pp_verdict v)
    seq;
  Format.printf
    "@.paper Figure 7 vector history:@.  (=,=,+) -> (=,+,=) -> {(=,=,=,=,+,=), (=,+,=,=,*,=)} -> unchanged ->@.  {(=,=,=,=,+,=), (=,=,+,=,*,=)} -> {(=,=,=,+,=), (=,+,=,*,=)}@."

(* ------------------------------------------------------------------ *)
(* EXP-LOC: locality shape experiment                                  *)
(* ------------------------------------------------------------------ *)

let cache_cfg = { Cache.size_bytes = 8192; line_bytes = 64; assoc = 2 }

let matmul_misses nest n =
  let env = Itf_exec.Env.create () in
  Itf_exec.Env.set_scalar env "n" n;
  List.iter
    (fun a ->
      Itf_exec.Env.declare_array env a [ (1, n); (1, n) ];
      let d = Itf_exec.Env.array_data env a in
      Array.iteri (fun k _ -> d.(k) <- k mod 7) d)
    [ "A"; "B"; "C" ];
  (Memsim.run cache_cfg env nest).Memsim.cache

let locality () =
  section "EXP-LOC | blocking improves locality (8KiB 2-way cache, 64B lines)";
  let nest = matmul () in
  let blocked b =
    (F.apply_exn nest
       [ T.block ~n:3 ~i:0 ~j:2 ~bsize:(Array.make 3 (Expr.int b)) ])
      .F.nest
  in
  Format.printf "%6s %12s %14s %14s %8s@." "n" "accesses" "misses(orig)"
    "misses(b=8)" "factor";
  List.iter
    (fun n ->
      let s0 = matmul_misses nest n in
      let s8 = matmul_misses (blocked 8) n in
      Format.printf "%6d %12d %14d %14d %7.1fx@." n s0.Cache.accesses
        s0.Cache.misses s8.Cache.misses
        (float s0.Cache.misses /. float (max 1 s8.Cache.misses)))
    [ 16; 32; 48; 64 ];
  Format.printf "@.block-size sweep at n = 48:@.";
  let s0 = matmul_misses nest 48 in
  Format.printf "%8s misses = %d@." "none" s0.Cache.misses;
  List.iter
    (fun b ->
      let s = matmul_misses (blocked b) 48 in
      Format.printf "%8d misses = %d@." b s.Cache.misses)
    [ 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* EXP-PAR: parallel speedup shape experiment                          *)
(* ------------------------------------------------------------------ *)

let parallel () =
  section "EXP-PAR | parallelization speedup (simulated machine)";
  let nest = matmul () in
  let par = (F.apply_exn nest [ T.parallelize_one ~n:3 0 ]).F.nest in
  let env = Itf_exec.Env.create () in
  Itf_exec.Env.set_scalar env "n" 24;
  Format.printf "matmul n=24, pardo i:@.";
  Format.printf "%8s %12s %10s@." "procs" "time" "speedup";
  List.iter
    (fun p ->
      let t = Itf_machine.Parallel.time ~procs:p env par in
      let s = Itf_machine.Parallel.speedup ~procs:p env par in
      Format.printf "%8d %12.0f %9.2fx@." p t s)
    [ 1; 2; 4; 8; 16; 32 ];
  let tri = triangular () in
  let tri_par = (F.apply_exn tri [ T.parallelize_one ~n:2 0 ]).F.nest in
  let env2 = Itf_exec.Env.create () in
  Itf_exec.Env.set_scalar env2 "n" 64;
  Format.printf "@.triangular nest n=64 on 8 procs:@.";
  Format.printf "%-28s speedup %5.2fx@." "pardo i (imbalanced rows)"
    (Itf_machine.Parallel.speedup ~procs:8 env2 tri_par);
  let tri_blocked =
    F.apply_exn tri
      [
        T.block ~n:2 ~i:0 ~j:0 ~bsize:[| Expr.int 4 |];
        T.parallelize [| false; true; false |];
      ]
  in
  Format.printf "%-28s speedup %5.2fx@." "block i by 4, pardo i"
    (Itf_machine.Parallel.speedup ~procs:8 env2 tri_blocked.F.nest)

(* ------------------------------------------------------------------ *)
(* EXP-COMP: composition pays                                          *)
(* ------------------------------------------------------------------ *)

let composition () =
  section "EXP-COMP | Section 2: composing unimodular stages before applying";
  let nest = stencil () in
  let stages =
    [
      T.skew ~n:2 ~src:0 ~dst:1 ~factor:1;
      T.unimodular (Intmat.interchange 2 0 1);
      T.unimodular (Intmat.skew 2 0 1 (-1));
      T.unimodular (Intmat.interchange 2 0 1);
    ]
  in
  let reduced = Itf_core.Sequence.reduce stages in
  Format.printf "sequence of %d unimodular stages reduces to %d template(s)@."
    (List.length stages) (List.length reduced);
  (match reduced with
  | [ T.Unimodular { m; _ } ] -> Format.printf "combined matrix:@.%a@." Intmat.pp m
  | _ -> ());
  let time_of f =
    let t0 = Sys.time () in
    for _ = 1 to 500 do
      ignore (f ())
    done;
    Sys.time () -. t0
  in
  let t_seq = time_of (fun () -> L.check nest stages) in
  let t_red = time_of (fun () -> L.check nest reduced) in
  Format.printf
    "500 legality checks: stage-by-stage %.3fs vs composed %.3fs (%.1fx)@."
    t_seq t_red
    (t_seq /. Float.max 1e-9 t_red)

(* ------------------------------------------------------------------ *)
(* EXP-LU: a full workout on the LU update kernel                      *)
(* ------------------------------------------------------------------ *)

let lu_demo () =
  section "EXP-LU | end-to-end workout: the LU update kernel";
  let nest =
    Itf_lang.Parser.parse_nest
      "do k = 1, n\n\
      \  do i = k + 1, n\n\
      \    do j = k + 1, n\n\
      \      a(i, j) = a(i, j) - a(i, k) * a(k, j)\n\
      \    enddo\n\
      \  enddo\n\
       enddo\n"
  in
  Format.printf "%a@." Nest.pp nest;
  let vectors = Itf_dep.Analysis.vectors nest in
  Format.printf
    "dependence vectors (triangular coupling resolved by the FM refinement):%a@."
    pp_vectors vectors;
  Format.printf "parallelizable loops: %s@."
    (String.concat ", "
       (List.map string_of_int
          (Itf_core.Queries.parallelizable_loops ~depth:3 vectors)));
  match
    F.apply nest
      [
        T.parallelize [| false; true; true |];
        T.block ~n:3 ~i:1 ~j:2 ~bsize:[| Expr.int 8; Expr.int 8 |];
      ]
  with
  | Ok r ->
    Format.printf "parallelize i,j then block them by 8: LEGAL@.%a@." Nest.pp
      r.F.nest
  | Error v -> Format.printf "unexpected: %a@." L.pp_verdict v

(* ------------------------------------------------------------------ *)
(* EXP-ABL1: trapezoid-aware blocking vs bounding-box blocking         *)
(* ------------------------------------------------------------------ *)

(* The paper's Table 4 blocking generates only non-empty tiles; the
   contrasting scheme it cites ([14]) draws a rectangular bounding box
   around a trapezoidal iteration space and visits many empty tiles. *)
let ablation_blocking () =
  section
    "EXP-ABL1 | ablation: Table 4 blocking vs rectangular bounding box (triangular nest)";
  let b = 4 in
  let tri = triangular () in
  let paper =
    (F.apply_exn ~vectors:[] tri
       [ T.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.int b; Expr.int b |] ])
      .F.nest
  in
  (* Bounding-box variant: both block loops span the full 1..n range. *)
  let naive =
    Nest.make
      [
        Nest.loop ~step:(Expr.int b) "ii" Expr.one (Expr.var "n");
        Nest.loop ~step:(Expr.int b) "jj" Expr.one (Expr.var "n");
        Nest.loop "i"
          Expr.(max_ (var "ii") (int 1))
          Expr.(min_ (add (var "ii") (int (b - 1))) (var "n"));
        Nest.loop "j"
          Expr.(max_ (var "jj") (var "i"))
          Expr.(min_ (add (var "jj") (int (b - 1))) (var "n"));
      ]
      [
        Itf_ir.Stmt.Store
          ( { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] },
            Expr.(add (var "i") (var "j")) );
      ]
  in
  let count_tiles nest n =
    (* tiles = iterations of the two outer (block) loops; non-empty =
       tiles executing at least one innermost iteration *)
    let env = Itf_exec.Env.create () in
    Itf_exec.Env.set_scalar env "n" n;
    Itf_exec.Env.declare_array env "a" [ (1, n); (1, n) ];
    let tiles = Hashtbl.create 64 in
    let nonempty = Hashtbl.create 64 in
    let outer2 = ref [||] in
    Itf_exec.Interp.run
      ~on_iteration:(fun it ->
        outer2 := [| it.(0); it.(1) |];
        Hashtbl.replace nonempty !outer2 ())
      env nest;
    ignore tiles;
    (* total tiles: enumerate the block loops alone *)
    let block_only =
      Nest.make
        (List.filteri (fun k _ -> k < 2) nest.Nest.loops)
        [ Itf_ir.Stmt.Set ("t", Expr.zero) ]
    in
    let env2 = Itf_exec.Env.create () in
    Itf_exec.Env.set_scalar env2 "n" n;
    let total = List.length (Itf_exec.Interp.iteration_order env2 block_only) in
    (total, Hashtbl.length nonempty)
  in
  Format.printf "%6s %22s %22s@." "n" "Table 4 (total/nonempty)"
    "bounding box (total/nonempty)";
  List.iter
    (fun n ->
      let pt, pn = count_tiles paper n in
      let nt, nn = count_tiles naive n in
      Format.printf "%6d %13d / %-8d %13d / %-8d@." n pt pn nt nn)
    [ 16; 32; 64 ];
  Format.printf
    "(the Table 4 scheme visits no empty tiles; the bounding box wastes ~half)@."

(* ------------------------------------------------------------------ *)
(* EXP-ABL2: precision of Table 2's exact band entries                 *)
(* ------------------------------------------------------------------ *)

let ablation_mapping_precision () =
  section
    "EXP-ABL2 | ablation: exact vs conservative Block/Coalesce/Interleave mapping";
  (* On rectangular nests the exact Table 2 entries (rectangular_bands =
     true) accept sequences the conservative widening must reject. Count
     verdict flips over a family of block+parallelize/coalesce sequences
     against matmul-like dependence sets. *)
  (* The exact entries only matter when the components before the band are
     summary values (a definitely-zero prefix stays exact either way, and a
     definitely-positive prefix decides the lex test by itself). *)
  let vector_sets =
    [
      [ Depvec.of_string "(0+,1,0)" ];
      [ Depvec.of_string "(0+,0,1)" ];
      [ Depvec.of_string "(0+,1,1)" ];
      [ Depvec.of_string "(0,0,+)" ];
      [ Depvec.of_string "(1,0,-1)" ];
      [ Depvec.of_string "(0+,1,0)"; Depvec.of_string "(0,0,+)" ];
    ]
  in
  let sequences =
    [
      [ T.block ~n:3 ~i:1 ~j:2 ~bsize:(Array.make 2 (Expr.var "b")) ];
      [ T.block ~n:3 ~i:2 ~j:2 ~bsize:[| Expr.var "b" |] ];
      [ T.coalesce ~n:3 ~i:1 ~j:2 ];
      [ T.interleave ~n:3 ~i:2 ~j:2 ~isize:[| Expr.var "f" |] ];
    ]
  in
  let verdict ~rect vectors seq =
    let vs =
      List.fold_left
        (fun vs t -> Depmap.map_set ~rectangular_bands:rect t vs)
        vectors seq
    in
    Depvec.set_may_lex_negative vs = None
  in
  let total = ref 0 and flipped = ref 0 in
  List.iter
    (fun vectors ->
      List.iter
        (fun seq ->
          incr total;
          let exact = verdict ~rect:true vectors seq in
          let cons = verdict ~rect:false vectors seq in
          if exact && not cons then incr flipped;
          assert ((not cons) || exact)
          (* conservative legal implies exact legal *))
        sequences)
    vector_sets;
  Format.printf
    "%d of %d (vector-set, sequence) combinations are accepted only thanks to@.\
     the exact rectangular-band entries of Table 2 (conservative widening@.\
     would reject them).@."
    !flipped !total

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "MICRO | bechamel benchmarks of framework operations";
  let open Bechamel in
  let nest = matmul () in
  let vectors = Itf_dep.Analysis.vectors nest in
  let seq7 = fig7_sequence () in
  let stencil_nest = stencil () in
  let m = fig1_matrix () in
  let tests =
    [
      Test.make ~name:"analysis: matmul dependence vectors"
        (Staged.stage (fun () -> Itf_dep.Analysis.vectors nest));
      Test.make ~name:"legality+codegen: fig7 5-template pipeline"
        (Staged.stage (fun () -> L.check ~vectors nest seq7));
      Test.make ~name:"depmap: fig7 vector mapping only"
        (Staged.stage (fun () ->
             List.fold_left
               (fun vs t -> Depmap.map_set ~rectangular_bands:true t vs)
               vectors seq7));
      Test.make ~name:"codegen: unimodular via Fourier-Motzkin (fig1)"
        (Staged.stage (fun () ->
             Itf_core.Codegen.apply stencil_nest (T.unimodular m)));
      Test.make ~name:"bmat: build LB/UB/STEP for the sparse nest"
        (Staged.stage (fun () -> Itf_bounds.Bmat.of_nest (sparse ())));
      Test.make ~name:"sequence: reduce 4 unimodular stages"
        (Staged.stage (fun () ->
             Itf_core.Sequence.reduce
               [
                 T.skew ~n:2 ~src:0 ~dst:1 ~factor:1;
                 T.unimodular (Intmat.interchange 2 0 1);
                 T.unimodular (Intmat.skew 2 0 1 (-1));
                 T.unimodular (Intmat.interchange 2 0 1);
               ]));
      Test.make ~name:"parser: parse the matmul source"
        (Staged.stage (fun () ->
             Itf_lang.Parser.parse_nest
               "do i = 1, n\n\
               \  do j = 1, n\n\
               \    do k = 1, n\n\
               \      A(i, j) = A(i, j) + B(i, k) * C(k, j)\n\
               \    enddo\n\
               \  enddo\n\
                enddo\n"));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg
          [ Toolkit.Instance.monotonic_clock ]
          (Test.make_grouped ~name:"" ~fmt:"%s%s" [ test ])
      in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.printf "%-52s %12.0f ns/run@." name est
          | _ -> Format.printf "%-52s (no estimate)@." name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* EXP-SEARCH: old vs new transformation search engine                 *)
(* ------------------------------------------------------------------ *)

(* Compares [Search.best] (from-root replay of every candidate) against
   [Engine.search] (incremental prefix states + canonical-sequence memo),
   untiered and two-tier (tier-0 cost-model screen + exact top-K), each
   sequential and parallel, on the same beam search. All engines are
   instrumented with the same counter (one bump per template stage
   application inside legality checking), so "template applications" is an
   implementation-independent work measure; "exact evals" counts simulator
   runs, the hot cost the two-tier screen exists to avoid. Results go to
   stdout and to BENCH_search.json in the working directory.

   This bench doubles as the regression gate CI runs: it [failwith]s if
   any engine disagrees on the winner, if a [~intern:false] run (structural
   cache keys, no objective/tier-0 memo) disagrees with the interned run,
   if the tiered parallel run is more than 1.2x slower than the tiered
   sequential run, if the tier-0 screen saves less than 3x exact
   evaluations on matmul/locality, or — given [--baseline FILE] holding a
   previously committed BENCH_search.json — if any case's new_seq_time_s
   regressed more than 10% against that baseline both in absolute time and
   normalized by the same file's old_time_s (the normalization absorbs
   hardware differences; the AND keeps one noisy denominator from faking a
   regression). *)
let search_bench ?baseline () =
  section "EXP-SEARCH | search engine: two-tier + incremental + multicore";
  let module Search = Itf_opt.Search in
  let module Engine = Itf_opt.Engine in
  let module Costmodel = Itf_opt.Costmodel in
  let module Hashcons = Itf_mat.Hashcons in
  (* Tier-0 specs mirror each case's exact objective: same cache geometry
     and parameters as [cache_misses], same procs/overhead as
     [parallel_time] (2.0 is the simulator's default spawn overhead).
     Objectives are built through [mk_obj ~memo] so the no-intern
     cross-check below can instantiate the same objective without the
     process-wide score memo. *)
  let par_spec params =
    Costmodel.Parallel { procs = 4; spawn_overhead = 2.0; params }
  in
  let cases =
    [
      ( "stencil/parallel",
        stencil (),
        (fun ~memo -> Search.parallel_time ~memo ~procs:4 ~params:[ ("n", 10) ] ()),
        par_spec [ ("n", 10) ],
        3 );
      ( "matmul/locality",
        matmul (),
        (fun ~memo -> Search.cache_misses ~memo ~params:[ ("n", 16) ] ()),
        Costmodel.Locality
          { config = cache_cfg; elem_bytes = 8; params = [ ("n", 16) ] },
        3 );
      ( "lu/parallel",
        lu (),
        (fun ~memo -> Search.parallel_time ~memo ~procs:4 ~params:[ ("n", 10) ] ()),
        par_spec [ ("n", 10) ],
        3 );
    ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* [time] plus allocation deltas (words allocated in the minor heap and
     words promoted, from [Gc.quick_stat]) — the direct measure of what
     hash-consing removes from the hot path. *)
  let time_gc f =
    let s0 = Gc.quick_stat () in
    let r, t = time f in
    let s1 = Gc.quick_stat () in
    ( r,
      t,
      s1.Gc.minor_words -. s0.Gc.minor_words,
      s1.Gc.promoted_words -. s0.Gc.promoted_words )
  in
  (* Best-of-five for the runs whose timing ratio is enforced: these
     searches finish in milliseconds, so a single GC pause or scheduler
     hiccup would otherwise dominate the ratio and fail the gate. The
     reported result (and so the stats blob in the JSON) comes from the
     best-timed run — the time and the stats describe the same run, which
     in practice is a warm one (runs 2-5 hit the process-wide memos). The
     allocation deltas come from the fifth (warm) run: by then the
     process-wide memo tables answer every repeated candidate, so they
     report the steady-state allocation of a search, not the one-time
     intern cost. *)
  let time_min f =
    let r0, t0 = time f in
    let best_r = ref r0 and best = ref t0 in
    for _ = 2 to 5 do
      let r, t = time f in
      if t < !best then begin
        best_r := r;
        best := t
      end
    done;
    (!best_r, !best)
  in
  let time_min_gc f =
    let r0, t0 = time f in
    let best_r = ref r0 and best = ref t0 in
    for _ = 2 to 4 do
      let r, t = time f in
      if t < !best then begin
        best_r := r;
        best := t
      end
    done;
    let r, t, minor, promoted = time_gc f in
    if t < !best then begin
      best_r := r;
      best := t
    end;
    (!best_r, !best, minor, promoted)
  in
  (* Parse the committed baseline up front so a malformed file fails fast,
     before minutes of benching. *)
  let baseline_cases =
    match baseline with
    | None -> None
    | Some path ->
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Json.of_string s with
      | Error e -> failwith ("--baseline " ^ path ^ ": " ^ e)
      | Ok j ->
        (match Json.member "schema" j with
        | Some (Json.Int 4) | Some (Json.Int 5) | Some (Json.Int 6) -> ()
        | _ ->
          failwith
            ("--baseline " ^ path
           ^ ": expected schema 4, 5 or 6 BENCH_search.json"));
        Some
          (Option.value ~default:[]
             (Option.bind (Json.member "cases" j) Json.to_list)))
  in
  let baseline_times name =
    Option.bind baseline_cases (fun cs ->
        Option.map
          (fun c ->
            let f k =
              match Option.bind (Json.member k c) Json.to_float with
              | Some x -> x
              | None -> failwith ("baseline case " ^ name ^ " missing " ^ k)
            in
            (f "old_time_s", f "new_seq_time_s"))
          (List.find_opt
             (fun c -> Json.member "name" c = Some (Json.String name))
             cs))
  in
  let par_domains = Itf_opt.Engine.default_domains () in
  Format.printf "parallel runs use %d domains@." par_domains;
  (* Spin the shared pool up before anything is timed: the one-time domain
     spawn cost must not be charged to the first parallel case. *)
  if par_domains > 1 then
    ignore (Itf_opt.Pool.shared ~workers:(par_domains - 1) ());
  let jsons =
    List.map
      (fun (name, nest, mk_obj, spec, steps) ->
        let objective = mk_obj ~memo:true in
        let old_, old_t, old_minor, old_promoted =
          time_gc (fun () -> Search.best ~steps nest objective)
        in
        (* Same best-of-N discipline as the tiered runs: the
           tiered-vs-untiered gate below compares warm best times on both
           sides, not a cold single shot against a best-of-five. *)
        let unt_, unt_t =
          time_min (fun () -> Engine.search ~steps ~domains:1 nest objective)
        in
        let seq_, seq_t, seq_minor, seq_promoted =
          time_min_gc (fun () ->
              Engine.search ~steps ~domains:1 ~tier0:spec nest objective)
        in
        let par_, par_t, _, _ =
          time_min_gc (fun () ->
              Engine.search ~steps ~domains:par_domains ~tier0:spec nest
                objective)
        in
        (* Cross-check: structural cache keys and no score/tier-0 memo
           must reproduce the interned winner exactly — intern ids are an
           equality accelerator, never an input to candidate ordering. *)
        let ni_, ni_t =
          time (fun () ->
              Engine.search ~steps ~domains:1 ~tier0:spec ~intern:false nest
                (mk_obj ~memo:false))
        in
        (* True-compute regime: the same two searches with the process-wide
           simulation memo disabled, so every run pays for its exact
           evaluations. The memoized times above are the warm steady state
           (what serve sees on repeat queries, where warm probes make the
           tier-0 screen pure overhead); these are what a novel query
           costs — the regime the screen exists for, and the one the
           tiered-vs-untiered wall-clock gate compares like for like. *)
        let cunt_, cunt_t =
          time_min (fun () ->
              Engine.search ~steps ~domains:1 nest (mk_obj ~memo:false))
        in
        let cseq_, cseq_t =
          time_min (fun () ->
              Engine.search ~steps ~domains:1 ~tier0:spec nest
                (mk_obj ~memo:false))
        in
        (* Tracer overhead in the regime serve runs: a fresh {e active}
           tracer per request (capture always happens when the sink is
           configured — head sampling only decides retention, so the
           sampling draw is charged here too). Compared against the
           null-tracer warm tiered run above; the gate below keeps the
           capture path honest. The last run's span forest feeds the
           BENCH_profile.txt artifact. *)
        let last_roots = ref [] in
        let trc_, trc_t =
          time_min (fun () ->
              let tracer = Itf_obs.Tracer.create () in
              ignore
                (Itf_obs.Tracer.head_keep ~sample_rate:0.5 ~fingerprint:name);
              let r =
                Engine.search ~steps ~domains:1 ~tier0:spec ~tracer nest
                  objective
              in
              last_roots := Itf_obs.Tracer.roots tracer;
              r)
        in
        let profile_rows = Itf_obs.Profile.of_spans !last_roots in
        match (old_, unt_, seq_, par_, ni_, cunt_, cseq_, trc_) with
        | Some old_, Some unt_, Some seq_, Some par_, Some ni_, Some cunt_,
          Some cseq_, Some trc_ ->
          let agree (a : Engine.outcome) (b : Engine.outcome) =
            Itf_core.Sequence.compare a.Engine.canonical b.Engine.canonical = 0
            && a.Engine.score = b.Engine.score
          in
          let same_winner =
            Itf_core.Sequence.compare
              (Itf_core.Sequence.reduce old_.Search.sequence)
              unt_.Engine.canonical
            = 0
            && old_.Search.score = unt_.Engine.score
            && agree unt_ seq_ && agree seq_ par_
          in
          if not same_winner then
            failwith (name ^ ": engines disagree on the winner");
          if not (agree unt_ cunt_ && agree seq_ cseq_) then
            failwith
              (name
             ^ ": memoized and unmemoized searches disagree on the winner");
          if not (agree seq_ trc_) then
            failwith
              (name ^ ": traced and untraced searches disagree on the winner");
          let trace_overhead = trc_t /. seq_t in
          (* The tentpole gate: an active sampled tracer must cost <= 1.1x
             the null-sink wall time. Enforced on matmul (the longest
             case); 5ms absolute floor for the same scheduler-jitter
             reason as the gates above. *)
          if
            name = "matmul/locality"
            && trace_overhead > 1.1
            && trc_t -. seq_t > 0.005
          then
            failwith
              (Printf.sprintf
                 "%s: active tracer costs %.2fx the null-sink search (limit \
                  1.1x beyond the 5ms floor)"
                 name trace_overhead);
          let no_intern_same_winner = agree seq_ ni_ in
          if not no_intern_same_winner then
            failwith
              (name
             ^ ": interned and --no-intern searches disagree on the winner");
          let stats = seq_.Engine.stats in
          let apps = stats.Itf_opt.Stats.template_applications in
          let reduction =
            float old_.Search.checked_templates /. float (max 1 apps)
          in
          let exact_untiered =
            unt_.Engine.stats.Itf_opt.Stats.objective_evaluations
          in
          let exact_tiered = stats.Itf_opt.Stats.objective_evaluations in
          let exact_reduction =
            float exact_untiered /. float (max 1 exact_tiered)
          in
          let par_vs_seq = par_t /. seq_t in
          (* The absolute term keeps the ratio gate meaningful now that
             memoized runs finish in a few milliseconds: a 1ms scheduler
             hiccup alone can exceed 1.2x. *)
          if par_vs_seq > 1.2 && par_t -. seq_t > 0.005 then
            failwith
              (Printf.sprintf
                 "%s: tiered parallel run is %.2fx the sequential time \
                  (limit 1.2x)"
                 name par_vs_seq);
          let tiered_vs_untiered = seq_t /. unt_t in
          let compute_vs_untiered = cseq_t /. cunt_t in
          (* The tiered screen exists to be cheaper than brute force; PR 8's
             headline bug was tiered sequential search running 2.4x slower
             than untiered on matmul while the cross-step cache sat cold.
             The enforced comparison is the unmemoized (compute) regime,
             where both engines pay their exact evaluations; 3ms absolute
             floor for the same reason as the par/seq gate. *)
          if compute_vs_untiered > 1.2 && cseq_t -. cunt_t > 0.003 then
            failwith
              (Printf.sprintf
                 "%s: tiered sequential compute run is %.2fx the untiered \
                  time (limit 1.2x)"
                 name compute_vs_untiered);
          (* In the warm regime the screen's probes are overhead by
             construction, but a cold cross-step cache (the PR 8 collapse
             re-keyed every entry) costs far more than that: keep a looser
             warm-ratio guard too. *)
          if tiered_vs_untiered > 1.2 && seq_t -. unt_t > 0.003 then
            failwith
              (Printf.sprintf
                 "%s: tiered sequential warm run is %.2fx the untiered time \
                  (limit 1.2x beyond the 3ms floor)"
                 name tiered_vs_untiered);
          (* Deterministic pin for the collapse itself: tiered search must
             reuse at least as many cross-step cache entries as untiered
             (it evaluates a superset of nothing — the same frontier plus
             screen survivors — so fewer hits means the screen re-keyed
             the cache). *)
          let hits (s : Itf_opt.Stats.t) =
            s.Itf_opt.Stats.legality_cache_hits
            + s.Itf_opt.Stats.score_cache_hits
          in
          if
            name = "matmul/locality"
            && hits stats < hits unt_.Engine.stats
          then
            failwith
              (Printf.sprintf
                 "%s: tiered cross-step cache hits collapsed (%d < untiered \
                  %d)"
                 name (hits stats)
                 (hits unt_.Engine.stats));
          if name = "matmul/locality" && exact_reduction < 3.0 then
            failwith
              (Printf.sprintf
                 "%s: tier-0 screen saves only %.2fx exact evaluations \
                  (%d -> %d, need >= 3x)"
                 name exact_reduction exact_untiered exact_tiered);
          (match baseline_times name with
          | None -> ()
          | Some (base_old, base_seq) ->
            let fresh_ratio = seq_t /. old_t in
            let base_ratio = base_seq /. base_old in
            (* 5ms noise floor: memoized searches run in single-digit
               milliseconds, where 10% is below scheduler jitter; the
               regressions this gate exists for (losing the memo or the
               id-keyed cache) cost tens of milliseconds. *)
            if
              fresh_ratio > base_ratio *. 1.1
              && seq_t > base_seq *. 1.1
              && seq_t -. base_seq > 0.005
            then
              failwith
                (Printf.sprintf
                   "%s: new_seq_time_s regressed >10%% vs baseline \
                    (normalized %.3f -> %.3f, absolute %.4fs -> %.4fs)"
                   name base_ratio fresh_ratio base_seq seq_t));
          Format.printf
            "%-18s old %.3fs (%d applications) | untiered %.3fs (%d \
             applications, %.1fx fewer; %d exact evals) | tiered seq %.3fs \
             (%d exact evals, %.1fx fewer; %d tier-0 pruned) | tiered par \
             %.3fs (par/seq %.2f) | same winner: %b@."
            name old_t old_.Search.checked_templates unt_t apps reduction
            exact_untiered seq_t exact_tiered exact_reduction
            stats.Itf_opt.Stats.tier0_pruned par_t par_vs_seq same_winner;
          Format.printf
            "%-18s no-intern %.3fs (same winner: %b) | alloc/run: old %.0f \
             minor words (%.0f promoted) vs warm tiered seq %.0f (%.0f)@."
            "" ni_t no_intern_same_winner old_minor old_promoted seq_minor
            seq_promoted;
          Format.printf
            "%-18s compute (no sim memo): untiered %.3fs vs tiered seq %.3fs \
             (tiered/untiered %.2f; warm %.2f)@."
            "" cunt_t cseq_t compute_vs_untiered tiered_vs_untiered;
          Format.printf
            "%-18s traced %.3fs (tracer overhead %.2fx; %d profile rows)@."
            "" trc_t trace_overhead (List.length profile_rows);
          if name = "matmul/locality" then begin
            let oc = open_out "BENCH_profile.txt" in
            let ppf = Format.formatter_of_out_channel oc in
            Format.fprintf ppf
              "self-time profile of one traced tiered matmul/locality search \
               (steps %d, domains 1)@.%a@."
              steps Itf_obs.Profile.pp
              (Itf_obs.Profile.top 20 profile_rows);
            Format.pp_print_flush ppf ();
            close_out oc
          end;
          Json.Obj
            [
              ("name", Json.String name);
              ("steps", Json.Int steps);
              ("old_time_s", Json.Float old_t);
              ( "old_template_applications",
                Json.Int old_.Search.checked_templates );
              ("old_explored", Json.Int old_.Search.explored);
              ("untiered_seq_time_s", Json.Float unt_t);
              ("new_seq_time_s", Json.Float seq_t);
              ("new_par_time_s", Json.Float par_t);
              ("speedup_seq", Json.Float (old_t /. seq_t));
              ("speedup_par", Json.Float (old_t /. par_t));
              ("template_reduction", Json.Float reduction);
              ("exact_evals_untiered", Json.Int exact_untiered);
              ("exact_evals", Json.Int exact_tiered);
              ( "tier0_evals",
                Json.Int stats.Itf_opt.Stats.tier0_evaluations );
              ("tier0_pruned", Json.Int stats.Itf_opt.Stats.tier0_pruned);
              ("exact_eval_reduction", Json.Float exact_reduction);
              ("par_vs_seq", Json.Float par_vs_seq);
              ("tiered_vs_untiered", Json.Float tiered_vs_untiered);
              ("compute_untiered_time_s", Json.Float cunt_t);
              ("compute_seq_time_s", Json.Float cseq_t);
              ("compute_vs_untiered", Json.Float compute_vs_untiered);
              ("traced_seq_time_s", Json.Float trc_t);
              ("trace_overhead", Json.Float trace_overhead);
              ("same_winner", Json.Bool same_winner);
              ("no_intern_time_s", Json.Float ni_t);
              ("no_intern_same_winner", Json.Bool no_intern_same_winner);
              ("old_minor_words", Json.Float old_minor);
              ("old_promoted_words", Json.Float old_promoted);
              ("new_seq_minor_words", Json.Float seq_minor);
              ("new_seq_promoted_words", Json.Float seq_promoted);
              ("stats_untiered", Itf_opt.Stats.to_json_value unt_.Engine.stats);
              ("stats_seq", Itf_opt.Stats.to_json_value stats);
              ("stats_par", Itf_opt.Stats.to_json_value par_.Engine.stats);
            ]
        | _ -> failwith (name ^ ": a search returned nothing"))
      cases
  in
  (* Intern/memo table health at the end of the whole suite. *)
  let intern_tables =
    List.map
      (fun s ->
        Format.printf "intern %-16s size %6d  hits %8d  misses %6d@."
          s.Hashcons.name s.Hashcons.size s.Hashcons.hits s.Hashcons.misses;
        Json.Obj
          [
            ("name", Json.String s.Hashcons.name);
            ("size", Json.Int s.Hashcons.size);
            ("hits", Json.Int s.Hashcons.hits);
            ("misses", Json.Int s.Hashcons.misses);
            ("evictions", Json.Int s.Hashcons.evictions);
          ])
      (Hashcons.stats ())
  in
  write_bench_json ~schema:6 "BENCH_search.json"
    [
      ("domains_par", Json.Int par_domains);
      ("cases", Json.List jsons);
      ("intern_tables", Json.List intern_tables);
    ]

(* ------------------------------------------------------------------ *)
(* EXP-SIM: compiled execution backend vs tree-walking interpreter     *)
(* ------------------------------------------------------------------ *)

(* Measures simulated iterations/sec of full nest executions through both
   backends — plain runs and cache-simulated (Memsim) runs, the latter
   being the objective hot path of the search engine. Each case is first
   checked differentially (identical final array state), and the compiled
   backend must not be slower than the interpreter. Results go to stdout
   and BENCH_sim.json. *)
let sim_bench () =
  section "EXP-SIM | execution backends: compiled closures vs interpreter";
  let module Compile = Itf_exec.Compile in
  let mk_env ~n arrays =
    let env = Itf_exec.Env.create () in
    Itf_exec.Env.set_scalar env "n" n;
    List.iter
      (fun a ->
        Itf_exec.Env.declare_array env a [ (1, n); (1, n) ];
        let d = Itf_exec.Env.array_data env a in
        Array.iteri (fun k _ -> d.(k) <- (k * 17) mod 23) d)
      arrays;
    env
  in
  let cases =
    [
      ("matmul", matmul (), 32, [ "A"; "B"; "C" ]);
      ("stencil", stencil (), 96, [ "a" ]);
      ("lu", lu (), 28, [ "a" ]);
    ]
  in
  (* Wall-clock rate of [f] in calls/sec, doubling reps until the batch
     takes at least 0.2 s. *)
  let rate f =
    let rec go reps =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        f ()
      done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt >= 0.2 then float reps /. dt else go (2 * reps)
    in
    go 1
  in
  Format.printf "%-8s %12s %16s %16s %9s %14s %14s %9s@." "case" "iters/run"
    "interp it/s" "compiled it/s" "speedup" "memsim run/s" "memsimC run/s"
    "speedup";
  let jsons =
    List.map
      (fun (name, nest, n, arrays) ->
        (* Differential check on fresh identical environments. *)
        let env_i = mk_env ~n arrays and env_c = mk_env ~n arrays in
        Itf_exec.Interp.run env_i nest;
        Compile.run (Compile.compile env_c nest);
        if Itf_exec.Env.snapshot env_i <> Itf_exec.Env.snapshot env_c then
          failwith (name ^ ": backends disagree on final array state");
        (* Innermost iterations of one execution. *)
        let iters = ref 0 in
        let env = mk_env ~n arrays in
        Itf_exec.Interp.run ~on_iteration:(fun _ -> incr iters) env nest;
        let iters = float !iters in
        (* Plain execution throughput (environments are reused across
           repetitions: the simulated machine is deterministic and timing
           does not depend on array contents). *)
        let interp_rps = rate (fun () -> Itf_exec.Interp.run env nest) in
        let compile_s = 1. /. rate (fun () -> ignore (Compile.compile env nest)) in
        let compiled = Compile.compile env nest in
        let compiled_rps = rate (fun () -> Compile.run compiled) in
        let speedup = compiled_rps /. interp_rps in
        (* The objective path: cache simulation attached. [run_compiled]
           re-compiles per call, exactly like one objective evaluation. *)
        let memsim_rps = rate (fun () -> ignore (Memsim.run cache_cfg env nest)) in
        let memsimc_rps =
          rate (fun () -> ignore (Memsim.run_compiled cache_cfg env nest))
        in
        let memsim_speedup = memsimc_rps /. memsim_rps in
        (* The observability tax on the objective hot path: same Memsim
           call under an active ambient tracer (fresh per call so the
           span buffer never grows without bound). The default — a null
           tracer — must cost nothing: memsimc_rps above IS the
           null-tracer rate. *)
        let memsimc_traced_rps =
          rate (fun () ->
              let tr = Tracer.create () in
              Tracer.with_ambient tr (fun () ->
                  ignore (Memsim.run_compiled cache_cfg env nest)))
        in
        let trace_overhead = (memsimc_rps /. memsimc_traced_rps) -. 1. in
        if compiled_rps < interp_rps then
          failwith (name ^ ": compiled backend slower than the interpreter");
        Format.printf "%-8s %12.0f %16.0f %16.0f %8.1fx %14.1f %14.1f %8.1fx@."
          name iters (interp_rps *. iters) (compiled_rps *. iters) speedup
          memsim_rps memsimc_rps memsim_speedup;
        Format.printf
          "%-8s compile: %.0f us/compile (amortized over %.0f iterations/run); \
           active tracer: %.1f runs/s (%.1f%% overhead)@."
          "" (compile_s *. 1e6) iters memsimc_traced_rps
          (100. *. trace_overhead);
        Json.Obj
          [
            ("name", Json.String name);
            ("n", Json.Int n);
            ("inner_iterations", Json.Float iters);
            ("interp_runs_per_s", Json.Float interp_rps);
            ("compiled_runs_per_s", Json.Float compiled_rps);
            ("interp_iters_per_s", Json.Float (interp_rps *. iters));
            ("compiled_iters_per_s", Json.Float (compiled_rps *. iters));
            ("speedup", Json.Float speedup);
            ("compile_time_us", Json.Float (compile_s *. 1e6));
            ("memsim_runs_per_s", Json.Float memsim_rps);
            ("memsim_compiled_runs_per_s", Json.Float memsimc_rps);
            ("memsim_compiled_traced_runs_per_s", Json.Float memsimc_traced_rps);
            ("trace_overhead", Json.Float trace_overhead);
            ("memsim_speedup", Json.Float memsim_speedup);
            ("backends_agree", Json.Bool true);
          ])
      cases
  in
  write_bench_json "BENCH_sim.json" [ ("cases", Json.List jsons) ]

(* ------------------------------------------------------------------ *)
(* Serve scheduler throughput (--serve)                                 *)
(* ------------------------------------------------------------------ *)

(* Throughput of the serve scheduler on a warm matmul search, with the
   response cache OFF so every request actually runs the engine against
   the shared (sharded) intern and memo tables: [clients = workers]
   threads each push [requests_per_client] blocking requests through
   [Serve.handle_line] at workers = 1 / 2 / 4, and the harness reports
   req/s and the server's own p99 request latency, plus a staged overload
   demonstration (1 worker, 1-slot queue) counting shed responses.
   Results go to BENCH_serve.json (schema 1).

   Gate: on a host with >= 4 cores, 4 workers must deliver >= 2x the
   1-worker req/s. On smaller hosts (CI containers are often 1-2 cores)
   the numbers are still emitted — with the core count, so a reader can
   judge them — but the ratio is not enforced: domains time-slicing one
   core cannot speed anything up. *)

let serve_requests_per_client = 24

let serve_bench () =
  section "serve: scheduler throughput (warm matmul, response cache off)";
  let module Serve = Itf_serve.Serve in
  let matmul_src =
    "do i = 1, n\n\
    \  do j = 1, n\n\
    \    do k = 1, n\n\
    \      A(i, j) = A(i, j) + B(i, k) * C(k, j)\n\
    \    enddo\n\
    \  enddo\n\
     enddo\n"
  in
  let request ?(steps = 2) ?(n = 12) id =
    Json.to_string
      (Json.Obj
         [
           ("id", Json.Int id);
           ("nest", Json.String matmul_src);
           ("params", Json.Obj [ ("n", Json.Int n) ]);
           ("steps", Json.Int steps);
         ])
  in
  let expect_status want line resp =
    match Json.member "status" resp with
    | Some (Json.String s) when s = want -> ()
    | _ ->
      Format.printf "FAIL: expected status %s for %s, got %s@." want line
        (Json.to_string resp);
      exit 1
  in
  (* Warm the process-wide intern tables and objective memos once, so
     every timed configuration measures the same steady state. *)
  let warm = Serve.create ~domains:1 ~max_cache:0 () in
  let line = request 0 in
  expect_status "ok" line (fst (Serve.handle_line warm line));
  let m = serve_requests_per_client in
  let run_config workers =
    let server =
      Serve.create ~domains:1 ~max_cache:0 ~workers ~queue_depth:1024 ()
    in
    let t0 = Unix.gettimeofday () in
    let client c () =
      for i = 0 to m - 1 do
        let line = request ((c * m) + i + 1) in
        expect_status "ok" line (fst (Serve.handle_line server line))
      done
    in
    let threads = List.init workers (fun c -> Thread.create (client c) ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let total = workers * m in
    let rps = float_of_int total /. wall in
    let p99 =
      Option.value ~default:0.
        (Itf_obs.Metrics.quantile
           (Itf_obs.Metrics.histogram (Serve.metrics server)
              ~buckets:Itf_obs.Metrics.duration_buckets "serve.request_us")
           0.99)
    in
    Format.printf
      "workers %d: %d requests in %.3fs = %8.1f req/s   p99 %8.0f us@."
      workers total wall rps p99;
    (workers, total, wall, rps, p99)
  in
  let configs = List.map run_config [ 1; 2; 4 ] in
  (* Overload: one worker pinned by a heavy search, a 1-slot queue filled
     behind it — every further search must be shed as "overloaded". *)
  let shed_server =
    Serve.create ~domains:1 ~max_cache:0 ~workers:1 ~queue_depth:1 ()
  in
  let busy () =
    Itf_obs.Metrics.gauge_value
      (Itf_obs.Metrics.gauge (Serve.metrics shed_server) "serve.workers.busy")
  in
  let depth () =
    Itf_obs.Metrics.gauge_value
      (Itf_obs.Metrics.gauge (Serve.metrics shed_server) "serve.queue.depth")
  in
  let spin pred = while not (pred ()) do Thread.yield () done in
  let blocker =
    Thread.create
      (fun () ->
        expect_status "ok" "blocker"
          (fst (Serve.handle_line shed_server (request ~steps:3 ~n:16 9000))))
      ()
  in
  spin (fun () -> busy () = 1.);
  let queued =
    Thread.create
      (fun () ->
        expect_status "ok" "queued"
          (fst (Serve.handle_line shed_server (request 9001))))
      ()
  in
  spin (fun () -> depth () = 1.);
  let attempted = 4 in
  for i = 1 to attempted do
    expect_status "overloaded" "shed probe"
      (fst (Serve.handle_line shed_server (request (9001 + i))))
  done;
  Thread.join blocker;
  Thread.join queued;
  let shed_counter =
    Itf_obs.Metrics.counter_value
      (Itf_obs.Metrics.counter (Serve.metrics shed_server) "serve.queue.shed")
  in
  Format.printf "overload: %d/%d probes shed while pinned (counter %d)@."
    attempted attempted shed_counter;
  let cores = Domain.recommended_domain_count () in
  let rps_of w =
    let _, _, _, rps, _ = List.find (fun (w', _, _, _, _) -> w' = w) configs in
    rps
  in
  write_bench_json ~schema:1 "BENCH_serve.json"
    [
      ("cores", Json.Int cores);
      ("requests_per_client", Json.Int m);
      ( "cases",
        Json.List
          (List.map
             (fun (workers, total, wall, rps, p99) ->
               Json.Obj
                 [
                   ("workers", Json.Int workers);
                   ("clients", Json.Int workers);
                   ("requests", Json.Int total);
                   ("wall_s", Json.Float wall);
                   ("req_per_s", Json.Float rps);
                   ("p99_us", Json.Float p99);
                 ])
             configs) );
      ( "shed",
        Json.Obj
          [
            ("attempted", Json.Int attempted);
            ("overloaded", Json.Int attempted);
            ("shed_counter", Json.Int shed_counter);
          ] );
    ];
  if shed_counter < attempted then begin
    Format.printf "FAIL: shed counter %d < %d shed responses@." shed_counter
      attempted;
    exit 1
  end;
  if cores >= 4 then begin
    let r1 = rps_of 1 and r4 = rps_of 4 in
    if r4 < 2.0 *. r1 then begin
      Format.printf
        "FAIL: 4-worker throughput %.1f req/s < 2x the 1-worker %.1f req/s \
         on a %d-core host@."
        r4 r1 cores;
      exit 1
    end;
    Format.printf "gate: 4 workers = %.2fx of 1 worker (>= 2x) OK@."
      (r4 /. r1)
  end
  else
    Format.printf
      "gate: skipped (%d core%s — scaling is not measurable here)@." cores
      (if cores = 1 then "" else "s")

let () =
  if Array.exists (( = ) "--serve") Sys.argv then begin
    serve_bench ();
    exit 0
  end;
  if Array.exists (( = ) "--search") Sys.argv then begin
    let baseline =
      let rec find = function
        | "--baseline" :: path :: _ -> Some path
        | _ :: rest -> find rest
        | [] -> None
      in
      find (Array.to_list Sys.argv)
    in
    search_bench ?baseline ();
    exit 0
  end;
  if Array.exists (( = ) "--sim") Sys.argv then begin
    sim_bench ();
    exit 0
  end;
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  table1 ();
  fig1 ();
  fig2 ();
  table2 ();
  table34 ();
  fig4 ();
  fig5 ();
  fig7 ();
  locality ();
  parallel ();
  composition ();
  lu_demo ();
  ablation_blocking ();
  ablation_mapping_precision ();
  if not quick then bechamel_suite ();
  Format.printf "@.done.@."
