(* loopt — command-line driver for the iteration-reordering framework.

   Subcommands:
     loopt show NEST.loop                  parse, analyze and display a nest
     loopt apply NEST.loop SCRIPT.seq      legality-check and transform
     loopt optimize NEST.loop ...          search for a transformation
     loopt run NEST.loop --param n=8       interpret a nest and checksum it
     loopt emit NEST.loop [-s SCRIPT]      emit a standalone C program
     loopt distribute NEST.loop            Allen-Kennedy loop distribution
     loopt trace NEST.loop [-s SCRIPT]     print the iteration-order grid
     loopt fuzz ...                        differential fuzzing harness
     loopt report TRACE [--metrics FILE]   summarize --trace-out/--metrics-out *)

open Cmdliner
module Nest = Itf_ir.Nest
module Depvec = Itf_dep.Depvec

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_nest_file path =
  match Itf_lang.Parser.parse (read_file path) with
  | prog -> Ok prog
  | exception Itf_lang.Parser.Error { line; message } ->
    Error (Printf.sprintf "%s:%d: %s" path line message)
  | exception Sys_error e -> Error e

let parse_script_file ~depth path =
  match Itf_lang.Script.parse ~depth (read_file path) with
  | seq -> Ok seq
  | exception Itf_lang.Script.Error { line; message } ->
    Error (Printf.sprintf "%s:%d: %s" path line message)
  | exception Sys_error e -> Error e


(* Subscript arity of an array as used by a nest (1 if never subscripted). *)
let array_arity (nest : Nest.t) a =
  let count = ref 1 in
  let rec expr (e : Itf_ir.Expr.t) =
    match e with
    | Load { array; index } ->
      if array = a then count := List.length index;
      List.iter expr index
    | Neg x -> expr x
    | Add (x, y) | Sub (x, y) | Mul (x, y) | Div (x, y) | Mod (x, y)
    | Min (x, y) | Max (x, y) ->
      expr x;
      expr y
    | Call (_, args) -> List.iter expr args
    | Int _ | Var _ -> ()
  in
  let rec stmt = function
    | Itf_ir.Stmt.Store ({ array; index }, rhs) ->
      if array = a then count := List.length index;
      List.iter expr index;
      expr rhs
    | Itf_ir.Stmt.Set (_, rhs) -> expr rhs
    | Itf_ir.Stmt.Guard { lhs; rhs; body; _ } ->
      expr lhs;
      expr rhs;
      List.iter stmt body
  in
  List.iter stmt (nest.Nest.inits @ nest.Nest.body);
  !count

(* --param n=32 pairs *)
let param_conv =
  let parse s =
    match String.split_on_char '=' s with
    | [ name; v ] -> (
      match int_of_string_opt v with
      | Some x -> Ok (name, x)
      | None -> Error (`Msg ("bad parameter value: " ^ s)))
    | _ -> Error (`Msg ("expected NAME=VALUE, got " ^ s))
  in
  let print ppf (n, v) = Format.fprintf ppf "%s=%d" n v in
  Arg.conv (parse, print)

let params_arg =
  Arg.(
    value
    & opt_all param_conv []
    & info [ "p"; "param" ] ~docv:"NAME=VALUE"
        ~doc:"Give a value to a symbolic parameter (repeatable).")

let nest_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"NEST" ~doc:"Loop-nest source file.")

(* ------------------------------------------------------------------ *)
(* show                                                                *)
(* ------------------------------------------------------------------ *)

let show_cmd =
  let run nest_path =
    match parse_nest_file nest_path with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok prog ->
      let nest = prog.Itf_lang.Parser.nest in
      Format.printf "== nest ==@.%a@." Nest.pp nest;
      Format.printf "== dependences ==@.";
      let deps = Itf_dep.Analysis.dependences nest in
      if deps = [] then Format.printf "(none)@."
      else
        List.iter
          (fun d -> Format.printf "%a@." Itf_dep.Analysis.pp_dependence d)
          deps;
      Format.printf "== LB/UB/STEP matrices (paper Fig. 5) ==@.%a@."
        Itf_bounds.Bmat.pp
        (Itf_bounds.Bmat.of_nest nest);
      let depth = Nest.depth nest in
      let vectors = List.map (fun d -> d.Itf_dep.Analysis.vector) deps in
      Format.printf "== queries ==@.";
      Format.printf "parallelizable loops: %s@."
        (match Itf_core.Queries.parallelizable_loops ~depth vectors with
        | [] -> "(none)"
        | ls -> String.concat ", " (List.map string_of_int ls));
      Format.printf "innermost vectorizable: %b@."
        (Itf_core.Queries.vectorizable_innermost ~depth vectors);
      Format.printf "fully permutable 0..%d: %b@." (depth - 1)
        (Itf_core.Queries.fully_permutable ~depth vectors ~i:0 ~j:(depth - 1));
      0
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Parse a nest; print it, its dependence vectors and its bound matrices.")
    Term.(const run $ nest_arg)

(* ------------------------------------------------------------------ *)
(* apply                                                               *)
(* ------------------------------------------------------------------ *)

let script_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"SCRIPT" ~doc:"Transformation-script file.")

let apply_cmd =
  let run nest_path script_path verbose =
    match parse_nest_file nest_path with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok prog -> (
      let nest = prog.Itf_lang.Parser.nest in
      match parse_script_file ~depth:(Nest.depth nest) script_path with
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
      | Ok seq -> (
        match Itf_core.Legality.check nest seq with
        | Itf_core.Legality.Legal { nest = out; vectors; stages } ->
          if verbose then
            List.iter
              (fun (s : Itf_core.Legality.stage) ->
                Format.printf "-- before step %d (%s): vectors:"
                  (s.Itf_core.Legality.index + 1)
                  (Itf_core.Template.name s.Itf_core.Legality.template);
                List.iter
                  (fun v -> Format.printf " %a" Depvec.pp v)
                  s.Itf_core.Legality.vectors_before;
                Format.printf "@.")
              stages;
          Format.printf "LEGAL@.== transformed nest ==@.%a@." Nest.pp out;
          Format.printf "== transformed dependence vectors ==@.";
          List.iter (fun v -> Format.printf "%a " Depvec.pp v) vectors;
          Format.printf "@.";
          0
        | verdict ->
          Format.printf "ILLEGAL: %a@." Itf_core.Legality.pp_verdict verdict;
          2))
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-stage dependence vectors.")
  in
  Cmd.v
    (Cmd.info "apply" ~doc:"Apply a transformation script to a nest (legality check + code generation).")
    Term.(const run $ nest_arg $ script_arg $ verbose)

(* ------------------------------------------------------------------ *)
(* optimize                                                            *)
(* ------------------------------------------------------------------ *)

let write_text_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let write_trace tracer = function
  | None -> ()
  | Some path ->
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Itf_obs.Tracer.write_jsonl oc (Itf_obs.Tracer.roots tracer))

let write_metrics metrics = function
  | None -> ()
  | Some path -> (
    match metrics with
    | None -> ()
    | Some m ->
      write_text_file path (Itf_obs.Json.to_string (Itf_obs.Metrics.dump m) ^ "\n"))

let optimize_cmd =
  let run nest_path objective params procs steps domains exact_topk tier0_only
      no_intern deadline_ms max_nodes show_stats stats_json explain trace_out
      metrics_out =
    match parse_nest_file nest_path with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok prog -> (
      let nest = prog.Itf_lang.Parser.nest in
      let tracer =
        if trace_out = None then Itf_obs.Tracer.null
        else Itf_obs.Tracer.create ()
      in
      let metrics =
        if metrics_out = None then None else Some (Itf_obs.Metrics.create ())
      in
      (* The tier-0 spec mirrors the exact objective's machine model so the
         screen ranks what the simulator will measure. [--exact-topk 0]
         disables the screen entirely (untiered exact search). *)
      let memo = not no_intern in
      let obj, tier0 =
        match objective with
        | "locality" ->
          ( Itf_opt.Search.cache_misses ?metrics ~memo ~params (),
            Itf_opt.Costmodel.Locality
              {
                config =
                  { Itf_machine.Cache.size_bytes = 8192; line_bytes = 64; assoc = 2 };
                elem_bytes = 8;
                params;
              } )
        | "parallel" ->
          ( Itf_opt.Search.parallel_time ?metrics ~memo ~procs ~params (),
            Itf_opt.Costmodel.Parallel
              { procs; spawn_overhead = 2.0; params } )
        | other ->
          Printf.eprintf "error: unknown objective %s (use locality|parallel)\n" other;
          exit 1
      in
      if tier0_only && exact_topk = 0 then begin
        Printf.eprintf "error: --tier0-only conflicts with --exact-topk 0\n";
        exit 1
      end;
      let tier0 = if exact_topk = 0 then None else Some tier0 in
      let budget =
        match (deadline_ms, max_nodes) with
        | None, None -> None
        | deadline_ms, max_nodes ->
          Some
            {
              Itf_opt.Engine.deadline_s =
                Option.map (fun ms -> ms /. 1000.) deadline_ms;
              max_nodes;
            }
      in
      match
        Itf_opt.Engine.search ~steps ?domains ~tracer ?metrics
          ~provenance:explain ?tier0 ?budget
          ~exact_topk:(max 1 exact_topk) ~tier0_only ~intern:memo nest obj
      with
      | None ->
        Printf.eprintf "error: nest could not be scored\n";
        1
      | Some
          {
            Itf_opt.Engine.sequence;
            result;
            score;
            stats;
            completion;
            rejections;
            decisions;
            _;
          } ->
        Format.printf "explored %d candidate sequences@."
          stats.Itf_opt.Stats.nodes_explored;
        (match completion with
        | Itf_opt.Engine.Complete -> ()
        | Itf_opt.Engine.Degraded { cut } ->
          Format.printf
            "DEGRADED: budget expired at %s; best found before the cut:@." cut);
        Format.printf "== best sequence (score %.1f) ==@." score;
        if sequence = [] then Format.printf "(identity)@."
        else Format.printf "%a@." Itf_core.Sequence.pp sequence;
        Format.printf "== transformed nest ==@.%a@." Nest.pp
          result.Itf_core.Framework.nest;
        if explain then begin
          Format.printf "== rejected candidates (%d) ==@."
            (List.length rejections);
          List.iter
            (fun { Itf_opt.Engine.candidate; cause } ->
              Format.printf "@[<hov 2>%a:@ %a@]@." Itf_core.Sequence.pp
                candidate Itf_opt.Engine.pp_cause cause)
            rejections;
          if decisions <> [] then begin
            Format.printf "== tier-0 screening (%d legal candidates) ==@."
              (List.length decisions);
            List.iter
              (fun (d : Itf_opt.Engine.decision) ->
                Format.printf "@[<hov 2>%a:@ score %.1f, bound %.1f -> %s@]@."
                  Itf_core.Sequence.pp d.Itf_opt.Engine.candidate
                  d.Itf_opt.Engine.tier0_score d.Itf_opt.Engine.tier0_bound
                  (Itf_opt.Engine.verdict_label d.Itf_opt.Engine.verdict))
              decisions
          end
        end;
        if show_stats then
          Format.printf "== search stats ==@.%a@." Itf_opt.Stats.pp stats;
        if stats_json then print_endline (Itf_opt.Stats.to_json stats);
        write_trace tracer trace_out;
        write_metrics metrics metrics_out;
        0)
  in
  let objective =
    Arg.(
      value
      & opt string "locality"
      & info [ "objective" ] ~docv:"OBJ" ~doc:"Objective: locality or parallel.")
  in
  let procs =
    Arg.(value & opt int 8 & info [ "procs" ] ~doc:"Simulated processors (parallel objective).")
  in
  let steps =
    Arg.(value & opt int 2 & info [ "steps" ] ~doc:"Maximum sequence length to search.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:
            "Search parallelism (OCaml domains). Defaults to the machine's \
             core count minus one; 1 forces a sequential search (same \
             result either way).")
  in
  let exact_topk =
    Arg.(
      value
      & opt int Itf_opt.Engine.default_exact_topk
      & info [ "exact-topk" ] ~docv:"K"
          ~doc:
            "Exact simulations per search step: the analytic tier-0 cost \
             model screens every legal candidate and only the K most \
             promising reach the exact simulator. 0 disables the screen \
             (every legal candidate simulated, pre-tiering behaviour).")
  in
  let tier0_only =
    Arg.(
      value & flag
      & info [ "tier0-only" ]
          ~doc:
            "Score candidates with the analytic cost model alone — no \
             exact simulation at all. Fast, but the winner is an estimate.")
  in
  let no_intern =
    Arg.(
      value & flag
      & info [ "no-intern" ]
          ~doc:
            "Disable hash-consed cache keys and score memoization: the \
             engine keys its candidate cache on structural sequence \
             equality and recomputes every objective and tier-0 estimate. \
             Same winner, slower — a differential-testing escape hatch.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Anytime wall-clock budget: stop the search after MS \
             milliseconds and print the best sequence found so far, \
             marked DEGRADED.")
  in
  let max_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:
            "Anytime node budget: stop after exploring N candidate \
             sequences and print the best found so far, marked DEGRADED.")
  in
  let show_stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print search instrumentation (cache hits, saved template applications, timings).")
  in
  let stats_json =
    Arg.(
      value & flag
      & info [ "stats-json" ]
          ~doc:"Print the search instrumentation as one JSON object on stdout.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "List every candidate the search rejected with its structured \
             reason (failed bounds precondition, lexicographically negative \
             dependence vector, unscoreable objective), plus every tier-0 \
             screening decision (estimate, admissible bound, \
             survived/screened-out/bound-pruned).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Record the search's span trace as JSON lines into FILE (see 'loopt report').")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Dump the metrics registry (rejection counters, simulator counters, engine stats) as JSON into FILE.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Search for a legal transformation sequence minimizing an objective.")
    Term.(
      const run $ nest_arg $ objective $ params_arg $ procs $ steps $ domains
      $ exact_topk $ tier0_only $ no_intern $ deadline_ms $ max_nodes
      $ show_stats $ stats_json $ explain $ trace_out $ metrics_out)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let run nest_path params =
    match parse_nest_file nest_path with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok prog ->
      if prog.Itf_lang.Parser.functions <> [] then begin
        Printf.eprintf
          "error: nests with access functions (%s) need data; 'run' does not support them\n"
          (String.concat ", " prog.Itf_lang.Parser.functions);
        exit 1
      end;
      let nest = prog.Itf_lang.Parser.nest in
      let env = Itf_exec.Env.create () in
      List.iter (fun (v, x) -> Itf_exec.Env.set_scalar env v x) params;
      let m =
        List.fold_left (fun acc (_, x) -> max acc (abs x)) 16 params
      in
      (* Declare every referenced array generously around the parameter
         magnitudes and fill deterministically. *)
      let arrays =
        List.sort_uniq compare (Nest.arrays_read nest @ Nest.arrays_written nest)
      in
      let arity a =
        let count = ref 1 in
        let rec expr (e : Itf_ir.Expr.t) =
          match e with
          | Load { array; index } ->
            if array = a then count := List.length index;
            List.iter expr index
          | Neg x -> expr x
          | Add (x, y) | Sub (x, y) | Mul (x, y) | Div (x, y) | Mod (x, y)
          | Min (x, y) | Max (x, y) ->
            expr x;
            expr y
          | Call (_, args) -> List.iter expr args
          | Int _ | Var _ -> ()
        in
        let rec stmt = function
          | Itf_ir.Stmt.Store ({ array; index }, rhs) ->
            if array = a then count := List.length index;
            List.iter expr index;
            expr rhs
          | Itf_ir.Stmt.Set (_, rhs) -> expr rhs
          | Itf_ir.Stmt.Guard { lhs; rhs; body; _ } ->
            expr lhs;
            expr rhs;
            List.iter stmt body
        in
        List.iter stmt (nest.Nest.inits @ nest.Nest.body);
        !count
      in
      List.iter
        (fun a ->
          Itf_exec.Env.declare_array env a
            (List.init (arity a) (fun _ -> (-2 * m, 3 * m)));
          let data = Itf_exec.Env.array_data env a in
          Array.iteri (fun k _ -> data.(k) <- (k * 31) mod 97) data)
        arrays;
      (try Itf_exec.Interp.run env nest with
      | Not_found ->
        Printf.eprintf "error: a symbolic parameter has no value (use --param)\n";
        exit 1);
      List.iter
        (fun (name, data) ->
          let sum = Array.fold_left ( + ) 0 data in
          Format.printf "%s: %d elements, checksum %d@." name (Array.length data) sum)
        (Itf_exec.Env.snapshot env);
      0
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Interpret a nest on synthetic data and print array checksums.")
    Term.(const run $ nest_arg $ params_arg)

(* ------------------------------------------------------------------ *)
(* emit                                                                *)
(* ------------------------------------------------------------------ *)

let emit_cmd =
  let run nest_path script params openmp =
    match parse_nest_file nest_path with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok prog -> (
      let nest = prog.Itf_lang.Parser.nest in
      let transformed =
        match script with
        | None -> Ok nest
        | Some path -> (
          match parse_script_file ~depth:(Nest.depth nest) path with
          | Error e -> Error e
          | Ok seq -> (
            match Itf_core.Legality.check nest seq with
            | Itf_core.Legality.Legal { nest = out; _ } -> Ok out
            | verdict ->
              Error (Format.asprintf "illegal script: %a" Itf_core.Legality.pp_verdict verdict)))
      in
      match transformed with
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
      | Ok out ->
        let m = List.fold_left (fun acc (_, x) -> max acc (abs x)) 16 params in
        let arrays =
          List.sort_uniq compare (Nest.arrays_read out @ Nest.arrays_written out)
        in
        let arity a =
          let r = ref 1 in
          let rec expr (e : Itf_ir.Expr.t) =
            match e with
            | Load { array; index } ->
              if array = a then r := List.length index;
              List.iter expr index
            | Neg x -> expr x
            | Add (x, y) | Sub (x, y) | Mul (x, y) | Div (x, y) | Mod (x, y)
            | Min (x, y) | Max (x, y) ->
              expr x;
              expr y
            | Call (_, args) -> List.iter expr args
            | Int _ | Var _ -> ()
          in
          let rec stmt = function
            | Itf_ir.Stmt.Store ({ array; index }, rhs) ->
              if array = a then r := List.length index;
              List.iter expr index;
              expr rhs
            | Itf_ir.Stmt.Set (_, rhs) -> expr rhs
            | Itf_ir.Stmt.Guard { lhs; rhs; body; _ } ->
              expr lhs;
              expr rhs;
              List.iter stmt body
          in
          List.iter stmt (out.Nest.inits @ out.Nest.body);
          !r
        in
        let bounds =
          List.map (fun a -> (a, List.init (arity a) (fun _ -> (-2 * m, 3 * m)))) arrays
        in
        (match Itf_emit.C.program ~openmp ~params ~bounds out with
        | src ->
          print_string src;
          0
        | exception Invalid_argument msg ->
          Printf.eprintf "error: %s\n" msg;
          1))
  in
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "s"; "script" ] ~docv:"SCRIPT"
          ~doc:"Apply this transformation script before emitting.")
  in
  let openmp =
    Arg.(value & flag & info [ "openmp" ] ~doc:"Emit OpenMP pragmas for pardo loops.")
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Emit a standalone C program for a nest (optionally transformed first).")
    Term.(const run $ nest_arg $ script $ params_arg $ openmp)

(* ------------------------------------------------------------------ *)
(* distribute                                                          *)
(* ------------------------------------------------------------------ *)

let distribute_cmd =
  let run nest_path refuse =
    match parse_nest_file nest_path with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok prog ->
      let nest = prog.Itf_lang.Parser.nest in
      let p = Itf_ext.Statement.distribute nest in
      let p = if refuse then Itf_ext.Statement.fuse_all p else p in
      Format.printf "%d nest(s):@.%a@." (List.length p) Itf_ext.Program.pp p;
      0
  in
  let refuse =
    Arg.(
      value & flag
      & info [ "refuse" ] ~doc:"Greedily fuse adjacent components back where legal.")
  in
  Cmd.v
    (Cmd.info "distribute"
       ~doc:"Loop distribution: split the body into dependence components (Allen-Kennedy).")
    Term.(const run $ nest_arg $ refuse)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let run nest_path script params =
    match parse_nest_file nest_path with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok prog -> (
      let nest = prog.Itf_lang.Parser.nest in
      let transformed =
        match script with
        | None -> Ok nest
        | Some path -> (
          match parse_script_file ~depth:(Nest.depth nest) path with
          | Error e -> Error e
          | Ok seq -> (
            match Itf_core.Legality.check nest seq with
            | Itf_core.Legality.Legal { nest = out; _ } -> Ok out
            | verdict ->
              Error
                (Format.asprintf "illegal script: %a" Itf_core.Legality.pp_verdict
                   verdict)))
      in
      match transformed with
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
      | Ok out -> (
        let env = Itf_exec.Env.create () in
        List.iter (fun (v, x) -> Itf_exec.Env.set_scalar env v x) params;
        (* a dummy store target is enough; bodies are executed, so declare
           arrays generously *)
        let m = List.fold_left (fun acc (_, x) -> max acc (abs x)) 16 params in
        List.iter
          (fun a ->
            Itf_exec.Env.declare_array env a
              (List.init (array_arity out a) (fun _ -> (-2 * m, 3 * m))))
          (List.sort_uniq compare (Nest.arrays_read out @ Nest.arrays_written out));
        match Itf_exec.Trace.ascii_order env out with
        | grid ->
          print_string grid;
          0
        | exception Invalid_argument msg ->
          Printf.eprintf "error: %s\n" msg;
          1))
  in
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "s"; "script" ] ~docv:"SCRIPT"
          ~doc:"Apply this transformation script before tracing.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the iteration-order grid of a (transformed) 1- or 2-deep nest.")
    Term.(const run $ nest_arg $ script $ params_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run seed budget backends corpus out no_shrink memsim verbose trace_out
      metrics_out =
    let backends =
      match backends with
      | [] -> [ `Interp; `Compiled ]
      | names -> (
        match
          List.map
            (fun n -> (n, Itf_check.Oracle.backend_of_name n))
            (List.concat_map (String.split_on_char ',') names)
        with
        | pairs when List.for_all (fun (_, b) -> b <> None) pairs ->
          List.filter_map snd pairs
        | pairs ->
          let bad = List.find (fun (_, b) -> b = None) pairs in
          Printf.eprintf "error: unknown backend %S (interp|compiled|c)\n"
            (fst bad);
          exit 2)
    in
    if List.mem `C backends && not (Itf_check.Oracle.cc_available ()) then
      Printf.eprintf "warning: no C compiler on PATH; skipping the C leg\n";
    (* replay the corpus first: past failures must stay fixed *)
    let corpus_failures = ref 0 in
    List.iter
      (fun dir ->
        let files =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".repro")
          |> List.sort compare
        in
        List.iter
          (fun f ->
            let path = Filename.concat dir f in
            match Itf_check.Harness.replay ~backends (Itf_check.Repro.load path) with
            | Itf_check.Oracle.Diverged ds ->
              incr corpus_failures;
              Printf.printf "corpus FAIL %s\n" path;
              Format.printf "%a" Itf_check.Harness.pp_divergences ds
            | _ -> if verbose then Printf.printf "corpus ok   %s\n" path
            | exception Itf_check.Repro.Error m ->
              incr corpus_failures;
              Printf.printf "corpus BAD  %s\n" m)
          files)
      corpus;
    let on_case =
      if verbose then
        Some
          (fun ~index ~outcome:_ ->
            if (index + 1) mod 500 = 0 then
              Printf.eprintf "... %d cases\n%!" (index + 1))
      else None
    in
    let tracer =
      if trace_out = None then Itf_obs.Tracer.null else Itf_obs.Tracer.create ()
    in
    let metrics =
      if metrics_out = None then None else Some (Itf_obs.Metrics.create ())
    in
    let report =
      Itf_check.Harness.fuzz ~backends ~check_memsim:memsim
        ~shrink:(not no_shrink) ?on_case ~tracer ?metrics ~seed ~budget ()
    in
    write_trace tracer trace_out;
    write_metrics metrics metrics_out;
    Format.printf "%a" Itf_check.Harness.pp_report report;
    List.iter
      (fun (f : Itf_check.Harness.failure) ->
        Format.printf "@.FAILURE (case %d, seed %d):@.%a" f.index seed
          Itf_check.Harness.pp_divergences f.divergences;
        let note =
          Format.asprintf "seed %d case %d@.%a" seed f.index
            Itf_check.Harness.pp_divergences f.divergences
        in
        match out with
        | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path = Filename.concat dir (Printf.sprintf "seed%d-case%d.repro" seed f.index) in
          Itf_check.Repro.save ~note path f.shrunk;
          Printf.printf "reproducer written to %s\n" path
        | None ->
          print_string (Itf_check.Repro.to_string ~note f.shrunk))
      report.Itf_check.Harness.failures;
    if report.Itf_check.Harness.failures = [] && !corpus_failures = 0 then 0
    else 1
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Random seed (the run is deterministic).")
  in
  let budget =
    Arg.(
      value & opt int 1000
      & info [ "budget" ] ~docv:"K" ~doc:"Number of generated cases.")
  in
  let backends =
    Arg.(
      value & opt_all string []
      & info [ "backends" ] ~docv:"B1,B2"
          ~doc:
            "Comma-separated backends to compare: interp, compiled, c. \
             Default: interp,compiled. The c leg needs a C compiler on PATH.")
  in
  let corpus =
    Arg.(
      value & opt_all dir []
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Replay every *.repro in DIR before fuzzing (repeatable).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write shrunken reproducers for failures into DIR.")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report failures unshrunk.")
  in
  let memsim =
    Arg.(
      value & flag
      & info [ "memsim" ]
          ~doc:"Also cross-check the two cache-simulation execution paths.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Progress output.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Record one span per fuzz case as JSON lines into FILE.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Dump per-outcome case counters as JSON into FILE.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential oracle harness: fuzz random nests and transformation \
          sequences across execution backends, confirm rejections, shrink \
          and report any divergence.")
    Term.(
      const run $ seed $ budget $ backends $ corpus $ out $ no_shrink $ memsim
      $ verbose $ trace_out $ metrics_out)

(* ------------------------------------------------------------------ *)
(* report                                                              *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let run trace metrics counters profile top =
    if trace = None && metrics = None then begin
      Printf.eprintf
        "error: nothing to report (give a trace file and/or --metrics)\n";
      2
    end
    else begin
      let rc = ref 0 in
      (match trace with
      | None -> ()
      | Some path -> (
        match String.split_on_char '\n' (read_file path) with
        | exception Sys_error e ->
          Printf.eprintf "error: %s\n" e;
          rc := 1
        | lines -> (
          (if profile then
             match Itf_obs.Profile.of_lines lines with
             | Error e ->
               Printf.eprintf "error: %s: %s\n" path e;
               rc := 1
             | Ok rows ->
               Format.printf "== profile (%s, top %d by self time) ==@.%a" path
                 top Itf_obs.Profile.pp
                 (Itf_obs.Profile.top top rows)
           else
             match Itf_obs.Report.of_lines lines with
             | Error e ->
               Printf.eprintf "error: %s: %s\n" path e;
               rc := 1
             | Ok rows ->
               Format.printf "== spans (%s) ==@.%a" path Itf_obs.Report.pp rows);
          if counters && !rc = 0 then
            match Itf_obs.Report.counters lines with
            | Error e ->
              Printf.eprintf "error: %s: %s\n" path e;
              rc := 1
            | Ok cs ->
              Format.printf "== trace counters ==@.";
              List.iter (fun (k, v) -> Format.printf "%s %d@." k v) cs)));
      (match metrics with
      | None -> ()
      | Some path -> (
        match Itf_obs.Json.of_string (String.trim (read_file path)) with
        | exception Sys_error e ->
          Printf.eprintf "error: %s\n" e;
          rc := 1
        | Error e ->
          Printf.eprintf "error: %s: %s\n" path e;
          rc := 1
        | Ok doc ->
          Format.printf "== metrics (%s) ==@.%a" path
            Itf_obs.Report.pp_metrics_file doc));
      !rc
    end
  in
  let trace =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"JSON-lines span trace written by --trace-out.")
  in
  let metrics =
    Arg.(
      value
      & opt (some file) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Metrics dump written by --metrics-out.")
  in
  let counters =
    Arg.(
      value & flag
      & info [ "counters" ]
          ~doc:"Also sum the integer span attributes across the trace.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Render the trace as a flamegraph table: per span name, call \
             count, total time and self time (total minus children), sorted \
             by self time — where the wall clock actually went.")
  in
  let top =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"N"
          ~doc:"Number of profile rows to print (with --profile).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Summarize observability artifacts: per-span time aggregates from a \
          trace, a self-time profile (--profile), and/or a metrics dump \
          rendered as a table.")
    Term.(const run $ trace $ metrics $ counters $ profile $ top)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run socket domains deadline_ms max_cache metrics_out trace_out slow_ms
      sample_rate workers queue_depth =
    let server =
      Itf_serve.Serve.create ?domains ?default_deadline_ms:deadline_ms
        ~max_cache ?metrics_out ?trace_out ~slow_ms ~sample_rate ~workers
        ~queue_depth ()
    in
    Itf_serve.Serve.run ?socket server;
    0
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Also listen on a Unix-domain socket at PATH (removed and \
             re-created), one thread per connection.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:"Search parallelism per request (OCaml domains).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline applied to requests that carry \
             none of their own.")
  in
  let max_cache =
    Arg.(
      value
      & opt int Itf_serve.Serve.default_max_cache
      & info [ "max-cache" ] ~docv:"N"
          ~doc:
            "Capacity of the LRU response cache (identical requests \
             answered without a search); 0 disables it.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Rewrite FILE after every request with the metrics registry \
             (request counters by status, cache gauges, engine and \
             simulator counters) as JSON.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Rewrite FILE after every request with the retained span traces \
             as JSON lines (see --sample-rate).")
  in
  let slow_ms =
    Arg.(
      value
      & opt float Itf_serve.Serve.default_slow_ms
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-request threshold: a request at or above MS of wall time \
             (or any non-ok request) enters the slow log reported by \
             {\"op\": \"status\"} and always retains its span trace.")
  in
  let sample_rate =
    Arg.(
      value & opt float 1.
      & info [ "sample-rate" ] ~docv:"R"
          ~doc:
            "Head-sampling rate for span-trace retention, in [0,1]. The \
             keep/drop decision is a deterministic hash of the request \
             fingerprint, so reruns retain identical traces; slow and \
             non-ok requests are always retained regardless of R.")
  in
  let workers =
    Arg.(
      value
      & opt int Itf_serve.Serve.default_workers
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Number of requests served concurrently (worker domains from \
             the shared pool). With 1 (the default) responses come back \
             in request order; above 1 they complete out of order under \
             load and clients correlate by \"id\". Payloads are \
             byte-identical either way.")
  in
  let queue_depth =
    Arg.(
      value
      & opt int Itf_serve.Serve.default_queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission-queue capacity: searches arriving while N are \
             already waiting are shed immediately with status \
             \"overloaded\" instead of stalling. Introspection ops are \
             never shed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived search daemon: one JSON request per line on \
          stdin (and optionally a Unix socket), one JSON response per \
          line on stdout. Requests are scheduled onto a bounded pool of \
          worker domains (--workers) behind an admission queue \
          (--queue-depth); consecutive requests share the process-wide \
          memo tables, so repeated searches are answered warm.")
    Term.(
      const run $ socket $ domains $ deadline_ms $ max_cache $ metrics_out
      $ trace_out $ slow_ms $ sample_rate $ workers $ queue_depth)

let () =
  let doc = "iteration-reordering loop transformation framework (PLDI'92 reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "loopt" ~doc)
          [
            show_cmd; apply_cmd; optimize_cmd; run_cmd; emit_cmd;
            distribute_cmd; trace_cmd; fuzz_cmd; report_cmd; serve_cmd;
          ]))
