(* Paper Appendix A (Figures 6-7): drive matrix multiply through the
   five-template sequence — ReversePermute, Block, Parallelize,
   ReversePermute, Coalesce — printing the dependence vectors and the loop
   nest after every step, exactly the shape of the paper's Figure 7 table.

   Run with: dune exec examples/matmul_pipeline.exe *)

open Itf_ir
module T = Itf_core.Template
module F = Itf_core.Framework

let matmul_src =
  "do i = 1, n\n\
  \  do j = 1, n\n\
  \    do k = 1, n\n\
  \      A(i, j) = A(i, j) + B(i, k) * C(k, j)\n\
  \    enddo\n\
  \  enddo\n\
   enddo\n"

let sequence =
  [
    ( "ReversePermute perm=[3 1 2] (make j outermost)",
      T.reverse_permute ~rev:[| false; false; false |] ~perm:[| 2; 0; 1 |] );
    ( "Block bsize=[bj bk bi]",
      T.block ~n:3 ~i:0 ~j:2
        ~bsize:[| Expr.var "bj"; Expr.var "bk"; Expr.var "bi" |] );
    ( "Parallelize loops jj and ii",
      T.parallelize [| true; false; true; false; false; false |] );
    ( "ReversePermute swap kk and ii",
      T.reverse_permute ~rev:(Array.make 6 false) ~perm:[| 0; 2; 1; 3; 4; 5 |] );
    ("Coalesce jj and ii into one pardo", T.coalesce ~n:6 ~i:0 ~j:1);
  ]

let print_vectors vs =
  List.iter (fun v -> Format.printf " %a" Itf_dep.Depvec.pp v) vs;
  Format.printf "@."

let () =
  let nest = Itf_lang.Parser.parse_nest matmul_src in
  Format.printf "== Figure 6: input matrix multiply ==@.%a@." Nest.pp nest;
  Format.printf "START vectors:";
  print_vectors (Itf_dep.Analysis.vectors nest);
  Format.printf "@.";

  (* Walk the pipeline one template at a time so every intermediate stage
     is visible (Figure 7's rows). *)
  let full = List.map snd sequence in
  let r = F.apply_exn nest full in
  List.iteri
    (fun k (label, _) ->
      let prefix = List.filteri (fun idx _ -> idx <= k) full in
      let stage = F.apply_exn nest prefix in
      Format.printf "== after step %d: %s ==@." (k + 1) label;
      Format.printf "vectors:";
      print_vectors stage.F.vectors;
      Format.printf "%a@." Nest.pp stage.F.nest)
    sequence;

  (* Validate end-to-end semantics with concrete sizes. *)
  let params = [ ("n", 9); ("bi", 2); ("bj", 3); ("bk", 4) ] in
  let run ?(pardo_order = `Forward) nest =
    let env = Itf_exec.Env.create () in
    List.iter (fun (v, x) -> Itf_exec.Env.set_scalar env v x) params;
    List.iter
      (fun a ->
        Itf_exec.Env.declare_array env a [ (1, 9); (1, 9) ];
        let d = Itf_exec.Env.array_data env a in
        Array.iteri (fun k _ -> d.(k) <- (Hashtbl.hash (a, k) mod 19) - 9) d)
      [ "A"; "B"; "C" ];
    Itf_exec.Interp.run ~pardo_order env nest;
    Itf_exec.Env.snapshot env
  in
  let same_forward = run nest = run r.F.nest in
  let same_shuffled = run nest = run ~pardo_order:(`Shuffle 3) r.F.nest in
  Format.printf
    "semantics preserved (n=9, bj=3, bk=4, bi=2): forward %b, shuffled pardo %b@."
    same_forward same_shuffled
