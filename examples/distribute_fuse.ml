(* Statement-level transformations (paper Section 6 future work): loop
   distribution splits a recurrence away from parallel work, fusion merges
   conformable loops back when legal, and unrolling widens the innermost
   body.

   Run with: dune exec examples/distribute_fuse.exe *)

open Itf_ir
module Statement = Itf_ext.Statement
module Program = Itf_ext.Program
module Queries = Itf_core.Queries
module Analysis = Itf_dep.Analysis

let src =
  "do i = 1, n\n\
  \  a(i) = b(i) + 1\n\
  \  c(i) = a(i - 1) * 2\n\
  \  d(i) = c(i) + a(i)\n\
   enddo\n"

let () =
  let nest = Itf_lang.Parser.parse_nest src in
  Format.printf "== input (one loop, three statements) ==@.%a@." Nest.pp nest;
  Format.printf "parallelizable as-is: %b@.@."
    (Queries.parallelizable (Analysis.vectors nest) 0);

  (* Distribution: one nest per dependence component, in order. *)
  let distributed = Statement.distribute nest in
  Format.printf "== distributed (%d nests) ==@.%a@." (List.length distributed)
    Program.pp distributed;
  List.iteri
    (fun k n ->
      Format.printf "nest %d parallelizable: %b@." (k + 1)
        (Queries.parallelizable (Analysis.vectors n) 0))
    distributed;
  Format.printf "@.";

  (* Fusion: greedily merge adjacent nests back where legal. *)
  let refused = Statement.fuse_all distributed in
  Format.printf "== after maximal refusion (%d nests) ==@.%a@."
    (List.length refused) Program.pp refused;

  (* Unrolling the first distributed nest. *)
  let unrolled = Statement.unroll ~factor:4 (List.hd distributed) in
  Format.printf "== first nest unrolled by 4 (main + remainder) ==@.%a@."
    Program.pp unrolled;

  (* Everything is validated against the interpreter. *)
  let run p =
    let env = Itf_exec.Env.create () in
    Itf_exec.Env.set_scalar env "n" 12;
    List.iter
      (fun a ->
        Itf_exec.Env.declare_array env a [ (0, 13) ];
        let d = Itf_exec.Env.array_data env a in
        Array.iteri (fun k _ -> d.(k) <- (k * 7) mod 23) d)
      [ "a"; "b"; "c"; "d" ];
    Program.run env p;
    Itf_exec.Env.snapshot env
  in
  let reference = run [ nest ] in
  Format.printf "distributed ok: %b; refused ok: %b; unrolled-first ok: %b@."
    (run distributed = reference)
    (run refused = reference)
    (run (unrolled @ List.tl distributed) = reference)
