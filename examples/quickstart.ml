(* Quickstart: build a nest, test transformations for legality, generate
   code — the framework's core loop in ~60 lines.

   Run with: dune exec examples/quickstart.exe *)

open Itf_ir
module T = Itf_core.Template
module F = Itf_core.Framework
module L = Itf_core.Legality

let () =
  (* A nest can be built with the API or parsed from text. *)
  let nest =
    Itf_lang.Parser.parse_nest
      "do i = 1, n\n  do j = 1, n\n    a(i, j) = a(i - 1, j + 1) + 1\n  enddo\nenddo\n"
  in
  Format.printf "== input nest ==@.%a@." Nest.pp nest;

  (* The dependence analyzer runs automatically inside the legality test,
     but we can look at its result directly. *)
  let vectors = Itf_dep.Analysis.vectors nest in
  Format.printf "dependence vectors:";
  List.iter (fun v -> Format.printf " %a" Itf_dep.Depvec.pp v) vectors;
  Format.printf "@.@.";

  (* Transformations are values, independent of the nest: build a few
     candidates and test them all (paper Section 5). *)
  let candidates =
    [
      ("interchange", [ T.interchange ~n:2 0 1 ]);
      ("reverse j then interchange", [ T.reversal ~n:2 1; T.interchange ~n:2 0 1 ]);
      ("parallelize outer", [ T.parallelize_one ~n:2 0 ]);
      ("parallelize inner", [ T.parallelize_one ~n:2 1 ]);
      ( "block 4x4 then parallelize blocks",
        [
          T.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.int 4; Expr.int 4 |];
          T.parallelize [| false; true; false; false |];
        ] );
    ]
  in
  List.iter
    (fun (name, seq) ->
      match F.apply nest seq with
      | Ok _ -> Format.printf "%-36s LEGAL@." name
      | Error verdict ->
        Format.printf "%-36s ILLEGAL (%s)@." name
          (match verdict with
          | L.Dependence_violation { vector } ->
            Format.asprintf "vector %a" Itf_dep.Depvec.pp vector
          | L.Bounds_violation _ -> "bounds preconditions"
          | L.Legal _ -> assert false))
    candidates;

  (* Generate code for one of the legal ones. *)
  Format.printf "@.== code for 'reverse j then interchange' ==@.";
  let r =
    F.apply_exn nest [ T.reversal ~n:2 1; T.interchange ~n:2 0 1 ]
  in
  Format.printf "%a@." Nest.pp r.F.nest;
  Format.printf "transformed vectors:";
  List.iter (fun v -> Format.printf " %a" Itf_dep.Depvec.pp v) r.F.vectors;
  Format.printf "@."
