(* Paper Figure 4(c): the dense x sparse (CSR) matrix product whose k-loop
   bounds are nonlinear functions of j. A Unimodular interchange of j and k
   is rejected by the bounds preconditions, but ReversePermute legally
   moves i to the innermost position because the k bounds are invariant in
   i — the paper's argument for tracking precise bound-type information.

   Run with: dune exec examples/sparse_reverse_permute.exe *)

open Itf_ir
module T = Itf_core.Template
module F = Itf_core.Framework
module L = Itf_core.Legality

let src =
  "function colstr\n\
   function rowidx\n\
   do i = 1, n\n\
  \  do j = 1, n\n\
  \    do k = colstr(j), colstr(j + 1) - 1\n\
  \      a(i, j) = a(i, j) + b(i, rowidx(k)) * c(k)\n\
  \    enddo\n\
  \  enddo\n\
   enddo\n"

(* A tiny CSR matrix: 4 columns, 6 nonzeros. *)
let colstr = [| 1; 3; 4; 6; 7 |]

let rowidx = [| 2; 4; 1; 2; 3; 4 |]

let run nest =
  let env = Itf_exec.Env.create () in
  let n = 4 in
  Itf_exec.Env.set_scalar env "n" n;
  Itf_exec.Env.declare_function env "colstr" (function
    | [ j ] -> colstr.(j - 1)
    | _ -> invalid_arg "colstr");
  Itf_exec.Env.declare_function env "rowidx" (function
    | [ k ] -> rowidx.(k - 1)
    | _ -> invalid_arg "rowidx");
  Itf_exec.Env.declare_array env "a" [ (1, n); (1, n) ];
  Itf_exec.Env.declare_array env "b" [ (1, n); (1, n) ];
  Itf_exec.Env.declare_array env "c" [ (1, 6) ];
  let fill name =
    let d = Itf_exec.Env.array_data env name in
    Array.iteri (fun k _ -> d.(k) <- (Hashtbl.hash (name, k) mod 9) + 1) d
  in
  List.iter fill [ "b"; "c" ];
  Itf_exec.Interp.run env nest;
  Array.copy (Itf_exec.Env.array_data env "a")

let () =
  let prog = Itf_lang.Parser.parse src in
  let nest = prog.Itf_lang.Parser.nest in
  Format.printf "== Figure 4(c): input ==@.%a@." Nest.pp nest;
  Format.printf "== bound matrices: note the nonlinear k-loop entries ==@.%a@.@."
    Itf_bounds.Bmat.pp
    (Itf_bounds.Bmat.of_nest nest);

  (* Attempt 1: Unimodular interchange of j and k. *)
  (match
     L.check nest [ T.unimodular (Itf_mat.Intmat.interchange 3 1 2) ]
   with
  | L.Bounds_violation { violations; _ } ->
    Format.printf "Unimodular interchange(j, k): REJECTED@.";
    List.iter
      (fun v -> Format.printf "  %a@." Itf_core.Boundsmap.pp_violation v)
      violations
  | _ -> Format.printf "Unimodular interchange(j, k): unexpectedly accepted@.");
  Format.printf "@.";

  (* Attempt 2: ReversePermute moving i innermost (i -> position 2). *)
  let move_i_in =
    T.reverse_permute ~rev:(Array.make 3 false) ~perm:[| 2; 0; 1 |]
  in
  (match F.apply nest [ move_i_in ] with
  | Ok r ->
    Format.printf "ReversePermute i -> innermost: LEGAL@.%a@." Nest.pp r.F.nest;
    Format.printf "results identical on CSR data: %b@."
      (run nest = run r.F.nest)
  | Error _ -> Format.printf "ReversePermute i -> innermost: unexpectedly rejected@.");

  (* And the j/k interchange is still caught by ReversePermute's own
     preconditions — the order of j and k genuinely cannot be swapped. *)
  match F.apply nest [ T.interchange ~n:3 1 2 ] with
  | Error (L.Bounds_violation _) ->
    Format.printf "ReversePermute interchange(j, k): rejected as it must be@."
  | _ -> Format.printf "ReversePermute interchange(j, k): unexpected verdict@."
