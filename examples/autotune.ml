(* The paper's future-work direction (Section 6): use the framework inside
   an automatic transformation system. Beam search over template sequences
   optimizes (a) simulated cache misses of a column-major traversal and
   (b) simulated parallel time of matrix multiply; every candidate goes
   through the uniform legality test, and the loop nest itself is only
   rewritten once a winner is chosen (Section 5's separation argument).

   Run with: dune exec examples/autotune.exe *)

open Itf_ir
module Search = Itf_opt.Search
module F = Itf_core.Framework

let column_major =
  "do i = 1, n\n  do j = 1, n\n    a(j, i) = a(j, i) + 1\n  enddo\nenddo\n"

let matmul =
  "do i = 1, n\n\
  \  do j = 1, n\n\
  \    do k = 1, n\n\
  \      A(i, j) = A(i, j) + B(i, k) * C(k, j)\n\
  \    enddo\n\
  \  enddo\n\
   enddo\n"

let report label nest objective ~steps =
  Format.printf "== %s ==@." label;
  let baseline = objective (F.apply_exn nest []) in
  match Itf_opt.Engine.search ~steps nest objective with
  | None -> Format.printf "could not score the nest@."
  | Some { Itf_opt.Engine.sequence; result; score; stats; _ } ->
    Format.printf "explored %d sequences; objective %.0f -> %.0f@."
      stats.Itf_opt.Stats.nodes_explored baseline score;
    if sequence = [] then Format.printf "best: keep the nest as is@."
    else Format.printf "best sequence:@.%a@." Itf_core.Sequence.pp sequence;
    Format.printf "transformed nest:@.%a@.@." Nest.pp result.F.nest

(* The hyperplane (wavefront) synthesizer: when no loop is parallelizable
   as-is, a unimodular change of basis can expose parallelism. *)
let wavefront_demo () =
  Format.printf "== wavefront synthesis: 5-point stencil ==@.";
  let nest =
    Itf_lang.Parser.parse_nest
      "do i = 2, n - 1\n\
      \  do j = 2, n - 1\n\
      \    a(i, j) = (a(i - 1, j) + a(i, j - 1)) / 2\n\
      \  enddo\n\
       enddo\n"
  in
  let vectors = Itf_dep.Analysis.vectors nest in
  Format.printf "parallelizable loops before: %s@."
    (match Itf_core.Queries.parallelizable_loops ~depth:2 vectors with
    | [] -> "(none)"
    | ls -> String.concat ", " (List.map string_of_int ls));
  match Itf_opt.Hyperplane.wavefront nest with
  | None -> Format.printf "no wavefront found@."
  | Some (seq, result) ->
    Format.printf "synthesized sequence:@.%a@." Itf_core.Sequence.pp seq;
    Format.printf "transformed nest:@.%a@." Nest.pp result.F.nest

let () =
  let cm = Itf_lang.Parser.parse_nest column_major in
  report "locality: column-major traversal, 8 KiB cache" cm
    (Search.cache_misses ~params:[ ("n", 48) ] ())
    ~steps:1;
  let mm = Itf_lang.Parser.parse_nest matmul in
  report "parallelism: matmul on 8 simulated processors" mm
    (Search.parallel_time ~procs:8 ~params:[ ("n", 10) ] ())
    ~steps:2;
  report "locality: matmul, 8 KiB cache (expect blocking or interchange)" mm
    (Search.cache_misses ~params:[ ("n", 32) ] ())
    ~steps:1;
  wavefront_demo ()
