(* Data-locality motivation: measure simulated cache misses of matrix
   multiply before and after blocking, across matrix sizes — the classic
   effect the Block template exists for (paper Section 1).

   Run with: dune exec examples/locality_blocking.exe *)

open Itf_ir
module T = Itf_core.Template
module F = Itf_core.Framework
module Cache = Itf_machine.Cache
module Memsim = Itf_machine.Memsim

let matmul () =
  Itf_lang.Parser.parse_nest
    "do i = 1, n\n\
    \  do j = 1, n\n\
    \    do k = 1, n\n\
    \      A(i, j) = A(i, j) + B(i, k) * C(k, j)\n\
    \    enddo\n\
    \  enddo\n\
     enddo\n"

let cache = { Cache.size_bytes = 8192; line_bytes = 64; assoc = 2 }

let misses nest n =
  let env = Itf_exec.Env.create () in
  Itf_exec.Env.set_scalar env "n" n;
  List.iter
    (fun a ->
      Itf_exec.Env.declare_array env a [ (1, n); (1, n) ];
      let d = Itf_exec.Env.array_data env a in
      Array.iteri (fun k _ -> d.(k) <- k mod 7) d)
    [ "A"; "B"; "C" ];
  let r = Memsim.run cache env nest in
  (r.Memsim.cache.Cache.misses, r.Memsim.cache.Cache.accesses)

let () =
  let nest = matmul () in
  let block b =
    (F.apply_exn nest
       [ T.block ~n:3 ~i:0 ~j:2 ~bsize:(Array.make 3 (Expr.int b)) ])
      .F.nest
  in
  Format.printf
    "Simulated cache: %d KiB, %d-byte lines, %d-way LRU; 8-byte elements@.@."
    (cache.Cache.size_bytes / 1024)
    cache.Cache.line_bytes cache.Cache.assoc;
  Format.printf "%6s %12s %14s %14s %10s@." "n" "accesses" "misses(orig)"
    "misses(b=8)" "factor";
  List.iter
    (fun n ->
      let m0, acc = misses nest n in
      let m8, _ = misses (block 8) n in
      Format.printf "%6d %12d %14d %14d %9.1fx@." n acc m0 m8
        (float m0 /. float (max 1 m8)))
    [ 16; 24; 32; 48; 64 ];
  Format.printf "@.Block-size sweep at n = 48:@.";
  Format.printf "%6s %14s@." "b" "misses";
  let m0, _ = misses nest 48 in
  Format.printf "%6s %14d@." "none" m0;
  List.iter
    (fun b ->
      let m, _ = misses (block b) 48 in
      Format.printf "%6d %14d@." b m)
    [ 2; 4; 8; 16; 32 ]
