(* Paper Figure 1: transform the 5-point stencil by skewing j with respect
   to i and interchanging, producing the wavefront form of Figure 1(b) —
   then validate semantics by interpreting both versions, and parallelize
   the inner wavefront loop.

   Run with: dune exec examples/stencil_skew.exe *)

open Itf_ir
module T = Itf_core.Template
module F = Itf_core.Framework
module Env = Itf_exec.Env
module Intmat = Itf_mat.Intmat

let stencil_src =
  "do i = 2, n - 1\n\
  \  do j = 2, n - 1\n\
  \    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + a(i, j \
   + 1)) / 5\n\
  \  enddo\n\
   enddo\n"

let run_stencil ?(pardo_order = `Forward) nest n =
  let env = Env.create () in
  Env.set_scalar env "n" n;
  Env.declare_array env "a" [ (1, n); (1, n) ];
  let data = Env.array_data env "a" in
  Array.iteri (fun k _ -> data.(k) <- (k * 37) mod 1000) data;
  Itf_exec.Interp.run ~pardo_order env nest;
  Array.copy (Env.array_data env "a")

let () =
  let nest = Itf_lang.Parser.parse_nest stencil_src in
  Format.printf "== Figure 1(a): input ==@.%a@." Nest.pp nest;
  Format.printf "dependence vectors:";
  List.iter (fun v -> Format.printf " %a" Itf_dep.Depvec.pp v)
    (Itf_dep.Analysis.vectors nest);
  Format.printf "@.@.";

  (* The combined skew+interchange matrix of Figure 1. *)
  let m = Intmat.mul (Intmat.interchange 2 0 1) (Intmat.skew 2 0 1 1) in
  let r = F.apply_exn nest [ T.unimodular m ] in
  Format.printf "== Figure 1(b): skewed and interchanged ==@.%a@." Nest.pp
    r.F.nest;

  (* Semantic check on a concrete grid. *)
  let reference = run_stencil nest 20 in
  let transformed = run_stencil r.F.nest 20 in
  Format.printf "semantics preserved on a 20x20 grid: %b@.@."
    (reference = transformed);

  (* Visualize the traversal orders on a small grid: row-major before,
     anti-diagonal wavefronts after. *)
  let show label nest =
    let env = Env.create () in
    Env.set_scalar env "n" 7;
    Env.declare_array env "a" [ (1, 7); (1, 7) ];
    Format.printf "%s@.%s@." label (Itf_exec.Trace.ascii_order env nest)
  in
  show "original traversal order (n = 7):" nest;
  show "transformed traversal order (rows = jj wavefronts):" r.F.nest;

  (* The wavefront payoff: after skewing, the inner loop carries no
     dependence and can be parallelized; the original inner loop cannot. *)
  let inner_par_before = F.apply nest [ T.parallelize_one ~n:2 1 ] in
  let whole =
    F.apply nest [ T.unimodular m; T.parallelize [| false; true |] ]
  in
  Format.printf "parallelize inner loop of the original: %s@."
    (match inner_par_before with Ok _ -> "LEGAL" | Error _ -> "ILLEGAL");
  (match whole with
  | Ok r2 ->
    Format.printf "parallelize inner loop after skew+interchange: LEGAL@.";
    let par = run_stencil ~pardo_order:(`Shuffle 7) r2.F.nest 20 in
    Format.printf
      "parallel wavefront result matches (adversarial pardo order): %b@."
      (par = reference)
  | Error _ -> Format.printf "unexpected: wavefront parallelization rejected@.")
