(* Tests for the statement-level extension (lib/ext): statement dependence
   graphs, loop distribution, fusion, and unrolling — the paper's Section 6
   future work. *)

open Itf_ir
module Analysis = Itf_dep.Analysis
module Program = Itf_ext.Program
module Statement = Itf_ext.Statement
module Env = Itf_exec.Env

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ld a ix : Expr.t = Expr.Load { array = a; index = ix }
let st a ix rhs = Stmt.Store ({ array = a; index = ix }, rhs)
let i_ = Expr.var "i"

(* Oracle: run a program on deterministically filled arrays. *)
let run_program ?(pardo_order = `Forward) ~params (p : Program.t) =
  let env = Env.create () in
  List.iter (fun (v, x) -> Env.set_scalar env v x) params;
  let arities =
    List.sort_uniq compare (List.concat_map Builders.array_arities p)
  in
  List.iter
    (fun (a, arity) ->
      Env.declare_array env a (List.init arity (fun _ -> (-16, 32)));
      Builders.fill_array a (Env.array_data env a))
    arities;
  Program.run ~pardo_order env p;
  Env.snapshot env

let program_equivalent ?pardo_order ~params p1 p2 =
  run_program ~params p1 = run_program ?pardo_order ~params p2

(* ------------------------------------------------------------------ *)
(* Statement dependence graph                                          *)
(* ------------------------------------------------------------------ *)

let two_stmt_nest () =
  (* S0: a(i) = b(i) + 1 ; S1: c(i) = a(i-1) * 2 : carried flow S0 -> S1 *)
  Nest.make
    [ Nest.loop "i" Expr.one (Expr.var "n") ]
    [
      st "a" [ i_ ] (Expr.add (ld "b" [ i_ ]) Expr.one);
      st "c" [ i_ ] (Expr.mul (ld "a" [ Expr.sub i_ Expr.one ]) (Expr.int 2));
    ]

let test_statement_edges () =
  let edges = Analysis.statement_edges (two_stmt_nest ()) in
  check_bool "carried S0->S1" true
    (List.exists
       (fun e -> e.Analysis.src = 0 && e.Analysis.dst = 1 && e.Analysis.carried)
       edges);
  check_bool "no S1->S0" true
    (not (List.exists (fun e -> e.Analysis.src = 1 && e.Analysis.dst = 0) edges))

let test_statement_edges_loop_independent () =
  (* S0 writes a(i), S1 reads a(i): same-iteration flow, not carried. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [ st "a" [ i_ ] (ld "b" [ i_ ]); st "c" [ i_ ] (ld "a" [ i_ ]) ]
  in
  let edges = Analysis.statement_edges nest in
  check_bool "loop-independent S0->S1" true
    (List.exists
       (fun e ->
         e.Analysis.src = 0 && e.Analysis.dst = 1 && not e.Analysis.carried)
       edges)

(* ------------------------------------------------------------------ *)
(* Distribution                                                        *)
(* ------------------------------------------------------------------ *)

let test_distribute_splits () =
  let p = Statement.distribute (two_stmt_nest ()) in
  check_int "two nests" 2 (List.length p);
  (* source statement's nest first (it feeds the second) *)
  check_bool "S0 first" true
    (match (List.hd p).Nest.body with
    | [ Stmt.Store ({ array = "a"; _ }, _) ] -> true
    | _ -> false);
  check_bool "semantics preserved" true
    (program_equivalent ~params:[ ("n", 9) ] [ two_stmt_nest () ] p)

let test_distribute_cycle_stays () =
  (* a(i) = c(i-1) ; c(i) = a(i-1): mutual recurrence, one component. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        st "a" [ i_ ] (ld "c" [ Expr.sub i_ Expr.one ]);
        st "c" [ i_ ] (ld "a" [ Expr.sub i_ Expr.one ]);
      ]
  in
  check_int "single component" 1 (List.length (Statement.distribute nest))

let test_distribute_reversed_order () =
  (* S0 reads what S1 wrote LAST iteration: edge S1 -> S0 carried; the
     distribution must emit S1's nest first. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        st "a" [ i_ ] (ld "c" [ Expr.sub i_ Expr.one ]);
        st "c" [ i_ ] (ld "b" [ i_ ]);
      ]
  in
  let p = Statement.distribute nest in
  check_int "two nests" 2 (List.length p);
  check_bool "c-nest first" true
    (match (List.hd p).Nest.body with
    | [ Stmt.Store ({ array = "c"; _ }, _) ] -> true
    | _ -> false);
  check_bool "semantics preserved" true
    (program_equivalent ~params:[ ("n", 9) ] [ nest ] p)

let test_distribute_enables_parallelization () =
  (* After distribution, the recurrence-free component can be
     parallelized even though the fused loop cannot. *)
  let nest = two_stmt_nest () in
  check_bool "fused loop not parallelizable" false
    (Itf_core.Queries.parallelizable (Analysis.vectors nest) 0);
  let p = Statement.distribute nest in
  check_bool "every distributed nest parallelizable" true
    (List.for_all
       (fun n -> Itf_core.Queries.parallelizable (Analysis.vectors n) 0)
       p)

let test_distribute_three_way () =
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        st "a" [ i_ ] (ld "b" [ i_ ]);
        st "c" [ i_ ] (ld "a" [ Expr.sub i_ Expr.one ]);
        st "d" [ i_ ] (ld "c" [ Expr.sub i_ Expr.one ]);
      ]
  in
  let p = Statement.distribute nest in
  check_int "three nests" 3 (List.length p);
  check_bool "semantics preserved" true
    (program_equivalent ~params:[ ("n", 8) ] [ nest ] p)

let test_distribute_guarded () =
  (* A guarded statement is one distribution unit; its accesses still
     build edges. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        st "a" [ i_ ] (ld "b" [ i_ ]);
        Stmt.Guard
          {
            lhs = ld "b" [ i_ ];
            rel = Stmt.Gt;
            rhs = Expr.zero;
            body = [ st "c" [ i_ ] (ld "a" [ Expr.sub i_ Expr.one ]) ];
          };
      ]
  in
  let p = Statement.distribute nest in
  check_int "two nests" 2 (List.length p);
  check_bool "a-producer first" true
    (match (List.hd p).Nest.body with
    | [ Stmt.Store ({ array = "a"; _ }, _) ] -> true
    | _ -> false);
  check_bool "semantics preserved" true
    (program_equivalent ~params:[ ("n", 9) ] [ nest ] p)

(* ------------------------------------------------------------------ *)
(* Fusion                                                              *)
(* ------------------------------------------------------------------ *)

let mk1 body = Nest.make [ Nest.loop "i" Expr.one (Expr.var "n") ] body

let test_fuse_legal () =
  let n1 = mk1 [ st "a" [ i_ ] (ld "b" [ i_ ]) ] in
  let n2 = mk1 [ st "c" [ i_ ] (ld "a" [ i_ ]) ] in
  (match Statement.fuse n1 n2 with
  | Ok fused ->
    check_int "two statements" 2 (List.length fused.Nest.body);
    check_bool "semantics preserved" true
      (program_equivalent ~params:[ ("n", 9) ] [ n1; n2 ] [ fused ])
  | Error e -> Alcotest.failf "expected fusion to succeed: %s" e);
  (* backward same-iteration read (a(i-1)) is also fine *)
  let n3 = mk1 [ st "c" [ i_ ] (ld "a" [ Expr.sub i_ Expr.one ]) ] in
  check_bool "backward read fuses" true
    (match Statement.fuse n1 n3 with Ok _ -> true | Error _ -> false)

let test_fuse_preventing () =
  (* second loop reads a(i+1), which the first loop writes at a later
     iteration: fusing would read the new value too early. *)
  let n1 = mk1 [ st "a" [ i_ ] (ld "b" [ i_ ]) ] in
  let n2 = mk1 [ st "c" [ i_ ] (ld "a" [ Expr.add i_ Expr.one ]) ] in
  (match Statement.fuse n1 n2 with
  | Ok fused ->
    (* if it had fused, the oracle would catch the difference *)
    check_bool "would be wrong" false
      (program_equivalent ~params:[ ("n", 9) ] [ n1; n2 ] [ fused ]);
    Alcotest.fail "fusion should have been rejected"
  | Error e -> check_bool "diagnostic" true (Builders.contains ~sub:"dependence" e))

let test_fuse_header_mismatch () =
  let n1 = mk1 [ st "a" [ i_ ] (ld "b" [ i_ ]) ] in
  let n2 =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.sub (Expr.var "n") Expr.one) ]
      [ st "c" [ i_ ] (ld "a" [ i_ ]) ]
  in
  check_bool "rejected" true
    (match Statement.fuse n1 n2 with Error _ -> true | Ok _ -> false)

let test_fuse_all_roundtrip () =
  (* distribute then fuse_all: semantics preserved; when no fusion-
     preventing dependence re-forms, the result refuses into one nest. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [ st "a" [ i_ ] (ld "b" [ i_ ]); st "c" [ i_ ] (ld "a" [ i_ ]) ]
  in
  let p = Statement.distribute nest in
  let refused = Statement.fuse_all p in
  check_int "refused into one nest" 1 (List.length refused);
  check_bool "semantics preserved" true
    (program_equivalent ~params:[ ("n", 9) ] [ nest ] refused)

(* ------------------------------------------------------------------ *)
(* Unrolling                                                           *)
(* ------------------------------------------------------------------ *)

let test_unroll_basic () =
  let nest = mk1 [ st "a" [ i_ ] (Expr.mul i_ i_) ] in
  let p = Statement.unroll ~factor:3 nest in
  check_int "main + remainder" 2 (List.length p);
  check_int "main body replicated" 3 (List.length (List.hd p).Nest.body);
  List.iter
    (fun n ->
      check_bool
        (Printf.sprintf "equivalent at n=%d" n)
        true
        (program_equivalent ~params:[ ("n", n) ] [ nest ] p))
    [ 0; 1; 2; 3; 7; 9; 12 ]

let test_unroll_strided_and_negative () =
  let strided =
    Nest.make
      [ Nest.loop ~step:(Expr.int 2) "i" Expr.one (Expr.var "n") ]
      [ st "a" [ i_ ] (Expr.add i_ Expr.one) ]
  in
  let reversed =
    Nest.make
      [ Nest.loop ~step:(Expr.int (-1)) "i" (Expr.var "n") Expr.one ]
      [ st "a" [ i_ ] (ld "a" [ Expr.min_ (Expr.add i_ Expr.one) (Expr.var "n") ]) ]
  in
  List.iter
    (fun nest ->
      let p = Statement.unroll ~factor:2 nest in
      List.iter
        (fun n ->
          check_bool
            (Printf.sprintf "equivalent at n=%d" n)
            true
            (program_equivalent ~params:[ ("n", n) ] [ nest ] p))
        [ 1; 2; 5; 8 ])
    [ strided; reversed ]

let test_unroll_outer_loops_kept () =
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n"); Nest.loop "j" Expr.one (Expr.var "n") ]
      [ st "a" [ i_; Expr.var "j" ] (Expr.add i_ (Expr.var "j")) ]
  in
  let p = Statement.unroll ~factor:4 nest in
  check_bool "outer loop unchanged" true
    (List.for_all (fun n -> List.length n.Nest.loops = 2) p);
  check_bool "equivalent" true (program_equivalent ~params:[ ("n", 10) ] [ nest ] p)

let test_unroll_validation () =
  let nest = mk1 [ st "a" [ i_ ] i_ ] in
  check_bool "factor 0 rejected" true
    (match Statement.unroll ~factor:0 nest with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_int "factor 1 is identity" 1 (List.length (Statement.unroll ~factor:1 nest));
  let runtime_step =
    Nest.make
      [ Nest.loop ~step:(Expr.var "s") "i" Expr.one (Expr.var "n") ]
      [ st "a" [ i_ ] i_ ]
  in
  check_bool "runtime step rejected" true
    (match Statement.unroll ~factor:2 runtime_step with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "ext"
    [
      ( "statement-graph",
        [
          Alcotest.test_case "carried edge" `Quick test_statement_edges;
          Alcotest.test_case "loop-independent edge" `Quick
            test_statement_edges_loop_independent;
        ] );
      ( "distribute",
        [
          Alcotest.test_case "splits independent statements" `Quick
            test_distribute_splits;
          Alcotest.test_case "keeps recurrence cycles together" `Quick
            test_distribute_cycle_stays;
          Alcotest.test_case "orders components by dependence" `Quick
            test_distribute_reversed_order;
          Alcotest.test_case "enables parallelization" `Quick
            test_distribute_enables_parallelization;
          Alcotest.test_case "three-way chain" `Quick test_distribute_three_way;
          Alcotest.test_case "guarded statement" `Quick test_distribute_guarded;
        ] );
      ( "fuse",
        [
          Alcotest.test_case "legal fusion" `Quick test_fuse_legal;
          Alcotest.test_case "fusion-preventing dependence" `Quick
            test_fuse_preventing;
          Alcotest.test_case "header mismatch" `Quick test_fuse_header_mismatch;
          Alcotest.test_case "distribute/fuse roundtrip" `Quick
            test_fuse_all_roundtrip;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "basic with remainder" `Quick test_unroll_basic;
          Alcotest.test_case "strided and reversed" `Quick
            test_unroll_strided_and_negative;
          Alcotest.test_case "outer loops kept" `Quick test_unroll_outer_loops_kept;
          Alcotest.test_case "validation" `Quick test_unroll_validation;
        ] );
    ]
