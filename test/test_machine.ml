(* Tests for the simulated machine (lib/machine): cache, memory simulation,
   and the parallel model. *)

open Itf_ir
module Cache = Itf_machine.Cache
module Memsim = Itf_machine.Memsim
module Parallel = Itf_machine.Parallel
module Env = Itf_exec.Env

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_geometry () =
  check_bool "bad geometry" true
    (match Cache.create { Cache.size_bytes = 100; line_bytes = 64; assoc = 1 } with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let c = Cache.create { Cache.size_bytes = 256; line_bytes = 64; assoc = 2 } in
  ignore (Cache.access c 0);
  check_int "one access" 1 (Cache.stats c).Cache.accesses

let test_cache_spatial_locality () =
  (* Sequential bytes within one line: 1 miss then hits. *)
  let c = Cache.create { Cache.size_bytes = 1024; line_bytes = 64; assoc = 1 } in
  for b = 0 to 63 do
    ignore (Cache.access c b)
  done;
  let s = Cache.stats c in
  check_int "one miss" 1 s.Cache.misses;
  check_int "63 hits" 63 s.Cache.hits

let test_cache_conflict_misses () =
  (* Two addresses mapping to the same direct-mapped set thrash... *)
  let c = Cache.create { Cache.size_bytes = 512; line_bytes = 64; assoc = 1 } in
  for _ = 1 to 10 do
    ignore (Cache.access c 0);
    ignore (Cache.access c 512)
  done;
  check_int "all misses (thrash)" 20 (Cache.stats c).Cache.misses;
  (* ...but coexist in a 2-way set. *)
  let c2 = Cache.create { Cache.size_bytes = 512; line_bytes = 64; assoc = 2 } in
  for _ = 1 to 10 do
    ignore (Cache.access c2 0);
    ignore (Cache.access c2 512)
  done;
  check_int "2 cold misses only" 2 (Cache.stats c2).Cache.misses

let test_cache_lru () =
  (* 2-way set; touch A, B, A, then C evicts B (LRU), not A. *)
  let c = Cache.create { Cache.size_bytes = 128; line_bytes = 64; assoc = 2 } in
  ignore (Cache.access c 0);
  (* A miss *)
  ignore (Cache.access c 64);
  (* B miss (same set: 1 set total) *)
  ignore (Cache.access c 0);
  (* A hit *)
  ignore (Cache.access c 128);
  (* C miss, evicts B *)
  check_bool "A still resident" true (Cache.access c 0);
  check_bool "B evicted" false (Cache.access c 64)

let test_cache_reset () =
  let c = Cache.create { Cache.size_bytes = 256; line_bytes = 64; assoc = 1 } in
  ignore (Cache.access c 0);
  Cache.reset c;
  check_int "stats cleared" 0 (Cache.stats c).Cache.accesses;
  check_bool "contents cleared" false (Cache.access c 0)

(* Fully-associative LRU is a stack algorithm: a larger cache never
   misses more on the same trace. *)
let test_lru_stack_property () =
  let st = Random.State.make [| 2026 |] in
  for _ = 1 to 20 do
    let trace =
      List.init 300 (fun _ -> Random.State.int st 40 * 64)
    in
    let misses size =
      let c = Cache.create (Cache.fully_associative ~size_bytes:size ~line_bytes:64) in
      List.iter (fun a -> ignore (Cache.access c a)) trace;
      (Cache.stats c).Cache.misses
    in
    let m1 = misses 256 and m2 = misses 512 and m3 = misses 1024 in
    check_bool
      (Printf.sprintf "inclusion %d >= %d >= %d" m1 m2 m3)
      true
      (m1 >= m2 && m2 >= m3)
  done

(* ------------------------------------------------------------------ *)
(* Memsim: locality shape on matmul                                    *)
(* ------------------------------------------------------------------ *)

let test_memsim_row_vs_column () =
  (* Row-major traversal of a 2D array has far fewer misses than
     column-major traversal — the interchange motivation. *)
  let nest order =
    let i = Expr.var "i" and j = Expr.var "j" in
    let idx = if order = `Row then [ i; j ] else [ j; i ] in
    Nest.make
      [
        Nest.loop "i" Expr.one (Expr.int 64);
        Nest.loop "j" Expr.one (Expr.int 64);
      ]
      [ Stmt.Store ({ array = "a"; index = idx }, Expr.add i j) ]
  in
  let misses order =
    let env = Env.create () in
    Env.declare_array env "a" [ (1, 64); (1, 64) ];
    let r =
      Memsim.run
        { Cache.size_bytes = 2048; line_bytes = 64; assoc = 1 }
        env (nest order)
    in
    r.Memsim.cache.Cache.misses
  in
  let row = misses `Row and col = misses `Col in
  check_bool
    (Printf.sprintf "row (%d) at least 4x fewer misses than column (%d)" row col)
    true
    (row * 4 <= col)

let test_memsim_cycles_model () =
  let env = Env.create () in
  Env.declare_array env "a" [ (0, 7) ];
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.zero (Expr.int 7) ]
      [ Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "i") ]
  in
  let r =
    Memsim.run ~hit_cost:1 ~miss_penalty:10
      { Cache.size_bytes = 1024; line_bytes = 64; assoc = 1 }
      env nest
  in
  (* 8 accesses, all in one 64-byte line: 1 miss. *)
  check_int "accesses" 8 r.Memsim.cache.Cache.accesses;
  check_int "misses" 1 r.Memsim.cache.Cache.misses;
  check_int "cycles" (8 + 10) r.Memsim.cycles

(* ------------------------------------------------------------------ *)
(* Parallel model                                                      *)
(* ------------------------------------------------------------------ *)

let rect_nest kind =
  Nest.make
    [
      Nest.loop ~kind "i" Expr.one (Expr.int 16);
      Nest.loop "j" Expr.one (Expr.int 16);
    ]
    [
      Stmt.Store
        ( { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] },
          Expr.add (Expr.var "i") (Expr.var "j") );
    ]

let test_parallel_speedup () =
  let env = Env.create () in
  let seq = Parallel.time ~procs:4 env (rect_nest Nest.Do) in
  let par = Parallel.time ~procs:4 env (rect_nest Nest.Pardo) in
  check_bool "pardo speeds up on 4 procs" true (par < seq /. 3.);
  let s = Parallel.speedup ~procs:4 env (rect_nest Nest.Pardo) in
  check_bool (Printf.sprintf "speedup %.2f near 4" s) true (s > 3.5 && s <= 4.01)

let test_parallel_do_is_flat () =
  let env = Env.create () in
  let t1 = Parallel.time ~procs:1 env (rect_nest Nest.Do) in
  let t8 = Parallel.time ~procs:8 env (rect_nest Nest.Do) in
  check_bool "sequential nest gains nothing" true (abs_float (t1 -. t8) < 1e-9)

let test_parallel_load_imbalance () =
  (* Triangular pardo: round-robin over rows of decreasing length keeps
     the imbalance mild, but speedup must stay below the ideal. *)
  let nest =
    Nest.make
      [
        Nest.loop ~kind:Nest.Pardo "i" Expr.one (Expr.int 16);
        Nest.loop "j" (Expr.var "i") (Expr.int 16);
      ]
      [ Stmt.Store ({ array = "a"; index = [ Expr.var "j" ] }, Expr.var "i") ]
  in
  let env = Env.create () in
  let s = Parallel.speedup ~procs:8 env nest in
  check_bool (Printf.sprintf "triangular speedup %.2f in (2, 8)" s) true
    (s > 2. && s < 8.)

let test_parallel_overhead_saturates () =
  (* With heavy spawn overhead relative to the work, more processors stop
     helping. *)
  let nest =
    Nest.make
      [ Nest.loop ~kind:Nest.Pardo "i" Expr.one (Expr.int 4) ]
      [ Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "i") ]
  in
  let env = Env.create () in
  let s4 = Parallel.speedup ~spawn_overhead:50. ~procs:4 env nest in
  check_bool "overhead kills speedup" true (s4 < 1.5)

let test_body_cost () =
  check_bool "body cost counts ops and accesses" true
    (Parallel.body_cost (rect_nest Nest.Do) >= 2)

let () =
  Alcotest.run "machine"
    [
      ( "cache",
        [
          Alcotest.test_case "geometry" `Quick test_cache_geometry;
          Alcotest.test_case "spatial locality" `Quick test_cache_spatial_locality;
          Alcotest.test_case "conflicts vs associativity" `Quick
            test_cache_conflict_misses;
          Alcotest.test_case "LRU replacement" `Quick test_cache_lru;
          Alcotest.test_case "reset" `Quick test_cache_reset;
          Alcotest.test_case "LRU stack property" `Quick test_lru_stack_property;
        ] );
      ( "memsim",
        [
          Alcotest.test_case "row vs column traversal" `Quick
            test_memsim_row_vs_column;
          Alcotest.test_case "cycle model" `Quick test_memsim_cycles_model;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "speedup" `Quick test_parallel_speedup;
          Alcotest.test_case "sequential flat" `Quick test_parallel_do_is_flat;
          Alcotest.test_case "load imbalance" `Quick test_parallel_load_imbalance;
          Alcotest.test_case "overhead saturation" `Quick
            test_parallel_overhead_saturates;
          Alcotest.test_case "body cost" `Quick test_body_cost;
        ] );
    ]
