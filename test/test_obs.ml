(* Tests for the observability layer (lib/obs) and its wiring through the
   search engine: JSON serialization, deterministic span trees (fork/join),
   the metrics registry, trace-report aggregation, the structured
   rejection-reason taxonomy, and the acceptance criterion that parallel
   and sequential engine runs produce identical span trees and metric
   totals (timings excluded). *)

open Itf_ir
module Json = Itf_obs.Json
module Tracer = Itf_obs.Tracer
module Metrics = Itf_obs.Metrics
module Report = Itf_obs.Report
module Profile = Itf_obs.Profile
module T = Itf_core.Template
module Legality = Itf_core.Legality
module Boundsmap = Itf_core.Boundsmap
module Sequence = Itf_core.Sequence
module Engine = Itf_opt.Engine
module Search = Itf_opt.Search

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* A deterministic clock: each read returns 0, 1, 2, ... *)
let ticking () =
  let t = ref 0. in
  fun () ->
    let v = !t in
    t := v +. 1.;
    v

(* {1 Json} *)

let test_json_serialize () =
  check_string "escaping"
    {|{"s": "a\"b\\c\nd\u0001", "xs": [1, -2.5, true, null]}|}
    (Json.to_string
       (Json.Obj
          [
            ("s", Json.String "a\"b\\c\nd\001");
            ( "xs",
              Json.List
                [ Json.Int 1; Json.Float (-2.5); Json.Bool true; Json.Null ] );
          ]));
  check_string "integral float keeps the point" "2.0"
    (Json.to_string (Json.Float 2.0));
  check_string "non-finite floats become null" "[null, null]"
    (Json.to_string (Json.List [ Json.Float Float.nan; Json.Float infinity ]))

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "engine.step\tx");
        ("n", Json.Int 42);
        ("t", Json.Float 1.5);
        ("ok", Json.Bool false);
        ("none", Json.Null);
        ("kids", Json.List [ Json.Int 0; Json.String "µ☃" ]);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> check_bool "roundtrip" true (Json.equal v v')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* numbers without a point or exponent re-parse as Int *)
  check_bool "int stays int" true
    (Json.of_string "7" = Ok (Json.Int 7));
  check_bool "exponent parses as float" true
    (Json.of_string "1e2" = Ok (Json.Float 100.))

let test_json_errors_and_accessors () =
  check_bool "trailing garbage rejected" true
    (Result.is_error (Json.of_string "{} x"));
  check_bool "bad literal rejected" true
    (Result.is_error (Json.of_string "treu"));
  let v = Json.Obj [ ("a", Json.Int 3); ("b", Json.String "s") ] in
  check_bool "member" true (Json.member "b" v = Some (Json.String "s"));
  check_bool "member missing" true (Json.member "z" v = None);
  check_bool "to_int" true (Json.to_int (Json.Int 3) = Some 3);
  check_bool "to_float promotes int" true (Json.to_float (Json.Int 3) = Some 3.);
  check_bool "to_str rejects int" true (Json.to_str (Json.Int 3) = None)

(* {1 Tracer} *)

let test_null_tracer () =
  check_bool "disabled" false (Tracer.enabled Tracer.null);
  let evaluated = ref false in
  let v =
    Tracer.span Tracer.null
      ~attrs:(fun () ->
        evaluated := true;
        [])
      "x"
      (fun () -> 42)
  in
  check_int "span is a direct call" 42 v;
  check_bool "attr thunk skipped" false !evaluated;
  check_bool "no roots" true (Tracer.roots Tracer.null = []);
  check_bool "fork of null is disabled" false
    (Tracer.enabled (Tracer.fork Tracer.null))

let test_span_nesting () =
  let tr = Tracer.create ~clock:(ticking ()) () in
  Tracer.span tr
    ~attrs:(fun () -> [ ("k", Tracer.Int 1) ])
    "outer"
    (fun () ->
      Tracer.span tr "inner" (fun () -> ());
      Tracer.add_attrs tr [ ("late", Tracer.Bool true) ]);
  (try Tracer.span tr "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Tracer.roots tr with
  | [ outer; boom ] ->
    check_string "outer name" "outer" outer.Tracer.name;
    check_bool "attrs in order" true
      (outer.Tracer.attrs
      = [ ("k", Tracer.Int 1); ("late", Tracer.Bool true) ]);
    (match outer.Tracer.children with
    | [ inner ] ->
      check_string "child name" "inner" inner.Tracer.name;
      check_float "child duration" 1.0 inner.Tracer.dur_s
    | kids -> Alcotest.failf "expected 1 child, got %d" (List.length kids));
    check_string "span closed on raise" "boom" boom.Tracer.name;
    check_bool "raised span has no children" true (boom.Tracer.children = [])
  | rs -> Alcotest.failf "expected 2 roots, got %d" (List.length rs)

(* Workers fill forked tracers in arbitrary order; join splices them back
   in input order — the determinism guarantee. *)
let test_fork_join () =
  let tr = Tracer.create ~clock:(ticking ()) () in
  let forks = Array.init 3 (fun _ -> Tracer.fork tr) in
  (* fill out of (scheduling) order: 2, 0, 1 *)
  List.iter
    (fun i ->
      Tracer.span forks.(i) (Printf.sprintf "w%d" i) (fun () -> ()))
    [ 2; 0; 1 ];
  Tracer.span tr "parent" (fun () -> Tracer.join tr (Array.to_list forks));
  match Tracer.roots tr with
  | [ parent ] ->
    Alcotest.(check (list string))
      "children in input order" [ "w0"; "w1"; "w2" ]
      (List.map (fun s -> s.Tracer.name) parent.Tracer.children)
  | rs -> Alcotest.failf "expected 1 root, got %d" (List.length rs)

let test_jsonl_ids () =
  let tr = Tracer.create ~clock:(ticking ()) () in
  Tracer.span tr "a" (fun () ->
      Tracer.span tr "b" (fun () -> ());
      Tracer.span tr "c" (fun () -> ()));
  Tracer.span tr "d" (fun () -> ());
  let lines = Tracer.jsonl_lines (Tracer.roots tr) in
  check_int "one line per span" 4 (List.length lines);
  let parsed =
    List.map
      (fun l ->
        match Json.of_string l with
        | Ok v -> v
        | Error e -> Alcotest.failf "bad line %S: %s" l e)
      lines
  in
  let field f v = Json.member f v in
  Alcotest.(check (list int))
    "depth-first preorder ids" [ 0; 1; 2; 3 ]
    (List.map (fun v -> Option.get (Option.bind (field "id" v) Json.to_int)) parsed);
  Alcotest.(check (list string))
    "names" [ "a"; "b"; "c"; "d" ]
    (List.map (fun v -> Option.get (Option.bind (field "name" v) Json.to_str)) parsed);
  check_bool "parents" true
    (List.map (fun v -> field "parent" v) parsed
    = [
        Some Json.Null;
        Some (Json.Int 0);
        Some (Json.Int 0);
        Some Json.Null;
      ])

let test_equal_shape () =
  let build clock =
    let tr = Tracer.create ~clock () in
    Tracer.span tr
      ~attrs:(fun () -> [ ("k", Tracer.Int 1) ])
      "a"
      (fun () -> Tracer.span tr "b" (fun () -> ()));
    List.hd (Tracer.roots tr)
  in
  let fast = build (ticking ()) in
  let slow =
    build
      (let t = ref 0. in
       fun () ->
         t := !t +. 100.;
         !t)
  in
  check_bool "equal modulo timing" true (Tracer.equal_shape fast slow);
  let tr = Tracer.create ~clock:(ticking ()) () in
  Tracer.span tr
    ~attrs:(fun () -> [ ("k", Tracer.Int 2) ])
    "a"
    (fun () -> Tracer.span tr "b" (fun () -> ()));
  check_bool "attr difference detected" false
    (Tracer.equal_shape fast (List.hd (Tracer.roots tr)))

let test_ambient () =
  check_bool "default ambient is null" false (Tracer.enabled (Tracer.ambient ()));
  let tr = Tracer.create () in
  Tracer.with_ambient tr (fun () ->
      check_bool "installed" true (Tracer.enabled (Tracer.ambient ())));
  check_bool "restored" false (Tracer.enabled (Tracer.ambient ()))

(* {1 Metrics} *)

let test_counters () =
  let m = Metrics.create () in
  let c1 = Metrics.counter m ~labels:[ ("b", "2"); ("a", "1") ] "hits" in
  let c2 = Metrics.counter m ~labels:[ ("a", "1"); ("b", "2") ] "hits" in
  Metrics.incr c1;
  Metrics.add c2 4;
  check_int "label order normalized to one instrument" 5
    (Metrics.counter_value c1);
  let g = Metrics.gauge m "g" in
  Metrics.set g 2.5;
  check_float "gauge" 2.5 (Metrics.gauge_value g);
  check_bool "kind mismatch rejected" true
    (match Metrics.gauge m "hits" ~labels:[ ("a", "1"); ("b", "2") ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1.; 10. |] "h" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 100. ];
  match Option.bind (Json.member "metrics" (Metrics.dump m)) Json.to_list with
  | Some [ entry ] ->
    check_bool "per-bucket counts plus overflow" true
      (Json.member "counts" entry
      = Some (Json.List [ Json.Int 1; Json.Int 1; Json.Int 1 ]))
  | _ -> Alcotest.fail "expected exactly one metric entry"

let test_merge_and_dump_determinism () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add (Metrics.counter a ~labels:[ ("k", "v") ] "c") 2;
  Metrics.add (Metrics.counter b ~labels:[ ("k", "v") ] "c") 3;
  Metrics.observe (Metrics.histogram a ~buckets:[| 1. |] "h") 0.5;
  Metrics.observe (Metrics.histogram b ~buckets:[| 1. |] "h") 2.0;
  Metrics.set (Metrics.gauge b "g") 7.;
  Metrics.merge_into ~into:a b;
  check_int "counters add" 5
    (Metrics.counter_value (Metrics.counter a ~labels:[ ("k", "v") ] "c"));
  check_float "gauges overwrite" 7. (Metrics.gauge_value (Metrics.gauge a "g"));
  (* dump is sorted by name/labels: insertion order must not show *)
  let x = Metrics.create () and y = Metrics.create () in
  Metrics.incr (Metrics.counter x "beta");
  Metrics.incr (Metrics.counter x "alpha");
  Metrics.incr (Metrics.counter y "alpha");
  Metrics.incr (Metrics.counter y "beta");
  check_bool "dump is insertion-order independent" true
    (Json.equal (Metrics.dump x) (Metrics.dump y))

let test_log_linear () =
  check_bool "1-2-5 series" true
    (Metrics.log_linear ~lo:1. ~hi:100. = [| 1.; 2.; 5.; 10.; 20.; 50.; 100. |]);
  check_bool "stops at first bound >= hi" true
    (Metrics.log_linear ~lo:1. ~hi:60. = [| 1.; 2.; 5.; 10.; 20.; 50.; 100. |]);
  check_bool "duration buckets span 1us..100s" true
    (let b = Metrics.duration_buckets in
     b.(0) = 1. && b.(Array.length b - 1) = 1e8);
  check_bool "bad range rejected" true
    (match Metrics.log_linear ~lo:0. ~hi:1. with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_histogram_sum_count () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1.; 10. |] "h" in
  check_int "empty count" 0 (Metrics.histogram_count h);
  check_float "empty sum" 0. (Metrics.histogram_sum h);
  List.iter (Metrics.observe h) [ 0.5; 5.; 100. ];
  check_int "count" 3 (Metrics.histogram_count h);
  check_float "sum at 1/1000 resolution" 105.5 (Metrics.histogram_sum h);
  (* the dump carries count and sum alongside the bucket counts *)
  match Option.bind (Json.member "metrics" (Metrics.dump m)) Json.to_list with
  | Some [ entry ] ->
    check_bool "dump count" true (Json.member "count" entry = Some (Json.Int 3));
    check_bool "dump sum" true
      (Json.member "sum" entry = Some (Json.Float 105.5))
  | _ -> Alcotest.fail "expected exactly one metric entry"

(* Exact quantile values on a synthetic fill: 10 observations <= 1 and 10
   in (1, 2], over buckets [1; 2; 5; 10]. Linear interpolation inside the
   holding bucket (lower edge 0 for the first) makes every value
   computable by hand. *)
let test_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1.; 2.; 5.; 10. |] "q" in
  for _ = 1 to 10 do Metrics.observe h 0.5 done;
  for _ = 1 to 10 do Metrics.observe h 1.5 done;
  let q p = Option.get (Metrics.quantile h p) in
  check_float "p50 = top of the first bucket" 1.0 (q 0.5);
  check_float "p75 interpolates the second bucket" 1.5 (q 0.75);
  check_float "p100 = top of the holding bucket" 2.0 (q 1.0);
  check_float "q clamps below" (q 0.) (Option.get (Metrics.quantile h (-1.)));
  (* monotone in q *)
  let qs = List.map q [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ] in
  check_bool "monotone in q" true
    (List.for_all2 (fun a b -> a <= b) qs (List.tl qs @ [ infinity ]));
  (* empty histogram has no quantiles *)
  let e = Metrics.histogram m ~buckets:[| 1. |] "empty" in
  check_bool "empty -> None" true (Metrics.quantile e 0.5 = None);
  (* a rank landing in the overflow bucket saturates at the last bound *)
  let o = Metrics.histogram m ~buckets:[| 1.; 2. |] "overflow" in
  Metrics.observe o 100.;
  check_float "overflow saturates" 2.0 (Option.get (Metrics.quantile o 0.99));
  (* the pure-function form agrees with the live registry *)
  check_bool "quantile_of_counts agrees" true
    (Metrics.quantile_of_counts ~buckets:[| 1.; 2.; 5.; 10. |]
       ~counts:[| 10; 10; 0; 0; 0 |] 0.75
    = Some 1.5)

(* Satellite: merging histograms with different bucket layouts must fail
   loudly, naming the metric and both layouts — the silent corruption of
   adding count arrays positionally is precisely the bug this guards. *)
let test_merge_bucket_mismatch () =
  let a = Metrics.create () and b = Metrics.create () in
  ignore (Metrics.histogram a ~buckets:[| 1.; 2. |] "engine.phase_us");
  Metrics.observe (Metrics.histogram b ~buckets:[| 1.; 2.; 5. |] "engine.phase_us") 1.5;
  match Metrics.merge_into ~into:a b with
  | exception Invalid_argument msg ->
    List.iter
      (fun sub ->
        check_bool
          (Printf.sprintf "message %S carries %S" msg sub)
          true
          (Builders.contains ~sub msg))
      [ "engine.phase_us"; "1; 2"; "1; 2; 5" ]
  | () -> Alcotest.fail "bucket mismatch silently merged"

let test_merge_sums () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.observe (Metrics.histogram a ~buckets:[| 10. |] "h") 1.5;
  Metrics.observe (Metrics.histogram b ~buckets:[| 10. |] "h") 2.25;
  Metrics.merge_into ~into:a b;
  let h = Metrics.histogram a ~buckets:[| 10. |] "h" in
  check_int "counts add" 2 (Metrics.histogram_count h);
  check_float "sums add" 3.75 (Metrics.histogram_sum h)

let test_dump_prometheus () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m ~labels:[ ("status", "ok") ] "serve.requests");
  Metrics.set (Metrics.gauge m "serve.cache.size") 3.;
  let h = Metrics.histogram m ~buckets:[| 1.; 2. |] "serve.request_us" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 9. ];
  let text = Metrics.dump_prometheus m in
  List.iter
    (fun sub ->
      check_bool (Printf.sprintf "exposition carries %S" sub) true
        (Builders.contains ~sub text))
    [
      "# TYPE serve_requests counter";
      "serve_requests{status=\"ok\"} 1";
      "# TYPE serve_cache_size gauge";
      "serve_cache_size 3";
      "# TYPE serve_request_us histogram";
      "serve_request_us_bucket{le=\"1\"} 1";
      "serve_request_us_bucket{le=\"2\"} 2";
      "serve_request_us_bucket{le=\"+Inf\"} 3";
      "serve_request_us_sum 11";
      "serve_request_us_count 3";
    ];
  check_bool "no unsanitized names" true
    (not (Builders.contains ~sub:"serve.request" text))

(* {1 Head sampling} *)

let test_head_keep () =
  let fps = List.init 1000 (Printf.sprintf "fp-%d") in
  check_bool "rate 1 keeps everything" true
    (List.for_all (fun fp -> Tracer.head_keep ~sample_rate:1. ~fingerprint:fp) fps);
  check_bool "rate 0 keeps nothing" true
    (List.for_all
       (fun fp -> not (Tracer.head_keep ~sample_rate:0. ~fingerprint:fp))
       fps);
  (* deterministic: the same fingerprint always answers the same *)
  check_bool "deterministic" true
    (List.for_all
       (fun fp ->
         Tracer.head_keep ~sample_rate:0.3 ~fingerprint:fp
         = Tracer.head_keep ~sample_rate:0.3 ~fingerprint:fp)
       fps);
  (* monotone: kept at a low rate implies kept at any higher rate *)
  check_bool "kept set grows with the rate" true
    (List.for_all
       (fun fp ->
         (not (Tracer.head_keep ~sample_rate:0.2 ~fingerprint:fp))
         || Tracer.head_keep ~sample_rate:0.7 ~fingerprint:fp)
       fps);
  (* the keep fraction tracks the rate (FNV-1a spreads well enough that
     0.3 of 1000 fingerprints lands in [200, 400]) *)
  let kept =
    List.length
      (List.filter (fun fp -> Tracer.head_keep ~sample_rate:0.3 ~fingerprint:fp) fps)
  in
  check_bool
    (Printf.sprintf "keep fraction ~ rate (kept %d of 1000 at 0.3)" kept)
    true
    (kept >= 200 && kept <= 400)

(* {1 Profile} *)

(* A hand-built tree under the ticking clock: a { b; b } gives a
   total 5, self 3 (two unit-long children), b count 2, total 2, self 2 —
   and the in-memory and JSONL paths agree row for row. *)
let test_profile_self_time () =
  let tr = Tracer.create ~clock:(ticking ()) () in
  Tracer.span tr "a" (fun () ->
      Tracer.span tr "b" (fun () -> ());
      Tracer.span tr "b" (fun () -> ()));
  let roots = Tracer.roots tr in
  let rows = Profile.of_spans roots in
  (match rows with
  | [ ra; rb ] ->
    check_string "sorted by self time" "a" ra.Profile.name;
    check_int "a count" 1 ra.Profile.count;
    check_float "a total" 5.0 ra.Profile.total_s;
    check_float "a self" 3.0 ra.Profile.self_s;
    check_string "b second" "b" rb.Profile.name;
    check_int "b count" 2 rb.Profile.count;
    check_float "b total" 2.0 rb.Profile.total_s;
    check_float "b self" 2.0 rb.Profile.self_s
  | rs -> Alcotest.failf "expected 2 rows, got %d" (List.length rs));
  (match Profile.of_lines (Tracer.jsonl_lines roots) with
  | Error e -> Alcotest.failf "of_lines failed: %s" e
  | Ok rows' -> check_bool "of_lines == of_spans" true (rows = rows'));
  check_int "top truncates" 1 (List.length (Profile.top 1 rows));
  (* rendering smoke: the self% column exists and rows carry their share *)
  let text = Format.asprintf "%a" Profile.pp rows in
  check_bool "table renders self%" true (Builders.contains ~sub:"self%" text)

(* {1 Report} *)

let test_report_rows () =
  let tr = Tracer.create ~clock:(ticking ()) () in
  Tracer.span tr "a" (fun () -> Tracer.span tr "b" (fun () -> ()));
  let lines = Tracer.jsonl_lines (Tracer.roots tr) in
  match Report.of_lines lines with
  | Error e -> Alcotest.failf "report failed: %s" e
  | Ok rows ->
    Alcotest.(check (list string))
      "sorted by total time" [ "a"; "b" ]
      (List.map (fun r -> r.Report.name) rows);
    let a = List.hd rows and b = List.nth rows 1 in
    check_int "a count" 1 a.Report.count;
    check_float "a total" 3.0 a.Report.total_s;
    check_float "a self = total - children" 2.0 a.Report.self_s;
    check_float "b total" 1.0 b.Report.total_s;
    check_float "b self" 1.0 b.Report.self_s

let test_report_counters () =
  let tr = Tracer.create ~clock:(ticking ()) () in
  Tracer.span tr
    ~attrs:(fun () -> [ ("hits", Tracer.Int 2); ("note", Tracer.String "x") ])
    "a"
    (fun () -> ());
  Tracer.span tr
    ~attrs:(fun () -> [ ("hits", Tracer.Int 3) ])
    "a"
    (fun () -> ());
  match Report.counters (Tracer.jsonl_lines (Tracer.roots tr)) with
  | Error e -> Alcotest.failf "counters failed: %s" e
  | Ok cs ->
    check_bool "int attrs summed per span.attr, strings ignored" true
      (cs = [ ("a.hits", 5) ])

let test_report_malformed () =
  let good =
    let tr = Tracer.create ~clock:(ticking ()) () in
    Tracer.span tr "a" (fun () -> ());
    Tracer.jsonl_lines (Tracer.roots tr)
  in
  match Report.of_lines (good @ [ "{not json" ]) with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error e ->
    check_bool
      (Printf.sprintf "error names the line (%s)" e)
      true
      (Builders.contains ~sub:"line 2" e)

(* Satellite: the metrics-file table renders count, sum, mean and the
   quantile columns for histograms, straight from the dumped bucket
   counts. *)
let test_report_metrics_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1.; 2.; 5.; 10. |] "lat" in
  for _ = 1 to 10 do Metrics.observe h 0.5 done;
  for _ = 1 to 10 do Metrics.observe h 1.5 done;
  let text = Format.asprintf "%a" Report.pp_metrics_file (Metrics.dump m) in
  List.iter
    (fun sub ->
      check_bool (Printf.sprintf "renders %S" sub) true
        (Builders.contains ~sub text))
    [ "count=20"; "sum=20"; "mean=1"; "p50=1"; "p90="; "p99=" ]

(* {1 Rejection-reason taxonomy}

   Each constructor is exercised through the public entry points that
   produce it; [Unbounded_space] (whose trigger needs a pathological
   Fourier-Motzkin corner) is covered at the unit level. The suite as a
   whole must surface at least six distinct reason labels. *)

let reject_labels nest seq =
  match Legality.reasons (Legality.check nest seq) with
  | [] -> Alcotest.fail "expected a rejection"
  | rs -> List.map Legality.reason_label rs

let test_reason_taxonomy () =
  let seen = ref [] in
  let note l = seen := l :: !seen in
  (* Depth_mismatch: a 2-deep template against the 3-deep matmul nest. *)
  let bm = Itf_bounds.Bmat.of_nest (Builders.matmul ()) in
  (match Boundsmap.check bm (T.interchange ~n:2 0 1) with
  | [ v ] ->
    (match v.Boundsmap.reason with
    | Boundsmap.Depth_mismatch { expected = 2; actual = 3 } ->
      note (Boundsmap.reason_label v.Boundsmap.reason);
      check_string "depth message"
        "template expects a 2-deep nest but the nest is 3 deep"
        (Boundsmap.message v)
    | r -> Alcotest.failf "wrong reason: %s" (Boundsmap.reason_label r))
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  (* Bound_type_exceeds: interchanging a triangular nest moves a
     loop-dependent bound outward (paper Table 4's precondition). *)
  (match reject_labels (Builders.triangular ()) [ T.interchange ~n:2 0 1 ] with
  | l :: _ ->
    check_string "triangular interchange" "bound-type" l;
    note l
  | [] -> assert false);
  (* Non_constant_step: a symbolic step defeats the unimodular family. *)
  let symstep =
    Nest.make
      [
        Nest.loop "i" Expr.one (Expr.var "n");
        Nest.loop ~step:(Expr.var "s") "j" Expr.one (Expr.var "n");
      ]
      [ Builders.st "a" [ Builders.i_; Builders.j_ ] Builders.i_ ]
  in
  (match reject_labels symstep [ T.skew ~n:2 ~src:0 ~dst:1 ~factor:1 ] with
  | l :: _ ->
    check_string "symbolic step" "non-constant-step" l;
    note l
  | [] -> assert false);
  (* Codegen_rejected: a zero step passes the published preconditions
     (it is a compile-time constant) but code generation rejects it. *)
  let zerostep =
    Nest.make
      [
        Nest.loop "i" (Expr.int 1) (Expr.int 4);
        Nest.loop ~step:(Expr.int 0) "j" (Expr.int 1) (Expr.int 4);
      ]
      [ Builders.st "a" [ Builders.i_; Builders.j_ ] Builders.i_ ]
  in
  (match Legality.reasons (Legality.check zerostep [ T.skew ~n:2 ~src:0 ~dst:1 ~factor:1 ]) with
  | [ Legality.Precondition { violation; _ } ] ->
    (match violation.Boundsmap.reason with
    | Boundsmap.Codegen_rejected { message } ->
      check_bool "codegen message kept" true
        (Builders.contains ~sub:"zero step" message);
      note (Boundsmap.reason_label violation.Boundsmap.reason)
    | r -> Alcotest.failf "wrong reason: %s" (Boundsmap.reason_label r))
  | _ -> Alcotest.fail "expected a single codegen precondition rejection");
  (* Lex_negative: a (1,-1) dependence flips lex-negative under
     interchange (paper Section 3.2). *)
  let antidiag =
    Nest.make
      [
        Nest.loop "i" (Expr.int 2) (Expr.var "n");
        Nest.loop "j" Expr.one (Expr.var "n");
      ]
      [
        Builders.st "a"
          [ Builders.i_; Builders.j_ ]
          (Builders.ld "a"
             [
               Expr.sub Builders.i_ Expr.one; Expr.add Builders.j_ Expr.one;
             ]);
      ]
  in
  (match Legality.reasons (Legality.check antidiag [ T.interchange ~n:2 0 1 ]) with
  | [ (Legality.Lex_negative _ as r) ] ->
    check_string "antidiagonal interchange" "lex-negative"
      (Legality.reason_label r);
    note (Legality.reason_label r)
  | _ -> Alcotest.fail "expected a dependence rejection");
  (* Unbounded_space: unit-level (message and label). *)
  let v =
    {
      Boundsmap.template = "Unimodular";
      reason = Boundsmap.Unbounded_space { direction = "below" };
    }
  in
  check_string "unbounded message"
    "transformed iteration space unbounded in below" (Boundsmap.message v);
  note (Boundsmap.reason_label v.Boundsmap.reason);
  let distinct = List.sort_uniq String.compare !seen in
  check_bool
    (Printf.sprintf "at least 6 distinct reason labels (got %d: %s)"
       (List.length distinct)
       (String.concat ", " distinct))
    true
    (List.length distinct >= 6)

(* {1 Engine provenance and determinism} *)

(* Every Engine-reachable rejection carries a structured cause; metric
   counters agree with the provenance list. *)
let test_engine_provenance () =
  let metrics = Metrics.create () in
  let objective = Search.cache_misses ~params:[ ("n", 8) ] () in
  match
    Engine.search ~beam:4 ~steps:1 ~domains:1 ~metrics ~provenance:true
      (Builders.matmul ()) objective
  with
  | None -> Alcotest.fail "engine returned nothing"
  | Some o ->
    check_bool "some candidates were rejected" true (o.Engine.rejections <> []);
    List.iter
      (fun r ->
        check_bool "every rejection carries labels" true
          (Engine.cause_labels r.Engine.cause <> []))
      o.Engine.rejections;
    (* the legality.rejections{reason=...} counters cover the list *)
    let counted =
      match Option.bind (Json.member "metrics" (Metrics.dump metrics)) Json.to_list with
      | None -> 0
      | Some entries ->
        List.fold_left
          (fun acc e ->
            match (Json.member "name" e, Json.member "value" e) with
            | Some (Json.String "legality.rejections"), Some (Json.Int v) ->
              acc + v
            | _ -> acc)
          0 entries
    in
    check_bool
      (Printf.sprintf "rejection counters (%d) cover the provenance list (%d)"
         counted
         (List.length o.Engine.rejections))
      true
      (counted >= List.length o.Engine.rejections);
    (* Stats.record folded the search record into the same registry *)
    check_int "engine.nodes_explored counter matches stats"
      o.Engine.stats.Itf_opt.Stats.nodes_explored
      (Metrics.counter_value (Metrics.counter metrics "engine.nodes_explored"));
    (match Json.of_string (Itf_opt.Stats.to_json o.Engine.stats) with
    | Error e -> Alcotest.failf "stats json unparseable: %s" e
    | Ok v ->
      check_bool "stats json carries nodes_explored" true
        (Option.bind (Json.member "nodes_explored" v) Json.to_int
        = Some o.Engine.stats.Itf_opt.Stats.nodes_explored))

(* A legal candidate whose objective is NaN is kept as [Unscoreable]. *)
let test_engine_unscoreable () =
  let nan_after_root (result : Itf_core.Framework.result) =
    if result.Itf_core.Framework.stages = [] then 1.0 else Float.nan
  in
  match
    Engine.search ~beam:4 ~steps:1 ~domains:1 ~provenance:true
      (Builders.matmul ()) nan_after_root
  with
  | None -> Alcotest.fail "root evaluation is scoreable"
  | Some o ->
    check_float "identity wins" 1.0 o.Engine.score;
    check_bool "unscoreable causes recorded" true
      (List.exists
         (fun r -> r.Engine.cause = Engine.Unscoreable)
         o.Engine.rejections);
    check_bool "unscoreable label" true
      (List.exists
         (fun r -> Engine.cause_labels r.Engine.cause = [ "unscoreable" ])
         o.Engine.rejections)

(* The acceptance criterion: a parallel run produces the same span tree
   and the same metric totals as a sequential one. Timing-valued entries
   (the engine.domains gauge, the engine.total_time_ms histogram) are the
   only legitimate differences, so the comparison filters to counters. *)
let counter_entries m =
  match Option.bind (Json.member "metrics" (Metrics.dump m)) Json.to_list with
  | None -> []
  | Some entries ->
    List.filter
      (fun e -> Json.member "type" e = Some (Json.String "counter"))
      entries

let test_engine_seq_par_observability () =
  let run domains =
    let tracer = Tracer.create () in
    let metrics = Metrics.create () in
    (* [~memo:false]: the objective memo is process-wide, so the first run
       would warm it and the second run's simulator spans/counters would
       (correctly) disappear behind memo hits. This test isolates domain
       scheduling, so it opts out; test_intern covers winner/provenance
       identity with memoization on. *)
    let objective =
      Search.cache_misses ~metrics ~memo:false ~params:[ ("n", 8) ] ()
    in
    match
      Engine.search ~beam:4 ~steps:2 ~domains ~tracer ~metrics
        ~provenance:true (Builders.matmul ()) objective
    with
    | None -> Alcotest.fail "engine returned nothing"
    | Some o -> (o, Tracer.roots tracer, metrics)
  in
  let o1, roots1, m1 = run 1 in
  let o3, roots3, m3 = run 3 in
  check_float "same score" o1.Engine.score o3.Engine.score;
  check_bool "same canonical winner" true
    (Sequence.compare o1.Engine.canonical o3.Engine.canonical = 0);
  check_int "same forest size" (List.length roots1) (List.length roots3);
  check_bool "identical span trees (modulo timing)" true
    (List.for_all2 Tracer.equal_shape roots1 roots3);
  check_bool "identical counter totals" true
    (List.equal Json.equal (counter_entries m1) (counter_entries m3));
  check_bool "identical rejection provenance" true
    (List.length o1.Engine.rejections = List.length o3.Engine.rejections
    && List.for_all2
         (fun a b ->
           Sequence.compare a.Engine.candidate b.Engine.candidate = 0
           && Engine.cause_labels a.Engine.cause
              = Engine.cause_labels b.Engine.cause)
         o1.Engine.rejections o3.Engine.rejections);
  (* sanity: the trace actually covers the interesting phases *)
  let rec names acc s =
    List.fold_left names (s.Tracer.name :: acc) s.Tracer.children
  in
  let all = List.concat_map (fun r -> names [] r) roots1 in
  List.iter
    (fun n ->
      check_bool (n ^ " span present") true (List.mem n all))
    [
      "engine.search"; "engine.step"; "engine.expand"; "engine.evaluate";
      "engine.merge"; "engine.candidate"; "engine.legality";
      "engine.objective"; "memsim.run";
    ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "serialization" `Quick test_json_serialize;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors and accessors" `Quick
            test_json_errors_and_accessors;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "null tracer" `Quick test_null_tracer;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "fork/join input order" `Quick test_fork_join;
          Alcotest.test_case "jsonl preorder ids" `Quick test_jsonl_ids;
          Alcotest.test_case "equal_shape" `Quick test_equal_shape;
          Alcotest.test_case "ambient tracer" `Quick test_ambient;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and labels" `Quick test_counters;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "merge and dump determinism" `Quick
            test_merge_and_dump_determinism;
          Alcotest.test_case "log-linear bucket series" `Quick test_log_linear;
          Alcotest.test_case "histogram sum and count" `Quick
            test_histogram_sum_count;
          Alcotest.test_case "quantile estimator" `Quick test_quantiles;
          Alcotest.test_case "merge bucket mismatch raises" `Quick
            test_merge_bucket_mismatch;
          Alcotest.test_case "merge adds histogram sums" `Quick test_merge_sums;
          Alcotest.test_case "prometheus exposition" `Quick
            test_dump_prometheus;
        ] );
      ( "sampling",
        [ Alcotest.test_case "head_keep" `Quick test_head_keep ] );
      ( "profile",
        [
          Alcotest.test_case "self-time aggregation" `Quick
            test_profile_self_time;
        ] );
      ( "report",
        [
          Alcotest.test_case "row aggregation" `Quick test_report_rows;
          Alcotest.test_case "trace counters" `Quick test_report_counters;
          Alcotest.test_case "malformed input" `Quick test_report_malformed;
          Alcotest.test_case "metrics table quantile columns" `Quick
            test_report_metrics_quantiles;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "reason taxonomy (>= 6 labels)" `Quick
            test_reason_taxonomy;
          Alcotest.test_case "engine rejection provenance" `Quick
            test_engine_provenance;
          Alcotest.test_case "unscoreable candidates" `Quick
            test_engine_unscoreable;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel == sequential (spans + metrics)"
            `Quick test_engine_seq_par_observability;
        ] );
    ]
