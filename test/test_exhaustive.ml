(* Exhaustive small-world validation: EVERY sequence of at most two moves
   from a fixed move set, applied to a fixed family of small nests, with
   every legal result checked for semantic equivalence against the
   interpreter (forward and adversarially shuffled pardo execution).

   Complements the randomized suite: deterministic, and covers the full
   cross product instead of a sample. *)

open Itf_ir
module T = Itf_core.Template
module L = Itf_core.Legality

let ld a ix : Expr.t = Expr.Load { array = a; index = ix }
let st a ix rhs = Stmt.Store ({ array = a; index = ix }, rhs)
let i_ = Expr.var "i"
let j_ = Expr.var "j"
let k_ = Expr.var "k"

(* All-constant-bounds nests so the oracle can enumerate. *)
let nests =
  [
    ( "stencil5",
      Nest.make
        [ Nest.loop "i" (Expr.int 1) (Expr.int 6); Nest.loop "j" (Expr.int 1) (Expr.int 6) ]
        [
          st "a" [ i_; j_ ]
            (Expr.add
               (ld "a" [ Expr.sub i_ Expr.one; j_ ])
               (ld "a" [ i_; Expr.sub j_ Expr.one ]));
        ] );
    ( "antidiag",
      Nest.make
        [ Nest.loop "i" (Expr.int 0) (Expr.int 5); Nest.loop "j" (Expr.int 0) (Expr.int 5) ]
        [ st "a" [ i_; j_ ] (ld "a" [ Expr.sub i_ Expr.one; Expr.add j_ Expr.one ]) ]
      );
    ( "matmul4",
      Nest.make
        [
          Nest.loop "i" (Expr.int 1) (Expr.int 4);
          Nest.loop "j" (Expr.int 1) (Expr.int 4);
          Nest.loop "k" (Expr.int 1) (Expr.int 4);
        ]
        [ st "A" [ i_; j_ ] (Expr.add (ld "A" [ i_; j_ ]) (Expr.mul (ld "B" [ i_; k_ ]) (ld "C" [ k_; j_ ]))) ]
      );
    ( "triangular",
      Nest.make
        [ Nest.loop "i" (Expr.int 0) (Expr.int 5); Nest.loop "j" i_ (Expr.int 5) ]
        [ st "a" [ i_; j_ ] (Expr.add (ld "a" [ i_; Expr.sub j_ Expr.one ]) j_) ]
      );
    ( "scalar-carry",
      Nest.make
        [ Nest.loop "i" (Expr.int 0) (Expr.int 7) ]
        [
          Stmt.Set ("x", ld "a" [ Expr.sub i_ Expr.one ]);
          st "a" [ i_ ] (Expr.add (Expr.var "x") Expr.one);
        ] );
    ( "reversed-strided",
      Nest.make
        [
          Nest.loop ~step:(Expr.int (-2)) "i" (Expr.int 9) (Expr.int 0);
          Nest.loop "j" (Expr.int 0) (Expr.int 4);
        ]
        [ st "a" [ i_; j_ ] (Expr.add (ld "b" [ j_; i_ ]) i_) ] );
  ]

(* Single-template moves available at a given depth. *)
let moves n =
  let pairs =
    List.concat
      (List.init n (fun a ->
           List.filter_map
             (fun b -> if a < b then Some (a, b) else None)
             (List.init n Fun.id)))
  in
  List.concat
    [
      List.map (fun (a, b) -> T.interchange ~n a b) pairs;
      List.init n (fun k -> T.reversal ~n k);
      (if n >= 2 then
         List.concat
           (List.init (n - 1) (fun k ->
                [
                  T.skew ~n ~src:k ~dst:(k + 1) ~factor:1;
                  T.skew ~n ~src:(k + 1) ~dst:k ~factor:(-1);
                ]))
       else []);
      List.init n (fun k -> T.parallelize_one ~n k);
      (if n <= 3 then
         List.init n (fun k ->
             T.block ~n ~i:k ~j:k ~bsize:[| Expr.int 2 |])
       else []);
      (if n >= 2 && n <= 3 then
         [ T.block ~n ~i:0 ~j:(n - 1) ~bsize:(Array.make n (Expr.int 2)) ]
       else []);
      (if n >= 2 then [ T.coalesce ~n ~i:0 ~j:(n - 1) ] else []);
      (if n <= 3 then
         [ T.interleave ~n ~i:(n - 1) ~j:(n - 1) ~isize:[| Expr.int 2 |] ]
       else []);
    ]

let sequences depth =
  let singles = List.map (fun t -> [ t ]) (moves depth) in
  let doubles =
    List.concat_map
      (fun t1 ->
        let d = T.output_depth t1 in
        if d > 6 then []
        else List.map (fun t2 -> [ t1; t2 ]) (moves d))
      (moves depth)
  in
  singles @ doubles

let () =
  let legal = ref 0 and illegal = ref 0 and total = ref 0 in
  let failures = ref [] in
  List.iter
    (fun (name, nest) ->
      let vectors = Itf_dep.Analysis.vectors nest in
      List.iter
        (fun seq ->
          incr total;
          match L.check ~vectors nest seq with
          | L.Bounds_violation _ | L.Dependence_violation _ -> incr illegal
          | L.Legal { nest = out; _ } ->
            incr legal;
            let ok =
              Builders.equivalent ~params:[] ~orders:[ `Forward; `Shuffle !total ]
                nest out
            in
            if not ok then
              failures :=
                Format.asprintf "%s: %a" name Itf_core.Sequence.pp seq
                :: !failures)
        (sequences (Nest.depth nest)))
    nests;
  let run () =
    (match !failures with
    | [] -> ()
    | fs ->
      Alcotest.failf "%d semantic failures, e.g.:@.%s" (List.length fs)
        (String.concat "\n" (List.filteri (fun k _ -> k < 3) fs)));
    Alcotest.(check bool)
      (Printf.sprintf "coverage: %d sequences, %d legal, %d illegal" !total
         !legal !illegal)
      true
      (!total > 1000 && !legal > 300 && !illegal > 300)
  in
  Alcotest.run "exhaustive"
    [
      ( "small-world",
        [ Alcotest.test_case "all 2-step sequences on 6 nests" `Quick run ] );
    ]
