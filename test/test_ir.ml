(* Tests for the loop-nest IR (lib/ir). *)

open Itf_ir

let e = Alcotest.testable Expr.pp Expr.equal

let check_expr = Alcotest.check e
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Smart constructors / simplification                                 *)
(* ------------------------------------------------------------------ *)

let test_fold_constants () =
  check_expr "2+3" (Expr.int 5) Expr.(add (int 2) (int 3));
  check_expr "2*3" (Expr.int 6) Expr.(mul (int 2) (int 3));
  check_expr "7/2 floor" (Expr.int 3) Expr.(div (int 7) (int 2));
  check_expr "-7/2 floor" (Expr.int (-4)) Expr.(div (int (-7)) (int 2));
  check_expr "-7 mod 2" (Expr.int 1) Expr.(mod_ (int (-7)) (int 2));
  check_expr "min" (Expr.int 2) Expr.(min_ (int 2) (int 3));
  check_expr "max" (Expr.int 3) Expr.(max_ (int 2) (int 3))

let test_identities () =
  let i = Expr.var "i" in
  check_expr "i+0" i Expr.(add i zero);
  check_expr "0+i" i Expr.(add zero i);
  check_expr "i-0" i Expr.(sub i zero);
  check_expr "i*1" i Expr.(mul i one);
  check_expr "1*i" i Expr.(mul one i);
  check_expr "i*0" Expr.zero Expr.(mul i zero);
  check_expr "i/1" i Expr.(div i one);
  check_expr "i mod 1" Expr.zero Expr.(mod_ i one);
  check_expr "i-i" Expr.zero Expr.(sub i i);
  check_expr "neg neg" i Expr.(neg (neg i));
  check_expr "(i+2)+3 regroups" Expr.(add i (int 5)) Expr.(add (add i (int 2)) (int 3))

let test_div_mod_law () =
  (* a = b * (a/b) + a mod b for many signs *)
  List.iter
    (fun (a, b) ->
      let q =
        match Expr.(div (int a) (int b)) with Expr.Int q -> q | _ -> assert false
      in
      let r =
        match Expr.(mod_ (int a) (int b)) with Expr.Int r -> r | _ -> assert false
      in
      Alcotest.(check int)
        (Printf.sprintf "%d = %d*%d + %d" a b q r)
        a
        ((b * q) + r);
      check_bool "mod sign matches divisor" true (r = 0 || (r < 0) = (b < 0)))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3); (0, 5) ]

let test_ceil_floor_div () =
  check_expr "ceil_div const" (Expr.int 4) (Expr.ceil_div (Expr.int 7) 2);
  check_expr "floor_div const" (Expr.int 3) (Expr.floor_div (Expr.int 7) 2);
  check_expr "ceil_div by 1" (Expr.var "x") (Expr.ceil_div (Expr.var "x") 1);
  (* symbolic: ceil(x/3) = (x+2)/3 *)
  check_expr "ceil_div symbolic"
    Expr.(div (add (var "x") (int 2)) (int 3))
    (Expr.ceil_div (Expr.var "x") 3)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let test_free_vars () =
  let e =
    Expr.(add (mul (var "i") (var "n")) (Load { array = "a"; index = [ Expr.var "j" ] }))
  in
  Alcotest.(check (list string)) "free vars" [ "i"; "j"; "n" ] (Expr.free_vars e);
  Alcotest.(check (list string)) "arrays" [ "a" ] (Expr.arrays e);
  check_bool "mentions i" true (Expr.mentions "i" e);
  check_bool "mentions k" false (Expr.mentions "k" e)

let test_subst () =
  let e = Expr.(add (var "i") (mul (int 2) (var "j"))) in
  check_expr "subst i->5, j->1"
    (Expr.int 7)
    (Expr.subst [ ("i", Expr.int 5); ("j", Expr.int 1) ] e);
  (* substitution applies inside subscripts *)
  let l = Expr.Load { array = "a"; index = [ Expr.var "i" ] } in
  check_expr "subst in load"
    (Expr.Load { array = "a"; index = [ Expr.int 3 ] })
    (Expr.subst [ ("i", Expr.int 3) ] l);
  (* abs/sgn builtins fold on constants *)
  check_expr "abs folds" (Expr.int 4)
    (Expr.subst [ ("s", Expr.int (-4)) ] (Expr.Call ("abs", [ Expr.var "s" ])));
  check_expr "sgn folds" (Expr.int (-1))
    (Expr.subst [ ("s", Expr.int (-4)) ] (Expr.Call ("sgn", [ Expr.var "s" ])))

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let test_pp_precedence () =
  check_str "mul over add" "1 + 2 * x"
    Expr.(to_string (Add (Int 1, Mul (Int 2, Var "x"))));
  check_str "parens when needed" "(1 + x) * 2"
    Expr.(to_string (Mul (Add (Int 1, Var "x"), Int 2)));
  check_str "sub right assoc parens" "a - (b - c)"
    Expr.(to_string (Sub (Var "a", Sub (Var "b", Var "c"))));
  check_str "min flattening" "min(a, b, c)"
    Expr.(to_string (Min (Min (Var "a", Var "b"), Var "c")));
  check_str "access" "a(i, j - 1)"
    Expr.(to_string (Load { array = "a"; index = [ Var "i"; Sub (Var "j", Int 1) ] }))

let test_nest_pp () =
  let nest =
    Nest.make
      [
        Nest.loop "i" (Expr.int 2) Expr.(sub (var "n") (int 1));
        Nest.loop "j" (Expr.int 2) Expr.(sub (var "n") (int 1));
      ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] },
            Expr.Load { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] } );
      ]
  in
  check_str "paper style rendering"
    "do i = 2, n - 1\n  do j = 2, n - 1\n    a(i, j) = a(i, j)\n  enddo\nenddo\n"
    (Nest.to_string nest)

let test_nest_pardo_step_pp () =
  let nest =
    Nest.make
      [ Nest.loop ~kind:Nest.Pardo ~step:(Expr.int 2) "i" (Expr.int 1) (Expr.var "n") ]
      [ Stmt.Set ("x", Expr.var "i") ]
  in
  check_str "pardo with step" "pardo i = 1, n, 2\n  x = i\nenddo\n"
    (Nest.to_string nest)

(* ------------------------------------------------------------------ *)
(* Nest helpers                                                        *)
(* ------------------------------------------------------------------ *)

let stencil () =
  Nest.make
    [
      Nest.loop "i" (Expr.int 2) Expr.(sub (var "n") (int 1));
      Nest.loop "j" (Expr.int 2) Expr.(sub (var "n") (int 1));
    ]
    [
      Stmt.Store
        ( { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] },
          Expr.(
            add
              (Load { array = "a"; index = [ sub (var "i") (int 1); var "j" ] })
              (Load { array = "a"; index = [ var "i"; sub (var "j") (int 1) ] })) );
    ]

let test_nest_queries () =
  let nest = stencil () in
  Alcotest.(check int) "depth" 2 (Nest.depth nest);
  Alcotest.(check (list string)) "loop vars" [ "i"; "j" ] (Nest.loop_vars nest);
  Alcotest.(check (list string)) "symbolic params" [ "n" ] (Nest.symbolic_params nest);
  Alcotest.(check (list string)) "arrays read" [ "a" ] (Nest.arrays_read nest);
  Alcotest.(check (list string)) "arrays written" [ "a" ] (Nest.arrays_written nest);
  check_str "fresh avoids i" "i2" (Nest.fresh_var nest "i");
  check_str "fresh keeps unused" "kk" (Nest.fresh_var nest "kk")

let test_nest_validation () =
  Alcotest.check_raises "duplicate vars"
    (Invalid_argument "Nest.make: duplicate loop variables") (fun () ->
      ignore
        (Nest.make
           [ Nest.loop "i" Expr.zero Expr.one; Nest.loop "i" Expr.zero Expr.one ]
           []));
  Alcotest.check_raises "empty nest" (Invalid_argument "Nest.make: empty nest")
    (fun () -> ignore (Nest.make [] []))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_expr =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [ map Expr.int (int_range (-20) 20); map Expr.var (oneofl [ "i"; "j"; "n" ]) ]
            else
              let sub = self (n / 2) in
              oneof
                [
                  map2 (fun a b -> Expr.Add (a, b)) sub sub;
                  map2 (fun a b -> Expr.Sub (a, b)) sub sub;
                  map2 (fun a b -> Expr.Mul (a, b)) sub sub;
                  map2 (fun a b -> Expr.Min (a, b)) sub sub;
                  map2 (fun a b -> Expr.Max (a, b)) sub sub;
                  map (fun a -> Expr.Neg a) sub;
                ])
          (min n 6)))

let arb_expr = QCheck.make ~print:Expr.to_string gen_expr

(* Reference evaluator used to check that simplification is semantics-
   preserving. *)
let rec eval env (e : Expr.t) =
  match e with
  | Int n -> n
  | Var v -> List.assoc v env
  | Neg a -> -eval env a
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Min (a, b) -> min (eval env a) (eval env b)
  | Max (a, b) -> max (eval env a) (eval env b)
  | Div _ | Mod _ | Load _ | Call _ -> assert false

let prop_simplify_preserves =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:500 arb_expr
    (fun e ->
      let env = [ ("i", 3); ("j", -2); ("n", 7) ] in
      eval env e = eval env (Expr.simplify e))

let prop_subst_closes =
  QCheck.Test.make ~name:"full substitution yields a constant" ~count:500
    arb_expr (fun e ->
      let env = [ ("i", Expr.int 3); ("j", Expr.int (-2)); ("n", Expr.int 7) ] in
      match Expr.subst env e with Expr.Int _ -> true | _ -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_simplify_preserves; prop_subst_closes ]

let () =
  Alcotest.run "ir"
    [
      ( "expr",
        [
          Alcotest.test_case "constant folding" `Quick test_fold_constants;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "div/mod law" `Quick test_div_mod_law;
          Alcotest.test_case "ceil/floor div" `Quick test_ceil_floor_div;
          Alcotest.test_case "free vars / arrays" `Quick test_free_vars;
          Alcotest.test_case "substitution" `Quick test_subst;
          Alcotest.test_case "pretty precedence" `Quick test_pp_precedence;
        ] );
      ( "nest",
        [
          Alcotest.test_case "paper-style printing" `Quick test_nest_pp;
          Alcotest.test_case "pardo and step printing" `Quick test_nest_pardo_step_pp;
          Alcotest.test_case "queries" `Quick test_nest_queries;
          Alcotest.test_case "validation" `Quick test_nest_validation;
        ] );
      ("properties", qcheck_tests);
    ]
