(* Shared helpers for the test suites: nest builders for the paper's worked
   examples, and an interpreter-backed oracle for semantic comparisons. *)

open Itf_ir
module Env = Itf_exec.Env
module Interp = Itf_exec.Interp

(* Naive substring search (avoids a Str dependency in tests). *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
  m = 0 || go 0

let ld array index : Expr.t = Expr.Load { array; index }
let st array index rhs = Stmt.Store ({ array; index }, rhs)
let i_ = Expr.var "i"
let j_ = Expr.var "j"
let k_ = Expr.var "k"
let n_ = Expr.var "n"

(* Figure 1(a): 5-point stencil averaging. *)
let stencil () =
  Nest.make
    [
      Nest.loop "i" (Expr.int 2) Expr.(sub n_ (int 1));
      Nest.loop "j" (Expr.int 2) Expr.(sub n_ (int 1));
    ]
    [
      st "a" [ i_; j_ ]
        Expr.(
          div
            (add
               (ld "a" [ i_; j_ ])
               (add
                  (ld "a" [ sub i_ (int 1); j_ ])
                  (add
                     (ld "a" [ i_; sub j_ (int 1) ])
                     (add (ld "a" [ add i_ (int 1); j_ ]) (ld "a" [ i_; add j_ (int 1) ])))))
            (int 5));
    ]

(* Figure 6: matrix multiply. *)
let matmul () =
  Nest.make
    [
      Nest.loop "i" Expr.one n_;
      Nest.loop "j" Expr.one n_;
      Nest.loop "k" Expr.one n_;
    ]
    [
      st "A" [ i_; j_ ]
        Expr.(add (ld "A" [ i_; j_ ]) (mul (ld "B" [ i_; k_ ]) (ld "C" [ k_; j_ ])));
    ]

(* Figure 4(a): triangular loop (no dependences). *)
let triangular () =
  Nest.make
    [ Nest.loop "i" Expr.one n_; Nest.loop "j" i_ n_ ]
    [ st "a" [ i_; j_ ] Expr.(add i_ j_) ]

(* Figure 4(c): dense x sparse matrix product, CSR-style. *)
let sparse_matmul () =
  Nest.make
    [
      Nest.loop "i" Expr.one n_;
      Nest.loop "j" Expr.one n_;
      Nest.loop "k" (Expr.Call ("colstr", [ j_ ]))
        Expr.(sub (Call ("colstr", [ add j_ (int 1) ])) (int 1));
    ]
    [
      st "a" [ i_; j_ ]
        Expr.(
          add (ld "a" [ i_; j_ ])
            (mul (ld "b" [ i_; Call ("rowidx", [ k_ ]) ]) (ld "c" [ k_ ])));
    ]

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

(* Arrays referenced by a nest, with their subscript arity. *)
let array_arities (nest : Nest.t) =
  let tbl = Hashtbl.create 8 in
  let note array index = Hashtbl.replace tbl array (List.length index) in
  let rec expr (e : Expr.t) =
    match e with
    | Int _ | Var _ -> ()
    | Neg a -> expr a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
    | Min (a, b) | Max (a, b) ->
      expr a;
      expr b
    | Load { array; index } ->
      note array index;
      List.iter expr index
    | Call (_, args) -> List.iter expr args
  in
  let rec stmt = function
    | Stmt.Store ({ array; index }, rhs) ->
      note array index;
      List.iter expr index;
      expr rhs
    | Stmt.Set (_, rhs) -> expr rhs
    | Stmt.Guard { lhs; rhs; body; _ } ->
      expr lhs;
      expr rhs;
      List.iter stmt body
  in
  List.iter stmt (nest.Nest.inits @ nest.Nest.body);
  Hashtbl.fold (fun a n acc -> (a, n) :: acc) tbl [] |> List.sort compare

(* Deterministic pseudo-random fill so runs are reproducible. *)
let fill_array name data =
  Array.iteri
    (fun k _ -> data.(k) <- (Hashtbl.hash (name, k * 2654435761) mod 1999) - 999)
    data

let make_env ?(funcs = []) ?(lo = -24) ?(hi = 24) ~params nest =
  let env = Env.create () in
  List.iter (fun (v, x) -> Env.set_scalar env v x) params;
  List.iter (fun (name, f) -> Env.declare_function env name f) funcs;
  List.iter
    (fun (a, arity) ->
      Env.declare_array env a (List.init arity (fun _ -> (lo, hi)));
      fill_array a (Env.array_data env a))
    (array_arities nest);
  env

(* Run a nest on a freshly filled environment; return the array snapshot. *)
let run_snapshot ?funcs ?lo ?hi ?(pardo_order = `Forward) ~params nest =
  let env = make_env ?funcs ?lo ?hi ~params nest in
  Interp.run ~pardo_order env nest;
  Env.snapshot env

(* Do two nests compute identical array contents, for all the given pardo
   orders of the second nest? *)
let equivalent ?funcs ?lo ?hi ~params ~orders original transformed =
  let reference = run_snapshot ?funcs ?lo ?hi ~params original in
  List.for_all
    (fun order ->
      run_snapshot ?funcs ?lo ?hi ~pardo_order:order ~params transformed
      = reference)
    orders
