(* Tests for the differential oracle harness (Itf_check) and regression
   tests for the bugs it surfaced. The corpus under corpus/ freezes the
   shrunk reproducer of every divergence a fuzz run has found; replaying
   it keeps past failures fixed. *)

open Itf_ir
module T = Itf_core.Template
module Legality = Itf_core.Legality
module Codegen = Itf_core.Codegen
module Queries = Itf_core.Queries
module Analysis = Itf_dep.Analysis
module Harness = Itf_check.Harness
module Oracle = Itf_check.Oracle
module Repro = Itf_check.Repro

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let nest s = Itf_lang.Parser.parse_nest s

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

let corpus_dir () =
  (* dune runs tests from the test directory; be tolerant of a manual
     `dune exec test/test_check.exe` from the repository root. *)
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_files () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".repro")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let test_corpus_replays_clean () =
  let files = corpus_files () in
  check_bool "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      match Harness.replay (Repro.load path) with
      | Oracle.Diverged ds ->
        Alcotest.failf "%s diverges: %s" path
          (Format.asprintf "%a" Harness.pp_divergences ds)
      | _ -> ())
    files

let test_corpus_roundtrip () =
  List.iter
    (fun path ->
      let case = Repro.load path in
      let case' = Repro.of_string (Repro.to_string case) in
      check_bool (path ^ " round-trips") true
        (Nest.equal case.Itf_check.Gen.nest case'.Itf_check.Gen.nest
        && case.Itf_check.Gen.seq = case'.Itf_check.Gen.seq
        && case.Itf_check.Gen.params = case'.Itf_check.Gen.params))
    (corpus_files ())

(* ------------------------------------------------------------------ *)
(* Fixed-seed smoke run                                                *)
(* ------------------------------------------------------------------ *)

let test_fuzz_smoke () =
  let report = Harness.fuzz ~seed:42 ~budget:200 () in
  check_int "all cases judged" 200 report.Harness.cases;
  check_bool "some legal cases executed" true (report.Harness.legal_ok > 0);
  check_bool "some rejections confirmed" true
    (report.Harness.confirmed_rejections > 0);
  check_int "no skips" 0 report.Harness.skipped;
  (match report.Harness.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "seed 42 case %d diverges: %s" f.Harness.index
      (Format.asprintf "%a" Harness.pp_divergences f.Harness.divergences));
  (* determinism: the same seed judges cases identically *)
  let report' = Harness.fuzz ~seed:42 ~budget:200 () in
  check_int "deterministic legal count" report.Harness.legal_ok
    report'.Harness.legal_ok;
  check_int "deterministic rejection count" report.Harness.rejected_dependence
    report'.Harness.rejected_dependence

(* ------------------------------------------------------------------ *)
(* Regression: shifted-grid dependence analysis (fuzz seed 1)          *)
(* ------------------------------------------------------------------ *)

(* do j = i, i+3, 3 puts j on a grid shifted per i: b(j+1) and b(j-3)
   intersect across i (j = 4 reads what j = 0 wrote) even though
   3*dt = 4 has no solution on a shared grid. The pre-fix analyzer
   conflated the residual i symbols of source and sink and proved
   independence, so parallelizing i was approved and diverged. *)
let test_analysis_shifted_grid () =
  let n =
    nest
      {|do i = 0, 1
  do j = i, i + 3, 3
    b(j + 1) = (b(j - 3) + 1) mod 9973
  enddo
enddo|}
  in
  let vectors = Analysis.vectors n in
  check_bool "outer loop carries the b dependence" false
    (List.mem 0 (Queries.parallelizable_loops ~depth:2 vectors));
  match Legality.check n [ T.parallelize_one ~n:2 0 ] with
  | Legality.Legal _ -> Alcotest.fail "parallelize 0 must be rejected"
  | _ -> ()

(* Same conflation on an output dependence: the pre-fix analyzer reported
   no vectors at all for this nest. *)
let test_analysis_shifted_grid_output () =
  let n =
    nest
      {|do i = 1, 0, -1
  do j = i - 1, i - 1, 3
    do k = -1, 0
      c(j + k - 3, j - i) = (a(k + i + 1, k - 1) + c(j + k - 3, j - i)) mod 9973
    enddo
  enddo
enddo|}
  in
  let vectors = Analysis.vectors n in
  check_bool "vectors found at all" true (vectors <> []);
  check_bool "outer loop carries the c output dependence" false
    (List.mem 0 (Queries.parallelizable_loops ~depth:3 vectors))

(* ------------------------------------------------------------------ *)
(* Regression: unimodular mapping on shifted grids (fuzz seed 1)       *)
(* ------------------------------------------------------------------ *)

(* The skew i' = i + j is illegal here: the output dependence on
   a(k-j-2, 2j+3) is (1, 0, 0) in value space but (1, -1, 0) over the
   step-normalized counters the matrix acts on, so the skewed nest visits
   the dependent pair in reverse. The pre-fix plain d' = M d rule mapped
   (+, 0, 0-) to a lex-positive image and approved it. *)
let test_depmap_skew_shifted_grid () =
  let n =
    nest
      {|do i = 1, 0, -1
  do j = i - 1, i - 3, -1
    do k = j - 1, j - 1, -1
      a(k - j - 2, 2 * j + 3) = (c(j + i, 2 * i + 1) + 3) mod 9973
    enddo
  enddo
enddo|}
  in
  let m = Itf_mat.Intmat.of_rows [ [ 1; 1; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ] in
  (match Legality.check n [ T.unimodular m ] with
  | Legality.Legal _ -> Alcotest.fail "shifted-grid skew must be rejected"
  | Legality.Dependence_violation _ -> ()
  | v ->
    Alcotest.failf "expected a dependence violation, got %s"
      (Format.asprintf "%a" Legality.pp_verdict v));
  (* the same matrix stays legal on an aligned variant of the nest: the
     conversion must not widen components whose grids are shared *)
  let aligned =
    nest
      {|do i = 1, 0, -1
  do j = -1, -3, -1
    do k = j - 1, j - 1, -1
      a(k - j - 2, 2 * j + 3) = (c(j + i, 2 * i + 1) + 3) mod 9973
    enddo
  enddo
enddo|}
  in
  match Legality.check aligned [ T.unimodular m ] with
  | Legality.Legal _ -> ()
  | v ->
    Alcotest.failf "aligned skew should stay legal, got %s"
      (Format.asprintf "%a" Legality.pp_verdict v)

(* ------------------------------------------------------------------ *)
(* Regression: pardo markings must survive only supported (fuzz seed 1) *)
(* ------------------------------------------------------------------ *)

(* Blocking do i / pardo j with a (1, 1) dependence is legal, but the
   block loop derived from j now carries (0, 1, 1, any) and must come out
   sequential; the element loop inside the tile stays parallel. *)
let test_block_pardo_demotion () =
  let n =
    nest
      {|do i = 0, 1
  pardo j = 0, 2
    b(j - i + 3) = c(2 * j - 3, j + 3) mod 9973
  enddo
enddo|}
  in
  let t =
    T.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.int 3; Expr.int 2 |]
  in
  match Legality.check n [ t ] with
  | Legality.Legal { nest = out; _ } ->
    let kinds =
      List.map (fun (l : Nest.loop) -> l.Nest.kind) out.Nest.loops
    in
    (match kinds with
    | [ Nest.Do; jj; Nest.Do; je ] ->
      check_bool "block loop of j demoted to sequential" true (jj = Nest.Do);
      check_bool "element loop of j stays parallel" true (je = Nest.Pardo)
    | _ -> Alcotest.failf "unexpected output depth %d" (List.length kinds))
  | v ->
    Alcotest.failf "blocking should be legal, got %s"
      (Format.asprintf "%a" Legality.pp_verdict v)

(* ------------------------------------------------------------------ *)
(* Regression: codegen guards (satellites)                             *)
(* ------------------------------------------------------------------ *)

let test_normalize_steps_symbolic () =
  let n =
    nest {|do i = 0, 9, n
  a(i, 0) = i
enddo|}
  in
  let m = Itf_mat.Intmat.of_rows [ [ -1 ] ] in
  Alcotest.check_raises "symbolic step rejected"
    (Invalid_argument "Codegen.normalize_steps: non-constant step") (fun () ->
      ignore (Codegen.apply n (T.unimodular m)))

let test_coalesce_empty_band () =
  (* A statically empty loop in the band must not generate div/mod by a
     zero iteration count. *)
  let n =
    nest
      {|do i = 0, 4
  do j = 3, 1
    a(i, j) = i + j
  enddo
enddo|}
  in
  let out = Codegen.apply n (T.coalesce ~n:2 ~i:0 ~j:1) in
  check_int "single loop" 1 (List.length out.Nest.loops);
  let l = List.hd out.Nest.loops in
  check_bool "coalesced loop statically empty" true
    (Expr.to_int l.Nest.hi = Some (-1));
  let no_zero_div =
    let rec ok (e : Expr.t) =
      match e with
      | Expr.Div (a, b) | Expr.Mod (a, b) ->
        Expr.to_int b <> Some 0 && ok a && ok b
      | Expr.Int _ | Expr.Var _ -> true
      | Expr.Neg a -> ok a
      | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b)
      | Expr.Min (a, b) | Expr.Max (a, b) -> ok a && ok b
      | Expr.Load { index; _ } -> List.for_all ok index
      | Expr.Call (_, args) -> List.for_all ok args
    in
    List.for_all
      (function Stmt.Set (_, e) -> ok e | _ -> true)
      out.Nest.inits
  in
  check_bool "no division by a zero count in inits" true no_zero_div

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "check"
    [
      ( "corpus",
        [
          Alcotest.test_case "replays clean" `Quick test_corpus_replays_clean;
          Alcotest.test_case "round-trips" `Quick test_corpus_roundtrip;
        ] );
      ( "fuzz",
        [ Alcotest.test_case "fixed-seed smoke" `Slow test_fuzz_smoke ] );
      ( "regressions",
        [
          Alcotest.test_case "analysis: shifted-grid flow dep" `Quick
            test_analysis_shifted_grid;
          Alcotest.test_case "analysis: shifted-grid output dep" `Quick
            test_analysis_shifted_grid_output;
          Alcotest.test_case "depmap: skew on shifted grid" `Quick
            test_depmap_skew_shifted_grid;
          Alcotest.test_case "legality: block pardo demotion" `Quick
            test_block_pardo_demotion;
          Alcotest.test_case "codegen: symbolic step rejected" `Quick
            test_normalize_steps_symbolic;
          Alcotest.test_case "codegen: coalesce empty band" `Quick
            test_coalesce_empty_band;
        ] );
    ]
