(* Tests for the framework core: templates, Table 2 dependence mapping,
   sequence composition, Tables 3-4 code generation, and the uniform
   legality test — including the paper's Figures 1, 2, 4 and the Appendix A
   matrix-multiply pipeline. *)

open Itf_ir
module Dir = Itf_dep.Dir
module Depvec = Itf_dep.Depvec
module Template = Itf_core.Template
module Depmap = Itf_core.Depmap
module Sequence = Itf_core.Sequence
module Codegen = Itf_core.Codegen
module Legality = Itf_core.Legality
module Framework = Itf_core.Framework
module Intmat = Itf_mat.Intmat

let v = Depvec.of_string
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dv = Alcotest.testable Depvec.pp Depvec.equal
let vecs_str vs = List.sort compare (List.map Depvec.to_string vs)

(* ------------------------------------------------------------------ *)
(* Template validation                                                 *)
(* ------------------------------------------------------------------ *)

let test_template_validation () =
  check_bool "non-unimodular rejected" true
    (match Template.unimodular (Intmat.of_rows [ [ 2 ] ]) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "bad perm rejected" true
    (match Template.reverse_permute ~rev:[| false; false |] ~perm:[| 0; 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "bad range rejected" true
    (match Template.block ~n:3 ~i:2 ~j:1 ~bsize:[||] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "bsize arity" true
    (match Template.block ~n:3 ~i:0 ~j:1 ~bsize:[| Expr.int 4 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_template_depths () =
  check_int "block grows" 6
    (Template.output_depth (Template.block ~n:3 ~i:0 ~j:2 ~bsize:(Array.make 3 (Expr.int 4))));
  check_int "coalesce shrinks" 2
    (Template.output_depth (Template.coalesce ~n:3 ~i:1 ~j:2));
  check_int "interleave grows" 4
    (Template.output_depth
       (Template.interleave ~n:3 ~i:1 ~j:1 ~isize:[| Expr.int 2 |]));
  check_int "others preserve" 3
    (Template.output_depth (Template.parallelize [| true; false; true |]))

(* ------------------------------------------------------------------ *)
(* Table 2: dependence mapping                                         *)
(* ------------------------------------------------------------------ *)

let test_unimodular_map () =
  (* Figure 1's transformation: skew then interchange; T = I_swap * Skew. *)
  let m = Intmat.mul (Intmat.interchange 2 0 1) (Intmat.skew 2 0 1 1) in
  let t = Template.unimodular m in
  Alcotest.check (Alcotest.list dv) "(1,0) -> (1,1)" [ v "(1,1)" ]
    (Depmap.map_vector t (v "(1,0)"));
  Alcotest.check (Alcotest.list dv) "(0,1) -> (1,0)" [ v "(1,0)" ]
    (Depmap.map_vector t (v "(0,1)"));
  (* direction values through a skew: (+,-) -> (j+i could be anything, +) *)
  Alcotest.check (Alcotest.list dv) "(+,-) -> (*,+)" [ v "(*,+)" ]
    (Depmap.map_vector t (v "(+,-)"));
  (* single-coefficient rows scale exactly, keeping +- precision *)
  let r = Template.unimodular (Intmat.reversal 2 0) in
  Alcotest.check (Alcotest.list dv) "reversal keeps +-" [ v "(+-,3)" ]
    (Depmap.map_vector r (v "(+-,3)"))

let test_reverse_permute_map_figure2 () =
  (* Figure 2(b): interchange is illegal for D = {(1,-1),(+,0)}. *)
  let inter = Template.interchange ~n:2 0 1 in
  let d' = Depmap.map_set inter [ v "(1,-1)"; v "(+,0)" ] in
  check_bool "creates lex-negative (-1,1)" true
    (Depvec.set_may_lex_negative d' <> None);
  (* Figure 2(c): reverse loop j, then interchange: legal; the paper's
     transformed set is {(1,1),(0,+)}. *)
  let revperm =
    Template.reverse_permute ~rev:[| false; true |] ~perm:[| 1; 0 |]
  in
  let d' = Depmap.map_set revperm [ v "(1,-1)"; v "(+,0)" ] in
  Alcotest.(check (list string))
    "mapped vectors" [ "(0, +)"; "(1, 1)" ] (vecs_str d');
  check_bool "no lex-negative" true (Depvec.set_may_lex_negative d' = None)

let test_parmap () =
  let p e = Depmap.parmap e in
  Alcotest.check dv "0 stays" [| Depvec.dist 0 |] [| p (Depvec.dist 0) |];
  Alcotest.check dv "+ widens to +-" (v "(+-)") [| p (Depvec.dir Dir.Pos) |];
  Alcotest.check dv "3 widens to +-" (v "(+-)") [| p (Depvec.dist 3) |];
  Alcotest.check dv "0+ widens to *" (v "(*)") [| p (Depvec.dir Dir.NonNeg) |];
  (* parallelizing a dependence-free loop is legal; a carried one is not *)
  let t = Template.parallelize_one ~n:2 1 in
  check_bool "carried by pardo -> illegal" true
    (Depvec.set_may_lex_negative (Depmap.map_set t [ v "(0,+)" ]) <> None);
  check_bool "carried outside -> legal" true
    (Depvec.set_may_lex_negative (Depmap.map_set t [ v "(+,+)" ]) = None)

let test_blockmap () =
  let pairs e = Depmap.blockmap e in
  Alcotest.(check int) "zero -> 1 pair" 1 (List.length (pairs (Depvec.dist 0)));
  Alcotest.(check int) "distance 1 -> 2 pairs" 2 (List.length (pairs (Depvec.dist 1)));
  check_bool "dist 1 pairs per Table 2" true
    (pairs (Depvec.dist 1)
    = [ (Depvec.dist 0, Depvec.dist 1); (Depvec.dist 1, Depvec.dir Dir.Any) ]);
  check_bool "dist 5 block part widens to +" true
    (pairs (Depvec.dist 5)
    = [ (Depvec.dist 0, Depvec.dist 5); (Depvec.dir Dir.Pos, Depvec.dir Dir.Any) ]);
  check_bool "* -> (*,*)" true
    (pairs (Depvec.dir Dir.Any) = [ (Depvec.dir Dir.Any, Depvec.dir Dir.Any) ])

let test_block_map_fanout () =
  (* Blocking both loops of (1, 1) on a rectangular band:
     2 x 2 = 4 vectors of length 4. *)
  let t = Template.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.var "b1"; Expr.var "b2" |] in
  let out = Depmap.map_vector ~rectangular_bands:true t (v "(1,1)") in
  check_int "fanout 4" 4 (List.length out);
  check_bool "all length 4" true (List.for_all (fun d -> Array.length d = 4) out);
  check_bool "contains (0,0,1,1)" true
    (List.exists (Depvec.equal (v "(0,0,1,1)")) out);
  (* Without the rectangularity guarantee, the block component of the
     second band loop is widened once the first block component is
     nonzero: 2 + 1 = 3 vectors. *)
  check_int "conservative fanout 3" 3
    (List.length (Depmap.map_vector t (v "(1,1)")))

let test_mergedirs () =
  let d s = Depvec.of_string ("(" ^ s ^ ")") in
  let m l = Depmap.mergedirs (Array.to_list (Depvec.of_string l)) in
  Alcotest.check (Alcotest.testable Depvec.pp_elem ( = )) "zeros then distance"
    (d "7").(0)
    (m "(0, 0, 7)");
  Alcotest.check (Alcotest.testable Depvec.pp_elem ( = )) "(+,-) -> +"
    (d "+").(0)
    (m "(+, -)");
  Alcotest.check (Alcotest.testable Depvec.pp_elem ( = )) "(2,-1) -> +"
    (d "+").(0)
    (m "(2, -1)");
  Alcotest.check (Alcotest.testable Depvec.pp_elem ( = )) "(0+,-) -> +-"
    (d "+-").(0)
    (m "(0+, -)")

let test_imap () =
  let pairs = Depmap.imap (Depvec.dist 0) in
  check_bool "zero -> (0,0)" true (pairs = [ (Depvec.dist 0, Depvec.dist 0) ]);
  let pairs = Depmap.imap (Depvec.dir Dir.Pos) in
  check_int "three phase groups" 3 (List.length pairs);
  (* phase-negative pairs must force a positive strided component:
     interleaving a carried loop is illegal *)
  let t = Template.interleave ~n:1 ~i:0 ~j:0 ~isize:[| Expr.var "f" |] in
  check_bool "interleave carried loop illegal" true
    (Depvec.set_may_lex_negative (Depmap.map_set t [ v "(1)" ]) <> None);
  check_bool "interleave independent loop legal" true
    (Depvec.set_may_lex_negative (Depmap.map_set t [ v "(0)" ]) = None)

(* ------------------------------------------------------------------ *)
(* Figure 7: the matrix-multiply pipeline's dependence vectors          *)
(* ------------------------------------------------------------------ *)

let fig7_sequence () =
  [
    (* ReversePermute: perm=[3 1 2] (1-based) = [2;0;1] 0-based. *)
    Template.reverse_permute ~rev:[| false; false; false |] ~perm:[| 2; 0; 1 |];
    (* Block all three loops with symbolic sizes [bj bk bi]. *)
    Template.block ~n:3 ~i:0 ~j:2
      ~bsize:[| Expr.var "bj"; Expr.var "bk"; Expr.var "bi" |];
    (* Parallelize loops 1 and 3 (1-based) = 0 and 2. *)
    Template.parallelize [| true; false; true; false; false; false |];
    (* ReversePermute: perm=[1 3 2 4 5 6] (1-based): swap positions 1,2. *)
    Template.reverse_permute
      ~rev:(Array.make 6 false)
      ~perm:[| 0; 2; 1; 3; 4; 5 |];
    (* Coalesce loops 1..2 (1-based) = 0..1. *)
    Template.coalesce ~n:6 ~i:0 ~j:1;
  ]

let test_fig7_vectors () =
  let stages =
    List.fold_left
      (fun (ds, acc) t ->
        (* matmul is rectangular, so Table 2's exact entries apply *)
        let ds' = Depmap.map_set ~rectangular_bands:true t ds in
        (ds', ds' :: acc))
      ([ v "(0,0,+)" ], [])
      (fig7_sequence ())
  in
  let history = List.rev (snd stages) in
  let expect =
    [
      (* after ReversePermute *) [ "(0, +, 0)" ];
      (* after Block *) [ "(0, 0, 0, 0, +, 0)"; "(0, +, 0, 0, *, 0)" ];
      (* after Parallelize *) [ "(0, 0, 0, 0, +, 0)"; "(0, +, 0, 0, *, 0)" ];
      (* after ReversePermute *) [ "(0, 0, 0, 0, +, 0)"; "(0, 0, +, 0, *, 0)" ];
      (* after Coalesce *) [ "(0, 0, 0, +, 0)"; "(0, +, 0, *, 0)" ];
    ]
  in
  List.iteri
    (fun k (got, want) ->
      Alcotest.(check (list string))
        (Printf.sprintf "stage %d" (k + 1))
        (List.sort compare want) (vecs_str got))
    (List.combine history expect)

(* ------------------------------------------------------------------ *)
(* Sequence composition                                                *)
(* ------------------------------------------------------------------ *)

let test_sequence_reduce () =
  let s1 = Template.skew ~n:2 ~src:0 ~dst:1 ~factor:1 in
  let u2 = Template.unimodular (Intmat.interchange 2 0 1) in
  (match Sequence.reduce [ s1; u2 ] with
  | [ Template.Unimodular { m; _ } ] ->
    check_bool "merged matrix = product" true
      (Intmat.equal m (Intmat.mul (Intmat.interchange 2 0 1) (Intmat.skew 2 0 1 1)))
  | _ -> Alcotest.fail "expected a single Unimodular");
  (* interchange twice = identity, which reduces away entirely *)
  let i01 = Template.interchange ~n:2 0 1 in
  check_int "interchange^2 reduces to empty" 0
    (List.length (Sequence.reduce [ i01; i01 ]));
  (* reversal then interchange composes masks through the permutation *)
  let r0 = Template.reversal ~n:2 0 in
  (match Sequence.reduce [ r0; i01 ] with
  | [ Template.Reverse_permute { rev; perm; _ } ] ->
    check_bool "loop 0 still the reversed one" true (rev = [| true; false |]);
    check_bool "perm swaps" true (perm = [| 1; 0 |])
  | _ -> Alcotest.fail "expected a single ReversePermute");
  (* parallelize flags union *)
  (match
     Sequence.reduce
       [ Template.parallelize [| true; false |]; Template.parallelize [| false; true |] ]
   with
  | [ Template.Parallelize { parflag; _ } ] ->
    check_bool "union" true (parflag = [| true; true |])
  | _ -> Alcotest.fail "expected a single Parallelize")

let test_sequence_compose_semantics () =
  (* Reduction must not change the dependence mapping. *)
  let seq =
    [
      Template.skew ~n:2 ~src:0 ~dst:1 ~factor:1;
      Template.unimodular (Intmat.interchange 2 0 1);
      Template.parallelize [| false; true |];
      Template.parallelize [| true; false |];
    ]
  in
  let reduced = Sequence.reduce seq in
  check_bool "reduced is shorter" true (List.length reduced < List.length seq);
  let d0 = [ v "(1,0)"; v "(0,1)" ] in
  Alcotest.(check (list string))
    "same mapped set"
    (vecs_str (Framework.map_vectors seq d0))
    (vecs_str (Framework.map_vectors reduced d0))

let test_sequence_well_formed () =
  let b = Template.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.int 4; Expr.int 4 |] in
  check_bool "chain ok" true
    (Sequence.well_formed [ b; Template.parallelize (Array.make 4 false) ]);
  check_bool "chain broken" false
    (Sequence.well_formed [ b; Template.parallelize (Array.make 2 false) ]);
  check_int "output depth" 4 (Sequence.output_depth ~input:2 [ b ])

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)
(* ------------------------------------------------------------------ *)

let render nest = Nest.to_string nest

let test_codegen_figure1 () =
  (* Skew j by i, then interchange; compare against Figure 1(b). *)
  let m = Intmat.mul (Intmat.interchange 2 0 1) (Intmat.skew 2 0 1 1) in
  let r = Framework.apply_exn (Builders.stencil ()) [ Template.unimodular m ] in
  let text = render r.Framework.nest in
  (* New loops named jj/ii per the paper's naming. *)
  check_bool "outer loop jj" true
    (String.length text >= 5 && String.sub text 0 5 = "do jj");
  check_bool "inits j = jj - ii and i = ii" true
    (Builders.contains ~sub:"j = jj - ii" text
    && Builders.contains ~sub:"i = ii" text);
  (* Figure 1(b) bounds: jj = 4 .. n+n-2; ii = max(2, jj-n+1) .. min(n-1, jj-2). *)
  let loops = Array.of_list r.Framework.nest.Nest.loops in
  Alcotest.(check string) "jj lower" "4" (Expr.to_string loops.(0).Nest.lo);
  (* semantic spot check of the ii bounds at n = 9, jj = 6 *)
  let env = [ ("n", Expr.int 9); ("jj", Expr.int 6) ] in
  Alcotest.(check string)
    "ii lower at (9,6)" "2"
    (Expr.to_string (Expr.subst env loops.(1).Nest.lo));
  Alcotest.(check string)
    "ii upper at (9,6)" "4"
    (Expr.to_string (Expr.subst env loops.(1).Nest.hi))

let test_codegen_figure1_semantics () =
  let m = Intmat.mul (Intmat.interchange 2 0 1) (Intmat.skew 2 0 1 1) in
  let r = Framework.apply_exn (Builders.stencil ()) [ Template.unimodular m ] in
  check_bool "stencil results identical" true
    (Builders.equivalent ~params:[ ("n", 8) ] ~orders:[ `Forward ]
       (Builders.stencil ()) r.Framework.nest)

let test_codegen_reverse_runtime_step () =
  (* ReversePermute supports runtime steps (paper Section 4.2's argument
     for preferring it over Unimodular). *)
  let nest =
    Nest.make
      [ Nest.loop ~step:(Expr.var "s") "i" Expr.one (Expr.var "n") ]
      [ Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "i") ]
  in
  let r = Framework.apply_exn ~vectors:[] nest [ Template.reversal ~n:1 0 ] in
  check_bool "identical including partial strides" true
    (List.for_all
       (fun s ->
         Builders.equivalent ~params:[ ("n", 13); ("s", s) ] ~orders:[ `Forward ]
           nest r.Framework.nest)
       [ 1; 2; 3; 5 ])

let test_codegen_block_triangular () =
  (* Blocking a triangular nest must produce exactly the same iterations
     (non-empty tiles only is checked separately). *)
  let t =
    Template.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.var "b1"; Expr.var "b2" |]
  in
  let r = Framework.apply_exn (Builders.triangular ()) [ t ] in
  check_bool "same results" true
    (List.for_all
       (fun (n, b1, b2) ->
         Builders.equivalent
           ~params:[ ("n", n); ("b1", b1); ("b2", b2) ]
           ~orders:[ `Forward ] (Builders.triangular ()) r.Framework.nest)
       [ (7, 2, 3); (8, 3, 3); (5, 1, 2); (6, 10, 10) ])

let test_block_nonempty_tiles () =
  (* Count block-loop iterations whose element loops are empty: the
     paper's Table 4 construction guarantees none for triangular bounds. *)
  let t = Template.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.int 3; Expr.int 3 |] in
  let r = Framework.apply_exn (Builders.triangular ()) [ t ] in
  let env = Builders.make_env ~params:[ ("n", 10) ] r.Framework.nest in
  (* iterate only the two outer (block) loops and check inner emptiness *)
  let loops = Array.of_list r.Framework.nest.Nest.loops in
  let empties = ref 0 and tiles = ref 0 in
  let eval e = Itf_exec.Interp.eval env e in
  let b0 = loops.(0) and b1 = loops.(1) and e0 = loops.(2) and e1 = loops.(3) in
  let lo0 = eval b0.Nest.lo and hi0 = eval b0.Nest.hi and st0 = eval b0.Nest.step in
  let k0 = ref lo0 in
  while !k0 <= hi0 do
    Itf_exec.Env.set_scalar env b0.Nest.var !k0;
    let lo1 = eval b1.Nest.lo and hi1 = eval b1.Nest.hi and st1 = eval b1.Nest.step in
    let k1 = ref lo1 in
    while !k1 <= hi1 do
      Itf_exec.Env.set_scalar env b1.Nest.var !k1;
      incr tiles;
      (* does the tile contain at least one (i, j) iteration? *)
      let found = ref false in
      let ilo = eval e0.Nest.lo and ihi = eval e0.Nest.hi in
      for i = ilo to ihi do
        Itf_exec.Env.set_scalar env e0.Nest.var i;
        let jlo = eval e1.Nest.lo and jhi = eval e1.Nest.hi in
        if jlo <= jhi then found := true
      done;
      if not !found then incr empties;
      k1 := !k1 + st1
    done;
    k0 := !k0 + st0
  done;
  check_bool "visited several tiles" true (!tiles > 5);
  check_int "no empty tiles" 0 !empties

let test_codegen_coalesce () =
  let t = Template.coalesce ~n:3 ~i:0 ~j:2 in
  let r = Framework.apply_exn (Builders.matmul ()) [ t ] in
  check_int "single loop" 1 (Nest.depth r.Framework.nest);
  check_int "three inits" 3 (List.length r.Framework.nest.Nest.inits);
  check_bool "same results" true
    (Builders.equivalent ~params:[ ("n", 5) ] ~orders:[ `Forward ]
       (Builders.matmul ()) r.Framework.nest)

let test_codegen_coalesce_steps () =
  (* Coalescing loops with non-unit and negative steps. *)
  let nest =
    Nest.make
      [
        Nest.loop ~step:(Expr.int 2) "i" Expr.one (Expr.var "n");
        Nest.loop ~step:(Expr.int (-3)) "j" (Expr.var "n") Expr.one;
      ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] },
            Expr.(add (mul (var "i") (int 100)) (var "j")) );
      ]
  in
  let r = Framework.apply_exn ~vectors:[] nest [ Template.coalesce ~n:2 ~i:0 ~j:1 ] in
  check_bool "strided coalesce identical" true
    (List.for_all
       (fun n ->
         Builders.equivalent ~params:[ ("n", n) ] ~orders:[ `Forward ] nest
           r.Framework.nest)
       [ 1; 2; 5; 8 ])

let test_block_misaligned_grid () =
  (* Regression: blocking a strided loop whose lower bound depends on a
     sibling band variable (here the phase loop introduced by Interleave)
     must keep element values on the loop's grid. Found by the exhaustive
     small-world suite. *)
  let nest =
    Nest.make
      [
        Nest.loop ~step:(Expr.int (-2)) "i" (Expr.int 9) Expr.zero;
        Nest.loop "j" Expr.zero (Expr.int 4);
      ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] },
            Expr.(add (Load { array = "b"; index = [ var "j"; var "i" ] }) (var "i")) );
      ]
  in
  let seq =
    [
      Template.interleave ~n:2 ~i:1 ~j:1 ~isize:[| Expr.int 2 |];
      Template.block ~n:3 ~i:0 ~j:2 ~bsize:(Array.make 3 (Expr.int 2));
    ]
  in
  let r = Framework.apply_exn nest seq in
  check_bool "misaligned tiles still equivalent" true
    (Builders.equivalent ~params:[] ~orders:[ `Forward ] nest r.Framework.nest)

let test_codegen_interleave () =
  let t = Template.interleave ~n:2 ~i:1 ~j:1 ~isize:[| Expr.var "f" |] in
  let r = Framework.apply_exn (Builders.triangular ()) [ t ] in
  check_int "depth 3" 3 (Nest.depth r.Framework.nest);
  check_bool "same results for several factors" true
    (List.for_all
       (fun f ->
         Builders.equivalent ~params:[ ("n", 9); ("f", f) ] ~orders:[ `Forward ]
           (Builders.triangular ()) r.Framework.nest)
       [ 1; 2; 3; 7 ])

let test_codegen_parallelize_kinds () =
  let r =
    Framework.apply_exn (Builders.matmul ())
      [ Template.parallelize [| true; false; false |] ]
  in
  check_bool "outer pardo" true
    ((List.hd r.Framework.nest.Nest.loops).Nest.kind = Nest.Pardo);
  (* matmul's (0,0,+) is not carried by i: parallel execution is safe *)
  check_bool "parallel result identical under adversarial order" true
    (Builders.equivalent ~params:[ ("n", 6) ]
       ~orders:[ `Forward; `Reverse; `Shuffle 3 ] (Builders.matmul ())
       r.Framework.nest)

(* ------------------------------------------------------------------ *)
(* Legality                                                            *)
(* ------------------------------------------------------------------ *)

let test_legality_figure2 () =
  let d = [ v "(1,-1)"; v "(+,0)" ] in
  let nest = Builders.stencil () in
  (* interchange alone: illegal *)
  (match Legality.check ~vectors:d nest [ Template.interchange ~n:2 0 1 ] with
  | Legality.Dependence_violation _ -> ()
  | _ -> Alcotest.fail "expected dependence violation");
  (* reverse j then interchange: legal *)
  check_bool "reverse+interchange legal" true
    (Legality.is_legal ~vectors:d nest
       [ Template.reverse_permute ~rev:[| false; true |] ~perm:[| 1; 0 |] ])

let figure2_src =
  "do i = 2, n - 1\n\
  \  do j = 2, n - 1\n\
  \    a(i, j) = b(j)\n\
  \    if b(j) > 0\n\
  \      b(j) = a(i - 1, j + 1)\n\
  \    endif\n\
  \  enddo\n\
   enddo\n"

let test_figure2_real_program () =
  (* The paper's actual Figure 2(a) body, conditional included: the
     analyzer must produce D = {(1,-1), (+,0)} by itself. *)
  let nest = Itf_lang.Parser.parse_nest figure2_src in
  Alcotest.(check (list string))
    "analyzer derives the paper's D"
    (List.sort compare [ "(1, -1)"; "(+, 0)" ])
    (vecs_str (Itf_dep.Analysis.vectors nest));
  check_bool "interchange illegal (default analyzer)" false
    (Legality.is_legal nest [ Template.interchange ~n:2 0 1 ]);
  let revperm = Template.reverse_permute ~rev:[| false; true |] ~perm:[| 1; 0 |] in
  check_bool "reverse-then-interchange legal" true
    (Legality.is_legal nest [ revperm ]);
  let r = Framework.apply_exn nest [ revperm ] in
  check_bool "transformed program equivalent (guard included)" true
    (Builders.equivalent ~params:[ ("n", 10) ] ~orders:[ `Forward ] nest
       r.Framework.nest)

let test_legality_intermediate_stages_need_not_be_legal () =
  (* Figure 2 again, as a two-step sequence: step 1 (reversal) produces
     (-1,...)-style vectors — ILLEGAL alone — but reversal-then-interchange
     as a whole is fine when expressed in the right order. Here: interchange
     first gives (-1,1): illegal alone; then reversing the (new) outer loop
     fixes it. The sequence must be accepted. *)
  let d = [ v "(1,-1)" ] in
  let nest = Builders.stencil () in
  let seq = [ Template.interchange ~n:2 0 1; Template.reversal ~n:2 0 ] in
  check_bool "whole sequence legal despite illegal prefix" true
    (Legality.is_legal ~vectors:d nest seq);
  check_bool "prefix alone is illegal" true
    (not (Legality.is_legal ~vectors:d nest [ Template.interchange ~n:2 0 1 ]))

let test_legality_figure4_nonlinear_bounds () =
  let nest = Builders.sparse_matmul () in
  (* Unimodular interchange of j and k: rejected by the bounds test
     (colstr(j) is nonlinear in j). *)
  (match
     Legality.check ~vectors:[] nest
       [ Template.unimodular (Intmat.interchange 3 1 2) ]
   with
  | Legality.Bounds_violation { index = 0; violations } ->
    check_bool "mentions nonlinear" true
      (List.exists
         (fun v ->
           Builders.contains ~sub:"nonlinear" (Itf_core.Boundsmap.message v))
         violations)
  | _ -> Alcotest.fail "expected bounds violation");
  (* ReversePermute moving i innermost: bounds of j and k are invariant in
     i, so the preconditions hold... but j's bounds are also invariant and
     k's bounds are invariant in i specifically. *)
  let perm = [| 2; 0; 1 |] in
  (* i -> innermost *)
  check_bool "ReversePermute i to innermost is ACCEPTED... by bounds" true
    (match
       Legality.check ~vectors:[] nest
         [ Template.reverse_permute ~rev:(Array.make 3 false) ~perm ]
     with
    | Legality.Legal _ -> true
    | _ -> false)

let test_legality_unimodular_rejects_runtime_step () =
  let nest =
    Nest.make
      [ Nest.loop ~step:(Expr.var "s") "i" Expr.one (Expr.var "n") ]
      [ Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "i") ]
  in
  (match
     Legality.check ~vectors:[] nest
       [ Template.unimodular (Intmat.reversal 1 0) ]
   with
  | Legality.Bounds_violation _ -> ()
  | _ -> Alcotest.fail "expected bounds violation for runtime step");
  (* the identity Unimodular reduces away and is accepted as a no-op *)
  check_bool "identity unimodular is a legal no-op" true
    (Legality.is_legal ~vectors:[] nest
       [ Template.unimodular (Intmat.identity 1) ]);
  (* but ReversePermute accepts it *)
  check_bool "reversal fine" true
    (Legality.is_legal ~vectors:[] nest [ Template.reversal ~n:1 0 ])

let test_legality_uses_analyzer_by_default () =
  (* matmul: interchange is legal ((0,0,+) maps fine); parallelizing k is
     illegal ((0,0,+) is carried by k). *)
  check_bool "interchange legal" true
    (Legality.is_legal (Builders.matmul ()) [ Template.interchange ~n:3 0 1 ]);
  check_bool "parallelize k illegal" false
    (Legality.is_legal (Builders.matmul ()) [ Template.parallelize_one ~n:3 2 ]);
  check_bool "parallelize i legal" true
    (Legality.is_legal (Builders.matmul ()) [ Template.parallelize_one ~n:3 0 ])

let lu_src =
  "do k = 1, n\n\
  \  do i = k + 1, n\n\
  \    do j = k + 1, n\n\
  \      a(i, j) = a(i, j) - a(i, k) * a(k, j)\n\
  \    enddo\n\
  \  enddo\n\
   enddo\n"

let test_lu_update_kernel () =
  (* Classic LU-update facts require the triangular-coupling refinement:
     every dependence is carried by k, so i and j (but not k) parallelize,
     the i/j interchange is legal, and the inner loop vectorizes. *)
  let nest = Itf_lang.Parser.parse_nest lu_src in
  let vectors = Itf_dep.Analysis.vectors nest in
  check_bool "all dependences carried by k" true
    (List.for_all
       (fun d -> Itf_core.Queries.carried_level d = Some 0)
       vectors);
  Alcotest.(check (list int))
    "i and j parallelizable" [ 1; 2 ]
    (Itf_core.Queries.parallelizable_loops ~depth:3 vectors);
  check_bool "parallelize i+j legal" true
    (Legality.is_legal nest [ Template.parallelize [| false; true; true |] ]);
  check_bool "parallelize k illegal" false
    (Legality.is_legal nest [ Template.parallelize_one ~n:3 0 ]);
  check_bool "interchange i,j legal" true
    (Legality.is_legal nest [ Template.interchange ~n:3 1 2 ]);
  (* and the parallel version is observably correct *)
  let r =
    Framework.apply_exn nest [ Template.parallelize [| false; true; true |] ]
  in
  check_bool "parallel LU update equivalent" true
    (Builders.equivalent ~params:[ ("n", 7) ]
       ~orders:[ `Forward; `Reverse; `Shuffle 13 ] nest r.Framework.nest)

let test_fig7_full_pipeline () =
  (* The Appendix A pipeline end to end: legality + code generation +
     semantic equivalence, with concrete block sizes. *)
  let seq = fig7_sequence () in
  let r = Framework.apply_exn (Builders.matmul ()) seq in
  check_int "final depth 5" 5 (Nest.depth r.Framework.nest);
  Alcotest.(check (list string))
    "final vectors"
    (List.sort compare [ "(0, 0, 0, +, 0)"; "(0, +, 0, *, 0)" ])
    (vecs_str r.Framework.vectors);
  check_bool "pipeline preserves semantics" true
    (Builders.equivalent
       ~params:[ ("n", 7); ("bi", 2); ("bj", 3); ("bk", 2) ]
       ~orders:[ `Forward; `Reverse; `Shuffle 11 ]
       (Builders.matmul ()) r.Framework.nest)

let () =
  Alcotest.run "core"
    [
      ( "template",
        [
          Alcotest.test_case "validation" `Quick test_template_validation;
          Alcotest.test_case "depths" `Quick test_template_depths;
        ] );
      ( "depmap",
        [
          Alcotest.test_case "unimodular" `Quick test_unimodular_map;
          Alcotest.test_case "reverse-permute (fig 2)" `Quick
            test_reverse_permute_map_figure2;
          Alcotest.test_case "parmap" `Quick test_parmap;
          Alcotest.test_case "blockmap" `Quick test_blockmap;
          Alcotest.test_case "block fanout" `Quick test_block_map_fanout;
          Alcotest.test_case "mergedirs" `Quick test_mergedirs;
          Alcotest.test_case "imap" `Quick test_imap;
          Alcotest.test_case "figure 7 vector history" `Quick test_fig7_vectors;
        ] );
      ( "sequence",
        [
          Alcotest.test_case "reduction rules" `Quick test_sequence_reduce;
          Alcotest.test_case "reduction preserves mapping" `Quick
            test_sequence_compose_semantics;
          Alcotest.test_case "well-formedness" `Quick test_sequence_well_formed;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "figure 1 output" `Quick test_codegen_figure1;
          Alcotest.test_case "figure 1 semantics" `Quick test_codegen_figure1_semantics;
          Alcotest.test_case "reverse with runtime step" `Quick
            test_codegen_reverse_runtime_step;
          Alcotest.test_case "block triangular semantics" `Quick
            test_codegen_block_triangular;
          Alcotest.test_case "block creates no empty tiles" `Quick
            test_block_nonempty_tiles;
          Alcotest.test_case "block misaligned grid regression" `Quick
            test_block_misaligned_grid;
          Alcotest.test_case "coalesce" `Quick test_codegen_coalesce;
          Alcotest.test_case "coalesce with strides" `Quick test_codegen_coalesce_steps;
          Alcotest.test_case "interleave" `Quick test_codegen_interleave;
          Alcotest.test_case "parallelize kinds" `Quick test_codegen_parallelize_kinds;
        ] );
      ( "legality",
        [
          Alcotest.test_case "figure 2" `Quick test_legality_figure2;
          Alcotest.test_case "figure 2 real program (guarded)" `Quick
            test_figure2_real_program;
          Alcotest.test_case "illegal intermediate stages ok" `Quick
            test_legality_intermediate_stages_need_not_be_legal;
          Alcotest.test_case "figure 4 nonlinear bounds" `Quick
            test_legality_figure4_nonlinear_bounds;
          Alcotest.test_case "runtime step rejection" `Quick
            test_legality_unimodular_rejects_runtime_step;
          Alcotest.test_case "default analyzer" `Quick
            test_legality_uses_analyzer_by_default;
          Alcotest.test_case "figure 7 end to end" `Quick test_fig7_full_pipeline;
          Alcotest.test_case "LU update kernel" `Quick test_lu_update_kernel;
        ] );
    ]
