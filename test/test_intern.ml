(* Tests for the hash-consing layer (lib/intmat/hashcons.ml,
   lib/ir/intern.ml and the per-type intern entry points):

   - canonicalization: structurally equal terms intern to the SAME
     physical value and the same dense id, however they were constructed;
     distinct terms get distinct ids. Ids are stable across re-interning.
   - table discipline: re-interning an already-seen corpus leaves every
     table size unchanged (append-only, no duplicates) while hit counts
     grow — the O(1) path is actually taken.
   - semantic transparency: [Sequence.reduce_memo] agrees with the
     structural [Sequence.reduce]; the explicit [Depvec.compare] /
     [Dir.compare] agree with the polymorphic order they replaced (the
     dedupe sort order is observable in analyzer output).
   - engine identity: with interning on, a parallel search is
     bit-identical to a sequential one (winner, score, provenance), and
     an interned search is bit-identical to a [~intern:false] one — ids
     accelerate equality but never influence ordering. *)

open Itf_ir
module Intmat = Itf_mat.Intmat
module Hashcons = Itf_mat.Hashcons
module Depvec = Itf_dep.Depvec
module Dir = Itf_dep.Dir
module T = Itf_core.Template
module Sequence = Itf_core.Sequence
module Search = Itf_opt.Search
module Engine = Itf_opt.Engine
module Costmodel = Itf_opt.Costmodel
module Gen = Itf_check.Gen
module Repro = Itf_check.Repro

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let corpus_dir () =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_cases () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".repro")
  |> List.sort compare
  |> List.map (fun f -> Repro.load (Filename.concat dir f))

(* ------------------------------------------------------------------ *)
(* Canonicalization across construction orders                         *)
(* ------------------------------------------------------------------ *)

let test_intmat_canonical () =
  let a = Intmat.interchange 3 0 1 in
  let b = Intmat.mul (Intmat.interchange 3 0 1) (Intmat.identity 3) in
  check_bool "distinct physical values before interning" false (a == b);
  let a' = Intmat.intern a and b' = Intmat.intern b in
  check_bool "interned representatives are physically equal" true (a' == b');
  check_int "same id" (Intmat.id a') (Intmat.id b');
  check_bool "intern is idempotent" true (Intmat.intern a' == a');
  let c = Intmat.intern (Intmat.skew 3 0 1 2) in
  check_bool "distinct matrices get distinct ids" true
    (Intmat.id a' <> Intmat.id c);
  (* equality/compare answers are unchanged by interning *)
  check_bool "equal: interned vs fresh" true (Intmat.equal a' b);
  check_int "compare: interned vs fresh" 0 (Intmat.compare a' b)

let test_ir_canonical () =
  let e1 = Expr.(add (var "i") (int 1)) in
  let e2 = Expr.(add (var "i") (int 1)) in
  check_bool "fresh exprs differ physically" false (e1 == e2);
  check_bool "interned exprs are physically equal" true
    (Intern.expr e1 == Intern.expr e2);
  check_int "same expr id" (Intern.expr_id e1) (Intern.expr_id e2);
  check_bool "distinct exprs, distinct ids" true
    (Intern.expr_id e1 <> Intern.expr_id Expr.(add (var "i") (int 2)));
  let src =
    "do i = 1, n\n\
    \  do j = 1, n\n\
    \    a(i, j) = a(i, j) + b(i) * c(j)\n\
    \  enddo\n\
     enddo\n"
  in
  let n1 = Itf_lang.Parser.parse_nest src in
  let n2 = Itf_lang.Parser.parse_nest src in
  check_bool "two parses of one source intern to one nest" true
    (Intern.nest n1 == Intern.nest n2);
  check_int "same nest id" (Intern.nest_id n1) (Intern.nest_id n2);
  (* interning a canonical term is a pure lookup: ids are stable *)
  let id0 = Intern.nest_id n1 in
  check_int "nest id stable across re-interning" id0
    (Intern.nest_id (Intern.nest n1))

let test_template_sequence_canonical () =
  let t1 = T.interchange ~n:3 0 2 and t2 = T.interchange ~n:3 0 2 in
  check_bool "interned templates physically equal" true
    (T.intern t1 == T.intern t2);
  check_int "same template id" (snd (T.intern_id t1)) (snd (T.intern_id t2));
  let s1 = [ T.interchange ~n:3 0 2; T.reversal ~n:3 1 ] in
  let s2 = [ T.interchange ~n:3 0 2; T.reversal ~n:3 1 ] in
  let c1, i1 = Sequence.intern_id s1 and c2, i2 = Sequence.intern_id s2 in
  check_bool "interned sequences physically equal" true (c1 == c2);
  check_int "same sequence id" i1 i2;
  check_int "empty sequence has a stable id" (snd (Sequence.intern_id []))
    (snd (Sequence.intern_id []))

(* ------------------------------------------------------------------ *)
(* Table growth under the fuzz corpus                                  *)
(* ------------------------------------------------------------------ *)

let intern_case (c : Gen.case) =
  ignore (Intern.nest c.Gen.nest);
  List.iter (fun t -> ignore (T.intern t)) c.Gen.seq;
  ignore (Sequence.intern_id c.Gen.seq)

let test_corpus_growth () =
  let cases = corpus_cases () in
  check_bool "corpus is non-empty" true (cases <> []);
  List.iter intern_case cases;
  let before = Hashcons.stats () in
  (* Re-interning the whole corpus must add nothing to any table and must
     take the hit path. *)
  List.iter intern_case cases;
  let after = Hashcons.stats () in
  List.iter2
    (fun (b : Hashcons.stats) (a : Hashcons.stats) ->
      check_int (a.Hashcons.name ^ ": size unchanged by re-interning")
        b.Hashcons.size a.Hashcons.size)
    before after;
  let total_hits l =
    List.fold_left (fun acc (s : Hashcons.stats) -> acc + s.Hashcons.hits) 0 l
  in
  check_bool "re-interning hits the tables" true
    (total_hits after > total_hits before)

(* ------------------------------------------------------------------ *)
(* Semantic transparency                                               *)
(* ------------------------------------------------------------------ *)

let test_reduce_memo_agrees () =
  let nest = Builders.matmul () in
  let moves = Search.moves nest ~depth:3 in
  let seqs =
    ([] :: List.map (fun t -> [ t ]) moves)
    @ List.concat_map
        (fun a -> List.map (fun b -> [ a; b ]) moves)
        (List.filteri (fun i _ -> i < 8) moves)
  in
  List.iter
    (fun seq ->
      let canon = Sequence.reduce seq in
      let canon', cid = Sequence.reduce_memo seq in
      check_int "reduce_memo canonical == reduce canonical" 0
        (Sequence.compare canon canon');
      (* the returned id really is the canonical's id *)
      check_int "reduce_memo id is the canonical's id" cid
        (snd (Sequence.intern_id canon')))
    seqs

let all_dirs = Dir.[ Zero; Pos; Neg; NonNeg; NonPos; NonZero; Any ]

let test_explicit_compare_matches_polymorphic () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_int "Dir.compare = polymorphic compare"
            (compare (Stdlib.compare a b) 0)
            (compare (Dir.compare a b) 0);
          check_bool "Dir.equal = polymorphic =" (a = b) (Dir.equal a b))
        all_dirs)
    all_dirs;
  let vecs =
    List.map Depvec.of_string
      [
        "(0,0)"; "(1,-1)"; "(+,0)"; "(0+,*)"; "(1,0,0)"; "(0,+)"; "(-,3)";
        "(0,0,+)"; "(*,*)"; "(2)"; "(+)";
      ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_int "Depvec.compare = polymorphic compare"
            (compare (Stdlib.compare a b) 0)
            (compare (Depvec.compare a b) 0);
          check_bool "Depvec.equal = polymorphic =" (a = b) (Depvec.equal a b))
        vecs)
    vecs

(* ------------------------------------------------------------------ *)
(* Multi-domain interning stress                                       *)
(* ------------------------------------------------------------------ *)

(* The sharded tables' contract under true parallelism: N domains racing
   to intern the same structures must all observe the same canonical ids
   (an id is assigned once, under the winning shard lock, and every loser
   reads it back), distinct structures must keep distinct ids, and once
   the race settles the tables are converged — re-interning the whole set
   adds nothing to any table. *)

let stress_exprs () =
  List.init 64 (fun k ->
      Expr.(add (add (var "i") (int k)) (add (var "j") (int (k * 7)))))

let stress_nest_src =
  "do i = 1, n\n\
  \  do j = 1, n\n\
  \    a(i, j) = a(i, j) + b(j, i)\n\
  \  enddo\n\
   enddo\n"

let test_multi_domain_intern_stress () =
  let intern_all () =
    let expr_ids = List.map Intern.expr_id (stress_exprs ()) in
    let nest_id = Intern.nest_id (Itf_lang.Parser.parse_nest stress_nest_src) in
    (expr_ids, nest_id)
  in
  let domains = List.init 4 (fun _ -> Domain.spawn intern_all) in
  let results = List.map Domain.join domains in
  (* main domain re-interns after the join: the reference answer *)
  let ref_exprs, ref_nest = intern_all () in
  List.iteri
    (fun d (expr_ids, nest_id) ->
      check_bool (Printf.sprintf "domain %d: expr ids agree" d) true
        (expr_ids = ref_exprs);
      check_int (Printf.sprintf "domain %d: nest id agrees" d) ref_nest nest_id)
    results;
  check_int "distinct exprs keep distinct ids" (List.length ref_exprs)
    (List.length (List.sort_uniq compare ref_exprs));
  (* convergence: the racing domains left canonical tables behind — one
     entry per distinct structure, so a full re-intern adds nothing *)
  let before = Hashcons.stats () in
  ignore (intern_all ());
  let after = Hashcons.stats () in
  List.iter2
    (fun (b : Hashcons.stats) (a : Hashcons.stats) ->
      check_int (a.Hashcons.name ^ ": table size converged") b.Hashcons.size
        a.Hashcons.size)
    before after

(* ------------------------------------------------------------------ *)
(* Engine identity: seq == par, interned == no-intern                  *)
(* ------------------------------------------------------------------ *)

let same_outcome (a : Engine.outcome) (b : Engine.outcome) =
  Sequence.compare a.Engine.canonical b.Engine.canonical = 0
  && a.Engine.score = b.Engine.score
  && List.length a.Engine.rejections = List.length b.Engine.rejections
  && List.for_all2
       (fun (x : Engine.rejection) (y : Engine.rejection) ->
         Sequence.compare x.Engine.candidate y.Engine.candidate = 0
         && Engine.cause_labels x.Engine.cause = Engine.cause_labels y.Engine.cause)
       a.Engine.rejections b.Engine.rejections
  && List.length a.Engine.decisions = List.length b.Engine.decisions
  && List.for_all2
       (fun (x : Engine.decision) (y : Engine.decision) ->
         Sequence.compare x.Engine.candidate y.Engine.candidate = 0
         && x.Engine.tier0_score = y.Engine.tier0_score
         && x.Engine.tier0_bound = y.Engine.tier0_bound
         && x.Engine.verdict = y.Engine.verdict)
       a.Engine.decisions b.Engine.decisions

let cache_cfg =
  { Itf_machine.Cache.size_bytes = 8192; line_bytes = 64; assoc = 2 }

let tier0_locality params =
  Costmodel.Locality { config = cache_cfg; elem_bytes = 8; params }

let test_engine_par_identity () =
  let nest = Builders.matmul () in
  let params = [ ("n", 8) ] in
  let run domains =
    match
      Engine.search ~beam:4 ~steps:2 ~domains ~provenance:true
        ~tier0:(tier0_locality params) nest
        (Search.cache_misses ~params ())
    with
    | Some o -> o
    | None -> Alcotest.fail "engine returned nothing"
  in
  (* Interning and the score memo stay on: domain scheduling must not be
     able to perturb winner, score or provenance even with warm tables. *)
  check_bool "seq and 2-domain runs bit-identical" true
    (same_outcome (run 1) (run 2))

let test_engine_no_intern_identity () =
  List.iter
    (fun (nest, mk_obj, spec) ->
      let run ~intern obj =
        match
          Engine.search ~beam:4 ~steps:2 ~domains:1 ~provenance:true
            ~tier0:spec ~intern nest obj
        with
        | Some o -> o
        | None -> Alcotest.fail "engine returned nothing"
      in
      let interned = run ~intern:true (mk_obj ~memo:true) in
      let plain = run ~intern:false (mk_obj ~memo:false) in
      check_bool "interned == no-intern (winner, score, provenance)" true
        (same_outcome interned plain))
    [
      ( Builders.matmul (),
        (fun ~memo -> Search.cache_misses ~memo ~params:[ ("n", 8) ] ()),
        tier0_locality [ ("n", 8) ] );
      ( Builders.stencil (),
        (fun ~memo ->
          Search.parallel_time ~memo ~procs:4 ~params:[ ("n", 8) ] ()),
        Costmodel.Parallel
          { procs = 4; spawn_overhead = 2.0; params = [ ("n", 8) ] } );
    ]

let () =
  Alcotest.run "intern"
    [
      ( "intern",
        [
          Alcotest.test_case "intmat canonicalization" `Quick
            test_intmat_canonical;
          Alcotest.test_case "ir canonicalization" `Quick test_ir_canonical;
          Alcotest.test_case "template/sequence canonicalization" `Quick
            test_template_sequence_canonical;
          Alcotest.test_case "corpus: re-interning adds nothing" `Quick
            test_corpus_growth;
          Alcotest.test_case "reduce_memo == reduce" `Quick
            test_reduce_memo_agrees;
          Alcotest.test_case "explicit compares match polymorphic" `Quick
            test_explicit_compare_matches_polymorphic;
          Alcotest.test_case "multi-domain intern stress" `Quick
            test_multi_domain_intern_stress;
          Alcotest.test_case "engine: par == seq with interning" `Quick
            test_engine_par_identity;
          Alcotest.test_case "engine: interned == no-intern" `Quick
            test_engine_no_intern_identity;
        ] );
    ]
