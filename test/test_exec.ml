(* Tests for the executor substrate (lib/exec). *)

open Itf_ir
module Env = Itf_exec.Env
module Interp = Itf_exec.Interp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_env_arrays () =
  let env = Env.create () in
  Env.declare_array env "a" [ (1, 3); (1, 4) ];
  check_int "size" 12 (Env.array_size env "a");
  Env.write env "a" [ 2; 3 ] 42;
  check_int "read back" 42 (Env.read env "a" [ 2; 3 ]);
  check_int "row-major flat" ((2 - 1) * 4) (Env.flat_index env "a" [ 2; 1 ]);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Env: a subscript 0 = 4 out of [1, 3]") (fun () ->
      ignore (Env.read env "a" [ 4; 1 ]));
  Alcotest.check_raises "arity"
    (Invalid_argument "Env: a expects 2 subscripts, got 1") (fun () ->
      ignore (Env.read env "a" [ 2 ]))

let test_env_negative_base () =
  let env = Env.create () in
  Env.declare_array env "a" [ (-3, 3) ];
  Env.write env "a" [ -3 ] 7;
  check_int "negative base" 7 (Env.read env "a" [ -3 ]);
  check_int "flat 0" 0 (Env.flat_index env "a" [ -3 ])

let test_builtins_and_functions () =
  let env = Env.create () in
  check_int "abs" 5 (Env.call env "abs" [ -5 ]);
  check_int "sgn" (-1) (Env.call env "sgn" [ -5 ]);
  Env.declare_function env "twice" (function [ x ] -> 2 * x | _ -> 0);
  check_int "registered fn" 14 (Env.call env "twice" [ 7 ])

let test_tracer () =
  let env = Env.create () in
  Env.declare_array env "a" [ (0, 9) ];
  let events = ref [] in
  Env.set_tracer env (Some (fun ev -> events := ev :: !events));
  Env.write env "a" [ 3 ] 1;
  ignore (Env.read env "a" [ 3 ]);
  Env.set_tracer env None;
  ignore (Env.read env "a" [ 3 ]);
  check_int "two traced events" 2 (List.length !events);
  check_bool "kinds" true
    (match !events with
    | [ { Env.kind = Env.Read; _ }; { Env.kind = Env.Write; _ } ] -> true
    | _ -> false)

let simple_nest ?(kind = Nest.Do) ?(step = Expr.one) lo hi =
  Nest.make
    [ Nest.loop ~kind ~step "i" lo hi ]
    [ Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "i") ]

let test_run_simple () =
  let env = Env.create () in
  Env.declare_array env "a" [ (0, 9) ];
  Interp.run env (simple_nest (Expr.int 0) (Expr.int 9));
  check_int "a(7) = 7" 7 (Env.read env "a" [ 7 ])

let test_run_step_and_empty () =
  let env = Env.create () in
  Env.declare_array env "a" [ (0, 9) ];
  Interp.run env (simple_nest ~step:(Expr.int 3) (Expr.int 0) (Expr.int 9));
  check_int "a(9)" 9 (Env.read env "a" [ 9 ]);
  check_int "a(4) untouched" 0 (Env.read env "a" [ 4 ]);
  (* empty loop: hi < lo with positive step *)
  let env2 = Env.create () in
  Env.declare_array env2 "a" [ (0, 9) ];
  Interp.run env2 (simple_nest (Expr.int 5) (Expr.int 2));
  check_bool "no writes" true (Array.for_all (( = ) 0) (Env.array_data env2 "a"))

let test_run_negative_step () =
  let env = Env.create () in
  Env.declare_array env "a" [ (0, 9) ];
  let order = ref [] in
  Interp.run
    ~on_iteration:(fun it -> order := it.(0) :: !order)
    env
    (simple_nest ~step:(Expr.int (-2)) (Expr.int 9) (Expr.int 1));
  Alcotest.(check (list int)) "descending order" [ 9; 7; 5; 3; 1 ] (List.rev !order)

let test_inits_run_each_iteration () =
  (* inits define x from the loop var; body uses x. *)
  let nest =
    Nest.make
      ~inits:[ Stmt.Set ("x", Expr.(mul (int 2) (var "i"))) ]
      [ Nest.loop "i" (Expr.int 0) (Expr.int 4) ]
      [ Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "x") ]
  in
  let env = Env.create () in
  Env.declare_array env "a" [ (0, 4) ];
  Interp.run env nest;
  check_int "a(3) = 6" 6 (Env.read env "a" [ 3 ])

let test_pardo_orders () =
  let nest = simple_nest ~kind:Nest.Pardo (Expr.int 0) (Expr.int 9) in
  let order pardo_order =
    let env = Env.create () in
    Env.declare_array env "a" [ (0, 9) ];
    List.map (fun it -> it.(0)) (Interp.iteration_order ~pardo_order env nest)
  in
  Alcotest.(check (list int)) "forward" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (order `Forward);
  Alcotest.(check (list int)) "reverse" [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ] (order `Reverse);
  let s1 = order (`Shuffle 7) and s2 = order (`Shuffle 7) and s3 = order (`Shuffle 8) in
  check_bool "shuffle deterministic" true (s1 = s2);
  check_bool "shuffle differs across seeds" true (s1 <> s3);
  Alcotest.(check (list int))
    "shuffle is a permutation" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.sort compare s1)

let test_triangular_iteration_order () =
  let env = Builders.make_env ~params:[ ("n", 3) ] (Builders.triangular ()) in
  let order = Interp.iteration_order env (Builders.triangular ()) in
  Alcotest.(check (list (list int)))
    "triangular order"
    [ [ 1; 1 ]; [ 1; 2 ]; [ 1; 3 ]; [ 2; 2 ]; [ 2; 3 ]; [ 3; 3 ] ]
    (List.map Array.to_list order)

let test_division_semantics_match_expr () =
  (* Interp and Expr constant folding must agree on floor div/mod. *)
  List.iter
    (fun (a, b) ->
      let env = Env.create () in
      Env.set_scalar env "a" a;
      Env.set_scalar env "b" b;
      let de = Expr.(div (int a) (int b)) and me = Expr.(mod_ (int a) (int b)) in
      check_int
        (Printf.sprintf "div %d %d" a b)
        (match de with Expr.Int v -> v | _ -> assert false)
        (Interp.eval env Expr.(Div (Var "a", Var "b")));
      check_int
        (Printf.sprintf "mod %d %d" a b)
        (match me with Expr.Int v -> v | _ -> assert false)
        (Interp.eval env Expr.(Mod (Var "a", Var "b"))))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 3) ]

let test_trace_ascii () =
  let nest =
    Nest.make
      [ Nest.loop "i" (Expr.int 0) (Expr.int 1); Nest.loop "j" (Expr.int 0) (Expr.int 2) ]
      [ Stmt.Set ("x", Expr.var "j") ]
  in
  let env = Env.create () in
  Alcotest.(check string)
    "row-major grid" "  0   1   2\n  3   4   5\n"
    (Itf_exec.Trace.ascii_order env nest);
  (* reversed outer loop flips the rows' ordinals *)
  let rev =
    Nest.make
      [
        Nest.loop ~step:(Expr.int (-1)) "i" (Expr.int 1) (Expr.int 0);
        Nest.loop "j" (Expr.int 0) (Expr.int 2);
      ]
      [ Stmt.Set ("x", Expr.var "j") ]
  in
  Alcotest.(check string)
    "reversed grid" "  3   4   5\n  0   1   2\n"
    (Itf_exec.Trace.ascii_order env rev);
  check_bool "depth 3 rejected" true
    (match
       Itf_exec.Trace.ascii_order env
         (Nest.make
            [
              Nest.loop "i" Expr.zero Expr.one;
              Nest.loop "j" Expr.zero Expr.one;
              Nest.loop "k" Expr.zero Expr.one;
            ]
            [ Stmt.Set ("x", Expr.zero) ])
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_trace_ascii_dims () =
  let env = Env.create () in
  (* 1-D: one column, one row per iteration, ordinals in execution order *)
  let oned =
    Nest.make
      [ Nest.loop "i" (Expr.int 1) (Expr.int 4) ]
      [ Stmt.Set ("x", Expr.var "i") ]
  in
  Alcotest.(check string)
    "1-D grid" "  0\n  1\n  2\n  3\n"
    (Itf_exec.Trace.ascii_order env oned);
  (* 2-D 2x2: row-major ordinals *)
  let two =
    Nest.make
      [
        Nest.loop "i" (Expr.int 0) (Expr.int 1);
        Nest.loop "j" (Expr.int 0) (Expr.int 1);
      ]
      [ Stmt.Set ("x", Expr.var "j") ]
  in
  Alcotest.(check string)
    "2x2 grid" "  0   1\n  2   3\n"
    (Itf_exec.Trace.ascii_order env two);
  (* the rejection names the offending depth *)
  Alcotest.check_raises "depth named"
    (Invalid_argument
       "Trace.ascii_order: only 1- or 2-deep nests (nest is 3 deep)")
    (fun () ->
      ignore
        (Itf_exec.Trace.ascii_order env
           (Nest.make
              [
                Nest.loop "i" Expr.zero Expr.one;
                Nest.loop "j" Expr.zero Expr.one;
                Nest.loop "k" Expr.zero Expr.one;
              ]
              [ Stmt.Set ("x", Expr.zero) ])))

let test_sparse_matmul_runs () =
  (* The Figure 4(c) nest executes with CSR access functions. *)
  let nest = Builders.sparse_matmul () in
  let colstr = [| 1; 3; 4; 6 |] in
  (* 1-based columns 1..3, nnz entries 1..5 *)
  let funcs =
    [
      ("colstr", (function [ j ] -> colstr.(j - 1) | _ -> assert false));
      ("rowidx", (function [ k ] -> ((k * 7) mod 3) + 1 | _ -> assert false));
    ]
  in
  let snap = Builders.run_snapshot ~funcs ~params:[ ("n", 3) ] nest in
  check_bool "produced output" true (List.mem_assoc "a" snap)

let () =
  Alcotest.run "exec"
    [
      ( "env",
        [
          Alcotest.test_case "arrays" `Quick test_env_arrays;
          Alcotest.test_case "negative base" `Quick test_env_negative_base;
          Alcotest.test_case "builtins and functions" `Quick test_builtins_and_functions;
          Alcotest.test_case "tracer" `Quick test_tracer;
        ] );
      ( "interp",
        [
          Alcotest.test_case "simple loop" `Quick test_run_simple;
          Alcotest.test_case "steps and empty loops" `Quick test_run_step_and_empty;
          Alcotest.test_case "negative step order" `Quick test_run_negative_step;
          Alcotest.test_case "inits each iteration" `Quick test_inits_run_each_iteration;
          Alcotest.test_case "pardo orders" `Quick test_pardo_orders;
          Alcotest.test_case "triangular order" `Quick test_triangular_iteration_order;
          Alcotest.test_case "floor division" `Quick test_division_semantics_match_expr;
          Alcotest.test_case "sparse matmul (fig 4c)" `Quick test_sparse_matmul_runs;
          Alcotest.test_case "ascii traversal grids" `Quick test_trace_ascii;
          Alcotest.test_case "ascii grid dimensions" `Quick
            test_trace_ascii_dims;
        ] );
    ]
