(* Tests for the C emitter (lib/emit), including gcc-compiled end-to-end
   comparisons against the interpreter when a C compiler is available. *)

open Itf_ir
module C = Itf_emit.C
module T = Itf_core.Template
module F = Itf_core.Framework

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Expression emission                                                 *)
(* ------------------------------------------------------------------ *)

let test_expr_emission () =
  check_str "arith" "((i + 1L) * 2L)"
    (C.expr_to_c Expr.(Mul (Add (Var "i", Int 1), Int 2)));
  check_str "floor div" "ifloordiv(i, 2L)" (C.expr_to_c Expr.(Div (Var "i", Int 2)));
  check_str "floor mod" "ifloormod(n, 3L)" (C.expr_to_c Expr.(Mod (Var "n", Int 3)));
  check_str "min" "imin(a, b)" (C.expr_to_c Expr.(Min (Var "a", Var "b")));
  check_str "negative literal" "(-4L)" (C.expr_to_c (Expr.int (-4)));
  check_str "load as macro" "A(i, (j - 1L))"
    (C.expr_to_c (Expr.Load { array = "A"; index = [ Expr.Var "i"; Expr.Sub (Expr.Var "j", Expr.Int 1) ] }));
  check_str "abs builtin" "iabs(s)" (C.expr_to_c (Expr.Call ("abs", [ Expr.Var "s" ])));
  check_bool "uninterpreted call rejected" true
    (match C.expr_to_c (Expr.Call ("colstr", [ Expr.Var "j" ])) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_kernel_shape () =
  let nest = Builders.stencil () in
  let src = C.kernel ~name:"stencil" nest in
  check_bool "declares function" true
    (Builders.contains ~sub:"static void stencil(void)" src);
  check_bool "hoists bounds" true (Builders.contains ~sub:"const long hi_i" src);
  check_bool "direction-agnostic condition" true
    (Builders.contains ~sub:"st_i > 0 ? i <= hi_i : i >= hi_i" src)

let test_program_validation () =
  let nest = Builders.matmul () in
  check_bool "missing bounds rejected" true
    (match C.program ~params:[ ("n", 4) ] ~bounds:[] nest with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_openmp_pragma () =
  let nest =
    Nest.make
      [ Nest.loop ~kind:Nest.Pardo "i" Expr.one (Expr.var "n") ]
      [ Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "i") ]
  in
  let with_omp =
    C.program ~openmp:true ~params:[ ("n", 4) ] ~bounds:[ ("a", [ (1, 4) ]) ] nest
  in
  let without =
    C.program ~params:[ ("n", 4) ] ~bounds:[ ("a", [ (1, 4) ]) ] nest
  in
  check_bool "pragma present" true
    (Builders.contains ~sub:"#pragma omp parallel for" with_omp);
  check_bool "pragma absent" false
    (Builders.contains ~sub:"#pragma omp parallel for" without)

(* ------------------------------------------------------------------ *)
(* gcc end-to-end                                                      *)
(* ------------------------------------------------------------------ *)

let have_gcc = Sys.command "gcc --version >/dev/null 2>&1" = 0

(* Interpreter-side checksums with the emitter's fill convention. *)
let interp_checksums ~params ~bounds nest =
  let env = Itf_exec.Env.create () in
  List.iter (fun (v, x) -> Itf_exec.Env.set_scalar env v x) params;
  List.iter
    (fun (a, dims) ->
      Itf_exec.Env.declare_array env a dims;
      let d = Itf_exec.Env.array_data env a in
      Array.iteri (fun k _ -> d.(k) <- k * 31 mod 97) d)
    bounds;
  Itf_exec.Interp.run env nest;
  List.map
    (fun (a, _) ->
      (a, Array.fold_left ( + ) 0 (Itf_exec.Env.array_data env a)))
    bounds
  |> List.sort compare

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* Compile an emitted program and return its "name checksum" output. *)
let compile_and_run src =
  let c_file = Filename.temp_file "itf_emit" ".c" in
  let exe = Filename.temp_file "itf_emit" ".exe" in
  let out_file = Filename.temp_file "itf_emit" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ c_file; exe; out_file ])
    (fun () ->
      write_file c_file src;
      if
        Sys.command
          (Printf.sprintf "gcc -O1 -o %s %s 2>/dev/null" (Filename.quote exe)
             (Filename.quote c_file))
        <> 0
      then Alcotest.fail "gcc compilation failed";
      if
        Sys.command
          (Printf.sprintf "%s > %s" (Filename.quote exe) (Filename.quote out_file))
        <> 0
      then Alcotest.fail "emitted program crashed";
      List.filter_map
        (fun line ->
          match String.split_on_char ' ' (String.trim line) with
          | [ name; sum ] -> Some (name, int_of_string sum)
          | _ -> None)
        (read_lines out_file)
      |> List.sort compare)

let gcc_case name nest ~params ~bounds =
  Alcotest.test_case name `Quick (fun () ->
      if not have_gcc then ()
      else begin
        let src = C.program ~params ~bounds nest in
        let compiled = compile_and_run src in
        let interp = interp_checksums ~params ~bounds nest in
        Alcotest.(check (list (pair string int))) "checksums" interp compiled
      end)

let fig7_nest () =
  let seq =
    [
      T.reverse_permute ~rev:[| false; false; false |] ~perm:[| 2; 0; 1 |];
      T.block ~n:3 ~i:0 ~j:2
        ~bsize:[| Expr.var "bj"; Expr.var "bk"; Expr.var "bi" |];
      T.parallelize [| true; false; true; false; false; false |];
      T.reverse_permute ~rev:(Array.make 6 false) ~perm:[| 0; 2; 1; 3; 4; 5 |];
      T.coalesce ~n:6 ~i:0 ~j:1;
    ]
  in
  (F.apply_exn (Builders.matmul ()) seq).F.nest

let reversed_strided () =
  Nest.make
    [ Nest.loop ~step:(Expr.int (-3)) "i" (Expr.var "n") Expr.one ]
    [
      Stmt.Store
        ( { array = "a"; index = [ Expr.var "i" ] },
          Expr.(add (mod_ (var "i") (int 5)) (div (var "i") (int 2))) );
    ]

let mm_bounds n = [ ("A", [ (1, n); (1, n) ]); ("B", [ (1, n); (1, n) ]); ("C", [ (1, n); (1, n) ]) ]

let lu_blocked () =
  (* Subtractive variant of the LU update (identical subscripts, hence
     identical dependence structure) so values grow linearly: the true
     multiply-accumulate overflows differently in 63-bit OCaml ints and
     64-bit C longs. *)
  let nest =
    Itf_lang.Parser.parse_nest
      "do k = 1, n\n\
      \  do i = k + 1, n\n\
      \    do j = k + 1, n\n\
      \      a(i, j) = a(i, j) - a(i, k) - a(k, j)\n\
      \    enddo\n\
      \  enddo\n\
       enddo\n"
  in
  (F.apply_exn nest
     [
       T.parallelize [| false; true; true |];
       T.block ~n:3 ~i:1 ~j:2 ~bsize:[| Expr.int 4; Expr.int 4 |];
     ])
    .F.nest

let () =
  Alcotest.run "emit"
    [
      ( "text",
        [
          Alcotest.test_case "expressions" `Quick test_expr_emission;
          Alcotest.test_case "kernel shape" `Quick test_kernel_shape;
          Alcotest.test_case "program validation" `Quick test_program_validation;
          Alcotest.test_case "openmp pragma" `Quick test_openmp_pragma;
        ] );
      ( "gcc",
        [
          gcc_case "matmul original" (Builders.matmul ()) ~params:[ ("n", 10) ]
            ~bounds:(mm_bounds 10);
          gcc_case "matmul figure-7 pipeline" (fig7_nest ())
            ~params:[ ("n", 10); ("bi", 2); ("bj", 3); ("bk", 4) ]
            ~bounds:(mm_bounds 10);
          gcc_case "stencil skew+interchange"
            (F.apply_exn (Builders.stencil ())
               [
                 T.unimodular
                   (Itf_mat.Intmat.mul
                      (Itf_mat.Intmat.interchange 2 0 1)
                      (Itf_mat.Intmat.skew 2 0 1 1));
               ])
              .F.nest
            ~params:[ ("n", 12) ]
            ~bounds:[ ("a", [ (1, 12); (1, 12) ]) ];
          gcc_case "negative strided loop with div/mod" (reversed_strided ())
            ~params:[ ("n", 20) ]
            ~bounds:[ ("a", [ (1, 20) ]) ];
          gcc_case "LU update: parallelize i,j + block (EXP-LU)" (lu_blocked ())
            ~params:[ ("n", 11) ]
            ~bounds:[ ("a", [ (1, 11); (1, 11) ]) ];
        ] );
    ]
