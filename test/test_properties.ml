(* Cross-module property tests: algebraic laws and agreement between
   independent implementations of the same notion. *)

open Itf_ir
module Dir = Itf_dep.Dir
module Depvec = Itf_dep.Depvec
module T = Itf_core.Template
module Depmap = Itf_core.Depmap
module Sequence = Itf_core.Sequence
module Queries = Itf_core.Queries
module Intmat = Itf_mat.Intmat

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_dir = QCheck.Gen.oneofl Dir.[ Zero; Pos; Neg; NonNeg; NonPos; NonZero; Any ]

let gen_elem =
  QCheck.Gen.(
    oneof [ map Depvec.dist (int_range (-4) 4); map Depvec.dir gen_dir ])

let gen_vec n = QCheck.Gen.(map Array.of_list (list_repeat n gen_elem))

let arb_vec n = QCheck.make ~print:Depvec.to_string (gen_vec n)

let gen_perm n st =
  let a = Array.init n Fun.id in
  for k = n - 1 downto 1 do
    let j = QCheck.Gen.int_range 0 k st in
    let tmp = a.(k) in
    a.(k) <- a.(j);
    a.(j) <- tmp
  done;
  a

let gen_revperm n =
  QCheck.Gen.(
    map2
      (fun rev perm -> T.reverse_permute ~rev ~perm)
      (map Array.of_list (list_repeat n bool))
      (gen_perm n))

let arb_revperm n =
  QCheck.make ~print:(Format.asprintf "%a" T.pp) (gen_revperm n)

let sample_ints e =
  List.filter (Depvec.elem_contains e) [ -3; -2; -1; 0; 1; 2; 3 ]

let enumerate_tuples (d : Depvec.t) =
  Array.fold_right
    (fun e acc -> List.concat_map (fun x -> List.map (fun tl -> x :: tl) acc) (sample_ints e))
    d [ [] ]

(* ------------------------------------------------------------------ *)
(* Dir laws                                                            *)
(* ------------------------------------------------------------------ *)

let arb_dir = QCheck.make ~print:Dir.to_string gen_dir

let prop_union_is_join =
  QCheck.Test.make ~name:"Dir.union is the subset-join" ~count:300
    (QCheck.pair arb_dir arb_dir) (fun (a, b) ->
      let u = Dir.union a b in
      Dir.subset a u && Dir.subset b u
      && List.for_all
           (fun c ->
             not (Dir.subset a c && Dir.subset b c) || Dir.subset u c)
           Dir.[ Zero; Pos; Neg; NonNeg; NonPos; NonZero; Any ])

let prop_reverse_antimorphism =
  QCheck.Test.make ~name:"reverse distributes over union" ~count:300
    (QCheck.pair arb_dir arb_dir) (fun (a, b) ->
      Dir.equal
        (Dir.reverse (Dir.union a b))
        (Dir.union (Dir.reverse a) (Dir.reverse b)))

let prop_merge_lex_assoc =
  QCheck.Test.make ~name:"merge_lex is associative" ~count:300
    (QCheck.triple arb_dir arb_dir arb_dir) (fun (a, b, c) ->
      Dir.equal
        (Dir.merge_lex a (Dir.merge_lex b c))
        (Dir.merge_lex (Dir.merge_lex a b) c))

(* ------------------------------------------------------------------ *)
(* ReversePermute composition vs sequential application                *)
(* ------------------------------------------------------------------ *)

let prop_revperm_compose =
  QCheck.Test.make
    ~name:"composed ReversePermute maps vectors like the sequence" ~count:300
    (QCheck.triple (arb_revperm 3) (arb_revperm 3) (arb_vec 3))
    (fun (a, b, d) ->
      let sequential = Depmap.map_set b (Depmap.map_set a [ d ]) in
      match Sequence.reduce [ a; b ] with
      | [] -> sequential = [ d ]
      | [ composed ] -> Depmap.map_set composed [ d ] = sequential
      | _ -> false)

let prop_revperm_matrix_agrees =
  QCheck.Test.make
    ~name:"ReversePermute's matrix maps distance vectors identically"
    ~count:300
    (QCheck.pair (arb_revperm 3)
       (QCheck.make
          ~print:Depvec.to_string
          QCheck.Gen.(
            map
              (fun l -> Array.of_list (List.map Depvec.dist l))
              (list_repeat 3 (int_range (-3) 3)))))
    (fun (rp, d) ->
      match T.to_matrix rp with
      | None -> false
      | Some m ->
        Depmap.map_vector rp d = Depmap.map_vector (T.unimodular m) d)

(* ------------------------------------------------------------------ *)
(* Sequence reduction preserves vector mapping                         *)
(* ------------------------------------------------------------------ *)

let gen_matrix_template n =
  QCheck.Gen.(
    oneof
      [
        gen_revperm n;
        map
          (fun (src, k, f) ->
            let dst = (src + 1 + k) mod n in
            T.skew ~n ~src ~dst ~factor:f)
          (triple (int_range 0 (n - 1)) (int_range 0 (n - 2)) (int_range (-2) 2));
        map (fun flags -> T.parallelize flags)
          (map Array.of_list (list_repeat n bool));
      ])

let prop_reduce_preserves_mapping =
  QCheck.Test.make ~name:"Sequence.reduce preserves the vector mapping"
    ~count:200
    (QCheck.pair
       (QCheck.make
          ~print:(Format.asprintf "%a" Sequence.pp)
          QCheck.Gen.(list_size (int_range 1 4) (gen_matrix_template 3)))
       (arb_vec 3))
    (fun (seq, d) ->
      let image s =
        List.sort_uniq compare
          (List.map Depvec.to_string
             (List.fold_left (fun vs t -> Depmap.map_set t vs) [ d ] s))
      in
      let direct = image seq and reduced = image (Sequence.reduce seq) in
      (* Reduction may gain precision on summary values (composing the
         matrices once avoids repeated interval widening; Parallelize can
         introduce summaries even on distance inputs), so the reduced
         image must be covered by the direct image. When the whole mapping
         stays exact — pure distance input and no Parallelize stage — they
         must be identical. *)
      let has_parallelize =
        List.exists (function T.Parallelize _ -> true | _ -> false) seq
      in
      if
        Array.for_all (function Depvec.Dist _ -> true | _ -> false) d
        && not has_parallelize
      then direct = reduced
      else
        List.for_all
          (fun rv ->
            List.exists
              (fun dv ->
                Depvec.subset (Depvec.of_string rv) (Depvec.of_string dv))
              direct
            || List.mem rv direct)
          reduced)

(* ------------------------------------------------------------------ *)
(* Legality vs Queries agreement on random vector sets                 *)
(* ------------------------------------------------------------------ *)

let prop_parallelizable_agrees_with_parmap =
  QCheck.Test.make
    ~name:"Queries.parallelizable = Parallelize mapping verdict" ~count:300
    (QCheck.pair
       (QCheck.make
          ~print:(fun vs -> String.concat " " (List.map Depvec.to_string vs))
          QCheck.Gen.(list_size (int_range 0 4) (gen_vec 3)))
       (QCheck.int_range 0 2))
    (fun (vectors, k) ->
      (* discard sets that are already illegal before transforming *)
      QCheck.assume (Depvec.set_may_lex_negative vectors = None);
      let t = T.parallelize_one ~n:3 k in
      let mapped = Depmap.map_set t vectors in
      Queries.parallelizable vectors k
      = (Depvec.set_may_lex_negative mapped = None))

(* ------------------------------------------------------------------ *)
(* Unimodular mapping soundness on sampled tuples                      *)
(* ------------------------------------------------------------------ *)

let gen_unimodular n =
  QCheck.Gen.(
    list_size (int_range 1 4)
      (oneof
         [
           map2 (fun i j -> Intmat.interchange n i j) (int_range 0 (n - 1))
             (int_range 0 (n - 1));
           map (fun i -> Intmat.reversal n i) (int_range 0 (n - 1));
           (fun st ->
             let i = int_range 0 (n - 1) st in
             let j = (i + 1 + int_range 0 (n - 2) st) mod n in
             Intmat.skew n i j (int_range (-2) 2 st));
         ])
    |> map (List.fold_left Intmat.mul (Intmat.identity n)))

let prop_unimodular_map_sound =
  QCheck.Test.make
    ~name:"unimodular vector mapping covers all mapped tuples" ~count:300
    (QCheck.pair
       (QCheck.make ~print:(Format.asprintf "%a" Intmat.pp) (gen_unimodular 3))
       (arb_vec 3))
    (fun (m, d) ->
      let mapped = Depmap.map_vector (T.unimodular m) d in
      List.for_all
        (fun tuple ->
          let image = Intmat.apply m (Array.of_list tuple) in
          List.exists (fun v -> Depvec.mem v image) mapped)
        (enumerate_tuples d))

(* ------------------------------------------------------------------ *)
(* Block / Coalesce / Interleave mapping soundness on sampled tuples   *)
(* ------------------------------------------------------------------ *)

(* For a rectangular band with known size and block/interleave factor we
   can compute the image of a tuple directly and check coverage. *)
let prop_blockmap_sound =
  QCheck.Test.make ~name:"blockmap covers concrete block decompositions"
    ~count:500
    (QCheck.pair (QCheck.make ~print:Depvec.to_string (gen_vec 1))
       (QCheck.int_range 1 4))
    (fun (d, bsize) ->
      let t = T.block ~n:1 ~i:0 ~j:0 ~bsize:[| Expr.int bsize |] in
      let mapped = Depmap.map_vector ~rectangular_bands:true t d in
      (* source iteration x in [0, 12), distance dd: block coords (x /
         bsize) and position x mod bsize; the dependence entry pair is the
         difference of the two coordinates. The element entry of Table 2
         counts element distance dd (value space), block entry counts
         blocks. *)
      List.for_all
        (fun tuple ->
          match tuple with
          | [ dd ] ->
            List.for_all
              (fun x ->
                let y = x + dd in
                if y < 0 || y >= 12 then true
                else
                  let b1 = x / bsize and b2 = y / bsize in
                  (* block component counts whole blocks; element component
                     is the original distance *)
                  List.exists
                    (fun (v : Depvec.t) ->
                      Depvec.elem_contains v.(0) (b2 - b1)
                      && Depvec.elem_contains v.(1) dd)
                    mapped)
              [ 0; 1; 2; 3; 5; 8; 11 ]
          | _ -> false)
        (enumerate_tuples d))

let prop_coalesce_merge_sound =
  QCheck.Test.make ~name:"coalesce merge covers concrete linearizations"
    ~count:500
    (QCheck.make ~print:Depvec.to_string (gen_vec 2))
    (fun d ->
      let t = T.coalesce ~n:2 ~i:0 ~j:1 in
      let mapped = Depmap.map_vector ~rectangular_bands:true t d in
      let inner = 7 in
      List.for_all
        (fun tuple ->
          match tuple with
          | [ d1; d2 ] ->
            (* linear position difference for inner size 7; valid only when
               both endpoints stay in range — sample a few sources *)
            List.for_all
              (fun (x1, x2) ->
                let y1 = x1 + d1 and y2 = x2 + d2 in
                if y1 < 0 || y1 >= 5 || y2 < 0 || y2 >= inner then true
                else
                  let c1 = (x1 * inner) + x2 and c2 = (y1 * inner) + y2 in
                  List.exists (fun v -> Depvec.mem v [| c2 - c1 |]) mapped)
              [ (0, 0); (1, 3); (2, 6); (4, 0); (3, 2) ]
          | _ -> false)
        (enumerate_tuples d))

(* ------------------------------------------------------------------ *)
(* Parser roundtrip on printed nests                                   *)
(* ------------------------------------------------------------------ *)

let gen_bound_expr vars =
  QCheck.Gen.(
    oneof
      [
        map Expr.int (int_range 0 9);
        map Expr.var (oneofl ("n" :: vars));
        map2 (fun v c -> Expr.add (Expr.var v) (Expr.int c)) (oneofl ("n" :: vars))
          (int_range (-3) 3);
      ])

let gen_print_nest =
  QCheck.Gen.(
    int_range 1 3 >>= fun depth ->
    let vars = List.filteri (fun k _ -> k < depth) [ "i"; "j"; "k" ] in
    let rec build outer = function
      | [] -> return []
      | v :: rest ->
        gen_bound_expr outer >>= fun lo ->
        gen_bound_expr outer >>= fun hi ->
        oneofl [ Nest.Do; Nest.Pardo ] >>= fun kind ->
        int_range 1 3 >>= fun step ->
        build (outer @ [ v ]) rest >>= fun tail ->
        return (Nest.loop ~kind ~step:(Expr.int step) v lo hi :: tail)
    in
    build [] vars >>= fun loops ->
    gen_bound_expr vars >>= fun rhs ->
    return
      (Nest.make loops
         [
           Stmt.Store
             ({ array = "a"; index = [ Expr.var (List.hd vars) ] }, rhs);
         ]))

let prop_parser_roundtrip =
  QCheck.Test.make ~name:"print -> parse -> print is stable" ~count:300
    (QCheck.make ~print:Nest.to_string gen_print_nest) (fun nest ->
      let printed = Nest.to_string nest in
      let reparsed = Itf_lang.Parser.parse_nest printed in
      Nest.to_string reparsed = printed)

(* ------------------------------------------------------------------ *)
(* Hyperplane completion                                               *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let prop_completion_first_row =
  QCheck.Test.make ~name:"hyperplane completion: unimodular with first row h"
    ~count:300
    (QCheck.make
       ~print:(fun a -> String.concat " " (Array.to_list (Array.map string_of_int a)))
       QCheck.Gen.(
         map Array.of_list (list_size (int_range 2 4) (int_range 0 6))))
    (fun h ->
      let g = Array.fold_left (fun a b -> gcd a (abs b)) 0 h in
      QCheck.assume (g = 1);
      let m = Itf_opt.Hyperplane.completion h in
      Intmat.is_unimodular m && Intmat.row m 0 = h)

let () =
  Alcotest.run "properties"
    (List.map
       (fun (name, tests) -> (name, List.map QCheck_alcotest.to_alcotest tests))
       [
         ( "dir",
           [ prop_union_is_join; prop_reverse_antimorphism; prop_merge_lex_assoc ] );
         ( "templates",
           [
             prop_revperm_compose;
             prop_revperm_matrix_agrees;
             prop_reduce_preserves_mapping;
             prop_parallelizable_agrees_with_parmap;
           ] );
         ( "mapping-soundness",
           [ prop_unimodular_map_sound; prop_blockmap_sound; prop_coalesce_merge_sound ] );
         ("parser", [ prop_parser_roundtrip ]);
         ("hyperplane", [ prop_completion_first_row ]);
       ])
