(* Tests for dependence queries (Itf_core.Queries) and the hyperplane
   wavefront synthesizer (Itf_opt.Hyperplane). *)

open Itf_ir
module Depvec = Itf_dep.Depvec
module Queries = Itf_core.Queries
module Hyperplane = Itf_opt.Hyperplane
module F = Itf_core.Framework
module Intmat = Itf_mat.Intmat

let v = Depvec.of_string
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let test_carried_level () =
  Alcotest.(check (option int)) "(0,0,+) carried by 2" (Some 2)
    (Queries.carried_level (v "(0,0,+)"));
  Alcotest.(check (option int)) "(1,-1) carried by 0" (Some 0)
    (Queries.carried_level (v "(1,-1)"));
  Alcotest.(check (option int)) "(0+,1) indefinite" None
    (Queries.carried_level (v "(0+,1)"));
  Alcotest.(check (option int)) "(0,0) never carried" None
    (Queries.carried_level (v "(0,0)"))

let test_may_be_carried_by () =
  check_bool "(0,+) by 1" true (Queries.may_be_carried_by (v "(0,+)") 1);
  check_bool "(0,+) not by 0" false (Queries.may_be_carried_by (v "(0,+)") 0);
  check_bool "(0+,1) by both" true
    (Queries.may_be_carried_by (v "(0+,1)") 0
    && Queries.may_be_carried_by (v "(0+,1)") 1);
  check_bool "(+,*) only by 0" true
    (Queries.may_be_carried_by (v "(+,*)") 0
    && not (Queries.may_be_carried_by (v "(+,*)") 1))

let test_parallelizable () =
  let d = [ v "(0,0,+)" ] in
  Alcotest.(check (list int)) "matmul: i and j parallel" [ 0; 1 ]
    (Queries.parallelizable_loops ~depth:3 d);
  check_bool "k not parallel" false (Queries.parallelizable d 2);
  check_bool "innermost not vectorizable" false
    (Queries.vectorizable_innermost ~depth:3 d);
  check_bool "after interchange k out, vectorizable" true
    (Queries.vectorizable_innermost ~depth:3 [ v "(+,0,0)" ])

let test_parallelizable_matches_legality () =
  (* The query must agree with the full framework verdict on matmul. *)
  let nest = Builders.matmul () in
  let d = Itf_dep.Analysis.vectors nest in
  List.iter
    (fun k ->
      check_bool
        (Printf.sprintf "loop %d agreement" k)
        (Queries.parallelizable d k)
        (Itf_core.Legality.is_legal ~vectors:d nest
           [ Itf_core.Template.parallelize_one ~n:3 k ]))
    [ 0; 1; 2 ]

let test_fully_permutable () =
  (* matmul is fully permutable everywhere *)
  check_bool "matmul 0..2" true
    (Queries.fully_permutable ~depth:3 [ v "(0,0,+)" ] ~i:0 ~j:2);
  (* the skewed stencil band (1,0),(1,1) wait: (1,-1) breaks inner band *)
  check_bool "(1,-1) band 0..1 ok (carried by 0? no: nonneg check fails)"
    false
    (Queries.fully_permutable ~depth:2 [ v "(1,-1)" ] ~i:0 ~j:1);
  check_bool "(1,-1) inner band alone ok (carried outside by loop 0)" true
    (Queries.fully_permutable ~depth:2 [ v "(1,-1)" ] ~i:1 ~j:1);
  check_bool "(1,1) fully permutable" true
    (Queries.fully_permutable ~depth:2 [ v "(1,1)" ] ~i:0 ~j:1);
  check_int "serial fraction of matmul" 1
    (Queries.serial_fraction ~depth:3 [ v "(0,0,+)" ])

(* ------------------------------------------------------------------ *)
(* Hyperplane                                                          *)
(* ------------------------------------------------------------------ *)

let test_min_dot_via_find () =
  (* For the stencil D = {(1,0),(0,1)} the smallest hyperplane is (1,1). *)
  (match Hyperplane.find_hyperplane ~depth:2 [ v "(1,0)"; v "(0,1)" ] with
  | Some h -> Alcotest.(check (array int)) "h = (1,1)" [| 1; 1 |] h
  | None -> Alcotest.fail "expected a hyperplane");
  (* (1,-1) and (0,1) need h = (2,1): h.(1,-1) = 1, h.(0,1) = 1. *)
  (match Hyperplane.find_hyperplane ~depth:2 [ v "(1,-1)"; v "(0,1)" ] with
  | Some h -> Alcotest.(check (array int)) "h = (2,1)" [| 2; 1 |] h
  | None -> Alcotest.fail "expected a hyperplane");
  (* a direction value that can be arbitrarily negative kills it *)
  Alcotest.(check bool) "(*,1) hopeless with nonneg h... on comp 0" true
    (match Hyperplane.find_hyperplane ~depth:2 [ v "(*,1)" ] with
    | Some h -> h.(0) = 0 (* must zero out the unbounded component *)
    | None -> false)

let test_completion () =
  List.iter
    (fun h ->
      let m = Hyperplane.completion h in
      check_bool "unimodular" true (Intmat.is_unimodular m);
      Alcotest.(check (array int)) "first row is h" h (Intmat.row m 0))
    [ [| 1; 1 |]; [| 2; 1 |]; [| 3; 2; 1 |]; [| 1; 0; 0 |]; [| 5; 3 |]; [| 0; 1; 0 |] ];
  Alcotest.check_raises "gcd must be 1"
    (Invalid_argument "Hyperplane.completion: gcd of entries must be 1")
    (fun () -> ignore (Hyperplane.completion [| 2; 4 |]))

let test_wavefront_stencil () =
  let nest = Builders.stencil () in
  match Hyperplane.wavefront nest with
  | None -> Alcotest.fail "stencil must have a wavefront"
  | Some (seq, result) ->
    check_int "two templates" 2 (List.length seq);
    (* all inner loops pardo, outer sequential *)
    (match result.F.nest.Nest.loops with
    | outer :: rest ->
      check_bool "outer do" true (outer.Nest.kind = Nest.Do);
      check_bool "inners pardo" true
        (List.for_all (fun (l : Nest.loop) -> l.Nest.kind = Nest.Pardo) rest)
    | [] -> Alcotest.fail "no loops");
    (* and it is semantically correct under adversarial pardo order *)
    check_bool "wavefront equivalent" true
      (Builders.equivalent ~params:[ ("n", 12) ]
         ~orders:[ `Forward; `Reverse; `Shuffle 5 ]
         (Builders.stencil ()) result.F.nest)

let test_wavefront_matmul () =
  (* matmul: D = {(0,0,+)}: hyperplane (0,0,1) -> outer loop becomes k,
     inner loops (completions of the basis) run parallel. *)
  let nest = Builders.matmul () in
  match Hyperplane.wavefront nest with
  | None -> Alcotest.fail "matmul must have a wavefront"
  | Some (_, result) ->
    check_bool "equivalent" true
      (Builders.equivalent ~params:[ ("n", 6) ]
         ~orders:[ `Forward; `Shuffle 2 ] (Builders.matmul ()) result.F.nest)

let test_wavefront_none_for_sequential_chain () =
  (* a(i) = a(i-1) on a single loop: depth < 2 -> None *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i" ] },
            Expr.Load { array = "a"; index = [ Expr.(sub (var "i") (int 1)) ] } );
      ]
  in
  check_bool "no wavefront for 1-deep" true (Hyperplane.wavefront nest = None)

let () =
  Alcotest.run "queries"
    [
      ( "queries",
        [
          Alcotest.test_case "carried level" `Quick test_carried_level;
          Alcotest.test_case "may be carried by" `Quick test_may_be_carried_by;
          Alcotest.test_case "parallelizable loops" `Quick test_parallelizable;
          Alcotest.test_case "agreement with legality" `Quick
            test_parallelizable_matches_legality;
          Alcotest.test_case "fully permutable bands" `Quick test_fully_permutable;
        ] );
      ( "hyperplane",
        [
          Alcotest.test_case "hyperplane search" `Quick test_min_dot_via_find;
          Alcotest.test_case "unimodular completion" `Quick test_completion;
          Alcotest.test_case "stencil wavefront end-to-end" `Quick
            test_wavefront_stencil;
          Alcotest.test_case "matmul wavefront" `Quick test_wavefront_matmul;
          Alcotest.test_case "no wavefront cases" `Quick
            test_wavefront_none_for_sequential_chain;
        ] );
    ]
