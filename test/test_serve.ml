(* Tests for the anytime budget (lib/opt/engine.ml) and the serve layer
   (lib/serve/serve.ml):

   - budget semantics: an expired budget returns the best-so-far outcome
     marked [Degraded] — never an exception, never [None] — and the cut
     is deterministic: same budget cut point, bit-identical outcome. A
     budget that never trips leaves the search bit-identical to an
     unbudgeted one.
   - serve protocol: request/response roundtrip over [handle_line]; a
     second identical request is answered from the response cache; a
     deadline-cut request reports [status = "degraded"] and is NOT
     cached; malformed JSON, malformed requests and unparseable nests
     produce [status = "error"] responses rather than crashes; the LRU
     response cache evicts once past capacity.
   - tiered-regression pin: on matmul, a tiered search must see at least
     as many cross-step cache hits as the untiered search it screens for
     (the screen reorders exact evaluations; it must not destroy the
     cache's cross-step hit stream — the v7 collapse regression). *)

module Engine = Itf_opt.Engine
module Search = Itf_opt.Search
module Costmodel = Itf_opt.Costmodel
module Sequence = Itf_core.Sequence
module Serve = Itf_serve.Serve
module Json = Itf_obs.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let seq_testable =
  Alcotest.testable Sequence.pp (fun a b -> Sequence.compare a b = 0)

let matmul_src =
  String.concat "\n"
    [
      "do i = 1, n";
      "  do j = 1, n";
      "    do k = 1, n";
      "      A(i, j) = A(i, j) + B(i, k) * C(k, j)";
      "    enddo";
      "  enddo";
      "enddo";
      "";
    ]

let params = [ ("n", 12) ]
let obj () = Search.cache_misses ~params ()

let tier0_spec =
  Costmodel.Locality
    {
      config = { Itf_machine.Cache.size_bytes = 8192; line_bytes = 64; assoc = 2 };
      elem_bytes = 8;
      params;
    }

let matmul_nest () =
  (Itf_lang.Parser.parse matmul_src).Itf_lang.Parser.nest

(* ------------------------------------------------------------------ *)
(* Anytime budget on Engine.search                                     *)
(* ------------------------------------------------------------------ *)

let get = function Some o -> o | None -> Alcotest.fail "search returned None"

let test_budget_zero_deadline () =
  (* Even a 0-second deadline yields the identity outcome, degraded. *)
  let o =
    get
      (Engine.search ~steps:2 ~domains:1
         ~budget:{ Engine.deadline_s = Some 0.; max_nodes = None }
         (matmul_nest ()) (obj ()))
  in
  check_string "degraded" "degraded" (Engine.completion_label o.Engine.completion);
  Alcotest.check seq_testable "identity sequence" [] o.Engine.sequence;
  match o.Engine.completion with
  | Engine.Degraded { cut } ->
    check_string "cut at the first step" "step1:deadline" cut
  | Engine.Complete -> Alcotest.fail "expected Degraded"

let test_budget_nodes_deterministic () =
  (* Two runs cut by the same node budget return bit-identical outcomes. *)
  let run () =
    get
      (Engine.search ~steps:3 ~domains:1 ~tier0:tier0_spec
         ~budget:{ Engine.deadline_s = None; max_nodes = Some 40 }
         (matmul_nest ()) (obj ()))
  in
  let a = run () and b = run () in
  check_string "both degraded" "degraded"
    (Engine.completion_label a.Engine.completion);
  check_bool "same cut" true (a.Engine.completion = b.Engine.completion);
  Alcotest.check seq_testable "same winner" a.Engine.sequence b.Engine.sequence;
  check_bool "same score" true (Float.equal a.Engine.score b.Engine.score);
  check_int "same exploration" a.Engine.stats.Itf_opt.Stats.nodes_explored
    b.Engine.stats.Itf_opt.Stats.nodes_explored

let test_budget_never_trips_identical () =
  (* A budget that never expires leaves the outcome bit-identical to an
     unbudgeted search. *)
  let free =
    get (Engine.search ~steps:2 ~domains:1 ~tier0:tier0_spec (matmul_nest ()) (obj ()))
  in
  let budgeted =
    get
      (Engine.search ~steps:2 ~domains:1 ~tier0:tier0_spec
         ~budget:{ Engine.deadline_s = Some 3600.; max_nodes = Some max_int }
         (matmul_nest ()) (obj ()))
  in
  check_string "complete" "ok" (Engine.completion_label budgeted.Engine.completion);
  Alcotest.check seq_testable "same winner" free.Engine.sequence
    budgeted.Engine.sequence;
  check_bool "same score" true (Float.equal free.Engine.score budgeted.Engine.score);
  check_int "same exploration" free.Engine.stats.Itf_opt.Stats.nodes_explored
    budgeted.Engine.stats.Itf_opt.Stats.nodes_explored

(* ------------------------------------------------------------------ *)
(* Tiered cache-hit regression pin                                     *)
(* ------------------------------------------------------------------ *)

let test_tiered_hits_not_collapsed () =
  (* The tier-0 screen must not starve the cross-step cache: on matmul —
     the bench configuration, n = 16, steps = 3 — the tiered search sees
     at least the untiered search's hits. *)
  let params = [ ("n", 16) ] in
  let obj () = Search.cache_misses ~params () in
  let tier0_spec =
    Costmodel.Locality
      {
        config =
          { Itf_machine.Cache.size_bytes = 8192; line_bytes = 64; assoc = 2 };
        elem_bytes = 8;
        params;
      }
  in
  let hits (o : Engine.outcome) =
    o.Engine.stats.Itf_opt.Stats.legality_cache_hits
    + o.Engine.stats.Itf_opt.Stats.score_cache_hits
  in
  let unt =
    get (Engine.search ~steps:3 ~domains:1 (matmul_nest ()) (obj ()))
  in
  let tiered =
    get
      (Engine.search ~steps:3 ~domains:1 ~tier0:tier0_spec (matmul_nest ())
         (obj ()))
  in
  check_bool
    (Printf.sprintf "tiered hits (%d) >= untiered hits (%d)" (hits tiered)
       (hits unt))
    true
    (hits tiered >= hits unt);
  Alcotest.check seq_testable "same winner" unt.Engine.sequence
    tiered.Engine.sequence

(* ------------------------------------------------------------------ *)
(* Serve protocol                                                      *)
(* ------------------------------------------------------------------ *)

let req ?(id = Json.Int 1) ?deadline_ms ?max_nodes ?(params = [ ("n", Json.Int 12) ])
    ?(steps = 2) nest =
  Json.to_string
    (Json.Obj
       ([
          ("id", id);
          ("nest", Json.String nest);
          ("params", Json.Obj params);
          ("steps", Json.Int steps);
        ]
       @ (match deadline_ms with
         | None -> []
         | Some ms -> [ ("deadline_ms", Json.Float ms) ])
       @
       match max_nodes with
       | None -> []
       | Some n -> [ ("max_nodes", Json.Int n) ]))

let field name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "response lacks %S: %s" name (Json.to_string json))

let status json =
  match Json.to_str (field "status" json) with
  | Some s -> s
  | None -> Alcotest.fail "status not a string"

let test_serve_roundtrip () =
  let server = Serve.create ~domains:1 () in
  let resp, stop = Serve.handle_line server (req ~id:(Json.String "r1") matmul_src) in
  check_bool "no shutdown" false stop;
  check_string "ok" "ok" (status resp);
  check_string "id echoed" "\"r1\"" (Json.to_string (field "id" resp));
  check_bool "score present" true (Json.to_float (field "score" resp) <> None);
  check_bool "sequence present" true (Json.to_str (field "sequence" resp) <> None);
  check_bool "not cached" true (field "cached" resp = Json.Bool false)

let test_serve_warm_cache () =
  let server = Serve.create ~domains:1 () in
  let first, _ = Serve.handle_line server (req matmul_src) in
  let second, _ = Serve.handle_line server (req ~id:(Json.Int 2) matmul_src) in
  check_string "first ok" "ok" (status first);
  check_string "second ok" "ok" (status second);
  check_bool "first is fresh" true (field "cached" first = Json.Bool false);
  check_bool "second is cached" true (field "cached" second = Json.Bool true);
  check_bool "same score" true
    (Json.equal (field "score" first) (field "score" second));
  check_bool "same sequence" true
    (Json.equal (field "sequence" first) (field "sequence" second))

let test_serve_degraded_not_cached () =
  (* A node budget (deterministic, unlike a wall-clock deadline) cuts the
     search: the response is degraded with a cut checkpoint, identically
     on repeat — degraded answers never enter the response cache. *)
  let server = Serve.create ~domains:1 () in
  let a, _ = Serve.handle_line server (req ~max_nodes:5 matmul_src) in
  let b, _ = Serve.handle_line server (req ~id:(Json.Int 2) ~max_nodes:5 matmul_src) in
  check_string "degraded" "degraded" (status a);
  check_bool "cut names checkpoint" true (Json.to_str (field "cut" a) <> None);
  check_string "still degraded on repeat" "degraded" (status b);
  check_bool "degraded repeat is not served from cache" true
    (field "cached" b = Json.Bool false);
  check_bool "deterministic cut" true (Json.equal (field "cut" a) (field "cut" b));
  check_bool "deterministic score" true
    (Json.equal (field "score" a) (field "score" b))

let test_serve_errors_not_crashes () =
  let server = Serve.create ~domains:1 () in
  let malformed, stop = Serve.handle_line server "{not json" in
  check_bool "no shutdown" false stop;
  check_string "malformed JSON is an error response" "error" (status malformed);
  let missing, _ = Serve.handle_line server "{\"id\": 7}" in
  check_string "missing nest is an error" "error" (status missing);
  check_string "id still echoed" "7" (Json.to_string (field "id" missing));
  let bad_nest, _ = Serve.handle_line server (req "do i = 1, n\n  oops(") in
  check_string "unparseable nest is an error" "error" (status bad_nest);
  let bad_field, _ =
    Serve.handle_line server
      "{\"nest\": \"x\", \"steps\": \"two\"}"
  in
  check_string "bad field type is an error" "error" (status bad_field);
  let not_obj, _ = Serve.handle_line server "[1, 2]" in
  check_string "non-object request is an error" "error" (status not_obj)

let test_serve_lru_eviction () =
  let server = Serve.create ~domains:1 ~max_cache:1 () in
  let gauge name =
    Itf_obs.Metrics.gauge_value (Itf_obs.Metrics.gauge (Serve.metrics server) name)
  in
  (* Two distinct fingerprints through a 1-entry cache: the second insert
     evicts the first, so re-asking the first misses again. *)
  ignore (Serve.handle_line server (req matmul_src));
  ignore (Serve.handle_line server (req ~steps:1 ~id:(Json.Int 2) matmul_src));
  check_bool "eviction counted" true (gauge "serve.cache.evictions" >= 1.);
  check_bool "cache stays at capacity" true (gauge "serve.cache.size" = 1.);
  let again, _ = Serve.handle_line server (req ~id:(Json.Int 3) matmul_src) in
  check_bool "evicted entry recomputed" true (field "cached" again = Json.Bool false)

(* ------------------------------------------------------------------ *)
(* Introspection: status, metrics, slow log, sampling                  *)
(* ------------------------------------------------------------------ *)

let obj_field path json =
  List.fold_left (fun j name -> field name j) json path

let to_float_exn json =
  match Json.to_float json with
  | Some x -> x
  | None -> Alcotest.fail ("not a number: " ^ Json.to_string json)

let test_serve_status_op () =
  (* slow_ms 0: every request qualifies for the slow log. *)
  let server = Serve.create ~domains:1 ~slow_ms:0. () in
  ignore (Serve.handle_line server (req ~id:(Json.Int 1) matmul_src));
  ignore (Serve.handle_line server (req ~id:(Json.Int 2) matmul_src));
  let resp, stop = Serve.handle_line server "{\"op\": \"status\", \"id\": 3}" in
  check_bool "no shutdown" false stop;
  check_string "ok" "ok" (status resp);
  check_bool "requests.ok counts the two searches" true
    (obj_field [ "requests"; "ok" ] resp = Json.Int 2);
  check_bool "requests.total agrees" true
    (obj_field [ "requests"; "total" ] resp = Json.Int 2);
  check_bool "uptime positive" true (to_float_exn (field "uptime_s" resp) >= 0.);
  (* latency: both searches observed; quantiles non-zero and ordered *)
  check_bool "latency count" true
    (obj_field [ "latency_us"; "count" ] resp = Json.Int 2);
  let p50 = to_float_exn (obj_field [ "latency_us"; "p50" ] resp) in
  let p99 = to_float_exn (obj_field [ "latency_us"; "p99" ] resp) in
  check_bool "p50 > 0" true (p50 > 0.);
  check_bool "p99 >= p50" true (p99 >= p50);
  (* the per-phase breakdown is present for all five engine phases *)
  (match field "phases_us" resp with
  | Json.Obj kvs ->
    List.iter
      (fun p ->
        check_bool (p ^ " phase present") true (List.mem_assoc p kvs))
      [ "expand"; "legality"; "tier0"; "exact"; "merge" ]
  | _ -> Alcotest.fail "phases_us not an object");
  (* cache: the repeat was answered from the LRU *)
  check_bool "cache hits" true (obj_field [ "cache"; "hits" ] resp = Json.Int 1);
  (* intern tables are reported with non-zero size *)
  (match field "intern" resp with
  | Json.List (_ :: _ as tables) ->
    check_bool "intern sizes positive" true
      (List.exists
         (fun t ->
           match Json.to_int (field "size" t) with
           | Some n -> n > 0
           | None -> false)
         tables)
  | _ -> Alcotest.fail "intern not a non-empty list");
  (* slow log at threshold 0: both requests, newest first *)
  match field "slow" resp with
  | Json.List [ newest; oldest ] ->
    check_bool "newest first" true (field "id" newest = Json.Int 2);
    check_bool "oldest second" true (field "id" oldest = Json.Int 1);
    check_bool "cache hit marked" true (field "cached" newest = Json.Bool true);
    check_bool "fresh request carries phases" true
      (match field "phases_us" oldest with
      | Json.Obj kvs -> List.mem_assoc "exact" kvs
      | _ -> false)
  | v -> Alcotest.fail ("expected 2 slow records, got " ^ Json.to_string v)

let test_serve_metrics_op () =
  let server = Serve.create ~domains:1 () in
  ignore (Serve.handle_line server (req matmul_src));
  let resp, stop = Serve.handle_line server "{\"op\": \"metrics\", \"id\": 4}" in
  check_bool "no shutdown" false stop;
  check_string "ok" "ok" (status resp);
  match Json.to_str (field "metrics" resp) with
  | None -> Alcotest.fail "metrics not a string"
  | Some text ->
    List.iter
      (fun sub ->
        check_bool (Printf.sprintf "exposition carries %S" sub) true
          (Builders.contains ~sub text))
      [
        "# TYPE serve_requests counter";
        "serve_requests{status=\"ok\"} 1";
        "# TYPE serve_request_us histogram";
        "serve_request_us_bucket";
        "le=\"+Inf\"";
        "serve_request_us_count 1";
        "engine_phase_us_bucket{phase=\"exact\"";
      ]

let test_serve_unknown_op () =
  let server = Serve.create ~domains:1 () in
  let resp, stop = Serve.handle_line server "{\"op\": \"nope\", \"id\": 5}" in
  check_bool "no shutdown" false stop;
  check_string "error" "error" (status resp);
  match Json.to_str (field "error" resp) with
  | Some msg ->
    check_bool "names the op" true (Builders.contains ~sub:"nope" msg)
  | None -> Alcotest.fail "error not a string"

(* Satellite: the determinism guard. A cached repeat must replay the
   original search payload byte-identically — only the [cached] flag and
   the wall-clock [time_ms] envelope may differ, because no wall-clock
   field is allowed into the fingerprint or the cached body. *)
let test_serve_cached_replay_byte_identical () =
  let server = Serve.create ~domains:1 () in
  let strip json =
    match json with
    | Json.Obj kvs ->
      Json.Obj
        (List.filter (fun (k, _) -> k <> "cached" && k <> "time_ms") kvs)
    | v -> v
  in
  let first, _ = Serve.handle_line server (req ~id:(Json.Int 1) matmul_src) in
  let second, _ = Serve.handle_line server (req ~id:(Json.Int 1) matmul_src) in
  check_bool "repeat hit the cache" true (field "cached" second = Json.Bool true);
  check_string "search payload replays byte-identically"
    (Json.to_string (strip first))
    (Json.to_string (strip second))

let test_serve_slow_log_threshold () =
  (* A huge threshold keeps fast ok requests out of the slow log, but a
     degraded request always enters it (tail-based keep). *)
  let server = Serve.create ~domains:1 ~slow_ms:1e9 () in
  ignore (Serve.handle_line server (req ~id:(Json.Int 1) matmul_src));
  let st1, _ = Serve.handle_line server "{\"op\": \"status\"}" in
  check_bool "fast ok request not in the slow log" true
    (field "slow" st1 = Json.List []);
  (* steps 3 so the fingerprint differs from the cached ok request above —
     the budget itself is excluded from the cache key by design, so a
     same-fingerprint budgeted repeat would be answered ok from the LRU. *)
  ignore
    (Serve.handle_line server
       (req ~id:(Json.Int 2) ~steps:3 ~max_nodes:5 matmul_src));
  let st2, _ = Serve.handle_line server "{\"op\": \"status\"}" in
  match field "slow" st2 with
  | Json.List [ r ] ->
    check_bool "degraded request logged" true (field "id" r = Json.Int 2);
    check_bool "status recorded" true
      (field "status" r = Json.String "degraded")
  | v -> Alcotest.fail ("expected 1 slow record, got " ^ Json.to_string v)

(* Sampling decides trace *retention* only: at rate 0 an ok request's
   span tree is dropped from the trace file; at rate 1 it is kept; and a
   degraded request is kept even at rate 0. The search responses are
   unaffected either way. *)
let test_serve_sampling_retention () =
  let with_server rate f =
    let trace = Filename.temp_file "serve_trace" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove trace with Sys_error _ -> ())
      (fun () ->
        f (Serve.create ~domains:1 ~trace_out:trace ~sample_rate:rate ()) trace)
  in
  let trace_names path =
    String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all)
    |> List.filter_map (fun l ->
           if String.trim l = "" then None
           else
             match Json.of_string l with
             | Ok j -> Json.to_str (field "name" j)
             | Error _ -> None)
  in
  let kept, resp_kept =
    with_server 1. (fun server trace ->
        let resp, _ = Serve.handle_line server (req ~id:(Json.Int 1) matmul_src) in
        (trace_names trace, resp))
  in
  check_bool "rate 1 retains the request span" true
    (List.mem "serve.request" kept);
  let dropped, resp_dropped =
    with_server 0. (fun server trace ->
        let resp, _ = Serve.handle_line server (req ~id:(Json.Int 1) matmul_src) in
        (trace_names trace, resp))
  in
  check_bool "rate 0 drops the ok request's spans" true (dropped = []);
  (* identical answers modulo the wall-clock envelope *)
  let strip json =
    match json with
    | Json.Obj kvs -> Json.Obj (List.filter (fun (k, _) -> k <> "time_ms") kvs)
    | v -> v
  in
  check_string "sampling does not change the response"
    (Json.to_string (strip resp_kept))
    (Json.to_string (strip resp_dropped));
  let tail_kept =
    with_server 0. (fun server trace ->
        ignore
          (Serve.handle_line server
             (req ~id:(Json.Int 2) ~max_nodes:5 matmul_src));
        trace_names trace)
  in
  check_bool "degraded request retained even at rate 0" true
    (List.mem "serve.request" tail_kept)

(* The acceptance pin at unit scale: on a single-domain server the four
   attributed evaluation phases (expand / legality / tier0 / exact)
   account for most of the engine's own wall time. Bounds are loose —
   CI enforces the 20% window on a warm daemon. *)
let test_serve_phase_sum_vs_total () =
  let server = Serve.create ~domains:1 () in
  ignore (Serve.handle_line server (req ~id:(Json.Int 1) ~steps:2 matmul_src));
  let st, _ = Serve.handle_line server "{\"op\": \"status\"}" in
  let phase p = to_float_exn (obj_field [ "phases_us"; p ] st) in
  let sum4 = phase "expand" +. phase "legality" +. phase "tier0" +. phase "exact" in
  let total = to_float_exn (obj_field [ "search_us"; "total" ] st) in
  check_bool "search total positive" true (total > 0.);
  check_bool
    (Printf.sprintf "phase sum (%.0fus) within [0.5, 1.05] of total (%.0fus)"
       sum4 total)
    true
    (sum4 >= 0.5 *. total && sum4 <= 1.05 *. total)

let test_serve_shutdown () =
  let server = Serve.create ~domains:1 () in
  let resp, stop = Serve.handle_line server "{\"op\": \"shutdown\", \"id\": 9}" in
  check_bool "stop requested" true stop;
  check_string "ok" "ok" (status resp);
  check_bool "shutdown acknowledged" true (field "shutdown" resp = Json.Bool true)

(* ------------------------------------------------------------------ *)
(* Concurrency: scheduler, shedding, queue deadlines, determinism      *)
(* ------------------------------------------------------------------ *)

let spawn f = Thread.create f ()

let gauge server name =
  Itf_obs.Metrics.gauge_value (Itf_obs.Metrics.gauge (Serve.metrics server) name)

(* Spin until [pred] holds (the scheduler gauges are updated by worker
   domains, so tests sequence themselves on observable state rather than
   sleeps). Returns false only after [timeout] seconds. *)
let wait_for ?(timeout = 30.) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Thread.yield ();
      go ()
    end
  in
  go ()

(* A search heavy enough to keep the single worker busy while the test
   stages queued and shed requests behind it. *)
let heavy_req id =
  req ~id ~steps:3 ~params:[ ("n", Json.Int 16) ] matmul_src

let strip_envelope json =
  match json with
  | Json.Obj kvs ->
    Json.Obj (List.filter (fun (k, _) -> k <> "cached" && k <> "time_ms") kvs)
  | v -> v

(* The tentpole's determinism guard: the same request mix — warm and
   cold, repeats and distinct fingerprints — produces byte-identical
   search payloads on a 4-worker server racing 4 client threads as on a
   1-worker server running them in order. Only the [cached]/[time_ms]
   envelope may differ (which repeat wins the cache insert is a race;
   what the payload says is not). *)
let test_serve_concurrent_byte_identity () =
  let variants =
    [
      (fun id -> req ~id ~steps:1 matmul_src);
      (fun id -> req ~id ~steps:2 matmul_src);
      (fun id -> req ~id ~steps:2 ~params:[ ("n", Json.Int 8) ] matmul_src);
    ]
  in
  let requests =
    List.concat
      (List.init 3 (fun rep ->
           List.mapi
             (fun i mk ->
               let id = Printf.sprintf "r%d-%d" rep i in
               (id, mk (Json.String id)))
             variants))
  in
  let serial = Serve.create ~domains:1 ~workers:1 () in
  let expected =
    List.map
      (fun (id, line) ->
        (id, Json.to_string (strip_envelope (fst (Serve.handle_line serial line)))))
      requests
  in
  let concurrent = Serve.create ~domains:1 ~workers:4 ~queue_depth:64 () in
  let results = ref [] in
  let results_lock = Mutex.create () in
  let worker slice =
    List.iter
      (fun (id, line) ->
        let resp, _ = Serve.handle_line concurrent line in
        let s = Json.to_string (strip_envelope resp) in
        Mutex.protect results_lock (fun () -> results := (id, s) :: !results))
      slice
  in
  let slices =
    List.init 3 (fun k ->
        List.filteri (fun i _ -> i mod 3 = k) requests)
  in
  let threads = List.map (fun slice -> spawn (fun () -> worker slice)) slices in
  List.iter Thread.join threads;
  check_int "all requests answered" (List.length requests)
    (List.length !results);
  List.iter
    (fun (id, want) ->
      match List.assoc_opt id !results with
      | None -> Alcotest.fail ("no concurrent response for " ^ id)
      | Some got ->
        check_string
          (Printf.sprintf "payload %s byte-identical: workers 4 vs 1" id)
          want got)
    expected

(* Overload shedding at the admission queue: with one worker pinned by a
   heavy search and the 1-slot queue full, the next search is shed
   immediately as [overloaded] — and the shed/overloaded counters record
   exactly one. *)
let test_serve_overload_shedding () =
  let server =
    Serve.create ~domains:1 ~max_cache:0 ~workers:1 ~queue_depth:1 ()
  in
  let t1 =
    spawn (fun () -> ignore (Serve.handle_line server (heavy_req (Json.Int 1))))
  in
  check_bool "worker picked up the blocker" true
    (wait_for (fun () -> gauge server "serve.workers.busy" = 1.));
  let t2 =
    spawn (fun () ->
        ignore (Serve.handle_line server (req ~id:(Json.Int 2) ~steps:1 matmul_src)))
  in
  check_bool "second search queued" true
    (wait_for (fun () -> gauge server "serve.queue.depth" = 1.));
  let shed, stop =
    Serve.handle_line server (req ~id:(Json.Int 3) ~steps:1 matmul_src)
  in
  check_bool "no shutdown" false stop;
  check_string "shed as overloaded" "overloaded" (status shed);
  check_bool "id echoed on shed" true (field "id" shed = Json.Int 3);
  check_bool "shed carries an error message" true
    (Json.to_str (field "error" shed) <> None);
  check_bool "shed response has no score" true
    (Json.member "score" shed = None);
  Thread.join t1;
  Thread.join t2;
  let st, _ = Serve.handle_line server "{\"op\": \"status\"}" in
  check_bool "exactly one shed" true (obj_field [ "queue"; "shed" ] st = Json.Int 1);
  check_bool "exactly one overloaded" true
    (obj_field [ "requests"; "overloaded" ] st = Json.Int 1);
  check_bool "the two real searches completed" true
    (obj_field [ "requests"; "ok" ] st = Json.Int 2)

(* Queue-aware deadlines: a request whose allowance is consumed while it
   waits behind a heavy search is answered [degraded] with the
   [queue:deadline] cut without ever running the engine — and it never
   enters the response cache. *)
let test_serve_queue_deadline () =
  let server = Serve.create ~domains:1 ~workers:1 () in
  let t1 =
    spawn (fun () -> ignore (Serve.handle_line server (heavy_req (Json.Int 1))))
  in
  check_bool "worker picked up the blocker" true
    (wait_for (fun () -> gauge server "serve.workers.busy" = 1.));
  let resp, _ =
    Serve.handle_line server
      (req ~id:(Json.Int 2) ~deadline_ms:0.01 ~steps:1 matmul_src)
  in
  Thread.join t1;
  check_string "degraded" "degraded" (status resp);
  check_bool "cut names the queue" true
    (field "cut" resp = Json.String "queue:deadline");
  check_bool "engine never ran: no score" true (Json.member "score" resp = None);
  check_bool "not served from cache" true (field "cached" resp = Json.Bool false);
  (* same fingerprint, no deadline: must be a fresh complete search, so
     the expired request really was never cached *)
  let again, _ = Serve.handle_line server (req ~id:(Json.Int 4) ~steps:1 matmul_src) in
  check_string "repeat completes" "ok" (status again);
  check_bool "repeat was not cached" true (field "cached" again = Json.Bool false)

(* Exact accounting under concurrency: 4 threads x 5 requests against 4
   workers; every counter the server reports must balance to the request
   multiset — no lost updates in the LRU counters, the ring, the request
   counters or the latency histogram. *)
let test_serve_concurrent_exact_totals () =
  let server =
    Serve.create ~domains:1 ~workers:4 ~queue_depth:64 ~slow_ms:0. ()
  in
  let thread k =
    for i = 0 to 2 do
      ignore
        (Serve.handle_line server
           (req ~id:(Json.String (Printf.sprintf "ok-%d-%d" k i)) matmul_src))
    done;
    ignore
      (Serve.handle_line server
         (req
            ~id:(Json.String (Printf.sprintf "cut-%d" k))
            ~max_nodes:5 ~steps:3 matmul_src));
    ignore
      (Serve.handle_line server
         (Printf.sprintf "{\"id\": \"bad-%d\", \"nest\": 42}" k))
  in
  let threads = List.init 4 (fun k -> spawn (fun () -> thread k)) in
  List.iter Thread.join threads;
  (* replies land just before a pump releases its slot, so drain is
     observed, not assumed *)
  check_bool "scheduler drained: no busy workers" true
    (wait_for (fun () -> gauge server "serve.workers.busy" = 0.));
  check_bool "scheduler drained: empty queue" true
    (gauge server "serve.queue.depth" = 0.);
  let st, _ = Serve.handle_line server "{\"op\": \"status\"}" in
  check_bool "12 ok" true (obj_field [ "requests"; "ok" ] st = Json.Int 12);
  check_bool "4 degraded" true
    (obj_field [ "requests"; "degraded" ] st = Json.Int 4);
  check_bool "4 errors" true (obj_field [ "requests"; "error" ] st = Json.Int 4);
  check_bool "0 overloaded" true
    (obj_field [ "requests"; "overloaded" ] st = Json.Int 0);
  check_bool "total balances" true
    (obj_field [ "requests"; "total" ] st = Json.Int 20);
  check_bool "every search latency observed" true
    (obj_field [ "latency_us"; "count" ] st = Json.Int 20);
  (* every executed search probed the LRU exactly once: 12 ok + 4
     degraded (degraded probes but is never inserted); errors never reach
     the cache. Hit/miss split depends on scheduling, the sum does not. *)
  let cache_n path =
    match Json.to_int (obj_field [ "cache"; path ] st) with
    | Some n -> n
    | None -> Alcotest.fail "cache counter not an int"
  in
  check_int "LRU probes balance: hits + misses = 16" 16
    (cache_n "hits" + cache_n "misses");
  check_bool "nothing shed" true (obj_field [ "queue"; "shed" ] st = Json.Int 0);
  (* slow_ms 0: all 20 requests are slow; the snapshot caps its listing,
     so a full window proves the ring lost none of the concurrent pushes *)
  match field "slow" st with
  | Json.List l -> check_int "slow-log window full" 16 (List.length l)
  | _ -> Alcotest.fail "slow not a list"

let () =
  Alcotest.run "serve"
    [
      ( "budget",
        [
          Alcotest.test_case "zero deadline yields degraded identity" `Quick
            test_budget_zero_deadline;
          Alcotest.test_case "node-budget cut is deterministic" `Quick
            test_budget_nodes_deterministic;
          Alcotest.test_case "untripped budget is bit-identical" `Quick
            test_budget_never_trips_identical;
        ] );
      ( "tiered-regression",
        [
          Alcotest.test_case "tiered cache hits not collapsed (matmul)" `Quick
            test_tiered_hits_not_collapsed;
        ] );
      ( "serve",
        [
          Alcotest.test_case "request/response roundtrip" `Quick
            test_serve_roundtrip;
          Alcotest.test_case "second identical request is cached" `Quick
            test_serve_warm_cache;
          Alcotest.test_case "budget cut: degraded, deterministic, uncached"
            `Quick test_serve_degraded_not_cached;
          Alcotest.test_case "malformed input yields error responses" `Quick
            test_serve_errors_not_crashes;
          Alcotest.test_case "LRU response cache evicts at capacity" `Quick
            test_serve_lru_eviction;
          Alcotest.test_case "shutdown request stops the loop" `Quick
            test_serve_shutdown;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "status op snapshot" `Quick test_serve_status_op;
          Alcotest.test_case "metrics op exposition" `Quick
            test_serve_metrics_op;
          Alcotest.test_case "unknown op is an error" `Quick
            test_serve_unknown_op;
          Alcotest.test_case "cached replay is byte-identical" `Quick
            test_serve_cached_replay_byte_identical;
          Alcotest.test_case "slow-log threshold" `Quick
            test_serve_slow_log_threshold;
          Alcotest.test_case "sampling retention" `Quick
            test_serve_sampling_retention;
          Alcotest.test_case "phase sum tracks search total" `Quick
            test_serve_phase_sum_vs_total;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "workers 4 == workers 1 byte-identical" `Quick
            test_serve_concurrent_byte_identity;
          Alcotest.test_case "overload sheds at the queue cap" `Quick
            test_serve_overload_shedding;
          Alcotest.test_case "queued past deadline never runs" `Quick
            test_serve_queue_deadline;
          Alcotest.test_case "concurrent totals are exact" `Quick
            test_serve_concurrent_exact_totals;
        ] );
    ]
