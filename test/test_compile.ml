(* Differential tests: the compiled backend (lib/exec/compile.ml) against
   the tree-walking interpreter, which stays the semantic oracle. Random
   nests — negative steps, Min/Max bounds on outer variables, guards,
   pardo loops under adversarial orders — must produce identical array
   snapshots, trace sequences, iteration orders, ordinals, cache stats and
   parallel-time floats through both backends. *)

open Itf_ir
module Env = Itf_exec.Env
module Interp = Itf_exec.Interp
module Compile = Itf_exec.Compile
module Cache = Itf_machine.Cache
module Memsim = Itf_machine.Memsim
module Parallel = Itf_machine.Parallel

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Random nest generator                                               *)
(* ------------------------------------------------------------------ *)

let rstate = Random.State.make [| 0x5EED; 92 |]
let rint n = Random.State.int rstate n
let pick a = a.(rint (Array.length a))
let flip p = rint 100 < p

(* Affine-ish integer expression over the visible variables. *)
let rec gen_expr vars depth : Expr.t =
  if depth = 0 || flip 30 then
    if vars <> [] && flip 60 then Expr.var (pick (Array.of_list vars))
    else Expr.int (rint 9 - 4)
  else
    let a = gen_expr vars (depth - 1) in
    let b = gen_expr vars (depth - 1) in
    match rint 8 with
    | 0 -> Expr.Add (a, b)
    | 1 -> Expr.Sub (a, b)
    | 2 -> Expr.Mul (Expr.int (rint 3 + 1), a)
    | 3 -> Expr.Min (a, b)
    | 4 -> Expr.Max (a, b)
    | 5 -> Expr.Neg a
    | 6 -> Expr.Div (a, Expr.int (rint 3 + 2)) (* constant, nonzero *)
    | _ -> Expr.Mod (a, Expr.int (rint 5 + 3))

(* Array subscript: anything, folded into the declared bounds. The test
   environments declare every dimension over [-24, 24] and floor-mod with a
   positive divisor lands in [0, 18]. *)
let gen_index vars = Expr.Mod (gen_expr vars 2, Expr.int 19)

let gen_rhs vars =
  let rec go depth =
    if depth = 0 || flip 35 then
      match rint 4 with
      | 0 -> Expr.int (rint 9 - 4)
      | 1 when vars <> [] -> Expr.var (pick (Array.of_list vars))
      | 2 -> Expr.Load { array = "A"; index = [ gen_index vars ] }
      | _ -> Expr.Load { array = "B"; index = [ gen_index vars; gen_index vars ] }
    else
      let a = go (depth - 1) and b = go (depth - 1) in
      match rint 6 with
      | 0 -> Expr.Add (a, b)
      | 1 -> Expr.Sub (a, b)
      | 2 -> Expr.Mul (a, b)
      | 3 -> Expr.Min (a, b)
      | 4 -> Expr.Max (a, b)
      | _ -> Expr.Mod (a, Expr.int (rint 7 + 2))
  in
  go 2

let gen_store vars =
  if flip 50 then
    Stmt.Store ({ array = "A"; index = [ gen_index vars ] }, gen_rhs vars)
  else
    Stmt.Store
      ({ array = "B"; index = [ gen_index vars; gen_index vars ] }, gen_rhs vars)

let rels = [| Stmt.Lt; Stmt.Le; Stmt.Gt; Stmt.Ge; Stmt.Eq; Stmt.Ne |]

let gen_stmt vars =
  let s = gen_store vars in
  if flip 40 then
    let body =
      (* Occasionally a [Set] whose target is never read outside the guard:
         exercises frame-slot collection beyond [Nest.all_vars]. *)
      if flip 25 then [ Stmt.Set ("u", gen_rhs vars); s ] else [ s ]
    in
    Stmt.Guard { lhs = gen_expr vars 2; rel = pick rels; rhs = gen_expr vars 2; body }
  else s

(* One random nest: depth 1-3, steps in {1, 2, -1, -2}, bounds that may
   reference outer loop variables through Min/Max, ~1/3 pardo loops. *)
let gen_nest () =
  let depth = 1 + rint 3 in
  let names = [| "i"; "j"; "k" |] in
  let rec loops k outer =
    if k = depth then []
    else begin
      let var = names.(k) in
      let step = pick [| 1; 2; -1; -2 |] in
      let a = rint 4 and span = rint 4 in
      let lo0, hi0 = if step > 0 then (a, a + span) else (a + span, a) in
      let decorate base =
        if outer <> [] && flip 30 then
          let ov = Expr.var (pick (Array.of_list outer)) in
          if flip 50 then Expr.Min (Expr.int base, Expr.Add (ov, Expr.int (rint 3)))
          else Expr.Max (Expr.int base, Expr.Sub (ov, Expr.int (rint 3)))
        else Expr.int base
      in
      let kind = if flip 33 then Nest.Pardo else Nest.Do in
      Nest.loop ~kind ~step:(Expr.int step) var (decorate lo0) (decorate hi0)
      :: loops (k + 1) (var :: outer)
    end
  in
  let loops = loops 0 [] in
  let vars = List.map (fun (l : Nest.loop) -> l.Nest.var) loops in
  let inits = [ Stmt.Set ("t", gen_expr vars 2) ] in
  let body = List.init (1 + rint 2) (fun _ -> gen_stmt ("t" :: vars)) in
  Nest.make ~inits loops body

let has_pardo (nest : Nest.t) =
  List.exists (fun (l : Nest.loop) -> l.Nest.kind = Nest.Pardo) nest.Nest.loops

(* ------------------------------------------------------------------ *)
(* Differential harness                                                *)
(* ------------------------------------------------------------------ *)

type observation = {
  snapshot : (string * int array) list;
  trace : Env.access list;
  iterations : int array list;
  ordinals : int array list;
}

let observe_interp ~pardo_order nest =
  let env = Builders.make_env ~params:[ ("n", 4) ] nest in
  let trace = ref [] and iters = ref [] and ords = ref [] in
  Env.set_tracer env (Some (fun ev -> trace := ev :: !trace));
  Interp.run ~pardo_order
    ~on_iteration:(fun v -> iters := Array.copy v :: !iters)
    ~on_ordinals:(fun v -> ords := Array.copy v :: !ords)
    env nest;
  Env.set_tracer env None;
  {
    snapshot = Env.snapshot env;
    trace = List.rev !trace;
    iterations = List.rev !iters;
    ordinals = List.rev !ords;
  }

let observe_compiled ~pardo_order nest =
  let env = Builders.make_env ~params:[ ("n", 4) ] nest in
  let trace = ref [] and iters = ref [] and ords = ref [] in
  let c = Compile.compile ~trace:(fun ev -> trace := ev :: !trace) env nest in
  Compile.run ~pardo_order
    ~on_iteration:(fun v -> iters := Array.copy v :: !iters)
    ~on_ordinals:(fun v -> ords := Array.copy v :: !ords)
    c;
  {
    snapshot = Env.snapshot env;
    trace = List.rev !trace;
    iterations = List.rev !iters;
    ordinals = List.rev !ords;
  }

let agree ~pardo_order nest =
  let a = observe_interp ~pardo_order nest in
  let b = observe_compiled ~pardo_order nest in
  a = b

let test_random_nests () =
  for case = 1 to 200 do
    let nest = gen_nest () in
    let orders =
      if has_pardo nest then [ `Forward; `Reverse; `Shuffle 5 ] else [ `Forward ]
    in
    List.iter
      (fun order ->
        if not (agree ~pardo_order:order nest) then
          Alcotest.failf "case %d diverges (order %s):@.%a" case
            (match order with
            | `Forward -> "forward"
            | `Reverse -> "reverse"
            | `Shuffle s -> "shuffle " ^ string_of_int s)
            Nest.pp nest)
      orders
  done

let test_paper_nests () =
  List.iter
    (fun (name, nest) ->
      check_bool name true (agree ~pardo_order:`Forward nest))
    [
      ("matmul", Builders.matmul ());
      ("stencil", Builders.stencil ());
      ("triangular", Builders.triangular ());
    ]

(* Uninterpreted calls resolve through the environment's function table. *)
let test_functions () =
  let nest = Builders.sparse_matmul () in
  let funcs =
    [
      ("colstr", (function [ j ] -> 1 + ((j - 1) mod 3) | _ -> 0));
      ("rowidx", (function [ k ] -> 1 + (k mod 4) | _ -> 0));
    ]
  in
  let run via =
    let env = Builders.make_env ~funcs ~params:[ ("n", 4) ] nest in
    (match via with
    | `Interp -> Interp.run env nest
    | `Compiled -> Compile.run (Compile.compile env nest));
    Env.snapshot env
  in
  check_bool "sparse matmul snapshots" true (run `Interp = run `Compiled)

(* ------------------------------------------------------------------ *)
(* Exception agreement and compile-time reporting                      *)
(* ------------------------------------------------------------------ *)

let test_oob_agree () =
  let nest =
    Nest.make
      [ Nest.loop "i" (Expr.int 0) (Expr.int 5) ]
      [ Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "i") ]
  in
  let via_interp () =
    let env = Env.create () in
    Env.declare_array env "a" [ (0, 3) ];
    Interp.run env nest
  in
  let via_compiled () =
    let env = Env.create () in
    Env.declare_array env "a" [ (0, 3) ];
    Compile.run (Compile.compile env nest)
  in
  let msg = "Env: a subscript 0 = 4 out of [0, 3]" in
  Alcotest.check_raises "interp oob" (Invalid_argument msg) via_interp;
  Alcotest.check_raises "compiled oob" (Invalid_argument msg) via_compiled

let test_division_by_zero_agree () =
  let nest =
    Nest.make
      [ Nest.loop "i" (Expr.int 0) (Expr.int 2) ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i" ] },
            Expr.Div (Expr.int 7, Expr.var "i") );
      ]
  in
  let run via =
    let env = Env.create () in
    Env.declare_array env "a" [ (0, 3) ];
    match via with
    | `Interp -> Interp.run env nest
    | `Compiled -> Compile.run (Compile.compile env nest)
  in
  Alcotest.check_raises "interp" Division_by_zero (fun () -> run `Interp);
  Alcotest.check_raises "compiled" Division_by_zero (fun () -> run `Compiled)

let test_compile_time_errors () =
  let store arr index = Stmt.Store ({ array = arr; index }, Expr.int 1) in
  let nest = Nest.make [ Nest.loop "i" Expr.zero (Expr.int 3) ] in
  (* Arity mismatches and undeclared arrays surface at [compile], before
     any iteration runs (a documented divergence from the interpreter). *)
  let env = Env.create () in
  Env.declare_array env "a" [ (0, 3); (0, 3) ];
  Alcotest.check_raises "arity at compile time"
    (Invalid_argument "Env: a expects 2 subscripts, got 1") (fun () ->
      ignore (Compile.compile env (nest [ store "a" [ Expr.var "i" ] ])));
  check_bool "undeclared at compile time" true
    (match Compile.compile env (nest [ store "zz" [ Expr.var "i" ] ]) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_zero_step () =
  let nest =
    Nest.make
      [ Nest.loop ~step:Expr.zero "i" Expr.zero (Expr.int 3) ]
      [ Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "i") ]
  in
  let env = Env.create () in
  Env.declare_array env "a" [ (0, 3) ];
  Alcotest.check_raises "zero step"
    (Invalid_argument "Compile: zero step in loop i") (fun () ->
      Compile.run (Compile.compile env nest))

(* Scalar parameters are re-read from the environment on each run. *)
let test_rerun_after_set_scalar () =
  let nest = Builders.matmul () in
  let env = Builders.make_env ~params:[ ("n", 3) ] nest in
  let c = Compile.compile env nest in
  Compile.run c;
  let after3 = Env.snapshot env in
  Env.set_scalar env "n" 5;
  Compile.run c;
  let after5 = Env.snapshot env in
  check_bool "n=5 run changed more state" true (after3 <> after5);
  let env' = Builders.make_env ~params:[ ("n", 3) ] nest in
  Interp.run env' nest;
  Env.set_scalar env' "n" 5;
  Interp.run env' nest;
  check_bool "matches interpreted rerun" true (Env.snapshot env' = after5)

(* ------------------------------------------------------------------ *)
(* Machine models                                                      *)
(* ------------------------------------------------------------------ *)

let cache_config = { Cache.size_bytes = 1024; line_bytes = 64; assoc = 2 }

let test_memsim_differential () =
  for _ = 1 to 40 do
    let nest = gen_nest () in
    let env_a = Builders.make_env ~params:[ ("n", 4) ] nest in
    let env_b = Builders.make_env ~params:[ ("n", 4) ] nest in
    let ra = Memsim.run cache_config env_a nest in
    let rb = Memsim.run_compiled cache_config env_b nest in
    check_bool "stats equal" true (ra = rb);
    check_bool "final arrays equal" true (Env.snapshot env_a = Env.snapshot env_b)
  done

let test_memsim_matmul_counts () =
  let nest = Builders.matmul () in
  let run via =
    let env = Builders.make_env ~params:[ ("n", 6) ] nest in
    match via with
    | `Interp -> Memsim.run cache_config env nest
    | `Compiled -> Memsim.run_compiled cache_config env nest
  in
  let a = run `Interp and b = run `Compiled in
  check_int "accesses" a.Memsim.cache.Cache.accesses b.Memsim.cache.Cache.accesses;
  check_int "misses" a.Memsim.cache.Cache.misses b.Memsim.cache.Cache.misses;
  check_int "cycles" a.Memsim.cycles b.Memsim.cycles

(* Scratch reuse (Memsim ?cache, Search's per-domain env): repeated
   evaluations through reused scratch must be bit-identical to fresh
   allocations — the contract the search engine's hot path relies on. *)
let test_scratch_reuse () =
  let scratch = Cache.create cache_config in
  for _ = 1 to 20 do
    let nest = gen_nest () in
    let env_a = Builders.make_env ~params:[ ("n", 4) ] nest in
    let env_b = Builders.make_env ~params:[ ("n", 4) ] nest in
    (* The scratch cache arrives dirty from the previous iteration. *)
    let ra = Memsim.run_compiled ~cache:scratch cache_config env_a nest in
    let rb = Memsim.run_compiled cache_config env_b nest in
    check_bool "scratch-cache stats bit-identical" true (ra = rb);
    check_bool "final arrays equal" true
      (Env.snapshot env_a = Env.snapshot env_b)
  done;
  (match
     let nest = Builders.matmul () in
     Memsim.run_compiled
       ~cache:(Cache.create { cache_config with Cache.assoc = 1 })
       cache_config
       (Builders.make_env ~params:[ ("n", 4) ] nest)
       nest
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "scratch cache geometry mismatch accepted");
  (* Objective closures reuse a per-domain env + cache across evaluations:
     scores must equal those of a freshly instantiated closure. *)
  let nest = Builders.matmul () in
  let results =
    List.filter_map
      (fun seq -> Result.to_option (Itf_core.Framework.apply nest seq))
      [ []; [ Itf_core.Template.interchange ~n:3 0 2 ] ]
  in
  check_bool "have transformed results" true (List.length results = 2);
  let reused = Itf_opt.Search.cache_misses ~params:[ ("n", 6) ] () in
  List.iter
    (fun r ->
      let fresh = Itf_opt.Search.cache_misses ~params:[ ("n", 6) ] () in
      let a = reused r in
      let a' = reused r in
      let b = fresh r in
      check_bool "reused objective bit-identical" true (a = b && a' = b))
    results

let test_parallel_identical () =
  for _ = 1 to 40 do
    let nest = gen_nest () in
    let env = Builders.make_env ~params:[ ("n", 4) ] nest in
    List.iter
      (fun procs ->
        let t = Parallel.time ~procs env nest in
        let tc = Parallel.time_compiled ~procs env nest in
        (* Accumulation order matches operation for operation: the floats
           must be bit-identical, not approximately equal. *)
        if t <> tc then
          Alcotest.failf "procs %d: time %.17g <> time_compiled %.17g" procs t tc)
      [ 1; 3 ]
  done

(* ------------------------------------------------------------------ *)
(* Search: switching objective backends must not change winners        *)
(* ------------------------------------------------------------------ *)

let test_search_backend_agreement () =
  let check_obj name mk nest =
    let out backend =
      match
        Itf_opt.Engine.search ~steps:2 ~domains:1 nest (mk ~backend ())
      with
      | Some o -> o
      | None -> Alcotest.failf "%s: search returned None" name
    in
    let a = out `Interpreted and b = out `Compiled in
    check_bool (name ^ ": same canonical winner") true
      (Itf_core.Sequence.equal a.Itf_opt.Engine.canonical b.Itf_opt.Engine.canonical);
    check_bool (name ^ ": same score") true
      (a.Itf_opt.Engine.score = b.Itf_opt.Engine.score)
  in
  check_obj "cache_misses"
    (fun ~backend () -> Itf_opt.Search.cache_misses ~backend ~params:[ ("n", 8) ] ())
    (Builders.matmul ());
  check_obj "parallel_time"
    (fun ~backend () ->
      Itf_opt.Search.parallel_time ~backend ~procs:4 ~params:[ ("n", 8) ] ())
    (Builders.stencil ())

let () =
  Alcotest.run "compile"
    [
      ( "compile",
        [
          Alcotest.test_case "200 random nests, all orders" `Quick
            test_random_nests;
          Alcotest.test_case "paper nests" `Quick test_paper_nests;
          Alcotest.test_case "uninterpreted functions" `Quick test_functions;
          Alcotest.test_case "out-of-bounds agreement" `Quick test_oob_agree;
          Alcotest.test_case "division by zero agreement" `Quick
            test_division_by_zero_agree;
          Alcotest.test_case "compile-time error reporting" `Quick
            test_compile_time_errors;
          Alcotest.test_case "zero step message" `Quick test_zero_step;
          Alcotest.test_case "rerun after set_scalar" `Quick
            test_rerun_after_set_scalar;
          Alcotest.test_case "memsim stats differential" `Quick
            test_memsim_differential;
          Alcotest.test_case "memsim matmul counts" `Quick
            test_memsim_matmul_counts;
          Alcotest.test_case "scratch reuse bit-identical" `Quick
            test_scratch_reuse;
          Alcotest.test_case "parallel time bit-identical" `Quick
            test_parallel_identical;
          Alcotest.test_case "search winners backend-independent" `Quick
            test_search_backend_agreement;
        ] );
    ]
