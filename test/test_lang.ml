(* Tests for the loop-language front end and the transformation-script
   parser (lib/lang). *)

open Itf_ir
module Lexer = Itf_lang.Lexer
module Parser = Itf_lang.Parser
module Script = Itf_lang.Script
module Template = Itf_core.Template

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks s = List.map fst (Lexer.tokens s)

let test_lexer_basics () =
  check_bool "header tokens" true
    (toks "do i = 1, n"
    = Lexer.[ DO; IDENT "i"; EQUALS; INT 1; COMMA; IDENT "n"; NEWLINE; EOF ]);
  check_bool "comments stripped" true
    (toks "x = 1 # a comment\n" = Lexer.[ IDENT "x"; EQUALS; INT 1; NEWLINE; EOF ]);
  check_bool "keywords vs idents" true
    (toks "pardo enddo mod dot"
    = Lexer.[ PARDO; ENDDO; MOD; IDENT "dot"; NEWLINE; EOF ]);
  check_bool "blank lines collapse" true
    (toks "a\n\n\nb" = Lexer.[ IDENT "a"; NEWLINE; IDENT "b"; NEWLINE; EOF ])

let test_lexer_error () =
  check_bool "bad char" true
    (match Lexer.tokens "a @ b" with
    | exception Lexer.Error { line = 1; _ } -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let stencil_src =
  "do i = 2, n - 1\n\
  \  do j = 2, n - 1\n\
  \    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + a(i, j \
   + 1)) / 5\n\
  \  enddo\n\
   enddo\n"

let test_parse_stencil () =
  let nest = Parser.parse_nest stencil_src in
  check_int "depth" 2 (Nest.depth nest);
  Alcotest.(check (list string)) "vars" [ "i"; "j" ] (Nest.loop_vars nest);
  Alcotest.(check (list string)) "params" [ "n" ] (Nest.symbolic_params nest);
  (* the analyzer agrees with the hand-built figure 1 nest *)
  Alcotest.(check (list string))
    "dependence vectors" [ "(0, 1)"; "(1, 0)" ]
    (List.sort compare
       (List.map Itf_dep.Depvec.to_string (Itf_dep.Analysis.vectors nest)))

let test_parse_roundtrip () =
  (* print -> parse -> print is stable *)
  let nest = Parser.parse_nest stencil_src in
  let printed = Nest.to_string nest in
  let nest2 = Parser.parse_nest printed in
  check_str "roundtrip" printed (Nest.to_string nest2)

let test_parse_pardo_step () =
  let nest = Parser.parse_nest "pardo i = n, 1, -2\n  b(i) = i mod 3\nenddo\n" in
  (match nest.Nest.loops with
  | [ l ] ->
    check_bool "pardo" true (l.Nest.kind = Nest.Pardo);
    check_str "step" "-2" (Expr.to_string l.Nest.step)
  | _ -> Alcotest.fail "one loop expected");
  match nest.Nest.body with
  | [ Stmt.Store (_, Expr.Mod (_, _)) ] -> ()
  | _ -> Alcotest.fail "expected i mod 3 body"

let test_parse_functions () =
  let src =
    "function colstr\n\
     function rowidx\n\
     do i = 1, n\n\
    \  do j = 1, n\n\
    \    do k = colstr(j), colstr(j + 1) - 1\n\
    \      a(i, j) = a(i, j) + b(i, rowidx(k)) * c(k)\n\
    \    enddo\n\
    \  enddo\n\
     enddo\n"
  in
  let prog = Parser.parse src in
  Alcotest.(check (list string))
    "declared functions" [ "rowidx"; "colstr" ] prog.Parser.functions;
  (* colstr is a Call in the k-loop bound, not an array load *)
  let k_loop = List.nth prog.Parser.nest.Nest.loops 2 in
  check_bool "call in bound" true
    (match k_loop.Nest.lo with Expr.Call ("colstr", _) -> true | _ -> false);
  check_bool "rowidx resolved inside subscript" true
    (Builders.contains ~sub:"rowidx(k)" (Nest.to_string prog.Parser.nest));
  (* b stays an array *)
  check_bool "b is an array" true
    (List.mem "b" (Nest.arrays_read prog.Parser.nest))

let test_parse_min_max () =
  let nest =
    Parser.parse_nest "do i = max(n, 3), min(2 * n, 100)\n  x = i\nenddo\n"
  in
  match nest.Nest.loops with
  | [ l ] ->
    check_bool "max lower" true
      (match l.Nest.lo with Expr.Max _ -> true | _ -> false);
    check_bool "min upper" true
      (match l.Nest.hi with Expr.Min _ -> true | _ -> false)
  | _ -> Alcotest.fail "one loop expected"

let test_parse_errors () =
  let fails src =
    match Parser.parse src with
    | exception Parser.Error _ -> true
    | _ -> false
  in
  check_bool "missing enddo" true (fails "do i = 1, n\n  x = 1\n");
  check_bool "imperfect nest rejected as trailing input" true
    (fails "do i = 1, n\n  x = 1\n  do j = 1, n\n    y = 2\n  enddo\nenddo\n");
  check_bool "garbage" true (fails "do i = , n\nenddo\n");
  check_bool "assign to function" true
    (fails "function f\ndo i = 1, n\n  f(i) = 1\nenddo\n");
  check_bool "duplicate loop vars" true
    (fails "do i = 1, n\n  do i = 1, n\n    x = 1\n  enddo\nenddo\n")

let test_parse_guard () =
  let src =
    "do i = 2, n - 1\n\
    \  do j = 2, n - 1\n\
    \    a(i, j) = b(j)\n\
    \    if b(j) > 0\n\
    \      b(j) = a(i - 1, j + 1)\n\
    \    endif\n\
    \  enddo\n\
     enddo\n"
  in
  let nest = Parser.parse_nest src in
  check_int "two statements" 2 (List.length nest.Nest.body);
  (match nest.Nest.body with
  | [ _; Stmt.Guard { rel = Stmt.Gt; body = [ Stmt.Store _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected a guarded store");
  (* print -> parse roundtrip *)
  let printed = Nest.to_string nest in
  check_str "roundtrip" printed (Nest.to_string (Parser.parse_nest printed));
  (* all relations parse *)
  List.iter
    (fun (tok, rel) ->
      let src =
        Printf.sprintf "do i = 1, n\n  if i %s 3\n    a(i) = i\n  endif\nenddo\n" tok
      in
      match (Parser.parse_nest src).Nest.body with
      | [ Stmt.Guard g ] ->
        check_bool ("relation " ^ tok) true (g.Stmt.rel = rel)
      | _ -> Alcotest.fail "expected a guard")
    [
      ("<", Stmt.Lt); ("<=", Stmt.Le); (">", Stmt.Gt); (">=", Stmt.Ge);
      ("==", Stmt.Eq); ("!=", Stmt.Ne);
    ]

let test_guard_executes () =
  let nest =
    Parser.parse_nest
      "do i = 1, 8\n  if i mod 2 == 0\n    a(i) = i\n  endif\nenddo\n"
  in
  let env = Itf_exec.Env.create () in
  Itf_exec.Env.declare_array env "a" [ (1, 8) ];
  Itf_exec.Interp.run env nest;
  check_int "a(4) set" 4 (Itf_exec.Env.read env "a" [ 4 ]);
  check_int "a(5) untouched" 0 (Itf_exec.Env.read env "a" [ 5 ])

let test_parsed_nest_executes () =
  (* End-to-end: parse then interpret. *)
  let nest = Parser.parse_nest "do i = 1, 5\n  a(i) = i * i\nenddo\n" in
  let env = Itf_exec.Env.create () in
  Itf_exec.Env.declare_array env "a" [ (1, 5) ];
  Itf_exec.Interp.run env nest;
  check_int "a(4) = 16" 16 (Itf_exec.Env.read env "a" [ 4 ])

(* ------------------------------------------------------------------ *)
(* Scripts                                                             *)
(* ------------------------------------------------------------------ *)

let test_script_basic () =
  let seq =
    Script.parse ~depth:3
      "# comment line\n\
       interchange 0 1\n\
       reversal 2\n\
       skew 0 1 1\n\
       parallelize 0 2\n"
  in
  check_int "four templates" 4 (List.length seq);
  check_bool "chains" true (Itf_core.Sequence.well_formed seq)

let test_script_depth_tracking () =
  (* block grows the depth; following commands use the new depth *)
  let seq = Script.parse ~depth:2 "block 0 1 4 4\nparallelize 0\ncoalesce 2 3\n" in
  check_int "three templates" 3 (List.length seq);
  check_int "output depth" 3 (Itf_core.Sequence.output_depth ~input:2 seq)

let test_script_figure7 () =
  let seq =
    Script.parse ~depth:3
      "permute 2 0 1\nblock 0 2 bj bk bi\nparallelize 0 2\ninterchange 1 \
       2\ncoalesce 0 1\n"
  in
  check_int "five templates" 5 (List.length seq);
  (* symbolic sizes parse as variables *)
  (match List.nth seq 1 with
  | Template.Block { bsize; _ } ->
    check_bool "bj symbolic" true (bsize.(0) = Expr.var "bj")
  | _ -> Alcotest.fail "expected block");
  check_int "final depth 5" 5 (Itf_core.Sequence.output_depth ~input:3 seq)

let test_script_errors () =
  let fails ~depth src =
    match Script.parse ~depth src with
    | exception Script.Error _ -> true
    | _ -> false
  in
  check_bool "unknown command" true (fails ~depth:2 "frobnicate 1\n");
  check_bool "bad arity" true (fails ~depth:2 "block 0 1 4\n");
  check_bool "bad integer" true (fails ~depth:2 "reversal x\n");
  check_bool "out of range" true (fails ~depth:2 "reversal 5\n");
  check_bool "unimodular entry count" true (fails ~depth:2 "unimodular 1 0 1\n");
  check_bool "error reports the line" true
    (match Script.parse ~depth:2 "interchange 0 1\nfrobnicate\n" with
    | exception Script.Error { line = 2; _ } -> true
    | _ -> false)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "errors" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "stencil" `Quick test_parse_stencil;
          Alcotest.test_case "print/parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "pardo and steps" `Quick test_parse_pardo_step;
          Alcotest.test_case "function directives (fig 4c)" `Quick
            test_parse_functions;
          Alcotest.test_case "min/max bounds" `Quick test_parse_min_max;
          Alcotest.test_case "guards (if/endif)" `Quick test_parse_guard;
          Alcotest.test_case "guards execute" `Quick test_guard_executes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "parsed nest executes" `Quick test_parsed_nest_executes;
        ] );
      ( "script",
        [
          Alcotest.test_case "basic commands" `Quick test_script_basic;
          Alcotest.test_case "depth tracking" `Quick test_script_depth_tracking;
          Alcotest.test_case "figure 7 script" `Quick test_script_figure7;
          Alcotest.test_case "errors" `Quick test_script_errors;
        ] );
    ]
