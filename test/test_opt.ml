(* Tests for the automatic transformation search (lib/opt). *)

open Itf_ir
module Search = Itf_opt.Search
module Template = Itf_core.Template
module Framework = Itf_core.Framework

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_moves_generated () =
  let nest = Builders.matmul () in
  let ms = Search.moves nest ~depth:3 in
  check_bool "has interchanges" true
    (List.exists (function Template.Reverse_permute _ -> true | _ -> false) ms);
  check_bool "has parallelize" true
    (List.exists (function Template.Parallelize _ -> true | _ -> false) ms);
  check_bool "has blocks" true
    (List.exists (function Template.Block _ -> true | _ -> false) ms);
  check_bool "has coalesce" true
    (List.exists (function Template.Coalesce _ -> true | _ -> false) ms);
  check_bool "all depth-compatible" true
    (List.for_all (fun t -> Template.input_depth t = 3) ms)

(* A column-major traversal: the optimizer should discover interchange. *)
let column_major () =
  Nest.make
    [
      Nest.loop "i" Expr.one (Expr.var "n");
      Nest.loop "j" Expr.one (Expr.var "n");
    ]
    [
      Stmt.Store
        ( { array = "a"; index = [ Expr.var "j"; Expr.var "i" ] },
          Expr.add (Expr.var "i") (Expr.var "j") );
    ]

let test_search_finds_interchange_for_locality () =
  let nest = column_major () in
  let objective = Search.cache_misses ~params:[ ("n", 48) ] () in
  match Search.best ~beam:4 ~steps:1 nest objective with
  | None -> Alcotest.fail "search returned nothing"
  | Some { sequence; score; explored; result; _ } ->
    check_bool "explored several candidates" true (explored > 5);
    let baseline = objective (Framework.apply_exn nest []) in
    check_bool
      (Printf.sprintf "improved: %.0f -> %.0f misses" baseline score)
      true
      (score < baseline /. 2.);
    check_bool "found a reordering move" true (sequence <> []);
    (* winner must still be semantically equivalent *)
    check_bool "winner is equivalent" true
      (Builders.equivalent ~params:[ ("n", 12) ] ~orders:[ `Forward ] nest
         result.Framework.nest)

let test_search_finds_parallelism () =
  let nest = Builders.matmul () in
  let objective = Search.parallel_time ~procs:8 ~params:[ ("n", 12) ] () in
  match Search.best ~beam:4 ~steps:1 nest objective with
  | None -> Alcotest.fail "search returned nothing"
  | Some { sequence; score; _ } ->
    let baseline = objective (Framework.apply_exn nest []) in
    check_bool
      (Printf.sprintf "parallel time improved: %.0f -> %.0f" baseline score)
      true
      (score < baseline /. 4.);
    (* it must have parallelized something that is legal: matmul's only
       dependence is carried by k, so i or j (or both via two steps) *)
    check_bool "includes a parallelize" true
      (List.exists
         (function Template.Parallelize _ -> true | _ -> false)
         sequence)

let test_search_never_worse_than_identity () =
  (* On a nest with no improving move (already row-major, sequential
     objective), the empty sequence must win or tie. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [ Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "i") ]
  in
  let objective = Search.cache_misses ~params:[ ("n", 64) ] () in
  match Search.best ~beam:3 ~steps:1 nest objective with
  | None -> Alcotest.fail "search returned nothing"
  | Some { score; _ } ->
    let baseline = objective (Framework.apply_exn nest []) in
    check_bool "no regression" true (score <= baseline)

let test_search_respects_legality () =
  (* A loop-carried dependence on the only loop: parallelizing it would be
     fastest but is illegal; the optimizer must not pick it. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i" ] },
            Expr.Load { array = "a"; index = [ Expr.(sub (var "i") (int 1)) ] } );
      ]
  in
  let objective = Search.parallel_time ~procs:8 ~params:[ ("n", 32) ] () in
  match Search.best ~beam:4 ~steps:2 nest objective with
  | None -> Alcotest.fail "search returned nothing"
  | Some { result; _ } ->
    check_bool "no pardo in the winner" true
      (List.for_all
         (fun (l : Nest.loop) -> l.Nest.kind = Nest.Do)
         result.Framework.nest.Nest.loops)

let test_explored_counter () =
  let nest = column_major () in
  let objective = Search.cache_misses ~params:[ ("n", 16) ] () in
  match Search.best ~beam:2 ~steps:2 nest objective with
  | None -> Alcotest.fail "search returned nothing"
  | Some { explored; _ } -> check_bool "counter grows" true (explored > 10)

let test_block_sizes_option () =
  let nest = column_major () in
  let ms = Search.moves ~block_sizes:[ 16 ] nest ~depth:2 in
  let sizes =
    List.filter_map
      (function
        | Template.Block { bsize; _ } -> Expr.to_int bsize.(0)
        | _ -> None)
      ms
  in
  check_bool "only requested block size" true
    (sizes <> [] && List.for_all (( = ) 16) sizes);
  check_int "no blocks above depth 3" 0
    (List.length
       (List.filter
          (function Template.Block _ -> true | _ -> false)
          (Search.moves nest ~depth:4)))

let () =
  Alcotest.run "opt"
    [
      ( "search",
        [
          Alcotest.test_case "move generation" `Quick test_moves_generated;
          Alcotest.test_case "locality: finds interchange" `Quick
            test_search_finds_interchange_for_locality;
          Alcotest.test_case "parallelism: finds pardo" `Quick
            test_search_finds_parallelism;
          Alcotest.test_case "never worse than identity" `Quick
            test_search_never_worse_than_identity;
          Alcotest.test_case "respects legality" `Quick test_search_respects_legality;
          Alcotest.test_case "explored counter" `Quick test_explored_counter;
          Alcotest.test_case "block size option" `Quick test_block_sizes_option;
        ] );
    ]
