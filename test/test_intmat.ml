(* Tests for the integer matrix / rational substrate (lib/intmat). *)

module M = Itf_mat.Intmat
module R = Itf_mat.Ratio

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mat = Alcotest.testable M.pp M.equal

(* ------------------------------------------------------------------ *)
(* Ratio                                                               *)
(* ------------------------------------------------------------------ *)

let test_ratio_canonical () =
  let r = R.make 2 4 in
  check_int "num" 1 (R.num r);
  check_int "den" 2 (R.den r);
  let r = R.make 3 (-6) in
  check_int "num sign moves up" (-1) (R.num r);
  check_int "den positive" 2 (R.den r);
  let r = R.make 0 (-7) in
  check_bool "zero canonical" true (R.equal r R.zero)

let test_ratio_arith () =
  let a = R.make 1 2 and b = R.make 1 3 in
  check_bool "1/2+1/3" true (R.equal (R.add a b) (R.make 5 6));
  check_bool "1/2-1/3" true (R.equal (R.sub a b) (R.make 1 6));
  check_bool "1/2*1/3" true (R.equal (R.mul a b) (R.make 1 6));
  check_bool "1/2 / 1/3" true (R.equal (R.div a b) (R.make 3 2));
  check_bool "neg" true (R.equal (R.neg a) (R.make (-1) 2));
  check_bool "inv" true (R.equal (R.inv (R.make 2 3)) (R.make 3 2))

let test_ratio_div_by_zero () =
  Alcotest.check_raises "make _ 0" Division_by_zero (fun () ->
      ignore (R.make 1 0));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (R.div R.one R.zero))

let test_ratio_floor_ceil () =
  check_int "floor 7/2" 3 (R.floor (R.make 7 2));
  check_int "ceil 7/2" 4 (R.ceil (R.make 7 2));
  check_int "floor -7/2" (-4) (R.floor (R.make (-7) 2));
  check_int "ceil -7/2" (-3) (R.ceil (R.make (-7) 2));
  check_int "floor 6/2" 3 (R.floor (R.make 6 2));
  check_int "ceil 6/2" 3 (R.ceil (R.make 6 2))

let test_ratio_compare () =
  check_bool "1/2 < 2/3" true (R.compare (R.make 1 2) (R.make 2 3) < 0);
  check_bool "-1/2 < 1/3" true (R.compare (R.make (-1) 2) (R.make 1 3) < 0);
  check_int "sign neg" (-1) (R.sign (R.make (-3) 7));
  check_int "sign zero" 0 (R.sign R.zero);
  check_bool "min" true (R.equal (R.min (R.make 1 2) (R.make 1 3)) (R.make 1 3));
  check_bool "max" true (R.equal (R.max (R.make 1 2) (R.make 1 3)) (R.make 1 2))

let test_ratio_to_int () =
  check_int "to_int_exn 6/3" 2 (R.to_int_exn (R.make 6 3));
  check_bool "is_integer 6/3" true (R.is_integer (R.make 6 3));
  check_bool "is_integer 1/2" false (R.is_integer (R.make 1 2));
  Alcotest.check_raises "to_int_exn 1/2"
    (Invalid_argument "Ratio.to_int_exn: not an integer") (fun () ->
      ignore (R.to_int_exn (R.make 1 2)))

(* ------------------------------------------------------------------ *)
(* Intmat basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_construct () =
  let m = M.of_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  check_int "rows" 2 (M.rows m);
  check_int "cols" 2 (M.cols m);
  check_int "(0,1)" 2 (M.get m 0 1);
  check_int "(1,0)" 3 (M.get m 1 0);
  Alcotest.check_raises "ragged"
    (Invalid_argument "Intmat.of_rows: ragged or empty rows") (fun () ->
      ignore (M.of_rows [ [ 1 ]; [ 1; 2 ] ]))

let test_identity_mul () =
  let i3 = M.identity 3 in
  let m = M.of_rows [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ] ] in
  Alcotest.check mat "I*m = m" m (M.mul i3 m);
  Alcotest.check mat "m*I = m" m (M.mul m i3)

let test_mul_known () =
  let a = M.of_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = M.of_rows [ [ 0; 1 ]; [ 1; 0 ] ] in
  Alcotest.check mat "a*b" (M.of_rows [ [ 2; 1 ]; [ 4; 3 ] ]) (M.mul a b)

let test_apply () =
  (* The skew-then-interchange example from paper Figure 1:
     first skew j by i (j' = i + j), then interchange. *)
  let skew = M.skew 2 0 1 1 in
  let inter = M.interchange 2 0 1 in
  let t = M.mul inter skew in
  let d = M.apply t [| 1; 0 |] in
  Alcotest.(check (array int)) "skew+interchange (1,0)" [| 1; 1 |] d;
  let d = M.apply t [| 0; 1 |] in
  Alcotest.(check (array int)) "skew+interchange (0,1)" [| 1; 0 |] d

let test_transpose () =
  let m = M.of_rows [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  Alcotest.check mat "transpose"
    (M.of_rows [ [ 1; 4 ]; [ 2; 5 ]; [ 3; 6 ] ])
    (M.transpose m);
  Alcotest.check mat "involution" m (M.transpose (M.transpose m))

(* ------------------------------------------------------------------ *)
(* Determinants and unimodularity                                      *)
(* ------------------------------------------------------------------ *)

let test_det_known () =
  check_int "det I3" 1 (M.det (M.identity 3));
  check_int "det 2x2" (-2) (M.det (M.of_rows [ [ 1; 2 ]; [ 3; 4 ] ]));
  check_int "det singular" 0 (M.det (M.of_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
  check_int "det needs pivot swap" (-1)
    (M.det (M.of_rows [ [ 0; 1 ]; [ 1; 0 ] ]));
  check_int "det 3x3" (-306)
    (M.det (M.of_rows [ [ 6; 1; 1 ]; [ 4; -2; 5 ]; [ 2; 8; 7 ] ]))

let test_unimodular_generators () =
  check_bool "interchange unimodular" true (M.is_unimodular (M.interchange 4 1 3));
  check_bool "reversal unimodular" true (M.is_unimodular (M.reversal 4 2));
  check_bool "skew unimodular" true (M.is_unimodular (M.skew 4 0 3 17));
  check_bool "permutation unimodular" true
    (M.is_unimodular (M.permutation [| 2; 0; 1 |]));
  check_bool "non-unimodular rejected" false
    (M.is_unimodular (M.of_rows [ [ 2; 0 ]; [ 0; 1 ] ]))

let test_inverse () =
  let m = M.mul (M.skew 3 0 2 5) (M.mul (M.interchange 3 0 1) (M.reversal 3 2)) in
  let mi = M.inverse_unimodular m in
  Alcotest.check mat "m * m^-1 = I" (M.identity 3) (M.mul m mi);
  Alcotest.check mat "m^-1 * m = I" (M.identity 3) (M.mul mi m);
  Alcotest.check_raises "inverse of non-unimodular"
    (Invalid_argument "Intmat.inverse_unimodular: matrix is not unimodular")
    (fun () -> ignore (M.inverse_unimodular (M.of_rows [ [ 2 ] ])))

let test_permutation_semantics () =
  (* perm.(k) = destination of loop k: y_{perm k} = x_k. *)
  let p = M.permutation [| 2; 0; 1 |] in
  let y = M.apply p [| 10; 20; 30 |] in
  Alcotest.(check (array int)) "permutation apply" [| 20; 30; 10 |] y

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_small_mat n =
  QCheck.Gen.(
    array_size (return (n * n)) (int_range (-4) 4)
    |> map (fun a -> M.make n n (fun i j -> a.((i * n) + j))))

let arb_mat3 = QCheck.make ~print:(Format.asprintf "%a" M.pp) (gen_small_mat 3)

let gen_unimodular n =
  (* Product of random elementary unimodular matrices: always unimodular. *)
  QCheck.Gen.(
    list_size (int_range 1 6)
      (oneof
         [
           map2 (fun i j -> M.interchange n i j) (int_range 0 (n - 1)) (int_range 0 (n - 1));
           map (fun i -> M.reversal n i) (int_range 0 (n - 1));
           (fun st ->
             let i = int_range 0 (n - 1) st in
             let j = (i + 1 + int_range 0 (n - 2) st) mod n in
             let f = int_range (-3) 3 st in
             M.skew n i j f);
         ])
    |> map (List.fold_left M.mul (M.identity n)))

let arb_unimodular3 =
  QCheck.make ~print:(Format.asprintf "%a" M.pp) (gen_unimodular 3)

let prop_det_multiplicative =
  QCheck.Test.make ~name:"det (a*b) = det a * det b" ~count:200
    (QCheck.pair arb_mat3 arb_mat3) (fun (a, b) ->
      M.det (M.mul a b) = M.det a * M.det b)

let prop_det_transpose =
  QCheck.Test.make ~name:"det (transpose a) = det a" ~count:200 arb_mat3
    (fun a -> M.det (M.transpose a) = M.det a)

let prop_unimodular_closed =
  QCheck.Test.make ~name:"unimodular products stay unimodular" ~count:100
    arb_unimodular3 M.is_unimodular

let prop_inverse_roundtrip =
  QCheck.Test.make ~name:"unimodular inverse roundtrip" ~count:100
    arb_unimodular3 (fun m ->
      M.equal (M.mul m (M.inverse_unimodular m)) (M.identity 3))

let prop_apply_linear =
  QCheck.Test.make ~name:"apply is linear" ~count:200
    (QCheck.pair arb_mat3
       (QCheck.pair
          (QCheck.array_of_size (QCheck.Gen.return 3) (QCheck.int_range (-9) 9))
          (QCheck.array_of_size (QCheck.Gen.return 3) (QCheck.int_range (-9) 9))))
    (fun (m, (u, v)) ->
      let w = Array.init 3 (fun i -> u.(i) + v.(i)) in
      let mu = M.apply m u and mv = M.apply m v and mw = M.apply m w in
      Array.init 3 (fun i -> mu.(i) + mv.(i)) = mw)

let gen_ratio =
  QCheck.Gen.(
    map2 (fun n d -> R.make n (if d = 0 then 1 else d)) (int_range (-50) 50)
      (int_range (-20) 20))

let arb_ratio = QCheck.make ~print:R.to_string gen_ratio

let prop_ratio_add_comm =
  QCheck.Test.make ~name:"ratio add commutative" ~count:300
    (QCheck.pair arb_ratio arb_ratio) (fun (a, b) ->
      R.equal (R.add a b) (R.add b a))

let prop_ratio_mul_assoc =
  QCheck.Test.make ~name:"ratio mul associative" ~count:300
    (QCheck.triple arb_ratio arb_ratio arb_ratio) (fun (a, b, c) ->
      R.equal (R.mul a (R.mul b c)) (R.mul (R.mul a b) c))

let prop_ratio_floor_le_ceil =
  QCheck.Test.make ~name:"floor <= value <= ceil, gap < 1" ~count:300 arb_ratio
    (fun a ->
      let f = R.floor a and c = R.ceil a in
      R.compare (R.of_int f) a <= 0
      && R.compare a (R.of_int c) <= 0
      && c - f <= 1)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_det_multiplicative;
      prop_det_transpose;
      prop_unimodular_closed;
      prop_inverse_roundtrip;
      prop_apply_linear;
      prop_ratio_add_comm;
      prop_ratio_mul_assoc;
      prop_ratio_floor_le_ceil;
    ]

let () =
  Alcotest.run "intmat"
    [
      ( "ratio",
        [
          Alcotest.test_case "canonical form" `Quick test_ratio_canonical;
          Alcotest.test_case "arithmetic" `Quick test_ratio_arith;
          Alcotest.test_case "division by zero" `Quick test_ratio_div_by_zero;
          Alcotest.test_case "floor/ceil" `Quick test_ratio_floor_ceil;
          Alcotest.test_case "compare/sign/min/max" `Quick test_ratio_compare;
          Alcotest.test_case "integer conversion" `Quick test_ratio_to_int;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "construction" `Quick test_construct;
          Alcotest.test_case "identity multiplication" `Quick test_identity_mul;
          Alcotest.test_case "known product" `Quick test_mul_known;
          Alcotest.test_case "apply (fig 1 skew+interchange)" `Quick test_apply;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "determinants" `Quick test_det_known;
          Alcotest.test_case "unimodular generators" `Quick test_unimodular_generators;
          Alcotest.test_case "unimodular inverse" `Quick test_inverse;
          Alcotest.test_case "permutation semantics" `Quick test_permutation_semantics;
        ] );
      ("properties", qcheck_tests);
    ]
