(* Randomized end-to-end validation of the framework against the
   interpreter oracle.

   For random nests and random template sequences:
   - if the framework says LEGAL, the transformed nest must compute
     bit-identical array contents, including under adversarial execution
     orders of pardo loops;
   - the transformation must execute every original iteration exactly once
     (iteration reordering is a bijection);
   - every actually-dependent iteration pair of the original execution must
     (a) be covered by the analyzer's dependence vectors (analyzer
     soundness), (b) keep its execution order in the transformed nest
     (legality soundness), and (c) have its transformed difference covered
     by the mapped vector set (Table 2 consistency, paper Definition 3.4). *)

open Itf_ir
module Depvec = Itf_dep.Depvec
module Analysis = Itf_dep.Analysis
module Template = Itf_core.Template
module Legality = Itf_core.Legality
module Env = Itf_exec.Env
module Interp = Itf_exec.Interp

(* ------------------------------------------------------------------ *)
(* Random nest generation                                              *)
(* ------------------------------------------------------------------ *)

let gen_subscript st vars =
  (* Either one loop variable or the sum of two, plus a small offset. *)
  let pick () = List.nth vars (Random.State.int st (List.length vars)) in
  let base =
    if Random.State.int st 4 = 0 && List.length vars >= 2 then
      Expr.add (Expr.var (pick ())) (Expr.var (pick ()))
    else Expr.var (pick ())
  in
  Expr.add base (Expr.int (Random.State.int st 5 - 2))

let gen_nest st =
  let depth = 2 + Random.State.int st 2 in
  let vars = List.filteri (fun k _ -> k < depth) [ "i"; "j"; "k" ] in
  let loops =
    List.mapi
      (fun idx v ->
        let lo = Random.State.int st 3 in
        let hi = lo + 2 + Random.State.int st 3 in
        (* occasionally a non-unit step, a reversed loop, or a triangular
           lower bound, exercising step normalization, iteration-number
           analysis, and the non-rectangular band rules *)
        match Random.State.int st 8 with
        | 0 -> Nest.loop ~step:(Expr.int 2) v (Expr.int lo) (Expr.int hi)
        | 1 -> Nest.loop ~step:(Expr.int (-1)) v (Expr.int hi) (Expr.int lo)
        | 2 when idx > 0 ->
          Nest.loop v (Expr.var (List.nth vars (idx - 1))) (Expr.int (hi + 2))
        | _ -> Nest.loop v (Expr.int lo) (Expr.int hi))
      vars
  in
  let load2 () : Expr.t =
    Expr.Load { array = "a"; index = [ gen_subscript st vars; gen_subscript st vars ] }
  in
  let load1 () : Expr.t = Expr.Load { array = "b"; index = [ gen_subscript st vars ] } in
  let rhs =
    Expr.add (load2 ())
      (Expr.add (load1 ()) (Expr.mul (Expr.var (List.hd vars)) (Expr.int 3)))
  in
  let target () : Expr.access =
    if Random.State.bool st then
      { array = "a"; index = [ gen_subscript st vars; gen_subscript st vars ] }
    else { array = "b"; index = [ gen_subscript st vars ] }
  in
  let body =
    match Random.State.int st 4 with
    | 0 ->
      (* value carried through a scalar temporary: serializes heavily *)
      [
        Stmt.Set ("x", load1 ());
        Stmt.Store (target (), Expr.add (Expr.var "x") rhs);
      ]
    | 1 -> [ Stmt.Store (target (), rhs); Stmt.Store (target (), load2 ()) ]
    | _ -> [ Stmt.Store (target (), rhs) ]
  in
  Nest.make loops body

(* ------------------------------------------------------------------ *)
(* Random sequence generation                                          *)
(* ------------------------------------------------------------------ *)

let gen_template st n =
  let pick_range () =
    let i = Random.State.int st n in
    let j = i + Random.State.int st (n - i) in
    (i, j)
  in
  match Random.State.int st (if n >= 2 then 7 else 5) with
  | 0 ->
    let i, j = pick_range () in
    Template.block ~n ~i ~j
      ~bsize:(Array.init (j - i + 1) (fun _ -> Expr.int (2 + Random.State.int st 2)))
  | 1 ->
    let i, j = pick_range () in
    Template.coalesce ~n ~i ~j
  | 2 ->
    let i, j = pick_range () in
    Template.interleave ~n ~i ~j
      ~isize:(Array.init (j - i + 1) (fun _ -> Expr.int (2 + Random.State.int st 2)))
  | 3 -> Template.parallelize (Array.init n (fun _ -> Random.State.int st 3 = 0))
  | 4 -> Template.reversal ~n (Random.State.int st n)
  | 5 -> Template.interchange ~n (Random.State.int st n) (Random.State.int st n)
  | _ ->
    let src = Random.State.int st n in
    let dst = (src + 1 + Random.State.int st (n - 1)) mod n in
    Template.skew ~n ~src ~dst ~factor:(1 + Random.State.int st 2)

let gen_sequence st depth =
  let len = 1 + Random.State.int st 3 in
  let rec go n k =
    if k = 0 || n > 5 then []
    else
      let t = gen_template st n in
      if Template.output_depth t > 6 then []
      else t :: go (Template.output_depth t) (k - 1)
  in
  go depth len

(* ------------------------------------------------------------------ *)
(* Instrumented execution                                              *)
(* ------------------------------------------------------------------ *)

type event = {
  iter : int array;  (** original index-variable values: iteration identity *)
  vals : int array;  (** the running nest's loop-variable values *)
  array : string;
  flat : int;
  write : bool;
}

(* Execute [nest], recording array accesses tagged with the values of
   [tag_vars] (read from the environment after init statements ran) and
   with the running nest's own loop-variable values. *)
let traced_run ?(pardo_order = `Forward) ~tag_vars nest =
  let env =
    let env = Env.create () in
    List.iter
      (fun (a, arity) ->
        Env.declare_array env a (List.init arity (fun _ -> (-20, 30)));
        Builders.fill_array a (Env.array_data env a))
      (Builders.array_arities nest);
    env
  in
  let events = ref [] in
  let current = ref [||] in
  let current_vals = ref [||] in
  Env.set_tracer env
    (Some
       (fun { Env.array; flat; kind } ->
         events :=
           {
             iter = !current;
             vals = !current_vals;
             array;
             flat;
             write = kind = Env.Write;
           }
           :: !events));
  Interp.run ~pardo_order
    ~on_iteration:(fun vals -> current_vals := vals)
    ~after_inits:(fun () ->
      current := Array.map (fun v -> Env.get_scalar env v) tag_vars)
    env nest;
  Env.set_tracer env None;
  (List.rev !events, Env.snapshot env)

(* Dependent pairs of an event trace: same element, at least one write,
   different iterations; returns (src_iter, dst_iter) in execution order. *)
let dependent_pairs events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  let out = ref [] in
  for x = 0 to n - 1 do
    for y = x + 1 to n - 1 do
      let a = arr.(x) and b = arr.(y) in
      if
        a.array = b.array && a.flat = b.flat
        && (a.write || b.write)
        && a.iter <> b.iter
      then out := (a.iter, b.iter) :: !out
    done
  done;
  List.sort_uniq compare !out

let vec_sub a b = Array.init (Array.length a) (fun k -> a.(k) - b.(k))

(* Does a dependence vector cover a value-space difference? Table 2's
   vectors are in step-normalized units: an exact distance [d] on a loop
   with step [s] means a value difference of exactly [d * s]; a direction
   constrains only the execution-direction-corrected sign. *)
let elem_covers step (e : Depvec.elem) dv =
  match e with
  | Depvec.Dist d -> dv = d * step
  | Depvec.Dir _ ->
    let corrected = compare (dv * compare step 0) 0 in
    Depvec.elem_contains e corrected

let vector_covers steps v dvals =
  Array.length v = Array.length dvals
  && Array.for_all Fun.id
       (Array.mapi (fun k e -> elem_covers steps.(k) e dvals.(k)) v)

let covered steps vectors dvals =
  List.exists (fun v -> vector_covers steps v dvals) vectors

let nest_steps (nest : Nest.t) =
  Array.of_list
    (List.map
       (fun (l : Nest.loop) ->
         match Expr.to_int l.Nest.step with Some s when s <> 0 -> s | _ -> 1)
       nest.Nest.loops)

(* ------------------------------------------------------------------ *)
(* The main randomized check                                           *)
(* ------------------------------------------------------------------ *)

let show_case nest seq =
  Format.asprintf "nest:@\n%a@\nsequence:@\n%a" Nest.pp nest
    Itf_core.Sequence.pp seq

let dedupe_iters events =
  List.sort_uniq compare (List.map (fun ev -> ev.iter) events)

let run_random_cases ~cases ~seed =
  let st = Random.State.make [| seed |] in
  let legal = ref 0 and illegal = ref 0 in
  for case = 1 to cases do
    let nest = gen_nest st in
    let seq = gen_sequence st (Nest.depth nest) in
    if seq <> [] then begin
      let vectors = Analysis.vectors nest in
      match Legality.check ~vectors nest seq with
      | Legality.Bounds_violation _ | Legality.Dependence_violation _ ->
        incr illegal
      | Legality.Legal { nest = out; vectors = vectors'; _ } ->
        incr legal;
        let tag_vars = Array.of_list (Nest.loop_vars nest) in
        let orig_events, orig_snap = traced_run ~tag_vars nest in
        let pairs = dependent_pairs orig_events in
        let vals_of events =
          let tbl = Hashtbl.create 64 in
          List.iter
            (fun ev ->
              if not (Hashtbl.mem tbl ev.iter) then Hashtbl.add tbl ev.iter ev.vals)
            events;
          tbl
        in
        (* (a) analyzer soundness on the original nest *)
        let orig_steps = nest_steps nest in
        List.iter
          (fun (i1, i2) ->
            let d = vec_sub i2 i1 in
            if not (covered orig_steps vectors d || Array.for_all (( = ) 0) d)
            then
              Alcotest.failf "case %d (seed %d): analyzer missed %s@\n%s" case
                seed
                (Depvec.to_string (Array.map Depvec.dist d))
                (show_case nest seq))
          pairs;
        (* (b) + (c): equivalence, bijection and order preservation, under
           forward and shuffled pardo orders *)
        List.iter
          (fun order ->
            let trans_events, trans_snap =
              traced_run ~pardo_order:order ~tag_vars out
            in
            if trans_snap <> orig_snap then
              Alcotest.failf "case %d (seed %d): results differ (%s)@\n%s" case
                seed
                (match order with
                | `Forward -> "forward"
                | `Reverse -> "reverse"
                | `Shuffle s -> "shuffle " ^ string_of_int s)
                (show_case nest seq);
            let positions = Hashtbl.create 64 in
            let pos = ref 0 in
            List.iter
              (fun ev ->
                if not (Hashtbl.mem positions ev.iter) then begin
                  Hashtbl.add positions ev.iter !pos;
                  incr pos
                end)
              trans_events;
            if Hashtbl.length positions <> List.length (dedupe_iters orig_events)
            then
              Alcotest.failf "case %d (seed %d): iteration count changed@\n%s"
                case seed (show_case nest seq);
            List.iter
              (fun (i1, i2) ->
                match
                  (Hashtbl.find_opt positions i1, Hashtbl.find_opt positions i2)
                with
                | Some p1, Some p2 ->
                  if p1 >= p2 then
                    Alcotest.failf
                      "case %d (seed %d): dependence order violated %s -> %s@\n%s"
                      case seed
                      (Depvec.to_string (Array.map Depvec.dist i1))
                      (Depvec.to_string (Array.map Depvec.dist i2))
                      (show_case nest seq)
                | _ ->
                  Alcotest.failf
                    "case %d (seed %d): iteration lost by transformation@\n%s"
                    case seed (show_case nest seq))
              pairs)
          [ `Forward; `Shuffle (case * 7) ];
        (* (d) Table 2 consistency (Definition 3.4): pair differences in
           the transformed nest's (step-normalized) coordinates are covered
           by the mapped vector set. *)
        let trans_events, _ = traced_run ~tag_vars out in
        let trans_vals = vals_of trans_events in
        let trans_steps = nest_steps out in
        List.iter
          (fun (i1, i2) ->
            match
              (Hashtbl.find_opt trans_vals i1, Hashtbl.find_opt trans_vals i2)
            with
            | Some n1, Some n2 ->
              let d' = vec_sub n2 n1 in
              if
                not
                  (covered trans_steps vectors' d'
                  || Array.for_all (( = ) 0) d')
              then
                Alcotest.failf
                  "case %d (seed %d): mapped vectors miss %s (image of %s -> %s)@\n%s"
                  case seed
                  (Depvec.to_string (Array.map Depvec.dist d'))
                  (Depvec.to_string (Array.map Depvec.dist i1))
                  (Depvec.to_string (Array.map Depvec.dist i2))
                  (show_case nest seq)
            | _ -> ())
          pairs
    end
  done;
  (!legal, !illegal)

let test_random_transformations () =
  let legal, illegal = run_random_cases ~cases:400 ~seed:20260704 in
  (* The generator must exercise both verdicts substantially. *)
  Alcotest.(check bool)
    (Printf.sprintf "enough legal cases (%d legal / %d illegal)" legal illegal)
    true (legal > 40);
  Alcotest.(check bool) "some illegal cases" true (illegal > 20)

let test_random_transformations_seed2 () =
  let legal, _ = run_random_cases ~cases:250 ~seed:42 in
  Alcotest.(check bool) "ran" true (legal > 15)

(* Illegal-by-dependence sequences, when executed anyway, must be observed
   breaking at least sometimes — guarding against a legality test that is
   vacuously strict (or an oracle that cannot tell the difference). *)
let test_illegal_sequences_do_break () =
  let st = Random.State.make [| 99 |] in
  let broke = ref 0 and total = ref 0 in
  let attempts = ref 0 in
  while !total < 60 && !attempts < 4000 do
    incr attempts;
    let nest = gen_nest st in
    let seq = gen_sequence st (Nest.depth nest) in
    if seq <> [] then begin
      match Legality.check nest seq with
      | Legality.Dependence_violation _ -> (
        incr total;
        (* Generate code anyway (bounds preconditions hold; only the
           dependence test failed) by pretending there are no dependences. *)
        match Legality.check ~vectors:[] nest seq with
        | Legality.Legal { nest = out; _ } ->
          let _, orig_snap = traced_run ~tag_vars:[||] nest in
          let _, snap = traced_run ~tag_vars:[||] out in
          if snap <> orig_snap then incr broke
        | _ -> ())
      | _ -> ()
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "instances that break: %d / %d" !broke !total)
    true
    (!total < 30 || !broke > 0)

let () =
  Alcotest.run "semantics"
    [
      ( "random",
        [
          Alcotest.test_case "400 random nest/sequence cases" `Quick
            test_random_transformations;
          Alcotest.test_case "250 more cases, other seed" `Quick
            test_random_transformations_seed2;
          Alcotest.test_case "illegal sequences observably break" `Quick
            test_illegal_sequences_do_break;
        ] );
    ]
