(* Tests for the tier-0 analytic cost model (lib/opt/costmodel.ml):

   - admissibility: the tier-0 [bound] must never exceed the exact
     simulated objective — on the frozen corpus, on seeded random nests,
     and across transformed variants of each. This is the soundness
     contract branch-and-bound pruning relies on.
   - ranking: tier-0 [score] must rank candidates well enough that the
     exact winner survives a top-K screen (the engine's --exact-topk),
     checked as Spearman rank correlation against the exact scores and
     as winner-recall on one-step candidate populations.
   - end-to-end: a tiered engine run (small exact_topk) must pick the
     same winner as the untiered engine on the bench kernels. *)

open Itf_ir
module Search = Itf_opt.Search
module Engine = Itf_opt.Engine
module Costmodel = Itf_opt.Costmodel
module Framework = Itf_core.Framework
module Sequence = Itf_core.Sequence
module Gen = Itf_check.Gen
module Repro = Itf_check.Repro

let check_bool = Alcotest.(check bool)

let cache_cfg =
  { Itf_machine.Cache.size_bytes = 8192; line_bytes = 64; assoc = 2 }

let corpus_dir () =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_cases () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".repro")
  |> List.sort compare
  |> List.map (fun f -> Repro.load (Filename.concat dir f))

let gen_cases n =
  let st = Random.State.make [| 0x5eed |] in
  List.init n (fun _ -> Gen.case st)

(* Score both the identity result and (when legal) the case's transformed
   result: the transformed ones exercise subscript analysis through the
   generated initialization statements. *)
let results_of (c : Gen.case) =
  let id = match Framework.apply c.nest [] with Ok r -> [ r ] | Error _ -> [] in
  let tr =
    match Framework.apply c.nest c.seq with Ok r -> [ r ] | Error _ -> []
  in
  id @ tr

(* (estimate, exact) pairs for every scoreable result of every case, for
   both objectives. *)
let pairs () =
  let cases = corpus_cases () @ gen_cases 100 in
  List.concat_map
    (fun (c : Gen.case) ->
      let specs =
        [
          ( "locality",
            Costmodel.Locality
              { config = cache_cfg; elem_bytes = 8; params = c.params },
            Search.cache_misses ~config:cache_cfg ~params:c.params () );
          ( "parallel",
            Costmodel.Parallel
              { procs = 4; spawn_overhead = 2.0; params = c.params },
            Search.parallel_time ~procs:4 ~params:c.params () );
        ]
      in
      List.concat_map
        (fun (label, spec, exact_obj) ->
          let est = Costmodel.make spec in
          List.filter_map
            (fun r ->
              match exact_obj r with
              | exception _ -> None
              | x when Float.is_nan x -> None
              | x -> Some (label, est r, x))
            (results_of c))
        specs)
    cases

let test_admissible () =
  let ps = pairs () in
  check_bool "have a meaningful population" true (List.length ps > 100);
  List.iteri
    (fun i (label, (e : Costmodel.estimate), exact) ->
      if e.bound > exact +. 1e-6 then
        Alcotest.failf "pair %d (%s): bound %g exceeds exact score %g" i label
          e.bound exact;
      check_bool "score sane" true (Float.is_nan e.score = false))
    ps

(* Spearman rank correlation (average ranks on ties). *)
let spearman xs ys =
  let rank v =
    let a = Array.of_list v in
    let idx = Array.init (Array.length a) Fun.id in
    Array.sort (fun i j -> Float.compare a.(i) a.(j)) idx;
    let r = Array.make (Array.length a) 0. in
    let i = ref 0 in
    while !i < Array.length a do
      let j = ref !i in
      while !j < Array.length a - 1 && a.(idx.(!j + 1)) = a.(idx.(!i)) do
        incr j
      done;
      let avg = float (!i + !j) /. 2. in
      for k = !i to !j do
        r.(idx.(k)) <- avg
      done;
      i := !j + 1
    done;
    r
  in
  let rx = rank xs and ry = rank ys in
  let n = Array.length rx in
  let mean a = Array.fold_left ( +. ) 0. a /. float n in
  let mx = mean rx and my = mean ry in
  let num = ref 0. and dx = ref 0. and dy = ref 0. in
  for i = 0 to n - 1 do
    num := !num +. ((rx.(i) -. mx) *. (ry.(i) -. my));
    dx := !dx +. ((rx.(i) -. mx) ** 2.);
    dy := !dy +. ((ry.(i) -. my) ** 2.)
  done;
  if !dx = 0. || !dy = 0. then 1. else !num /. sqrt (!dx *. !dy)

let test_rank_correlation () =
  let ps = pairs () in
  List.iter
    (fun want ->
      let sel = List.filter (fun (l, _, _) -> l = want) ps in
      let est = List.map (fun (_, (e : Costmodel.estimate), _) -> e.score) sel in
      let exact = List.map (fun (_, _, x) -> x) sel in
      let rho = spearman est exact in
      check_bool
        (Printf.sprintf "%s: rank correlation %.3f >= 0.7 over %d pairs" want
           rho (List.length sel))
        true (rho >= 0.7))
    [ "locality"; "parallel" ]

(* Winner recall on one-step candidate populations of the bench kernels:
   the exact best candidate must sit inside the tier-0 top-K for the K the
   engine defaults to — otherwise screening would change winners. *)
let one_step_population nest =
  let depth = Nest.depth nest in
  List.filter_map
    (fun t ->
      match Framework.apply nest [ t ] with Ok r -> Some r | Error _ -> None)
    (Search.moves nest ~depth)

let lu () =
  Nest.make
    [
      Nest.loop "k" Expr.one (Expr.var "n");
      Nest.loop "i" Expr.(add (var "k") Expr.one) (Expr.var "n");
      Nest.loop "j" Expr.(add (var "k") Expr.one) (Expr.var "n");
    ]
    [
      Stmt.Store
        ( { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] },
          Expr.sub
            (Expr.Load { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] })
            (Expr.mul
               (Expr.Load
                  { array = "a"; index = [ Expr.var "i"; Expr.var "k" ] })
               (Expr.Load
                  { array = "a"; index = [ Expr.var "k"; Expr.var "j" ] })) );
    ]

let screen_cases () =
  [
    ( "matmul/locality",
      Builders.matmul (),
      Costmodel.Locality
        { config = cache_cfg; elem_bytes = 8; params = [ ("n", 16) ] },
      (Search.cache_misses ~params:[ ("n", 16) ] () : Search.objective) );
    ( "stencil/locality",
      Builders.stencil (),
      Costmodel.Locality
        { config = cache_cfg; elem_bytes = 8; params = [ ("n", 16) ] },
      Search.cache_misses ~params:[ ("n", 16) ] () );
    ( "lu/parallel",
      lu (),
      Costmodel.Parallel
        { procs = 4; spawn_overhead = 2.0; params = [ ("n", 10) ] },
      Search.parallel_time ~procs:4 ~params:[ ("n", 10) ] () );
  ]

let test_winner_recall () =
  List.iter
    (fun (label, nest, spec, exact_obj) ->
      let est = Costmodel.make spec in
      let scored =
        List.filter_map
          (fun r ->
            match exact_obj r with
            | exception _ -> None
            | x when Float.is_nan x -> None
            | x -> Some ((est r).Costmodel.score, x))
          (one_step_population nest)
      in
      check_bool (label ^ ": population non-trivial") true
        (List.length scored > 3);
      let best_exact =
        List.fold_left (fun acc (_, x) -> Float.min acc x) Float.infinity
          scored
      in
      let by_est = List.sort compare scored in
      let topk = List.filteri (fun i _ -> i < Engine.default_exact_topk) by_est in
      check_bool
        (Printf.sprintf "%s: exact winner inside tier-0 top-%d" label
           Engine.default_exact_topk)
        true
        (List.exists (fun (_, x) -> x = best_exact) topk))
    (screen_cases ())

(* End-to-end: the tiered engine (screening + branch-and-bound on) must
   return the same winner as the untiered engine. *)
let test_same_winner_end_to_end () =
  List.iter
    (fun (label, nest, spec, exact_obj) ->
      match
        ( Engine.search ~beam:4 ~steps:2 ~domains:1 nest exact_obj,
          Engine.search ~beam:4 ~steps:2 ~domains:1 ~tier0:spec nest exact_obj
        )
      with
      | None, None -> ()
      | Some _, None | None, Some _ ->
        Alcotest.failf "%s: tiering changed scoreability" label
      | Some a, Some b ->
        Alcotest.(check (float 0.0))
          (label ^ ": same best score") a.Engine.score b.Engine.score;
        check_bool (label ^ ": same canonical winner") true
          (Sequence.compare a.Engine.canonical b.Engine.canonical = 0);
        check_bool (label ^ ": tier-0 actually pruned exact evals") true
          (b.Engine.stats.Itf_opt.Stats.objective_evaluations
          < a.Engine.stats.Itf_opt.Stats.objective_evaluations))
    (screen_cases ())

let () =
  (* Calibration aid: COSTMODEL_DUMP=1 prints every (label, estimate,
     exact) triple of the correlation corpus as TSV instead of running
     the suite — pipe into sort to see which nests the estimator
     misranks. *)
  (match Sys.getenv_opt "COSTMODEL_DUMP" with
  | Some _ ->
    List.iter
      (fun (l, (e : Costmodel.estimate), x) ->
        Printf.printf "%s\t%g\t%g\t%g\n" l e.score e.bound x)
      (pairs ());
    exit 0
  | None -> ());
  Alcotest.run "costmodel"
    [
      ( "costmodel",
        [
          Alcotest.test_case "bound is admissible" `Quick test_admissible;
          Alcotest.test_case "ranks like the exact objective" `Quick
            test_rank_correlation;
          Alcotest.test_case "exact winner survives top-K screen" `Quick
            test_winner_recall;
          Alcotest.test_case "tiered engine keeps the winner" `Quick
            test_same_winner_end_to_end;
        ] );
    ]
