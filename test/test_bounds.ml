(* Tests for the bounds substrate (lib/bounds): the type lattice, affine
   splitting, LB/UB/STEP matrices (paper Figure 5), and Fourier-Motzkin. *)

open Itf_ir
module Btype = Itf_bounds.Btype
module Affine = Itf_bounds.Affine
module Classify = Itf_bounds.Classify
module Bmat = Itf_bounds.Bmat
module Fourier = Itf_bounds.Fourier

let btype = Alcotest.testable Btype.pp Btype.equal
let check_btype = Alcotest.check btype
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Btype lattice                                                       *)
(* ------------------------------------------------------------------ *)

let test_lattice () =
  let open Btype in
  check_bool "const <= invar" true (leq Const Invar);
  check_bool "invar <= linear" true (leq Invar Linear);
  check_bool "linear <= nonlinear" true (leq Linear Nonlinear);
  check_bool "nonlinear </= linear" false (leq Nonlinear Linear);
  check_btype "join" Linear (join Invar Linear);
  check_btype "join comm" Linear (join Linear Invar);
  check_btype "join idem" Const (join Const Const)

(* ------------------------------------------------------------------ *)
(* Affine splitting                                                    *)
(* ------------------------------------------------------------------ *)

let test_split_basic () =
  (* 2*i - 3*j + n + 4 over {i, j} *)
  let e =
    Expr.(
      add
        (add (mul (int 2) (var "i")) (neg (mul (int 3) (var "j"))))
        (add (var "n") (int 4)))
  in
  let s = Affine.split ~vars:[ "i"; "j" ] e in
  check_int "coeff i" 2 (Affine.coeff s "i");
  check_int "coeff j" (-3) (Affine.coeff s "j");
  check_bool "affine" true (Affine.is_affine s);
  check_bool "not invariant" false (Affine.is_invariant s);
  (* base is n + 4 *)
  check_bool "base correct" true
    (Expr.equal (Expr.simplify s.Affine.base) Expr.(add (var "n") (int 4)))

let test_split_nonlinear () =
  (* i*j is nonlinear in both; i + i*j is linear part 1*i plus residue *)
  let e = Expr.(add (var "i") (mul (var "i") (var "j"))) in
  let s = Affine.split ~vars:[ "i"; "j" ] e in
  check_int "coeff i (linear part)" 1 (Affine.coeff s "i");
  check_bool "nonlinear flags" true
    (s.Affine.nonlinear_in = [ "i"; "j" ]);
  (* div makes things nonlinear *)
  let s = Affine.split ~vars:[ "i" ] Expr.(div (var "i") (int 2)) in
  check_bool "div nonlinear" false (Affine.is_affine s);
  (* calls make mentioned vars nonlinear, e.g. sqrt(i)/2 from Figure 5 *)
  let s = Affine.split ~vars:[ "i" ] Expr.(div (Call ("sqrt", [ var "i" ])) (int 2)) in
  check_bool "call nonlinear in i" true (List.mem "i" s.Affine.nonlinear_in)

let test_split_symbol_product () =
  (* n*i: coefficient is not a compile-time constant -> nonlinear in i *)
  let s = Affine.split ~vars:[ "i" ] Expr.(mul (var "n") (var "i")) in
  check_bool "n*i nonlinear in i" true (List.mem "i" s.Affine.nonlinear_in);
  (* but n*m with neither designated stays an invariant base *)
  let s = Affine.split ~vars:[ "i" ] Expr.(mul (var "n") (var "m")) in
  check_bool "n*m invariant" true (Affine.is_invariant s)

let test_split_roundtrip () =
  let e = Expr.(add (mul (int 2) (var "i")) (sub (var "n") (var "j"))) in
  let s = Affine.split ~vars:[ "i"; "j" ] e in
  let env = [ ("i", Expr.int 5); ("j", Expr.int 7); ("n", Expr.int 11) ] in
  Alcotest.check
    (Alcotest.testable Expr.pp Expr.equal)
    "recombination evaluates equally"
    (Expr.subst env e)
    (Expr.subst env (Affine.to_expr s))

(* ------------------------------------------------------------------ *)
(* Classification (paper Section 4.1 examples)                         *)
(* ------------------------------------------------------------------ *)

let test_classify () =
  check_btype "const" Btype.Const (Classify.type_in (Expr.int 100) "i");
  check_btype "invar" Btype.Invar (Classify.type_in (Expr.var "n") "i");
  check_btype "linear" Btype.Linear
    (Classify.type_in Expr.(add (var "i") (int 512)) "i");
  check_btype "nonlinear (call)" Btype.Nonlinear
    (Classify.type_in Expr.(div (Call ("sqrt", [ var "i" ])) (int 2)) "i");
  (* Figure 4(c): colstr(j) is nonlinear in j but invariant in i *)
  let e = Expr.Call ("colstr", [ Expr.var "j" ]) in
  check_btype "colstr(j) nonlinear in j" Btype.Nonlinear (Classify.type_in e "j");
  check_btype "colstr(j) invar in i" Btype.Invar (Classify.type_in e "i")

let test_classify_minmax_special_case () =
  (* A max lower bound of linear terms counts as linear (positive step). *)
  let lb = Expr.(max_ (var "n") (int 3)) in
  check_btype "plain classification is nonlinear" Btype.Nonlinear
    (Classify.type_in Expr.(max_ (var "i") (int 3)) "i");
  check_btype "max lower bound linear-in-n... invar in i" Btype.Invar
    (Classify.type_in_bound Classify.Lower ~step_sign:1 lb "i");
  let lb2 = Expr.(max_ (var "i") (int 3)) in
  check_btype "max lower bound linear in i" Btype.Linear
    (Classify.type_in_bound Classify.Lower ~step_sign:1 lb2 "i");
  (* but a max in an upper bound (positive step) is not decomposed *)
  check_btype "max upper bound stays nonlinear" Btype.Nonlinear
    (Classify.type_in_bound Classify.Upper ~step_sign:1 lb2 "i");
  (* negative step flips the roles *)
  check_btype "max upper bound with negative step is decomposed" Btype.Linear
    (Classify.type_in_bound Classify.Upper ~step_sign:(-1) lb2 "i")

(* ------------------------------------------------------------------ *)
(* Figure 5: LB/UB/STEP matrices                                       *)
(* ------------------------------------------------------------------ *)

(* do i = max(n,3), 100, 2
     do j = 1, min(2*i+512, ...), 1   -- figure's entries: u2 linear in i
       do k = sqrt(i)/2, 2*j, i *)
let figure5_nest () =
  Nest.make
    [
      Nest.loop ~step:(Expr.int 2) "i" Expr.(max_ (var "n") (int 3)) (Expr.int 100);
      Nest.loop "j" Expr.one Expr.(min_ (int 2) (add (var "i") (int 512)));
      Nest.loop ~step:(Expr.var "i") "k"
        Expr.(div (Call ("sqrt", [ var "i" ])) (int 2))
        Expr.(mul (int 2) (var "j"));
    ]
    [ Stmt.Set ("x", Expr.var "k") ]

let test_bmat_figure5 () =
  let bm = Bmat.of_nest (figure5_nest ()) in
  check_int "depth" 3 (Bmat.depth bm);
  (* type(u2, i) = linear *)
  check_btype "type(u2,i)" Btype.Linear (Bmat.btype bm Bmat.U ~loop:1 ~wrt:0);
  (* type(l3, i) = nonlinear *)
  check_btype "type(l3,i)" Btype.Nonlinear (Bmat.btype bm Bmat.L ~loop:2 ~wrt:0);
  (* type(u3, j) = linear *)
  check_btype "type(u3,j)" Btype.Linear (Bmat.btype bm Bmat.U ~loop:2 ~wrt:1);
  (* type(s3, i) = linear *)
  check_btype "type(s3,i)" Btype.Linear (Bmat.btype bm Bmat.S ~loop:2 ~wrt:0);
  (* lower bound of i is the two-term max <n, 3> *)
  check_int "max lower has two terms" 2 (List.length bm.Bmat.lowers.(0));
  (* coefficient entries *)
  check_int "UB(2,1) coeff of j in u3" 2
    (List.hd bm.Bmat.uppers.(2)).Bmat.coeffs.(1)

let test_bmat_roundtrip () =
  let nest = figure5_nest () in
  let bm = Bmat.of_nest nest in
  let eval_env = [ ("n", Expr.int 7); ("i", Expr.int 9); ("j", Expr.int 2) ] in
  let eq name a b =
    Alcotest.check
      (Alcotest.testable Expr.pp Expr.equal)
      name (Expr.subst eval_env a) (Expr.subst eval_env b)
  in
  List.iteri
    (fun k (l : Nest.loop) ->
      eq (Printf.sprintf "lower %d" k) l.Nest.lo (Bmat.lower_expr bm k);
      eq (Printf.sprintf "upper %d" k) l.Nest.hi (Bmat.upper_expr bm k);
      eq (Printf.sprintf "step %d" k) l.Nest.step (Bmat.step_expr bm k))
    nest.Nest.loops

(* ------------------------------------------------------------------ *)
(* Fourier-Motzkin                                                     *)
(* ------------------------------------------------------------------ *)

(* Enumerate integer points of bounds produced by FM, outermost first. *)
let enumerate_points vars (bounds : (Expr.t * Expr.t) array) env0 =
  let n = Array.length bounds in
  let points = ref [] in
  let rec go k env point =
    if k = n then points := List.rev point :: !points
    else
      let lo, hi = bounds.(k) in
      let lo = match Expr.subst env lo with Expr.Int v -> v | e -> failwith (Expr.to_string e) in
      let hi = match Expr.subst env hi with Expr.Int v -> v | e -> failwith (Expr.to_string e) in
      for v = lo to hi do
        go (k + 1) ((vars.(k), Expr.int v) :: env) (v :: point)
      done
  in
  go 0 env0 [];
  List.sort compare !points

let test_fm_triangular_interchange () =
  (* Figure 4(a)->(b): interchange of do i = 1, n / do j = i, n. *)
  let nest =
    Nest.make
      [
        Nest.loop "i" Expr.one (Expr.var "n");
        Nest.loop "j" (Expr.var "i") (Expr.var "n");
      ]
      [ Stmt.Set ("x", Expr.zero) ]
  in
  let sys = Fourier.nest_system nest in
  let minv = Itf_mat.Intmat.interchange 2 0 1 in
  (* y = M x with M = interchange; M^-1 = M. *)
  let sys' = Fourier.substitute sys minv [| "jj"; "ii" |] in
  let bounds = Fourier.bounds sys' in
  let env0 = [ ("n", Expr.int 6) ] in
  let expected =
    (* all (j, i) with 1 <= i <= 6, i <= j <= 6 *)
    List.sort compare
      (List.concat
         (List.init 6 (fun i ->
              List.filter_map
                (fun j -> if j >= i + 1 then Some [ j; i + 1 ] else None)
                (List.init 6 (fun j -> j + 1)))))
  in
  Alcotest.(check (list (list int)))
    "interchanged triangle enumerates the same points" expected
    (enumerate_points [| "jj"; "ii" |] bounds env0)

let test_fm_skew_interchange_figure1 () =
  (* Figure 1: skew j by i then interchange, on do i = 2, n-1 x2.
     Transformed bounds should enumerate (jj, ii) with jj = i+j. *)
  let nest =
    Nest.make
      [
        Nest.loop "i" (Expr.int 2) Expr.(sub (var "n") (int 1));
        Nest.loop "j" (Expr.int 2) Expr.(sub (var "n") (int 1));
      ]
      [ Stmt.Set ("x", Expr.zero) ]
  in
  let sys = Fourier.nest_system nest in
  let m =
    Itf_mat.Intmat.mul (Itf_mat.Intmat.interchange 2 0 1) (Itf_mat.Intmat.skew 2 0 1 1)
  in
  let minv = Itf_mat.Intmat.inverse_unimodular m in
  let sys' = Fourier.substitute sys minv [| "jj"; "ii" |] in
  let bounds = Fourier.bounds sys' in
  let n = 7 in
  let expected =
    List.sort compare
      (List.concat
         (List.init (n - 2) (fun i0 ->
              List.init (n - 2) (fun j0 ->
                  let i = i0 + 2 and j = j0 + 2 in
                  [ i + j; i ]))))
  in
  Alcotest.(check (list (list int)))
    "figure 1 transformed space" expected
    (enumerate_points [| "jj"; "ii" |] bounds [ ("n", Expr.int n) ]);
  (* The paper's Figure 1(b) bounds: jj = 4 .. n+n-2, ii = max(2, jj-n+1)
     .. min(n-1, jj-2). Check endpoints for n = 7. *)
  let lo0, hi0 = bounds.(0) in
  Alcotest.(check int) "jj lower" 4
    (match Expr.subst [ ("n", Expr.int n) ] lo0 with Expr.Int v -> v | _ -> -1);
  Alcotest.(check int) "jj upper" (n + n - 2)
    (match Expr.subst [ ("n", Expr.int n) ] hi0 with Expr.Int v -> v | _ -> -1)

let test_fm_unbounded () =
  let sys =
    { Fourier.vars = [| "x" |]; ineqs = [ Fourier.ineq [| 1 |] Expr.zero ] }
  in
  check_bool "unbounded raises" true
    (match Fourier.bounds sys with
    | exception Fourier.Unbounded _ -> true
    | _ -> false)

let test_fm_nonunit_coefficients () =
  (* 2 <= 3x <= 17  ->  x in [1, 5] *)
  let sys =
    {
      Fourier.vars = [| "x" |];
      ineqs =
        [
          Fourier.ineq [| 3 |] (Expr.int (-2));
          Fourier.ineq [| -3 |] (Expr.int 17);
        ];
    }
  in
  let bounds = Fourier.bounds sys in
  let lo, hi = bounds.(0) in
  Alcotest.(check int) "ceil(2/3)" 1
    (match Expr.simplify lo with Expr.Int v -> v | _ -> -99);
  Alcotest.(check int) "floor(17/3)" 5
    (match Expr.simplify hi with Expr.Int v -> v | _ -> -99)

let test_fm_infeasibility () =
  let sys ineqs = { Fourier.vars = [| "x"; "y" |]; ineqs } in
  (* x >= 1 and x <= 0: empty *)
  check_bool "numeric contradiction" true
    (Fourier.definitely_infeasible
       (sys [ Fourier.ineq [| 1; 0 |] (Expr.int (-1)); Fourier.ineq [| -1; 0 |] Expr.zero ]));
  (* x >= 0, y >= x + 1, y <= x: empty via combination *)
  check_bool "coupled contradiction" true
    (Fourier.definitely_infeasible
       (sys
          [
            Fourier.ineq [| 1; 0 |] Expr.zero;
            Fourier.ineq [| -1; 1 |] (Expr.int (-1));
            Fourier.ineq [| 1; -1 |] Expr.zero;
          ]));
  (* x in [0, 5]: feasible *)
  check_bool "feasible box" false
    (Fourier.definitely_infeasible
       (sys [ Fourier.ineq [| 1; 0 |] Expr.zero; Fourier.ineq [| -1; 0 |] (Expr.int 5) ]));
  (* x <= n with symbolic n: unknown, treated feasible *)
  check_bool "symbolic ground stays feasible" false
    (Fourier.definitely_infeasible
       (sys
          [
            Fourier.ineq [| 1; 0 |] Expr.zero;
            Fourier.ineq [| -1; 0 |] (Expr.var "n");
            (* even together with n <= -1 as a ground symbolic fact *)
            Fourier.ineq [| 0; 0 |] Expr.(sub (int (-1)) (var "n"));
          ]));
  (* gcd normalization adds integer tightening: 1 <= 2x <= 1 has the
     rational solution x = 1/2 but no integer one *)
  check_bool "integer tightening via gcd" true
    (Fourier.definitely_infeasible
       (sys [ Fourier.ineq [| 2; 0 |] (Expr.int (-1)); Fourier.ineq [| -2; 0 |] (Expr.int 1) ]));
  (* blowup cap gives up gracefully *)
  check_bool "cap returns false" false
    (Fourier.definitely_infeasible ~max_ineqs:1
       (sys
          [
            Fourier.ineq [| 1; 1 |] Expr.zero;
            Fourier.ineq [| -1; 2 |] Expr.zero;
            Fourier.ineq [| 1; -2 |] (Expr.int (-1));
            Fourier.ineq [| -1; -1 |] (Expr.int (-1));
          ]))

(* ------------------------------------------------------------------ *)
(* FM property: random 3-deep rectangular/triangular nests, random     *)
(* unimodular transforms; point sets must be in bijection.             *)
(* ------------------------------------------------------------------ *)

let gen_unimodular n =
  QCheck.Gen.(
    list_size (int_range 1 4)
      (oneof
         [
           map2 (fun i j -> Itf_mat.Intmat.interchange n i j) (int_range 0 (n - 1))
             (int_range 0 (n - 1));
           map (fun i -> Itf_mat.Intmat.reversal n i) (int_range 0 (n - 1));
           (fun st ->
             let i = int_range 0 (n - 1) st in
             let j = (i + 1 + int_range 0 (n - 2) st) mod n in
             Itf_mat.Intmat.skew n i j (int_range (-2) 2 st));
         ])
    |> map (List.fold_left Itf_mat.Intmat.mul (Itf_mat.Intmat.identity n)))

let gen_nest3 =
  (* loops with small constant bounds, possibly triangular *)
  QCheck.Gen.(
    let bound lo = int_range lo (lo + 4) in
    bound 0 >>= fun h1 ->
    bound 0 >>= fun h2 ->
    bound 0 >>= fun h3 ->
    bool >>= fun tri2 ->
    bool >>= fun tri3 ->
    return
      (Nest.make
         [
           Nest.loop "x1" Expr.zero (Expr.int h1);
           Nest.loop "x2"
             (if tri2 then Expr.var "x1" else Expr.zero)
             (Expr.int h2);
           Nest.loop "x3"
             (if tri3 then Expr.var "x2" else Expr.zero)
             (Expr.int h3);
         ]
         [ Stmt.Set ("t", Expr.zero) ]))

let arb_fm_case =
  QCheck.make
    ~print:(fun (nest, m) ->
      Nest.to_string nest ^ "\n" ^ Format.asprintf "%a" Itf_mat.Intmat.pp m)
    QCheck.Gen.(pair gen_nest3 (gen_unimodular 3))

let enumerate_nest_points (nest : Nest.t) =
  (* Enumerate the original nest's iteration vectors (constant bounds). *)
  let rec go env = function
    | [] -> [ [] ]
    | (l : Nest.loop) :: rest ->
      let lo =
        match Expr.subst env l.Nest.lo with Expr.Int v -> v | _ -> assert false
      in
      let hi =
        match Expr.subst env l.Nest.hi with Expr.Int v -> v | _ -> assert false
      in
      List.concat
        (List.init
           (max 0 (hi - lo + 1))
           (fun k ->
             let v = lo + k in
             List.map (fun tl -> v :: tl) (go ((l.Nest.var, Expr.int v) :: env) rest)))
  in
  go [] nest.Nest.loops

let prop_fm_bijection =
  QCheck.Test.make ~name:"FM bounds enumerate exactly the mapped points"
    ~count:75 arb_fm_case (fun (nest, m) ->
      let sys = Fourier.nest_system nest in
      let minv = Itf_mat.Intmat.inverse_unimodular m in
      let sys' = Fourier.substitute sys minv [| "y1"; "y2"; "y3" |] in
      let bounds = Fourier.bounds sys' in
      let expected =
        List.sort compare
          (List.map
             (fun p -> Array.to_list (Itf_mat.Intmat.apply m (Array.of_list p)))
             (enumerate_nest_points nest))
      in
      let actual = enumerate_points [| "y1"; "y2"; "y3" |] bounds [] in
      expected = actual)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_fm_bijection ]

let () =
  Alcotest.run "bounds"
    [
      ("btype", [ Alcotest.test_case "lattice" `Quick test_lattice ]);
      ( "affine",
        [
          Alcotest.test_case "basic split" `Quick test_split_basic;
          Alcotest.test_case "nonlinear detection" `Quick test_split_nonlinear;
          Alcotest.test_case "symbolic coefficient" `Quick test_split_symbol_product;
          Alcotest.test_case "roundtrip" `Quick test_split_roundtrip;
        ] );
      ( "classify",
        [
          Alcotest.test_case "type lattice values" `Quick test_classify;
          Alcotest.test_case "max/min special case" `Quick
            test_classify_minmax_special_case;
        ] );
      ( "bmat",
        [
          Alcotest.test_case "figure 5 entries" `Quick test_bmat_figure5;
          Alcotest.test_case "expression roundtrip" `Quick test_bmat_roundtrip;
        ] );
      ( "fourier",
        [
          Alcotest.test_case "triangular interchange (fig 4)" `Quick
            test_fm_triangular_interchange;
          Alcotest.test_case "skew+interchange (fig 1)" `Quick
            test_fm_skew_interchange_figure1;
          Alcotest.test_case "unbounded detection" `Quick test_fm_unbounded;
          Alcotest.test_case "non-unit coefficients" `Quick
            test_fm_nonunit_coefficients;
          Alcotest.test_case "rational infeasibility" `Quick test_fm_infeasibility;
        ] );
      ("properties", qcheck_tests);
    ]
