(* Golden tests: exact generated code for each template on canonical
   nests. These pin the concrete output of the Tables 3-4 rules so that
   changes to bound formulas are visible in review. *)

open Itf_ir
module T = Itf_core.Template
module F = Itf_core.Framework
module Intmat = Itf_mat.Intmat

let check = Alcotest.(check string)

let apply nest seq = Nest.to_string (F.apply_exn ~vectors:[] nest seq).F.nest

let rect () =
  Itf_lang.Parser.parse_nest
    "do i = 1, n\n  do j = 1, m\n    a(i, j) = i + j\n  enddo\nenddo\n"

let rect_strided () =
  Itf_lang.Parser.parse_nest
    "do i = 1, n\n  do j = 1, m, s\n    a(i, j) = i + j\n  enddo\nenddo\n"

let triangular () =
  Itf_lang.Parser.parse_nest
    "do i = 1, n\n  do j = i, n\n    a(i, j) = i + j\n  enddo\nenddo\n"

let test_interchange () =
  check "swap loop headers"
    "do j = 1, m\n  do i = 1, n\n    a(i, j) = i + j\n  enddo\nenddo\n"
    (apply (rect ()) [ T.interchange ~n:2 0 1 ])

let test_reversal_unit_step () =
  check "reverse j: constant step folds"
    "do i = 1, n\n  do j = m, 1, -1\n    a(i, j) = i + j\n  enddo\nenddo\n"
    (apply (rect ()) [ T.reversal ~n:2 1 ])

let test_reversal_runtime_step () =
  check "reverse j: floor-mod last-iteration formula"
    "do i = 1, n\n\
    \  do j = m - (m - 1) mod s, 1, -s\n\
    \    a(i, j) = i + j\n\
    \  enddo\n\
     enddo\n"
    (apply (rect_strided ()) [ T.reversal ~n:2 1 ])

let test_parallelize () =
  check "pardo headers"
    "pardo i = 1, n\n  do j = 1, m\n    a(i, j) = i + j\n  enddo\nenddo\n"
    (apply (rect ()) [ T.parallelize [| true; false |] ])

let test_unimodular_skew () =
  check "skewed bounds by Fourier-Motzkin, inits emitted"
    "do ii = 1, n\n\
    \  do jj = 1 + ii, n + ii\n\
    \    i = ii\n\
    \    j = jj - ii\n\
    \    a(i, j) = i + j\n\
    \  enddo\n\
     enddo\n"
    (apply
       (Itf_lang.Parser.parse_nest
          "do i = 1, n\n  do j = 1, n\n    a(i, j) = i + j\n  enddo\nenddo\n")
       [ T.skew ~n:2 ~src:0 ~dst:1 ~factor:1 ])

let test_block_rectangular () =
  check "block loops stride by b, element loops clamp"
    "do ii = 1, n, b1\n\
    \  do jj = 1, m, b2\n\
    \    do i = max(ii, 1), min(ii + (b1 - 1), n)\n\
    \      do j = max(jj, 1), min(jj + (b2 - 1), m)\n\
    \        a(i, j) = i + j\n\
    \      enddo\n\
    \    enddo\n\
    \  enddo\n\
     enddo\n"
    (apply (rect ())
       [ T.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.var "b1"; Expr.var "b2" |] ])

let test_block_triangular_endpoints () =
  check "triangular block loop lower bound substitutes the block origin"
    "do ii = 1, n, b\n\
    \  do jj = ii, n, b\n\
    \    do i = max(ii, 1), min(ii + (b - 1), n)\n\
    \      do j = max(jj, i), min(jj + (b - 1), n)\n\
    \        a(i, j) = i + j\n\
    \      enddo\n\
    \    enddo\n\
    \  enddo\n\
     enddo\n"
    (apply (triangular ())
       [ T.block ~n:2 ~i:0 ~j:1 ~bsize:[| Expr.var "b"; Expr.var "b" |] ])

let test_coalesce () =
  check "coalesced loop with div/mod delinearization inits"
    "do ijc = 0, max(0, n) * max(0, m) - 1\n\
    \  i = 1 + ijc / max(0, m) mod max(0, n)\n\
    \  j = 1 + ijc mod max(0, m)\n\
    \  a(i, j) = i + j\n\
     enddo\n"
    (apply (rect ()) [ T.coalesce ~n:2 ~i:0 ~j:1 ])

let test_interleave () =
  check "phase loop plus strided loop"
    "do i = 1, n\n\
    \  do jp = 0, f - 1\n\
    \    do j = 1 + jp, m, f\n\
    \      a(i, j) = i + j\n\
    \    enddo\n\
    \  enddo\n\
     enddo\n"
    (apply (rect ()) [ T.interleave ~n:2 ~i:1 ~j:1 ~isize:[| Expr.var "f" |] ])

let () =
  Alcotest.run "golden"
    [
      ( "codegen",
        [
          Alcotest.test_case "interchange" `Quick test_interchange;
          Alcotest.test_case "reversal (unit step)" `Quick test_reversal_unit_step;
          Alcotest.test_case "reversal (runtime step)" `Quick
            test_reversal_runtime_step;
          Alcotest.test_case "parallelize" `Quick test_parallelize;
          Alcotest.test_case "unimodular skew" `Quick test_unimodular_skew;
          Alcotest.test_case "block (rectangular)" `Quick test_block_rectangular;
          Alcotest.test_case "block (triangular endpoints)" `Quick
            test_block_triangular_endpoints;
          Alcotest.test_case "coalesce" `Quick test_coalesce;
          Alcotest.test_case "interleave" `Quick test_interleave;
        ] );
    ]
