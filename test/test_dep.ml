(* Tests for dependence directions, vectors, and the analyzer (lib/dep). *)

open Itf_ir
module Dir = Itf_dep.Dir
module Depvec = Itf_dep.Depvec
module Analysis = Itf_dep.Analysis

let check_bool = Alcotest.(check bool)
let dv = Alcotest.testable Depvec.pp Depvec.equal

(* ------------------------------------------------------------------ *)
(* Dir                                                                 *)
(* ------------------------------------------------------------------ *)

let all_dirs = Dir.[ Zero; Pos; Neg; NonNeg; NonPos; NonZero; Any ]

let test_dir_contains () =
  check_bool "+ has 3" true (Dir.contains Dir.Pos 3);
  check_bool "+ lacks 0" false (Dir.contains Dir.Pos 0);
  check_bool "0+ has 0" true (Dir.contains Dir.NonNeg 0);
  check_bool "+- lacks 0" false (Dir.contains Dir.NonZero 0);
  check_bool "+- has -5" true (Dir.contains Dir.NonZero (-5));
  check_bool "* has everything" true
    (List.for_all (Dir.contains Dir.Any) [ -7; 0; 9 ])

let test_dir_reverse () =
  let open Dir in
  check_bool "rev +" true (equal (reverse Pos) Neg);
  check_bool "rev 0+" true (equal (reverse NonNeg) NonPos);
  check_bool "rev +- " true (equal (reverse NonZero) NonZero);
  check_bool "rev *" true (equal (reverse Any) Any);
  check_bool "rev 0" true (equal (reverse Zero) Zero);
  (* involution *)
  check_bool "involution" true
    (List.for_all (fun d -> equal (reverse (reverse d)) d) all_dirs)

let test_dir_union_subset () =
  let open Dir in
  check_bool "+ u - = +-" true (equal (union Pos Neg) NonZero);
  check_bool "0 u + = 0+" true (equal (union Zero Pos) NonNeg);
  check_bool "0+ u - = *" true (equal (union NonNeg Neg) Any);
  check_bool "subset + 0+" true (subset Pos NonNeg);
  check_bool "not subset 0+ +" false (subset NonNeg Pos);
  (* union is the lattice join w.r.t. subset *)
  check_bool "union upper bound" true
    (List.for_all
       (fun a -> List.for_all (fun b -> subset a (union a b) && subset b (union a b)) all_dirs)
       all_dirs)

let test_dir_merge_lex () =
  let open Dir in
  (* mergedirs semantics (paper Table 2): outer sign wins unless zero *)
  check_bool "merge + - = +" true (equal (merge_lex Pos Neg) Pos);
  check_bool "merge - + = -" true (equal (merge_lex Neg Pos) Neg);
  check_bool "merge 0 d = d" true
    (List.for_all (fun d -> equal (merge_lex Zero d) d) all_dirs);
  check_bool "merge 0+ - = +-" true (equal (merge_lex NonNeg Neg) NonZero);
  check_bool "merge 0+ + = +" true (equal (merge_lex NonNeg Pos) Pos);
  check_bool "merge +- anything = +-" true
    (equal (merge_lex NonZero Any) NonZero);
  check_bool "merge * * = *" true (equal (merge_lex Any Any) Any)

(* Exhaustive check of merge_lex against the defining semantics: the sign
   of outer*N + inner for N large. *)
let test_dir_merge_lex_semantics () =
  let sample d = List.filter (Dir.contains d) [ -2; -1; 0; 1; 2 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let merged = Dir.merge_lex a b in
          (* every realizable combined sign must be contained *)
          List.iter
            (fun xa ->
              List.iter
                (fun xb ->
                  let combined = (xa * 1000) + xb in
                  check_bool
                    (Printf.sprintf "merge %s %s covers %d" (Dir.to_string a)
                       (Dir.to_string b) combined)
                    true
                    (Dir.contains merged combined))
                (sample b))
            (sample a))
        all_dirs)
    all_dirs

(* ------------------------------------------------------------------ *)
(* Depvec                                                              *)
(* ------------------------------------------------------------------ *)

let v = Depvec.of_string

let test_parse_print () =
  Alcotest.(check string) "roundtrip" "(1, -1)" (Depvec.to_string (v "(1, -1)"));
  Alcotest.(check string) "dirs" "(0+, *, +-)" (Depvec.to_string (v "(0+, *, +-)"));
  Alcotest.check dv "dir zero normalizes to distance 0" (v "(0)")
    [| Depvec.dir Dir.Zero |]

let test_lex_negative () =
  check_bool "(1,-1) ok" false (Depvec.may_lex_negative (v "(1, -1)"));
  check_bool "(-1,1) bad" true (Depvec.may_lex_negative (v "(-1, 1)"));
  check_bool "(0,+) ok" false (Depvec.may_lex_negative (v "(0, +)"));
  check_bool "(0,-) bad" true (Depvec.may_lex_negative (v "(0, -)"));
  check_bool "(+,anything) ok" false (Depvec.may_lex_negative (v "(+, *)"));
  check_bool "(*,0) bad" true (Depvec.may_lex_negative (v "(*, 0)"));
  check_bool "(0+,-) bad: prefix can be zero" true
    (Depvec.may_lex_negative (v "(0+, -)"));
  check_bool "(+-, *) bad" true (Depvec.may_lex_negative (v "(+-, *)"));
  check_bool "zero vector ok" false (Depvec.may_lex_negative (v "(0, 0)"))

let test_lex_positive_definite () =
  check_bool "(0,+)" true (Depvec.is_lex_positive_definite (v "(0, +)"));
  check_bool "(0,0+) not definite" false
    (Depvec.is_lex_positive_definite (v "(0, 0+)"));
  check_bool "(1,-1)" true (Depvec.is_lex_positive_definite (v "(1, -1)"))

let test_mem_subset () =
  check_bool "mem" true (Depvec.mem (v "(0+, *)") [| 0; -5 |]);
  check_bool "not mem" false (Depvec.mem (v "(0+, *)") [| -1; 2 |]);
  check_bool "subset" true (Depvec.subset (v "(1, 0)") (v "(+, 0+)"));
  check_bool "not subset" false (Depvec.subset (v "(+, 0)") (v "(1, 0)"))

let test_dedupe () =
  let ds = [ v "(1, 0)"; v "(1, 0)"; v "(+, 0)"; v "(0, 1)" ] in
  let r = Depvec.dedupe ds in
  (* (1,0) is subsumed by (+,0) *)
  Alcotest.(check int) "dedupe size" 2 (List.length r);
  check_bool "keeps (+,0)" true (List.exists (Depvec.equal (v "(+, 0)")) r);
  check_bool "keeps (0,1)" true (List.exists (Depvec.equal (v "(0, 1)")) r)

(* Property: may_lex_negative agrees with brute-force tuple enumeration. *)
let gen_elem =
  QCheck.Gen.(
    oneof
      [
        map Depvec.dist (int_range (-3) 3);
        map Depvec.dir
          (oneofl Dir.[ Zero; Pos; Neg; NonNeg; NonPos; NonZero; Any ]);
      ])

let arb_vec =
  QCheck.make ~print:Depvec.to_string
    QCheck.Gen.(map Array.of_list (list_size (int_range 1 4) gen_elem))

let enumerate_tuples (d : Depvec.t) =
  let range e = List.filter (Depvec.elem_contains e) [ -4; -3; -2; -1; 0; 1; 2; 3; 4 ] in
  Array.fold_right
    (fun e acc ->
      List.concat_map (fun x -> List.map (fun tl -> x :: tl) acc) (range e))
    d [ [] ]

let lex_negative tuple =
  let rec go = function
    | [] -> false
    | 0 :: rest -> go rest
    | x :: _ -> x < 0
  in
  go tuple

let prop_lex_negative_bruteforce =
  QCheck.Test.make ~name:"may_lex_negative = brute force over small tuples"
    ~count:500 arb_vec (fun d ->
      (* restrict to vectors whose distances are within the sampled range *)
      let small =
        Array.for_all
          (function Depvec.Dist n -> abs n <= 4 | Depvec.Dir _ -> true)
          d
      in
      QCheck.assume small;
      Depvec.may_lex_negative d = List.exists lex_negative (enumerate_tuples d))

(* ------------------------------------------------------------------ *)
(* Analyzer                                                            *)
(* ------------------------------------------------------------------ *)

let a_ij = Expr.Load { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] }

let stencil_nest () =
  (* Figure 1(a): 5-point stencil. *)
  let idx di dj =
    Expr.Load
      {
        array = "a";
        index = [ Expr.(add (var "i") (int di)); Expr.(add (var "j") (int dj)) ];
      }
  in
  Nest.make
    [
      Nest.loop "i" (Expr.int 2) Expr.(sub (var "n") (int 1));
      Nest.loop "j" (Expr.int 2) Expr.(sub (var "n") (int 1));
    ]
    [
      Stmt.Store
        ( { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] },
          Expr.(
            div
              (add a_ij (add (idx (-1) 0) (add (idx 0 (-1)) (add (idx 1 0) (idx 0 1)))))
              (int 5)) );
    ]

let test_stencil_vectors () =
  let vs = Analysis.vectors (stencil_nest ()) in
  Alcotest.(check (list string))
    "stencil D = {(0,1),(1,0)}" [ "(0, 1)"; "(1, 0)" ]
    (List.sort compare (List.map Depvec.to_string vs))

let matmul_nest () =
  Nest.make
    [
      Nest.loop "i" Expr.one (Expr.var "n");
      Nest.loop "j" Expr.one (Expr.var "n");
      Nest.loop "k" Expr.one (Expr.var "n");
    ]
    [
      Stmt.Store
        ( { array = "A"; index = [ Expr.var "i"; Expr.var "j" ] },
          Expr.(
            add
              (Load { array = "A"; index = [ var "i"; var "j" ] })
              (mul
                 (Load { array = "B"; index = [ var "i"; var "k" ] })
                 (Load { array = "C"; index = [ var "k"; var "j" ] }))) );
    ]

let test_matmul_vectors () =
  let vs = Analysis.vectors (matmul_nest ()) in
  Alcotest.(check (list string))
    "matmul D = {(0,0,+)}  (paper fig 7 START: (=,=,+))" [ "(0, 0, +)" ]
    (List.map Depvec.to_string vs)

let test_matmul_kinds () =
  let ds = Analysis.dependences (matmul_nest ()) in
  let kinds =
    List.sort_uniq compare (List.map (fun d -> d.Analysis.kind) ds)
  in
  check_bool "flow, anti and output all found" true
    (kinds = [ Analysis.Flow; Analysis.Anti; Analysis.Output ])

let test_banerjee_prunes_far_distance () =
  (* do i = 1, 10: a(i) = a(i+20): distance 20 exceeds the iteration range,
     so there is no dependence. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.int 10) ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i" ] },
            Expr.Load { array = "a"; index = [ Expr.(add (var "i") (int 20)) ] } );
      ]
  in
  Alcotest.(check int) "no vectors" 0 (List.length (Analysis.vectors nest))

let test_symbolic_bounds_keep_distance () =
  (* Same subscripts but symbolic upper bound: the distance-20 anti
     dependence must be reported. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i" ] },
            Expr.Load { array = "a"; index = [ Expr.(add (var "i") (int 20)) ] } );
      ]
  in
  Alcotest.(check (list string))
    "anti distance 20" [ "(20)" ]
    (List.map Depvec.to_string (Analysis.vectors nest))

let test_gcd_prunes () =
  (* a(2i) = a(2i+1): 2d = 1 has no integer solution. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.(mul (int 2) (var "i")) ] },
            Expr.Load
              { array = "a"; index = [ Expr.(add (mul (int 2) (var "i")) (int 1)) ] }
          );
      ]
  in
  Alcotest.(check int) "no vectors" 0 (List.length (Analysis.vectors nest))

let test_coupled_subscript_directions () =
  (* a(i+j) = a(i+j-1): the distance in (i,j) is not unique; direction
     vectors must cover e.g. (0,1) and (1,-1). *)
  let nest =
    Nest.make
      [
        Nest.loop "i" Expr.one (Expr.var "n");
        Nest.loop "j" Expr.one (Expr.var "n");
      ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.(add (var "i") (var "j")) ] },
            Expr.Load
              { array = "a"; index = [ Expr.(sub (add (var "i") (var "j")) (int 1)) ] }
          );
      ]
  in
  let vs = Analysis.vectors nest in
  check_bool "covers (0,1)" true
    (List.exists (fun d -> Depvec.mem d [| 0; 1 |]) vs);
  check_bool "covers (1,-1)" true
    (List.exists (fun d -> Depvec.mem d [| 1; -1 |]) vs);
  check_bool "covers (1, 0)?? flow through same sum" true
    (List.exists (fun d -> Depvec.mem d [| 1; 0 |]) vs);
  (* and no vector admits a lex-negative tuple *)
  check_bool "no lex-negative" true
    (Depvec.set_may_lex_negative vs = None)

let test_nonaffine_subscript_conservative () =
  (* a(rowidx(i)) = ...: non-affine subscript must produce a conservative
     vector covering both directions of the loop. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.Call ("rowidx", [ Expr.var "i" ]) ] },
            Expr.Load { array = "a"; index = [ Expr.Call ("rowidx", [ Expr.var "i" ]) ] }
          );
      ]
  in
  let vs = Analysis.vectors nest in
  check_bool "conservative + direction reported" true
    (List.exists (fun d -> Depvec.mem d [| 3 |]) vs)

let test_no_dep_between_different_arrays () =
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i" ] },
            Expr.Load { array = "b"; index = [ Expr.var "i" ] } );
      ]
  in
  Alcotest.(check int) "independent" 0 (List.length (Analysis.vectors nest))

let test_reversed_loop_dependence () =
  (* do i = n, 1, -1: a(i) = a(i-1): in iteration-number space the
     dependence is the anti direction: a(i-1) is written later. *)
  let nest =
    Nest.make
      [ Nest.loop ~step:(Expr.int (-1)) "i" (Expr.var "n") Expr.one ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i" ] },
            Expr.Load { array = "a"; index = [ Expr.(sub (var "i") (int 1)) ] } );
      ]
  in
  Alcotest.(check (list string))
    "anti dependence distance 1 in iteration space" [ "(1)" ]
    (List.map Depvec.to_string (Analysis.vectors nest))

let test_scalar_dependences () =
  (* x carries a value across iterations: every pair of iterations
     conflicts through x, so the dependence set must serialize the loop. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        Stmt.Set ("x", Expr.Load { array = "a"; index = [ Expr.(sub (var "i") (int 1)) ] });
        Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "x");
      ]
  in
  let vs = Analysis.vectors nest in
  check_bool "covers every positive distance" true
    (List.for_all (fun d -> List.exists (fun v -> Depvec.mem v [| d |]) vs) [ 1; 2; 5 ]);
  (* a scalar read before any write in the same iteration still conflicts
     with other iterations' writes *)
  check_bool "nonempty" true (vs <> [])

let test_scalar_only_same_iteration_is_free () =
  (* x is written then read within one iteration and never crosses
     iterations... but a 0-dim scalar cannot express privatization, so the
     analyzer must still be conservative and serialize. *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        Stmt.Set ("x", Expr.(mul (var "i") (int 2)));
        Stmt.Store ({ array = "a"; index = [ Expr.var "i" ] }, Expr.var "x");
      ]
  in
  let vs = Analysis.vectors nest in
  (* output dependence of x on itself across iterations *)
  check_bool "conservatively serialized" true
    (List.exists (fun v -> Depvec.mem v [| 1 |]) vs)

let test_scalar_independent_body () =
  (* no scalars assigned: reads of parameters like n are not refs *)
  let nest =
    Nest.make
      [ Nest.loop "i" Expr.one (Expr.var "n") ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "i" ] },
            Expr.(add (var "n") (var "i")) );
      ]
  in
  Alcotest.(check int) "no vectors" 0 (List.length (Analysis.vectors nest))

(* Triangular nest soundness: brute-force every dependent pair (by actual
   execution) and require vector coverage in value space. Regression for
   the shared-symbol normalization of non-rectangular bounds. *)
let test_triangular_soundness () =
  let nest =
    Nest.make
      [
        Nest.loop "i" Expr.zero (Expr.int 3);
        Nest.loop "j" (Expr.var "i") (Expr.int 6);
      ]
      [
        Stmt.Store
          ( { array = "a"; index = [ Expr.var "j" ] },
            Expr.add
              (Expr.Load { array = "a"; index = [ Expr.(sub (var "j") (int 1)) ] })
              (Expr.Load { array = "b"; index = [ Expr.var "i" ] }) );
      ]
  in
  let vs = Analysis.vectors nest in
  let env = Itf_exec.Env.create () in
  Itf_exec.Env.declare_array env "a" [ (-2, 10) ];
  Itf_exec.Env.declare_array env "b" [ (-2, 10) ];
  let events = ref [] in
  let cur = ref [||] in
  Itf_exec.Env.set_tracer env
    (Some
       (fun { Itf_exec.Env.array; flat; kind } ->
         events := (!cur, array, flat, kind = Itf_exec.Env.Write) :: !events));
  Itf_exec.Interp.run ~on_iteration:(fun it -> cur := it) env nest;
  let evs = Array.of_list (List.rev !events) in
  let missed = ref 0 in
  Array.iteri
    (fun x (i1, a1, f1, w1) ->
      Array.iteri
        (fun y (i2, a2, f2, w2) ->
          if y > x && a1 = a2 && f1 = f2 && (w1 || w2) && i1 <> i2 then begin
            let d = Array.init 2 (fun k -> i2.(k) - i1.(k)) in
            if not (List.exists (fun v -> Depvec.mem v d) vs) then incr missed
          end)
        evs)
    evs;
  Alcotest.(check int) "no missed dependent pairs" 0 !missed

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_lex_negative_bruteforce ]

let () =
  Alcotest.run "dep"
    [
      ( "dir",
        [
          Alcotest.test_case "contains" `Quick test_dir_contains;
          Alcotest.test_case "reverse" `Quick test_dir_reverse;
          Alcotest.test_case "union/subset" `Quick test_dir_union_subset;
          Alcotest.test_case "merge_lex table" `Quick test_dir_merge_lex;
          Alcotest.test_case "merge_lex semantics" `Quick test_dir_merge_lex_semantics;
        ] );
      ( "depvec",
        [
          Alcotest.test_case "parse/print" `Quick test_parse_print;
          Alcotest.test_case "lex negativity" `Quick test_lex_negative;
          Alcotest.test_case "lex positive definite" `Quick test_lex_positive_definite;
          Alcotest.test_case "membership/subset" `Quick test_mem_subset;
          Alcotest.test_case "dedupe" `Quick test_dedupe;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "stencil (fig 1a)" `Quick test_stencil_vectors;
          Alcotest.test_case "matmul (fig 6)" `Quick test_matmul_vectors;
          Alcotest.test_case "matmul kinds" `Quick test_matmul_kinds;
          Alcotest.test_case "banerjee prunes far distances" `Quick
            test_banerjee_prunes_far_distance;
          Alcotest.test_case "symbolic bounds keep distances" `Quick
            test_symbolic_bounds_keep_distance;
          Alcotest.test_case "gcd prunes" `Quick test_gcd_prunes;
          Alcotest.test_case "coupled subscripts" `Quick
            test_coupled_subscript_directions;
          Alcotest.test_case "non-affine conservative" `Quick
            test_nonaffine_subscript_conservative;
          Alcotest.test_case "different arrays independent" `Quick
            test_no_dep_between_different_arrays;
          Alcotest.test_case "negative-step loop" `Quick test_reversed_loop_dependence;
          Alcotest.test_case "scalar carries values" `Quick test_scalar_dependences;
          Alcotest.test_case "scalar temporary serializes" `Quick
            test_scalar_only_same_iteration_is_free;
          Alcotest.test_case "parameters are not refs" `Quick
            test_scalar_independent_body;
          Alcotest.test_case "triangular nest soundness" `Quick
            test_triangular_soundness;
        ] );
      ("properties", qcheck_tests);
    ]
