(* Tests for the incremental/memoized/multicore search engine (lib/opt):
   it must agree with the reference beam search [Search.best] on the winner,
   be bit-identical across domain counts, and actually avoid work. *)

open Itf_ir
module Search = Itf_opt.Search
module Engine = Itf_opt.Engine
module Sequence = Itf_core.Sequence

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let seq_testable =
  Alcotest.testable Sequence.pp (fun a b -> Sequence.compare a b = 0)

let column_major () =
  Nest.make
    [
      Nest.loop "i" Expr.one (Expr.var "n");
      Nest.loop "j" Expr.one (Expr.var "n");
    ]
    [
      Stmt.Store
        ( { array = "a"; index = [ Expr.var "j"; Expr.var "i" ] },
          Expr.add (Expr.var "i") (Expr.var "j") );
    ]

let stencil () =
  Nest.make
    [
      Nest.loop "i" (Expr.int 2) (Expr.var "n");
      Nest.loop "j" (Expr.int 2) (Expr.var "n");
    ]
    [
      Stmt.Store
        ( { array = "a"; index = [ Expr.var "i"; Expr.var "j" ] },
          Expr.add
            (Expr.Load
               { array = "a"; index = [ Expr.(sub (var "i") (int 1)); Expr.var "j" ] })
            (Expr.Load
               { array = "a"; index = [ Expr.var "i"; Expr.(sub (var "j") (int 1)) ] })
        );
    ]

let cases =
  lazy
    [
      ( "column-major/locality",
        column_major (),
        Search.cache_misses ~params:[ ("n", 24) ] (),
        2 );
      ( "matmul/locality",
        Builders.matmul (),
        Search.cache_misses ~params:[ ("n", 12) ] (),
        2 );
      ( "matmul/parallel",
        Builders.matmul (),
        Search.parallel_time ~procs:4 ~params:[ ("n", 8) ] (),
        2 );
      ( "stencil/parallel",
        stencil (),
        Search.parallel_time ~procs:4 ~params:[ ("n", 8) ] (),
        2 );
    ]

(* The engine is an optimization of [Search.best], not a different search:
   same beam, same moves, same total candidate order, so the best score and
   the winner's canonical sequence must coincide. (The raw spelling may
   differ when a memoized equal-scoring candidate is picked.) *)
let test_agrees_with_reference () =
  List.iter
    (fun (label, nest, objective, steps) ->
      match
        ( Search.best ~beam:4 ~steps nest objective,
          Engine.search ~beam:4 ~steps ~domains:1 nest objective )
      with
      | None, None -> ()
      | Some _, None | None, Some _ ->
        Alcotest.failf "%s: engines disagree on scoreability" label
      | Some old_, Some new_ ->
        Alcotest.(check (float 0.0))
          (label ^ ": same best score") old_.Search.score new_.Engine.score;
        Alcotest.check seq_testable
          (label ^ ": same canonical winner")
          (Sequence.reduce old_.Search.sequence)
          new_.Engine.canonical)
    (Lazy.force cases)

(* Parallel evaluation must not change the answer: order-preserving merge
   plus the total candidate order make any domain count bit-identical. *)
let test_parallel_deterministic () =
  List.iter
    (fun (label, nest, objective, steps) ->
      match
        ( Engine.search ~beam:4 ~steps ~domains:1 nest objective,
          Engine.search ~beam:4 ~steps ~domains:4 nest objective )
      with
      | None, None -> ()
      | Some _, None | None, Some _ ->
        Alcotest.failf "%s: domain count changed scoreability" label
      | Some seq_, Some par_ ->
        Alcotest.check seq_testable
          (label ^ ": same sequence") seq_.Engine.sequence par_.Engine.sequence;
        Alcotest.check seq_testable
          (label ^ ": same canonical") seq_.Engine.canonical
          par_.Engine.canonical;
        Alcotest.(check (float 0.0))
          (label ^ ": same score") seq_.Engine.score par_.Engine.score;
        check_bool (label ^ ": same transformed nest") true
          (compare seq_.Engine.result.Itf_core.Framework.nest
             par_.Engine.result.Itf_core.Framework.nest
          = 0))
    (Lazy.force cases)

(* A two-step search revisits transformations constantly (reversal twice is
   the identity, interchange pairs cancel, ...): the canonical-sequence
   cache must be hit and the incremental prefix states must save template
   applications relative to the from-root replays of [Search.best]. *)
let test_caches_and_savings () =
  let nest = column_major () in
  let objective = Search.cache_misses ~params:[ ("n", 24) ] () in
  let old_ =
    match Search.best ~beam:4 ~steps:2 nest objective with
    | Some o -> o
    | None -> Alcotest.fail "reference search returned nothing"
  in
  let new_ =
    match Engine.search ~beam:4 ~steps:2 ~domains:1 nest objective with
    | Some o -> o
    | None -> Alcotest.fail "engine returned nothing"
  in
  let s = new_.Engine.stats in
  check_bool "legality cache hit" true (s.Itf_opt.Stats.legality_cache_hits > 0);
  check_bool "score cache hit" true (s.Itf_opt.Stats.score_cache_hits > 0);
  check_bool "saved template applications" true
    (s.Itf_opt.Stats.template_applications_saved > 0);
  check_bool
    (Printf.sprintf "fewer template applications (%d < %d)"
       s.Itf_opt.Stats.template_applications old_.Search.checked_templates)
    true
    (s.Itf_opt.Stats.template_applications < old_.Search.checked_templates);
  check_bool "explored something" true (s.Itf_opt.Stats.nodes_explored > 10)

(* The domain pool is order-preserving and exception-safe. *)
let test_pool_map () =
  let pool = Itf_opt.Pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Itf_opt.Pool.shutdown pool)
    (fun () ->
      let input = Array.init 100 Fun.id in
      let out = Itf_opt.Pool.map pool (fun x -> x * x) input in
      Alcotest.(check (array int))
        "order preserved"
        (Array.map (fun x -> x * x) input)
        out;
      check_int "empty input" 0 (Array.length (Itf_opt.Pool.map pool Fun.id [||]));
      match Itf_opt.Pool.map pool (fun x -> if x = 5 then failwith "boom" else x) input with
      | _ -> Alcotest.fail "exception not propagated"
      | exception Failure msg -> Alcotest.(check string) "exception" "boom" msg)

let () =
  Alcotest.run "search_engine"
    [
      ( "engine",
        [
          Alcotest.test_case "agrees with reference search" `Quick
            test_agrees_with_reference;
          Alcotest.test_case "parallel is deterministic" `Quick
            test_parallel_deterministic;
          Alcotest.test_case "caches hit, work saved" `Quick
            test_caches_and_savings;
          Alcotest.test_case "pool map" `Quick test_pool_map;
        ] );
    ]
