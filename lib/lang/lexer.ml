type token =
  | INT of int
  | IDENT of string
  | DO
  | PARDO
  | ENDDO
  | IF
  | ENDIF
  | FUNCTION
  | MIN
  | MAX
  | MOD
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | NEWLINE
  | EOF

exception Error of { line : int; message : string }

let keyword = function
  | "do" -> Some DO
  | "pardo" -> Some PARDO
  | "enddo" -> Some ENDDO
  | "if" -> Some IF
  | "endif" -> Some ENDIF
  | "function" -> Some FUNCTION
  | "min" -> Some MIN
  | "max" -> Some MAX
  | "mod" -> Some MOD
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let tokens src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let emit t = out := (t, !line) :: !out in
  let pos = ref 0 in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      (match !out with (NEWLINE, _) :: _ | [] -> () | _ -> emit NEWLINE);
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '#' then
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      emit (INT (int_of_string (String.sub src start (!pos - start))))
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      emit (match keyword word with Some t -> t | None -> IDENT word)
    end
    else begin
      let two = !pos + 1 < n in
      (match c with
      | '+' -> emit PLUS
      | '-' -> emit MINUS
      | '*' -> emit STAR
      | '/' -> emit SLASH
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | ',' -> emit COMMA
      | '<' when two && src.[!pos + 1] = '=' ->
        emit LE;
        incr pos
      | '<' -> emit LT
      | '>' when two && src.[!pos + 1] = '=' ->
        emit GE;
        incr pos
      | '>' -> emit GT
      | '=' when two && src.[!pos + 1] = '=' ->
        emit EQEQ;
        incr pos
      | '=' -> emit EQUALS
      | '!' when two && src.[!pos + 1] = '=' ->
        emit NEQ;
        incr pos
      | c ->
        raise
          (Error
             { line = !line; message = Printf.sprintf "unexpected character %C" c }));
      incr pos
    end
  done;
  (match !out with (NEWLINE, _) :: _ | [] -> () | _ -> emit NEWLINE);
  emit EOF;
  List.rev !out

let pp_token ppf = function
  | INT n -> Format.fprintf ppf "%d" n
  | IDENT s -> Format.fprintf ppf "%s" s
  | DO -> Format.fprintf ppf "do"
  | PARDO -> Format.fprintf ppf "pardo"
  | ENDDO -> Format.fprintf ppf "enddo"
  | IF -> Format.fprintf ppf "if"
  | ENDIF -> Format.fprintf ppf "endif"
  | FUNCTION -> Format.fprintf ppf "function"
  | MIN -> Format.fprintf ppf "min"
  | MAX -> Format.fprintf ppf "max"
  | MOD -> Format.fprintf ppf "mod"
  | PLUS -> Format.fprintf ppf "+"
  | MINUS -> Format.fprintf ppf "-"
  | STAR -> Format.fprintf ppf "*"
  | SLASH -> Format.fprintf ppf "/"
  | LPAREN -> Format.fprintf ppf "("
  | RPAREN -> Format.fprintf ppf ")"
  | COMMA -> Format.fprintf ppf ","
  | EQUALS -> Format.fprintf ppf "="
  | LT -> Format.fprintf ppf "<"
  | LE -> Format.fprintf ppf "<="
  | GT -> Format.fprintf ppf ">"
  | GE -> Format.fprintf ppf ">="
  | EQEQ -> Format.fprintf ppf "=="
  | NEQ -> Format.fprintf ppf "!="
  | NEWLINE -> Format.fprintf ppf "<newline>"
  | EOF -> Format.fprintf ppf "<eof>"
