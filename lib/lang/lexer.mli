(** Hand-written lexer for the small loop language.

    The syntax is the paper's: [do]/[pardo] loop headers with comma-
    separated bounds, [enddo], Fortran-style array references [a(i, j)],
    infix [+ - * /] (floor division), infix [mod], [min]/[max] calls, and
    [#] line comments. Newlines are significant (statement separators). *)

type token =
  | INT of int
  | IDENT of string
  | DO
  | PARDO
  | ENDDO
  | IF
  | ENDIF
  | FUNCTION
  | MIN
  | MAX
  | MOD
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LPAREN
  | RPAREN
  | COMMA
  | EQUALS
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | NEWLINE
  | EOF

exception Error of { line : int; message : string }

val tokens : string -> (token * int) list
(** Token stream with line numbers; consecutive NEWLINEs are collapsed and
    a final EOF is appended. @raise Error on an unexpected character. *)

val pp_token : Format.formatter -> token -> unit
