module Template = Itf_core.Template

exception Error of { line : int; message : string }

let fail line fmt = Format.kasprintf (fun message -> raise (Error { line; message })) fmt

let split_words s =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) s)
  |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with
  | Some k -> String.sub s 0 k
  | None -> s

let int_arg line w =
  match int_of_string_opt w with
  | Some n -> n
  | None -> fail line "expected an integer, found %S" w

let expr_arg line w =
  match int_of_string_opt w with
  | Some n -> Itf_ir.Expr.int n
  | None -> (
    try Parser.parse_expr w
    with Parser.Error { message; _ } -> fail line "bad size expression %S: %s" w message)

let command ~n line words =
  match words with
  | [ "interchange"; a; b ] ->
    Template.interchange ~n (int_arg line a) (int_arg line b)
  | [ "reversal"; k ] -> Template.reversal ~n (int_arg line k)
  | "permute" :: ps ->
    let perm = Array.of_list (List.map (int_arg line) ps) in
    if Array.length perm <> n then
      fail line "permute needs %d positions, got %d" n (Array.length perm);
    Template.reverse_permute ~rev:(Array.make n false) ~perm
  | "revperm" :: args ->
    (* General Reverse_permute: n reversal flags (0/1) then n positions. *)
    let args = Array.of_list (List.map (int_arg line) args) in
    if Array.length args <> 2 * n then
      fail line "revperm needs %d flags + %d positions, got %d entries" n n
        (Array.length args);
    let rev = Array.init n (fun k -> args.(k) <> 0) in
    let perm = Array.init n (fun k -> args.(n + k)) in
    Template.reverse_permute ~rev ~perm
  | [ "skew"; src; dst; factor ] ->
    Template.skew ~n ~src:(int_arg line src) ~dst:(int_arg line dst)
      ~factor:(int_arg line factor)
  | "unimodular" :: entries ->
    let es = List.map (int_arg line) entries in
    if List.length es <> n * n then
      fail line "unimodular needs %d entries for a %d-deep nest" (n * n) n;
    let a = Array.of_list es in
    Template.unimodular (Itf_mat.Intmat.make n n (fun i j -> a.((i * n) + j)))
  | "parallelize" :: ks when ks <> [] ->
    let flags = Array.make n false in
    List.iter
      (fun k ->
        let k = int_arg line k in
        if k < 0 || k >= n then fail line "parallelize: loop %d out of range" k;
        flags.(k) <- true)
      ks;
    Template.parallelize flags
  | "block" :: i :: j :: sizes ->
    let i = int_arg line i and j = int_arg line j in
    if List.length sizes <> j - i + 1 then
      fail line "block %d %d needs %d sizes" i j (j - i + 1);
    Template.block ~n ~i ~j ~bsize:(Array.of_list (List.map (expr_arg line) sizes))
  | [ "coalesce"; i; j ] ->
    Template.coalesce ~n ~i:(int_arg line i) ~j:(int_arg line j)
  | "interleave" :: i :: j :: sizes ->
    let i = int_arg line i and j = int_arg line j in
    if List.length sizes <> j - i + 1 then
      fail line "interleave %d %d needs %d sizes" i j (j - i + 1);
    Template.interleave ~n ~i ~j
      ~isize:(Array.of_list (List.map (expr_arg line) sizes))
  | cmd :: _ -> fail line "unknown or malformed command %S" cmd
  | [] -> assert false

let parse ~depth src =
  let lines = String.split_on_char '\n' src in
  let _, rev_seq =
    List.fold_left
      (fun (lineno, (n, acc)) raw ->
        let words = split_words (strip_comment raw) in
        if words = [] then (lineno + 1, (n, acc))
        else
          let t =
            try command ~n lineno words
            with Invalid_argument message -> raise (Error { line = lineno; message })
          in
          (lineno + 1, (Template.output_depth t, t :: acc)))
      (1, (depth, []))
      lines
    |> fun (lineno, (n, acc)) -> ((lineno, n), acc)
  in
  List.rev rev_seq

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

(* Inverse of [parse]: a textual script that reparses to the same
   sequence. Every template has an exact spelling ([revperm] carries both
   the reversal mask and the permutation), so reproducers round-trip. *)
let of_template (t : Template.t) =
  let ints xs = String.concat " " (List.map string_of_int xs) in
  match t with
  | Template.Unimodular { n; m } ->
    "unimodular "
    ^ ints
        (List.concat_map Fun.id
           (List.init n (fun i ->
                List.init n (fun j -> Itf_mat.Intmat.get m i j))))
  | Template.Reverse_permute { n; rev; perm } ->
    if Array.exists Fun.id rev then
      "revperm "
      ^ ints
          (List.init n (fun k -> if rev.(k) then 1 else 0)
          @ Array.to_list perm)
    else "permute " ^ ints (Array.to_list perm)
  | Template.Parallelize { n; parflag } ->
    let ks =
      List.filter (fun k -> parflag.(k)) (List.init n Fun.id)
    in
    if ks = [] then
      invalid_arg "Script.of_template: identity parallelize has no spelling"
    else "parallelize " ^ ints ks
  | Template.Block { i; j; bsize; _ } ->
    Printf.sprintf "block %d %d %s" i j
      (String.concat " "
         (List.map Itf_ir.Expr.to_string (Array.to_list bsize)))
  | Template.Coalesce { i; j; _ } -> Printf.sprintf "coalesce %d %d" i j
  | Template.Interleave { i; j; isize; _ } ->
    Printf.sprintf "interleave %d %d %s" i j
      (String.concat " "
         (List.map Itf_ir.Expr.to_string (Array.to_list isize)))

let of_sequence seq = String.concat "\n" (List.map of_template seq)
