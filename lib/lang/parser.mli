(** Recursive-descent parser for the loop language.

    A program is a perfect loop nest, optionally preceded by [function]
    directives naming loop-invariant access functions (the sparse-matrix
    example of paper Figure 4(c) declares [colstr] and [rowidx] this way);
    every other applied identifier is an array reference:

    {v
      function colstr
      function rowidx
      do i = 1, n
        do j = 1, n
          do k = colstr(j), colstr(j + 1) - 1
            a(i, j) = a(i, j) + b(i, rowidx(k)) * c(k)
          enddo
        enddo
      enddo
    v}

    ["abs"] and ["sgn"] are always treated as functions. *)

type program = {
  functions : string list;  (** declared access functions *)
  nest : Itf_ir.Nest.t;
}

exception Error of { line : int; message : string }

val parse : string -> program
(** @raise Error on syntax errors, non-perfect nesting, or statements
    outside the innermost loop. Lexer errors are re-raised as [Error]. *)

val parse_nest : string -> Itf_ir.Nest.t
(** Just the nest of [parse]. *)

val parse_expr : string -> Itf_ir.Expr.t
(** Parse a single expression (used by the transformation-script parser
    for symbolic block sizes). Applied identifiers become array loads. *)
