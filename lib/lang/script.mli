(** Parser for transformation scripts — textual template sequences for the
    [loopt] command-line driver.

    One instantiation per line, [#] comments allowed; loop positions are
    0-based (outermost = 0). Sizes may be integers or symbolic expressions:

    {v
      # Appendix A pipeline
      permute 2 0 1          # move loop k to position perm(k)
      block 0 2 bj bk bi
      parallelize 0 2
      interchange 1 2
      coalesce 0 1
    v}

    Commands:
    - [interchange A B]
    - [reversal K]
    - [permute P0 P1 ... Pn-1]  (loop k moves to position Pk)
    - [revperm B0 ... Bn-1 P0 ... Pn-1]  (reversal flags, then positions)
    - [skew SRC DST FACTOR]
    - [unimodular R00 R01 ... ]  (n*n row-major integers)
    - [parallelize K1 [K2 ...]]
    - [block I J S_I ... S_J]
    - [coalesce I J]
    - [interleave I J S_I ... S_J]

    Because templates change the nest depth, commands are checked and
    instantiated left to right starting from the given input [depth]. *)

exception Error of { line : int; message : string }

val parse : depth:int -> string -> Itf_core.Sequence.t
(** @raise Error on unknown commands, arity mismatches, or a sequence that
    does not chain from [depth]. *)

val of_template : Itf_core.Template.t -> string
(** One script line that reparses to the template.
    @raise Invalid_argument on an identity [Parallelize] (the script
    grammar has no spelling for it). *)

val of_sequence : Itf_core.Sequence.t -> string
(** A textual script (one command per line) such that
    [parse ~depth (of_sequence seq) = seq] — the writer behind the fuzz
    harness's replayable reproducers. *)
