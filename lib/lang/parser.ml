open Itf_ir

type program = { functions : string list; nest : Nest.t }

exception Error of { line : int; message : string }

let fail line fmt = Format.kasprintf (fun message -> raise (Error { line; message })) fmt

(* Mutable token cursor. *)
type state = { mutable toks : (Lexer.token * int) list }

let peek st = match st.toks with [] -> (Lexer.EOF, 0) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  let t, line = peek st in
  if t = tok then advance st else fail line "expected %s, found %a" what Lexer.pp_token t

let skip_newlines st =
  while fst (peek st) = Lexer.NEWLINE do
    advance st
  done

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expression st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue_ = ref true in
  while !continue_ do
    match fst (peek st) with
    | Lexer.PLUS ->
      advance st;
      lhs := Expr.Add (!lhs, parse_multiplicative st)
    | Lexer.MINUS ->
      advance st;
      lhs := Expr.Sub (!lhs, parse_multiplicative st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match fst (peek st) with
    | Lexer.STAR ->
      advance st;
      lhs := Expr.Mul (!lhs, parse_unary st)
    | Lexer.SLASH ->
      advance st;
      lhs := Expr.Div (!lhs, parse_unary st)
    | Lexer.MOD ->
      advance st;
      lhs := Expr.Mod (!lhs, parse_unary st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match fst (peek st) with
  | Lexer.MINUS ->
    advance st;
    Expr.Neg (parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  let t, line = peek st in
  match t with
  | Lexer.INT n ->
    advance st;
    Expr.Int n
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expression st in
    expect st Lexer.RPAREN ")";
    e
  | Lexer.MIN | Lexer.MAX ->
    advance st;
    expect st Lexer.LPAREN "( after min/max";
    let args = parse_args st in
    expect st Lexer.RPAREN ")";
    if args = [] then fail line "min/max need at least one argument"
    else if t = Lexer.MIN then Expr.min_list args
    else Expr.max_list args
  | Lexer.IDENT name -> (
    advance st;
    match fst (peek st) with
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      expect st Lexer.RPAREN ")";
      if args = [] then fail line "empty subscript list for %s" name;
      (* Resolved to Call later if [name] is a declared function. *)
      Expr.Load { array = name; index = args }
    | _ -> Expr.Var name)
  | t -> fail line "expected an expression, found %a" Lexer.pp_token t

and parse_args st =
  let first = parse_expression st in
  let rec more acc =
    match fst (peek st) with
    | Lexer.COMMA ->
      advance st;
      more (parse_expression st :: acc)
    | _ -> List.rev acc
  in
  more [ first ]

(* ------------------------------------------------------------------ *)
(* Function resolution                                                 *)
(* ------------------------------------------------------------------ *)

let rec resolve funcs (e : Expr.t) =
  match e with
  | Int _ | Var _ -> e
  | Neg a -> Expr.Neg (resolve funcs a)
  | Add (a, b) -> Expr.Add (resolve funcs a, resolve funcs b)
  | Sub (a, b) -> Expr.Sub (resolve funcs a, resolve funcs b)
  | Mul (a, b) -> Expr.Mul (resolve funcs a, resolve funcs b)
  | Div (a, b) -> Expr.Div (resolve funcs a, resolve funcs b)
  | Mod (a, b) -> Expr.Mod (resolve funcs a, resolve funcs b)
  | Min (a, b) -> Expr.Min (resolve funcs a, resolve funcs b)
  | Max (a, b) -> Expr.Max (resolve funcs a, resolve funcs b)
  | Load { array; index } ->
    let index = List.map (resolve funcs) index in
    if List.mem array funcs then Expr.Call (array, index)
    else Expr.Load { array; index }
  | Call (f, args) -> Expr.Call (f, List.map (resolve funcs) args)

(* ------------------------------------------------------------------ *)
(* Statements and loops                                                *)
(* ------------------------------------------------------------------ *)

let rec parse_statement st =
  let t, line = peek st in
  match t with
  | Lexer.IF ->
    advance st;
    let lhs = parse_expression st in
    let rel =
      match peek st with
      | Lexer.LT, _ -> advance st; Stmt.Lt
      | Lexer.LE, _ -> advance st; Stmt.Le
      | Lexer.GT, _ -> advance st; Stmt.Gt
      | Lexer.GE, _ -> advance st; Stmt.Ge
      | Lexer.EQEQ, _ -> advance st; Stmt.Eq
      | Lexer.NEQ, _ -> advance st; Stmt.Ne
      | t, line -> fail line "expected a relation, found %a" Lexer.pp_token t
    in
    let rhs = parse_expression st in
    expect st Lexer.NEWLINE "end of if header";
    skip_newlines st;
    let body = ref [] in
    let continue_ = ref true in
    while !continue_ do
      skip_newlines st;
      match fst (peek st) with
      | Lexer.ENDIF | Lexer.EOF -> continue_ := false
      | _ -> body := parse_statement st :: !body
    done;
    expect st Lexer.ENDIF "endif";
    expect st Lexer.NEWLINE "end of line";
    if !body = [] then fail line "empty if body";
    Stmt.Guard { lhs; rel; rhs; body = List.rev !body }
  | Lexer.IDENT name -> (
    advance st;
    match fst (peek st) with
    | Lexer.LPAREN ->
      advance st;
      let index = parse_args st in
      expect st Lexer.RPAREN ")";
      expect st Lexer.EQUALS "=";
      let rhs = parse_expression st in
      expect st Lexer.NEWLINE "end of line";
      Stmt.Store ({ array = name; index }, rhs)
    | Lexer.EQUALS ->
      advance st;
      let rhs = parse_expression st in
      expect st Lexer.NEWLINE "end of line";
      Stmt.Set (name, rhs)
    | t -> fail line "expected ( or = after %s, found %a" name Lexer.pp_token t)
  | t -> fail line "expected a statement, found %a" Lexer.pp_token t

let rec parse_loop st =
  let kind_tok, line = peek st in
  let kind =
    match kind_tok with
    | Lexer.DO -> Nest.Do
    | Lexer.PARDO -> Nest.Pardo
    | t -> fail line "expected do or pardo, found %a" Lexer.pp_token t
  in
  advance st;
  let var =
    match peek st with
    | Lexer.IDENT v, _ ->
      advance st;
      v
    | t, line -> fail line "expected a loop variable, found %a" Lexer.pp_token t
  in
  expect st Lexer.EQUALS "=";
  let lo = parse_expression st in
  expect st Lexer.COMMA ", between bounds";
  let hi = parse_expression st in
  let step =
    match fst (peek st) with
    | Lexer.COMMA ->
      advance st;
      parse_expression st
    | _ -> Expr.one
  in
  expect st Lexer.NEWLINE "end of loop header";
  skip_newlines st;
  (* Either a nested loop (perfect nesting) or the innermost body. *)
  let loops, body =
    match fst (peek st) with
    | Lexer.DO | Lexer.PARDO ->
      let inner_loops, body = parse_loop st in
      (inner_loops, body)
    | _ ->
      let stmts = ref [] in
      let continue_ = ref true in
      while !continue_ do
        skip_newlines st;
        match fst (peek st) with
        | Lexer.ENDDO | Lexer.EOF -> continue_ := false
        | _ -> stmts := parse_statement st :: !stmts
      done;
      ([], List.rev !stmts)
  in
  skip_newlines st;
  expect st Lexer.ENDDO "enddo";
  (match fst (peek st) with Lexer.NEWLINE -> advance st | _ -> ());
  ({ Nest.var; lo; hi; step; kind } :: loops, body)

let parse src =
  let st =
    try { toks = Lexer.tokens src }
    with Lexer.Error { line; message } -> raise (Error { line; message })
  in
  skip_newlines st;
  let functions = ref [ "abs"; "sgn" ] in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.FUNCTION, line ->
      advance st;
      (match peek st with
      | Lexer.IDENT f, _ ->
        advance st;
        functions := f :: !functions;
        expect st Lexer.NEWLINE "end of line";
        skip_newlines st
      | t, _ -> fail line "expected a function name, found %a" Lexer.pp_token t)
    | _ -> continue_ := false
  done;
  let loops, body = parse_loop st in
  skip_newlines st;
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, line -> fail line "trailing input: %a" Lexer.pp_token t);
  let funcs = !functions in
  let fix_loop (l : Nest.loop) =
    {
      l with
      Nest.lo = resolve funcs l.Nest.lo;
      hi = resolve funcs l.Nest.hi;
      step = resolve funcs l.Nest.step;
    }
  in
  let rec fix_stmt = function
    | Stmt.Store ({ Expr.array; index }, rhs) ->
      if List.mem array funcs then
        raise
          (Error { line = 0; message = "cannot assign to function " ^ array })
      else
        Stmt.Store
          ( { Expr.array; index = List.map (resolve funcs) index },
            resolve funcs rhs )
    | Stmt.Set (v, rhs) -> Stmt.Set (v, resolve funcs rhs)
    | Stmt.Guard { lhs; rel; rhs; body } ->
      Stmt.Guard
        {
          lhs = resolve funcs lhs;
          rel;
          rhs = resolve funcs rhs;
          body = List.map fix_stmt body;
        }
  in
  let nest =
    try Nest.make (List.map fix_loop loops) (List.map fix_stmt body)
    with Invalid_argument message -> raise (Error { line = 0; message })
  in
  { functions = List.filter (fun f -> f <> "abs" && f <> "sgn") funcs; nest }

let parse_nest src = (parse src).nest

let parse_expr src =
  let st =
    try { toks = Lexer.tokens src }
    with Lexer.Error { line; message } -> raise (Error { line; message })
  in
  skip_newlines st;
  let e = parse_expression st in
  skip_newlines st;
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, line -> fail line "trailing input after expression: %a" Lexer.pp_token t);
  e
