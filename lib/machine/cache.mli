(** Set-associative LRU cache simulator.

    Used by the locality experiments: the paper motivates iteration
    reordering partly by data locality ("used extensively by restructuring
    compilers for optimizing ... data locality", Section 1), so we measure
    miss counts of original vs. transformed nests on a simulated cache
    instead of 1992 hardware. Addresses are plain byte addresses; the
    replacement policy is true LRU per set; writes allocate like reads. *)

type config = {
  size_bytes : int;  (** total capacity *)
  line_bytes : int;  (** must divide [size_bytes] *)
  assoc : int;  (** ways; [size_bytes / line_bytes / assoc] sets *)
}

val direct_mapped : size_bytes:int -> line_bytes:int -> config
val fully_associative : size_bytes:int -> line_bytes:int -> config

type stats = { accesses : int; hits : int; misses : int }

val miss_rate : stats -> float

type t

val create : config -> t
(** @raise Invalid_argument on inconsistent geometry. *)

val config_of : t -> config
(** The geometry the cache was created with. *)

val access : t -> int -> bool
(** [access t addr] touches the byte address, returns [true] on a hit. *)

val stats : t -> stats
val reset : t -> unit
