(** A simple parallel machine model for [pardo] loops.

    Iterations of a [pardo] loop are distributed round-robin over [procs]
    processors; the loop's simulated time is the maximum per-processor sum
    plus a per-loop spawn/join overhead. Sequential loops sum their
    iterations' times. The innermost body costs
    [body_cost = ops + accesses] time units per execution, computed from
    the statement list. Bounds are evaluated concretely, so triangular
    nests get realistic load imbalance. *)

open Itf_ir

val body_cost : Nest.t -> int
(** Unit cost of one innermost iteration (operation and access count of
    inits + body). *)

val time :
  ?spawn_overhead:float -> procs:int -> Itf_exec.Env.t -> Nest.t -> float
(** Simulated execution time. The environment provides symbolic parameter
    values and array declarations; the nest is {e not} executed (only its
    iteration counts matter), but loop bounds are evaluated, so the
    environment must define the parameters they mention.
    @raise Invalid_argument if [procs < 1]. *)

val time_compiled :
  ?spawn_overhead:float -> procs:int -> Itf_exec.Env.t -> Nest.t -> float
(** As {!time}, but loop bounds are evaluated through
    {!Itf_exec.Compile}'s slot frame instead of the interpreter — the
    float accumulation order is identical, so the result equals {!time}
    bit for bit. Unlike {!time}, the nest's arrays must be declared in the
    environment (compilation resolves every access site even though bodies
    are not executed). *)

val speedup :
  ?spawn_overhead:float -> procs:int -> Itf_exec.Env.t -> Nest.t -> float
(** [time] at 1 processor divided by [time] at [procs]. *)
