open Itf_ir

let rec expr_ops (e : Expr.t) =
  match e with
  | Int _ | Var _ -> 0
  | Neg a -> 1 + expr_ops a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Min (a, b) | Max (a, b) ->
    1 + expr_ops a + expr_ops b
  | Load { index; _ } -> 1 + List.fold_left (fun acc e -> acc + expr_ops e) 0 index
  | Call (_, args) -> 1 + List.fold_left (fun acc e -> acc + expr_ops e) 0 args

let rec stmt_ops = function
  | Stmt.Store ({ index; _ }, rhs) ->
    1 + expr_ops rhs + List.fold_left (fun acc e -> acc + expr_ops e) 0 index
  | Stmt.Set (_, rhs) -> 1 + expr_ops rhs
  | Stmt.Guard { lhs; rhs; body; _ } ->
    (* worst case: the guard holds and the whole body runs *)
    1 + expr_ops lhs + expr_ops rhs
    + List.fold_left (fun acc s -> acc + stmt_ops s) 0 body

let body_cost (nest : Nest.t) =
  max 1 (List.fold_left (fun acc s -> acc + stmt_ops s) 0 (nest.Nest.inits @ nest.Nest.body))

(* Like {!Memsim.traced}: span on the caller's ambient tracer. *)
let traced f =
  let tr = Itf_obs.Tracer.ambient () in
  Itf_obs.Tracer.span tr "parsim.run" (fun () ->
      let t = f () in
      Itf_obs.Tracer.add_attrs tr [ ("time", Itf_obs.Tracer.Float t) ];
      t)

let time ?(spawn_overhead = 2.0) ~procs env (nest : Nest.t) =
  if procs < 1 then invalid_arg "Parallel.time: procs < 1";
  traced @@ fun () ->
  let unit_cost = float (body_cost nest) in
  let rec go = function
    | [] -> unit_cost
    | (l : Nest.loop) :: rest ->
      let values = Itf_exec.Interp.iteration_values env l in
      let times =
        Array.map
          (fun x ->
            Itf_exec.Env.set_scalar env l.Nest.var x;
            go rest)
          values
      in
      (match l.Nest.kind with
      | Nest.Do -> Array.fold_left ( +. ) 0. times
      | Nest.Pardo ->
        (* Round-robin assignment: processor p runs iterations p, p+P... *)
        let proc_time = Array.make procs 0. in
        Array.iteri
          (fun k t -> proc_time.(k mod procs) <- proc_time.(k mod procs) +. t)
          times;
        Array.fold_left max 0. proc_time
        +. if Array.length values > 0 then spawn_overhead else 0.)
  in
  go nest.Nest.loops

(* Same cost model as [time], but loop bounds are evaluated by compiled
   closures over a slot frame instead of interpreting expressions against
   hashtable-backed scalars per iteration. The accumulation order matches
   [time] operation for operation, so the returned float is identical. *)
let time_compiled ?(spawn_overhead = 2.0) ~procs env (nest : Nest.t) =
  if procs < 1 then invalid_arg "Parallel.time: procs < 1";
  traced @@ fun () ->
  let unit_cost = float (body_cost nest) in
  let c = Itf_exec.Compile.compile env nest in
  Itf_exec.Compile.sync c;
  let depth = Itf_exec.Compile.depth c in
  let rec go level =
    if level = depth then unit_cost
    else begin
      let lo, step, count = Itf_exec.Compile.loop_bounds c level in
      match Itf_exec.Compile.loop_kind c level with
      | Nest.Do ->
        let total = ref 0. in
        for k = 0 to count - 1 do
          Itf_exec.Compile.set_loop_var c level (lo + (k * step));
          total := !total +. go (level + 1)
        done;
        !total
      | Nest.Pardo ->
        let proc_time = Array.make procs 0. in
        for k = 0 to count - 1 do
          Itf_exec.Compile.set_loop_var c level (lo + (k * step));
          let p = k mod procs in
          proc_time.(p) <- proc_time.(p) +. go (level + 1)
        done;
        Array.fold_left max 0. proc_time
        +. if count > 0 then spawn_overhead else 0.
    end
  in
  go 0

let speedup ?spawn_overhead ~procs env nest =
  let t1 = time ?spawn_overhead ~procs:1 env nest in
  let tp = time ?spawn_overhead ~procs env nest in
  if tp = 0. then 1. else t1 /. tp
