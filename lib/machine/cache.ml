type config = { size_bytes : int; line_bytes : int; assoc : int }

let direct_mapped ~size_bytes ~line_bytes = { size_bytes; line_bytes; assoc = 1 }

let fully_associative ~size_bytes ~line_bytes =
  { size_bytes; line_bytes; assoc = size_bytes / line_bytes }

type stats = { accesses : int; hits : int; misses : int }

let miss_rate s = if s.accesses = 0 then 0. else float s.misses /. float s.accesses

type t = {
  config : config;
  sets : int;
  tags : int array;  (** sets x assoc, -1 = invalid *)
  ages : int array;  (** LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
}

let create config =
  if config.line_bytes <= 0 || config.size_bytes <= 0 || config.assoc <= 0 then
    invalid_arg "Cache.create: non-positive geometry";
  if config.size_bytes mod (config.line_bytes * config.assoc) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of line * assoc";
  let sets = config.size_bytes / config.line_bytes / config.assoc in
  {
    config;
    sets;
    tags = Array.make (sets * config.assoc) (-1);
    ages = Array.make (sets * config.assoc) 0;
    clock = 0;
    accesses = 0;
    hits = 0;
  }

let config_of t = t.config

let access t addr =
  let line = addr / t.config.line_bytes in
  let set = ((line mod t.sets) + t.sets) mod t.sets in
  let base = set * t.config.assoc in
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let hit_way = ref (-1) in
  for w = 0 to t.config.assoc - 1 do
    if t.tags.(base + w) = line then hit_way := w
  done;
  if !hit_way >= 0 then begin
    t.hits <- t.hits + 1;
    t.ages.(base + !hit_way) <- t.clock;
    true
  end
  else begin
    (* Evict the least recently used way (empty ways have age 0). *)
    let victim = ref 0 in
    for w = 1 to t.config.assoc - 1 do
      if t.ages.(base + w) < t.ages.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- line;
    t.ages.(base + !victim) <- t.clock;
    false
  end

let stats t = { accesses = t.accesses; hits = t.hits; misses = t.accesses - t.hits }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0
