open Itf_ir

type result = { cache : Cache.stats; cycles : int }

let run ?(elem_bytes = 8) ?(hit_cost = 1) ?(miss_penalty = 30) config env nest =
  let cache = Cache.create config in
  (* Assign line-aligned base addresses to every array of the nest. *)
  let align n a = (n + a - 1) / a * a in
  let bases = Hashtbl.create 8 in
  let next = ref 0 in
  let base_of array =
    match Hashtbl.find_opt bases array with
    | Some b -> b
    | None ->
      let b = !next in
      Hashtbl.add bases array b;
      next :=
        align (b + (Itf_exec.Env.array_size env array * elem_bytes)) config.Cache.line_bytes;
      b
  in
  List.iter
    (fun a -> ignore (base_of a))
    (List.sort_uniq compare (Nest.arrays_read nest @ Nest.arrays_written nest));
  Itf_exec.Env.set_tracer env
    (Some
       (fun { Itf_exec.Env.array; flat; _ } ->
         ignore (Cache.access cache (base_of array + (flat * elem_bytes)))));
  Fun.protect
    ~finally:(fun () -> Itf_exec.Env.set_tracer env None)
    (fun () -> Itf_exec.Interp.run env nest);
  let stats = Cache.stats cache in
  {
    cache = stats;
    cycles = (stats.Cache.accesses * hit_cost) + (stats.Cache.misses * miss_penalty);
  }
