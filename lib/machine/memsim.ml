open Itf_ir

type result = { cache : Cache.stats; cycles : int }

(* Assign line-aligned base addresses to every array of the nest, in
   sorted name order (both backends must lay arrays out identically for
   their stats to be comparable). *)
let layout ~elem_bytes config env nest =
  let align n a = (n + a - 1) / a * a in
  let bases = Hashtbl.create 8 in
  let next = ref 0 in
  List.iter
    (fun array ->
      if not (Hashtbl.mem bases array) then begin
        let b = !next in
        Hashtbl.add bases array b;
        next :=
          align
            (b + (Itf_exec.Env.array_size env array * elem_bytes))
            config.Cache.line_bytes
      end)
    (List.sort_uniq String.compare
       (Nest.arrays_read nest @ Nest.arrays_written nest));
  bases

let base_of bases array =
  match Hashtbl.find_opt bases array with
  | Some b -> b
  | None -> invalid_arg ("Memsim: array not in layout: " ^ array)

(* The cache's tag/age arrays are the per-run scratch: a caller evaluating
   many nests against one geometry (the search objective) passes the same
   cache back in and pays an O(sets * assoc) reset instead of a fresh
   allocation per run. A reset cache is indistinguishable from a new one,
   so results are bit-identical either way. *)
let scratch_cache ?cache config =
  match cache with
  | None -> Cache.create config
  | Some c ->
    if Cache.config_of c <> config then
      invalid_arg "Memsim: scratch cache geometry differs from run config";
    Cache.reset c;
    c

let finish ~hit_cost ~miss_penalty cache =
  let stats = Cache.stats cache in
  {
    cache = stats;
    cycles = (stats.Cache.accesses * hit_cost) + (stats.Cache.misses * miss_penalty);
  }

(* Spans attach to the caller's ambient tracer (null unless the caller —
   e.g. the search engine's per-candidate worker — installed one), so the
   simulators show up in a trace without threading a tracer through the
   [Search.objective] type. *)
let traced name f =
  let tr = Itf_obs.Tracer.ambient () in
  Itf_obs.Tracer.span tr name (fun () ->
      let r = f tr in
      Itf_obs.Tracer.add_attrs tr
        [
          ("accesses", Itf_obs.Tracer.Int r.cache.Cache.accesses);
          ("misses", Itf_obs.Tracer.Int r.cache.Cache.misses);
        ];
      r)

let run ?(elem_bytes = 8) ?(hit_cost = 1) ?(miss_penalty = 30) ?cache config env
    nest =
  traced "memsim.run" @@ fun _tr ->
  let cache = scratch_cache ?cache config in
  let bases = layout ~elem_bytes config env nest in
  (* The tracer fires per element access; memoize the last array's base so
     consecutive touches of the same array skip the hashtable. *)
  let last_array = ref "" in
  let last_base = ref 0 in
  Itf_exec.Env.set_tracer env
    (Some
       (fun { Itf_exec.Env.array; flat; _ } ->
         let base =
           if array == !last_array then !last_base
           else begin
             let b = base_of bases array in
             last_array := array;
             last_base := b;
             b
           end
         in
         ignore (Cache.access cache (base + (flat * elem_bytes)))));
  Fun.protect
    ~finally:(fun () -> Itf_exec.Env.set_tracer env None)
    (fun () -> Itf_exec.Interp.run env nest);
  finish ~hit_cost ~miss_penalty cache

let run_compiled ?(elem_bytes = 8) ?(hit_cost = 1) ?(miss_penalty = 30) ?cache
    config env nest =
  traced "memsim.run" @@ fun tr ->
  let cache = scratch_cache ?cache config in
  let bases = layout ~elem_bytes config env nest in
  let compiled =
    Itf_obs.Tracer.span tr "memsim.compile" (fun () ->
        Itf_exec.Compile.compile
          ~addr:
            {
              Itf_exec.Compile.base_of = base_of bases;
              elem_bytes;
              touch = (fun a -> ignore (Cache.access cache a));
            }
          env nest)
  in
  Itf_exec.Compile.run compiled;
  finish ~hit_cost ~miss_penalty cache
