(** Memory-hierarchy simulation of a loop nest execution.

    Lays the environment's arrays out contiguously (each base aligned to a
    cache line), executes the nest with a tracer that feeds every element
    access to a {!Cache}, and reports miss statistics plus a simple cycle
    model [cycles = accesses * hit_cost + misses * miss_penalty]. *)

open Itf_ir

type result = {
  cache : Cache.stats;
  cycles : int;
}

val run :
  ?elem_bytes:int ->
  ?hit_cost:int ->
  ?miss_penalty:int ->
  ?cache:Cache.t ->
  Cache.config ->
  Itf_exec.Env.t ->
  Nest.t ->
  result
(** [run config env nest] executes [nest] in [env] (mutating its arrays)
    while simulating the cache, using the tree-walking interpreter and the
    environment tracer. Defaults: 8-byte elements, 1-cycle hits, 30-cycle
    miss penalty.

    [cache], when given, is {!Cache.reset} and used as the simulation
    scratch instead of allocating a fresh cache — for callers running many
    simulations against one geometry (the search objective hot path).
    Results are bit-identical with and without it.
    @raise Invalid_argument if its geometry differs from [config]. *)

val run_compiled :
  ?elem_bytes:int ->
  ?hit_cost:int ->
  ?miss_penalty:int ->
  ?cache:Cache.t ->
  Cache.config ->
  Itf_exec.Env.t ->
  Nest.t ->
  result
(** As {!run}, but through {!Itf_exec.Compile}: the cache access is a
    direct call inside each compiled load/store closure with the array's
    base address resolved at compile time, instead of a tracer invocation
    doing a name lookup per access. Identical array layout, access
    sequence, stats, and final array state as {!run} — just faster (the
    objective hot path of {!Itf_opt.Engine.search}). *)
