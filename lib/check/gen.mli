(** Seeded random generation of loop nests and transformation sequences for
    the differential oracle harness.

    Nests cover the corners the paper's code-generation rules care about:
    negative and non-unit steps, affine (triangular) bounds on outer
    variables, [min]/[max]-clamped bounds, statically empty loops, guarded
    stores, scalar-carried values, multi-array bodies and (genuinely
    parallel) [pardo] loops. Sequences draw every kernel template,
    including general reverse+permute masks and composite unimodular
    matrices, and are {e not} biased toward legality — the illegal ones
    feed the legality-soundness cross-check.

    All randomness flows through the caller's [Random.State.t], so a seed
    identifies a case stream exactly. *)

type case = {
  nest : Itf_ir.Nest.t;
  seq : Itf_core.Sequence.t;
  params : (string * int) list;  (** values for symbolic parameters *)
}

val case : Random.State.t -> case

val array_lo : int
val array_hi : int
(** Per-dimension inclusive declaration bounds that every generated
    subscript is guaranteed to respect (the oracle declares arrays with
    these). *)
