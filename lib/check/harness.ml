(* The fuzz loop: generate cases from a seed, judge each with the oracle,
   shrink and record failures. *)

type failure = {
  index : int;
  case : Gen.case;
  shrunk : Gen.case;
  divergences : Oracle.divergence list;
}

type report = {
  cases : int;
  legal_ok : int;
  rejected_bounds : int;
  rejected_dependence : int;
  confirmed_rejections : int;
  unconfirmed_rejections : int;
  skipped : int;
  failures : failure list;
}

let pp_divergences ppf ds =
  List.iter
    (fun { Oracle.leg; detail } -> Format.fprintf ppf "  [%s] %s@." leg detail)
    ds

let pp_report ppf r =
  Format.fprintf ppf
    "cases: %d@.  legal & equivalent: %d@.  rejected (bounds): %d@.  rejected \
     (dependence): %d (confirmed %d, unconfirmed %d)@.  skipped: %d@.  \
     divergences: %d@."
    r.cases r.legal_ok r.rejected_bounds r.rejected_dependence
    r.confirmed_rejections r.unconfirmed_rejections r.skipped
    (List.length r.failures)

(* A case "fails" iff the oracle reports a divergence; used both for
   counting and as the shrinker's predicate. *)
let diverges ?backends ?check_memsim (c : Gen.case) =
  match
    Oracle.run_case ?backends ?check_memsim ~params:c.Gen.params c.Gen.nest
      c.Gen.seq
  with
  | Oracle.Diverged ds -> Some ds
  | _ -> None

let run_one ?backends ?check_memsim ?(shrink = true) ~index (c : Gen.case) =
  let outcome =
    Oracle.run_case ?backends ?check_memsim ~params:c.Gen.params c.Gen.nest
      c.Gen.seq
  in
  match outcome with
  | Oracle.Diverged divergences ->
    let shrunk =
      if shrink then
        Shrink.minimize
          ~still_failing:(fun c' ->
            diverges ?backends ?check_memsim c' <> None)
          c
      else c
    in
    (* re-judge the shrunk case for the up-to-date divergence list *)
    let divergences =
      match diverges ?backends ?check_memsim shrunk with
      | Some ds -> ds
      | None -> divergences
    in
    (outcome, Some { index; case = c; shrunk; divergences })
  | _ -> (outcome, None)

let outcome_label = function
  | Oracle.Ok_equivalent -> "ok"
  | Oracle.Rejected_bounds -> "rejected-bounds"
  | Oracle.Rejected_dependence `Confirmed -> "rejected-dependence-confirmed"
  | Oracle.Rejected_dependence `Unconfirmed -> "rejected-dependence-unconfirmed"
  | Oracle.Skipped _ -> "skipped"
  | Oracle.Diverged _ -> "diverged"

let fuzz ?backends ?check_memsim ?(shrink = true) ?on_case
    ?(tracer = Itf_obs.Tracer.null) ?metrics ~seed ~budget () =
  let st = Random.State.make [| seed |] in
  let r =
    ref
      {
        cases = 0;
        legal_ok = 0;
        rejected_bounds = 0;
        rejected_dependence = 0;
        confirmed_rejections = 0;
        unconfirmed_rejections = 0;
        skipped = 0;
        failures = [];
      }
  in
  for index = 0 to budget - 1 do
    let case = Gen.case st in
    let outcome, failure =
      Itf_obs.Tracer.span tracer "fuzz.case"
        ~attrs:(fun () -> [ ("index", Itf_obs.Tracer.Int index) ])
        (fun () ->
          let ((outcome, _) as r) =
            Itf_obs.Tracer.with_ambient tracer (fun () ->
                run_one ?backends ?check_memsim ~shrink ~index case)
          in
          Itf_obs.Tracer.add_attrs tracer
            [ ("outcome", Itf_obs.Tracer.String (outcome_label outcome)) ];
          r)
    in
    (match metrics with
    | None -> ()
    | Some m ->
      Itf_obs.Metrics.incr
        (Itf_obs.Metrics.counter m
           ~labels:[ ("outcome", outcome_label outcome) ]
           "fuzz.cases"));
    let c = !r in
    let c = { c with cases = c.cases + 1 } in
    let c =
      match outcome with
      | Oracle.Ok_equivalent -> { c with legal_ok = c.legal_ok + 1 }
      | Oracle.Rejected_bounds -> { c with rejected_bounds = c.rejected_bounds + 1 }
      | Oracle.Rejected_dependence conf ->
        let c = { c with rejected_dependence = c.rejected_dependence + 1 } in
        if conf = `Confirmed then
          { c with confirmed_rejections = c.confirmed_rejections + 1 }
        else { c with unconfirmed_rejections = c.unconfirmed_rejections + 1 }
      | Oracle.Skipped _ -> { c with skipped = c.skipped + 1 }
      | Oracle.Diverged _ -> c
    in
    let c =
      match failure with
      | Some f -> { c with failures = f :: c.failures }
      | None -> c
    in
    r := c;
    Option.iter (fun f -> f ~index ~outcome) on_case
  done;
  { !r with failures = List.rev !r.failures }

let replay ?backends ?check_memsim (c : Gen.case) =
  Oracle.run_case ?backends ?check_memsim ~params:c.Gen.params c.Gen.nest
    c.Gen.seq
