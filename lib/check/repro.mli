(** Replayable reproducer files for fuzz failures.

    A reproducer is plain text with three sections:

    {v
      # what went wrong (free-form comments)
      [params]
      n = 7
      [nest]
      do i = 0, 4
        a(i, i) = b(i) + 1
      enddo
      [script]
      interchange 0 1
    v}

    The nest section is the surface loop language ({!Itf_ir.Nest.pp}
    output); the script section is the transformation script language
    ({!Script.of_sequence} output) — so reproducers both round-trip
    mechanically and stay hand-editable. *)

exception Error of string

val to_string : ?note:string -> Gen.case -> string
val of_string : string -> Gen.case

val save : ?note:string -> string -> Gen.case -> unit
val load : string -> Gen.case
(** @raise Error (prefixed with the path) on malformed files. *)
