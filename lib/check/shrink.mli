(** Greedy minimizer for failing (nest, sequence, params) cases.

    Tries single-step structural reductions — dropping a template (when
    the rest still chains), dropping a body statement, unwrapping a guard,
    tightening loop bounds, normalizing steps to [±1], nudging constants
    and parameter values toward zero — and keeps any reduction for which
    [still_failing] still holds, iterating to a fixpoint (with a hard cap
    on probe count so shrinking never dominates a fuzz run).

    [still_failing] is called on candidate cases; exceptions it raises are
    treated as "not failing" so the shrinker cannot crash the harness. *)

val minimize : still_failing:(Gen.case -> bool) -> Gen.case -> Gen.case
