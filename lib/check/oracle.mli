(** The three-way differential oracle.

    A case is judged by running its transformation sequence through
    {!Itf_core.Legality.check} and then:

    - [Legal] — the original nest is executed by the tree-walking
      interpreter (the oracle); the transformed nest must leave identical
      array contents under the interpreter (all pardo orders), the
      compiled backend, and — when a C compiler is on [PATH] — the
      emitted standalone C program (compared by per-array checksum).
    - [Dependence_violation] — the legality-soundness cross-check forces
      code generation anyway and looks for a concrete dependence-order
      violation in the traces; a rejection it cannot confirm is reported
      as [`Unconfirmed] (checker possibly too conservative — logged, not
      fatal).
    - [Bounds_violation] — counted, nothing to compare. *)

type backend = [ `Interp | `Compiled | `C ]

val backend_name : backend -> string
val backend_of_name : string -> backend option

type divergence = { leg : string; detail : string }

type outcome =
  | Ok_equivalent
  | Rejected_bounds
  | Rejected_dependence of [ `Confirmed | `Unconfirmed ]
  | Skipped of string
      (** the original nest itself faults (e.g. symbolic-step rejection),
          so there is no reference to compare against *)
  | Diverged of divergence list  (** the bug report *)

val cc_available : unit -> bool
(** Whether a C compiler ([cc], [gcc] or [clang]) is on [PATH]; probed
    once. The [`C] leg is silently skipped without one. *)

val make_env : params:(string * int) list -> Itf_ir.Nest.t -> Itf_exec.Env.t
(** Environment with every referenced array declared over
    [Gen.array_lo .. Gen.array_hi] per dimension and filled with the C
    emitter's convention [(k * 31) mod 97], plus all symbolic parameters
    bound ([params] first, any forgotten ones defaulted). *)

val run_case :
  ?backends:backend list ->
  ?orders:Itf_exec.Interp.pardo_order list ->
  ?check_memsim:bool ->
  params:(string * int) list ->
  Itf_ir.Nest.t ->
  Itf_core.Sequence.t ->
  outcome
(** Judge one (nest, sequence, params) case. Defaults:
    [backends = [`Interp; `Compiled]], pardo orders forward, reverse and
    a fixed shuffle, [check_memsim = false]. *)
