open Itf_ir
module T = Itf_core.Template
module Intmat = Itf_mat.Intmat

type case = {
  nest : Nest.t;
  seq : Itf_core.Sequence.t;
  params : (string * int) list;
}

let choice st arr = arr.(Random.State.int st (Array.length arr))

(* Magnitude policy: loop values stay within roughly [-25, 25] and
   subscripts (sums of at most two variables plus a small offset, possibly
   one doubled variable) within [-60, 60], so every access fits the
   [array_lo, array_hi] declaration below and the oracle never has to
   reason about intended out-of-bounds. Store values are reduced mod a
   fixed prime so iterated updates cannot overflow differently in OCaml's
   63-bit ints and C's 64-bit longs. *)
let array_lo = -64
let array_hi = 64
let value_mod = 9973

(* ------------------------------------------------------------------ *)
(* Nests                                                               *)
(* ------------------------------------------------------------------ *)

(* A loop with an exact symbolic trip count: pick a start, step and trip,
   then derive [hi] as the exact last value so affine/min/max decorations
   never change the intended iteration count by accident. *)
let gen_loop st ~uses_n idx outer_vars =
  let var = List.nth [ "i"; "j"; "k" ] idx in
  let step = choice st [| 1; 1; 1; 1; 2; 3; -1; -2 |] in
  (* trip 0 (an empty loop) is rare but deliberate: degenerate bands are
     exactly where code generators crash. *)
  let trip =
    match Random.State.int st 12 with 0 -> 0 | n -> 1 + (n mod 6)
  in
  let start_val = Random.State.int st 10 - 4 in
  let start =
    match Random.State.int st 8 with
    | 0 | 1 when outer_vars <> [] ->
      (* affine in an outer variable: triangular-style bounds *)
      Expr.add
        (Expr.var (choice st (Array.of_list outer_vars)))
        (Expr.int (Random.State.int st 5 - 2))
    | 2 when uses_n ->
      (* involves the symbolic parameter n *)
      Expr.sub (Expr.var "n") (Expr.int (Random.State.int st 4))
    | _ -> Expr.int start_val
  in
  let last = Expr.add start (Expr.int (step * (trip - 1))) in
  let lo, hi = (start, last) in
  (* Occasionally clamp the far bound with min/max against a constant the
     clamp rarely binds on — exercising the structured-bound rules without
     collapsing the loop. *)
  let hi =
    match Random.State.int st 6 with
    | 0 ->
      if step > 0 then Expr.min_ hi (Expr.int 30)
      else Expr.max_ hi (Expr.int (-30))
    | _ -> hi
  in
  Nest.loop ~step:(Expr.int step) var lo hi

let gen_subscript st vars =
  let v () = Expr.var (choice st (Array.of_list vars)) in
  let base =
    match Random.State.int st 8 with
    | 0 when List.length vars >= 2 -> Expr.add (v ()) (v ())
    | 1 -> Expr.mul (Expr.int 2) (v ())
    | 2 -> Expr.sub (v ()) (v ())
    | _ -> v ()
  in
  Expr.add base (Expr.int (Random.State.int st 7 - 3))

(* Arrays with fixed arities so interp/compiled/C all agree on layout. *)
let arrays = [| ("a", 2); ("b", 1); ("c", 2) |]

let gen_access st vars : Expr.access =
  let array, arity = choice st arrays in
  { array; index = List.init arity (fun _ -> gen_subscript st vars) }

let gen_load st vars : Expr.t = Expr.Load (gen_access st vars)

let gen_rhs st vars =
  let atom () =
    match Random.State.int st 6 with
    | 0 -> Expr.var (choice st (Array.of_list vars))
    | 1 -> Expr.int (Random.State.int st 9 - 4)
    | _ -> gen_load st vars
  in
  let e =
    match Random.State.int st 4 with
    | 0 -> Expr.add (atom ()) (Expr.mul (atom ()) (Expr.int 3))
    | 1 -> Expr.mul (atom ()) (atom ())
    | 2 -> Expr.sub (atom ()) (atom ())
    | _ -> Expr.add (atom ()) (atom ())
  in
  (* Bound the stored value (see the magnitude policy above). *)
  Expr.mod_ e (Expr.int value_mod)

let gen_store st vars = Stmt.Store (gen_access st vars, gen_rhs st vars)

let gen_stmt st vars =
  match Random.State.int st 10 with
  | 0 | 1 ->
    (* guarded stores: predicates over the loop variables *)
    let lhs =
      match Random.State.int st 2 with
      | 0 ->
        Expr.mod_
          (Expr.add (Expr.var (choice st (Array.of_list vars))) (Expr.int 7))
          (Expr.int 2)
      | _ -> Expr.var (choice st (Array.of_list vars))
    in
    let rel = choice st [| Stmt.Lt; Stmt.Le; Stmt.Gt; Stmt.Ge; Stmt.Eq; Stmt.Ne |] in
    Stmt.Guard
      {
        lhs;
        rel;
        rhs = Expr.int (Random.State.int st 5 - 1);
        body = [ gen_store st vars ];
      }
  | _ -> gen_store st vars

let gen_body st vars =
  match Random.State.int st 5 with
  | 0 ->
    (* a value carried through a scalar temporary: serializes heavily *)
    [
      Stmt.Set ("x", gen_load st vars);
      Stmt.Store
        (gen_access st vars, Expr.add (Expr.var "x") (gen_rhs st vars));
    ]
  | 1 -> [ gen_stmt st vars; gen_stmt st vars ]
  | 2 -> [ gen_stmt st vars; gen_stmt st vars; gen_stmt st vars ]
  | _ -> [ gen_stmt st vars ]

let gen_nest st ~uses_n =
  let depth = 1 + Random.State.int st 3 in
  let vars = List.init depth (fun k -> List.nth [ "i"; "j"; "k" ] k) in
  let loops =
    List.init depth (fun idx ->
        gen_loop st ~uses_n idx (List.filteri (fun k _ -> k < idx) vars))
  in
  let nest = Nest.make loops (gen_body st vars) in
  (* Mark genuinely parallel loops pardo (with some probability): a pardo
     loop that actually carries a dependence would make even the original
     nest order-dependent, leaving the oracle without a reference. *)
  let vectors = Itf_dep.Analysis.vectors nest in
  let parallel = Itf_core.Queries.parallelizable_loops ~depth vectors in
  {
    nest with
    Nest.loops =
      List.mapi
        (fun k (l : Nest.loop) ->
          if List.mem k parallel && Random.State.int st 3 = 0 then
            { l with Nest.kind = Nest.Pardo }
          else l)
        nest.Nest.loops;
  }

(* ------------------------------------------------------------------ *)
(* Sequences                                                           *)
(* ------------------------------------------------------------------ *)

let gen_perm st n =
  let p = Array.init n Fun.id in
  for k = n - 1 downto 1 do
    let j = Random.State.int st (k + 1) in
    let tmp = p.(k) in
    p.(k) <- p.(j);
    p.(j) <- tmp
  done;
  p

(* Small random unimodular matrix: a product of elementary generators. *)
let gen_unimodular st n =
  let m = ref (Intmat.identity n) in
  for _ = 1 to 1 + Random.State.int st 3 do
    let e =
      match Random.State.int st 3 with
      | 0 ->
        let i = Random.State.int st n in
        Intmat.reversal n i
      | 1 when n >= 2 ->
        let i = Random.State.int st n in
        let j = (i + 1 + Random.State.int st (n - 1)) mod n in
        Intmat.interchange n i j
      | _ when n >= 2 ->
        let i = Random.State.int st n in
        let j = (i + 1 + Random.State.int st (n - 1)) mod n in
        Intmat.skew n i j (1 + Random.State.int st 2)
      | _ -> Intmat.reversal n 0
    in
    m := Intmat.mul e !m
  done;
  !m

let gen_template st n =
  let pick_range () =
    let i = Random.State.int st n in
    let j = i + Random.State.int st (n - i) in
    (i, j)
  in
  match Random.State.int st (if n >= 2 then 9 else 7) with
  | 0 ->
    let i, j = pick_range () in
    T.block ~n ~i ~j
      ~bsize:
        (Array.init (j - i + 1) (fun _ -> Expr.int (2 + Random.State.int st 2)))
  | 1 ->
    let i, j = pick_range () in
    T.coalesce ~n ~i ~j
  | 2 ->
    let i, j = pick_range () in
    T.interleave ~n ~i ~j
      ~isize:
        (Array.init (j - i + 1) (fun _ -> Expr.int (2 + Random.State.int st 2)))
  | 3 ->
    let flags = Array.init n (fun _ -> Random.State.int st 3 = 0) in
    if Array.exists Fun.id flags then T.parallelize flags
    else T.parallelize_one ~n (Random.State.int st n)
  | 4 -> T.reversal ~n (Random.State.int st n)
  | 5 ->
    (* general reverse+permute in one template *)
    T.reverse_permute
      ~rev:(Array.init n (fun _ -> Random.State.int st 4 = 0))
      ~perm:(gen_perm st n)
  | 6 -> T.unimodular (gen_unimodular st n)
  | 7 -> T.interchange ~n (Random.State.int st n) (Random.State.int st n)
  | _ ->
    let src = Random.State.int st n in
    let dst = (src + 1 + Random.State.int st (n - 1)) mod n in
    T.skew ~n ~src ~dst ~factor:(1 + Random.State.int st 2)

let gen_sequence st depth =
  let len = 1 + Random.State.int st 3 in
  let rec go n k =
    if k = 0 || n > 5 then []
    else
      let t = gen_template st n in
      if T.output_depth t > 6 then []
      else t :: go (T.output_depth t) (k - 1)
  in
  go depth len

let case st =
  let uses_n = Random.State.int st 4 = 0 in
  let nest = gen_nest st ~uses_n in
  let seq = gen_sequence st (Nest.depth nest) in
  let params = [ ("n", 5 + Random.State.int st 4) ] in
  { nest; seq; params }
