(* Replayable reproducer files.

   Format: [#] comment lines anywhere; three sections introduced by
   [[params]], [[nest]] and [[script]] headers. Params are [name = value]
   lines; the nest section is the surface loop language (Nest.pp output
   reparsed by Itf_lang.Parser); the script section is the transformation
   script language (Itf_lang.Script.of_sequence output reparsed by Itf_lang.Script.parse). *)

exception Error of string

let to_string ?(note = "") (c : Gen.case) =
  let b = Buffer.create 256 in
  if note <> "" then
    String.split_on_char '\n' note
    |> List.iter (fun l -> Buffer.add_string b ("# " ^ l ^ "\n"));
  Buffer.add_string b "[params]\n";
  List.iter
    (fun (v, x) -> Buffer.add_string b (Printf.sprintf "%s = %d\n" v x))
    c.Gen.params;
  Buffer.add_string b "[nest]\n";
  Buffer.add_string b (Itf_ir.Nest.to_string c.Gen.nest);
  if c.Gen.seq <> [] then begin
    Buffer.add_string b "[script]\n";
    Buffer.add_string b (Itf_lang.Script.of_sequence c.Gen.seq);
    Buffer.add_char b '\n'
  end
  else Buffer.add_string b "[script]\n";
  Buffer.contents b

let of_string s =
  let section = ref `None in
  let params = ref [] and nest_lines = ref [] and script_lines = ref [] in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let t = String.trim line in
         if String.length t > 0 && t.[0] = '#' then ()
         else
           match t with
           | "[params]" -> section := `Params
           | "[nest]" -> section := `Nest
           | "[script]" -> section := `Script
           | "" when !section <> `Nest -> ()
           | _ -> (
             match !section with
             | `Params -> (
               match String.split_on_char '=' t with
               | [ v; x ] -> (
                 match int_of_string_opt (String.trim x) with
                 | Some x -> params := (String.trim v, x) :: !params
                 | None -> raise (Error ("bad param line: " ^ t)))
               | _ -> raise (Error ("bad param line: " ^ t)))
             | `Nest -> nest_lines := line :: !nest_lines
             | `Script -> script_lines := line :: !script_lines
             | `None -> raise (Error ("text before any section: " ^ t))));
  let nest_src = String.concat "\n" (List.rev !nest_lines) in
  if String.trim nest_src = "" then raise (Error "missing [nest] section");
  let nest =
    try Itf_lang.Parser.parse_nest nest_src
    with Itf_lang.Parser.Error { line; message } ->
      raise (Error (Printf.sprintf "nest parse error (line %d): %s" line message))
  in
  let script_src = String.concat "\n" (List.rev !script_lines) in
  let seq =
    try Itf_lang.Script.parse ~depth:(Itf_ir.Nest.depth nest) script_src
    with Itf_lang.Script.Error { line; message } ->
      raise
        (Error (Printf.sprintf "script parse error (line %d): %s" line message))
  in
  { Gen.nest; seq; params = List.rev !params }

let save ?note path c =
  let oc = open_out path in
  output_string oc (to_string ?note c);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try of_string s
  with Error m -> raise (Error (path ^ ": " ^ m))
