open Itf_ir
module Env = Itf_exec.Env
module Interp = Itf_exec.Interp
module Compile = Itf_exec.Compile
module Memsim = Itf_machine.Memsim
module Cache = Itf_machine.Cache
module L = Itf_core.Legality

type backend = [ `Interp | `Compiled | `C ]

let backend_name = function
  | `Interp -> "interp"
  | `Compiled -> "compiled"
  | `C -> "c"

let backend_of_name = function
  | "interp" -> Some `Interp
  | "compiled" -> Some `Compiled
  | "c" -> Some `C
  | _ -> None

type divergence = { leg : string; detail : string }

type outcome =
  | Ok_equivalent
  | Rejected_bounds
  | Rejected_dependence of [ `Confirmed | `Unconfirmed ]
  | Skipped of string
  | Diverged of divergence list

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

(* Arrays referenced by a nest, with their subscript arity. *)
let array_arities (nest : Nest.t) =
  let tbl = Hashtbl.create 8 in
  let note array index = Hashtbl.replace tbl array (List.length index) in
  let rec expr (e : Expr.t) =
    match e with
    | Int _ | Var _ -> ()
    | Neg a -> expr a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
    | Min (a, b) | Max (a, b) ->
      expr a;
      expr b
    | Load { array; index } ->
      note array index;
      List.iter expr index
    | Call (_, args) -> List.iter expr args
  in
  let rec stmt = function
    | Stmt.Store ({ array; index }, rhs) ->
      note array index;
      List.iter expr index;
      expr rhs
    | Stmt.Set (_, rhs) -> expr rhs
    | Stmt.Guard { lhs; rhs; body; _ } ->
      expr lhs;
      expr rhs;
      List.iter stmt body
  in
  List.iter stmt (nest.Nest.inits @ nest.Nest.body);
  Hashtbl.fold (fun a n acc -> (a, n) :: acc) tbl [] |> List.sort compare

let array_bounds nest =
  List.map
    (fun (a, arity) ->
      (a, List.init arity (fun _ -> (Gen.array_lo, Gen.array_hi))))
    (array_arities nest)

(* Parameter values: the given ones, plus a fixed default for any symbolic
   parameter the case file forgot, so runs never die on Not_found. *)
let full_params ~params nest =
  let given = List.map fst params in
  params
  @ List.filter_map
      (fun v -> if List.mem v given then None else Some (v, 5))
      (Nest.symbolic_params nest)

(* Fresh environment with the C emitter's deterministic fill convention
   ((k * 31) mod 97), so interpreter snapshots and emitted-program
   checksums are directly comparable. *)
let make_env ~params nest =
  let env = Env.create () in
  List.iter (fun (v, x) -> Env.set_scalar env v x) (full_params ~params nest);
  List.iter
    (fun (a, dims) ->
      Env.declare_array env a dims;
      let data = Env.array_data env a in
      Array.iteri (fun k _ -> data.(k) <- k * 31 mod 97) data)
    (array_bounds nest);
  env

let exn_name e =
  match e with
  | Invalid_argument m -> "Invalid_argument(" ^ m ^ ")"
  | Failure m -> "Failure(" ^ m ^ ")"
  | Not_found -> "Not_found"
  | Division_by_zero -> "Division_by_zero"
  | e -> Printexc.to_string e

let order_name = function
  | `Forward -> "forward"
  | `Reverse -> "reverse"
  | `Shuffle s -> Printf.sprintf "shuffle %d" s

(* Snapshot of a run, or the exception it raised. *)
let interp_snapshot ~params ~order nest =
  let env = make_env ~params nest in
  match Interp.run ~pardo_order:order env nest with
  | () -> Ok (Env.snapshot env)
  | exception e -> Error (exn_name e)

let compiled_snapshot ~params ~order nest =
  let env = make_env ~params nest in
  match
    let c = Compile.compile env nest in
    Compile.run ~pardo_order:order c
  with
  | () -> Ok (Env.snapshot env)
  | exception e -> Error (exn_name e)

let checksums snap = List.map (fun (a, data) -> (a, Array.fold_left ( + ) 0 data)) snap

(* ------------------------------------------------------------------ *)
(* Emitted-C leg                                                       *)
(* ------------------------------------------------------------------ *)

(* First working C compiler on PATH, probed once. *)
let cc =
  lazy
    (List.find_opt
       (fun c -> Sys.command (Printf.sprintf "command -v %s >/dev/null 2>&1" c) = 0)
       [ "cc"; "gcc"; "clang" ])

let cc_available () = Lazy.force cc <> None

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* Emit, compile and run the nest as a standalone C program; return its
   per-array checksums. [Error] describes any stage failure. *)
let c_checksums ~params nest =
  match Lazy.force cc with
  | None -> Error "no C compiler"
  | Some cc -> (
    match
      Itf_emit.C.program ~params:(full_params ~params nest)
        ~bounds:(array_bounds nest) nest
    with
    | exception e -> Error ("emit: " ^ exn_name e)
    | src ->
      let c_file = Filename.temp_file "itf_fuzz" ".c" in
      let exe = Filename.temp_file "itf_fuzz" ".exe" in
      let out_file = Filename.temp_file "itf_fuzz" ".txt" in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun f -> try Sys.remove f with Sys_error _ -> ())
            [ c_file; exe; out_file ])
        (fun () ->
          write_file c_file src;
          if
            Sys.command
              (Printf.sprintf "%s -O1 -o %s %s 2>/dev/null" cc
                 (Filename.quote exe) (Filename.quote c_file))
            <> 0
          then Error "C compilation failed"
          else if
            Sys.command
              (Printf.sprintf "%s > %s 2>/dev/null" (Filename.quote exe)
                 (Filename.quote out_file))
            <> 0
          then Error "emitted program crashed"
          else
            Ok
              (List.filter_map
                 (fun line ->
                   match String.split_on_char ' ' (String.trim line) with
                   | [ name; sum ] ->
                     Option.map (fun s -> (name, s)) (int_of_string_opt sum)
                   | _ -> None)
                 (read_lines out_file)
              |> List.sort compare)))

(* ------------------------------------------------------------------ *)
(* Trace-based rejection confirmation                                  *)
(* ------------------------------------------------------------------ *)

type event = { iter : int array; array : string; flat : int; write : bool }

(* Execute [nest], tagging every array access with the values of
   [tag_vars] read after the init statements (i.e. with the ORIGINAL
   iteration the access belongs to). *)
let traced_run ~params ~tag_vars nest =
  let env = make_env ~params nest in
  let events = ref [] in
  let current = ref [||] in
  Env.set_tracer env
    (Some
       (fun { Env.array; flat; kind } ->
         events :=
           { iter = !current; array; flat; write = kind = Env.Write }
           :: !events));
  match
    Interp.run
      ~after_inits:(fun () ->
        current := Array.map (fun v -> Env.get_scalar env v) tag_vars)
      env nest
  with
  | () ->
    Env.set_tracer env None;
    Ok (List.rev !events, Env.snapshot env)
  | exception e -> Error (exn_name e)

(* Scan the original trace's dependent pairs (same element, at least one
   write, different iterations) and check each keeps its order in the
   transformed execution. Stops at the first violation; pair enumeration
   is capped so scalar-carried cells cannot blow up the fuzz loop. *)
let max_pairs = 100_000

let rejection_confirmed ~params nest out =
  let tag_vars = Array.of_list (Nest.loop_vars nest) in
  match traced_run ~params ~tag_vars nest with
  | Error _ -> `Unconfirmed
  | Ok (orig_events, orig_snap) -> (
    match traced_run ~params ~tag_vars out with
    | Error _ -> `Confirmed (* the illegal nest faults outright *)
    | Ok (trans_events, trans_snap) ->
      if trans_snap <> orig_snap then `Confirmed
      else begin
        (* positions of original iterations in the transformed execution *)
        let positions = Hashtbl.create 256 in
        let pos = ref 0 in
        List.iter
          (fun ev ->
            if not (Hashtbl.mem positions ev.iter) then begin
              Hashtbl.add positions ev.iter !pos;
              incr pos
            end)
          trans_events;
        (* group original events by touched cell *)
        let cells : (string * int, event list ref) Hashtbl.t =
          Hashtbl.create 256
        in
        List.iter
          (fun ev ->
            let key = (ev.array, ev.flat) in
            match Hashtbl.find_opt cells key with
            | Some l -> l := ev :: !l
            | None -> Hashtbl.add cells key (ref [ ev ]))
          orig_events;
        let budget = ref max_pairs in
        let verdict = ref `Unconfirmed in
        Hashtbl.iter
          (fun _ l ->
            if !verdict = `Unconfirmed && !budget > 0 then begin
              let evs = Array.of_list (List.rev !l) in
              let n = Array.length evs in
              (try
                 for x = 0 to n - 1 do
                   for y = x + 1 to n - 1 do
                     if !budget <= 0 then raise Exit;
                     let a = evs.(x) and b = evs.(y) in
                     if (a.write || b.write) && a.iter <> b.iter then begin
                       decr budget;
                       match
                         ( Hashtbl.find_opt positions a.iter,
                           Hashtbl.find_opt positions b.iter )
                       with
                       | Some p1, Some p2 ->
                         if p1 >= p2 then begin
                           verdict := `Confirmed;
                           raise Exit
                         end
                       | _ ->
                         (* an original iteration vanished *)
                         verdict := `Confirmed;
                         raise Exit
                     end
                   done
                 done
               with Exit -> ())
            end)
          cells;
        !verdict
      end)

(* ------------------------------------------------------------------ *)
(* The differential run                                                *)
(* ------------------------------------------------------------------ *)

let default_orders : Interp.pardo_order list =
  [ `Forward; `Reverse; `Shuffle 1234 ]

let has_pardo (nest : Nest.t) =
  List.exists (fun (l : Nest.loop) -> l.Nest.kind = Nest.Pardo) nest.Nest.loops

let run_case ?(backends = [ `Interp; `Compiled ]) ?(orders = default_orders)
    ?(check_memsim = false) ~params nest seq =
  let vectors = Itf_dep.Analysis.vectors nest in
  match L.check ~vectors nest seq with
  | L.Bounds_violation _ -> Rejected_bounds
  | L.Dependence_violation _ -> (
    (* Legality-soundness cross-check: generate the rejected code anyway
       (by pretending there are no dependences) and look for an actual
       dependence-order violation in the traces. *)
    match L.check ~vectors:[] nest seq with
    | L.Legal { nest = out; _ } ->
      Rejected_dependence (rejection_confirmed ~params nest out)
    | _ -> Rejected_dependence `Unconfirmed
  | exception e ->
    Diverged [ { leg = "legality"; detail = "Legality.check raised " ^ exn_name e } ])
  | exception e ->
    Diverged [ { leg = "legality"; detail = "Legality.check raised " ^ exn_name e } ]
  | L.Legal { nest = out; _ } -> (
    match interp_snapshot ~params ~order:`Forward nest with
    | Error e -> Skipped ("original nest faults: " ^ e)
    | Ok reference ->
      let faults = ref [] in
      let fail leg detail = faults := { leg; detail } :: !faults in
      let compare_to_ref leg what = function
        | Error e -> fail leg (what ^ " raised " ^ e)
        | Ok snap ->
          if snap <> reference then
            fail leg (what ^ " computed different array contents")
      in
      (* Which pardo orders can differ? Only nests with pardo loops. *)
      let orders_for nest =
        if has_pardo nest then orders else [ `Forward ]
      in
      if List.mem `Interp backends then begin
        (* the transformed nest against the oracle, under every order *)
        List.iter
          (fun order ->
            compare_to_ref "interp"
              (Printf.sprintf "transformed nest (%s order)" (order_name order))
              (interp_snapshot ~params ~order out))
          (orders_for out);
        (* adversarial orders of the ORIGINAL pardo nest must agree too *)
        List.iter
          (fun order ->
            compare_to_ref "interp"
              (Printf.sprintf "original nest (%s order)" (order_name order))
              (interp_snapshot ~params ~order nest))
          (match orders_for nest with _ :: rest -> rest | [] -> [])
      end;
      if List.mem `Compiled backends then begin
        compare_to_ref "compiled" "original nest (compiled)"
          (compiled_snapshot ~params ~order:`Forward nest);
        List.iter
          (fun order ->
            compare_to_ref "compiled"
              (Printf.sprintf "transformed nest (compiled, %s order)"
                 (order_name order))
              (compiled_snapshot ~params ~order out))
          (orders_for out)
      end;
      if check_memsim then begin
        (* Memsim's two execution paths must agree on stats and state. *)
        let config =
          { Cache.size_bytes = 8192; line_bytes = 64; assoc = 2 }
        in
        let env1 = make_env ~params out and env2 = make_env ~params out in
        match
          (Memsim.run config env1 out, Memsim.run_compiled config env2 out)
        with
        | r1, r2 ->
          if r1 <> r2 then
            fail "memsim" "interpreted and compiled cache simulations disagree";
          if Env.snapshot env1 <> Env.snapshot env2 then
            fail "memsim" "cache-simulated runs left different array contents"
        | exception e -> fail "memsim" ("memsim raised " ^ exn_name e)
      end;
      if List.mem `C backends && cc_available () then begin
        let ref_sums = checksums reference in
        (match c_checksums ~params nest with
        | Error e -> fail "c" ("original nest: " ^ e)
        | Ok sums ->
          if sums <> ref_sums then
            fail "c" "original nest: emitted C checksums differ from interpreter");
        match c_checksums ~params out with
        | Error e -> fail "c" ("transformed nest: " ^ e)
        | Ok sums ->
          if sums <> ref_sums then
            fail "c" "transformed nest: emitted C checksums differ from interpreter"
      end;
      if !faults = [] then Ok_equivalent else Diverged (List.rev !faults))
