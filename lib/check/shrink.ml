open Itf_ir
module T = Itf_core.Template

(* Greedy structural shrinking: repeatedly try single-step reductions of
   the (nest, sequence) pair and keep any the caller still judges failing,
   until no step applies. Every candidate is a well-formed case, so the
   minimum is directly replayable. *)

let chains ~depth seq =
  Itf_core.Sequence.well_formed seq
  && (seq = [] || (List.hd seq |> T.input_depth) = depth)

(* --- sequence candidates: drop one template ----------------------- *)

let seq_candidates ~depth seq =
  List.init (List.length seq) (fun k ->
      List.filteri (fun l _ -> l <> k) seq)
  |> List.filter (chains ~depth)

(* --- statement candidates ------------------------------------------ *)

(* One-step reductions of a statement list: drop a statement, or replace
   a guard by its body (a guard often hides the store that matters). *)
let rec stmt_list_candidates (stmts : Stmt.t list) : Stmt.t list list =
  let drops =
    if List.length stmts <= 1 then []
    else List.init (List.length stmts) (fun k ->
        List.filteri (fun l _ -> l <> k) stmts)
  in
  let inner =
    List.concat
      (List.mapi
         (fun k s ->
           List.map
             (fun s' -> List.mapi (fun l old -> if l = k then s' else old) stmts)
             (stmt_candidates s))
         stmts)
  in
  drops @ inner

and stmt_candidates : Stmt.t -> Stmt.t list = function
  | Stmt.Guard { body; _ } -> body (* replace the guard by an inner stmt *)
  | _ -> []

(* --- expression candidates (bounds only) --------------------------- *)

(* Shrink a bound expression: unwrap min/max clamps, move constants
   toward zero. *)
let rec expr_candidates (e : Expr.t) : Expr.t list =
  match e with
  | Expr.Min (a, b) | Expr.Max (a, b) -> [ a; b ]
  | Expr.Int c when c <> 0 -> [ Expr.Int (c - (if c > 0 then 1 else -1)) ]
  | Expr.Add (a, b) ->
    List.map (fun a' -> Expr.add a' b) (expr_candidates a)
    @ List.map (fun b' -> Expr.add a b') (expr_candidates b)
  | _ -> []

(* --- loop candidates ----------------------------------------------- *)

let loop_candidates (l : Nest.loop) : Nest.loop list =
  let bound_shrinks =
    List.map (fun hi -> { l with Nest.hi }) (expr_candidates l.Nest.hi)
    @ List.map (fun lo -> { l with Nest.lo }) (expr_candidates l.Nest.lo)
  in
  let step_shrinks =
    match Expr.to_int l.Nest.step with
    | Some s when s > 1 -> [ { l with Nest.step = Expr.int 1 } ]
    | Some s when s < -1 -> [ { l with Nest.step = Expr.int (-1) } ]
    | _ -> []
  in
  (* collapse the loop to its first iteration *)
  let collapse =
    if Expr.compare l.Nest.lo l.Nest.hi = 0 then []
    else [ { l with Nest.hi = l.Nest.lo } ]
  in
  collapse @ step_shrinks @ bound_shrinks

(* The generator only marks analysis-parallelizable loops [pardo]; a
   shrink step that invalidates that (e.g. tightening a bound until a
   dependence appears) would manufacture an order-dependent "original"
   nest and a bogus divergence. Candidates must keep the invariant. *)
let pardo_marking_sound (nest : Nest.t) =
  let pardos =
    List.concat
      (List.mapi
         (fun k (l : Nest.loop) -> if l.Nest.kind = Nest.Pardo then [ k ] else [])
         nest.Nest.loops)
  in
  pardos = []
  ||
  let vectors = Itf_dep.Analysis.vectors nest in
  let parallel =
    Itf_core.Queries.parallelizable_loops ~depth:(Nest.depth nest) vectors
  in
  List.for_all (fun k -> List.mem k parallel) pardos

let nest_candidates (nest : Nest.t) : Nest.t list =
  let with_loops loops = { nest with Nest.loops } in
  let loop_shrinks =
    List.concat
      (List.mapi
         (fun k l ->
           List.map
             (fun l' ->
               with_loops
                 (List.mapi (fun i old -> if i = k then l' else old)
                    nest.Nest.loops))
             (loop_candidates l))
         nest.Nest.loops)
  in
  let body_shrinks =
    List.map
      (fun body -> { nest with Nest.body })
      (stmt_list_candidates nest.Nest.body)
  in
  List.filter pardo_marking_sound (body_shrinks @ loop_shrinks)

(* --- parameter candidates ------------------------------------------ *)

let param_candidates params =
  List.concat
    (List.mapi
       (fun k (v, x) ->
         if x = 0 then []
         else
           [
             List.mapi
               (fun l p -> if l = k then (v, x - (if x > 0 then 1 else -1)) else p)
               params;
           ])
       params)

(* --- driver --------------------------------------------------------- *)

let candidates (c : Gen.case) : Gen.case list =
  List.map (fun seq -> { c with Gen.seq }) (seq_candidates ~depth:(Nest.depth c.Gen.nest) c.Gen.seq)
  @ List.map (fun nest -> { c with Gen.nest }) (nest_candidates c.Gen.nest)
  @ List.map (fun params -> { c with Gen.params }) (param_candidates c.Gen.params)

let minimize ~still_failing (c : Gen.case) =
  let steps = ref 0 in
  let rec go c =
    if !steps > 500 then c
    else
      match
        List.find_opt
          (fun c' ->
            incr steps;
            try still_failing c' with _ -> false)
          (candidates c)
      with
      | Some c' -> go c'
      | None -> c
  in
  go c
