(** The fuzz loop tying the pieces together: {!Gen} streams cases from a
    seed, {!Oracle} judges each, {!Shrink} minimizes failures. *)

type failure = {
  index : int;  (** case number within the run (0-based) *)
  case : Gen.case;  (** as generated *)
  shrunk : Gen.case;  (** minimized, still diverging *)
  divergences : Oracle.divergence list;  (** for the shrunk case *)
}

type report = {
  cases : int;
  legal_ok : int;
  rejected_bounds : int;
  rejected_dependence : int;
  confirmed_rejections : int;
      (** rejections the trace-based detector justified *)
  unconfirmed_rejections : int;
      (** possibly-conservative rejections — logged, not fatal *)
  skipped : int;
  failures : failure list;
}

val pp_report : Format.formatter -> report -> unit
val pp_divergences : Format.formatter -> Oracle.divergence list -> unit

val fuzz :
  ?backends:Oracle.backend list ->
  ?check_memsim:bool ->
  ?shrink:bool ->
  ?on_case:(index:int -> outcome:Oracle.outcome -> unit) ->
  ?tracer:Itf_obs.Tracer.t ->
  ?metrics:Itf_obs.Metrics.t ->
  seed:int ->
  budget:int ->
  unit ->
  report
(** Run [budget] cases from [seed]. Deterministic for fixed arguments
    (modulo the [`C] leg's availability of a compiler). [tracer] records
    one [fuzz.case] span per case (with its oracle outcome as an
    attribute; simulator spans nest below via the ambient tracer);
    [metrics] accumulates [fuzz.cases{outcome=...}] counters. *)

val replay :
  ?backends:Oracle.backend list ->
  ?check_memsim:bool ->
  Gen.case ->
  Oracle.outcome
(** Judge a single (typically corpus-loaded) case. *)
