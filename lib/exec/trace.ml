open Itf_ir

let ascii_order env (nest : Nest.t) =
  let depth = Nest.depth nest in
  if depth < 1 || depth > 2 then
    invalid_arg
      (Printf.sprintf
         "Trace.ascii_order: only 1- or 2-deep nests (nest is %d deep)" depth);
  let order = Interp.iteration_order env nest in
  if order = [] then invalid_arg "Trace.ascii_order: empty iteration space";
  let order =
    if depth = 1 then List.map (fun it -> [| it.(0); 0 |]) order else order
  in
  let xs = List.map (fun it -> it.(0)) order in
  let ys = List.map (fun it -> it.(1)) order in
  let xmin = List.fold_left min (List.hd xs) xs in
  let xmax = List.fold_left max (List.hd xs) xs in
  let ymin = List.fold_left min (List.hd ys) ys in
  let ymax = List.fold_left max (List.hd ys) ys in
  let grid = Array.make_matrix (xmax - xmin + 1) (ymax - ymin + 1) (-1) in
  List.iteri
    (fun ord it ->
      let r = it.(0) - xmin and c = it.(1) - ymin in
      if grid.(r).(c) < 0 then grid.(r).(c) <- ord)
    order;
  let b = Buffer.create 256 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun c v ->
          if c > 0 then Buffer.add_char b ' ';
          if v < 0 then Buffer.add_string b "  ."
          else Buffer.add_string b (Printf.sprintf "%3d" (v mod 1000)))
        row;
      Buffer.add_char b '\n')
    grid;
  Buffer.contents b
