type access_kind = Read | Write

type access = { array : string; flat : int; kind : access_kind }

type array_info = {
  los : int array;
  his : int array;
  strides : int array;
  data : int array;
}

type t = {
  arrays : (string, array_info) Hashtbl.t;
  scalars : (string, int) Hashtbl.t;
  funcs : (string, int list -> int) Hashtbl.t;
  mutable tracer : (access -> unit) option;
}

let create () =
  {
    arrays = Hashtbl.create 16;
    scalars = Hashtbl.create 16;
    funcs = Hashtbl.create 16;
    tracer = None;
  }

let declare_array t name bounds =
  if Hashtbl.mem t.arrays name then
    invalid_arg ("Env.declare_array: duplicate " ^ name);
  if bounds = [] then invalid_arg "Env.declare_array: no dimensions";
  let los = Array.of_list (List.map fst bounds) in
  let his = Array.of_list (List.map snd bounds) in
  let n = Array.length los in
  Array.iteri
    (fun k lo -> if his.(k) < lo then invalid_arg "Env.declare_array: empty dim")
    los;
  let strides = Array.make n 1 in
  for k = n - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * (his.(k + 1) - los.(k + 1) + 1)
  done;
  let size = strides.(0) * (his.(0) - los.(0) + 1) in
  Hashtbl.add t.arrays name { los; his; strides; data = Array.make size 0 }

let declare_function t name f = Hashtbl.replace t.funcs name f

let find_function t name = Hashtbl.find_opt t.funcs name

let set_scalar t v x = Hashtbl.replace t.scalars v x

let get_scalar t v =
  match Hashtbl.find_opt t.scalars v with
  | Some x -> x
  | None -> raise Not_found

let find_scalar t v = Hashtbl.find_opt t.scalars v

let info t name =
  match Hashtbl.find_opt t.arrays name with
  | Some i -> i
  | None -> invalid_arg ("Env: undeclared array " ^ name)

let array_info = info

let oob name k x lo hi =
  invalid_arg
    (Printf.sprintf "Env: %s subscript %d = %d out of [%d, %d]" name k x lo hi)

let arity_error name expect got =
  invalid_arg
    (Printf.sprintf "Env: %s expects %d subscripts, got %d" name expect got)

(* Single left-to-right walk: fuses the arity check (previously a separate
   [List.length] pass) with the per-dimension bounds checks and the flat
   offset accumulation. *)
let flat_of (i : array_info) name idx =
  let n = Array.length i.los in
  let rec go k flat = function
    | [] -> if k = n then flat else arity_error name n k
    | x :: rest ->
      if k = n then arity_error name n (k + 1 + List.length rest)
      else begin
        if x < i.los.(k) || x > i.his.(k) then oob name k x i.los.(k) i.his.(k);
        go (k + 1) (flat + ((x - i.los.(k)) * i.strides.(k))) rest
      end
  in
  go 0 0 idx

let flat_index t name idx = flat_of (info t name) name idx

let trace t array flat kind =
  match t.tracer with None -> () | Some f -> f { array; flat; kind }

let read t name idx =
  let i = info t name in
  let flat = flat_of i name idx in
  trace t name flat Read;
  i.data.(flat)

let write t name idx v =
  let i = info t name in
  let flat = flat_of i name idx in
  trace t name flat Write;
  i.data.(flat) <- v

let call t name args =
  match (name, args) with
  | "abs", [ x ] -> abs x
  | "sgn", [ x ] -> compare x 0
  | _ -> (
    match Hashtbl.find_opt t.funcs name with
    | Some f -> f args
    | None -> invalid_arg ("Env: unknown function " ^ name))

let array_data t name = (info t name).data

let array_size t name = Array.length (info t name).data

let set_tracer t f = t.tracer <- f

let snapshot t =
  Hashtbl.fold (fun name i acc -> (name, Array.copy i.data) :: acc) t.arrays []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
