open Itf_ir

type pardo_order = [ `Forward | `Reverse | `Shuffle of int ]

let fdiv a b =
  if b = 0 then raise Division_by_zero;
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let fmod a b = a - (b * fdiv a b)

(* Evaluation order is part of the observable semantics (the tracer sees
   array touches as they happen, and the cache simulator is order
   sensitive), so operands are forced left to right explicitly rather than
   left to OCaml's unspecified application order. The compiled backend
   ({!Compile}) mirrors this order exactly. *)
let rec eval env (e : Expr.t) =
  match e with
  | Int n -> n
  | Var v -> Env.get_scalar env v
  | Neg a -> -eval env a
  | Add (a, b) ->
    let x = eval env a in
    x + eval env b
  | Sub (a, b) ->
    let x = eval env a in
    x - eval env b
  | Mul (a, b) ->
    let x = eval env a in
    x * eval env b
  | Div (a, b) ->
    let x = eval env a in
    fdiv x (eval env b)
  | Mod (a, b) ->
    let x = eval env a in
    fmod x (eval env b)
  | Min (a, b) ->
    let x = eval env a in
    min x (eval env b)
  | Max (a, b) ->
    let x = eval env a in
    max x (eval env b)
  | Load { array; index } -> Env.read env array (eval_list env index)
  | Call (f, args) -> Env.call env f (eval_list env args)

(* List.map with a guaranteed left-to-right evaluation order. *)
and eval_list env = function
  | [] -> []
  | e :: rest ->
    let x = eval env e in
    x :: eval_list env rest

let rec run_stmt env (s : Stmt.t) =
  match s with
  | Stmt.Store ({ array; index }, rhs) ->
    (* Subscripts first, then the value: matches source order reading. *)
    let idx = eval_list env index in
    Env.write env array idx (eval env rhs)
  | Stmt.Set (v, rhs) -> Env.set_scalar env v (eval env rhs)
  | Stmt.Guard { lhs; rel; rhs; body } ->
    let a = eval env lhs in
    let b = eval env rhs in
    if Stmt.holds rel a b then List.iter (run_stmt env) body

(* Deterministic Fisher-Yates from a seed (independent of global Random
   state so runs are reproducible). *)
let shuffle seed arr =
  let st = Random.State.make [| seed; Array.length arr |] in
  for k = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (k + 1) in
    let tmp = arr.(k) in
    arr.(k) <- arr.(j);
    arr.(j) <- tmp
  done

let loop_header env (l : Nest.loop) =
  let lo = eval env l.Nest.lo in
  let hi = eval env l.Nest.hi in
  let step = eval env l.Nest.step in
  if step = 0 then invalid_arg ("Interp: zero step in loop " ^ l.Nest.var);
  (lo, step, max 0 (fdiv (hi - lo) step + 1))

let iteration_values env (l : Nest.loop) =
  let lo, step, count = loop_header env l in
  Array.init count (fun k -> lo + (k * step))

let run ?(pardo_order = `Forward) ?on_iteration ?on_ordinals ?after_inits env
    (nest : Nest.t) =
  let loop_vars = Array.of_list (Nest.loop_vars nest) in
  let depth = List.length nest.Nest.loops in
  let ordinals = Array.make depth 0 in
  let body () =
    (match on_iteration with
    | None -> ()
    | Some f ->
      f (Array.map (fun v -> Env.get_scalar env v) loop_vars));
    (match on_ordinals with None -> () | Some f -> f (Array.copy ordinals));
    List.iter (run_stmt env) nest.Nest.inits;
    (match after_inits with None -> () | Some f -> f ());
    List.iter (run_stmt env) nest.Nest.body
  in
  let rec go level = function
    | [] -> body ()
    | (l : Nest.loop) :: rest -> (
      match (l.Nest.kind, pardo_order) with
      | Nest.Do, _ | Nest.Pardo, `Forward ->
        (* Fast path: ordinals equal positions, so no per-entry
           (value, ordinal) pairing array is materialized. *)
        let lo, step, count = loop_header env l in
        for k = 0 to count - 1 do
          Env.set_scalar env l.Nest.var (lo + (k * step));
          ordinals.(level) <- k;
          go (level + 1) rest
        done
      | Nest.Pardo, (`Reverse | `Shuffle _) ->
        (* Pair each value with its logical position in the loop's sequence,
           so ordinals are stable under pardo reordering. *)
        let values =
          Array.mapi (fun k x -> (x, k)) (iteration_values env l)
        in
        (match pardo_order with
        | `Forward -> ()
        | `Reverse ->
          let n = Array.length values in
          for k = 0 to (n / 2) - 1 do
            let tmp = values.(k) in
            values.(k) <- values.(n - 1 - k);
            values.(n - 1 - k) <- tmp
          done
        | `Shuffle seed -> shuffle seed values);
        Array.iter
          (fun (x, ord) ->
            Env.set_scalar env l.Nest.var x;
            ordinals.(level) <- ord;
            go (level + 1) rest)
          values)
  in
  go 0 nest.Nest.loops

let iteration_order ?(pardo_order = `Forward) env nest =
  let acc = ref [] in
  run ~pardo_order ~on_iteration:(fun iter -> acc := Array.copy iter :: !acc) env nest;
  List.rev !acc
