(** Interpreter for loop nests — the semantic oracle.

    Running a nest evaluates loop bounds outside-in (bounds may reference
    outer index variables and symbolic parameters held as scalars), executes
    the initialization statements and then the body on every innermost
    iteration, and respects floor division/modulo semantics identical to
    {!Itf_ir.Expr}'s constant folder.

    [pardo] loops are sequentially simulated, but their iteration order is
    controlled by [pardo_order]: a transformation that parallelizes a loop
    is semantically correct only if results are identical under {e any}
    order, so tests run both [`Forward] and adversarial orders. *)

open Itf_ir

type pardo_order =
  [ `Forward  (** same order as a sequential loop *)
  | `Reverse  (** worst-case adversarial reversal *)
  | `Shuffle of int  (** deterministic pseudo-random order from a seed *) ]

val eval : Env.t -> Expr.t -> int
(** Evaluate an expression in the environment.
    @raise Not_found on unset scalars;
    @raise Invalid_argument on bad array accesses;
    @raise Division_by_zero. *)

val run_stmt : Env.t -> Stmt.t -> unit

val iteration_values : Env.t -> Nest.loop -> int array
(** The sequence of values a loop variable takes, given the current
    environment (outer loop variables and parameters must be set).
    @raise Invalid_argument on a zero step. *)

val shuffle : int -> 'a array -> unit
(** The deterministic in-place Fisher-Yates permutation behind
    [`Shuffle seed] — exposed so {!Compile} reproduces the exact same
    pardo orders (the permutation depends only on the seed and the array
    length). *)

val run : ?pardo_order:pardo_order -> ?on_iteration:(int array -> unit) ->
  ?on_ordinals:(int array -> unit) -> ?after_inits:(unit -> unit) ->
  Env.t -> Nest.t -> unit
(** Execute the nest. [on_iteration] is called once per innermost iteration
    {e before} the body, with the current values of the nest's loop
    variables (outermost first) — used to record execution order.
    [on_ordinals] receives instead the per-loop {e iteration numbers}
    (0-based logical positions within each loop's value sequence, stable
    under pardo reordering) — the coordinates of the paper's execution
    instances (Definition 3.3). [after_inits] is called between the
    initialization statements and the body proper; at that point the
    {e original} index variables are defined in the environment, which lets
    tests relate transformed iterations back to source iterations. *)

val iteration_order : ?pardo_order:pardo_order -> Env.t -> Nest.t -> int array list
(** Just the sequence of iteration vectors, in execution order (the nest is
    executed; array state changes). *)
