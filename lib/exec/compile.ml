open Itf_ir

type pardo_order = Interp.pardo_order

type addr = {
  base_of : string -> int;
  elem_bytes : int;
  touch : int -> unit;
}

(* Keep in sync with Interp.fdiv / Expr's constant folder. *)
let fdiv a b =
  if b = 0 then raise Division_by_zero;
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let fmod a b = a - (b * fdiv a b)

type level = {
  kind : Nest.kind;
  var : string;
  slot : int;
  lo : unit -> int;
  hi : unit -> int;
  step : unit -> int;
}

type t = {
  env : Env.t;
  frame : int array;
  names : string array;  (** slot -> scalar name *)
  loop_slots : int array;
  levels : level array;
  body : unit -> unit;
}

let oob name k x lo hi =
  invalid_arg
    (Printf.sprintf "Env: %s subscript %d = %d out of [%d, %d]" name k x lo hi)

let compile ?trace ?addr env (nest : Nest.t) =
  (* Every scalar the nest can touch gets a frame slot: loop variables,
     symbolic parameters, statement-defined scalars — including targets of
     [Set]s nested inside guards, which [Nest.all_vars] does not list when
     they are never read. *)
  let names =
    Array.of_list
      (List.sort_uniq String.compare
         (Nest.all_vars nest
         @ List.concat_map Stmt.defined_vars (nest.Nest.inits @ nest.Nest.body)
         ))
  in
  let slots = Hashtbl.create 16 in
  Array.iteri (fun k v -> Hashtbl.replace slots v k) names;
  let frame = Array.make (max 1 (Array.length names)) 0 in
  let slot v =
    match Hashtbl.find_opt slots v with
    | Some s -> s
    | None -> invalid_arg ("Compile: unknown scalar " ^ v)
  in
  (* Per-site memory hook, resolved once at compile time: the tracer call
     and/or the cache touch with the array's base address pre-fetched — no
     per-access name resolution, no option test on the hot path. *)
  let hook array kind : (int -> unit) option =
    let tr =
      match trace with
      | None -> None
      | Some f -> Some (fun flat -> f { Env.array; flat; kind })
    in
    let ad =
      match addr with
      | None -> None
      | Some { base_of; elem_bytes; touch } ->
        let base = base_of array in
        Some (fun flat -> touch (base + (flat * elem_bytes)))
    in
    match (tr, ad) with
    | None, None -> None
    | Some t, None -> Some t
    | None, Some a -> Some a
    | Some t, Some a ->
      Some
        (fun flat ->
          t flat;
          a flat)
  in
  let rec cexpr (e : Expr.t) : unit -> int =
    match e with
    | Int n -> fun () -> n
    | Var v ->
      let s = slot v in
      fun () -> Array.unsafe_get frame s
    | Neg a ->
      let fa = cexpr a in
      fun () -> -fa ()
    | Add (a, b) ->
      let fa = cexpr a and fb = cexpr b in
      fun () ->
        let x = fa () in
        x + fb ()
    | Sub (a, b) ->
      let fa = cexpr a and fb = cexpr b in
      fun () ->
        let x = fa () in
        x - fb ()
    | Mul (a, b) ->
      let fa = cexpr a and fb = cexpr b in
      fun () ->
        let x = fa () in
        x * fb ()
    | Div (a, b) ->
      let fa = cexpr a and fb = cexpr b in
      fun () ->
        let x = fa () in
        fdiv x (fb ())
    | Mod (a, b) ->
      let fa = cexpr a and fb = cexpr b in
      fun () ->
        let x = fa () in
        fmod x (fb ())
    | Min (a, b) ->
      let fa = cexpr a and fb = cexpr b in
      fun () ->
        let x = fa () in
        min x (fb ())
    | Max (a, b) ->
      let fa = cexpr a and fb = cexpr b in
      fun () ->
        let x = fa () in
        max x (fb ())
    | Load a -> cload a
    | Call ("abs", [ a ]) ->
      let fa = cexpr a in
      fun () -> abs (fa ())
    | Call ("sgn", [ a ]) ->
      let fa = cexpr a in
      fun () -> compare (fa ()) 0
    | Call (f, args) -> (
      let fs = List.map cexpr args in
      let eval_args () = force_list fs in
      match Env.find_function env f with
      | Some fn -> fun () -> fn (eval_args ())
      | None ->
        (* Not registered yet: fall back to the env at run time, so late
           [declare_function] still works (and unknown names raise the same
           error as the interpreter). *)
        fun () -> Env.call env f (eval_args ()))
  (* Left-to-right, like Interp.eval_list. *)
  and force_list = function
    | [] -> []
    | f :: rest ->
      let x = f () in
      x :: force_list rest
  (* Flat-offset computation specialized by arity: all subscripts are
     evaluated left to right, then bounds-checked left to right (the
     interpreter's observable order), then linearized without any list
     traversal. The per-dimension checks prove [flat] is within the data
     array, so loads/stores below use unsafe accesses. *)
  and cflat name (info : Env.array_info) index : unit -> int =
    let los = info.Env.los and his = info.Env.his in
    let strides = info.Env.strides in
    let n = Array.length los in
    (match List.length index with
    | a when a <> n ->
      invalid_arg
        (Printf.sprintf "Env: %s expects %d subscripts, got %d" name n a)
    | _ -> ());
    match index with
    | [ i0 ] ->
      let f0 = cexpr i0 in
      let lo0 = los.(0) and hi0 = his.(0) in
      fun () ->
        let x0 = f0 () in
        if x0 < lo0 || x0 > hi0 then oob name 0 x0 lo0 hi0;
        x0 - lo0
    | [ i0; i1 ] ->
      let f0 = cexpr i0 and f1 = cexpr i1 in
      let lo0 = los.(0) and hi0 = his.(0) and s0 = strides.(0) in
      let lo1 = los.(1) and hi1 = his.(1) in
      fun () ->
        let x0 = f0 () in
        let x1 = f1 () in
        if x0 < lo0 || x0 > hi0 then oob name 0 x0 lo0 hi0;
        if x1 < lo1 || x1 > hi1 then oob name 1 x1 lo1 hi1;
        ((x0 - lo0) * s0) + (x1 - lo1)
    | [ i0; i1; i2 ] ->
      let f0 = cexpr i0 and f1 = cexpr i1 and f2 = cexpr i2 in
      let lo0 = los.(0) and hi0 = his.(0) and s0 = strides.(0) in
      let lo1 = los.(1) and hi1 = his.(1) and s1 = strides.(1) in
      let lo2 = los.(2) and hi2 = his.(2) in
      fun () ->
        let x0 = f0 () in
        let x1 = f1 () in
        let x2 = f2 () in
        if x0 < lo0 || x0 > hi0 then oob name 0 x0 lo0 hi0;
        if x1 < lo1 || x1 > hi1 then oob name 1 x1 lo1 hi1;
        if x2 < lo2 || x2 > hi2 then oob name 2 x2 lo2 hi2;
        ((x0 - lo0) * s0) + ((x1 - lo1) * s1) + (x2 - lo2)
    | _ ->
      let fs = Array.of_list (List.map cexpr index) in
      let buf = Array.make n 0 in
      fun () ->
        for k = 0 to n - 1 do
          buf.(k) <- (Array.unsafe_get fs k) ()
        done;
        let flat = ref 0 in
        for k = 0 to n - 1 do
          let x = buf.(k) in
          if x < los.(k) || x > his.(k) then oob name k x los.(k) his.(k);
          flat := !flat + ((x - los.(k)) * strides.(k))
        done;
        !flat
  and cload { Expr.array; index } =
    let info = Env.array_info env array in
    let data = info.Env.data in
    let flat = cflat array info index in
    match hook array Env.Read with
    | None -> fun () -> Array.unsafe_get data (flat ())
    | Some h ->
      fun () ->
        let f = flat () in
        h f;
        Array.unsafe_get data f
  in
  (* A store evaluates subscripts, then the right-hand side, and only then
     bounds-checks and writes — the interpreter's order ([Env.write] checks
     after [eval rhs] has run). *)
  let cstore { Expr.array; index } rhs =
    let info = Env.array_info env array in
    let data = info.Env.data in
    let los = info.Env.los and his = info.Env.his in
    let strides = info.Env.strides in
    let n = Array.length los in
    (match List.length index with
    | a when a <> n ->
      invalid_arg
        (Printf.sprintf "Env: %s expects %d subscripts, got %d" array n a)
    | _ -> ());
    let frhs = cexpr rhs in
    let finish =
      match hook array Env.Write with
      | None -> fun flat v -> Array.unsafe_set data flat v
      | Some h ->
        fun flat v ->
          h flat;
          Array.unsafe_set data flat v
    in
    match index with
    | [ i0 ] ->
      let f0 = cexpr i0 in
      let lo0 = los.(0) and hi0 = his.(0) in
      fun () ->
        let x0 = f0 () in
        let v = frhs () in
        if x0 < lo0 || x0 > hi0 then oob array 0 x0 lo0 hi0;
        finish (x0 - lo0) v
    | [ i0; i1 ] ->
      let f0 = cexpr i0 and f1 = cexpr i1 in
      let lo0 = los.(0) and hi0 = his.(0) and s0 = strides.(0) in
      let lo1 = los.(1) and hi1 = his.(1) in
      fun () ->
        let x0 = f0 () in
        let x1 = f1 () in
        let v = frhs () in
        if x0 < lo0 || x0 > hi0 then oob array 0 x0 lo0 hi0;
        if x1 < lo1 || x1 > hi1 then oob array 1 x1 lo1 hi1;
        finish (((x0 - lo0) * s0) + (x1 - lo1)) v
    | [ i0; i1; i2 ] ->
      let f0 = cexpr i0 and f1 = cexpr i1 and f2 = cexpr i2 in
      let lo0 = los.(0) and hi0 = his.(0) and s0 = strides.(0) in
      let lo1 = los.(1) and hi1 = his.(1) and s1 = strides.(1) in
      let lo2 = los.(2) and hi2 = his.(2) in
      fun () ->
        let x0 = f0 () in
        let x1 = f1 () in
        let x2 = f2 () in
        let v = frhs () in
        if x0 < lo0 || x0 > hi0 then oob array 0 x0 lo0 hi0;
        if x1 < lo1 || x1 > hi1 then oob array 1 x1 lo1 hi1;
        if x2 < lo2 || x2 > hi2 then oob array 2 x2 lo2 hi2;
        finish (((x0 - lo0) * s0) + ((x1 - lo1) * s1) + (x2 - lo2)) v
    | _ ->
      let fs = Array.of_list (List.map cexpr index) in
      let buf = Array.make n 0 in
      fun () ->
        for k = 0 to n - 1 do
          buf.(k) <- (Array.unsafe_get fs k) ()
        done;
        let v = frhs () in
        let flat = ref 0 in
        for k = 0 to n - 1 do
          let x = buf.(k) in
          if x < los.(k) || x > his.(k) then oob array k x los.(k) his.(k);
          flat := !flat + ((x - los.(k)) * strides.(k))
        done;
        finish !flat v
  in
  let rec cstmt (s : Stmt.t) : unit -> unit =
    match s with
    | Stmt.Store (a, rhs) -> cstore a rhs
    | Stmt.Set (v, rhs) ->
      let s = slot v in
      let f = cexpr rhs in
      fun () -> Array.unsafe_set frame s (f ())
    | Stmt.Guard { lhs; rel; rhs; body } ->
      let fl = cexpr lhs and fr = cexpr rhs in
      let fb = Array.of_list (List.map cstmt body) in
      let nb = Array.length fb in
      let test : int -> int -> bool =
        match rel with
        | Stmt.Lt -> fun a b -> a < b
        | Stmt.Le -> fun a b -> a <= b
        | Stmt.Gt -> fun a b -> a > b
        | Stmt.Ge -> fun a b -> a >= b
        | Stmt.Eq -> fun a b -> a = b
        | Stmt.Ne -> fun a b -> a <> b
      in
      fun () ->
        let a = fl () in
        let b = fr () in
        if test a b then
          for k = 0 to nb - 1 do
            (Array.unsafe_get fb k) ()
          done
  in
  let stmts =
    Array.of_list (List.map cstmt (nest.Nest.inits @ nest.Nest.body))
  in
  let ns = Array.length stmts in
  let body () =
    for k = 0 to ns - 1 do
      (Array.unsafe_get stmts k) ()
    done
  in
  let levels =
    Array.of_list
      (List.map
         (fun (l : Nest.loop) ->
           {
             kind = l.Nest.kind;
             var = l.Nest.var;
             slot = slot l.Nest.var;
             lo = cexpr l.Nest.lo;
             hi = cexpr l.Nest.hi;
             step = cexpr l.Nest.step;
           })
         nest.Nest.loops)
  in
  let loop_slots =
    Array.map (fun (lv : level) -> lv.slot) levels
  in
  { env; frame; names; loop_slots; levels; body }

let sync t =
  Array.iteri
    (fun k name ->
      match Env.find_scalar t.env name with
      | Some x -> t.frame.(k) <- x
      | None -> t.frame.(k) <- 0)
    t.names

let header (lv : level) =
  let lo = lv.lo () in
  let hi = lv.hi () in
  let step = lv.step () in
  if step = 0 then invalid_arg ("Compile: zero step in loop " ^ lv.var);
  (lo, step, max 0 (fdiv (hi - lo) step + 1))

let depth t = Array.length t.levels

let loop_kind t k = t.levels.(k).kind

let loop_bounds t k = header t.levels.(k)

let set_loop_var t k x = t.frame.(t.levels.(k).slot) <- x

let run ?(pardo_order = `Forward) ?on_iteration ?on_ordinals t =
  sync t;
  let depth = Array.length t.levels in
  let frame = t.frame in
  let ordinals = Array.make depth 0 in
  let body =
    match (on_iteration, on_ordinals) with
    | None, None -> t.body
    | _ ->
      fun () ->
        (match on_iteration with
        | None -> ()
        | Some f ->
          f (Array.map (fun s -> frame.(s)) t.loop_slots));
        (match on_ordinals with
        | None -> ()
        | Some f -> f (Array.copy ordinals));
        t.body ()
  in
  let track_ordinals = on_ordinals <> None in
  (* Build the loop runner innermost-out once per run; the per-iteration
     work is a slot write plus a direct closure call. *)
  let rec go level : unit -> unit =
    if level = depth then body
    else
      let lv = t.levels.(level) in
      let inner = go (level + 1) in
      let s = lv.slot in
      match (lv.kind, pardo_order) with
      | Nest.Do, _ | Nest.Pardo, `Forward ->
        if track_ordinals then
          fun () ->
            let lo, step, count = header lv in
            for k = 0 to count - 1 do
              Array.unsafe_set frame s (lo + (k * step));
              ordinals.(level) <- k;
              inner ()
            done
        else
          fun () ->
            let lo, step, count = header lv in
            for k = 0 to count - 1 do
              Array.unsafe_set frame s (lo + (k * step));
              inner ()
            done
      | Nest.Pardo, (`Reverse | `Shuffle _) ->
        fun () ->
          let lo, step, count = header lv in
          let pairs = Array.init count (fun k -> (lo + (k * step), k)) in
          (match pardo_order with
          | `Forward -> ()
          | `Reverse ->
            for k = 0 to (count / 2) - 1 do
              let tmp = pairs.(k) in
              pairs.(k) <- pairs.(count - 1 - k);
              pairs.(count - 1 - k) <- tmp
            done
          | `Shuffle seed -> Interp.shuffle seed pairs);
          Array.iter
            (fun (x, ord) ->
              Array.unsafe_set frame s x;
              ordinals.(level) <- ord;
              inner ())
            pairs
  in
  (go 0) ()

let iteration_order ?(pardo_order = `Forward) t =
  let acc = ref [] in
  run ~pardo_order ~on_iteration:(fun it -> acc := it :: !acc) t;
  List.rev !acc
