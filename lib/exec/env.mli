(** Mutable execution environment: arrays, scalars, and interpreted
    functions.

    Arrays are dense integer arrays with per-dimension lower/upper bounds
    (Fortran-style, any base), stored row-major. Uninterpreted calls in
    expressions (e.g. the [colstr]/[rowidx] access functions of the paper's
    sparse-matrix example) are resolved against registered functions. *)

type t

type access_kind = Read | Write

type access = { array : string; flat : int; kind : access_kind }
(** [flat] is the row-major offset of the touched element — the "address"
    used by the cache simulator. *)

type array_info = private {
  los : int array;
  his : int array;
  strides : int array;  (** row-major; the last stride is always 1 *)
  data : int array;
}
(** The resolved layout of one declared array — exposed (read-only) so the
    compiled backend ({!Compile}) can specialize accesses once instead of
    re-resolving the name on every element touch. *)

val create : unit -> t

val declare_array : t -> string -> (int * int) list -> unit
(** [declare_array env name [(lo1, hi1); ...]] allocates a zero-filled array
    with the given inclusive per-dimension bounds.
    @raise Invalid_argument if already declared or a bound is empty. *)

val declare_function : t -> string -> (int list -> int) -> unit
val find_function : t -> string -> (int list -> int) option

val set_scalar : t -> string -> int -> unit
val get_scalar : t -> string -> int
(** @raise Not_found if unset. *)

val find_scalar : t -> string -> int option

val read : t -> string -> int list -> int
val write : t -> string -> int list -> int -> unit
(** @raise Invalid_argument on unknown arrays or out-of-bounds subscripts. *)

val call : t -> string -> int list -> int
(** Applies a registered function; ["abs"] and ["sgn"] are builtins. *)

val flat_index : t -> string -> int list -> int

val array_info : t -> string -> array_info
(** @raise Invalid_argument on undeclared arrays. *)

val array_data : t -> string -> int array
(** The raw backing store (row-major), e.g. to compare results. *)

val array_size : t -> string -> int

val set_tracer : t -> (access -> unit) option -> unit
(** When set, the tracer is invoked on every array read/write. *)

val snapshot : t -> (string * int array) list
(** Copies of all arrays, sorted by name — for result comparison. *)
