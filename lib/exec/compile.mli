(** Compiled execution backend: slot-resolved closures.

    [compile] makes a one-time pass over a nest and its environment and
    produces a closure program: every scalar name is resolved to an integer
    slot in a flat frame, every array access is specialized against the
    array's resolved layout ({!Env.array_info} — data, strides, bases) with
    subscript linearization unrolled by arity, and loop bounds, guards and
    statements become OCaml closures over the frame. Running the compiled
    program performs no name resolution, no [Hashtbl] lookups, and no list
    traversals on the per-iteration path.

    The tree-walking {!Interp} remains the semantic oracle: on the same
    environment, a compiled run produces identical array contents,
    identical iteration/ordinal order (including [`Reverse] and
    [`Shuffle]d pardo orders — the permutation is shared), identical trace
    event sequences, and raises the same exceptions for out-of-bounds
    subscripts and division by zero ([test/test_compile.ml] asserts all of
    this differentially). Known deliberate differences: subscript-arity
    mismatches and undeclared arrays are reported at compile time instead
    of at the first faulting access, a zero step is reported with a
    ["Compile: ..."] message, and scalars are {e not} written back to the
    environment (arrays are shared with it; reads of scalars the
    environment does not define see 0 where the interpreter raises
    [Not_found]). *)

open Itf_ir

type t
(** A nest compiled against a fixed environment. Reusable: each {!run}
    re-reads the environment's scalar parameters (see {!sync}). *)

type pardo_order = Interp.pardo_order

type addr = {
  base_of : string -> int;
      (** line-aligned base address of an array, queried once per access
          site at compile time *)
  elem_bytes : int;
  touch : int -> unit;  (** called with [base + flat * elem_bytes] *)
}
(** Fused memory-model hook: with [?addr], every compiled load/store calls
    [touch] directly with the element's simulated byte address — the cache
    simulation runs inside the access closure instead of an [option]
    tracer doing a name lookup per access (cf. {!Itf_machine.Memsim}). *)

val compile : ?trace:(Env.access -> unit) -> ?addr:addr -> Env.t -> Nest.t -> t
(** Compile [nest] against [env]. All arrays the nest mentions must already
    be declared ([Invalid_argument] otherwise); functions may be registered
    later (unresolved calls fall back to the environment at run time).
    [?trace] compiles an {!Env.access} callback into every load/store —
    same event order as the interpreter's tracer. *)

val run :
  ?pardo_order:pardo_order ->
  ?on_iteration:(int array -> unit) ->
  ?on_ordinals:(int array -> unit) ->
  t ->
  unit
(** Execute the compiled nest; same contract as {!Interp.run}. Scalar
    parameters are re-read from the environment first, so the same compiled
    program can be rerun after [Env.set_scalar]. The iteration hooks cost
    nothing when absent (the plain body closure runs unwrapped). *)

val iteration_order : ?pardo_order:pardo_order -> t -> int array list
(** As {!Interp.iteration_order}, on the compiled program. *)

(** {1 Frame access for machine models}

    {!Itf_machine.Parallel} walks loop headers without executing bodies;
    these entry points evaluate compiled bounds against the current frame
    directly. *)

val sync : t -> unit
(** Load the environment's scalars into the frame (slots without a value in
    the environment are zeroed). [run] does this automatically. *)

val depth : t -> int

val loop_kind : t -> int -> Nest.kind

val loop_bounds : t -> int -> int * int * int
(** [loop_bounds t level] evaluates level [level]'s compiled bounds against
    the current frame: [(lo, step, trip_count)].
    @raise Invalid_argument on a zero step. *)

val set_loop_var : t -> int -> int -> unit
(** [set_loop_var t level x] writes [x] into the frame slot of level
    [level]'s loop variable (visible to inner [loop_bounds]). *)
