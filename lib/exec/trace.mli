(** Textual visualization of iteration orders.

    For a 1- or 2-deep nest, draw the iteration space as a grid whose cell
    values are execution ordinals — the quickest way to {e see} what a
    transformation did to the traversal (row-major, wavefront, tiles...).
    Rows are values of the first loop variable, columns of the second, both
    ascending; cells print modulo 1000. *)

open Itf_ir

val ascii_order : Env.t -> Nest.t -> string
(** The environment must define the nest's symbolic parameters; the nest is
    executed (array state changes; declare arrays first if the body stores).
    @raise Invalid_argument for nests deeper than 2 or with empty spaces. *)
