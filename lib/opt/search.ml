open Itf_ir
module Template = Itf_core.Template
module Framework = Itf_core.Framework

module Sequence = Itf_core.Sequence

type objective = Framework.result -> float

type outcome = {
  sequence : Itf_core.Sequence.t;
  result : Framework.result;
  score : float;
  explored : int;
  checked_templates : int;
}

(* ------------------------------------------------------------------ *)
(* Moves                                                               *)
(* ------------------------------------------------------------------ *)

let moves ?(block_sizes = [ 4; 8 ]) (_ : Nest.t) ~depth =
  let n = depth in
  let interchanges =
    List.concat
      (List.init n (fun a ->
           List.filter_map
             (fun b -> if a < b then Some (Template.interchange ~n a b) else None)
             (List.init n Fun.id)))
  in
  let reversals = List.init n (fun k -> Template.reversal ~n k) in
  let skews =
    if n < 2 then []
    else
      List.concat
        (List.init (n - 1) (fun k ->
             [
               Template.skew ~n ~src:k ~dst:(k + 1) ~factor:1;
               Template.skew ~n ~src:k ~dst:(k + 1) ~factor:(-1);
             ]))
  in
  let parallelizations = List.init n (fun k -> Template.parallelize_one ~n k) in
  let blocks =
    if n > 3 then []
    else
      List.concat_map
        (fun bs ->
          List.concat
            (List.init n (fun i ->
                 List.filter_map
                   (fun j ->
                     if i <= j then
                       Some
                         (Template.block ~n ~i ~j
                            ~bsize:(Array.make (j - i + 1) (Expr.int bs)))
                     else None)
                   (List.init n Fun.id))))
        block_sizes
  in
  let coalesces = if n >= 2 then [ Template.coalesce ~n ~i:0 ~j:(n - 1) ] else [] in
  interchanges @ reversals @ skews @ parallelizations @ blocks @ coalesces

(* ------------------------------------------------------------------ *)
(* Beam search                                                         *)
(* ------------------------------------------------------------------ *)

(* Candidates are ordered by (score, canonical sequence, raw sequence) — a
   total order, so beam cut-offs and the final winner never depend on the
   physical order in which candidates were generated. *)
let order (s1, c1, _, x1) (s2, c2, _, x2) =
  let c = Float.compare x1 x2 in
  if c <> 0 then c
  else
    let c = Sequence.compare c1 c2 in
    if c <> 0 then c else Sequence.compare s1 s2

let best ?(beam = 6) ?(steps = 3) ?block_sizes nest objective =
  let explored = ref 0 in
  let checked_templates = ref 0 in
  let vectors = Itf_dep.Analysis.vectors nest in
  let try_seq ~canon seq =
    incr explored;
    match Framework.apply ~count:checked_templates ~vectors nest seq with
    | Ok result -> (
      match objective result with
      | score when Float.is_nan score -> None
      | score -> Some (seq, canon, result, score)
      | exception _ -> None)
    | Error _ -> None
  in
  match try_seq ~canon:[] [] with
  | None -> None
  | Some start ->
    let bests = ref [ start ] in
    let frontier = ref [ start ] in
    for _ = 1 to steps do
      (* Expansions that reduce to the same canonical sequence are the same
         transformation (e.g. interchange twice = identity): evaluate only
         the first spelling so duplicates cannot crowd the beam. The
         dedupe keys on the canonical sequence's intern id — an O(1)
         integer probe via {!Sequence.reduce_memo} instead of a structural
         hash-and-compare of whole template lists. *)
      let seen = Hashtbl.create 64 in
      let expansions =
        List.concat_map
          (fun (seq, _, result, _) ->
            let depth = Nest.depth result.Framework.nest in
            List.filter_map
              (fun t ->
                let cand = seq @ [ t ] in
                let canon, cid = Sequence.reduce_memo cand in
                if Hashtbl.mem seen cid then None
                else begin
                  Hashtbl.add seen cid ();
                  try_seq ~canon cand
                end)
              (moves ?block_sizes nest ~depth))
          !frontier
      in
      let top = List.filteri (fun k _ -> k < beam) (List.sort order expansions) in
      frontier := top;
      bests := top @ !bests
    done;
    (* [bests] may hold the same canonical sequence from several steps; the
       total order makes the minimum a canonical-level dedupe. *)
    let seq, _, result, score = List.hd (List.sort order !bests) in
    Some
      {
        sequence = seq;
        result;
        score;
        explored = !explored;
        checked_templates = !checked_templates;
      }

(* ------------------------------------------------------------------ *)
(* Objectives                                                          *)
(* ------------------------------------------------------------------ *)

(* Arrays referenced by a nest, with arity (duplicated from the test
   oracle: intentionally local, the optimizer must not depend on tests). *)
let array_arities (nest : Nest.t) =
  let tbl = Hashtbl.create 8 in
  let rec expr (e : Expr.t) =
    match e with
    | Int _ | Var _ -> ()
    | Neg a -> expr a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
    | Min (a, b) | Max (a, b) ->
      expr a;
      expr b
    | Load { array; index } ->
      Hashtbl.replace tbl array (List.length index);
      List.iter expr index
    | Call (_, args) -> List.iter expr args
  in
  let rec stmt = function
    | Stmt.Store ({ array; index }, rhs) ->
      Hashtbl.replace tbl array (List.length index);
      List.iter expr index;
      expr rhs
    | Stmt.Set (_, rhs) -> expr rhs
    | Stmt.Guard { lhs; rhs; body; _ } ->
      expr lhs;
      expr rhs;
      List.iter stmt body
  in
  List.iter stmt (nest.Nest.inits @ nest.Nest.body);
  Hashtbl.fold (fun a k acc -> (a, k) :: acc) tbl [] |> List.sort compare

let fill_array data = Array.iteri (fun k _ -> data.(k) <- (k * 31) mod 97) data

(* Array declarations come from {!Costmodel.default_bounds} so the tier-0
   cost model's layout assumptions (strides, whole-array footprints) match
   the environment the exact simulator actually runs in. *)
let make_env ~params arities =
  let env = Itf_exec.Env.create () in
  List.iter (fun (v, x) -> Itf_exec.Env.set_scalar env v x) params;
  List.iter
    (fun (a, arity) ->
      Itf_exec.Env.declare_array env a (Costmodel.default_bounds ~params arity);
      fill_array (Itf_exec.Env.array_data env a))
    arities;
  env

(* Per-domain reusable environment for the compiled backend: the dense
   arrays dominate per-evaluation allocation, and under {!Itf_exec.Compile}
   the only thing that mutates the environment is Store statements writing
   array elements (scalar [Set]s live in the compiled frame) — so
   re-filling the data in place rebuilds the exact fresh-env state. The
   interpreter also writes loop variables and scalars into the
   environment, so interpreted runs keep a fresh env per evaluation. *)
let env_scratch ~params () =
  let key = Domain.DLS.new_key (fun () -> ref None) in
  fun arities ->
    let cell = Domain.DLS.get key in
    match !cell with
    | Some (prev, env) when prev == arities ->
      List.iter
        (fun (a, _) -> fill_array (Itf_exec.Env.array_data env a))
        arities;
      env
    | _ ->
      let env = make_env ~params arities in
      cell := Some (arities, env);
      env

(* The framework never rewrites array accesses (paper §1: bodies are kept,
   initialization statements only define scalars), so the array-arity scan
   gives the same answer for every transformed nest of one search. Each
   objective instantiation scans once — on its first evaluation — and
   reuses the result; an [Atomic] cell keeps the memo safe when the engine
   evaluates candidates from several domains (a racing re-computation would
   store the identical value). *)
let memo_arities () =
  let cell = Atomic.make None in
  fun nest ->
    match Atomic.get cell with
    | Some arities -> arities
    | None ->
      let arities = array_arities nest in
      Atomic.set cell (Some arities);
      arities

type backend = [ `Interpreted | `Compiled ]

(* Metric updates below are atomic counter adds — commutative, so totals
   are identical whether the engine evaluates candidates sequentially or
   across domains. *)
let mcount metrics name n =
  match metrics with
  | None -> ()
  | Some m -> Itf_obs.Metrics.add (Itf_obs.Metrics.counter m name) n

(* Exact-objective memo tables, process-wide and shared by every
   instantiation. Both ready-made objectives are pure functions of
   (instantiation parameters, transformed nest): the simulated machine is
   deterministic and the synthetic environments are rebuilt identically
   per evaluation. Keying on an instantiation fingerprint plus the
   interned nest id therefore returns bit-identical floats while skipping
   the simulation entirely — including across engines, repeated searches
   over the same kernel, and the {e concurrent} searches of different
   serve workers, where most candidates recur. The tables are sharded
   ({!Itf_mat.Hashcons.Memo}) with the compute outside any lock, so
   concurrent searches neither serialize on a miss nor corrupt the table
   on racing stores — whichever racer's (identical) float lands, every
   later probe replays it bit-for-bit, which is what keeps warm answers
   byte-identical to cold ones. Everything else in this module is either
   immutable or per-instantiation state, so the objectives are fully
   reentrant. *)
module OMemo = Itf_mat.Hashcons.Memo (Itf_mat.Hashcons.Ints_key)

let memsim_memo : float OMemo.t = OMemo.create "opt.obj.memsim"
let parsim_memo : float OMemo.t = OMemo.create "opt.obj.parsim"

let backend_tag = function `Compiled -> 0 | `Interpreted -> 1

let params_key params =
  List.concat_map (fun (v, x) -> [ Itf_ir.Intern.str_id v; x ]) params

let float_bits x =
  let b = Int64.bits_of_float x in
  [ Int64.to_int (Int64.shift_right_logical b 32); Int64.to_int (Int64.logand b 0xFFFFFFFFL) ]

let memoized ?(memo = true) table fingerprint metrics hit_metric
    (f : Framework.result -> float) : objective =
  if not memo then f
  else fun result ->
    let nid = Framework.nest_id result in
    let computed = ref false in
    let v =
      OMemo.find_or_add table
        (nid :: fingerprint)
        (fun () ->
          computed := true;
          f result)
    in
    if not !computed then mcount metrics hit_metric 1;
    v

let cache_misses ?(config = { Itf_machine.Cache.size_bytes = 8192; line_bytes = 64; assoc = 2 })
    ?(backend = `Compiled) ?metrics ?memo ~params () : objective =
  let arities = memo_arities () in
  let scratch = env_scratch ~params () in
  let cache_key = Domain.DLS.new_key (fun () -> Itf_machine.Cache.create config) in
  let run result =
    let nest = result.Framework.nest in
    let cache = Domain.DLS.get cache_key in
    let r =
      match backend with
      | `Compiled ->
        Itf_machine.Memsim.run_compiled ~cache config (scratch (arities nest))
          nest
      | `Interpreted ->
        Itf_machine.Memsim.run ~cache config (make_env ~params (arities nest))
          nest
    in
    let cache = r.Itf_machine.Memsim.cache in
    mcount metrics "memsim.runs" 1;
    mcount metrics "memsim.cache.access" cache.Itf_machine.Cache.accesses;
    mcount metrics "memsim.cache.miss" cache.Itf_machine.Cache.misses;
    float cache.Itf_machine.Cache.misses
  in
  let fingerprint =
    backend_tag backend
    :: config.Itf_machine.Cache.size_bytes
    :: config.Itf_machine.Cache.line_bytes
    :: config.Itf_machine.Cache.assoc :: params_key params
  in
  memoized ?memo memsim_memo fingerprint metrics "memsim.memo.hits" run

let parallel_time ?spawn_overhead ?(backend = `Compiled) ?metrics ?memo ~procs
    ~params () : objective =
  let arities = memo_arities () in
  let scratch = env_scratch ~params () in
  let run result =
    let nest = result.Framework.nest in
    let t =
      match backend with
      | `Compiled ->
        Itf_machine.Parallel.time_compiled ?spawn_overhead ~procs
          (scratch (arities nest))
          nest
      | `Interpreted ->
        Itf_machine.Parallel.time ?spawn_overhead ~procs
          (make_env ~params (arities nest))
          nest
    in
    mcount metrics "parsim.runs" 1;
    t
  in
  let fingerprint =
    backend_tag backend :: procs
    :: (match spawn_overhead with
       | None -> [ 0 ]
       | Some x -> 1 :: float_bits x)
    @ params_key params
  in
  memoized ?memo parsim_memo fingerprint metrics "parsim.memo.hits" run
