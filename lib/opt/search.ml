open Itf_ir
module Template = Itf_core.Template
module Framework = Itf_core.Framework

type objective = Framework.result -> float

type outcome = {
  sequence : Itf_core.Sequence.t;
  result : Framework.result;
  score : float;
  explored : int;
}

(* ------------------------------------------------------------------ *)
(* Moves                                                               *)
(* ------------------------------------------------------------------ *)

let moves ?(block_sizes = [ 4; 8 ]) (_ : Nest.t) ~depth =
  let n = depth in
  let interchanges =
    List.concat
      (List.init n (fun a ->
           List.filter_map
             (fun b -> if a < b then Some (Template.interchange ~n a b) else None)
             (List.init n Fun.id)))
  in
  let reversals = List.init n (fun k -> Template.reversal ~n k) in
  let skews =
    if n < 2 then []
    else
      List.concat
        (List.init (n - 1) (fun k ->
             [
               Template.skew ~n ~src:k ~dst:(k + 1) ~factor:1;
               Template.skew ~n ~src:k ~dst:(k + 1) ~factor:(-1);
             ]))
  in
  let parallelizations = List.init n (fun k -> Template.parallelize_one ~n k) in
  let blocks =
    if n > 3 then []
    else
      List.concat_map
        (fun bs ->
          List.concat
            (List.init n (fun i ->
                 List.filter_map
                   (fun j ->
                     if i <= j then
                       Some
                         (Template.block ~n ~i ~j
                            ~bsize:(Array.make (j - i + 1) (Expr.int bs)))
                     else None)
                   (List.init n Fun.id))))
        block_sizes
  in
  let coalesces = if n >= 2 then [ Template.coalesce ~n ~i:0 ~j:(n - 1) ] else [] in
  interchanges @ reversals @ skews @ parallelizations @ blocks @ coalesces

(* ------------------------------------------------------------------ *)
(* Beam search                                                         *)
(* ------------------------------------------------------------------ *)

let best ?(beam = 6) ?(steps = 3) ?block_sizes nest objective =
  let explored = ref 0 in
  let vectors = Itf_dep.Analysis.vectors nest in
  let try_seq seq =
    incr explored;
    match Framework.apply ~vectors nest seq with
    | Ok result -> (
      match objective result with
      | score when Float.is_nan score -> None
      | score -> Some (seq, result, score)
      | exception _ -> None)
    | Error _ -> None
  in
  match try_seq [] with
  | None -> None
  | Some start ->
    let bests = ref [ start ] in
    let frontier = ref [ start ] in
    for _ = 1 to steps do
      let expansions =
        List.concat_map
          (fun (seq, result, _) ->
            let depth = Nest.depth result.Framework.nest in
            List.filter_map
              (fun t -> try_seq (seq @ [ t ]))
              (moves ?block_sizes nest ~depth))
          !frontier
      in
      let sorted =
        List.sort (fun (_, _, a) (_, _, b) -> compare a b) expansions
      in
      let top = List.filteri (fun k _ -> k < beam) sorted in
      frontier := top;
      bests := top @ !bests
    done;
    let seq, result, score =
      List.hd (List.sort (fun (_, _, a) (_, _, b) -> compare a b) !bests)
    in
    Some { sequence = seq; result; score; explored = !explored }

(* ------------------------------------------------------------------ *)
(* Objectives                                                          *)
(* ------------------------------------------------------------------ *)

(* Arrays referenced by a nest, with arity (duplicated from the test
   oracle: intentionally local, the optimizer must not depend on tests). *)
let array_arities (nest : Nest.t) =
  let tbl = Hashtbl.create 8 in
  let rec expr (e : Expr.t) =
    match e with
    | Int _ | Var _ -> ()
    | Neg a -> expr a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
    | Min (a, b) | Max (a, b) ->
      expr a;
      expr b
    | Load { array; index } ->
      Hashtbl.replace tbl array (List.length index);
      List.iter expr index
    | Call (_, args) -> List.iter expr args
  in
  let rec stmt = function
    | Stmt.Store ({ array; index }, rhs) ->
      Hashtbl.replace tbl array (List.length index);
      List.iter expr index;
      expr rhs
    | Stmt.Set (_, rhs) -> expr rhs
    | Stmt.Guard { lhs; rhs; body; _ } ->
      expr lhs;
      expr rhs;
      List.iter stmt body
  in
  List.iter stmt (nest.Nest.inits @ nest.Nest.body);
  Hashtbl.fold (fun a k acc -> (a, k) :: acc) tbl [] |> List.sort compare

let make_env ~params nest =
  let env = Itf_exec.Env.create () in
  List.iter (fun (v, x) -> Itf_exec.Env.set_scalar env v x) params;
  let m = List.fold_left (fun acc (_, x) -> max acc (abs x)) 8 params in
  List.iter
    (fun (a, arity) ->
      Itf_exec.Env.declare_array env a
        (List.init arity (fun _ -> (-2 * m, 3 * m)));
      let data = Itf_exec.Env.array_data env a in
      Array.iteri (fun k _ -> data.(k) <- (k * 31) mod 97) data)
    (array_arities nest);
  env

let cache_misses ?(config = { Itf_machine.Cache.size_bytes = 8192; line_bytes = 64; assoc = 2 })
    ~params () : objective =
 fun result ->
  let nest = result.Framework.nest in
  let env = make_env ~params nest in
  let r = Itf_machine.Memsim.run config env nest in
  float r.Itf_machine.Memsim.cache.Itf_machine.Cache.misses

let parallel_time ?spawn_overhead ~procs ~params () : objective =
 fun result ->
  let nest = result.Framework.nest in
  let env = make_env ~params nest in
  Itf_machine.Parallel.time ?spawn_overhead ~procs env nest
