(** Tier-0 analytic objective: a static locality / parallelism estimator
    computed directly from framework artifacts — no trace, no simulation.

    For every legal candidate the search engine obtains, from the
    transformed nest and its mapped dependence vectors alone:

    - a cheap {b rank estimate} ([score]) used to screen candidates so
      that only the most promising [--exact-topk] survivors per step are
      scored by the exact simulators ({!Itf_machine.Memsim} /
      {!Itf_machine.Parallel}); and
    - an {b admissible bound} ([bound]): a lower bound on the exact
      objective value of the candidate, used as a branch-and-bound
      cutoff against the incumbent exact score.

    The inputs are exactly the artifacts the paper's uniform mapping
    rules maintain: the transformed LB/UB/STEP information (interval
    analysis of the bound expressions, cf. {!Itf_bounds.Bmat}), the
    body's array subscripts re-expressed over the transformed index
    variables by substituting the generated initialization statements
    (so strides after Unimodular / ReversePermute / Block / Coalesce are
    visible, {!Itf_bounds.Affine.split}), and the mapped {!Itf_dep.Depvec}
    set (innermost-carried reuse credit).

    Admissibility argument (checked over the fuzz corpus by
    [test_costmodel]):

    - locality: the cache starts cold and every line holds at most
      [line_bytes / elem_bytes] elements, so the misses of one run are at
      least [ceil(D / L)] summed over arrays, where [D] under-approximates
      the number of distinct elements certainly touched (guaranteed
      minimum trip counts, unguarded single-variable affine subscript
      dimensions only, zero as soon as any loop may be empty);
    - parallelism: {!Itf_machine.Parallel.time} charges a fixed
      {!Itf_machine.Parallel.body_cost} per innermost iteration and [max]
      over processors can never beat the mean, so the time is at least
      [iterations_min * body_cost / procs]. *)

type estimate = {
  score : float;  (** rank estimate of the exact objective (lower = better) *)
  bound : float;  (** admissible lower bound on the exact objective *)
}

type spec =
  | Locality of {
      config : Itf_machine.Cache.config;
      elem_bytes : int;
      params : (string * int) list;
    }
      (** tier-0 counterpart of {!Search.cache_misses}: same cache
          geometry, same synthetic array declarations (see
          {!default_bounds}). *)
  | Parallel of {
      procs : int;
      spawn_overhead : float;
      params : (string * int) list;
    }  (** tier-0 counterpart of {!Search.parallel_time}. *)

val default_bounds : params:(string * int) list -> int -> (int * int) list
(** The per-dimension declaration bounds the ready-made objectives use
    for an array of the given arity: [(-2m, 3m)] per dimension with
    [m = max 8 (max |param value|)]. Shared with [Search.make_env] so the
    cost model's layout assumptions match the simulated environment. *)

val spec_label : spec -> string
(** ["locality"] or ["parallel"] — used for metric labels and provenance. *)

val subtree_admissible : spec -> bool
(** Whether a candidate's [bound] also lower-bounds every {e descendant}
    (candidate extended by more templates), making it safe for
    branch-and-bound subtree pruning and not just final-winner pruning.

    True for locality: iteration-reordering transformations permute the
    address trace but never change the set of addresses touched, so the
    cold-footprint bound is invariant along a subtree. False for
    parallelism: a descendant can parallelize loops the candidate runs
    sequentially and legitimately beat the candidate's bound. *)

val make : ?memo:bool -> spec -> Itf_core.Framework.result -> estimate
(** [make spec] instantiates the estimator — a pure function, safe to
    call concurrently from several domains. It never raises and never
    returns NaN: unanalyzable nests degrade to [bound = 0] with
    [score = 0] (rank first, let the exact tier decide).

    [?memo] (default [true]) memoizes estimates in a process-wide table
    keyed on a spec fingerprint plus the interned nest and dependence-
    vector ids ({!Itf_ir.Intern}, {!Itf_dep.Depvec.id}) — identical
    values, computed at most once per distinct (spec, nest, vectors)
    triple for the process lifetime. [~memo:false] recomputes every call
    (the [--no-intern] escape hatch). *)
