module Depvec = Itf_dep.Depvec
module Dir = Itf_dep.Dir
module Intmat = Itf_mat.Intmat

(* Minimum of h . d over Tuples(d): None = unbounded below. *)
let min_dot (h : int array) (d : Depvec.t) =
  let acc = ref (Some 0) in
  Array.iteri
    (fun k e ->
      match !acc with
      | None -> ()
      | Some sofar -> (
        let c = h.(k) in
        match e with
        | Depvec.Dist x -> acc := Some (sofar + (c * x))
        | Depvec.Dir dir ->
          let s = Dir.signs dir in
          if c = 0 then ()
          else if c > 0 then
            (* minimized at the most negative realizable value *)
            if s.Dir.neg then acc := None
            else if s.Dir.zero then acc := Some sofar
            else acc := Some (sofar + c) (* strictly positive: min at 1 *)
          else if
            (* c < 0: minimized at the most positive realizable value *)
            s.Dir.pos
          then acc := None
          else if s.Dir.zero then acc := Some sofar
          else acc := Some (sofar - c) (* strictly negative: max at -1 *)))
    d;
  !acc

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd a b = gcd (abs a) (abs b)

let find_hyperplane ?(hmax = 3) ~depth vectors =
  (* Enumerate candidate vectors by increasing coefficient sum. *)
  let candidates = ref [] in
  let h = Array.make depth 0 in
  let rec go k =
    if k = depth then begin
      if Array.exists (( <> ) 0) h then candidates := Array.copy h :: !candidates
    end
    else
      for v = 0 to hmax do
        h.(k) <- v;
        go (k + 1);
        h.(k) <- 0
      done
  in
  go 0;
  let by_sum a b =
    compare
      (Array.fold_left ( + ) 0 a, a)
      (Array.fold_left ( + ) 0 b, b)
  in
  let ok h =
    Array.fold_left gcd 0 h = 1
    && List.for_all
         (fun d ->
           match min_dot h d with Some m -> m >= 1 | None -> false)
         vectors
  in
  List.find_opt ok (List.sort by_sum !candidates)

(* Reduce h to +-g * e_p by integer column operations, recording them as a
   unimodular U with h U = g e_0; then M = U^{-1} has first row h / ... *)
let completion (h : int array) =
  let n = Array.length h in
  if n = 0 then invalid_arg "Hyperplane.completion: empty";
  if Array.fold_left gcd 0 h <> 1 then
    invalid_arg "Hyperplane.completion: gcd of entries must be 1";
  let v = Array.copy h in
  let u = ref (Intmat.identity n) in
  let apply_col m =
    (* columns transform as v <- v m, so U accumulates on the right *)
    u := Intmat.mul !u m
  in
  let nonzeros () =
    List.filter (fun k -> v.(k) <> 0) (List.init n Fun.id)
  in
  let rec reduce () =
    match nonzeros () with
    | [] -> assert false
    | [ _ ] -> ()
    | nz ->
      (* pivot = smallest magnitude nonzero *)
      let p =
        List.fold_left (fun p k -> if abs v.(k) < abs v.(p) then k else p)
          (List.hd nz) nz
      in
      List.iter
        (fun q ->
          if q <> p && v.(q) <> 0 then begin
            let f = v.(q) / v.(p) in
            if f <> 0 then begin
              (* col_q <- col_q - f * col_p  =>  v_q <- v_q - f * v_p *)
              apply_col (Intmat.skew n q p (-f));
              v.(q) <- v.(q) - (f * v.(p))
            end
          end)
        nz;
      (* progress: remainders strictly shrink; recurse until one remains *)
      reduce ()
  in
  reduce ();
  let p = List.hd (nonzeros ()) in
  if v.(p) < 0 then begin
    apply_col (Intmat.reversal n p);
    v.(p) <- -v.(p)
  end;
  if p <> 0 then apply_col (Intmat.interchange n p 0);
  (* now h U = e_0, so the first row of U^{-1} is h *)
  let m = Intmat.inverse_unimodular !u in
  assert (Intmat.row m 0 = h);
  m

let wavefront ?hmax (nest : Itf_ir.Nest.t) =
  let depth = Itf_ir.Nest.depth nest in
  if depth < 2 then None
  else
    let vectors = Itf_dep.Analysis.vectors nest in
    match find_hyperplane ?hmax ~depth vectors with
    | None -> None
    | Some h -> (
      let m = completion h in
      let parflag = Array.init depth (fun k -> k > 0) in
      let seq =
        [ Itf_core.Template.unimodular m; Itf_core.Template.parallelize parflag ]
      in
      match Itf_core.Framework.apply ~vectors nest seq with
      | Ok result -> Some (seq, result)
      | Error _ -> None)
