(** Instrumentation record of one {!Engine} search.

    Counters distinguish work done from work avoided: [template_applications]
    counts actual template stage applications (bounds check + code
    generation + vector mapping), while [template_applications_saved] counts
    the applications a from-root replay of every candidate (the pre-engine
    behaviour of [Search.best]) would have performed on top of that. *)

type t = {
  nodes_explored : int;  (** candidate sequences considered (incl. root) *)
  duplicates_pruned : int;
      (** within-step candidates dropped because an earlier candidate of the
          same step reduced to the same canonical sequence *)
  legality_cache_hits : int;
      (** candidates answered from the canonical-sequence cache without any
          template application *)
  score_cache_hits : int;
      (** candidates whose objective score was served from cache *)
  illegal : int;  (** candidates rejected (bounds, dependence, unscoreable) *)
  template_applications : int;
  template_applications_saved : int;
  objective_evaluations : int;  (** exact objective simulations actually run *)
  tier0_evaluations : int;
      (** tier-0 cost-model estimates computed (0 on untiered searches) *)
  tier0_pruned : int;
      (** legal candidates denied an exact evaluation by the tier-0 screen
          (outside top-K) or the branch-and-bound cutoff *)
  domains : int;  (** parallelism used (1 = sequential) *)
  work_threshold : int;
      (** steps with fewer evaluation candidates than this ran on the
          calling thread even when [domains > 1] (see {!Pool.map_auto}) *)
  expand_time_s : float;  (** move generation + canonicalization + dedupe *)
  evaluate_time_s : float;  (** legality + objective evaluation (all domains) *)
  legality_time_s : float;
      (** per-candidate template application + dependence testing (summed
          across domains, merged in input order) — a component of
          [evaluate_time_s], plus the root's legality check *)
  tier0_time_s : float;
      (** per-candidate tier-0 analytic estimates (summed across domains) *)
  exact_time_s : float;
      (** per-candidate exact objective simulations (summed across
          domains), including the root evaluation *)
  merge_time_s : float;  (** deterministic sort/beam selection *)
  total_time_s : float;
}

val zero : t

val pp : Format.formatter -> t -> unit

val to_json_value : t -> Itf_obs.Json.t
(** The record as a JSON object, for embedding in larger documents. *)

val to_json : t -> string
(** One JSON object (no trailing newline); used by [bench --search]. *)

val record : Itf_obs.Metrics.t -> t -> unit
(** Fold the record into a metrics registry: counters add under
    [engine.*] names (so repeated searches accumulate) plus the two-tier
    objective counters [objective.exact_evals] / [objective.tier0_evals] /
    [objective.tier0_pruned]; [engine.domains] and [engine.work_threshold]
    are gauges; the total time lands in an [engine.total_time_ms]
    histogram and each phase time (expand / legality / tier0 / exact /
    merge) in an [engine.phase_us{phase=...}] duration histogram — one
    observation per search, on the shared
    {!Itf_obs.Metrics.duration_buckets} layout, so a live registry always
    answers "which phase is eating the time" even when span tracing is
    off or head-sampled out. *)
