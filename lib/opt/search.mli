(** Automatic transformation selection — the paper's stated "main direction
    for future work ... using this framework in an automatic transformation
    system, so as to optimize loop nests for data locality [and] parallel
    execution" (Section 6).

    The search exploits the framework's separation of transformations from
    loop nests (Section 5): candidate sequences are built, legality-checked
    and scored without mutating the nest; only the winner's generated code
    is returned. Search is beam search over template "moves"; every
    explored sequence passes through {!Itf_core.Legality}, so only legal
    transformations are ever scored. *)

open Itf_ir

type objective = Itf_core.Framework.result -> float
(** Lower is better. Receives the legality-checked result (transformed
    nest plus mapped dependence vectors). *)

type outcome = {
  sequence : Itf_core.Sequence.t;
  result : Itf_core.Framework.result;
  score : float;
  explored : int;  (** number of candidate sequences legality-checked *)
  checked_templates : int;
      (** total template stage applications performed by legality checking;
          grows quadratically with [steps] because every candidate replays
          its whole prefix (cf. {!Engine.search}, which extends prefixes
          incrementally) *)
}

val moves : ?block_sizes:int list -> Nest.t -> depth:int -> Itf_core.Template.t list
(** Candidate single-template moves for a nest currently [depth] deep:
    all interchanges and reversals, unit skews of adjacent loop pairs,
    single-loop parallelization, square blocking of contiguous ranges with
    each size in [block_sizes] (default [[4; 8]]), and full coalescing. *)

val best :
  ?beam:int ->
  ?steps:int ->
  ?block_sizes:int list ->
  Nest.t ->
  objective ->
  outcome option
(** [best nest objective] beam-searches sequences of at most [steps]
    (default 3) moves keeping the [beam] (default 6) best scored prefixes;
    returns [None] when not even the empty sequence is scoreable. The
    empty sequence is always a candidate, so the result never scores worse
    than the original nest. *)

(** {1 Ready-made objectives} *)

type backend = [ `Interpreted | `Compiled ]
(** Execution backend used to simulate candidate nests. [`Compiled]
    (the default) runs {!Itf_exec.Compile}'s slot-resolved closures;
    [`Interpreted] runs the tree-walking {!Itf_exec.Interp}. Both produce
    identical scores — the switch exists for differential testing and as
    an escape hatch. *)

val cache_misses :
  ?config:Itf_machine.Cache.config -> ?backend:backend ->
  ?metrics:Itf_obs.Metrics.t -> ?memo:bool ->
  params:(string * int) list ->
  unit -> objective
(** Simulated cache misses of one full execution. Arrays are freshly
    allocated per evaluation from the nest's own access pattern with
    subscript range inferred by probing, so transformed nests score on
    identical data. [metrics], when given, accumulates [memsim.runs],
    [memsim.cache.access] and [memsim.cache.miss] counters (atomic adds —
    totals are domain-schedule independent).

    [?memo] (default [true]): the objective is a pure function of
    (config, backend, params, nest), so scores are memoized process-wide
    by instantiation fingerprint + interned nest id ({!Itf_ir.Intern}).
    Hits return the stored float bit-identically and skip the simulation
    (and its [memsim.*] counters; they bump [memsim.memo.hits] instead).
    [~memo:false] simulates every call. *)

val parallel_time :
  ?spawn_overhead:float -> ?backend:backend ->
  ?metrics:Itf_obs.Metrics.t -> ?memo:bool -> procs:int ->
  params:(string * int) list ->
  unit -> objective
(** Simulated parallel execution time on [procs] processors. [metrics]
    accumulates a [parsim.runs] counter. [?memo] as in {!cache_misses}
    (hit counter: [parsim.memo.hits]). *)
