(* A small fixed-size domain pool (OCaml 5 [Domain], no external deps).

   Workers block on a condition variable waiting for jobs; [map] publishes
   one index-draining job per worker and the submitting thread drains
   indices too, so a pool of [w] workers gives [w + 1]-way parallelism.
   Results are written into per-index slots, which makes [map] order- and
   schedule-independent: output.(i) is always [f input.(i)], so a merge
   over the output array is deterministic regardless of how the domains
   interleave. *)

type t = {
  mutable workers : unit Domain.t list;
  jobs : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work : Condition.t;
  mutable shutdown : bool;
}

let worker t =
  let rec next () =
    if not (Queue.is_empty t.jobs) then Some (Queue.pop t.jobs)
    else if t.shutdown then None
    else begin
      Condition.wait t.work t.mutex;
      next ()
    end
  in
  let rec loop () =
    Mutex.lock t.mutex;
    let job = next () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some job ->
      job ();
      loop ()
  in
  loop ()

let create workers =
  let t =
    {
      workers = [];
      jobs = Queue.create ();
      mutex = Mutex.create ();
      work = Condition.create ();
      shutdown = false;
    }
  in
  let workers = max 0 workers in
  t.workers <- List.init workers (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = List.length t.workers

let shutdown t =
  Mutex.lock t.mutex;
  t.shutdown <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers

let map t f (input : 'a array) : 'b array =
  let n = Array.length input in
  if n = 0 then [||]
  else if t.workers = [] then Array.map f input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let drain () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r = try Ok (f input.(i)) with e -> Error e in
          results.(i) <- Some r;
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock done_mutex;
            Condition.signal done_cond;
            Mutex.unlock done_mutex
          end;
          go ()
        end
      in
      go ()
    in
    Mutex.lock t.mutex;
    List.iter (fun _ -> Queue.push drain t.jobs) t.workers;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    drain ();
    Mutex.lock done_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end
