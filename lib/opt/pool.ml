(* A small fixed-size domain pool (OCaml 5 [Domain], no external deps).

   Workers block on a condition variable waiting for jobs; [map] publishes
   one index-draining job per worker and the submitting thread drains
   indices too, so a pool of [w] workers gives [w + 1]-way parallelism.
   Indices are stolen in chunks (one atomic fetch per chunk, not per
   element) and results are written into per-index slots, which makes
   [map] order- and schedule-independent: output.(i) is always
   [f input.(i)], so a merge over the output array is deterministic
   regardless of how the domains interleave. *)

type t = {
  mutable workers : unit Domain.t list;
  jobs : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work : Condition.t;
  mutable shutdown : bool;
}

let worker t =
  let rec next () =
    if not (Queue.is_empty t.jobs) then Some (Queue.pop t.jobs)
    else if t.shutdown then None
    else begin
      Condition.wait t.work t.mutex;
      next ()
    end
  in
  let rec loop () =
    Mutex.lock t.mutex;
    let job = next () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some job ->
      job ();
      loop ()
  in
  loop ()

let create workers =
  let t =
    {
      workers = [];
      jobs = Queue.create ();
      mutex = Mutex.create ();
      work = Condition.create ();
      shutdown = false;
    }
  in
  let workers = max 0 workers in
  t.workers <- List.init workers (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = List.length t.workers

let grow t workers =
  Mutex.lock t.mutex;
  let missing = workers - List.length t.workers in
  let fresh = List.init (max 0 missing) (fun _ -> Domain.spawn (fun () -> worker t)) in
  t.workers <- fresh @ t.workers;
  Mutex.unlock t.mutex

(* One fire-and-forget job. Unlike [map], nothing waits on it here — the
   caller owns completion signalling (the serve scheduler chains jobs and
   counts them itself). The job runs on a worker domain verbatim, so it
   MUST NOT raise: an escaping exception kills the worker. *)
let submit t job =
  Mutex.lock t.mutex;
  Queue.push job t.jobs;
  Condition.signal t.work;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.shutdown <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers

(* ------------------------------------------------------------------ *)
(* The process-wide shared pool                                        *)
(* ------------------------------------------------------------------ *)

(* Spawning a domain costs hundreds of microseconds — comparable to a whole
   small search. The engine therefore reuses one persistent pool across
   searches instead of forking per call; it only ever grows, and is torn
   down at process exit. *)
let shared_mutex = Mutex.create ()
let shared_ref = ref None

let shared ~workers () =
  Mutex.lock shared_mutex;
  let t =
    match !shared_ref with
    | Some t ->
      grow t workers;
      t
    | None ->
      let t = create (max 0 workers) in
      shared_ref := Some t;
      at_exit (fun () ->
          Mutex.lock shared_mutex;
          let p = !shared_ref in
          shared_ref := None;
          Mutex.unlock shared_mutex;
          Option.iter shutdown p);
      t
  in
  Mutex.unlock shared_mutex;
  t

(* ------------------------------------------------------------------ *)
(* Parallel map                                                        *)
(* ------------------------------------------------------------------ *)

let default_threshold = 24

let map ?chunk t f (input : 'a array) : 'b array =
  let n = Array.length input in
  if n = 0 then [||]
  else if t.workers = [] then Array.map f input
  else begin
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | _ ->
        (* Size-adaptive: enough chunks for balance (4 per participant),
           few enough that atomic traffic stays negligible. *)
        max 1 (n / (4 * (List.length t.workers + 1)))
    in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let drain () =
      let rec go () =
        let i = Atomic.fetch_and_add next chunk in
        if i < n then begin
          let stop = min n (i + chunk) in
          for k = i to stop - 1 do
            results.(k) <- Some (try Ok (f input.(k)) with e -> Error e)
          done;
          if Atomic.fetch_and_add remaining (i - stop) = stop - i then begin
            Mutex.lock done_mutex;
            Condition.signal done_cond;
            Mutex.unlock done_mutex
          end;
          go ()
        end
      in
      go ()
    in
    Mutex.lock t.mutex;
    List.iter (fun _ -> Queue.push drain t.jobs) t.workers;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    drain ();
    Mutex.lock done_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_auto ?(threshold = default_threshold) t f input =
  (* Fan-out has a fixed cost (publishing jobs, waking workers, the final
     rendezvous) that dwarfs small batches: below the threshold, stay on
     the calling thread. *)
  if Array.length input < threshold then Array.map f input
  else map t f input
