(** Automatic wavefront (hyperplane) parallelization.

    Lamport's hyperplane method — the earliest framework the paper compares
    against (Section 5) — expressed as a {e user} of the general framework:
    find an integer hyperplane vector [h] with [h . d >= 1] for every
    dependence [d], complete it to a unimodular matrix whose first row is
    [h], and emit the two-template sequence [Unimodular M; Parallelize
    inner]: after the change of basis every dependence is carried by the
    new outermost loop, so all inner loops are legally [pardo].

    The search considers non-negative hyperplane coefficients up to [hmax]
    per component (enough for the classic stencil wavefronts); direction
    entries in dependence vectors are handled by minimizing [h . d] over
    the denoted tuple set. *)

open Itf_ir

val find_hyperplane : ?hmax:int -> depth:int -> Itf_dep.Depvec.t list -> int array option
(** Smallest-sum vector [h] in [[0..hmax]^depth], [gcd h = 1], with
    [min (h . Tuples d) >= 1] for every vector. [None] when no such [h]
    exists (e.g. a dependence admits arbitrarily negative combinations). *)

val completion : int array -> Itf_mat.Intmat.t
(** A unimodular matrix whose first row is the given vector.
    @raise Invalid_argument unless the entries' gcd is 1. *)

val wavefront : ?hmax:int -> Nest.t -> (Itf_core.Sequence.t * Itf_core.Framework.result) option
(** End to end: analyze the nest, find a hyperplane, build the sequence
    and validate it through the framework's uniform legality test.
    [None] when no hyperplane is found or the sequence is (conservatively)
    rejected. *)
