(** Incremental, memoized, multicore, two-tier transformation search.

    Same beam search as {!Search.best} — same moves, same beam/steps
    defaults, same winner — but engineered for throughput:

    - {b incremental legality}: frontier nodes carry a resumable
      {!Itf_core.Legality} prefix state, so appending a move costs one
      template application instead of replaying the whole sequence;
    - {b memoization}: candidates are canonicalized with
      {!Itf_core.Sequence.reduce_memo}; a cross-step cache keyed on the
      canonical sequence's intern id (an O(1) integer probe — see
      {!Itf_mat.Hashcons} and DESIGN.md §10) answers re-derived
      transformations (interchange twice, reversal pairs, composed
      unimodulars, ...) without touching the framework. [~intern:false]
      falls back to structural {!Itf_core.Sequence.reduce} keys;
    - {b two-tier objective} (pass [~tier0]): every legal candidate is
      first scored by the analytic {!Costmodel} (no simulation); the
      tier-0 rank screens candidates so only the best [~exact_topk] per
      step reach the exact simulator, and the admissible tier-0 [bound]
      cuts whole subtrees branch-and-bound style against the best exact
      score seen so far (only when {!Costmodel.subtree_admissible});
    - {b multicore}: cache misses are evaluated across the process-wide
      persistent {!Pool.shared} of OCaml 5 domains ([domains = 1] never
      touches it), with small steps running sequentially
      ({!Pool.map_auto}). Merging is order-preserving, candidates are
      ranked by a total order (score, canonical sequence, raw sequence),
      and the branch-and-bound incumbent only advances between steps —
      so results are bit-identical to a sequential run.

    {b Observability}: pass a {!Itf_obs.Tracer} to record the span tree
    (search → step → expand / tier0 / exact (or evaluate, untiered) /
    merge → per-candidate legality and objective spans; the simulators
    attach below the objective via the ambient tracer). Per-candidate
    spans are forked and joined in input order, so the span tree and all
    metric totals are identical between sequential and parallel runs —
    timings aside. Pass a {!Itf_obs.Metrics} registry to accumulate
    [legality.rejections{reason=...}] counters and the {!Stats} record;
    pass [~provenance:true] to keep every rejected candidate with its
    structured cause plus, on tiered searches, every tier-0 screening
    {!decision} ([loopt optimize --explain]).

    {!Stats} records what was done and what was avoided. *)

open Itf_ir

type cause =
  | Rejected of Itf_core.Legality.reason list
      (** the legality test failed, with the structured reasons *)
  | Unscoreable  (** legal, but the objective returned NaN or raised *)

(** What the tier-0 screen did with one legal candidate. *)
type tier0_verdict =
  | Survived  (** forwarded to the exact simulator *)
  | Screened_out  (** legal, but ranked outside the top [exact_topk] *)
  | Bound_pruned
      (** admissible bound already exceeds the incumbent exact score: the
          candidate (and, for subtree-admissible specs, all its
          descendants) can never win *)

type decision = {
  candidate : Itf_core.Sequence.t;
  tier0_score : float;
  tier0_bound : float;
  verdict : tier0_verdict;
}

type rejection = { candidate : Itf_core.Sequence.t; cause : cause }

(** Anytime budget for {!search}: a wall-clock deadline (seconds from
    search start) and/or a cap on nodes explored. Checked only at batch
    boundaries — at every step start, and between a step's evaluation
    batches (after the single-tier batch would start; between the tier-0
    and exact batches on tiered searches). On expiry the search stops and
    returns the best-so-far incumbent marked {!Degraded} instead of
    raising; a partially evaluated step is abandoned whole, so the
    outcome is a deterministic function of the cut point. *)
type budget = { deadline_s : float option; max_nodes : int option }

(** Whether the search ran to completion or was cut by its {!budget}.
    [Degraded.cut] names the checkpoint that tripped, e.g.
    ["step2.exact:deadline"] — same cut point, same outcome. *)
type completion = Complete | Degraded of { cut : string }

type outcome = {
  sequence : Itf_core.Sequence.t;  (** winning sequence, as generated *)
  canonical : Itf_core.Sequence.t;  (** its peephole reduction *)
  result : Itf_core.Framework.result;
  score : float;
  stats : Stats.t;
  completion : completion;
      (** {!Complete}, or {!Degraded} when the {!budget} expired and
          [sequence] is only the best found before the cut *)
  rejections : rejection list;
      (** every rejected candidate in deterministic merge order, with its
          cause — empty unless [~provenance:true] *)
  decisions : decision list;
      (** every tier-0 screening decision in deterministic screen order —
          empty unless [~provenance:true] and [~tier0] *)
}

val pp_cause : Format.formatter -> cause -> unit

val cause_labels : cause -> string list
(** Metric-label slugs of a cause ({!Itf_core.Legality.reason_label}, or
    ["unscoreable"]). *)

val verdict_label : tier0_verdict -> string
(** ["survived"], ["screened_out"] or ["bound_pruned"]. *)

val completion_label : completion -> string
(** ["ok"] or ["degraded"] — the serve-layer status slug. *)

val no_budget : budget
(** No limits — identical to omitting [?budget]. *)

val deadline : float -> budget
(** [deadline s] is a wall-clock-only budget of [s] seconds. *)

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core for
    the rest of the process. *)

val default_exact_topk : int
(** Default [~exact_topk]: exact objective evaluations per step on tiered
    searches. *)

val search :
  ?beam:int ->
  ?steps:int ->
  ?block_sizes:int list ->
  ?domains:int ->
  ?tracer:Itf_obs.Tracer.t ->
  ?metrics:Itf_obs.Metrics.t ->
  ?provenance:bool ->
  ?tier0:Costmodel.spec ->
  ?exact_topk:int ->
  ?tier0_only:bool ->
  ?intern:bool ->
  ?budget:budget ->
  ?cache_cap:int ->
  Nest.t ->
  Search.objective ->
  outcome option
(** [search nest objective] beam-searches like {!Search.best} (defaults
    [beam = 6], [steps = 3]) and returns the same best score and canonical
    sequence. [domains] is the total parallelism (default
    {!default_domains}; [1] runs entirely on the calling domain).

    [tier0], when given, enables the two-tier evaluator: the {!Costmodel}
    spec should mirror the exact objective (same cache geometry /
    processor count / parameters). [exact_topk] (default
    {!default_exact_topk}, clamped to at least [beam]) caps exact
    simulations per step; [tier0_only] (requires [tier0]) skips the exact
    simulator entirely and beam-searches on tier-0 scores alone — the
    untrusted-but-fast escape hatch, whose winner is {e not} guaranteed to
    match the exact search.

    [intern] (default [true]) keys the cross-step cache on canonical
    sequence intern ids via {!Itf_core.Sequence.reduce_memo} and passes
    [~memo:true] to the tier-0 {!Costmodel.make}. Intern ids are used for
    cache {e equality} only — candidate ordering stays structural — so
    the winner, score and provenance are identical with [~intern:false]
    (which uses structural keys and recomputes tier-0 estimates; the CI
    bench gate asserts this). All interning runs on the calling domain;
    worker domains only read canonical values.

    [budget], when given, makes the search {e anytime}: the deadline
    and/or node cap are checked at batch boundaries only (never inside a
    batch), and on expiry the best candidate found so far is returned
    with [completion = Degraded] — never an exception. A cut abandons the
    in-flight step entirely, so two runs cut at the same checkpoint
    return bit-identical outcomes, and a run whose budget never trips is
    bit-identical to an unbudgeted one. The root nest is always
    evaluated, budget or not: even a 0-second deadline yields the
    identity sequence rather than [None].

    [cache_cap] (default unbounded) caps the per-search cross-step cache:
    when a step ends with more entries, the cache is flushed (entries are
    pure facts about canonical sequences, so this costs recomputation,
    never correctness). The final size and entries evicted are published
    as [engine.cache.size] / [engine.cache.evictions] gauges when
    [metrics] is given.

    [tracer]/[metrics] default to disabled; [provenance] (default false)
    retains per-candidate rejection causes and tier-0 decisions in the
    outcome; with [metrics], intern-table sizes and hit counts are
    published as [intern.size]/[intern.hits]/[intern.misses] gauges
    labeled by table name. Returns [None] when not even the untransformed
    nest is scoreable. *)

