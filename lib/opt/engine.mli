(** Incremental, memoized, multicore transformation search.

    Same beam search as {!Search.best} — same moves, same beam/steps
    defaults, same winner — but engineered for throughput:

    - {b incremental legality}: frontier nodes carry a resumable
      {!Itf_core.Legality} prefix state, so appending a move costs one
      template application instead of replaying the whole sequence;
    - {b memoization}: candidates are canonicalized with
      {!Itf_core.Sequence.reduce}; a cross-step cache keyed on the
      canonical sequence answers re-derived transformations (interchange
      twice, reversal pairs, composed unimodulars, ...) without touching
      the framework;
    - {b multicore}: cache misses are evaluated across a {!Pool} of OCaml 5
      domains. Merging is order-preserving and candidates are ranked by a
      total order (score, canonical sequence, raw sequence), so results
      are bit-identical to a sequential run.

    {b Observability}: pass a {!Itf_obs.Tracer} to record the span tree
    (search → step → expand/evaluate/merge → per-candidate legality and
    objective spans; the simulators attach below the objective via the
    ambient tracer). Per-candidate spans are forked and joined in input
    order, so the span tree and all metric totals are identical between
    sequential and parallel runs — timings aside. Pass a
    {!Itf_obs.Metrics} registry to accumulate
    [legality.rejections{reason=...}] counters and the {!Stats} record;
    pass [~provenance:true] to keep every rejected candidate with its
    structured cause ([loopt optimize --explain]).

    {!Stats} records what was done and what was avoided. *)

open Itf_ir

type cause =
  | Rejected of Itf_core.Legality.reason list
      (** the legality test failed, with the structured reasons *)
  | Unscoreable  (** legal, but the objective returned NaN or raised *)

type rejection = { candidate : Itf_core.Sequence.t; cause : cause }

type outcome = {
  sequence : Itf_core.Sequence.t;  (** winning sequence, as generated *)
  canonical : Itf_core.Sequence.t;  (** its peephole reduction *)
  result : Itf_core.Framework.result;
  score : float;
  stats : Stats.t;
  rejections : rejection list;
      (** every rejected candidate in deterministic merge order, with its
          cause — empty unless [~provenance:true] *)
}

val pp_cause : Format.formatter -> cause -> unit

val cause_labels : cause -> string list
(** Metric-label slugs of a cause ({!Itf_core.Legality.reason_label}, or
    ["unscoreable"]). *)

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core for
    the rest of the process. *)

val search :
  ?beam:int ->
  ?steps:int ->
  ?block_sizes:int list ->
  ?domains:int ->
  ?tracer:Itf_obs.Tracer.t ->
  ?metrics:Itf_obs.Metrics.t ->
  ?provenance:bool ->
  Nest.t ->
  Search.objective ->
  outcome option
(** [search nest objective] beam-searches like {!Search.best} (defaults
    [beam = 6], [steps = 3]) and returns the same best score and canonical
    sequence. [domains] is the total parallelism (default
    {!default_domains}; [1] runs entirely on the calling domain).
    [tracer]/[metrics] default to disabled; [provenance] (default false)
    retains per-candidate rejection causes in the outcome. Returns [None]
    when not even the untransformed nest is scoreable. *)
