(** Incremental, memoized, multicore transformation search.

    Same beam search as {!Search.best} — same moves, same beam/steps
    defaults, same winner — but engineered for throughput:

    - {b incremental legality}: frontier nodes carry a resumable
      {!Itf_core.Legality} prefix state, so appending a move costs one
      template application instead of replaying the whole sequence;
    - {b memoization}: candidates are canonicalized with
      {!Itf_core.Sequence.reduce}; a cross-step cache keyed on the
      canonical sequence answers re-derived transformations (interchange
      twice, reversal pairs, composed unimodulars, ...) without touching
      the framework;
    - {b multicore}: cache misses are evaluated across a {!Pool} of OCaml 5
      domains. Merging is order-preserving and candidates are ranked by a
      total order (score, canonical sequence, raw sequence), so results
      are bit-identical to a sequential run.

    {!Stats} records what was done and what was avoided. *)

open Itf_ir

type outcome = {
  sequence : Itf_core.Sequence.t;  (** winning sequence, as generated *)
  canonical : Itf_core.Sequence.t;  (** its peephole reduction *)
  result : Itf_core.Framework.result;
  score : float;
  stats : Stats.t;
}

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core for
    the rest of the process. *)

val search :
  ?beam:int ->
  ?steps:int ->
  ?block_sizes:int list ->
  ?domains:int ->
  Nest.t ->
  Search.objective ->
  outcome option
(** [search nest objective] beam-searches like {!Search.best} (defaults
    [beam = 6], [steps = 3]) and returns the same best score and canonical
    sequence. [domains] is the total parallelism (default
    {!default_domains}; [1] runs entirely on the calling domain). Returns
    [None] when not even the untransformed nest is scoreable. *)
