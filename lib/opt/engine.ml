open Itf_ir
module Template = Itf_core.Template
module Framework = Itf_core.Framework
module Sequence = Itf_core.Sequence
module Legality = Itf_core.Legality
module Tracer = Itf_obs.Tracer
module Metrics = Itf_obs.Metrics

type cause = Rejected of Legality.reason list | Unscoreable

type rejection = { candidate : Sequence.t; cause : cause }

type outcome = {
  sequence : Sequence.t;
  canonical : Sequence.t;
  result : Framework.result;
  score : float;
  stats : Stats.t;
  rejections : rejection list;
}

let pp_cause ppf = function
  | Unscoreable ->
    Format.fprintf ppf "objective unscoreable (NaN or simulator failure)"
  | Rejected reasons ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
      Legality.pp_reason ppf reasons

let cause_labels = function
  | Unscoreable -> [ "unscoreable" ]
  | Rejected reasons -> List.map Legality.reason_label reasons

module SeqTbl = Hashtbl.Make (struct
  type t = Sequence.t

  let equal = Sequence.equal
  let hash = Sequence.hash
end)

(* A frontier node: a legality-checked candidate. [state] is the resumable
   prefix (possibly the state of [canon] rather than [seq] when the node
   was served from cache — the two generate the same nest, so extensions
   agree). *)
type node = {
  seq : Sequence.t;
  canon : Sequence.t;
  state : Framework.state;
  result : Framework.result;
  score : float;
}

(* Total order on candidates: (score, canonical sequence, raw sequence).
   Beam cut-offs and the final winner are therefore independent of
   generation order and of domain scheduling. *)
let order a b =
  let c = Float.compare a.score b.score in
  if c <> 0 then c
  else
    let c = Sequence.compare a.canon b.canon in
    if c <> 0 then c else Sequence.compare a.seq b.seq

(* One candidate evaluation: extend the parent prefix by one template,
   run the final dependence test, score. Runs on worker domains — all
   mutable state ([count]) is local, the result and its rejection cause
   are merged by the caller in input order. [obj_ran] is true iff the
   objective simulation ran. [tracer] is this candidate's forked tracer;
   it is also installed as ambient so the simulators inside [objective]
   attach their spans under the objective span. *)
let evaluate tracer objective (parent, t) =
  let count = ref 0 in
  let checked =
    Tracer.span tracer "engine.legality" (fun () ->
        match Framework.extend ~count parent.state t with
        | Error v -> Error (Rejected (Legality.reasons v))
        | Ok st -> (
          match Framework.finish st with
          | Error v -> Error (Rejected (Legality.reasons v))
          | Ok result -> Ok (st, result)))
  in
  match checked with
  | Error _ as e -> (e, !count, false)
  | Ok (st, result) -> (
    match
      Tracer.span tracer "engine.objective" (fun () -> objective result)
    with
    | score when Float.is_nan score -> (Error Unscoreable, !count, true)
    | score -> (Ok (st, result, score), !count, true)
    | exception _ -> (Error Unscoreable, !count, true))

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let search ?(beam = 6) ?(steps = 3) ?block_sizes ?domains
    ?(tracer = Tracer.null) ?metrics ?(provenance = false) nest
    (objective : Search.objective) =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let reject_counter cause =
    match metrics with
    | None -> ()
    | Some m ->
      List.iter
        (fun label ->
          Metrics.incr
            (Metrics.counter m ~labels:[ ("reason", label) ]
               "legality.rejections"))
        (cause_labels cause)
  in
  let rejections = ref [] in
  let reject cand cause =
    reject_counter cause;
    if provenance then rejections := { candidate = cand; cause } :: !rejections
  in
  (* [domains] is deliberately NOT a span attribute: the span tree must be
     identical across domain counts (it lives in the [engine.domains]
     gauge and the stats record instead). *)
  Tracer.span tracer "engine.search"
    ~attrs:(fun () -> [ ("beam", Int beam); ("steps", Int steps) ])
  @@ fun () ->
  let t_start = Unix.gettimeofday () in
  let explored = ref 0 in
  let duplicates = ref 0 in
  let legality_hits = ref 0 in
  let score_hits = ref 0 in
  let illegal = ref 0 in
  let applications = ref 0 in
  let saved = ref 0 in
  let objective_evals = ref 0 in
  let expand_time = ref 0. in
  let evaluate_time = ref 0. in
  let merge_time = ref 0. in
  let vectors = Itf_dep.Analysis.vectors nest in
  let root =
    incr explored;
    let st = Framework.start ~vectors nest in
    match Framework.finish st with
    | Error _ -> None
    | Ok result -> (
      incr objective_evals;
      match
        Tracer.span tracer "engine.objective"
          ~attrs:(fun () -> [ ("root", Bool true) ])
          (fun () -> Tracer.with_ambient tracer (fun () -> objective result))
      with
      | score when Float.is_nan score -> None
      | score -> Some { seq = []; canon = []; state = st; result; score }
      | exception _ -> None)
  in
  match root with
  | None -> None
  | Some root ->
    (* Cross-step memo keyed on canonical (peephole-reduced) sequences:
       [Ok node] is a previously evaluated legal candidate, [Error cause]
       a previously rejected one whose cause replays on every re-derived
       spelling. E.g. reversal twice reduces to [] and is answered by the
       root's entry without touching the framework. *)
    let cache : (node, cause) result SeqTbl.t = SeqTbl.create 256 in
    SeqTbl.add cache root.canon (Ok root);
    let pool = Pool.create (domains - 1) in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let bests = ref [ root ] in
        let frontier = ref [ root ] in
        for step = 1 to steps do
          Tracer.span tracer "engine.step"
            ~attrs:(fun () -> [ ("step", Int step) ])
            (fun () ->
              let t0 = Unix.gettimeofday () in
              (* Expand: generate moves, canonicalize, dedupe within the
                 step (first spelling wins), consult the cache. Sequential
                 — cheap relative to evaluation, and keeps cache access
                 single-domain. *)
              let hits, misses =
                Tracer.span tracer "engine.expand" (fun () ->
                    let seen = SeqTbl.create 64 in
                    let hits = ref [] in
                    let misses = ref [] in
                    List.iter
                      (fun parent ->
                        let depth = Nest.depth parent.result.Framework.nest in
                        List.iter
                          (fun t ->
                            let cand = parent.seq @ [ t ] in
                            let canon = Sequence.reduce cand in
                            if SeqTbl.mem seen canon then incr duplicates
                            else begin
                              SeqTbl.add seen canon ();
                              incr explored;
                              match SeqTbl.find_opt cache canon with
                              | Some (Ok cached) ->
                                incr legality_hits;
                                incr score_hits;
                                saved := !saved + List.length cand;
                                hits :=
                                  { cached with seq = cand; canon } :: !hits
                              | Some (Error cause) ->
                                incr legality_hits;
                                incr illegal;
                                saved := !saved + List.length cand;
                                reject cand cause
                              | None ->
                                misses := (parent, t, cand, canon) :: !misses
                            end)
                          (Search.moves ?block_sizes nest ~depth))
                      !frontier;
                    (List.rev !hits, Array.of_list (List.rev !misses)))
              in
              Tracer.add_attrs tracer
                [
                  ("cache_hits", Int (List.length hits));
                  ("misses", Int (Array.length misses));
                ];
              let t1 = Unix.gettimeofday () in
              expand_time := !expand_time +. (t1 -. t0);
              (* Evaluate the cache misses across the domain pool.
                 [Pool.map] preserves input order and each task records
                 into its own forked tracer, joined back in input order —
                 so both the merge below and the span tree are
                 deterministic. *)
              let results =
                Tracer.span tracer "engine.evaluate"
                  ~attrs:(fun () ->
                    [ ("candidates", Int (Array.length misses)) ])
                  (fun () ->
                    let forks =
                      Array.map (fun _ -> Tracer.fork tracer) misses
                    in
                    let tasks =
                      Array.mapi
                        (fun i (parent, t, _, _) -> (forks.(i), parent, t))
                        misses
                    in
                    let results =
                      Pool.map pool
                        (fun (tr, parent, t) ->
                          Tracer.with_ambient tr (fun () ->
                              Tracer.span tr "engine.candidate"
                                ~attrs:(fun () ->
                                  [ ("template", String (Template.name t)) ])
                                (fun () -> evaluate tr objective (parent, t))))
                        tasks
                    in
                    Tracer.join tracer (Array.to_list forks);
                    results)
              in
              let t2 = Unix.gettimeofday () in
              evaluate_time := !evaluate_time +. (t2 -. t1);
              (* Merge in input order: fold counters, fill the cache,
                 record rejection provenance, select the beam with the
                 total order. *)
              Tracer.span tracer "engine.merge" (fun () ->
                  let fresh = ref [] in
                  Array.iteri
                    (fun i (r, apps, obj_ran) ->
                      let _, _, cand, canon = misses.(i) in
                      applications := !applications + apps;
                      saved := !saved + max 0 (List.length cand - apps);
                      if obj_ran then incr objective_evals;
                      match r with
                      | Ok (st, result, score) ->
                        let node =
                          { seq = cand; canon; state = st; result; score }
                        in
                        SeqTbl.replace cache canon (Ok node);
                        fresh := node :: !fresh
                      | Error cause ->
                        incr illegal;
                        SeqTbl.replace cache canon (Error cause);
                        reject cand cause)
                    results;
                  let top =
                    List.filteri
                      (fun k _ -> k < beam)
                      (List.sort order (hits @ List.rev !fresh))
                  in
                  frontier := top;
                  bests := top @ !bests);
              let t3 = Unix.gettimeofday () in
              merge_time := !merge_time +. (t3 -. t2))
        done;
        let winner = List.hd (List.sort order !bests) in
        let total = Unix.gettimeofday () -. t_start in
        let stats =
          {
            Stats.nodes_explored = !explored;
            duplicates_pruned = !duplicates;
            legality_cache_hits = !legality_hits;
            score_cache_hits = !score_hits;
            illegal = !illegal;
            template_applications = !applications;
            template_applications_saved = !saved;
            objective_evaluations = !objective_evals;
            domains;
            expand_time_s = !expand_time;
            evaluate_time_s = !evaluate_time;
            merge_time_s = !merge_time;
            total_time_s = total;
          }
        in
        Option.iter (fun m -> Stats.record m stats) metrics;
        Some
          {
            sequence = winner.seq;
            canonical = winner.canon;
            result = winner.result;
            score = winner.score;
            stats;
            rejections = List.rev !rejections;
          })
