open Itf_ir
module Template = Itf_core.Template
module Framework = Itf_core.Framework
module Sequence = Itf_core.Sequence
module Legality = Itf_core.Legality
module Tracer = Itf_obs.Tracer
module Metrics = Itf_obs.Metrics

type cause = Rejected of Legality.reason list | Unscoreable

type tier0_verdict = Survived | Screened_out | Bound_pruned

type decision = {
  candidate : Sequence.t;
  tier0_score : float;
  tier0_bound : float;
  verdict : tier0_verdict;
}

(* Declared after [decision] so unannotated [.candidate] / [.cause]
   accesses keep resolving here, as they did before tiering existed. *)
type rejection = { candidate : Sequence.t; cause : cause }

(* Anytime budget: wall-clock deadline (seconds from search start) and/or
   node cap, both checked only at batch boundaries — see [search]. *)
type budget = { deadline_s : float option; max_nodes : int option }

type completion = Complete | Degraded of { cut : string }

type outcome = {
  sequence : Sequence.t;
  canonical : Sequence.t;
  result : Framework.result;
  score : float;
  stats : Stats.t;
  completion : completion;
  rejections : rejection list;
  decisions : decision list;
}

let pp_cause ppf = function
  | Unscoreable ->
    Format.fprintf ppf "objective unscoreable (NaN or simulator failure)"
  | Rejected reasons ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
      Legality.pp_reason ppf reasons

let cause_labels = function
  | Unscoreable -> [ "unscoreable" ]
  | Rejected reasons -> List.map Legality.reason_label reasons

let verdict_label = function
  | Survived -> "survived"
  | Screened_out -> "screened_out"
  | Bound_pruned -> "bound_pruned"

let completion_label = function Complete -> "ok" | Degraded _ -> "degraded"

let no_budget = { deadline_s = None; max_nodes = None }

let deadline s = { no_budget with deadline_s = Some s }

(* Cache key of a candidate's canonical sequence. With interning on it is
   the canonical sequence's dense intern id — hashing and equality are
   single integer operations, and {!Sequence.reduce_memo} already computed
   it. With interning off ([~intern:false]) it falls back to the canonical
   sequence itself under structural equality. Ids are used for {e
   equality only}, never ordering: [order] below stays structural, so
   winners are independent of intern-table history. *)
type ckey = Id of int | Canon of Sequence.t

module KeyTbl = Hashtbl.Make (struct
  type t = ckey

  let equal a b =
    match (a, b) with
    | Id x, Id y -> Int.equal x y
    | Canon x, Canon y -> Sequence.equal x y
    | Id _, Canon _ | Canon _, Id _ -> false

  let hash = function Id x -> x land max_int | Canon s -> Sequence.hash s
end)

(* A frontier node: a legality-checked, exactly scored candidate. [state]
   is the resumable prefix (possibly the state of [canon] rather than
   [seq] when the node was served from cache — the two generate the same
   nest, so extensions agree). *)
type node = {
  seq : Sequence.t;
  canon : Sequence.t;
  key : ckey;
  state : Framework.state;
  result : Framework.result;
  score : float;
}

(* A legality-checked candidate holding only a tier-0 estimate: it was
   screened out of the exact tier (or has not reached it yet). Kept in the
   cache so a re-derived spelling skips legality AND tier-0 work. *)
type checked = {
  cseq : Sequence.t;
  ccanon : Sequence.t;
  ckey : ckey;
  cstate : Framework.state;
  cresult : Framework.result;
  cest : Costmodel.estimate;
}

(* Cross-step memo entries, keyed on canonical sequences. *)
type entry = Scored of node | Checked of checked | Failed of cause

(* Total order on candidates: (score, canonical sequence, raw sequence).
   Beam cut-offs and the final winner are therefore independent of
   generation order and of domain scheduling. *)
let order a b =
  let c = Float.compare a.score b.score in
  if c <> 0 then c
  else
    let c = Sequence.compare a.canon b.canon in
    if c <> 0 then c else Sequence.compare a.seq b.seq

(* Same total order on tier-0 estimates. *)
let order_checked a b =
  let c = Float.compare a.cest.Costmodel.score b.cest.Costmodel.score in
  if c <> 0 then c
  else
    let c = Sequence.compare a.ccanon b.ccanon in
    if c <> 0 then c else Sequence.compare a.cseq b.cseq

(* The structural part of the candidate order alone — what the beam falls
   back to when exact scores tie. *)
let order_structural a b =
  let c = Sequence.compare a.ccanon b.ccanon in
  if c <> 0 then c else Sequence.compare a.cseq b.cseq

(* Per-search mutable state — the search context. One [sctx] is created
   at the top of every [search] call and never escapes it: the engine
   keeps NO module-level mutable state, so any number of searches may run
   concurrently (one per serve worker) as long as each holds its own
   context. The shared structures a search reaches from here — the intern
   tables, the objective/canonicalization memos, the metrics registry,
   the domain pool — are each concurrency-safe on their own terms
   (sharded tables, atomic instruments; DESIGN.md §13). The cross-step
   candidate cache is likewise per-search, created alongside the root
   node: concurrent requests share warm state through the process-wide
   memos, never through engine internals. *)
type sctx = {
  t_start : float;  (* budget clock origin: wall clock at search start *)
  mutable explored : int;
  mutable duplicates : int;
  mutable legality_hits : int;
  mutable score_hits : int;
  mutable illegal : int;
  mutable applications : int;
  mutable saved : int;
  mutable objective_evals : int;
  mutable tier0_evals : int;
  mutable tier0_pruned : int;
  (* Phase timers (seconds). With one domain the finer-grained sums
     partition evaluate_time (up to batch machinery); with several they
     are CPU time, not wall. *)
  mutable expand_time : float;
  mutable evaluate_time : float;
  mutable legality_time : float;
  mutable tier0_time : float;
  mutable exact_time : float;
  mutable merge_time : float;
  mutable cut : string option;  (* first tripped budget checkpoint *)
  mutable rejections : rejection list;  (* provenance, newest first *)
  mutable decisions : decision list;  (* tier-0 provenance, newest first *)
}

let fresh_sctx () =
  {
    t_start = Unix.gettimeofday ();
    explored = 0;
    duplicates = 0;
    legality_hits = 0;
    score_hits = 0;
    illegal = 0;
    applications = 0;
    saved = 0;
    objective_evals = 0;
    tier0_evals = 0;
    tier0_pruned = 0;
    expand_time = 0.;
    evaluate_time = 0.;
    legality_time = 0.;
    tier0_time = 0.;
    exact_time = 0.;
    merge_time = 0.;
    cut = None;
    rejections = [];
    decisions = [];
  }

(* One single-tier candidate evaluation: extend the parent prefix by one
   template, run the final dependence test, score. Runs on worker domains
   — all mutable state ([count]) is local, the result and its rejection
   cause are merged by the caller in input order. [obj_ran] is true iff
   the objective simulation ran. [tracer] is this candidate's forked
   tracer; it is also installed as ambient so the simulators inside
   [objective] attach their spans under the objective span. *)
let evaluate tracer objective (parent, t) =
  let count = ref 0 in
  let t_start = Unix.gettimeofday () in
  let checked =
    Tracer.span tracer "engine.legality" (fun () ->
        match Framework.extend ~count parent.state t with
        | Error v -> Error (Rejected (Legality.reasons v))
        | Ok st -> (
          match Framework.finish st with
          | Error v -> Error (Rejected (Legality.reasons v))
          | Ok result -> Ok (st, result)))
  in
  let leg_s = Unix.gettimeofday () -. t_start in
  match checked with
  | Error _ as e -> (e, !count, false, leg_s, 0.)
  | Ok (st, result) ->
    let t_obj = Unix.gettimeofday () in
    let verdict =
      match
        Tracer.span tracer "engine.objective" (fun () -> objective result)
      with
      | score when Float.is_nan score -> Error Unscoreable
      | score -> Ok (st, result, score)
      | exception _ -> Error Unscoreable
    in
    (verdict, !count, true, leg_s, Unix.gettimeofday () -. t_obj)

(* Tier-0 evaluation of one candidate: legality, then the analytic
   estimate — no simulation. Also runs on worker domains. The two trailing
   floats are the candidate's legality and estimate durations; the
   coordinator folds them (in input order) into the per-phase breakdown. *)
let evaluate_tier0 tier0 (parent, t) =
  let count = ref 0 in
  let t_start = Unix.gettimeofday () in
  let checked =
    match Framework.extend ~count parent.state t with
    | Error v -> Error (Rejected (Legality.reasons v))
    | Ok st -> (
      match Framework.finish st with
      | Error v -> Error (Rejected (Legality.reasons v))
      | Ok result -> Ok (st, result))
  in
  let t_leg = Unix.gettimeofday () in
  match checked with
  | Error cause -> (Error cause, !count, t_leg -. t_start, 0.)
  | Ok (st, result) ->
    let est = tier0 result in
    (Ok (st, result, est), !count, t_leg -. t_start, Unix.gettimeofday () -. t_leg)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let default_exact_topk = 12

let search ?(beam = 6) ?(steps = 3) ?block_sizes ?domains
    ?(tracer = Tracer.null) ?metrics ?(provenance = false) ?tier0
    ?(exact_topk = default_exact_topk) ?(tier0_only = false) ?(intern = true)
    ?budget ?(cache_cap = max_int) nest (objective : Search.objective) =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  (* A beam member must carry a score, so the exact tier can never feed
     the beam fewer candidates than it holds. *)
  let exact_topk = max beam exact_topk in
  let tier0_fn = Option.map (Costmodel.make ~memo:intern) tier0 in
  (* Canonicalize one candidate and produce its cache key. Interned:
     {!Sequence.reduce_memo} memoizes the peephole reduction itself by
     sequence id and returns the canonical's id for O(1) cache probes.
     Within one search all interning happens here, on the search's own
     expand/merge thread; the tables themselves are sharded and safe for
     the concurrent searches of other serve workers. *)
  let canon_key =
    if intern then fun cand ->
      let c, cid = Sequence.reduce_memo cand in
      (c, Id cid)
    else fun cand ->
      let c = Sequence.reduce cand in
      (c, Canon c)
  in
  let subtree_prune =
    match tier0 with Some s -> Costmodel.subtree_admissible s | None -> false
  in
  if tier0_only && Option.is_none tier0_fn then
    invalid_arg "Engine.search: ~tier0_only requires ~tier0";
  let reject_counter cause =
    match metrics with
    | None -> ()
    | Some m ->
      List.iter
        (fun label ->
          Metrics.incr
            (Metrics.counter m ~labels:[ ("reason", label) ]
               "legality.rejections"))
        (cause_labels cause)
  in
  let cx = fresh_sctx () in
  let reject cand cause =
    reject_counter cause;
    if provenance then
      cx.rejections <- { candidate = cand; cause } :: cx.rejections
  in
  let decide cand (est : Costmodel.estimate) verdict =
    if provenance then
      cx.decisions <-
        {
          candidate = cand;
          tier0_score = est.Costmodel.score;
          tier0_bound = est.Costmodel.bound;
          verdict;
        }
        :: cx.decisions
  in
  (* [domains] is deliberately NOT a span attribute: the span tree must be
     identical across domain counts (it lives in the [engine.domains]
     gauge and the stats record instead). *)
  Tracer.span tracer "engine.search"
    ~attrs:(fun () -> [ ("beam", Int beam); ("steps", Int steps) ])
  @@ fun () ->
  (* Anytime budget: consulted only at batch boundaries (step starts, and
     between a step's evaluation batches), never inside one, so a given
     cut point always yields the same incumbent — results are a
     deterministic function of the cut point, and a search that never
     trips a checkpoint is bit-identical to an unbudgeted one. Once set,
     [cx.cut] short-circuits every later checkpoint. *)
  let over_budget site =
    (match (cx.cut, budget) with
    | Some _, _ | _, None -> ()
    | None, Some b ->
      let timed_out =
        match b.deadline_s with
        | Some d -> Unix.gettimeofday () -. cx.t_start >= d
        | None -> false
      in
      let nodes_out =
        match b.max_nodes with Some n -> cx.explored >= n | None -> false
      in
      if timed_out || nodes_out then
        cx.cut <-
          Some (site ^ ":" ^ if timed_out then "deadline" else "nodes"));
    cx.cut <> None
  in
  (* One persistent process-wide pool, grown on demand, instead of forking
     domains per search: spawn cost rivals a whole small search. Purely
     sequential searches never touch it. *)
  let pool =
    if domains > 1 then Some (Pool.shared ~workers:(domains - 1) ()) else None
  in
  let pmap : 'a 'b. ('a -> 'b) -> 'a array -> 'b array =
   fun f input ->
    match pool with
    | None -> Array.map f input
    | Some p -> Pool.map_auto p f input
  in
  let vectors = Itf_dep.Analysis.vectors nest in
  let root =
    cx.explored <- cx.explored + 1;
    let _, root_key = canon_key [] in
    let t_leg = Unix.gettimeofday () in
    let st = Framework.start ~vectors nest in
    let finished = Framework.finish st in
    cx.legality_time <- cx.legality_time +. (Unix.gettimeofday () -. t_leg);
    match finished with
    | Error _ -> None
    | Ok result -> (
      match tier0_fn with
      | Some t0 when tier0_only ->
        cx.tier0_evals <- cx.tier0_evals + 1;
        let t_est = Unix.gettimeofday () in
        let est = t0 result in
        cx.tier0_time <- cx.tier0_time +. (Unix.gettimeofday () -. t_est);
        Some
          {
            seq = [];
            canon = [];
            key = root_key;
            state = st;
            result;
            score = est.Costmodel.score;
          }
      | _ ->
        cx.objective_evals <- cx.objective_evals + 1;
        let t_obj = Unix.gettimeofday () in
        let scored =
          match
            Tracer.span tracer "engine.objective"
              ~attrs:(fun () -> [ ("root", Bool true) ])
              (fun () ->
                Tracer.with_ambient tracer (fun () -> objective result))
          with
          | score -> Some score
          | exception _ -> None
        in
        cx.exact_time <- cx.exact_time +. (Unix.gettimeofday () -. t_obj);
        match scored with
        | Some score when not (Float.is_nan score) ->
          Some
            { seq = []; canon = []; key = root_key; state = st; result; score }
        | _ -> None)
  in
  match root with
  | None -> None
  | Some root ->
    (* Cross-step memo keyed on canonical (peephole-reduced) sequences —
       by intern id when interning is on (integer probes), structurally
       otherwise: [Scored] is a previously evaluated legal candidate,
       [Checked] one that only reached the tier-0 screen, [Failed] a
       rejected one whose cause replays on every re-derived spelling.
       E.g. reversal twice reduces to [] and is answered by the root's
       entry without touching the framework. The cache is written
       exclusively by the merging thread (workers fill per-index result
       slots), so parallel runs stay bit-identical to sequential ones. *)
    let cache : entry KeyTbl.t = KeyTbl.create 256 in
    KeyTbl.add cache root.key (Scored root);
    (* [cache_cap] bounds the per-search memo. Entries are pure facts
       about (nest, canonical sequence), so flushing loses only speed —
       later steps re-derive what they need — never correctness. The
       default cap is never reached, keeping single-shot runs
       bit-identical in work done as well as results. *)
    let cache_evictions = ref 0 in
    let enforce_cache_cap () =
      if KeyTbl.length cache > cache_cap then begin
        cache_evictions := !cache_evictions + KeyTbl.length cache;
        KeyTbl.reset cache;
        KeyTbl.add cache root.key (Scored root)
      end
    in
    (* Best exact score seen so far — the branch-and-bound incumbent. Only
       updated between steps, so every candidate of one step faces the
       same cutoff regardless of evaluation order. *)
    let incumbent = ref root.score in
    let bests = ref [ root ] in
    let frontier = ref [ root ] in
    for step = 1 to steps do
      if not (over_budget (Printf.sprintf "step%d" step)) then
        Tracer.span tracer "engine.step"
          ~attrs:(fun () -> [ ("step", Int step) ])
          (fun () ->
          let t0 = Unix.gettimeofday () in
          (* Expand: generate moves, canonicalize, dedupe within the
             step (first spelling wins), consult the cache. Sequential
             — cheap relative to evaluation, and keeps cache access
             single-domain. *)
          let hits, checked_hits, misses =
            Tracer.span tracer "engine.expand" (fun () ->
                let seen = KeyTbl.create 64 in
                let hits = ref [] in
                let checked_hits = ref [] in
                let misses = ref [] in
                List.iter
                  (fun parent ->
                    let depth = Nest.depth parent.result.Framework.nest in
                    List.iter
                      (fun t ->
                        let cand = parent.seq @ [ t ] in
                        let canon, key = canon_key cand in
                        if KeyTbl.mem seen key then
                          cx.duplicates <- cx.duplicates + 1
                        else begin
                          KeyTbl.add seen key ();
                          cx.explored <- cx.explored + 1;
                          match KeyTbl.find_opt cache key with
                          | Some (Scored cached) ->
                            cx.legality_hits <- cx.legality_hits + 1;
                            cx.score_hits <- cx.score_hits + 1;
                            cx.saved <- cx.saved + List.length cand;
                            hits :=
                              { cached with seq = cand; canon; key } :: !hits
                          | Some (Checked c) ->
                            cx.legality_hits <- cx.legality_hits + 1;
                            cx.saved <- cx.saved + List.length cand;
                            checked_hits :=
                              { c with cseq = cand; ccanon = canon; ckey = key }
                              :: !checked_hits
                          | Some (Failed cause) ->
                            cx.legality_hits <- cx.legality_hits + 1;
                            cx.illegal <- cx.illegal + 1;
                            cx.saved <- cx.saved + List.length cand;
                            reject cand cause
                          | None ->
                            misses := (parent, t, cand, canon, key) :: !misses
                        end)
                      (Search.moves ?block_sizes nest ~depth))
                  !frontier;
                ( List.rev !hits,
                  List.rev !checked_hits,
                  Array.of_list (List.rev !misses) ))
          in
          Tracer.add_attrs tracer
            [
              ("cache_hits", Int (List.length hits + List.length checked_hits));
              ("misses", Int (Array.length misses));
            ];
          let t1 = Unix.gettimeofday () in
          cx.expand_time <- cx.expand_time +. (t1 -. t0);
          (* Evaluate the cache misses across the domain pool. The pool
             map preserves input order and (in the single-tier path) each
             task records into its own forked tracer, joined back in input
             order — so both the merge below and the span tree are
             deterministic. *)
          let fresh =
            if over_budget (Printf.sprintf "step%d.evaluate" step) then None
            else
              match tier0_fn with
              | None ->
              (* Single-tier: fused legality + exact objective per
                 candidate, exactly the pre-tiering behaviour. *)
              let results =
                Tracer.span tracer "engine.evaluate"
                  ~attrs:(fun () ->
                    [ ("candidates", Int (Array.length misses)) ])
                  (fun () ->
                    let forks =
                      Array.map (fun _ -> Tracer.fork tracer) misses
                    in
                    let tasks =
                      Array.mapi
                        (fun i (parent, t, _, _, _) -> (forks.(i), parent, t))
                        misses
                    in
                    let results =
                      pmap
                        (fun (tr, parent, t) ->
                          Tracer.with_ambient tr (fun () ->
                              Tracer.span tr "engine.candidate"
                                ~attrs:(fun () ->
                                  [ ("template", String (Template.name t)) ])
                                (fun () -> evaluate tr objective (parent, t))))
                        tasks
                    in
                    Tracer.join tracer (Array.to_list forks);
                    results)
              in
              let t2 = Unix.gettimeofday () in
              cx.evaluate_time <- cx.evaluate_time +. (t2 -. t1);
              (* Merge in input order: fold counters, fill the cache,
                 record rejection provenance. *)
              let fresh = ref [] in
              Array.iteri
                (fun i (r, apps, obj_ran, leg_s, obj_s) ->
                  let _, _, cand, canon, key = misses.(i) in
                  cx.applications <- cx.applications + apps;
                  cx.saved <- cx.saved + max 0 (List.length cand - apps);
                  cx.legality_time <- cx.legality_time +. leg_s;
                  cx.exact_time <- cx.exact_time +. obj_s;
                  if obj_ran then cx.objective_evals <- cx.objective_evals + 1;
                  match r with
                  | Ok (st, result, score) ->
                    let node =
                      { seq = cand; canon; key; state = st; result; score }
                    in
                    KeyTbl.replace cache key (Scored node);
                    fresh := node :: !fresh
                  | Error cause ->
                    cx.illegal <- cx.illegal + 1;
                    KeyTbl.replace cache key (Failed cause);
                    reject cand cause)
                results;
              Some (List.rev !fresh)
            | Some t0 ->
              (* Tier 0: legality + analytic estimate for every fresh
                 candidate (cheap — no simulation). *)
              let results =
                Tracer.span tracer "engine.tier0"
                  ~attrs:(fun () ->
                    [ ("candidates", Int (Array.length misses)) ])
                  (fun () ->
                    pmap
                      (fun (parent, t, _, _, _) ->
                        evaluate_tier0 t0 (parent, t))
                      misses)
              in
              let pending = ref [] in
              Array.iteri
                (fun i (r, apps, leg_s, t0_s) ->
                  let _, _, cand, canon, key = misses.(i) in
                  cx.applications <- cx.applications + apps;
                  cx.saved <- cx.saved + max 0 (List.length cand - apps);
                  cx.legality_time <- cx.legality_time +. leg_s;
                  cx.tier0_time <- cx.tier0_time +. t0_s;
                  match r with
                  | Ok (st, result, est) ->
                    cx.tier0_evals <- cx.tier0_evals + 1;
                    pending :=
                      {
                        cseq = cand;
                        ccanon = canon;
                        ckey = key;
                        cstate = st;
                        cresult = result;
                        cest = est;
                      }
                      :: !pending
                  | Error cause ->
                    cx.illegal <- cx.illegal + 1;
                    KeyTbl.replace cache key (Failed cause);
                    reject cand cause)
                results;
              if over_budget (Printf.sprintf "step%d.exact" step) then None
              else begin
              (* Screen, deterministically: sort every tier-0-estimated
                 candidate (fresh and cached alike) by the estimate order;
                 cut dominated subtrees with the admissible bound against
                 the incumbent; the top-K by estimate reach the exact
                 simulator. The [beam] structurally-smallest survivors of
                 the bound cut are forwarded too: the beam breaks exact-
                 score ties on the structural order, so those candidates
                 must hold exact scores — otherwise a screen full of
                 estimator favorites rekeys the whole frontier whenever
                 the exact objective ties (estimator noise), collapsing
                 the cross-step cache and inflating legality work on
                 bulky nests. Extra exact scores never change the winner:
                 they can only move the beam toward the untiered one. *)
              let screened =
                List.sort order_checked (checked_hits @ List.rev !pending)
              in
              let bound_ok = ref [] in
              List.iter
                (fun c ->
                  if
                    subtree_prune && (not tier0_only)
                    && c.cest.Costmodel.bound > !incumbent
                  then begin
                    (* exact(c) and exact(every descendant) >= bound >
                       incumbent: neither can ever win. *)
                    cx.tier0_pruned <- cx.tier0_pruned + 1;
                    decide c.cseq c.cest Bound_pruned;
                    KeyTbl.replace cache c.ckey (Checked c)
                  end
                  else bound_ok := c :: !bound_ok)
                screened;
              let bound_ok = List.rev !bound_ok in
              let smallest =
                if tier0_only then KeyTbl.create 1
                else begin
                  let tbl = KeyTbl.create 16 in
                  List.iteri
                    (fun k c -> if k < beam then KeyTbl.replace tbl c.ckey ())
                    (List.sort order_structural bound_ok);
                  tbl
                end
              in
              (* The top-K cut never splits an estimate tie class: tied
                 candidates are indistinguishable to the screen, so which
                 side of the cut they land on would be decided by the
                 structural tie-break alone — and the exact tier (which
                 the beam trusts) must see all of them or none. *)
              let survivors = ref [] and kept = ref 0 in
              let last_kept_est = ref Float.nan in
              List.iter
                (fun c ->
                  let est = c.cest.Costmodel.score in
                  if
                    tier0_only || !kept < exact_topk
                    || est = !last_kept_est
                    || KeyTbl.mem smallest c.ckey
                  then begin
                    incr kept;
                    if !kept <= exact_topk then last_kept_est := est;
                    decide c.cseq c.cest Survived;
                    survivors := c :: !survivors
                  end
                  else begin
                    cx.tier0_pruned <- cx.tier0_pruned + 1;
                    decide c.cseq c.cest Screened_out;
                    KeyTbl.replace cache c.ckey (Checked c)
                  end)
                bound_ok;
              let survivors = Array.of_list (List.rev !survivors) in
              (* Exact tier: simulate only the survivors. In tier0-only
                 mode the estimate itself is the score. *)
              let scored =
                if tier0_only then
                  Array.map
                    (fun c -> (c, Ok c.cest.Costmodel.score, 0.))
                    survivors
                else
                  Tracer.span tracer "engine.exact"
                    ~attrs:(fun () ->
                      [ ("survivors", Int (Array.length survivors)) ])
                    (fun () ->
                      let forks =
                        Array.map (fun _ -> Tracer.fork tracer) survivors
                      in
                      let tasks =
                        Array.mapi (fun i c -> (forks.(i), c)) survivors
                      in
                      let results =
                        pmap
                          (fun (tr, c) ->
                            Tracer.with_ambient tr (fun () ->
                                Tracer.span tr "engine.candidate"
                                  ~attrs:(fun () ->
                                    [
                                      ( "template",
                                        String
                                          (match List.rev c.cseq with
                                          | t :: _ -> Template.name t
                                          | [] -> "identity") );
                                    ])
                                  (fun () ->
                                    Tracer.span tr "engine.objective"
                                      (fun () ->
                                        let t_obj = Unix.gettimeofday () in
                                        let r =
                                          match objective c.cresult with
                                          | s when Float.is_nan s ->
                                            Error Unscoreable
                                          | s -> Ok s
                                          | exception _ -> Error Unscoreable
                                        in
                                        (r, Unix.gettimeofday () -. t_obj)))))
                          tasks
                      in
                      Tracer.join tracer (Array.to_list forks);
                      Array.map2
                        (fun c (r, obj_s) -> (c, r, obj_s))
                        survivors results)
              in
              let t2 = Unix.gettimeofday () in
              cx.evaluate_time <- cx.evaluate_time +. (t2 -. t1);
              let fresh = ref [] in
              Array.iter
                (fun (c, r, obj_s) ->
                  cx.exact_time <- cx.exact_time +. obj_s;
                  if not tier0_only then
                    cx.objective_evals <- cx.objective_evals + 1;
                  match r with
                  | Ok score ->
                    let node =
                      {
                        seq = c.cseq;
                        canon = c.ccanon;
                        key = c.ckey;
                        state = c.cstate;
                        result = c.cresult;
                        score;
                      }
                    in
                    KeyTbl.replace cache c.ckey (Scored node);
                    fresh := node :: !fresh
                  | Error cause ->
                    cx.illegal <- cx.illegal + 1;
                    KeyTbl.replace cache c.ckey (Failed cause);
                    reject c.cseq cause)
                scored;
              Some (List.rev !fresh)
              end
          in
          match fresh with
          | None ->
            (* Budget cut mid-step: the whole partial step is abandoned —
               the frontier, incumbent and best-so-far list stay exactly
               as the last completed step left them, so the outcome is
               the same whichever batch the cut interrupted. *)
            ()
          | Some fresh ->
            let t2 = Unix.gettimeofday () in
            (* Merge: select the beam with the total order, advance the
               branch-and-bound incumbent. *)
            Tracer.span tracer "engine.merge" (fun () ->
                let top =
                  List.filteri
                    (fun k _ -> k < beam)
                    (List.sort order (hits @ fresh))
                in
                (match top with
                | best :: _ -> incumbent := Float.min !incumbent best.score
                | [] -> ());
                frontier := top;
                bests := top @ !bests);
            let t3 = Unix.gettimeofday () in
            cx.merge_time <- cx.merge_time +. (t3 -. t2);
            enforce_cache_cap ())
    done;
    let winner = List.hd (List.sort order !bests) in
    let total = Unix.gettimeofday () -. cx.t_start in
    let stats =
      {
        Stats.nodes_explored = cx.explored;
        duplicates_pruned = cx.duplicates;
        legality_cache_hits = cx.legality_hits;
        score_cache_hits = cx.score_hits;
        illegal = cx.illegal;
        template_applications = cx.applications;
        template_applications_saved = cx.saved;
        objective_evaluations = cx.objective_evals;
        tier0_evaluations = cx.tier0_evals;
        tier0_pruned = cx.tier0_pruned;
        domains;
        work_threshold = (if domains > 1 then Pool.default_threshold else 0);
        expand_time_s = cx.expand_time;
        evaluate_time_s = cx.evaluate_time;
        legality_time_s = cx.legality_time;
        tier0_time_s = cx.tier0_time;
        exact_time_s = cx.exact_time;
        merge_time_s = cx.merge_time;
        total_time_s = total;
      }
    in
    Option.iter (fun m -> Stats.record m stats) metrics;
    Option.iter
      (fun m ->
        Metrics.set
          (Metrics.gauge m "engine.cache.size")
          (float (KeyTbl.length cache));
        Metrics.set
          (Metrics.gauge m "engine.cache.evictions")
          (float !cache_evictions))
      metrics;
    (* Intern/memo table health, one gauge triple per table, labeled by
       table name. Gauges are absolute process-wide values (last write
       wins), so repeated searches just refresh them. *)
    Option.iter
      (fun m ->
        List.iter
          (fun s ->
            let labels = [ ("table", s.Itf_mat.Hashcons.name) ] in
            Metrics.set
              (Metrics.gauge m ~labels "intern.size")
              (float s.Itf_mat.Hashcons.size);
            Metrics.set
              (Metrics.gauge m ~labels "intern.hits")
              (float s.Itf_mat.Hashcons.hits);
            Metrics.set
              (Metrics.gauge m ~labels "intern.misses")
              (float s.Itf_mat.Hashcons.misses);
            Metrics.set
              (Metrics.gauge m ~labels "intern.evictions")
              (float s.Itf_mat.Hashcons.evictions))
          (Itf_mat.Hashcons.stats ()))
      metrics;
    Some
      {
        sequence = winner.seq;
        canonical = winner.canon;
        result = winner.result;
        score = winner.score;
        stats;
        completion =
          (match cx.cut with
          | None -> Complete
          | Some site -> Degraded { cut = site });
        rejections = List.rev cx.rejections;
        decisions = List.rev cx.decisions;
      }
