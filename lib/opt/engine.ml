open Itf_ir
module Template = Itf_core.Template
module Framework = Itf_core.Framework
module Sequence = Itf_core.Sequence

type outcome = {
  sequence : Sequence.t;
  canonical : Sequence.t;
  result : Framework.result;
  score : float;
  stats : Stats.t;
}

module SeqTbl = Hashtbl.Make (struct
  type t = Sequence.t

  let equal = Sequence.equal
  let hash = Sequence.hash
end)

(* A frontier node: a legality-checked candidate. [state] is the resumable
   prefix (possibly the state of [canon] rather than [seq] when the node
   was served from cache — the two generate the same nest, so extensions
   agree). *)
type node = {
  seq : Sequence.t;
  canon : Sequence.t;
  state : Framework.state;
  result : Framework.result;
  score : float;
}

(* Total order on candidates: (score, canonical sequence, raw sequence).
   Beam cut-offs and the final winner are therefore independent of
   generation order and of domain scheduling. *)
let order a b =
  let c = Float.compare a.score b.score in
  if c <> 0 then c
  else
    let c = Sequence.compare a.canon b.canon in
    if c <> 0 then c else Sequence.compare a.seq b.seq

(* One candidate evaluation: extend the parent prefix by one template,
   run the final dependence test, score. Runs on worker domains — all
   mutable state ([count]) is local, the result is merged by the caller
   in input order. [obj_ran] is true iff the objective simulation ran. *)
let evaluate objective (parent, t) =
  let count = ref 0 in
  let outcome =
    match Framework.extend ~count parent.state t with
    | Error _ -> None
    | Ok st -> (
      match Framework.finish st with
      | Error _ -> None
      | Ok result -> Some (st, result))
  in
  match outcome with
  | None -> (None, !count, false)
  | Some (st, result) -> (
    match objective result with
    | score when Float.is_nan score -> (None, !count, true)
    | score -> (Some (st, result, score), !count, true)
    | exception _ -> (None, !count, true))

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let search ?(beam = 6) ?(steps = 3) ?block_sizes ?domains nest
    (objective : Search.objective) =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let t_start = Unix.gettimeofday () in
  let explored = ref 0 in
  let duplicates = ref 0 in
  let legality_hits = ref 0 in
  let score_hits = ref 0 in
  let illegal = ref 0 in
  let applications = ref 0 in
  let saved = ref 0 in
  let objective_evals = ref 0 in
  let expand_time = ref 0. in
  let evaluate_time = ref 0. in
  let merge_time = ref 0. in
  let vectors = Itf_dep.Analysis.vectors nest in
  let root =
    incr explored;
    let st = Framework.start ~vectors nest in
    match Framework.finish st with
    | Error _ -> None
    | Ok result -> (
      incr objective_evals;
      match objective result with
      | score when Float.is_nan score -> None
      | score -> Some { seq = []; canon = []; state = st; result; score }
      | exception _ -> None)
  in
  match root with
  | None -> None
  | Some root ->
    (* Cross-step memo keyed on canonical (peephole-reduced) sequences:
       [Some node] is a previously evaluated legal candidate, [None] a
       previously rejected one. E.g. reversal twice reduces to [] and is
       answered by the root's entry without touching the framework. *)
    let cache : node option SeqTbl.t = SeqTbl.create 256 in
    SeqTbl.add cache root.canon (Some root);
    let pool = Pool.create (domains - 1) in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let bests = ref [ root ] in
        let frontier = ref [ root ] in
        for _ = 1 to steps do
          let t0 = Unix.gettimeofday () in
          (* Expand: generate moves, canonicalize, dedupe within the step
             (first spelling wins), consult the cache. Sequential — cheap
             relative to evaluation, and keeps cache access single-domain. *)
          let seen = SeqTbl.create 64 in
          let hits = ref [] in
          let misses = ref [] in
          List.iter
            (fun parent ->
              let depth = Nest.depth parent.result.Framework.nest in
              List.iter
                (fun t ->
                  let cand = parent.seq @ [ t ] in
                  let canon = Sequence.reduce cand in
                  if SeqTbl.mem seen canon then incr duplicates
                  else begin
                    SeqTbl.add seen canon ();
                    incr explored;
                    match SeqTbl.find_opt cache canon with
                    | Some (Some cached) ->
                      incr legality_hits;
                      incr score_hits;
                      saved := !saved + List.length cand;
                      hits :=
                        { cached with seq = cand; canon } :: !hits
                    | Some None ->
                      incr legality_hits;
                      incr illegal;
                      saved := !saved + List.length cand
                    | None -> misses := (parent, t, cand, canon) :: !misses
                  end)
                (Search.moves ?block_sizes nest ~depth))
            !frontier;
          let hits = List.rev !hits in
          let misses = Array.of_list (List.rev !misses) in
          let t1 = Unix.gettimeofday () in
          expand_time := !expand_time +. (t1 -. t0);
          (* Evaluate the cache misses across the domain pool. [Pool.map]
             preserves input order, so the merge below is deterministic. *)
          let results =
            Pool.map pool
              (fun (parent, t, _, _) -> evaluate objective (parent, t))
              misses
          in
          let t2 = Unix.gettimeofday () in
          evaluate_time := !evaluate_time +. (t2 -. t1);
          (* Merge in input order: fold counters, fill the cache, select
             the beam with the total order. *)
          let fresh = ref [] in
          Array.iteri
            (fun i (r, apps, obj_ran) ->
              let _, _, cand, canon = misses.(i) in
              applications := !applications + apps;
              saved := !saved + max 0 (List.length cand - apps);
              if obj_ran then incr objective_evals;
              match r with
              | Some (st, result, score) ->
                let node = { seq = cand; canon; state = st; result; score } in
                SeqTbl.replace cache canon (Some node);
                fresh := node :: !fresh
              | None ->
                incr illegal;
                SeqTbl.replace cache canon None)
            results;
          let top =
            List.filteri
              (fun k _ -> k < beam)
              (List.sort order (hits @ List.rev !fresh))
          in
          frontier := top;
          bests := top @ !bests;
          let t3 = Unix.gettimeofday () in
          merge_time := !merge_time +. (t3 -. t2)
        done;
        let winner = List.hd (List.sort order !bests) in
        let total = Unix.gettimeofday () -. t_start in
        let stats =
          {
            Stats.nodes_explored = !explored;
            duplicates_pruned = !duplicates;
            legality_cache_hits = !legality_hits;
            score_cache_hits = !score_hits;
            illegal = !illegal;
            template_applications = !applications;
            template_applications_saved = !saved;
            objective_evaluations = !objective_evals;
            domains;
            expand_time_s = !expand_time;
            evaluate_time_s = !evaluate_time;
            merge_time_s = !merge_time;
            total_time_s = total;
          }
        in
        Some
          {
            sequence = winner.seq;
            canonical = winner.canon;
            result = winner.result;
            score = winner.score;
            stats;
          })
