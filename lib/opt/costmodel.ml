open Itf_ir
module Framework = Itf_core.Framework
module Affine = Itf_bounds.Affine

type estimate = { score : float; bound : float }

type spec =
  | Locality of {
      config : Itf_machine.Cache.config;
      elem_bytes : int;
      params : (string * int) list;
    }
  | Parallel of {
      procs : int;
      spawn_overhead : float;
      params : (string * int) list;
    }

let spec_label = function Locality _ -> "locality" | Parallel _ -> "parallel"

(* Reordering preserves the touched-address set, so the locality bound
   holds for every descendant of a candidate too; the parallel bound does
   not survive further parallelization. *)
let subtree_admissible = function Locality _ -> true | Parallel _ -> false

let default_bounds ~params arity =
  let m = List.fold_left (fun acc (_, x) -> max acc (abs x)) 8 params in
  List.init arity (fun _ -> (-2 * m, 3 * m))

(* ------------------------------------------------------------------ *)
(* Interval arithmetic over Expr                                       *)
(* ------------------------------------------------------------------ *)

(* Closed float intervals; [None] = unknown. Floats keep the arithmetic
   overflow-free (every value the framework produces is far below 2^53,
   so floor division on floats is exact). *)
type iv = { lo : float; hi : float }

let exact x = Some { lo = x; hi = x }
let fdiv a b = Float.floor (a /. b)

let corners f a b =
  let vs = [ f a.lo b.lo; f a.lo b.hi; f a.hi b.lo; f a.hi b.hi ] in
  Some
    {
      lo = List.fold_left Float.min Float.infinity vs;
      hi = List.fold_left Float.max Float.neg_infinity vs;
    }

let lift2 f a b = match (a, b) with Some a, Some b -> f a b | _ -> None

(* [tbl] maps symbolic parameters to exact intervals and loop variables to
   their enclosing-range intervals; anything absent (body-defined scalars,
   unbound symbols) is unknown. *)
let rec eval tbl (e : Expr.t) : iv option =
  match e with
  | Int n -> exact (float n)
  | Var v -> ( match Hashtbl.find_opt tbl v with Some r -> r | None -> None)
  | Neg a ->
    Option.map (fun r -> { lo = -.r.hi; hi = -.r.lo }) (eval tbl a)
  | Add (a, b) ->
    lift2
      (fun a b -> Some { lo = a.lo +. b.lo; hi = a.hi +. b.hi })
      (eval tbl a) (eval tbl b)
  | Sub (a, b) ->
    lift2
      (fun a b -> Some { lo = a.lo -. b.hi; hi = a.hi -. b.lo })
      (eval tbl a) (eval tbl b)
  | Mul (a, b) -> lift2 (corners (fun x y -> x *. y)) (eval tbl a) (eval tbl b)
  | Div (a, b) ->
    (* Floor division is monotone in the numerator and, for a divisor of
       constant sign, monotone in the divisor — corners suffice. A divisor
       interval containing 0 is unknown. *)
    lift2
      (fun a b ->
        if b.lo > 0. || b.hi < 0. then corners fdiv a b else None)
      (eval tbl a) (eval tbl b)
  | Mod (a, b) ->
    (* Floor-mod takes the sign of the divisor. *)
    lift2
      (fun _ b ->
        if b.lo > 0. then Some { lo = 0.; hi = b.hi -. 1. }
        else if b.hi < 0. then Some { lo = b.lo +. 1.; hi = 0. }
        else None)
      (eval tbl a) (eval tbl b)
  | Min (a, b) ->
    lift2
      (fun a b -> Some { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi })
      (eval tbl a) (eval tbl b)
  | Max (a, b) ->
    lift2
      (fun a b -> Some { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi })
      (eval tbl a) (eval tbl b)
  | Call ("abs", [ a ]) ->
    Option.map
      (fun r ->
        if r.lo >= 0. then r
        else if r.hi <= 0. then { lo = -.r.hi; hi = -.r.lo }
        else { lo = 0.; hi = Float.max (-.r.lo) r.hi })
      (eval tbl a)
  | Call ("sgn", [ _ ]) -> Some { lo = -1.; hi = 1. }
  | Load _ | Call _ -> None

(* ------------------------------------------------------------------ *)
(* Loop levels: guaranteed and estimated trip counts                   *)
(* ------------------------------------------------------------------ *)

type level = {
  var : string;
  kind : Nest.kind;
  tmin : float;  (** guaranteed iterations of any one traversal (>= 0) *)
  test : float;  (** estimated iterations of one traversal (>= 0) *)
}

let default_trip = 8.

(* Walk outermost-in, binding each loop variable's range interval in [tbl]
   before analyzing the next level (inner bounds may mention outer vars). *)
let analyze_levels tbl (loops : Nest.loop list) =
  List.map
    (fun (l : Nest.loop) ->
      let lo = eval tbl l.Nest.lo in
      let hi = eval tbl l.Nest.hi in
      let step =
        match eval tbl l.Nest.step with
        | Some r when r.lo = r.hi && r.lo <> 0. -> Some r.lo
        | _ -> None
      in
      (* [test] is the midpoint of the CLAMPED trip-count interval
         [[tmin, tmax]], not the raw midpoint of the bound expressions: a
         skewed or blocked loop whose range depends on outer variables is
         often empty at the worst corner yet populated elsewhere, and the
         raw midpoint collapses such loops to zero trips — flattening every
         descendant's estimate to 0 and letting them crowd the tier-0
         screen. Only a certainly-empty loop (tmax <= 0) estimates zero. *)
      let trips tlo thi =
        let tlo = Float.max 0. tlo and thi = Float.max 0. thi in
        (tlo, (tlo +. thi) /. 2.)
      in
      let tmin, test, range =
        match (lo, hi, step) with
        | Some lo, Some hi, Some s when s > 0. ->
          let tmin, test =
            trips
              (fdiv (hi.lo -. lo.hi) s +. 1.)
              (((hi.hi -. lo.lo) /. s) +. 1.)
          in
          ( tmin,
            test,
            if lo.lo <= hi.hi then Some { lo = lo.lo; hi = hi.hi } else None )
        | Some lo, Some hi, Some s ->
          let tmin, test =
            trips
              (fdiv (lo.lo -. hi.hi) (-.s) +. 1.)
              (((lo.hi -. hi.lo) /. -.s) +. 1.)
          in
          ( tmin,
            test,
            if hi.lo <= lo.hi then Some { lo = hi.lo; hi = lo.hi } else None )
        | _ -> (0., default_trip, None)
      in
      Hashtbl.replace tbl l.Nest.var range;
      { var = l.Nest.var; kind = l.Nest.kind; tmin; test })
    loops

(* ------------------------------------------------------------------ *)
(* Array references over the transformed index variables               *)
(* ------------------------------------------------------------------ *)

type aref = { array : string; index : Expr.t list; guarded : bool }

(* The framework keeps bodies verbatim and prepends initialization
   statements defining the original index variables over the new ones
   (paper Figure 3) — so subscript strides after a transformation only
   become visible once those definitions are substituted through. Inits
   are substituted in order (later ones may use earlier ones); variables
   also assigned inside the body are left alone (their init definition
   does not dominate every use). *)
let init_subst (nest : Nest.t) =
  let body_defined =
    List.concat_map Stmt.defined_vars nest.Nest.body |> List.sort_uniq compare
  in
  List.fold_left
    (fun acc s ->
      match s with
      | Stmt.Set (v, e) when not (List.mem v body_defined) ->
        (v, Expr.simplify (Expr.subst acc e)) :: acc
      | _ -> acc)
    [] nest.Nest.inits

let collect_refs (nest : Nest.t) =
  let sub = init_subst nest in
  let refs = ref [] in
  let rec expr ~guarded (e : Expr.t) =
    match e with
    | Int _ | Var _ -> ()
    | Neg a -> expr ~guarded a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
    | Min (a, b) | Max (a, b) ->
      expr ~guarded a;
      expr ~guarded b
    | Load { array; index } ->
      refs := { array; index; guarded } :: !refs;
      List.iter (expr ~guarded) index
    | Call (_, args) -> List.iter (expr ~guarded) args
  in
  let rec stmt ~guarded = function
    | Stmt.Store ({ array; index }, rhs) ->
      refs := { array; index; guarded } :: !refs;
      List.iter (expr ~guarded) index;
      expr ~guarded rhs
    | Stmt.Set (_, rhs) -> expr ~guarded rhs
    | Stmt.Guard { lhs; rhs; body; _ } ->
      (* The condition is always evaluated; only the body is conditional. *)
      expr ~guarded lhs;
      expr ~guarded rhs;
      List.iter (stmt ~guarded:true) body
  in
  List.iter
    (fun s -> stmt ~guarded:false (Stmt.subst sub s))
    (nest.Nest.inits @ nest.Nest.body);
  List.rev !refs

(* ------------------------------------------------------------------ *)
(* Locality                                                            *)
(* ------------------------------------------------------------------ *)

type layout = {
  strides : (string * float array) list;  (** row-major, in elements *)
  total_lines : (string * float) list;  (** whole-array footprint, lines *)
}

let make_layout ~params ~line_elems refs =
  let arities = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let k = List.length r.index in
      match Hashtbl.find_opt arities r.array with
      | Some k' when k' >= k -> ()
      | _ -> Hashtbl.replace arities r.array k)
    refs;
  Hashtbl.fold
    (fun a arity acc ->
      let extents =
        default_bounds ~params arity
        |> List.map (fun (lo, hi) -> float (hi - lo + 1))
        |> Array.of_list
      in
      let strides = Array.make arity 1. in
      for d = arity - 2 downto 0 do
        strides.(d) <- strides.(d + 1) *. extents.(d + 1)
      done;
      let elems = Array.fold_left ( *. ) 1. extents in
      {
        strides = (a, strides) :: acc.strides;
        total_lines = (a, Float.max 1. (elems /. line_elems)) :: acc.total_lines;
      })
    arities
    { strides = []; total_lines = [] }

(* Per-reference view: the flattened (row-major) affine form of the byte
   address as a function of the loop variables. *)
type flat = {
  ref_ : aref;
  coeffs : float array;  (** per level, in elements; 0 when invariant *)
  nonlinear : bool array;  (** per level: used non-linearly at this level *)
  splits : Affine.t list;  (** per dimension, for the admissible bound *)
}

let flatten ~vars ~layout (r : aref) =
  let strides =
    match List.assoc_opt r.array layout.strides with
    | Some s -> s
    | None -> [||]
  in
  let n = List.length vars in
  let coeffs = Array.make n 0. in
  let nonlinear = Array.make n false in
  let splits =
    List.mapi
      (fun d e ->
        let af = Affine.split ~vars e in
        let stride = if d < Array.length strides then strides.(d) else 1. in
        List.iteri
          (fun k v ->
            let c = Affine.coeff af v in
            if c <> 0 then coeffs.(k) <- coeffs.(k) +. (stride *. float c);
            if List.mem v af.Affine.nonlinear_in then nonlinear.(k) <- true)
          vars;
        af)
      r.index
  in
  { ref_ = r; coeffs; nonlinear; splits }

(* Distinct-line footprint of the subtree below each level, per reference,
   innermost-first recurrence: a level where the reference varies scales
   the inner footprint by its trip count damped by spatial reuse
   (consecutive iterations landing on the same line); an invariant level
   adds nothing. Capped at the whole array. *)
let line_profile ~elem_bytes ~line_bytes ~levels ~layout (f : flat) =
  let n = Array.length f.coeffs in
  let lines = Array.make (n + 1) 1. in
  let cap =
    match List.assoc_opt f.ref_.array layout.total_lines with
    | Some c -> c
    | None -> Float.infinity
  in
  let tests = Array.of_list (List.map (fun l -> l.test) levels) in
  for k = n - 1 downto 0 do
    let v =
      if f.nonlinear.(k) then
        Some line_bytes (* unknown stride: assume a new line per value *)
      else if f.coeffs.(k) <> 0. then
        Some (Float.abs f.coeffs.(k) *. elem_bytes)
      else None
    in
    lines.(k) <-
      (match v with
      | Some stride_bytes ->
        Float.min cap
          (lines.(k + 1)
          *. Float.max 1. (tests.(k) *. Float.min 1. (stride_bytes /. line_bytes))
          )
      | None -> lines.(k + 1))
  done;
  lines

let locality_estimate ~config ~elem_bytes ~params (result : Framework.result) =
  let nest = result.Framework.nest in
  let line_bytes = float config.Itf_machine.Cache.line_bytes in
  let line_elems =
    Float.max 1. (line_bytes /. float (max 1 elem_bytes))
  in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (v, x) -> Hashtbl.replace tbl v (exact (float x))) params;
  let levels = analyze_levels tbl nest.Nest.loops in
  let n = List.length levels in
  let refs = collect_refs nest in
  let layout = make_layout ~params ~line_elems refs in
  let vars = List.map (fun l -> l.var) levels in
  let flats =
    List.map (flatten ~vars ~layout) refs
  in
  let profiles =
    List.map
      (line_profile ~elem_bytes:(float elem_bytes) ~line_bytes ~levels ~layout)
      flats
  in
  (* [fits k]: does the combined footprint of the subtree below level [k]
     comfortably fit? (Half the capacity, to leave headroom for conflict
     misses the set-associative simulator will take.) *)
  let fits =
    Array.init (n + 1) (fun k ->
        let total =
          List.fold_left (fun acc p -> acc +. p.(k)) 0. profiles
        in
        total *. line_bytes <= float config.Itf_machine.Cache.size_bytes /. 2.)
  in
  let tests = Array.of_list (List.map (fun l -> l.test) levels) in
  (* Rank estimate: per reference, the product over levels of a miss
     multiplier — trip count damped by spatial locality where the
     reference varies; re-traversal only re-misses when the inner
     footprint exceeds the cache. Capped at the reference's distinct-line
     footprint times its spilled re-traversals. *)
  let est_of f p =
    let m = ref 1. in
    let retraverse = ref 1. in
    for k = 0 to n - 1 do
      let factor =
        if f.nonlinear.(k) then Float.max 1. tests.(k)
        else if f.coeffs.(k) <> 0. then
          Float.max 1.
            (tests.(k)
            *. Float.min 1.
                 (Float.abs f.coeffs.(k) *. float elem_bytes /. line_bytes))
        else if fits.(k + 1) then 1.
        else begin
          retraverse := !retraverse *. Float.max 1. tests.(k);
          Float.max 1. tests.(k)
        end
      in
      m := !m *. factor
    done;
    (* A guarded reference may never execute: weight it down rather than
       dropping it. *)
    (if f.ref_.guarded then 0.5 else 1.)
    *. Float.min !m (p.(0) *. !retraverse)
  in
  (* An empty level silences the whole body: no accesses, no misses. The
     per-level factors below are clamped to >= 1 (spatial damping must not
     underestimate a non-empty traversal), so emptiness has to short-
     circuit here. *)
  let runs = List.for_all (fun l -> l.test > 0.) levels in
  let est =
    if not runs then 0.
    else List.fold_left2 (fun acc f p -> acc +. est_of f p) 0. flats profiles
  in
  (* Temporal-reuse credit from the mapped dependence vectors: an
     innermost-carried short distance means the same element returns
     while its line is still hot. *)
  let line_dist = int_of_float line_elems in
  let reuse =
    List.exists
      (fun v ->
        let k = Array.length v in
        k = n && k > 0
        && (match v.(k - 1) with
           | Itf_dep.Depvec.Dist d -> d <> 0 && abs d <= line_dist
           | Itf_dep.Depvec.Dir _ -> false)
        && Array.for_all Itf_dep.Depvec.elem_is_zero (Array.sub v 0 (k - 1)))
      result.Framework.vectors
  in
  let est = if reuse then est *. 0.9 else est in
  (* Admissible bound: the simulated cache starts cold, so the run misses
     at least once per distinct line it touches. [dmin] under-approximates
     the elements certainly touched per array: only unguarded references,
     only subscript dimensions that are affine in exactly one loop
     variable with a parameter-only base (a self-written base could
     collide), and zero as soon as any loop may be empty (an empty inner
     loop silences the whole body). Lines never straddle arrays: the
     simulator lays arrays out line-aligned. *)
  let param_names = List.map fst params in
  let tmins = List.map (fun l -> (l.var, l.tmin)) levels in
  let tmin_of v = Option.value ~default:0. (List.assoc_opt v tmins) in
  let all_nonempty = List.for_all (fun l -> l.tmin >= 1.) levels in
  let bound =
    if not all_nonempty then 0.
    else begin
      let per_array = Hashtbl.create 8 in
      List.iter
        (fun f ->
          if not f.ref_.guarded then begin
            let d =
              List.fold_left
                (fun acc (af : Affine.t) ->
                  match af.Affine.coeffs with
                  | [ (v, _) ]
                    when af.Affine.nonlinear_in = []
                         && Expr.arrays af.Affine.base = []
                         && List.for_all
                              (fun fv -> List.mem fv param_names)
                              (Expr.free_vars af.Affine.base) ->
                    Float.max acc (tmin_of v)
                  | _ -> acc)
                1. f.splits
            in
            let prev =
              Option.value ~default:0.
                (Hashtbl.find_opt per_array f.ref_.array)
            in
            Hashtbl.replace per_array f.ref_.array (Float.max prev d)
          end)
        flats;
      (* A line can overlap at most this many elements (exact when
         [elem_bytes] divides the line size, conservative otherwise). *)
      let cap_per_line =
        float
          ((config.Itf_machine.Cache.line_bytes + max 1 elem_bytes - 1)
          / max 1 elem_bytes)
      in
      Hashtbl.fold
        (fun _ d acc -> acc +. Float.ceil (d /. cap_per_line))
        per_array 0.
    end
  in
  let sane x = if Float.is_nan x then 0. else Float.max 0. x in
  let bound = sane bound in
  { score = Float.max (sane est) bound; bound }

(* ------------------------------------------------------------------ *)
(* Parallelism                                                         *)
(* ------------------------------------------------------------------ *)

let parallel_estimate ~procs ~spawn_overhead ~params (result : Framework.result)
    =
  let nest = result.Framework.nest in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (v, x) -> Hashtbl.replace tbl v (exact (float x))) params;
  let levels = analyze_levels tbl nest.Nest.loops in
  let u = float (Itf_machine.Parallel.body_cost nest) in
  (* Estimate: pardo levels divide their trips across processors (plus the
     spawn/join overhead); do levels multiply. *)
  let rec est = function
    | [] -> u
    | l :: rest -> (
      match l.kind with
      | Nest.Do -> l.test *. est rest
      | Nest.Pardo ->
        (Float.ceil (l.test /. float procs) *. est rest)
        +. if l.test > 0. then spawn_overhead else 0.)
  in
  (* Admissible bound: the simulator charges [u] per innermost iteration;
     a [do] level multiplies the subtree time by its trips, and a [pardo]
     level's max-over-processors is at least the fullest round-robin
     bucket (ceil(trips / P)) times the uniform subtree bound. Nested
     pardos therefore each divide by P — dividing total work by P once
     would overclaim. *)
  let rec bnd = function
    | [] -> u
    | l :: rest -> (
      match l.kind with
      | Nest.Do -> l.tmin *. bnd rest
      | Nest.Pardo -> Float.ceil (l.tmin /. float procs) *. bnd rest)
  in
  let sane x = if Float.is_nan x then 0. else Float.max 0. x in
  let bound = sane (bnd levels) in
  { score = Float.max bound (sane (est levels)); bound }

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* Tier-0 estimate memo, shared by every instantiation and persistent
   across searches. The estimator is pure in (spec, nest, vectors), so the
   key is a static spec fingerprint plus the interned nest and vector ids
   — one cheap int-list probe replaces the whole interval-analysis +
   subscript-flattening walk on every re-derived candidate. *)
module EMemo = Itf_mat.Hashcons.Memo (Itf_mat.Hashcons.Ints_key)

let memo_table : estimate EMemo.t = EMemo.create "opt.tier0"

let float_bits x =
  (* Two int halves: OCaml ints are 63-bit, so a single [Int64.to_int]
     would silently drop the sign bit. *)
  let b = Int64.bits_of_float x in
  [ Int64.to_int (Int64.shift_right_logical b 32); Int64.to_int (Int64.logand b 0xFFFFFFFFL) ]

let fingerprint = function
  | Locality { config; elem_bytes; params } ->
    0
    :: config.Itf_machine.Cache.size_bytes
    :: config.Itf_machine.Cache.line_bytes
    :: config.Itf_machine.Cache.assoc :: elem_bytes
    :: List.concat_map
         (fun (v, x) -> [ Itf_ir.Intern.str_id v; x ])
         params
  | Parallel { procs; spawn_overhead; params } ->
    (1 :: procs :: float_bits spawn_overhead)
    @ List.concat_map (fun (v, x) -> [ Itf_ir.Intern.str_id v; x ]) params

let make ?(memo = true) spec : Framework.result -> estimate =
  let base result =
    match
      match spec with
      | Locality { config; elem_bytes; params } ->
        locality_estimate ~config ~elem_bytes ~params result
      | Parallel { procs; spawn_overhead; params } ->
        parallel_estimate ~procs ~spawn_overhead ~params result
    with
    | e -> e
    | exception _ ->
      (* Unanalyzable: claim nothing (bound 0) and rank first so the exact
         tier decides. *)
      { score = 0.; bound = 0. }
  in
  if not memo then base
  else
    let fp = fingerprint spec in
    fun result ->
      let nid = Framework.nest_id result in
      let key =
        fp
        @ (nid :: List.map Itf_dep.Depvec.id result.Framework.vectors)
      in
      EMemo.find_or_add memo_table key (fun () -> base result)
