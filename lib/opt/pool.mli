(** A small fixed-size domain pool (OCaml 5 [Domain]s, standard library
    only) used by {!Engine} to fan candidate evaluation out across cores.

    [map] preserves input order — [output.(i)] is always [f input.(i)] —
    so callers can merge results deterministically regardless of domain
    scheduling. *)

type t

val create : int -> t
(** [create w] spawns [w] worker domains ([w = 0] gives a sequential pool
    that runs everything on the calling thread). *)

val size : t -> int
(** Number of worker domains (excluding the calling thread, which also
    participates in [map]). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map; blocks until every element is done. The
    calling thread works alongside the pool, so parallelism is [size + 1].
    If [f] raises on any element, the first such exception (in index order)
    is re-raised after all elements finish. *)

val shutdown : t -> unit
(** Terminate and join the worker domains. The pool must not be used
    afterwards. *)
