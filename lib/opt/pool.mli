(** A small fixed-size domain pool (OCaml 5 [Domain]s, standard library
    only) used by {!Engine} to fan candidate evaluation out across cores.

    [map] preserves input order — [output.(i)] is always [f input.(i)] —
    so callers can merge results deterministically regardless of domain
    scheduling. *)

type t

val create : int -> t
(** [create w] spawns [w] worker domains ([w = 0] gives a sequential pool
    that runs everything on the calling thread). *)

val shared : workers:int -> unit -> t
(** The process-wide persistent pool, created on first use and reused
    across searches (domain spawn costs rival a whole small search). Grows
    to at least [workers] worker domains, never shrinks, and is shut down
    at process exit. Do not call {!shutdown} on it. *)

val size : t -> int
(** Number of worker domains (excluding the calling thread, which also
    participates in [map]). *)

val default_threshold : int
(** Default work threshold of {!map_auto}: batches smaller than this run
    on the calling thread. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map; blocks until every element is done. The
    calling thread works alongside the pool, so parallelism is [size + 1].
    Indices are claimed in chunks of [chunk] (default: size-adaptive, about
    four chunks per participant). If [f] raises on any element, the first
    such exception (in index order) is re-raised after all elements
    finish. *)

val submit : t -> (unit -> unit) -> unit
(** [submit t job] enqueues one fire-and-forget job for a worker domain.
    Returns immediately; the caller owns completion signalling. The pool
    must have at least one worker ([size t >= 1]) or the job never runs.
    [job] must not raise — an escaping exception kills the worker domain.
    Used by the serve scheduler to run requests on the shared pool. *)

val map_auto : ?threshold:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** As {!map}, but batches smaller than [threshold] (default
    {!default_threshold}) run sequentially on the calling thread — the
    fan-out rendezvous costs more than it buys on small steps. *)

val shutdown : t -> unit
(** Terminate and join the worker domains. The pool must not be used
    afterwards. *)
