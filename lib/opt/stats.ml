type t = {
  nodes_explored : int;
  duplicates_pruned : int;
  legality_cache_hits : int;
  score_cache_hits : int;
  illegal : int;
  template_applications : int;
  template_applications_saved : int;
  objective_evaluations : int;
  domains : int;
  expand_time_s : float;
  evaluate_time_s : float;
  merge_time_s : float;
  total_time_s : float;
}

let zero =
  {
    nodes_explored = 0;
    duplicates_pruned = 0;
    legality_cache_hits = 0;
    score_cache_hits = 0;
    illegal = 0;
    template_applications = 0;
    template_applications_saved = 0;
    objective_evaluations = 0;
    domains = 1;
    expand_time_s = 0.;
    evaluate_time_s = 0.;
    merge_time_s = 0.;
    total_time_s = 0.;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>nodes explored        %d@,\
     duplicates pruned     %d@,\
     legality cache hits   %d@,\
     score cache hits      %d@,\
     illegal candidates    %d@,\
     template applications %d (saved %d vs from-root replay)@,\
     objective evaluations %d@,\
     domains               %d@,\
     time: expand %.3fs, evaluate %.3fs, merge %.3fs, total %.3fs@]"
    s.nodes_explored s.duplicates_pruned s.legality_cache_hits
    s.score_cache_hits s.illegal s.template_applications
    s.template_applications_saved s.objective_evaluations s.domains
    s.expand_time_s s.evaluate_time_s s.merge_time_s s.total_time_s

let to_json s =
  Printf.sprintf
    "{\"nodes_explored\": %d, \"duplicates_pruned\": %d, \
     \"legality_cache_hits\": %d, \"score_cache_hits\": %d, \"illegal\": %d, \
     \"template_applications\": %d, \"template_applications_saved\": %d, \
     \"objective_evaluations\": %d, \"domains\": %d, \"expand_time_s\": %.6f, \
     \"evaluate_time_s\": %.6f, \"merge_time_s\": %.6f, \"total_time_s\": \
     %.6f}"
    s.nodes_explored s.duplicates_pruned s.legality_cache_hits
    s.score_cache_hits s.illegal s.template_applications
    s.template_applications_saved s.objective_evaluations s.domains
    s.expand_time_s s.evaluate_time_s s.merge_time_s s.total_time_s
