(* One search's statistics. The record is immutable and built per search
   from the engine's search context (engine.ml, [sctx]) — there is no
   shared mutable state here, so concurrent searches cannot corrupt each
   other's stats. [record] publishes into the metrics registry with
   atomic, commutative instrument updates only, so concurrent recording
   from several serve workers yields exact totals. *)
type t = {
  nodes_explored : int;
  duplicates_pruned : int;
  legality_cache_hits : int;
  score_cache_hits : int;
  illegal : int;
  template_applications : int;
  template_applications_saved : int;
  objective_evaluations : int;
  tier0_evaluations : int;
  tier0_pruned : int;
  domains : int;
  work_threshold : int;
  expand_time_s : float;
  evaluate_time_s : float;
  legality_time_s : float;
  tier0_time_s : float;
  exact_time_s : float;
  merge_time_s : float;
  total_time_s : float;
}

let zero =
  {
    nodes_explored = 0;
    duplicates_pruned = 0;
    legality_cache_hits = 0;
    score_cache_hits = 0;
    illegal = 0;
    template_applications = 0;
    template_applications_saved = 0;
    objective_evaluations = 0;
    tier0_evaluations = 0;
    tier0_pruned = 0;
    domains = 1;
    work_threshold = 0;
    expand_time_s = 0.;
    evaluate_time_s = 0.;
    legality_time_s = 0.;
    tier0_time_s = 0.;
    exact_time_s = 0.;
    merge_time_s = 0.;
    total_time_s = 0.;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>nodes explored        %d@,\
     duplicates pruned     %d@,\
     legality cache hits   %d@,\
     score cache hits      %d@,\
     illegal candidates    %d@,\
     template applications %d (saved %d vs from-root replay)@,\
     objective evaluations %d@,\
     tier-0 evaluations    %d (pruned %d candidates before the exact tier)@,\
     domains               %d (sequential below %d candidates/step)@,\
     time: expand %.3fs, evaluate %.3fs (legality %.3fs, tier-0 %.3fs, \
     exact %.3fs), merge %.3fs, total %.3fs@]"
    s.nodes_explored s.duplicates_pruned s.legality_cache_hits
    s.score_cache_hits s.illegal s.template_applications
    s.template_applications_saved s.objective_evaluations s.tier0_evaluations
    s.tier0_pruned s.domains s.work_threshold s.expand_time_s s.evaluate_time_s
    s.legality_time_s s.tier0_time_s s.exact_time_s s.merge_time_s
    s.total_time_s

let to_json_value s =
  Itf_obs.Json.Obj
    [
      ("nodes_explored", Itf_obs.Json.Int s.nodes_explored);
      ("duplicates_pruned", Itf_obs.Json.Int s.duplicates_pruned);
      ("legality_cache_hits", Itf_obs.Json.Int s.legality_cache_hits);
      ("score_cache_hits", Itf_obs.Json.Int s.score_cache_hits);
      ("illegal", Itf_obs.Json.Int s.illegal);
      ("template_applications", Itf_obs.Json.Int s.template_applications);
      ( "template_applications_saved",
        Itf_obs.Json.Int s.template_applications_saved );
      ("objective_evaluations", Itf_obs.Json.Int s.objective_evaluations);
      ("tier0_evaluations", Itf_obs.Json.Int s.tier0_evaluations);
      ("tier0_pruned", Itf_obs.Json.Int s.tier0_pruned);
      ("domains", Itf_obs.Json.Int s.domains);
      ("work_threshold", Itf_obs.Json.Int s.work_threshold);
      ("expand_time_s", Itf_obs.Json.Float s.expand_time_s);
      ("evaluate_time_s", Itf_obs.Json.Float s.evaluate_time_s);
      ("legality_time_s", Itf_obs.Json.Float s.legality_time_s);
      ("tier0_time_s", Itf_obs.Json.Float s.tier0_time_s);
      ("exact_time_s", Itf_obs.Json.Float s.exact_time_s);
      ("merge_time_s", Itf_obs.Json.Float s.merge_time_s);
      ("total_time_s", Itf_obs.Json.Float s.total_time_s);
    ]

let to_json s = Itf_obs.Json.to_string (to_json_value s)

let record metrics s =
  let c name v = Itf_obs.Metrics.add (Itf_obs.Metrics.counter metrics name) v in
  c "engine.nodes_explored" s.nodes_explored;
  c "engine.duplicates_pruned" s.duplicates_pruned;
  c "engine.cache.hit" (s.legality_cache_hits + s.score_cache_hits);
  c "engine.legality_cache_hits" s.legality_cache_hits;
  c "engine.score_cache_hits" s.score_cache_hits;
  c "engine.illegal" s.illegal;
  c "engine.template_applications" s.template_applications;
  c "engine.template_applications_saved" s.template_applications_saved;
  c "engine.objective_evaluations" s.objective_evaluations;
  c "objective.exact_evals" s.objective_evaluations;
  c "objective.tier0_evals" s.tier0_evaluations;
  c "objective.tier0_pruned" s.tier0_pruned;
  Itf_obs.Metrics.set
    (Itf_obs.Metrics.gauge metrics "engine.domains")
    (float_of_int s.domains);
  Itf_obs.Metrics.set
    (Itf_obs.Metrics.gauge metrics "engine.work_threshold")
    (float_of_int s.work_threshold);
  Itf_obs.Metrics.observe
    (Itf_obs.Metrics.histogram metrics
       ~buckets:Itf_obs.Metrics.duration_buckets "engine.total_time_ms")
    (s.total_time_s *. 1e3);
  (* One observation per phase per search, in microseconds on the shared
     log-linear layout: histogram sums give the aggregate per-phase time
     breakdown, quantiles its per-search distribution — available even
     when tracing is disabled or the request was sampled out. *)
  let phase name v_s =
    Itf_obs.Metrics.observe
      (Itf_obs.Metrics.histogram metrics
         ~labels:[ ("phase", name) ]
         ~buckets:Itf_obs.Metrics.duration_buckets "engine.phase_us")
      (v_s *. 1e6)
  in
  phase "expand" s.expand_time_s;
  phase "legality" s.legality_time_s;
  phase "tier0" s.tier0_time_s;
  phase "exact" s.exact_time_s;
  phase "merge" s.merge_time_s
