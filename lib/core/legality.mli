(** The single uniform legality test (paper Sections 2-4).

    [IsLegal(T, N)] holds iff

    + {b dependence-vector test} — mapping the nest's dependence vectors
      through every template of [T] yields a set with no lexicographically
      negative tuple. Intermediate stages need {e not} be legal, only the
      final set (paper Section 3.2);
    + {b loop-bounds test} — every template's bound preconditions hold at
      its stage (paper Section 4.1). Unlike the dependence test, this is
      checked per stage.

    The per-stage nests (needed to evaluate stage preconditions) are
    produced by {!Codegen}; each stage's preconditions are verified before
    its code is generated, so code generation never runs on a nest that
    violates them. *)

type stage = {
  index : int;  (** 0-based position in the sequence *)
  template : Template.t;
  nest_before : Itf_ir.Nest.t;
  vectors_before : Itf_dep.Depvec.t list;
}

type verdict =
  | Legal of {
      nest : Itf_ir.Nest.t;  (** final transformed nest *)
      vectors : Itf_dep.Depvec.t list;  (** final dependence-vector set *)
      stages : stage list;  (** per-stage intermediate states *)
    }
  | Bounds_violation of { index : int; violations : Boundsmap.violation list }
  | Dependence_violation of {
      vector : Itf_dep.Depvec.t;
          (** a final vector admitting a lex-negative tuple *)
    }

val check :
  ?count:int ref ->
  ?vectors:Itf_dep.Depvec.t list ->
  Itf_ir.Nest.t ->
  Sequence.t ->
  verdict
(** [check nest seq] — [vectors] defaults to {!Itf_dep.Analysis.vectors}
    on the nest. [count], when given, is incremented once per template
    stage application attempted (including reduced-sequence retries) —
    the instrumentation used to compare search engines.
    @raise Invalid_argument if [seq] does not chain with the nest's
    depth. *)

val is_legal : ?vectors:Itf_dep.Depvec.t list -> Itf_ir.Nest.t -> Sequence.t -> bool

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Decision provenance}

    A rejection {!reason} is the structured form of a non-[Legal] verdict —
    the part an observability layer records and a user-facing [--explain]
    table prints. Bounds rejections reuse {!Boundsmap.reason} verbatim;
    the dependence test contributes its own constructor carrying the
    offending vector. *)

type reason =
  | Precondition of { index : int; violation : Boundsmap.violation }
      (** A per-stage bounds/codegen precondition failed at sequence
          position [index]. *)
  | Lex_negative of { vector : Itf_dep.Depvec.t }
      (** The final mapped vector set admits a lexicographically negative
          tuple (paper Section 3.2's test fails). *)

val reasons : verdict -> reason list
(** [[]] iff the verdict is [Legal]. *)

val reason_label : reason -> string
(** Stable low-cardinality slug for metric labels: delegates to
    {!Boundsmap.reason_label} for preconditions, ["lex-negative"] for the
    dependence test. *)

val pp_reason : Format.formatter -> reason -> unit

(** {1 Resumable prefix states}

    Search engines grow candidate sequences one template at a time. A
    [state] carries the transformed nest, mapped dependence vectors and
    per-stage records of an already-checked prefix, so appending a template
    costs {e one} template application instead of replaying the whole
    prefix from the root (the transformation/nest separation of paper
    Section 5 makes the prefix state self-contained). *)

type state

val start : ?vectors:Itf_dep.Depvec.t list -> Itf_ir.Nest.t -> state
(** The empty-prefix state; [vectors] defaults to
    {!Itf_dep.Analysis.vectors} on the nest. *)

val extend :
  ?count:int ref -> state -> Template.t -> (state, verdict) Stdlib.result
(** [extend st t] appends one template: checks [t]'s bounds preconditions
    against the prefix nest, generates its code and maps the dependence
    vectors. Agrees with [check root (prefix @ [t])] up to the final
    dependence test (deferred to {!state_verdict}, since intermediate
    vector sets need not be legal — paper Section 3.2), including the
    reduced-sequence fallback on a bounds violation.
    @raise Invalid_argument if [t] does not chain with the state's depth. *)

val state_verdict : state -> verdict
(** Final dependence-vector test of the prefix; [Legal] carries the same
    nest/vectors/stages [check] would return for it. *)

val state_nest : state -> Itf_ir.Nest.t
val state_vectors : state -> Itf_dep.Depvec.t list
val state_sequence : state -> Sequence.t
