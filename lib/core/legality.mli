(** The single uniform legality test (paper Sections 2-4).

    [IsLegal(T, N)] holds iff

    + {b dependence-vector test} — mapping the nest's dependence vectors
      through every template of [T] yields a set with no lexicographically
      negative tuple. Intermediate stages need {e not} be legal, only the
      final set (paper Section 3.2);
    + {b loop-bounds test} — every template's bound preconditions hold at
      its stage (paper Section 4.1). Unlike the dependence test, this is
      checked per stage.

    The per-stage nests (needed to evaluate stage preconditions) are
    produced by {!Codegen}; each stage's preconditions are verified before
    its code is generated, so code generation never runs on a nest that
    violates them. *)

type stage = {
  index : int;  (** 0-based position in the sequence *)
  template : Template.t;
  nest_before : Itf_ir.Nest.t;
  vectors_before : Itf_dep.Depvec.t list;
}

type verdict =
  | Legal of {
      nest : Itf_ir.Nest.t;  (** final transformed nest *)
      vectors : Itf_dep.Depvec.t list;  (** final dependence-vector set *)
      stages : stage list;  (** per-stage intermediate states *)
    }
  | Bounds_violation of { index : int; violations : Boundsmap.violation list }
  | Dependence_violation of {
      vector : Itf_dep.Depvec.t;
          (** a final vector admitting a lex-negative tuple *)
    }

val check : ?vectors:Itf_dep.Depvec.t list -> Itf_ir.Nest.t -> Sequence.t -> verdict
(** [check nest seq] — [vectors] defaults to {!Itf_dep.Analysis.vectors}
    on the nest. @raise Invalid_argument if [seq] does not chain with the
    nest's depth. *)

val is_legal : ?vectors:Itf_dep.Depvec.t list -> Itf_ir.Nest.t -> Sequence.t -> bool

val pp_verdict : Format.formatter -> verdict -> unit
