(** The sequence representation of iteration-reordering transformations
    (paper Section 2).

    A transformation is a list of template instantiations, applied left to
    right. Composition of transformations is sequence concatenation; for
    efficiency the concatenation is reduced by composing adjacent compatible
    instantiations into one (paper Section 2, item 2):

    - [Unimodular M1] then [Unimodular M2] becomes [Unimodular (M2 * M1)];
    - adjacent [Reverse_permute]s compose their permutations and fold their
      reversal masks;
    - adjacent [Parallelize]s take the union of their flags;
    - an identity instantiation (identity matrix / identity permutation with
      no reversals / all-false flags) is dropped. *)

type t = Template.t list

val well_formed : t -> bool
(** Depths chain: each template's input depth equals the previous one's
    output depth. The empty sequence is well-formed. *)

val output_depth : input:int -> t -> int
(** Nest depth after applying the sequence to an [input]-deep nest.
    @raise Invalid_argument if the sequence does not chain from [input]. *)

val compose : t -> t -> t
(** [compose t u] is "first [t], then [u]" — concatenation plus reduction
    at the seam. *)

val reduce : t -> t
(** Fixpoint of the adjacent-composition rules over the whole sequence. *)

val is_identity : Template.t -> bool

val compare : t -> t -> int
(** Lexicographic over {!Template.compare}; a total order usable as a
    deterministic tie-break. *)

val equal : t -> t -> bool

val hash : t -> int
(** Structural hash compatible with [equal]. Search engines key their memo
    tables on the {e canonical} ([reduce]d) sequence, under which distinct
    spellings of the same transformation (e.g. interchange twice = identity)
    collide as intended. *)

val intern : t -> t
(** Canonical physically-shared sequence of interned templates (see
    {!Itf_mat.Hashcons}). *)

val intern_id : t -> t * int
(** {!intern} plus the dense intern id: equal ids = equal sequences, an
    O(1) stand-in for structural equality (NOT for the {!compare} order —
    ids follow intern order). *)

val id : t -> int

val reduce_memo : t -> t * int
(** [reduce_memo seq] = the interned [reduce seq] plus its id, memoized by
    [seq]'s own id — the O(1)-amortized form of the search engines'
    canonicalize-then-key-the-cache step. Domain-safe. *)

val pp : Format.formatter -> t -> unit
