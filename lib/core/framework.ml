type result = {
  nest : Itf_ir.Nest.t;
  vectors : Itf_dep.Depvec.t list;
  stages : Legality.stage list;
  mutable interned : int;
}

exception Illegal of Legality.verdict

let apply ?count ?vectors nest seq =
  match Legality.check ?count ?vectors nest seq with
  | Legality.Legal { nest; vectors; stages } ->
    Ok { nest; vectors; stages; interned = -1 }
  | verdict -> Error verdict

let apply_exn ?vectors nest seq =
  match apply ?vectors nest seq with
  | Ok r -> r
  | Error verdict -> raise (Illegal verdict)

(* Both writers race only with writers of the same deterministic value
   (interning is canonical), so the unsynchronized cache is benign. *)
let nest_id r =
  if r.interned >= 0 then r.interned
  else begin
    let id = Itf_ir.Intern.nest_id r.nest in
    r.interned <- id;
    id
  end

let map_vectors seq vectors =
  List.fold_left (fun vs t -> Depmap.map_set t vs) vectors seq

(* Incremental interface: a state is an already-checked sequence prefix;
   extending appends one template in O(1) template applications. *)

type state = Legality.state

let start = Legality.start

let extend = Legality.extend

let finish state =
  match Legality.state_verdict state with
  | Legality.Legal { nest; vectors; stages } ->
    Ok { nest; vectors; stages; interned = -1 }
  | verdict -> Error verdict
