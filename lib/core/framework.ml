type result = {
  nest : Itf_ir.Nest.t;
  vectors : Itf_dep.Depvec.t list;
  stages : Legality.stage list;
  interned : int Atomic.t;
}

exception Illegal of Legality.verdict

let apply ?count ?vectors nest seq =
  match Legality.check ?count ?vectors nest seq with
  | Legality.Legal { nest; vectors; stages } ->
    Ok { nest; vectors; stages; interned = Atomic.make (-1) }
  | verdict -> Error verdict

let apply_exn ?vectors nest seq =
  match apply ?vectors nest seq with
  | Ok r -> r
  | Error verdict -> raise (Illegal verdict)

(* Publish order: the nest is fully interned (all its subterms are in the
   shared tables) before the id is stored, and the [Atomic.set] is a
   release — so any thread whose [Atomic.get] observes [id >= 0] also
   observes the completed interning it names. Racing first callers both
   intern (idempotent — interning is canonical, both compute the same id)
   and both stores write the same value, so last-write-wins is exact, not
   merely benign. *)
let nest_id r =
  let id = Atomic.get r.interned in
  if id >= 0 then id
  else begin
    let id = Itf_ir.Intern.nest_id r.nest in
    Atomic.set r.interned id;
    id
  end

let map_vectors seq vectors =
  List.fold_left (fun vs t -> Depmap.map_set t vs) vectors seq

(* Incremental interface: a state is an already-checked sequence prefix;
   extending appends one template in O(1) template applications. *)

type state = Legality.state

let start = Legality.start

let extend = Legality.extend

let finish state =
  match Legality.state_verdict state with
  | Legality.Legal { nest; vectors; stages } ->
    Ok { nest; vectors; stages; interned = Atomic.make (-1) }
  | verdict -> Error verdict
