(** The kernel set of transformation templates (paper Table 1).

    A {e transformation template} has parameters; supplying values creates a
    {e template instantiation}. An iteration-reordering transformation is a
    sequence of instantiations (see {!Sequence}). Loop positions here are
    {b 0-based} (the paper is 1-based): position 0 is the outermost loop.

    Every template knows its input nest size [n] and its output nest size:
    [Block] and [Interleave] grow the nest by the width of their loop range,
    [Coalesce] shrinks it to a single loop for the range, and the others
    preserve it. *)

open Itf_ir

type t =
  | Unimodular of { n : int; m : Itf_mat.Intmat.t }
      (** [m] is an [n x n] unimodular matrix mapping iteration vectors
          [y = m x]. *)
  | Reverse_permute of { n : int; rev : bool array; perm : int array }
      (** [rev.(k)]: reverse loop [k] first; [perm.(k)]: then move loop [k]
          to position [perm.(k)]. *)
  | Parallelize of { n : int; parflag : bool array }
      (** [parflag.(k)]: make loop [k] a [pardo]. *)
  | Block of { n : int; i : int; j : int; bsize : Expr.t array }
      (** Tile contiguous loops [i..j] (inclusive); [bsize.(k - i)] is the
          block-size expression for loop [k]. *)
  | Coalesce of { n : int; i : int; j : int }
      (** Collapse contiguous loops [i..j] into a single loop. *)
  | Interleave of { n : int; i : int; j : int; isize : Expr.t array }
      (** Interleave contiguous loops [i..j]; [isize.(k - i)] is the
          interleave factor for loop [k]. *)

(** {1 Validated constructors}

    Each raises [Invalid_argument] on malformed parameters (wrong
    dimensions, non-unimodular matrix, non-permutation, empty or out-of-
    range loop ranges). *)

val unimodular : Itf_mat.Intmat.t -> t
val reverse_permute : rev:bool array -> perm:int array -> t
val parallelize : bool array -> t
val block : n:int -> i:int -> j:int -> bsize:Expr.t array -> t
val coalesce : n:int -> i:int -> j:int -> t
val interleave : n:int -> i:int -> j:int -> isize:Expr.t array -> t

(** {1 Convenience instantiations} *)

val interchange : n:int -> int -> int -> t
(** Swap two loops (a [Reverse_permute]). *)

val reversal : n:int -> int -> t
(** Reverse one loop (a [Reverse_permute]). *)

val skew : n:int -> src:int -> dst:int -> factor:int -> t
(** Skew loop [dst] by [factor * x_src] (a [Unimodular]). *)

val parallelize_one : n:int -> int -> t

(** {1 Shape} *)

val input_depth : t -> int
val output_depth : t -> int

val to_matrix : t -> Itf_mat.Intmat.t option
(** The transformation matrix of a matrix-representable instantiation:
    [Unimodular]'s own matrix, or a [Reverse_permute]'s signed permutation
    (a reversed loop's iteration order equals the unimodular reversal's).
    [None] for the non-matrix templates — [Parallelize], [Block],
    [Coalesce], [Interleave] (paper Section 1). *)

(** {1 Identity} *)

val compare : t -> t -> int
(** Explicit structural total order (no polymorphic compare: [Intmat.t] is
    abstract and expressions are compared via {!Itf_ir.Expr.compare}). *)

val equal : t -> t -> bool

val hash : t -> int
(** Structural hash compatible with [equal]. *)

val intern : t -> t
(** Canonical physically-shared instantiation (matrix and block/interleave
    size expressions interned too); see {!Itf_mat.Hashcons}. *)

val intern_id : t -> t * int
(** {!intern} plus the dense intern id. Equal ids = equal templates; ids
    are not an ordering. *)

val intern_ids : t list -> (t * int) list

val name : t -> string
val pp : Format.formatter -> t -> unit
