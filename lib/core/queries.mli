(** Dependence-based queries a transformation selector needs.

    These are thin, well-defined views over the dependence-vector set that
    the framework's clients (the optimizer, a vectorizer, a tiling planner)
    ask constantly. They connect the framework to the classical notions of
    the related work the paper discusses: Allen-Kennedy's loop-carried
    dependence {e level} and Wolf-Lam's fully-permutable loop bands. *)

val carried_level : Itf_dep.Depvec.t -> int option
(** The level (0-based loop position) that {e must} carry the dependence:
    the first component whose every denoted value is positive, provided all
    earlier components are exactly zero. [None] when the vector admits the
    all-zero tuple or its leading sign is not definite (summary values) —
    callers must then treat every level as possibly carrying it. *)

val may_be_carried_by : Itf_dep.Depvec.t -> int -> bool
(** Could some tuple of the vector have its first nonzero (positive)
    component at the given level? *)

val parallelizable : Itf_dep.Depvec.t list -> int -> bool
(** Is [Parallelize] of the given loop legal for this dependence set —
    i.e. is no dependence carried by that loop? (Exactly the verdict
    {!Legality} would reach for a single [Parallelize] instantiation;
    exposed directly because selectors ask it for every loop.) *)

val parallelizable_loops : depth:int -> Itf_dep.Depvec.t list -> int list

val vectorizable_innermost : depth:int -> Itf_dep.Depvec.t list -> bool
(** Can the innermost loop run in lockstep (no dependence carried by it)?
    The paper's vector-execution motivation reduces to this test. *)

val fully_permutable : depth:int -> Itf_dep.Depvec.t list -> i:int -> j:int -> bool
(** Is the contiguous band [i..j] fully permutable — every dependence
    either carried outside the band or componentwise non-negative inside
    it? A fully permutable band admits any permutation and any blocking of
    its loops (the Wolf-Lam tiling condition). *)

val serial_fraction : depth:int -> Itf_dep.Depvec.t list -> int
(** Number of loops that cannot be parallelized as-is (a crude objective
    for the optimizer). *)
