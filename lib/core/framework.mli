(** Top-level API of the iteration-reordering transformation framework.

    Typical use:

    {[
      let nest = ... (* a perfect loop nest, Itf_ir.Nest.t *) in
      let seq =
        [ Template.skew ~n:2 ~src:0 ~dst:1 ~factor:1;
          Template.interchange ~n:2 0 1 ]
      in
      match Framework.apply nest seq with
      | Ok { nest = transformed; vectors; _ } -> ...
      | Error verdict -> ...
    ]}

    Transformations are values, independent of any loop nest (paper
    Section 5): they can be built, composed with {!Sequence.compose},
    compared for legality against many nests, and only turned into code
    when a winner is chosen. *)

type result = {
  nest : Itf_ir.Nest.t;  (** the transformed nest, inits included *)
  vectors : Itf_dep.Depvec.t list;  (** its dependence vectors, by mapping *)
  stages : Legality.stage list;  (** intermediate states, for inspection *)
  interned : int Atomic.t;
      (** cached {!Itf_ir.Intern.nest_id} of [nest]; [-1] until first
          {!nest_id} call. Managed by {!nest_id} — do not write. Atomic
          so the publish order is explicit under concurrent serve
          workers: the nest is interned before the id is stored, and all
          racing writers store the same canonical id. *)
}

val apply :
  ?count:int ref ->
  ?vectors:Itf_dep.Depvec.t list ->
  Itf_ir.Nest.t ->
  Sequence.t ->
  (result, Legality.verdict) Stdlib.result
(** Check legality and generate code. [vectors] overrides the dependence
    analyzer (used for nests whose dependences are known externally, e.g.
    paper Figure 2's examples). [count] accumulates template stage
    applications performed (see {!Legality.check}). [Error] carries the
    failing verdict. *)

val apply_exn :
  ?vectors:Itf_dep.Depvec.t list -> Itf_ir.Nest.t -> Sequence.t -> result
(** @raise Illegal on an illegal sequence. *)

exception Illegal of Legality.verdict

val nest_id : result -> int
(** {!Itf_ir.Intern.nest_id} of the transformed nest, computed once per
    result and cached in [interned] — memoized objectives and the tier-0
    estimator both probe the same result, and the intern walk would
    otherwise dominate each warm probe. Safe to call from any domain: the
    cache is an [Atomic], racing first callers compute the same canonical
    id, and the release store orders the interning before the id's
    publication. *)

val map_vectors : Sequence.t -> Itf_dep.Depvec.t list -> Itf_dep.Depvec.t list
(** Dependence-vector image of a whole sequence (no bounds checks). *)

(** {1 Incremental application}

    The search engine's hot path: a {!state} is a legality-checked sequence
    prefix; {!extend} appends one template without replaying the prefix.
    [apply nest (seq @ [t])] and [start nest |> extend ... |> finish] agree
    (see {!Legality.extend} for the exact contract). *)

type state = Legality.state

val start : ?vectors:Itf_dep.Depvec.t list -> Itf_ir.Nest.t -> state

val extend :
  ?count:int ref -> state -> Template.t -> (state, Legality.verdict) Stdlib.result
(** [count], when given, accumulates template stage applications performed
    (instrumentation). *)

val finish : state -> (result, Legality.verdict) Stdlib.result
(** Run the final dependence test and package the prefix as a {!result}. *)
