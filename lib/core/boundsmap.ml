module Bmat = Itf_bounds.Bmat
module Btype = Itf_bounds.Btype

type reason =
  | Depth_mismatch of { expected : int; actual : int }
  | Bound_type_exceeds of {
      which : Bmat.which;
      loop : int;
      wrt : int;
      var : string;
      ty : Btype.t;
      limit : Btype.t;
    }
  | Non_constant_step of { loop : int }
  | Codegen_rejected of { message : string }
  | Unbounded_space of { direction : string }

type violation = { template : string; reason : reason }

let which_name = function Bmat.L -> "lower" | Bmat.U -> "upper" | Bmat.S -> "step"

let message v =
  match v.reason with
  | Depth_mismatch { expected; actual } ->
    Printf.sprintf "template expects a %d-deep nest but the nest is %d deep"
      expected actual
  | Bound_type_exceeds { which; loop; var; ty; limit; _ } ->
    Format.asprintf "type(%s bound of loop %d, %s) = %a but must be <= %a"
      (which_name which) loop var Btype.pp ty Btype.pp limit
  | Non_constant_step { loop } ->
    Printf.sprintf "step of loop %d is not a compile-time constant" loop
  | Codegen_rejected { message } -> "code generation rejected the nest: " ^ message
  | Unbounded_space { direction } ->
    "transformed iteration space unbounded in " ^ direction

let reason_label = function
  | Depth_mismatch _ -> "depth-mismatch"
  | Bound_type_exceeds _ -> "bound-type"
  | Non_constant_step _ -> "non-constant-step"
  | Codegen_rejected _ -> "codegen-rejected"
  | Unbounded_space _ -> "unbounded"

(* Require type(bound_m, x_k) <= limit for the given bounds of loops in
   [loops] with respect to variables of loops in [wrts] (positions). *)
let require bm template limit whichs ~loops ~wrts =
  List.concat_map
    (fun m ->
      List.concat_map
        (fun k ->
          if k >= m then []
          else
            List.filter_map
              (fun w ->
                let ty = Bmat.btype bm w ~loop:m ~wrt:k in
                if Btype.leq ty limit then None
                else
                  Some
                    {
                      template;
                      reason =
                        Bound_type_exceeds
                          {
                            which = w;
                            loop = m;
                            wrt = k;
                            var = bm.Bmat.vars.(k);
                            ty;
                            limit;
                          };
                    })
              whichs)
        wrts)
    loops

(* Steps must be compile-time constants: type(s_m, -) = const overall. *)
let require_const_steps bm template loops =
  List.filter_map
    (fun m ->
      match Itf_ir.Expr.to_int (Bmat.step_expr bm m) with
      | Some _ -> None
      | None -> Some { template; reason = Non_constant_step { loop = m } })
    loops

let range a b = List.init (max 0 (b - a + 1)) (fun k -> a + k)

let check bm (t : Template.t) =
  let n = Bmat.depth bm in
  if Template.input_depth t <> n then
    [
      {
        template = Template.name t;
        reason =
          Depth_mismatch { expected = Template.input_depth t; actual = n };
      };
    ]
  else
    let name = Template.name t in
    match t with
    | Template.Unimodular _ ->
      require bm name Btype.Linear [ Bmat.L; Bmat.U ] ~loops:(range 0 (n - 1))
        ~wrts:(range 0 (n - 1))
      @ require_const_steps bm name (range 0 (n - 1))
    | Template.Reverse_permute { perm; _ } ->
      (* Invariance is only required where the permutation swaps the
         relative order of two loops (Table 3: forall i < j such that
         perm[i] > perm[j]); this is what admits Figure 4(c)'s nest, whose
         innermost bounds are nonlinear in j but invariant in i. Steps may
         be arbitrary invariant expressions. *)
      List.concat_map
        (fun m ->
          List.concat_map
            (fun k ->
              if k < m && perm.(k) > perm.(m) then
                require bm name Btype.Invar [ Bmat.L; Bmat.U; Bmat.S ]
                  ~loops:[ m ] ~wrts:[ k ]
              else [])
            (range 0 (n - 1)))
        (range 0 (n - 1))
    | Template.Parallelize _ -> []
    | Template.Block { i; j; _ } ->
      require bm name Btype.Linear [ Bmat.L; Bmat.U ] ~loops:(range i j)
        ~wrts:(range i j)
      @ require_const_steps bm name (range i j)
    | Template.Coalesce { i; j; _ } ->
      require bm name Btype.Invar [ Bmat.L; Bmat.U; Bmat.S ] ~loops:(range i j)
        ~wrts:(range i j)
    | Template.Interleave { i; j; _ } ->
      require bm name Btype.Linear [ Bmat.L; Bmat.U ] ~loops:(range i j)
        ~wrts:(range i j)
      @ require_const_steps bm name (range i j)

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.template (message v)
