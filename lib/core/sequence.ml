module Intmat = Itf_mat.Intmat

type t = Template.t list

let rec well_formed = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) ->
    Template.output_depth a = Template.input_depth b && well_formed rest

let output_depth ~input seq =
  List.fold_left
    (fun d t ->
      if Template.input_depth t <> d then
        invalid_arg "Sequence.output_depth: sequence does not chain"
      else Template.output_depth t)
    input seq

let is_identity (t : Template.t) =
  match t with
  | Template.Unimodular { n; m } -> Intmat.equal m (Intmat.identity n)
  | Template.Reverse_permute { rev; perm; _ } ->
    Array.for_all not rev && Array.for_all2 ( = ) perm (Array.init (Array.length perm) Fun.id)
  | Template.Parallelize { parflag; _ } -> Array.for_all not parflag
  | Template.Block _ | Template.Coalesce _ | Template.Interleave _ -> false

(* Compose two adjacent instantiations into one when possible; [a] is
   applied first. *)
let compose2 (a : Template.t) (b : Template.t) : Template.t option =
  match (a, b) with
  | ( Template.Reverse_permute { n; rev = r1; perm = p1 },
      Template.Reverse_permute { rev = r2; perm = p2; _ } ) ->
    (* Loop k goes to p1.(k), then to p2.(p1.(k)); it is reversed when
       exactly one stage reverses it. Kept as a ReversePermute — it is
       preferable to an equivalent Unimodular (paper Section 4.2). *)
    let perm = Array.init n (fun k -> p2.(p1.(k))) in
    let rev = Array.init n (fun k -> r1.(k) <> r2.(p1.(k))) in
    Some (Template.Reverse_permute { n; rev; perm })
  | ( Template.Parallelize { n; parflag = f1 },
      Template.Parallelize { parflag = f2; _ } ) ->
    Some (Template.Parallelize { n; parflag = Array.init n (fun k -> f1.(k) || f2.(k)) })
  | _ -> (
    (* A Unimodular adjacent to any matrix-representable instantiation
       composes by matrix product (a reversed-permuted loop order equals
       the corresponding unimodular's). This is what lets Figure 1's
       "skew then interchange" collapse into one Unimodular whose bounds
       Fourier-Motzkin can generate. *)
    match (a, b, Template.to_matrix a, Template.to_matrix b) with
    | (Template.Unimodular _, _, Some m1, Some m2)
    | (_, Template.Unimodular _, Some m1, Some m2) ->
      Some (Template.unimodular (Intmat.mul m2 m1))
    | _ -> None)

let rec pass = function
  | [] -> []
  | [ t ] -> if is_identity t then [] else [ t ]
  | a :: b :: rest ->
    if is_identity a then pass (b :: rest)
    else (
      match compose2 a b with
      | Some c -> pass (c :: rest)
      | None -> a :: pass (b :: rest))

(* Each pass only shortens the list or leaves it unchanged, so this
   terminates. *)
let rec reduce seq =
  let seq' = pass seq in
  if seq' = seq then seq else reduce seq'

let compose t u = reduce (t @ u)

(* Identity of a sequence for memoization: two sequences are the "same
   transformation state" when their reductions coincide (e.g. interchange
   twice = identity), so search caches key on [reduce]. *)
let compare (a : t) (b : t) = List.compare Template.compare a b

let equal a b = compare a b = 0

let hash (seq : t) =
  List.fold_left
    (fun h t -> Itf_ir.Expr.hash_combine h (Template.hash t))
    (List.length seq) seq

let pp ppf (seq : t) =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun k t ->
      if k > 0 then Format.pp_print_cut ppf ();
      Format.fprintf ppf "%d. %a" (k + 1) Template.pp t)
    seq;
  Format.fprintf ppf "@]"
