module Intmat = Itf_mat.Intmat

type t = Template.t list

let rec well_formed = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) ->
    Template.output_depth a = Template.input_depth b && well_formed rest

let output_depth ~input seq =
  List.fold_left
    (fun d t ->
      if Template.input_depth t <> d then
        invalid_arg "Sequence.output_depth: sequence does not chain"
      else Template.output_depth t)
    input seq

let is_identity (t : Template.t) =
  match t with
  | Template.Unimodular { m; _ } -> Intmat.is_identity m
  | Template.Reverse_permute { rev; perm; _ } ->
    Array.for_all not rev
    && (let ok = ref true in
        Array.iteri (fun k p -> if p <> k then ok := false) perm;
        !ok)
  | Template.Parallelize { parflag; _ } -> Array.for_all not parflag
  | Template.Block _ | Template.Coalesce _ | Template.Interleave _ -> false

(* Compose two adjacent instantiations into one when possible; [a] is
   applied first. *)
let compose2 (a : Template.t) (b : Template.t) : Template.t option =
  match (a, b) with
  | ( Template.Reverse_permute { n; rev = r1; perm = p1 },
      Template.Reverse_permute { rev = r2; perm = p2; _ } ) ->
    (* Loop k goes to p1.(k), then to p2.(p1.(k)); it is reversed when
       exactly one stage reverses it. Kept as a ReversePermute — it is
       preferable to an equivalent Unimodular (paper Section 4.2). *)
    let perm = Array.init n (fun k -> p2.(p1.(k))) in
    let rev = Array.init n (fun k -> r1.(k) <> r2.(p1.(k))) in
    Some (Template.Reverse_permute { n; rev; perm })
  | ( Template.Parallelize { n; parflag = f1 },
      Template.Parallelize { parflag = f2; _ } ) ->
    Some (Template.Parallelize { n; parflag = Array.init n (fun k -> f1.(k) || f2.(k)) })
  | _ -> (
    (* A Unimodular adjacent to any matrix-representable instantiation
       composes by matrix product (a reversed-permuted loop order equals
       the corresponding unimodular's). This is what lets Figure 1's
       "skew then interchange" collapse into one Unimodular whose bounds
       Fourier-Motzkin can generate. *)
    match (a, b, Template.to_matrix a, Template.to_matrix b) with
    | (Template.Unimodular _, _, Some m1, Some m2)
    | (_, Template.Unimodular _, Some m1, Some m2) ->
      Some (Template.unimodular (Intmat.mul m2 m1))
    | _ -> None)

(* [pass] preserves physical identity on unchanged suffixes (and returns
   the input itself when no rule fires), so the fixpoint test in [reduce]
   is a pointer comparison instead of a structural list compare. Every
   rewrite shortens the list, so "structurally unchanged" and "physically
   unchanged" coincide. *)
let rec pass seq =
  match seq with
  | [] -> seq
  | [ t ] -> if is_identity t then [] else seq
  | a :: (b :: rest as tl) ->
    if is_identity a then pass tl
    else (
      match compose2 a b with
      | Some c -> pass (c :: rest)
      | None ->
        let tl' = pass tl in
        if tl' == tl then seq else a :: tl')

(* Each pass only shortens the list or leaves it unchanged, so this
   terminates. *)
let rec reduce seq =
  let seq' = pass seq in
  if seq' == seq then seq else reduce seq'

let compose t u = reduce (t @ u)

(* Identity of a sequence for memoization: two sequences are the "same
   transformation state" when their reductions coincide (e.g. interchange
   twice = identity), so search caches key on [reduce]. *)
let compare (a : t) (b : t) =
  if a == b then 0 else List.compare Template.compare a b

let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Hash-consing and integer-keyed reduction                            *)
(* ------------------------------------------------------------------ *)

(* A sequence's intern key is the list of its templates' ids: one probe
   after the (cached) per-template interning. *)
module HC = Itf_mat.Hashcons.Keyed (Itf_mat.Hashcons.Ints_key)

let table : t HC.t = HC.create "core.sequence"

let intern_id (seq : t) : t * int =
  let tis = Template.intern_ids seq in
  HC.intern table (List.map snd tis) (fun _ -> List.map fst tis)

let intern seq = fst (intern_id seq)
let id seq = snd (intern_id seq)

(* Canonicalization memo: sequence id -> interned reduction. [reduce] is
   pure, so racing domains store the same canonical value; in the search
   engine every raw candidate of every step funnels through here, turning
   the repeated peephole walks (matrix products, identity checks) into one
   table probe per distinct raw sequence. *)
module RMemo = Itf_mat.Hashcons.Memo (Itf_mat.Hashcons.Int_key)

let reduce_table : (t * int) RMemo.t = RMemo.create "core.reduce"

let reduce_memo seq =
  let seq', sid = intern_id seq in
  RMemo.find_or_add reduce_table sid (fun () ->
      let r = reduce seq' in
      if r == seq' then (seq', sid) else intern_id r)

let hash (seq : t) =
  List.fold_left
    (fun h t -> Itf_ir.Expr.hash_combine h (Template.hash t))
    (List.length seq) seq

let pp ppf (seq : t) =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun k t ->
      if k > 0 then Format.pp_print_cut ppf ();
      Format.fprintf ppf "%d. %a" (k + 1) Template.pp t)
    seq;
  Format.fprintf ppf "@]"
