module Dir = Itf_dep.Dir
module Depvec = Itf_dep.Depvec
module Intmat = Itf_mat.Intmat

open Depvec

let is_zero e = elem_is_zero e

(* ------------------------------------------------------------------ *)
(* Unimodular: d' = M x d, extended to direction values.               *)
(* ------------------------------------------------------------------ *)

(* Extended-integer interval abstraction of an entry. *)
type ext = NegInf | Fin of int | PosInf

let ext_add a b =
  match (a, b) with
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf
  | Fin x, Fin y -> Fin (x + y)

let ext_scale c = function
  | Fin x -> Fin (c * x)
  | NegInf -> if c > 0 then NegInf else if c < 0 then PosInf else Fin 0
  | PosInf -> if c > 0 then PosInf else if c < 0 then NegInf else Fin 0

let interval_of_elem = function
  | Dist d -> (Fin d, Fin d)
  | Dir d ->
    let s = Dir.signs d in
    let lo = if s.Dir.neg then NegInf else if s.Dir.zero then Fin 0 else Fin 1 in
    let hi = if s.Dir.pos then PosInf else if s.Dir.zero then Fin 0 else Fin (-1) in
    (lo, hi)

let elem_of_interval (lo, hi) =
  match (lo, hi) with
  | Fin a, Fin b when a = b -> Dist a
  | Fin a, Fin b when a > 0 && b > 0 -> dir Dir.Pos
  | Fin a, _ when a > 0 -> dir Dir.Pos
  | Fin 0, _ -> dir Dir.NonNeg
  | _, Fin b when b < 0 -> dir Dir.Neg
  | _, Fin 0 -> dir Dir.NonPos
  | _ -> dir Dir.Any

(* Scale an entry by an integer, exactly (keeps NonZero precision for
   signed-permutation rows, where interval arithmetic would widen). *)
let elem_scale c e =
  if c = 0 then Dist 0
  else
    match e with
    | Dist d -> Dist (c * d)
    | Dir d -> dir (if c > 0 then d else Dir.reverse d)

(* ------------------------------------------------------------------ *)
(* Grid-shift-aware normalized deltas for Unimodular                   *)
(* ------------------------------------------------------------------ *)

(* The unimodular matrix acts on the step-normalized loop variables
   produced by {!Codegen.normalize_steps}: a unit-step loop keeps its
   variable, and a loop with step [s] and lower bound [lo] becomes a
   zero-based counter [t] with [x = lo + s*t]. When [lo] is invariant in
   the enclosing loop variables, the normalized delta of a dependence
   equals its vector entry and the classic [d' = M d] rule applies. When
   [lo] depends on an enclosing loop, the two iterations of a dependence
   sit on shifted grids and the counter delta is [(dx - dlo) / s], which
   the entry alone does not determine: the plain rule accepted skews and
   reversals that reorder dependent iterations (found by the differential
   fuzzer, e.g. skewing across [do j = i, i+3, 3]). For such components we
   bound the normalized delta by interval arithmetic over value deltas. *)

let ext_neg = function NegInf -> PosInf | PosInf -> NegInf | Fin x -> Fin (-x)

let ext_min a b =
  match (a, b) with
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, x | x, PosInf -> x
  | Fin x, Fin y -> Fin (min x y)

let ext_max a b =
  match (a, b) with
  | PosInf, _ | _, PosInf -> PosInf
  | NegInf, x | x, NegInf -> x
  | Fin x, Fin y -> Fin (max x y)

let interval_neg (lo, hi) = (ext_neg hi, ext_neg lo)
let interval_add (a, b) (c, d) = (ext_add a c, ext_add b d)
let interval_sub i j = interval_add i (interval_neg j)

let interval_scale c (lo, hi) =
  if c >= 0 then (ext_scale c lo, ext_scale c hi)
  else (ext_scale c hi, ext_scale c lo)

let floor_div_int a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (a < 0) <> (b < 0) then q - 1 else q

let ceil_div_int a b = -floor_div_int (-a) b

let ext_div_floor x s =
  match x with
  | Fin v -> Fin (floor_div_int v s)
  | NegInf -> if s > 0 then NegInf else PosInf
  | PosInf -> if s > 0 then PosInf else NegInf

let ext_div_ceil x s =
  match x with
  | Fin v -> Fin (ceil_div_int v s)
  | NegInf -> if s > 0 then NegInf else PosInf
  | PosInf -> if s > 0 then PosInf else NegInf

(* Integers [t] with [s * t] inside the interval, [s <> 0]. *)
let interval_unscale s (lo, hi) =
  if s > 0 then (ext_div_ceil lo s, ext_div_floor hi s)
  else (ext_div_ceil hi s, ext_div_floor lo s)

(* Possible differences [x_sink - x_source] of the original variable's
   values. [aligned] asserts the loop's grid origin is shared by both
   iterations, so nonzero differences are at least a full step apart. *)
let value_interval ~step ~aligned e =
  if is_zero e then (Fin 0, Fin 0)
  else
    match e with
    | Dist d -> (Fin (d * step), Fin (d * step))
    | Dir d ->
      let s = Dir.signs d in
      let m = if aligned then abs step else 1 in
      (* entry constrains the execution-corrected sign u = dx * sgn(step) *)
      let ulo =
        if s.Dir.neg then NegInf else if s.Dir.zero then Fin 0 else Fin m
      in
      let uhi =
        if s.Dir.pos then PosInf else if s.Dir.zero then Fin 0 else Fin (-m)
      in
      if step > 0 then (ulo, uhi) else (ext_neg uhi, ext_neg ulo)

(* Interval of [e(sink) - e(source)] given value-delta intervals for the
   enclosing loop variables (anything else is invariant between the two). *)
let rec delta_expr env (e : Itf_ir.Expr.t) =
  let module Expr = Itf_ir.Expr in
  match e with
  | Expr.Int _ -> (Fin 0, Fin 0)
  | Expr.Var v -> (
    match List.assoc_opt v env with Some iv -> iv | None -> (Fin 0, Fin 0))
  | Expr.Neg a -> interval_neg (delta_expr env a)
  | Expr.Add (a, b) -> interval_add (delta_expr env a) (delta_expr env b)
  | Expr.Sub (a, b) -> interval_sub (delta_expr env a) (delta_expr env b)
  | Expr.Mul (a, b) -> (
    match (Expr.to_int a, Expr.to_int b) with
    | Some c, _ -> interval_scale c (delta_expr env b)
    | _, Some c -> interval_scale c (delta_expr env a)
    | None, None ->
      if delta_free env e then (Fin 0, Fin 0) else (NegInf, PosInf))
  | Expr.Min (a, b) | Expr.Max (a, b) ->
    (* min/max are 1-Lipschitz: the delta lies in the hull of the
       argument deltas. *)
    let la, ha = delta_expr env a and lb, hb = delta_expr env b in
    (ext_min la lb, ext_max ha hb)
  | Expr.Div _ | Expr.Mod _ | Expr.Load _ | Expr.Call _ ->
    if delta_free env e then (Fin 0, Fin 0) else (NegInf, PosInf)

and delta_free env e =
  List.for_all
    (fun v ->
      match List.assoc_opt v env with
      | None | Some (Fin 0, Fin 0) -> true
      | Some _ -> false)
    (Itf_ir.Expr.free_vars e)

type grid = { grid_exact : bool array; grid_norm : (ext * ext) array }

(* Per-component deltas of the step-normalized variables the matrix will
   mix, for the dependence vector [d] on [nest]. *)
let grid_of_nest (nest : Itf_ir.Nest.t) (d : t) : grid =
  let module Nest = Itf_ir.Nest in
  let module Expr = Itf_ir.Expr in
  let loops = Array.of_list nest.Nest.loops in
  let n = Array.length loops in
  let loop_vars = Nest.loop_vars nest in
  let grid_exact = Array.make n true in
  let grid_norm = Array.make n (Fin 0, Fin 0) in
  let env = ref [] in
  for k = 0 to min (n - 1) (Array.length d - 1) do
    let l = loops.(k) in
    let step = Expr.to_int l.Nest.step in
    let lo_invariant =
      List.for_all
        (fun v -> not (List.mem v loop_vars))
        (Expr.free_vars l.Nest.lo)
    in
    let value =
      match step with
      | Some s -> value_interval ~step:s ~aligned:lo_invariant d.(k)
      | None -> if is_zero d.(k) then (Fin 0, Fin 0) else (NegInf, PosInf)
    in
    (match step with
    | Some 1 ->
      (* Variable kept by normalization: the matrix sees the value delta,
         which is exactly what the entry denotes at unit step. *)
      grid_norm.(k) <- interval_of_elem d.(k)
    | Some _ when lo_invariant ->
      (* Shared grid origin: counter delta = entry. *)
      grid_norm.(k) <- interval_of_elem d.(k)
    | Some s ->
      grid_exact.(k) <- false;
      let dlo = delta_expr !env l.Nest.lo in
      grid_norm.(k) <- interval_unscale s (interval_sub value dlo)
    | None ->
      grid_exact.(k) <- false;
      grid_norm.(k) <-
        (if is_zero d.(k) then (Fin 0, Fin 0) else (NegInf, PosInf)));
    env := (l.Nest.var, value) :: !env
  done;
  { grid_exact; grid_norm }

let unimodular_map ?grid m (d : t) : t =
  let n = Array.length d in
  let exact k =
    match grid with None -> true | Some g -> g.grid_exact.(k)
  in
  let interval k =
    match grid with
    | None -> interval_of_elem d.(k)
    | Some g -> g.grid_norm.(k)
  in
  Array.init n (fun r ->
      let row = Intmat.row m r in
      let nonzero = ref [] in
      Array.iteri (fun k c -> if c <> 0 then nonzero := (k, c) :: !nonzero) row;
      match !nonzero with
      | [] -> Dist 0
      | [ (k, c) ] when exact k ->
        (* Single-term row over a shared-grid component: exact scaling. *)
        elem_scale c d.(k)
      | nz ->
        let acc =
          List.fold_left
            (fun acc (k, c) -> interval_add acc (interval_scale c (interval k)))
            (Fin 0, Fin 0) nz
        in
        elem_of_interval acc)

(* ------------------------------------------------------------------ *)
(* ReversePermute                                                      *)
(* ------------------------------------------------------------------ *)

let reverse_permute_map rev perm (d : t) : t =
  let n = Array.length d in
  let out = Array.make n (Dist 0) in
  for k = 0 to n - 1 do
    out.(perm.(k)) <- (if rev.(k) then elem_reverse d.(k) else d.(k))
  done;
  out

(* ------------------------------------------------------------------ *)
(* Parallelize                                                         *)
(* ------------------------------------------------------------------ *)

let parmap e = if is_zero e then Dist 0 else elem_union e (elem_reverse e)

let parallelize_map parflag (d : t) : t =
  Array.mapi (fun k e -> if parflag.(k) then parmap e else e) d

(* ------------------------------------------------------------------ *)
(* Block                                                               *)
(* ------------------------------------------------------------------ *)

(* The nonzero part of an entry's direction: the block-loop entry when a
   block boundary is crossed. *)
let dir_nonzero e =
  let s = elem_signs e in
  Dir.of_signs { s with Dir.zero = false }

let blockmap e =
  if is_zero e then [ (Dist 0, Dist 0) ]
  else
    match e with
    | Dir Dir.Any -> [ (dir Dir.Any, dir Dir.Any) ]
    | Dist d when d = 1 || d = -1 ->
      (* Crossing at most one block boundary: the block distance is exact. *)
      [ (Dist 0, e); (Dist d, dir Dir.Any) ]
    | e -> [ (Dist 0, e); (dir (dir_nonzero e), dir Dir.Any) ]

let prefix_zero (d : t) hi = Array.for_all is_zero (Array.sub d 0 hi)

(* Cross product of per-loop pair choices over the band [lo..hi].
   [exact0] tells whether block-alignment is trustworthy at the first band
   loop (the band is rectangular, or every enclosing component of the
   vector is zero so both iterations see identical band bounds); alignment
   for deeper band loops additionally requires the chosen outer-group
   components so far to be exactly zero. *)
let band_fanout pair_map widened ~exact0 ~rectangular lo hi (d : t) =
  let rec go k exact =
    if k > hi then [ ([], []) ]
    else
      let choices = if exact then pair_map d.(k) else widened d.(k) in
      List.concat_map
        (fun ((b, e) : elem * elem) ->
          let exact' = rectangular || (exact && is_zero b) in
          List.map (fun (bs, es) -> (b :: bs, e :: es)) (go (k + 1) exact'))
        choices
  in
  go lo exact0

let block_widened e = [ (dir Dir.Any, e) ]
(* Element-loop variables keep their original values, so the element
   component stays exact; only the block-origin alignment is lost. *)

let block_map ~rectangular i j (d : t) : t list =
  let n = Array.length d in
  let exact0 = rectangular || prefix_zero d i in
  List.map
    (fun (blocks, elems) ->
      Array.concat
        [
          Array.sub d 0 i;
          Array.of_list blocks;
          Array.of_list elems;
          Array.sub d (j + 1) (n - j - 1);
        ])
    (band_fanout blockmap block_widened ~exact0 ~rectangular i j d)

(* ------------------------------------------------------------------ *)
(* Coalesce                                                            *)
(* ------------------------------------------------------------------ *)

let mergedirs elems =
  match elems with
  | [] -> invalid_arg "Depmap.mergedirs: empty"
  | e :: rest ->
    List.fold_left
      (fun acc e ->
        (* While the accumulated outer part is exactly zero, the inner
           entry passes through unchanged (exact distances survive). *)
        if is_zero acc then e
        else dir (Dir.merge_lex (elem_dir acc) (elem_dir e)))
      e rest

let coalesce_map ~rectangular i j (d : t) : t =
  let n = Array.length d in
  (* With a nonzero enclosing component and band bounds that depend on
     enclosing loops, the 0-based renumbering shifts positions arbitrarily:
     the merged component's magnitude and even its sign are unreliable. *)
  let merged =
    if rectangular || prefix_zero d i then
      mergedirs (Array.to_list (Array.sub d i (j - i + 1)))
    else dir Dir.Any
  in
  Array.concat
    [ Array.sub d 0 i; [| merged |]; Array.sub d (j + 1) (n - j - 1) ]

(* ------------------------------------------------------------------ *)
(* Interleave                                                          *)
(* ------------------------------------------------------------------ *)

(* Decompose an iteration-number distance d as  d = phase + F * position
   with unknown interleave factor F and |phase| < F. For d > 0 the
   realizable (phase, position) pairs are (0, +), (+, 0+), (-, +);
   mirrored for d < 0; (0, 0) for d = 0. Sign-unknown entries take the
   union of their sign cases. *)
let imap e =
  let s = elem_signs e in
  let zero_case = if s.Dir.zero then [ (Dist 0, Dist 0) ] else [] in
  let pos_case =
    if s.Dir.pos then
      [
        (Dist 0, dir Dir.Pos);
        (dir Dir.Pos, dir Dir.NonNeg);
        (dir Dir.Neg, dir Dir.Pos);
      ]
    else []
  in
  let neg_case =
    if s.Dir.neg then
      [
        (Dist 0, dir Dir.Neg);
        (dir Dir.Neg, dir Dir.NonPos);
        (dir Dir.Pos, dir Dir.Neg);
      ]
    else []
  in
  (* Merge cases that share a first component to limit fan-out. *)
  let all = zero_case @ pos_case @ neg_case in
  let firsts = List.sort_uniq Stdlib.compare (List.map fst all) in
  List.map
    (fun f ->
      let seconds = List.filter_map (fun (a, b) -> if a = f then Some b else None) all in
      (f, List.fold_left elem_union (List.hd seconds) (List.tl seconds)))
    firsts

(* When phase alignment is lost, the strided variable still carries its
   original value, so its direction survives; the phase is arbitrary. *)
let imap_widened e = [ (dir Dir.Any, dir (elem_dir e)) ]

let interleave_map ~rectangular i j (d : t) : t list =
  let n = Array.length d in
  (* Phase alignment at band loop k requires equal strided-loop lower
     bounds, i.e. zero differences on everything enclosing plus the
     original band components before k (their variables keep original
     values). *)
  let rec fan k =
    if k > j then [ ([], []) ]
    else
      let exact =
        rectangular
        || (prefix_zero d i
           && Array.for_all is_zero (Array.sub d i (k - i)))
      in
      let choices = if exact then imap d.(k) else imap_widened d.(k) in
      List.concat_map
        (fun ((p, s) : elem * elem) ->
          List.map (fun (ps, ss) -> (p :: ps, s :: ss)) (fan (k + 1)))
        choices
  in
  List.map
    (fun (phases, strided) ->
      Array.concat
        [
          Array.sub d 0 i;
          Array.of_list phases;
          Array.of_list strided;
          Array.sub d (j + 1) (n - j - 1);
        ])
    (fan i)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let map_vector ?(rectangular_bands = false) ?nest (t : Template.t) (d : t) :
    t list =
  if Array.length d <> Template.input_depth t then
    invalid_arg "Depmap.map_vector: vector length mismatch";
  let rectangular = rectangular_bands in
  match t with
  | Template.Unimodular { m; _ } ->
    let grid = Option.map (fun nest -> grid_of_nest nest d) nest in
    [ unimodular_map ?grid m d ]
  | Template.Reverse_permute { rev; perm; _ } -> [ reverse_permute_map rev perm d ]
  | Template.Parallelize { parflag; _ } -> [ parallelize_map parflag d ]
  | Template.Block { i; j; _ } -> block_map ~rectangular i j d
  | Template.Coalesce { i; j; _ } -> [ coalesce_map ~rectangular i j d ]
  | Template.Interleave { i; j; _ } -> interleave_map ~rectangular i j d

let map_set ?rectangular_bands ?nest t ds =
  Depvec.dedupe (List.concat_map (map_vector ?rectangular_bands ?nest t) ds)
