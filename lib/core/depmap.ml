module Dir = Itf_dep.Dir
module Depvec = Itf_dep.Depvec
module Intmat = Itf_mat.Intmat

open Depvec

let is_zero e = elem_is_zero e

(* ------------------------------------------------------------------ *)
(* Unimodular: d' = M x d, extended to direction values.               *)
(* ------------------------------------------------------------------ *)

(* Extended-integer interval abstraction of an entry. *)
type ext = NegInf | Fin of int | PosInf

let ext_add a b =
  match (a, b) with
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf
  | Fin x, Fin y -> Fin (x + y)

let ext_scale c = function
  | Fin x -> Fin (c * x)
  | NegInf -> if c > 0 then NegInf else if c < 0 then PosInf else Fin 0
  | PosInf -> if c > 0 then PosInf else if c < 0 then NegInf else Fin 0

let interval_of_elem = function
  | Dist d -> (Fin d, Fin d)
  | Dir d ->
    let s = Dir.signs d in
    let lo = if s.Dir.neg then NegInf else if s.Dir.zero then Fin 0 else Fin 1 in
    let hi = if s.Dir.pos then PosInf else if s.Dir.zero then Fin 0 else Fin (-1) in
    (lo, hi)

let elem_of_interval (lo, hi) =
  match (lo, hi) with
  | Fin a, Fin b when a = b -> Dist a
  | Fin a, Fin b when a > 0 && b > 0 -> dir Dir.Pos
  | Fin a, _ when a > 0 -> dir Dir.Pos
  | Fin 0, _ -> dir Dir.NonNeg
  | _, Fin b when b < 0 -> dir Dir.Neg
  | _, Fin 0 -> dir Dir.NonPos
  | _ -> dir Dir.Any

(* Scale an entry by an integer, exactly (keeps NonZero precision for
   signed-permutation rows, where interval arithmetic would widen). *)
let elem_scale c e =
  if c = 0 then Dist 0
  else
    match e with
    | Dist d -> Dist (c * d)
    | Dir d -> dir (if c > 0 then d else Dir.reverse d)

let unimodular_map m (d : t) : t =
  let n = Array.length d in
  Array.init n (fun r ->
      let row = Intmat.row m r in
      let nonzero = Array.to_list row |> List.filter (fun c -> c <> 0) in
      match nonzero with
      | [] -> Dist 0
      | [ _ ] ->
        (* Single-term row: exact scaling. *)
        let k = ref 0 in
        Array.iteri (fun idx c -> if c <> 0 then k := idx) row;
        elem_scale row.(!k) d.(!k)
      | _ ->
        let acc = ref (Fin 0, Fin 0) in
        Array.iteri
          (fun k c ->
            if c <> 0 then begin
              let lo, hi = interval_of_elem d.(k) in
              let lo, hi = if c > 0 then (lo, hi) else (hi, lo) in
              let lo = ext_scale c lo and hi = ext_scale c hi in
              acc := (ext_add (fst !acc) lo, ext_add (snd !acc) hi)
            end)
          row;
        elem_of_interval !acc)

(* ------------------------------------------------------------------ *)
(* ReversePermute                                                      *)
(* ------------------------------------------------------------------ *)

let reverse_permute_map rev perm (d : t) : t =
  let n = Array.length d in
  let out = Array.make n (Dist 0) in
  for k = 0 to n - 1 do
    out.(perm.(k)) <- (if rev.(k) then elem_reverse d.(k) else d.(k))
  done;
  out

(* ------------------------------------------------------------------ *)
(* Parallelize                                                         *)
(* ------------------------------------------------------------------ *)

let parmap e = if is_zero e then Dist 0 else elem_union e (elem_reverse e)

let parallelize_map parflag (d : t) : t =
  Array.mapi (fun k e -> if parflag.(k) then parmap e else e) d

(* ------------------------------------------------------------------ *)
(* Block                                                               *)
(* ------------------------------------------------------------------ *)

(* The nonzero part of an entry's direction: the block-loop entry when a
   block boundary is crossed. *)
let dir_nonzero e =
  let s = elem_signs e in
  Dir.of_signs { s with Dir.zero = false }

let blockmap e =
  if is_zero e then [ (Dist 0, Dist 0) ]
  else
    match e with
    | Dir Dir.Any -> [ (dir Dir.Any, dir Dir.Any) ]
    | Dist d when d = 1 || d = -1 ->
      (* Crossing at most one block boundary: the block distance is exact. *)
      [ (Dist 0, e); (Dist d, dir Dir.Any) ]
    | e -> [ (Dist 0, e); (dir (dir_nonzero e), dir Dir.Any) ]

let prefix_zero (d : t) hi = Array.for_all is_zero (Array.sub d 0 hi)

(* Cross product of per-loop pair choices over the band [lo..hi].
   [exact0] tells whether block-alignment is trustworthy at the first band
   loop (the band is rectangular, or every enclosing component of the
   vector is zero so both iterations see identical band bounds); alignment
   for deeper band loops additionally requires the chosen outer-group
   components so far to be exactly zero. *)
let band_fanout pair_map widened ~exact0 ~rectangular lo hi (d : t) =
  let rec go k exact =
    if k > hi then [ ([], []) ]
    else
      let choices = if exact then pair_map d.(k) else widened d.(k) in
      List.concat_map
        (fun ((b, e) : elem * elem) ->
          let exact' = rectangular || (exact && is_zero b) in
          List.map (fun (bs, es) -> (b :: bs, e :: es)) (go (k + 1) exact'))
        choices
  in
  go lo exact0

let block_widened e = [ (dir Dir.Any, e) ]
(* Element-loop variables keep their original values, so the element
   component stays exact; only the block-origin alignment is lost. *)

let block_map ~rectangular i j (d : t) : t list =
  let n = Array.length d in
  let exact0 = rectangular || prefix_zero d i in
  List.map
    (fun (blocks, elems) ->
      Array.concat
        [
          Array.sub d 0 i;
          Array.of_list blocks;
          Array.of_list elems;
          Array.sub d (j + 1) (n - j - 1);
        ])
    (band_fanout blockmap block_widened ~exact0 ~rectangular i j d)

(* ------------------------------------------------------------------ *)
(* Coalesce                                                            *)
(* ------------------------------------------------------------------ *)

let mergedirs elems =
  match elems with
  | [] -> invalid_arg "Depmap.mergedirs: empty"
  | e :: rest ->
    List.fold_left
      (fun acc e ->
        (* While the accumulated outer part is exactly zero, the inner
           entry passes through unchanged (exact distances survive). *)
        if is_zero acc then e
        else dir (Dir.merge_lex (elem_dir acc) (elem_dir e)))
      e rest

let coalesce_map ~rectangular i j (d : t) : t =
  let n = Array.length d in
  (* With a nonzero enclosing component and band bounds that depend on
     enclosing loops, the 0-based renumbering shifts positions arbitrarily:
     the merged component's magnitude and even its sign are unreliable. *)
  let merged =
    if rectangular || prefix_zero d i then
      mergedirs (Array.to_list (Array.sub d i (j - i + 1)))
    else dir Dir.Any
  in
  Array.concat
    [ Array.sub d 0 i; [| merged |]; Array.sub d (j + 1) (n - j - 1) ]

(* ------------------------------------------------------------------ *)
(* Interleave                                                          *)
(* ------------------------------------------------------------------ *)

(* Decompose an iteration-number distance d as  d = phase + F * position
   with unknown interleave factor F and |phase| < F. For d > 0 the
   realizable (phase, position) pairs are (0, +), (+, 0+), (-, +);
   mirrored for d < 0; (0, 0) for d = 0. Sign-unknown entries take the
   union of their sign cases. *)
let imap e =
  let s = elem_signs e in
  let zero_case = if s.Dir.zero then [ (Dist 0, Dist 0) ] else [] in
  let pos_case =
    if s.Dir.pos then
      [
        (Dist 0, dir Dir.Pos);
        (dir Dir.Pos, dir Dir.NonNeg);
        (dir Dir.Neg, dir Dir.Pos);
      ]
    else []
  in
  let neg_case =
    if s.Dir.neg then
      [
        (Dist 0, dir Dir.Neg);
        (dir Dir.Neg, dir Dir.NonPos);
        (dir Dir.Pos, dir Dir.Neg);
      ]
    else []
  in
  (* Merge cases that share a first component to limit fan-out. *)
  let all = zero_case @ pos_case @ neg_case in
  let firsts = List.sort_uniq Stdlib.compare (List.map fst all) in
  List.map
    (fun f ->
      let seconds = List.filter_map (fun (a, b) -> if a = f then Some b else None) all in
      (f, List.fold_left elem_union (List.hd seconds) (List.tl seconds)))
    firsts

(* When phase alignment is lost, the strided variable still carries its
   original value, so its direction survives; the phase is arbitrary. *)
let imap_widened e = [ (dir Dir.Any, dir (elem_dir e)) ]

let interleave_map ~rectangular i j (d : t) : t list =
  let n = Array.length d in
  (* Phase alignment at band loop k requires equal strided-loop lower
     bounds, i.e. zero differences on everything enclosing plus the
     original band components before k (their variables keep original
     values). *)
  let rec fan k =
    if k > j then [ ([], []) ]
    else
      let exact =
        rectangular
        || (prefix_zero d i
           && Array.for_all is_zero (Array.sub d i (k - i)))
      in
      let choices = if exact then imap d.(k) else imap_widened d.(k) in
      List.concat_map
        (fun ((p, s) : elem * elem) ->
          List.map (fun (ps, ss) -> (p :: ps, s :: ss)) (fan (k + 1)))
        choices
  in
  List.map
    (fun (phases, strided) ->
      Array.concat
        [
          Array.sub d 0 i;
          Array.of_list phases;
          Array.of_list strided;
          Array.sub d (j + 1) (n - j - 1);
        ])
    (fan i)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let map_vector ?(rectangular_bands = false) (t : Template.t) (d : t) : t list =
  if Array.length d <> Template.input_depth t then
    invalid_arg "Depmap.map_vector: vector length mismatch";
  let rectangular = rectangular_bands in
  match t with
  | Template.Unimodular { m; _ } -> [ unimodular_map m d ]
  | Template.Reverse_permute { rev; perm; _ } -> [ reverse_permute_map rev perm d ]
  | Template.Parallelize { parflag; _ } -> [ parallelize_map parflag d ]
  | Template.Block { i; j; _ } -> block_map ~rectangular i j d
  | Template.Coalesce { i; j; _ } -> [ coalesce_map ~rectangular i j d ]
  | Template.Interleave { i; j; _ } -> interleave_map ~rectangular i j d

let map_set ?rectangular_bands t ds =
  Depvec.dedupe (List.concat_map (map_vector ?rectangular_bands t) ds)
