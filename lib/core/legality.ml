open Itf_ir
module Depvec = Itf_dep.Depvec
module Bmat = Itf_bounds.Bmat

type stage = {
  index : int;
  template : Template.t;
  nest_before : Nest.t;
  vectors_before : Depvec.t list;
}

type verdict =
  | Legal of { nest : Nest.t; vectors : Depvec.t list; stages : stage list }
  | Bounds_violation of { index : int; violations : Boundsmap.violation list }
  | Dependence_violation of { vector : Depvec.t }

(* Is the template's loop band rectangular — bounds and steps invariant in
   every enclosing loop variable? Controls whether Table 2's exact band
   entries are trustworthy (see {!Depmap.map_vector}). *)
let rectangular_bands bm (t : Template.t) =
  let band =
    match t with
    | Template.Block { i; j; _ }
    | Template.Coalesce { i; j; _ }
    | Template.Interleave { i; j; _ } -> Some (i, j)
    | Template.Unimodular _ | Template.Reverse_permute _
    | Template.Parallelize _ -> None
  in
  match band with
  | None -> false
  | Some (i, j) ->
    let ok = ref true in
    for m = i to j do
      for k = 0 to m - 1 do
        List.iter
          (fun w ->
            if not (Itf_bounds.Btype.leq (Bmat.btype bm w ~loop:m ~wrt:k) Itf_bounds.Btype.Invar)
            then ok := false)
          [ Bmat.L; Bmat.U; Bmat.S ]
      done
    done;
    !ok

let check ?vectors nest (seq : Sequence.t) =
  if not (Sequence.well_formed seq) then
    invalid_arg "Legality.check: sequence does not chain";
  (match seq with
  | t :: _ when Template.input_depth t <> Nest.depth nest ->
    invalid_arg "Legality.check: sequence does not start at the nest depth"
  | _ -> ());
  let vectors =
    match vectors with Some v -> v | None -> Itf_dep.Analysis.vectors nest
  in
  let rec go index nest vectors stages = function
    | [] -> (
      match Depvec.set_may_lex_negative vectors with
      | Some vector -> Dependence_violation { vector }
      | None -> Legal { nest; vectors; stages = List.rev stages })
    | t :: rest -> (
      let bm = Bmat.of_nest nest in
      match Boundsmap.check bm t with
      | _ :: _ as violations -> Bounds_violation { index; violations }
      | [] -> (
        let stage =
          { index; template = t; nest_before = nest; vectors_before = vectors }
        in
        let rectangular_bands = rectangular_bands bm t in
        (* The published preconditions are necessary but not quite
           sufficient for every corner (e.g. a strided loop whose lower
           bound is a multi-term max cannot be step-normalized exactly);
           when code generation detects such a case it rejects, and we
           report it as a bounds violation rather than crash. *)
        match Codegen.apply nest t with
        | nest' ->
          go (index + 1) nest'
            (Depmap.map_set ~rectangular_bands t vectors)
            (stage :: stages) rest
        | exception (Invalid_argument msg | Failure msg) ->
          Bounds_violation
            {
              index;
              violations =
                [
                  {
                    Boundsmap.template = Template.name t;
                    message = "code generation rejected the nest: " ^ msg;
                  };
                ];
            }
        | exception Itf_bounds.Fourier.Unbounded what ->
          Bounds_violation
            {
              index;
              violations =
                [
                  {
                    Boundsmap.template = Template.name t;
                    message = "transformed iteration space unbounded in " ^ what;
                  };
                ];
            }))
  in
  match go 0 nest vectors [] seq with
  | Legal _ as ok -> ok
  | Bounds_violation _ as verdict -> (
    (* A sequence may violate stage preconditions while its reduction does
       not: e.g. skew-then-interchange fails ReversePermute's rectangular
       precondition on the skewed nest, but reduces to a single Unimodular
       that Figure 1 generates directly. Accept if the reduced sequence is
       legal; otherwise report the original failure. *)
    let reduced = Sequence.reduce seq in
    if reduced = seq then verdict
    else
      match go 0 nest vectors [] reduced with
      | Legal _ as ok -> ok
      | _ -> verdict)
  | other -> other

let is_legal ?vectors nest seq =
  match check ?vectors nest seq with Legal _ -> true | _ -> false

let pp_verdict ppf = function
  | Legal { vectors; _ } ->
    Format.fprintf ppf "legal; transformed dependence vectors:@ ";
    List.iter (fun v -> Format.fprintf ppf "%a " Depvec.pp v) vectors
  | Bounds_violation { index; violations } ->
    Format.fprintf ppf "illegal: bounds preconditions fail at step %d:@ " index;
    List.iter (fun v -> Format.fprintf ppf "%a@ " Boundsmap.pp_violation v) violations
  | Dependence_violation { vector } ->
    Format.fprintf ppf
      "illegal: transformed vector %a admits a lexicographically negative tuple"
      Depvec.pp vector
