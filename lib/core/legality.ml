open Itf_ir
module Depvec = Itf_dep.Depvec
module Bmat = Itf_bounds.Bmat

type stage = {
  index : int;
  template : Template.t;
  nest_before : Nest.t;
  vectors_before : Depvec.t list;
}

type verdict =
  | Legal of { nest : Nest.t; vectors : Depvec.t list; stages : stage list }
  | Bounds_violation of { index : int; violations : Boundsmap.violation list }
  | Dependence_violation of { vector : Depvec.t }

(* Is the template's loop band rectangular — bounds and steps invariant in
   every enclosing loop variable? Controls whether Table 2's exact band
   entries are trustworthy (see {!Depmap.map_vector}). *)
let rectangular_bands bm (t : Template.t) =
  let band =
    match t with
    | Template.Block { i; j; _ }
    | Template.Coalesce { i; j; _ }
    | Template.Interleave { i; j; _ } -> Some (i, j)
    | Template.Unimodular _ | Template.Reverse_permute _
    | Template.Parallelize _ -> None
  in
  match band with
  | None -> false
  | Some (i, j) ->
    let ok = ref true in
    for m = i to j do
      for k = 0 to m - 1 do
        List.iter
          (fun w ->
            if not (Itf_bounds.Btype.leq (Bmat.btype bm w ~loop:m ~wrt:k) Itf_bounds.Btype.Invar)
            then ok := false)
          [ Bmat.L; Bmat.U; Bmat.S ]
      done
    done;
    !ok

let bump count n = match count with None -> () | Some r -> r := !r + n

(* Code generation propagates [pardo] markings structurally (a blocked
   parallel loop yields a parallel block loop and element loop, etc.), but
   a transformation can invalidate a propagated marking: blocking the
   inner loop of [do i; pardo j] with a dependence of distance (1, 1)
   leaves each tile internally order-free yet makes the block loop carry
   the dependence. Running a loop sequentially is always safe, so demote
   any marking the mapped vectors no longer support. *)
let demote_unsupported_pardo (nest : Nest.t) vectors =
  if List.for_all (fun (l : Nest.loop) -> l.Nest.kind = Nest.Do) nest.Nest.loops
  then nest
  else
    let par =
      Queries.parallelizable_loops ~depth:(Nest.depth nest) vectors
    in
    {
      nest with
      Nest.loops =
        List.mapi
          (fun k (l : Nest.loop) ->
            if l.Nest.kind = Nest.Pardo && not (List.mem k par) then
              { l with Nest.kind = Nest.Do }
            else l)
          nest.Nest.loops;
    }

let check ?count ?vectors nest (seq : Sequence.t) =
  if not (Sequence.well_formed seq) then
    invalid_arg "Legality.check: sequence does not chain";
  (match seq with
  | t :: _ when Template.input_depth t <> Nest.depth nest ->
    invalid_arg "Legality.check: sequence does not start at the nest depth"
  | _ -> ());
  let vectors =
    match vectors with Some v -> v | None -> Itf_dep.Analysis.vectors nest
  in
  let rec go index nest vectors stages = function
    | [] -> (
      match Depvec.set_may_lex_negative vectors with
      | Some vector -> Dependence_violation { vector }
      | None -> Legal { nest; vectors; stages = List.rev stages })
    | t :: rest -> (
      bump count 1;
      let bm = Bmat.of_nest nest in
      match Boundsmap.check bm t with
      | _ :: _ as violations -> Bounds_violation { index; violations }
      | [] -> (
        let stage =
          { index; template = t; nest_before = nest; vectors_before = vectors }
        in
        let rectangular_bands = rectangular_bands bm t in
        (* The published preconditions are necessary but not quite
           sufficient for every corner (e.g. a strided loop whose lower
           bound is a multi-term max cannot be step-normalized exactly);
           when code generation detects such a case it rejects, and we
           report it as a bounds violation rather than crash. *)
        match Codegen.apply nest t with
        | nest' ->
          let vectors' = Depmap.map_set ~rectangular_bands ~nest t vectors in
          go (index + 1)
            (demote_unsupported_pardo nest' vectors')
            vectors' (stage :: stages) rest
        | exception (Invalid_argument msg | Failure msg) ->
          Bounds_violation
            {
              index;
              violations =
                [
                  {
                    Boundsmap.template = Template.name t;
                    reason = Boundsmap.Codegen_rejected { message = msg };
                  };
                ];
            }
        | exception Itf_bounds.Fourier.Unbounded what ->
          Bounds_violation
            {
              index;
              violations =
                [
                  {
                    Boundsmap.template = Template.name t;
                    reason = Boundsmap.Unbounded_space { direction = what };
                  };
                ];
            }))
  in
  match go 0 nest vectors [] seq with
  | Legal _ as ok -> ok
  | Bounds_violation _ as verdict -> (
    (* A sequence may violate stage preconditions while its reduction does
       not: e.g. skew-then-interchange fails ReversePermute's rectangular
       precondition on the skewed nest, but reduces to a single Unimodular
       that Figure 1 generates directly. Accept if the reduced sequence is
       legal; otherwise report the original failure. *)
    let reduced = Sequence.reduce seq in
    if reduced = seq then verdict
    else
      match go 0 nest vectors [] reduced with
      | Legal _ as ok -> ok
      | _ -> verdict)
  | other -> other

let is_legal ?vectors nest seq =
  match check ?vectors nest seq with Legal _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Resumable prefix states (incremental legality for search engines)   *)
(* ------------------------------------------------------------------ *)

type state = {
  s_nest : Nest.t;
  s_vectors : Depvec.t list;
  s_stages_rev : stage list;
  s_seq_rev : Template.t list;
  s_root_nest : Nest.t;
  s_root_vectors : Depvec.t list;
  s_raw_failure : verdict option;
      (* [Some v]: the stage-by-stage path of this prefix fails with [v]
         and the prefix is legal only through its reduced sequence. Any
         extension must then replay the reduced sequence from the root,
         exactly as [check] would. *)
}

let start ?vectors nest =
  let vectors =
    match vectors with Some v -> v | None -> Itf_dep.Analysis.vectors nest
  in
  {
    s_nest = nest;
    s_vectors = vectors;
    s_stages_rev = [];
    s_seq_rev = [];
    s_root_nest = nest;
    s_root_vectors = vectors;
    s_raw_failure = None;
  }

let state_nest st = st.s_nest
let state_vectors st = st.s_vectors
let state_sequence st = List.rev st.s_seq_rev

let state_verdict st =
  match Depvec.set_may_lex_negative st.s_vectors with
  | Some vector -> Dependence_violation { vector }
  | None ->
    Legal
      {
        nest = st.s_nest;
        vectors = st.s_vectors;
        stages = List.rev st.s_stages_rev;
      }

(* The appended stage failed its bounds preconditions on the stage-by-stage
   path; mirror [check]'s fallback: accept iff the reduced sequence is
   legal from the root, otherwise report the stage-by-stage failure. *)
let extend_fallback ?count st t raw_failure =
  let seq = List.rev (t :: st.s_seq_rev) in
  let reduced = Sequence.reduce seq in
  if reduced = seq then Error raw_failure
  else
    match check ?count ~vectors:st.s_root_vectors st.s_root_nest reduced with
    | Legal { nest; vectors; stages } ->
      Ok
        {
          st with
          s_nest = nest;
          s_vectors = vectors;
          s_stages_rev = List.rev stages;
          s_seq_rev = t :: st.s_seq_rev;
          s_raw_failure = Some raw_failure;
        }
    | _ -> Error raw_failure

let extend ?count st (t : Template.t) =
  if Template.input_depth t <> Nest.depth st.s_nest then
    invalid_arg "Legality.extend: template does not chain with the state";
  match st.s_raw_failure with
  | Some raw ->
    (* The stage-by-stage path already fails inside the prefix, so the
       appended raw sequence fails identically; only the reduced path can
       accept it. *)
    extend_fallback ?count st t raw
  | None -> (
    bump count 1;
    let index = List.length st.s_seq_rev in
    let bm = Bmat.of_nest st.s_nest in
    match Boundsmap.check bm t with
    | _ :: _ as violations ->
      extend_fallback ?count st t (Bounds_violation { index; violations })
    | [] -> (
      let stage =
        {
          index;
          template = t;
          nest_before = st.s_nest;
          vectors_before = st.s_vectors;
        }
      in
      let rectangular_bands = rectangular_bands bm t in
      match Codegen.apply st.s_nest t with
      | nest' ->
        let vectors' =
          Depmap.map_set ~rectangular_bands ~nest:st.s_nest t st.s_vectors
        in
        Ok
          {
            st with
            s_nest = demote_unsupported_pardo nest' vectors';
            s_vectors = vectors';
            s_stages_rev = stage :: st.s_stages_rev;
            s_seq_rev = t :: st.s_seq_rev;
          }
      | exception (Invalid_argument msg | Failure msg) ->
        extend_fallback ?count st t
          (Bounds_violation
             {
               index;
               violations =
                 [
                   {
                     Boundsmap.template = Template.name t;
                     reason = Boundsmap.Codegen_rejected { message = msg };
                   };
                 ];
             })
      | exception Itf_bounds.Fourier.Unbounded what ->
        extend_fallback ?count st t
          (Bounds_violation
             {
               index;
               violations =
                 [
                   {
                     Boundsmap.template = Template.name t;
                     reason = Boundsmap.Unbounded_space { direction = what };
                   };
                 ];
             })))

type reason =
  | Precondition of { index : int; violation : Boundsmap.violation }
  | Lex_negative of { vector : Depvec.t }

let reasons = function
  | Legal _ -> []
  | Bounds_violation { index; violations } ->
    List.map (fun violation -> Precondition { index; violation }) violations
  | Dependence_violation { vector } -> [ Lex_negative { vector } ]

let reason_label = function
  | Precondition { violation; _ } -> Boundsmap.reason_label violation.Boundsmap.reason
  | Lex_negative _ -> "lex-negative"

let pp_reason ppf = function
  | Precondition { index; violation } ->
    Format.fprintf ppf "step %d: %a" index Boundsmap.pp_violation violation
  | Lex_negative { vector } ->
    Format.fprintf ppf
      "transformed vector %a admits a lexicographically negative tuple"
      Depvec.pp vector

let pp_verdict ppf = function
  | Legal { vectors; _ } ->
    Format.fprintf ppf "legal; transformed dependence vectors:@ ";
    List.iter (fun v -> Format.fprintf ppf "%a " Depvec.pp v) vectors
  | Bounds_violation { index; violations } ->
    Format.fprintf ppf "illegal: bounds preconditions fail at step %d:@ " index;
    List.iter (fun v -> Format.fprintf ppf "%a@ " Boundsmap.pp_violation v) violations
  | Dependence_violation { vector } ->
    Format.fprintf ppf
      "illegal: transformed vector %a admits a lexicographically negative tuple"
      Depvec.pp vector
