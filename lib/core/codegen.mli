(** Code generation: the loop-nest mapping rules of paper Tables 3 and 4.

    [apply nest t] produces the transformed nest: new loop headers, plus the
    initialization statements that define the original index variables as
    functions of the new ones (paper Figure 3). Initialization statements of
    successive templates accumulate in the order [INIT_k ... INIT_1] (paper
    Section 2, item 4b): each template prepends its own inits, so inner
    (later) templates' definitions come first and refer to the newest index
    variables.

    Preconditions are {e not} re-checked here — {!Legality} does that; on
    nests violating them this function may raise or produce wrong code
    (e.g. {!Itf_bounds.Fourier.Unbounded} from a non-affine [Unimodular]
    input).

    Notable behaviors, all matching the paper:
    - [Reverse_permute] reuses index-variable names and generates no inits;
      a reversed loop with runtime step [s] runs from
      [u - ((u - l) mod s)] down to [l] by [-s] (floor [mod] makes this
      uniform in the sign of [s], so no [abs]/[sgn] calls are needed).
    - [Block] generates only non-empty tiles: block-loop bounds substitute
      enclosing blocked variables by the block endpoint selected by each
      term's coefficient sign, and element loops clamp with [max]/[min]
      (Table 4).
    - [Unimodular] first normalizes non-unit steps to 1 via fresh iteration
      counters (adding their defining inits), then derives the new bounds by
      Fourier-Motzkin elimination and emits [x = M^{-1} y] inits. New index
      variables are named by doubling source names ([i] -> [ii]), preferring
      the variable a row is a pure copy of — reproducing Figure 1(b)'s
      [jj]/[ii].
    - [Coalesce] produces a 0-based unit-step loop over the product of the
      iteration counts and delinearizing [div]/[mod] inits; the result is
      [pardo] iff every coalesced loop was [pardo].
    - [Block]/[Interleave] sub-loops inherit the original loop's
      [do]/[pardo] kind. *)

val apply : Itf_ir.Nest.t -> Template.t -> Itf_ir.Nest.t
(** @raise Invalid_argument if the template's [n] differs from the nest
    depth. *)
