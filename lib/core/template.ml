open Itf_ir
module Intmat = Itf_mat.Intmat

type t =
  | Unimodular of { n : int; m : Intmat.t }
  | Reverse_permute of { n : int; rev : bool array; perm : int array }
  | Parallelize of { n : int; parflag : bool array }
  | Block of { n : int; i : int; j : int; bsize : Expr.t array }
  | Coalesce of { n : int; i : int; j : int }
  | Interleave of { n : int; i : int; j : int; isize : Expr.t array }

let unimodular m =
  if not (Intmat.is_unimodular m) then
    invalid_arg "Template.unimodular: matrix is not unimodular";
  Unimodular { n = Intmat.rows m; m }

let check_perm perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then
        invalid_arg "Template.reverse_permute: not a permutation";
      seen.(p) <- true)
    perm

let reverse_permute ~rev ~perm =
  if Array.length rev <> Array.length perm then
    invalid_arg "Template.reverse_permute: rev/perm length mismatch";
  if Array.length perm = 0 then
    invalid_arg "Template.reverse_permute: empty";
  check_perm perm;
  Reverse_permute { n = Array.length perm; rev = Array.copy rev; perm = Array.copy perm }

let parallelize parflag =
  if Array.length parflag = 0 then invalid_arg "Template.parallelize: empty";
  Parallelize { n = Array.length parflag; parflag = Array.copy parflag }

let check_range name n i j =
  if i < 0 || j >= n || i > j then
    invalid_arg (Printf.sprintf "Template.%s: bad loop range %d..%d in nest of %d" name i j n)

let block ~n ~i ~j ~bsize =
  check_range "block" n i j;
  if Array.length bsize <> j - i + 1 then
    invalid_arg "Template.block: bsize length must be j - i + 1";
  Block { n; i; j; bsize = Array.copy bsize }

let coalesce ~n ~i ~j =
  check_range "coalesce" n i j;
  Coalesce { n; i; j }

let interleave ~n ~i ~j ~isize =
  check_range "interleave" n i j;
  if Array.length isize <> j - i + 1 then
    invalid_arg "Template.interleave: isize length must be j - i + 1";
  Interleave { n; i; j; isize = Array.copy isize }

let interchange ~n a b =
  if a < 0 || b < 0 || a >= n || b >= n then
    invalid_arg "Template.interchange: position out of range";
  let perm = Array.init n (fun k -> if k = a then b else if k = b then a else k) in
  reverse_permute ~rev:(Array.make n false) ~perm

let reversal ~n k =
  if k < 0 || k >= n then invalid_arg "Template.reversal: position out of range";
  let rev = Array.make n false in
  rev.(k) <- true;
  reverse_permute ~rev ~perm:(Array.init n (fun k -> k))

let skew ~n ~src ~dst ~factor = unimodular (Intmat.skew n src dst factor)

let parallelize_one ~n k =
  if k < 0 || k >= n then
    invalid_arg "Template.parallelize_one: position out of range";
  let parflag = Array.make n false in
  parflag.(k) <- true;
  parallelize parflag

let input_depth = function
  | Unimodular { n; _ }
  | Reverse_permute { n; _ }
  | Parallelize { n; _ }
  | Block { n; _ }
  | Coalesce { n; _ }
  | Interleave { n; _ } -> n

let output_depth = function
  | Unimodular { n; _ } | Reverse_permute { n; _ } | Parallelize { n; _ } -> n
  | Block { n; i; j; _ } | Interleave { n; i; j; _ } -> n + (j - i + 1)
  | Coalesce { n; i; j } -> n - (j - i)

let to_matrix = function
  | Unimodular { m; _ } -> Some m
  | Reverse_permute { n; rev; perm } ->
    (* y_{perm k} = (rev k ? -1 : 1) * x_k *)
    Some
      (Intmat.make n n (fun r c ->
           if perm.(c) = r then if rev.(c) then -1 else 1 else 0))
  | Parallelize _ | Block _ | Coalesce _ | Interleave _ -> None

(* Explicit total order and hash over instantiations. [Intmat.t] is
   abstract and [Expr.t] may one day carry non-structural data, so the
   polymorphic comparisons are deliberately avoided. *)
let tag = function
  | Unimodular _ -> 0
  | Reverse_permute _ -> 1
  | Parallelize _ -> 2
  | Block _ -> 3
  | Coalesce _ -> 4
  | Interleave _ -> 5

let compare_array cmp a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go k =
      if k >= Array.length a then 0
      else
        let c = cmp a.(k) b.(k) in
        if c <> 0 then c else go (k + 1)
    in
    go 0

let compare (a : t) (b : t) =
  if a == b then 0
  else
  match (a, b) with
  | Unimodular { n = n1; m = m1 }, Unimodular { n = n2; m = m2 } ->
    let c = Int.compare n1 n2 in
    if c <> 0 then c else Intmat.compare m1 m2
  | ( Reverse_permute { n = n1; rev = r1; perm = p1 },
      Reverse_permute { n = n2; rev = r2; perm = p2 } ) ->
    let c = Int.compare n1 n2 in
    if c <> 0 then c
    else
      let c = compare_array Bool.compare r1 r2 in
      if c <> 0 then c else compare_array Int.compare p1 p2
  | Parallelize { n = n1; parflag = f1 }, Parallelize { n = n2; parflag = f2 }
    ->
    let c = Int.compare n1 n2 in
    if c <> 0 then c else compare_array Bool.compare f1 f2
  | ( Block { n = n1; i = i1; j = j1; bsize = b1 },
      Block { n = n2; i = i2; j = j2; bsize = b2 } )
  | ( Interleave { n = n1; i = i1; j = j1; isize = b1 },
      Interleave { n = n2; i = i2; j = j2; isize = b2 } ) ->
    let c = Int.compare n1 n2 in
    if c <> 0 then c
    else
      let c = Int.compare i1 i2 in
      if c <> 0 then c
      else
        let c = Int.compare j1 j2 in
        if c <> 0 then c else compare_array Expr.compare b1 b2
  | Coalesce { n = n1; i = i1; j = j1 }, Coalesce { n = n2; i = i2; j = j2 } ->
    let c = Int.compare n1 n2 in
    if c <> 0 then c
    else
      let c = Int.compare i1 i2 in
      if c <> 0 then c else Int.compare j1 j2
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash (t : t) =
  let comb = Expr.hash_combine in
  let hash_bools h fs =
    Array.fold_left (fun h b -> comb h (if b then 1 else 2)) h fs
  in
  match t with
  | Unimodular { n; m } -> comb (comb 1 n) (Intmat.hash m)
  | Reverse_permute { n; rev; perm } ->
    Array.fold_left comb (hash_bools (comb 2 n) rev) perm
  | Parallelize { n; parflag } -> hash_bools (comb 3 n) parflag
  | Block { n; i; j; bsize } ->
    Array.fold_left
      (fun h e -> comb h (Expr.hash e))
      (comb (comb (comb 4 n) i) j)
      bsize
  | Coalesce { n; i; j } -> comb (comb (comb 5 n) i) j
  | Interleave { n; i; j; isize } ->
    Array.fold_left
      (fun h e -> comb h (Expr.hash e))
      (comb (comb (comb 6 n) i) j)
      isize

(* Hash-consing: canonical physically-shared instantiations with dense
   ids. Keys are flat int lists over already-interned children (matrix and
   expression ids), so re-interning costs one probe; canonical values
   store interned matrices/expressions so equality checks deeper in the
   framework hit the O(1) fast paths too. Array fields are never mutated
   after the validated constructors copy them, so sharing is safe. *)
module HC = Itf_mat.Hashcons.Keyed (Itf_mat.Hashcons.Ints_key)

let table : t HC.t = HC.create "core.template"

let bools fs = Array.to_list (Array.map (fun b -> if b then 1 else 0) fs)

let intern_id (t : t) : t * int =
  match t with
  | Unimodular { n; m } ->
    let m' = Intmat.intern m in
    HC.intern table
      (0 :: n :: [ Intmat.id m' ])
      (fun _ -> if m' == m then t else Unimodular { n; m = m' })
  | Reverse_permute { n; rev; perm } ->
    HC.intern table
      ((1 :: n :: bools rev) @ Array.to_list perm)
      (fun _ -> t)
  | Parallelize { n; parflag } ->
    HC.intern table (2 :: n :: bools parflag) (fun _ -> t)
  | Block { n; i; j; bsize } ->
    let bs = Array.map Itf_ir.Intern.expr_i bsize in
    HC.intern table
      (3 :: n :: i :: j :: Array.to_list (Array.map snd bs))
      (fun _ ->
        if Array.for_all2 (fun (e', _) e0 -> e' == e0) bs bsize then t
        else Block { n; i; j; bsize = Array.map fst bs })
  | Coalesce { n; i; j } -> HC.intern table [ 4; n; i; j ] (fun _ -> t)
  | Interleave { n; i; j; isize } ->
    let is = Array.map Itf_ir.Intern.expr_i isize in
    HC.intern table
      (5 :: n :: i :: j :: Array.to_list (Array.map snd is))
      (fun _ ->
        if Array.for_all2 (fun (e', _) e0 -> e' == e0) is isize then t
        else Interleave { n; i; j; isize = Array.map fst is })

let intern t = fst (intern_id t)
let intern_ids seq = List.map intern_id seq

let name = function
  | Unimodular _ -> "Unimodular"
  | Reverse_permute _ -> "ReversePermute"
  | Parallelize _ -> "Parallelize"
  | Block _ -> "Block"
  | Coalesce _ -> "Coalesce"
  | Interleave _ -> "Interleave"

let pp_flags ppf flags =
  Array.iter (fun b -> Format.pp_print_char ppf (if b then 'T' else 'F')) flags

let pp_exprs ppf es =
  Format.fprintf ppf "[%s]"
    (String.concat " " (Array.to_list (Array.map Expr.to_string es)))

let pp ppf = function
  | Unimodular { n; m } ->
    Format.fprintf ppf "Unimodular(n=%d, M=@[<v>%a@])" n Intmat.pp m
  | Reverse_permute { n; rev; perm } ->
    Format.fprintf ppf "ReversePermute(n=%d, rev=[%a], perm=[%s])" n pp_flags rev
      (String.concat " "
         (Array.to_list (Array.map string_of_int perm)))
  | Parallelize { n; parflag } ->
    Format.fprintf ppf "Parallelize(n=%d, parflag=[%a])" n pp_flags parflag
  | Block { n; i; j; bsize } ->
    Format.fprintf ppf "Block(n=%d, %d..%d, bsize=%a)" n i j pp_exprs bsize
  | Coalesce { n; i; j } -> Format.fprintf ppf "Coalesce(n=%d, %d..%d)" n i j
  | Interleave { n; i; j; isize } ->
    Format.fprintf ppf "Interleave(n=%d, %d..%d, isize=%a)" n i j pp_exprs isize
