(** Loop-bounds preconditions for the kernel templates (first column of
    paper Tables 3 and 4).

    A template may be applied to a nest only if its bound expressions
    satisfy the template's preconditions over the
    [const ⊑ invar ⊑ linear ⊑ nonlinear] lattice; violating a precondition
    anywhere in a sequence makes the whole sequence illegal (paper
    Section 2, legality test part b). The checks are evaluated against the
    nest's LB/UB/STEP matrix representation (paper Section 4.3), never by
    re-walking the generated code.

    Every rejection carries a structured {!reason} — {e which} precondition
    failed, on {e which} loop bound, with respect to {e which} variable —
    so callers (the search engine's [--explain] table, the trace, metric
    labels) never have to parse a message string. *)

type reason =
  | Depth_mismatch of { expected : int; actual : int }
      (** The template's [n] does not match the nest depth. *)
  | Bound_type_exceeds of {
      which : Itf_bounds.Bmat.which;  (** lower, upper or step *)
      loop : int;  (** 0-based loop whose bound fails *)
      wrt : int;  (** 0-based enclosing loop the type is taken w.r.t. *)
      var : string;  (** that loop's index variable, for display *)
      ty : Itf_bounds.Btype.t;  (** actual [type(bound, var)] *)
      limit : Itf_bounds.Btype.t;  (** the template's precondition limit *)
    }  (** A Table-3/4 bound-type precondition fails. *)
  | Non_constant_step of { loop : int }
      (** The template requires a compile-time-constant step. *)
  | Codegen_rejected of { message : string }
      (** Code generation detected a corner the published preconditions
          admit but the bounds-mapping rules cannot express (reported by
          {!Legality}, not by {!check}). *)
  | Unbounded_space of { direction : string }
      (** Fourier-Motzkin found the transformed iteration space unbounded
          (reported by {!Legality}, not by {!check}). *)

type violation = { template : string; reason : reason }

val check : Itf_bounds.Bmat.t -> Template.t -> violation list
(** Empty list = all preconditions satisfied. Also reports a mismatch
    between the template's [n] and the nest depth. *)

val message : violation -> string
(** Human-readable rendering, naming the loop and variable. *)

val reason_label : reason -> string
(** Stable low-cardinality slug for metric labels and trace attributes:
    ["depth-mismatch"], ["bound-type"], ["non-constant-step"],
    ["codegen-rejected"], ["unbounded"]. *)

val pp_violation : Format.formatter -> violation -> unit
