(** Loop-bounds preconditions for the kernel templates (first column of
    paper Tables 3 and 4).

    A template may be applied to a nest only if its bound expressions
    satisfy the template's preconditions over the
    [const ⊑ invar ⊑ linear ⊑ nonlinear] lattice; violating a precondition
    anywhere in a sequence makes the whole sequence illegal (paper
    Section 2, legality test part b). The checks are evaluated against the
    nest's LB/UB/STEP matrix representation (paper Section 4.3), never by
    re-walking the generated code. *)

type violation = {
  template : string;
  message : string;  (** human-readable, names the loop and variable *)
}

val check : Itf_bounds.Bmat.t -> Template.t -> violation list
(** Empty list = all preconditions satisfied. Also reports a mismatch
    between the template's [n] and the nest depth. *)

val pp_violation : Format.formatter -> violation -> unit
