open Itf_ir
module Intmat = Itf_mat.Intmat
module Bmat = Itf_bounds.Bmat
module Fourier = Itf_bounds.Fourier

(* Fresh-name supply seeded with every name already used by the nest. *)
let name_supply nest =
  let used = ref (Nest.all_vars nest) in
  let fresh base =
    let pick =
      if not (List.mem base !used) then base
      else
        let rec go k =
          let cand = Printf.sprintf "%s%d" base k in
          if List.mem cand !used then go (k + 1) else cand
        in
        go 2
    in
    used := pick :: !used;
    pick
  in
  fresh

(* ------------------------------------------------------------------ *)
(* ReversePermute                                                      *)
(* ------------------------------------------------------------------ *)

(* Last iteration value of a loop: u - ((u - l) mod s). Floor-mod makes
   this correct for either sign of s, so runtime steps need no abs/sgn. *)
let reverse_loop (l : Nest.loop) =
  let last = Expr.sub l.hi (Expr.mod_ (Expr.sub l.hi l.lo) l.step) in
  { l with Nest.lo = last; hi = l.lo; step = Expr.neg l.step }

let reverse_permute nest rev perm =
  let loops = Array.of_list nest.Nest.loops in
  let n = Array.length loops in
  let out = Array.make n loops.(0) in
  for k = 0 to n - 1 do
    out.(perm.(k)) <- (if rev.(k) then reverse_loop loops.(k) else loops.(k))
  done;
  { nest with Nest.loops = Array.to_list out }

(* ------------------------------------------------------------------ *)
(* Parallelize                                                         *)
(* ------------------------------------------------------------------ *)

let parallelize nest parflag =
  {
    nest with
    Nest.loops =
      List.mapi
        (fun k (l : Nest.loop) ->
          if parflag.(k) then { l with Nest.kind = Nest.Pardo } else l)
        nest.Nest.loops;
  }

(* ------------------------------------------------------------------ *)
(* Unimodular                                                          *)
(* ------------------------------------------------------------------ *)

(* Rewrite loops with non-unit constant steps to unit-step loops over
   fresh iteration counters, returning the new nest and the inits that
   recover the original variables. *)
let normalize_steps fresh (nest : Nest.t) =
  let needs =
    List.exists
      (fun (l : Nest.loop) -> Expr.to_int l.Nest.step <> Some 1)
      nest.Nest.loops
  in
  if not needs then (nest, [])
  else begin
    let env = ref [] in
    let inits = ref [] in
    let loops =
      List.map
        (fun (l : Nest.loop) ->
          let lo = Expr.subst !env l.Nest.lo in
          let hi = Expr.subst !env l.Nest.hi in
          match Expr.to_int l.Nest.step with
          | Some 1 ->
            (* Keep the variable; it still needs substituted bounds. *)
            { l with Nest.lo; hi }
          | _ ->
            let t = fresh ("t" ^ l.Nest.var) in
            let value = Expr.add lo (Expr.mul l.Nest.step (Expr.var t)) in
            env := (l.Nest.var, value) :: !env;
            inits := Stmt.Set (l.Nest.var, value) :: !inits;
            (* The iteration-count rewrite below divides by the step and
               orients the far bound by its sign, so it is only exact for a
               nonzero compile-time-constant step. A runtime step would
               silently take the positive-sign branch and produce wrong
               bounds whenever it is negative — reject instead (consistent
               with [block]'s [step_of]). *)
            let step_sign =
              match Expr.to_int l.Nest.step with
              | Some s when s <> 0 -> s
              | Some _ ->
                invalid_arg "Codegen.normalize_steps: zero step"
              | None ->
                invalid_arg "Codegen.normalize_steps: non-constant step"
            in
            (* The iteration count is 1 + floor((u - lo)/s). Push the
               division inside a structured far bound — floor commutes with
               min/max and flips max to min under a negative divisor, so
               the result is always a min of per-term floor-divisions by a
               positive constant (which Fourier-Motzkin handles exactly). *)
            let hi_terms =
              Itf_bounds.Classify.bound_terms Itf_bounds.Classify.Upper
                ~step_sign hi
            in
            let divide term =
              if step_sign > 0 then Expr.div (Expr.sub term lo) l.Nest.step
              else Expr.div (Expr.sub lo term) (Expr.neg l.Nest.step)
            in
            let hi' = Expr.min_list (List.map divide hi_terms) in
            {
              Nest.var = t;
              lo = Expr.zero;
              hi = hi';
              step = Expr.one;
              kind = l.Nest.kind;
            })
        nest.Nest.loops
    in
    ( { nest with Nest.loops; inits = List.rev !inits @ nest.Nest.inits },
      !env )
  end

(* Choose output variable names: a row of M that is a pure (+1) copy of
   input variable v is named vv; other rows take the doubled names of the
   not-yet-claimed variables, outermost first. *)
let unimodular_names fresh m (vars : string array) =
  let n = Array.length vars in
  let names = Array.make n None in
  let claimed = Array.make n false in
  for r = 0 to n - 1 do
    let row = Intmat.row m r in
    let nonzero = ref [] in
    Array.iteri (fun k c -> if c <> 0 then nonzero := (k, c) :: !nonzero) row;
    match !nonzero with
    | [ (k, _) ] when not claimed.(k) ->
      claimed.(k) <- true;
      names.(r) <- Some (fresh (vars.(k) ^ vars.(k)))
    | _ -> ()
  done;
  let next_unclaimed = ref 0 in
  Array.mapi
    (fun _ name ->
      match name with
      | Some s -> s
      | None ->
        while !next_unclaimed < n && claimed.(!next_unclaimed) do
          incr next_unclaimed
        done;
        if !next_unclaimed < n then begin
          let k = !next_unclaimed in
          claimed.(k) <- true;
          fresh (vars.(k) ^ vars.(k))
        end
        else fresh "y")
    names

let unimodular nest m =
  let fresh = name_supply nest in
  let nest, _ = normalize_steps fresh nest in
  let vars = Array.of_list (Nest.loop_vars nest) in
  (* A unimodular change of basis mixes iteration coordinates, so any
     parallelism of the input loops has no well-defined image: the output
     loops are all sequential (re-parallelize afterwards if legal). *)
  let kinds = List.map (fun (_ : Nest.loop) -> Nest.Do) nest.Nest.loops in
  let minv = Intmat.inverse_unimodular m in
  let new_vars = unimodular_names fresh m vars in
  let sys = Fourier.substitute (Fourier.nest_system nest) minv new_vars in
  let bounds = Fourier.bounds sys in
  let loops =
    List.mapi
      (fun r kind ->
        let lo, hi = bounds.(r) in
        { Nest.var = new_vars.(r); lo; hi; step = Expr.one; kind })
      kinds
  in
  let inits =
    List.init (Array.length vars) (fun k ->
        let row = Intmat.row minv k in
        let e = ref Expr.zero in
        Array.iteri
          (fun r c ->
            if c <> 0 then
              e := Expr.add !e (Expr.mul (Expr.int c) (Expr.var new_vars.(r))))
          row;
        Stmt.Set (vars.(k), !e))
  in
  { nest with Nest.loops; inits = inits @ nest.Nest.inits }

(* ------------------------------------------------------------------ *)
(* Block                                                               *)
(* ------------------------------------------------------------------ *)

(* Substitute blocked band variables inside a bound term by the block
   endpoint chosen per coefficient sign (paper Table 4's x_min/x_max).
   [block_low.(h)]/[block_high.(h)] are the numeric extremes of band
   variable h over its block; [minimize] selects which to use for a
   positive coefficient. *)
let subst_term_endpoints vars ~i ~loop ~minimize ~block_low ~block_high
    (tm : Bmat.term) =
  let e = ref tm.Bmat.base in
  Array.iteri
    (fun h c ->
      if c <> 0 then begin
        let v =
          if h < i || h >= loop then Expr.var vars.(h)
          else if (c > 0) = minimize then block_low.(h - i)
          else block_high.(h - i)
        in
        e := Expr.add !e (Expr.mul (Expr.int c) v)
      end)
    tm.Bmat.coeffs;
  !e

let block nest i j bsize =
  let fresh = name_supply nest in
  let loops = Array.of_list nest.Nest.loops in
  let n = Array.length loops in
  let bm = Bmat.of_nest nest in
  let vars = Array.map (fun (l : Nest.loop) -> l.Nest.var) loops in
  let width = j - i + 1 in
  let block_vars =
    Array.init width (fun k -> fresh (vars.(i + k) ^ vars.(i + k)))
  in
  let step_of k =
    match Expr.to_int loops.(k).Nest.step with
    | Some s -> s
    | None -> invalid_arg "Codegen.block: non-constant step in band"
  in
  (* Numeric extremes of band variable h over one block: for step s > 0
     the block spans [hh, hh + s*(b-1)]; for s < 0 it is reversed. *)
  let block_low = Array.make width Expr.zero in
  let block_high = Array.make width Expr.zero in
  Array.iteri
    (fun k bv ->
      let s = step_of (i + k) in
      let far =
        Expr.add (Expr.var bv)
          (Expr.mul (Expr.int s) (Expr.sub bsize.(k) Expr.one))
      in
      if s > 0 then begin
        block_low.(k) <- Expr.var bv;
        block_high.(k) <- far
      end
      else begin
        block_low.(k) <- far;
        block_high.(k) <- Expr.var bv
      end)
    block_vars;
  let block_loop k =
    (* Loop over block origins: original bounds widened over enclosing
       blocks, striding by s * bsize. *)
    let pos = i + k in
    let s = step_of pos in
    let lower_terms =
      List.map
        (subst_term_endpoints vars ~i ~loop:pos ~minimize:(s > 0) ~block_low
           ~block_high)
        bm.Bmat.lowers.(pos)
    in
    let upper_terms =
      List.map
        (subst_term_endpoints vars ~i ~loop:pos ~minimize:(s < 0) ~block_low
           ~block_high)
        bm.Bmat.uppers.(pos)
    in
    let lo, hi =
      if s > 0 then (Expr.max_list lower_terms, Expr.min_list upper_terms)
      else (Expr.min_list lower_terms, Expr.max_list upper_terms)
    in
    {
      Nest.var = block_vars.(k);
      lo;
      hi;
      step = Expr.mul loops.(pos).Nest.step bsize.(k);
      kind = loops.(pos).Nest.kind;
    }
  in
  let element_loop k =
    let pos = i + k in
    let l = loops.(pos) in
    let s = step_of pos in
    let near = Expr.var block_vars.(k) in
    (* When the lower bound depends on an enclosing band variable, block
       origins shift with that variable and need not stay on the loop's
       value grid (l + s*m). Alignment holds when |s| = 1 (every integer is
       on the grid) or when no band variable occurs in the lower bound
       (block origins then march from l itself). *)
    let aligned =
      abs s = 1
      || List.for_all
           (fun (tm : Bmat.term) ->
             let ok = ref true in
             Array.iteri
               (fun h c -> if h >= i && c <> 0 then ok := false)
               tm.Bmat.coeffs;
             !ok)
           bm.Bmat.lowers.(pos)
    in
    let lo, hi =
      if aligned then begin
        (* Paper Table 4 form. *)
        let far =
          Expr.add near (Expr.mul (Expr.int s) (Expr.sub bsize.(k) Expr.one))
        in
        if s > 0 then (Expr.max_ near l.Nest.lo, Expr.min_ far l.Nest.hi)
        else (Expr.min_ near l.Nest.lo, Expr.max_ far l.Nest.hi)
      end
      else begin
        (* Grid-snapped form: start at the first grid point inside the
           tile and cover the half-open span of s*bsize values, so every
           tile holds exactly bsize grid points regardless of alignment. *)
        let lb = l.Nest.lo in
        if s > 0 then
          let snapped =
            Expr.add lb
              (Expr.mul (Expr.int s)
                 (Expr.div
                    (Expr.add (Expr.sub near lb) (Expr.int (s - 1)))
                    (Expr.int s)))
          in
          let span_end =
            Expr.sub
              (Expr.add near (Expr.mul (Expr.int s) bsize.(k)))
              Expr.one
          in
          (Expr.max_ lb snapped, Expr.min_ span_end l.Nest.hi)
        else
          let snapped =
            (* largest grid point <= near: l + s * ceil((l - near) / -s) *)
            Expr.add lb
              (Expr.mul (Expr.int s)
                 (Expr.div
                    (Expr.add (Expr.sub lb near) (Expr.int (-s - 1)))
                    (Expr.int (-s))))
          in
          let span_end =
            Expr.add
              (Expr.add near (Expr.mul (Expr.int s) bsize.(k)))
              Expr.one
          in
          (Expr.min_ lb snapped, Expr.max_ span_end l.Nest.hi)
      end
    in
    { l with Nest.lo; hi }
  in
  let out =
    Array.to_list (Array.sub loops 0 i)
    @ List.init width block_loop
    @ List.init width element_loop
    @ Array.to_list (Array.sub loops (j + 1) (n - j - 1))
  in
  { nest with Nest.loops = out }

(* ------------------------------------------------------------------ *)
(* Coalesce                                                            *)
(* ------------------------------------------------------------------ *)

let coalesce nest i j =
  let fresh = name_supply nest in
  let loops = Array.of_list nest.Nest.loops in
  let n = Array.length loops in
  let width = j - i + 1 in
  let band = Array.sub loops i width in
  (* Iteration count of each coalesced loop: (u - l + s) div s, clamped at
     zero so empty loops yield an empty coalesced loop. *)
  let counts =
    Array.map
      (fun (l : Nest.loop) ->
        Expr.max_ Expr.zero
          (Expr.div (Expr.add (Expr.sub l.Nest.hi l.Nest.lo) l.Nest.step) l.Nest.step))
      band
  in
  let total =
    Array.fold_left (fun acc c -> Expr.mul acc c) Expr.one counts
  in
  (* A band containing a statically empty loop coalesces to a loop that
     never runs; its delinearization formulas would divide/mod by a zero
     count, so they are replaced by safe constants below. *)
  let statically_empty =
    Array.exists (fun c -> Expr.to_int c = Some 0) counts
  in
  let initial (l : Nest.loop) =
    if l.Nest.var = "" then "x" else String.make 1 l.Nest.var.[0]
  in
  let cname =
    fresh (String.concat "" (Array.to_list (Array.map initial band)) ^ "c")
  in
  let kind =
    if Array.for_all (fun (l : Nest.loop) -> l.Nest.kind = Nest.Pardo) band
    then Nest.Pardo
    else Nest.Do
  in
  let cloop =
    { Nest.var = cname; lo = Expr.zero; hi = Expr.sub total Expr.one; step = Expr.one; kind }
  in
  (* x_k = l_k + s_k * ((c div prod_{m>k} n_m) mod n_k), 0-based. *)
  let delinearized =
    List.init width (fun k ->
        let l = band.(k) in
        if statically_empty then
          (* The coalesced loop has zero iterations: any well-defined value
             works (the inits never execute), and the original lower bound
             avoids divisions by a statically zero count. *)
          (l.Nest.var, l.Nest.lo)
        else
          let suffix =
            Array.fold_left (fun acc c -> Expr.mul acc c) Expr.one
              (Array.sub counts (k + 1) (width - k - 1))
          in
          let idx = Expr.mod_ (Expr.div (Expr.var cname) suffix) counts.(k) in
          (l.Nest.var, Expr.add l.Nest.lo (Expr.mul l.Nest.step idx)))
  in
  let inits = List.map (fun (v, e) -> Stmt.Set (v, e)) delinearized in
  (* Loops deeper than the coalesced band may reference the coalesced
     variables in their bounds; the init statements run too late for that,
     so inline the delinearization there (the paper's Figure 7 does the
     same via its tmp_j/tmp_i formulas). *)
  let fix_suffix (l : Nest.loop) =
    {
      l with
      Nest.lo = Expr.subst delinearized l.Nest.lo;
      hi = Expr.subst delinearized l.Nest.hi;
      step = Expr.subst delinearized l.Nest.step;
    }
  in
  let out =
    Array.to_list (Array.sub loops 0 i)
    @ [ cloop ]
    @ List.map fix_suffix (Array.to_list (Array.sub loops (j + 1) (n - j - 1)))
  in
  { nest with Nest.loops = out; inits = inits @ nest.Nest.inits }

(* ------------------------------------------------------------------ *)
(* Interleave                                                          *)
(* ------------------------------------------------------------------ *)

let interleave nest i j isize =
  let fresh = name_supply nest in
  let loops = Array.of_list nest.Nest.loops in
  let n = Array.length loops in
  let width = j - i + 1 in
  let phase_vars =
    Array.init width (fun k -> fresh (loops.(i + k).Nest.var ^ "p"))
  in
  let phase_loop k =
    {
      Nest.var = phase_vars.(k);
      lo = Expr.zero;
      hi = Expr.sub isize.(k) Expr.one;
      step = Expr.one;
      kind = loops.(i + k).Nest.kind;
    }
  in
  let strided_loop k =
    let l = loops.(i + k) in
    {
      l with
      Nest.lo = Expr.add l.Nest.lo (Expr.mul (Expr.var phase_vars.(k)) l.Nest.step);
      step = Expr.mul isize.(k) l.Nest.step;
    }
  in
  let out =
    Array.to_list (Array.sub loops 0 i)
    @ List.init width phase_loop
    @ List.init width strided_loop
    @ Array.to_list (Array.sub loops (j + 1) (n - j - 1))
  in
  { nest with Nest.loops = out }

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let apply nest (t : Template.t) =
  if Nest.depth nest <> Template.input_depth t then
    invalid_arg "Codegen.apply: nest depth does not match template";
  match t with
  | Template.Unimodular { m; _ } -> unimodular nest m
  | Template.Reverse_permute { rev; perm; _ } -> reverse_permute nest rev perm
  | Template.Parallelize { parflag; _ } -> parallelize nest parflag
  | Template.Block { i; j; bsize; _ } -> block nest i j bsize
  | Template.Coalesce { i; j; _ } -> coalesce nest i j
  | Template.Interleave { i; j; isize; _ } -> interleave nest i j isize
