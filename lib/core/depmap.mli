(** Dependence-vector mapping rules for the kernel templates
    (paper Table 2).

    Every template except [Block] and [Interleave] maps a dependence vector
    to exactly one output vector; [Block] and [Interleave] fan out to as
    many as [2^(j-i+1)] (respectively [3^(j-i+1)]) vectors — the reason they
    cannot be represented by transformation matrices (paper Section 3.2).

    All rules are {e consistent} in the sense of paper Definition 3.4: the
    transformed vector set covers the image of every ordered dependent
    iteration pair. The test suite verifies this empirically against the
    interpreter on randomized nests and transformations.

    Two rules were reconstructed from the paper's stated semantics (the OCR
    of Table 2 is damaged there):

    - [Parallelize]'s [parmap(d)] keeps a provably-zero entry and otherwise
      widens to the union of [d] with its reverse — a [pardo] loop's
      iterations are mutually unordered, so a nonzero dependence component
      may be observed in either order.
    - [Interleave]'s [imap(d)] decomposes [d = phase + F * position] for an
      unknown factor [F]: zero maps to [(0, 0)]; a positive component maps
      to the pairs [(0, +), (+, 0+), (-, +)] (and mirrored for negative);
      sign-unknown components take the corresponding unions. *)

val map_vector :
  ?rectangular_bands:bool -> ?nest:Itf_ir.Nest.t -> Template.t ->
  Itf_dep.Depvec.t -> Itf_dep.Depvec.t list
(** [nest] is the nest the template is applied to. [Unimodular] needs it
    whenever a non-unit-step loop's lower bound depends on an enclosing
    loop variable: the matrix acts on step-normalized counters whose grid
    origin then shifts between the two iterations of a dependence, so the
    counter delta is [(dx - dlo)/s] rather than the vector entry itself.
    With the nest at hand those components are bounded by interval
    arithmetic over value deltas; without it the classic [d' = M d] rule is
    used, which is only sound for invariant lower bounds (the differential
    fuzzer found skews of [do j = i, i+3, 3]-style nests it wrongly
    accepts).

    [rectangular_bands] (default [false]) asserts that the bounds and steps
    of the template's loop range are invariant in {e all} enclosing loop
    variables. Table 2's exact entries for [Block]/[Coalesce]/[Interleave]
    bands (e.g. [blockmap]'s [(0, d)] "same block" pair) silently assume
    this: when a band loop's bounds depend on an enclosing loop and the
    vector has a nonzero enclosing component, the renumbering performed by
    the transformation shifts per-iteration alignment, so this
    implementation widens those entries to keep the rules consistent
    (Definition 3.4) — a refinement of the paper validated by the
    randomized oracle tests. {!Legality} computes the flag from the nest's
    LB/UB/STEP matrices; callers without a nest at hand get the sound
    conservative default.
    @raise Invalid_argument if the vector length differs from the
    template's input depth. *)

val map_set :
  ?rectangular_bands:bool -> ?nest:Itf_ir.Nest.t -> Template.t ->
  Itf_dep.Depvec.t list -> Itf_dep.Depvec.t list
(** Image of a whole dependence-vector set, deduplicated. *)

(** {1 Individual entry maps (exposed for tests and documentation)} *)

val parmap : Itf_dep.Depvec.elem -> Itf_dep.Depvec.elem

val blockmap : Itf_dep.Depvec.elem -> (Itf_dep.Depvec.elem * Itf_dep.Depvec.elem) list
(** Pairs of (block-loop entry, element-loop entry). *)

val imap : Itf_dep.Depvec.elem -> (Itf_dep.Depvec.elem * Itf_dep.Depvec.elem) list
(** Pairs of (phase-loop entry, strided-loop entry). *)

val mergedirs : Itf_dep.Depvec.elem list -> Itf_dep.Depvec.elem
(** [Coalesce]'s lexicographic merge; exact distances survive when all
    outer entries are exactly zero. *)
