module Depvec = Itf_dep.Depvec
module Dir = Itf_dep.Dir

let carried_level (d : Depvec.t) =
  let rec go k =
    if k >= Array.length d then None
    else
      let s = Depvec.elem_signs d.(k) in
      if (not s.Dir.neg) && not s.Dir.zero then Some k (* definitely positive *)
      else if (not s.Dir.neg) && (not s.Dir.pos) && s.Dir.zero then go (k + 1)
        (* definitely zero *)
      else None
  in
  go 0

let may_be_carried_by (d : Depvec.t) level =
  level >= 0
  && level < Array.length d
  && (Depvec.elem_signs d.(level)).Dir.pos
  && Array.for_all
       (fun e -> (Depvec.elem_signs e).Dir.zero)
       (Array.sub d 0 level)

let parallelizable vectors level =
  not (List.exists (fun d -> may_be_carried_by d level) vectors)

let parallelizable_loops ~depth vectors =
  List.filter (parallelizable vectors) (List.init depth Fun.id)

let vectorizable_innermost ~depth vectors =
  depth > 0 && parallelizable vectors (depth - 1)

let fully_permutable ~depth vectors ~i ~j =
  0 <= i && i <= j && j < depth
  && List.for_all
       (fun (d : Depvec.t) ->
         (* carried strictly outside the band... *)
         (match carried_level d with Some l when l < i -> true | _ -> false)
         || (* ...or non-negative in every band component *)
         (let ok = ref true in
          for k = i to j do
            if (Depvec.elem_signs d.(k)).Dir.neg then ok := false
          done;
          !ok))
       vectors

let serial_fraction ~depth vectors =
  depth - List.length (parallelizable_loops ~depth vectors)
