(** Integer expressions for loop bounds, subscripts, and loop bodies.

    Expressions include the operators needed by the paper's code-generation
    rules: [min]/[max] (Tables 3-4), floor [div]/[mod] (Coalesce
    delinearization), and uninterpreted calls (the sparse-matrix example of
    Figure 4(c) uses [colstr(j)] and [rowidx(k)]). Division is floor division
    (rounds toward negative infinity) and [mod] is its matching remainder, so
    [a = b * (a / b) + a mod b] always holds. *)

type t =
  | Int of int
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** floor division *)
  | Mod of t * t  (** remainder of floor division *)
  | Min of t * t
  | Max of t * t
  | Load of access  (** array read, e.g. [a(i-1, j)] *)
  | Call of string * t list
      (** uninterpreted (loop-invariant) function call; ["abs"] and ["sgn"]
          are interpreted as builtins by the executor *)

and access = { array : string; index : t list }

(** {1 Smart constructors}

    These perform local constant folding and identity elimination, keeping
    generated bounds readable. *)

val int : int -> t
val var : string -> t
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val mod_ : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val min_list : t list -> t
val max_list : t list -> t

val zero : t
val one : t

val ceil_div : t -> int -> t
(** [ceil_div e c] is an expression for ceiling(e / c), [c > 0]. *)

val floor_div : t -> int -> t
(** [floor_div e c] is an expression for floor(e / c), [c > 0]. *)

(** {1 Queries and traversal} *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int
(** Structural hash compatible with [equal]; folds over the whole
    expression (no depth truncation). *)

val hash_combine : int -> int -> int
(** The accumulator step used by [hash]; shared by the other IR hashes
    ({!Stmt.hash}, {!Nest.hash}) so they compose consistently. *)

val free_vars : t -> string list
(** Variables read by the expression, without duplicates, sorted. *)

val arrays : t -> string list
(** Arrays loaded by the expression, without duplicates, sorted. *)

val mentions : string -> t -> bool

val subst : (string * t) list -> t -> t
(** Simultaneous substitution of variables; uses smart constructors. *)

val simplify : t -> t
(** Bottom-up constant folding and algebraic identity cleanup. *)

val to_int : t -> int option
(** [Some n] if the expression simplifies to the literal [n]. *)

val pp : Format.formatter -> t -> unit
val pp_access : Format.formatter -> access -> unit
val to_string : t -> string
