(* Hash-consing of the IR: strings, expressions, statements, nests.

   The IR variants stay public pattern-matchable types (every layer above
   matches on them), so interning is a side layer, not a representation
   change: [expr]/[stmt]/[nest] return the canonical physically-shared
   representative of a term plus its dense intern id. Keys are flat int
   lists over the ids of already-interned children — one table probe per
   node, no recursive structural hashing past the first interning of a
   term. Children are always interned before their parent, so a builder
   never re-enters the table it runs under — exactly the recursion scheme
   {!Itf_mat.Hashcons} supports — and the sharded tables make every
   function here safe to call from any thread on any domain
   concurrently. *)

module HC = Itf_mat.Hashcons
module Str = HC.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

module Tbl = HC.Keyed (HC.Ints_key)

let strings = Str.create "ir.string"
let str_id s = snd (Str.intern strings s)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let exprs : Expr.t Tbl.t = Tbl.create "ir.expr"

let rec expr_i (e : Expr.t) : Expr.t * int =
  let bin tag a b rebuild =
    let a', ai = expr_i a in
    let b', bi = expr_i b in
    Tbl.intern exprs [ tag; ai; bi ] (fun _ ->
        if a' == a && b' == b then e else rebuild a' b')
  in
  match e with
  | Expr.Int n -> Tbl.intern exprs [ 0; n ] (fun _ -> e)
  | Expr.Var v -> Tbl.intern exprs [ 1; str_id v ] (fun _ -> e)
  | Expr.Neg a ->
    let a', ai = expr_i a in
    Tbl.intern exprs [ 2; ai ] (fun _ -> if a' == a then e else Expr.Neg a')
  | Expr.Add (a, b) -> bin 3 a b (fun a b -> Expr.Add (a, b))
  | Expr.Sub (a, b) -> bin 4 a b (fun a b -> Expr.Sub (a, b))
  | Expr.Mul (a, b) -> bin 5 a b (fun a b -> Expr.Mul (a, b))
  | Expr.Div (a, b) -> bin 6 a b (fun a b -> Expr.Div (a, b))
  | Expr.Mod (a, b) -> bin 7 a b (fun a b -> Expr.Mod (a, b))
  | Expr.Min (a, b) -> bin 8 a b (fun a b -> Expr.Min (a, b))
  | Expr.Max (a, b) -> bin 9 a b (fun a b -> Expr.Max (a, b))
  | Expr.Load { array; index } ->
    let idx = List.map expr_i index in
    Tbl.intern exprs
      (10 :: str_id array :: List.map snd idx)
      (fun _ ->
        if List.for_all2 (fun (e', _) e0 -> e' == e0) idx index then e
        else Expr.Load { array; index = List.map fst idx })
  | Expr.Call (f, args) ->
    let xs = List.map expr_i args in
    Tbl.intern exprs
      (11 :: str_id f :: List.map snd xs)
      (fun _ ->
        if List.for_all2 (fun (e', _) e0 -> e' == e0) xs args then e
        else Expr.Call (f, List.map fst xs))

let expr e = fst (expr_i e)
let expr_id e = snd (expr_i e)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let stmts : Stmt.t Tbl.t = Tbl.create "ir.stmt"

let rel_tag = function
  | Stmt.Lt -> 0
  | Stmt.Le -> 1
  | Stmt.Gt -> 2
  | Stmt.Ge -> 3
  | Stmt.Eq -> 4
  | Stmt.Ne -> 5

let rec stmt_i (s : Stmt.t) : Stmt.t * int =
  match s with
  | Stmt.Store (({ array; index } : Expr.access), rhs) ->
    let idx = List.map expr_i index in
    let rhs', ri = expr_i rhs in
    Tbl.intern stmts
      (0 :: str_id array :: ri :: List.map snd idx)
      (fun _ ->
        if rhs' == rhs && List.for_all2 (fun (e', _) e0 -> e' == e0) idx index
        then s
        else Stmt.Store ({ array; index = List.map fst idx }, rhs'))
  | Stmt.Set (v, rhs) ->
    let rhs', ri = expr_i rhs in
    Tbl.intern stmts [ 1; str_id v; ri ] (fun _ ->
        if rhs' == rhs then s else Stmt.Set (v, rhs'))
  | Stmt.Guard { lhs; rel; rhs; body } ->
    let lhs', li = expr_i lhs in
    let rhs', ri = expr_i rhs in
    let bs = List.map stmt_i body in
    Tbl.intern stmts
      (2 :: rel_tag rel :: li :: ri :: List.map snd bs)
      (fun _ ->
        if
          lhs' == lhs && rhs' == rhs
          && List.for_all2 (fun (s', _) s0 -> s' == s0) bs body
        then s
        else Stmt.Guard { lhs = lhs'; rel; rhs = rhs'; body = List.map fst bs })

let stmt s = fst (stmt_i s)
let stmt_id s = snd (stmt_i s)

(* ------------------------------------------------------------------ *)
(* Nests                                                               *)
(* ------------------------------------------------------------------ *)

let nests : Nest.t Tbl.t = Tbl.create "ir.nest"

let nest_i (t : Nest.t) : Nest.t * int =
  let loops =
    List.map
      (fun (l : Nest.loop) ->
        let lo', loi = expr_i l.Nest.lo in
        let hi', hii = expr_i l.Nest.hi in
        let step', si = expr_i l.Nest.step in
        let l' =
          if lo' == l.Nest.lo && hi' == l.Nest.hi && step' == l.Nest.step then l
          else { l with Nest.lo = lo'; hi = hi'; step = step' }
        in
        ( l',
          [
            str_id l.Nest.var;
            loi;
            hii;
            si;
            (match l.Nest.kind with Nest.Do -> 0 | Nest.Pardo -> 1);
          ] ))
      t.Nest.loops
  in
  let inits = List.map stmt_i t.Nest.inits in
  let body = List.map stmt_i t.Nest.body in
  (* Field counts prefix each section so the flat key is unambiguous
     (every loop contributes exactly five ints). *)
  let key =
    List.length loops
    :: List.concat_map snd loops
    @ (List.length inits :: List.map snd inits)
    @ List.map snd body
  in
  Tbl.intern nests key (fun _ ->
      if
        List.for_all2 (fun (l', _) l0 -> l' == l0) loops t.Nest.loops
        && List.for_all2 (fun (s', _) s0 -> s' == s0) inits t.Nest.inits
        && List.for_all2 (fun (s', _) s0 -> s' == s0) body t.Nest.body
      then t
      else
        {
          Nest.loops = List.map fst loops;
          inits = List.map fst inits;
          body = List.map fst body;
        })

let nest t = fst (nest_i t)
let nest_id t = snd (nest_i t)
