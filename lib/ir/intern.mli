(** Hash-consing of the IR (see {!Itf_mat.Hashcons} and DESIGN.md §10).

    The IR types stay public pattern-matchable variants; interning returns
    the canonical physically-shared representative of a term plus a dense
    integer id. Structurally equal terms — however they were constructed —
    intern to the same physical value and the same id, so interned-term
    equality is [(==)] and id equality, both O(1).

    All functions are domain-safe (shared mutex-protected append-only
    tables) and idempotent; re-interning a canonical term is a single
    table probe per node. *)

val expr : Expr.t -> Expr.t
val expr_id : Expr.t -> int

val expr_i : Expr.t -> Expr.t * int
(** Canonical representative and id in one probe. *)

val stmt : Stmt.t -> Stmt.t
val stmt_id : Stmt.t -> int
val stmt_i : Stmt.t -> Stmt.t * int

val nest : Nest.t -> Nest.t
val nest_id : Nest.t -> int
val nest_i : Nest.t -> Nest.t * int

val str_id : string -> int
(** Interned-string id (variable, array, and function names). *)
