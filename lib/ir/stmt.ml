type rel = Lt | Le | Gt | Ge | Eq | Ne

type t =
  | Store of Expr.access * Expr.t
  | Set of string * Expr.t
  | Guard of guard

and guard = { lhs : Expr.t; rel : rel; rhs : Expr.t; body : t list }

let holds rel a b =
  match rel with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b

let equal (a : t) (b : t) = a = b

let rel_tag = function Lt -> 0 | Le -> 1 | Gt -> 2 | Ge -> 3 | Eq -> 4 | Ne -> 5

let rec hash = function
  | Store ({ array; index }, rhs) ->
    List.fold_left
      (fun h e -> Expr.hash_combine h (Expr.hash e))
      (Expr.hash_combine 1 (Hashtbl.hash array))
      (index @ [ rhs ])
  | Set (x, rhs) ->
    Expr.hash_combine (Expr.hash_combine 2 (Hashtbl.hash x)) (Expr.hash rhs)
  | Guard { lhs; rel; rhs; body } ->
    List.fold_left
      (fun h s -> Expr.hash_combine h (hash s))
      (Expr.hash_combine
         (Expr.hash_combine
            (Expr.hash_combine 3 (rel_tag rel))
            (Expr.hash lhs))
         (Expr.hash rhs))
      body

let rec free_vars = function
  | Store ({ index; _ }, rhs) ->
    List.sort_uniq String.compare
      (List.concat_map Expr.free_vars (rhs :: index))
  | Set (_, rhs) -> Expr.free_vars rhs
  | Guard { lhs; rel = _; rhs; body } ->
    List.sort_uniq String.compare
      (Expr.free_vars lhs @ Expr.free_vars rhs
      @ List.concat_map free_vars body)

let defined_var = function
  | Set (x, _) -> Some x
  | Store _ | Guard _ -> None

let rec defined_vars = function
  | Set (x, _) -> [ x ]
  | Store _ -> []
  | Guard { body; _ } -> List.concat_map defined_vars body

let rec arrays_read = function
  | Store ({ index; _ }, rhs) ->
    List.sort_uniq String.compare (List.concat_map Expr.arrays (rhs :: index))
  | Set (_, rhs) -> Expr.arrays rhs
  | Guard { lhs; rhs; body; _ } ->
    List.sort_uniq String.compare
      (Expr.arrays lhs @ Expr.arrays rhs @ List.concat_map arrays_read body)

let rec arrays_written = function
  | Store ({ array; _ }, _) -> [ array ]
  | Set _ -> []
  | Guard { body; _ } ->
    List.sort_uniq String.compare (List.concat_map arrays_written body)

let rec subst env = function
  | Store ({ array; index }, rhs) ->
    Store
      ({ array; index = List.map (Expr.subst env) index }, Expr.subst env rhs)
  | Set (x, rhs) -> Set (x, Expr.subst env rhs)
  | Guard { lhs; rel; rhs; body } ->
    Guard
      {
        lhs = Expr.subst env lhs;
        rel;
        rhs = Expr.subst env rhs;
        body = List.map (subst env) body;
      }

let pp_rel ppf rel =
  Format.pp_print_string ppf
    (match rel with
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | Eq -> "=="
    | Ne -> "!=")

let rec pp ppf = function
  | Store (a, rhs) -> Format.fprintf ppf "%a = %a" Expr.pp_access a Expr.pp rhs
  | Set (x, rhs) -> Format.fprintf ppf "%s = %a" x Expr.pp rhs
  | Guard { lhs; rel; rhs; body } ->
    Format.fprintf ppf "@[<v>if %a %a %a@,%a@,endif@]" Expr.pp lhs pp_rel rel
      Expr.pp rhs
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf s ->
           Format.fprintf ppf "  %a" pp s))
      body
