type kind = Do | Pardo

type loop = {
  var : string;
  lo : Expr.t;
  hi : Expr.t;
  step : Expr.t;
  kind : kind;
}

type t = { loops : loop list; inits : Stmt.t list; body : Stmt.t list }

let make ?(inits = []) loops body =
  if loops = [] then invalid_arg "Nest.make: empty nest";
  let vars = List.map (fun l -> l.var) loops in
  if List.length (List.sort_uniq String.compare vars) <> List.length vars then
    invalid_arg "Nest.make: duplicate loop variables";
  { loops; inits; body }

let loop ?(kind = Do) ?(step = Expr.one) var lo hi = { var; lo; hi; step; kind }

let depth t = List.length t.loops

let loop_vars t = List.map (fun l -> l.var) t.loops

let nth_loop t k = List.nth t.loops k

let all_vars t =
  let bound_vars l =
    List.concat_map Expr.free_vars [ l.lo; l.hi; l.step ]
  in
  let stmt_vars s =
    Stmt.free_vars s @ (match Stmt.defined_var s with Some v -> [ v ] | None -> [])
  in
  List.sort_uniq String.compare
    (loop_vars t
    @ List.concat_map bound_vars t.loops
    @ List.concat_map stmt_vars t.inits
    @ List.concat_map stmt_vars t.body)

let fresh_var t base =
  let used = all_vars t in
  if not (List.mem base used) then base
  else
    let rec go k =
      let cand = Printf.sprintf "%s%d" base k in
      if List.mem cand used then go (k + 1) else cand
    in
    go 2

let symbolic_params t =
  let defined =
    loop_vars t
    @ List.filter_map Stmt.defined_var t.inits
    @ List.filter_map Stmt.defined_var t.body
  in
  let read =
    List.concat_map (fun l -> List.concat_map Expr.free_vars [ l.lo; l.hi; l.step ]) t.loops
    @ List.concat_map Stmt.free_vars t.inits
    @ List.concat_map Stmt.free_vars t.body
  in
  List.sort_uniq String.compare
    (List.filter (fun v -> not (List.mem v defined)) read)

let arrays_read t =
  List.sort_uniq String.compare
    (List.concat_map Stmt.arrays_read (t.inits @ t.body))

let arrays_written t =
  List.sort_uniq String.compare
    (List.concat_map Stmt.arrays_written (t.inits @ t.body))

let equal (a : t) (b : t) = a = b

(* Structural nest hash: every loop header (variable, bounds, step, kind)
   and every statement contributes. Compatible with [equal]; used by the
   search engine to memoize per-nest computations. *)
let hash (t : t) =
  let hash_loop h l =
    List.fold_left Expr.hash_combine h
      [
        Hashtbl.hash l.var;
        Expr.hash l.lo;
        Expr.hash l.hi;
        Expr.hash l.step;
        (match l.kind with Do -> 17 | Pardo -> 23);
      ]
  in
  let hash_stmts h ss =
    List.fold_left (fun h s -> Expr.hash_combine h (Stmt.hash s)) h ss
  in
  hash_stmts (hash_stmts (List.fold_left hash_loop 5381 t.loops) t.inits) t.body

let pp ppf t =
  let indent k = String.make (2 * k) ' ' in
  let n = depth t in
  List.iteri
    (fun k l ->
      let kw = match l.kind with Do -> "do" | Pardo -> "pardo" in
      match Expr.to_int l.step with
      | Some 1 ->
        Format.fprintf ppf "%s%s %s = %a, %a@," (indent k) kw l.var Expr.pp
          l.lo Expr.pp l.hi
      | _ ->
        Format.fprintf ppf "%s%s %s = %a, %a, %a@," (indent k) kw l.var
          Expr.pp l.lo Expr.pp l.hi Expr.pp l.step)
    t.loops;
  List.iter
    (fun s -> Format.fprintf ppf "%s%a@," (indent n) Stmt.pp s)
    (t.inits @ t.body);
  List.iteri
    (fun k _ -> Format.fprintf ppf "%senddo@," (indent (n - 1 - k)))
    t.loops

let pp ppf t = Format.fprintf ppf "@[<v>%a@]" pp t

let to_string t = Format.asprintf "%a" pp t
