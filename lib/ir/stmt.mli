(** Statements of a loop body.

    The framework never changes the body of a perfect loop nest (paper §1) —
    it only prepends {e initialization statements} that define the original
    index variables as functions of the new ones (paper §2, item 4b).
    Guarded blocks cover bodies like paper Figure 2(a)'s
    [if (...) b(j) = a(i-1, j+1)]. *)

type rel = Lt | Le | Gt | Ge | Eq | Ne

type t =
  | Store of Expr.access * Expr.t  (** [a(i, j) = e] *)
  | Set of string * Expr.t  (** [x = e] — scalar/init statement *)
  | Guard of guard  (** [if lhs REL rhs then body endif] *)

and guard = { lhs : Expr.t; rel : rel; rhs : Expr.t; body : t list }

val holds : rel -> int -> int -> bool
val pp_rel : Format.formatter -> rel -> unit

val equal : t -> t -> bool

val hash : t -> int
(** Structural hash compatible with [equal]. *)

val free_vars : t -> string list
(** Variables read by the statement (not the stored-to scalar). *)

val defined_var : t -> string option
(** [Some x] for a top-level [Set (x, _)]. *)

val defined_vars : t -> string list
(** Every scalar the statement may assign, including under guards. *)

val arrays_read : t -> string list
val arrays_written : t -> string list

val subst : (string * Expr.t) list -> t -> t
(** Substitute in right-hand sides and subscripts (not in defined names). *)

val pp : Format.formatter -> t -> unit
