type t =
  | Int of int
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Min of t * t
  | Max of t * t
  | Load of access
  | Call of string * t list

and access = { array : string; index : t list }

let int n = Int n
let var v = Var v
let zero = Int 0
let one = Int 1

(* Floor division and its remainder; keep in sync with the executor. *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let fmod a b = a - (b * fdiv a b)

(* Structural equality and ordering. Hand-rolled rather than the
   polymorphic primitives so hot comparisons short-circuit on physical
   equality (shared subtrees are common after substitution) and never pay
   the generic tag-dispatch walk. The order is identical to the one
   [Stdlib.compare] produced: constructors by declaration order, fields
   left to right. *)
let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Int x, Int y -> x = y
  | Var x, Var y -> String.equal x y
  | Neg x, Neg y -> equal x y
  | Add (a1, b1), Add (a2, b2)
  | Sub (a1, b1), Sub (a2, b2)
  | Mul (a1, b1), Mul (a2, b2)
  | Div (a1, b1), Div (a2, b2)
  | Mod (a1, b1), Mod (a2, b2)
  | Min (a1, b1), Min (a2, b2)
  | Max (a1, b1), Max (a2, b2) -> equal a1 a2 && equal b1 b2
  | Load a1, Load a2 -> String.equal a1.array a2.array && equal_list a1.index a2.index
  | Call (f, xs), Call (g, ys) -> String.equal f g && equal_list xs ys
  | _ -> false

and equal_list xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs, y :: ys -> equal x y && equal_list xs ys
  | _ -> false

let tag = function
  | Int _ -> 0
  | Var _ -> 1
  | Neg _ -> 2
  | Add _ -> 3
  | Sub _ -> 4
  | Mul _ -> 5
  | Div _ -> 6
  | Mod _ -> 7
  | Min _ -> 8
  | Max _ -> 9
  | Load _ -> 10
  | Call _ -> 11

let rec compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Int x, Int y -> Int.compare x y
    | Var x, Var y -> String.compare x y
    | Neg x, Neg y -> compare x y
    | Add (a1, b1), Add (a2, b2)
    | Sub (a1, b1), Sub (a2, b2)
    | Mul (a1, b1), Mul (a2, b2)
    | Div (a1, b1), Div (a2, b2)
    | Mod (a1, b1), Mod (a2, b2)
    | Min (a1, b1), Min (a2, b2)
    | Max (a1, b1), Max (a2, b2) ->
      let c = compare a1 a2 in
      if c <> 0 then c else compare b1 b2
    | Load a1, Load a2 ->
      let c = String.compare a1.array a2.array in
      if c <> 0 then c else compare_list a1.index a2.index
    | Call (f, xs), Call (g, ys) ->
      let c = String.compare f g in
      if c <> 0 then c else compare_list xs ys
    | _ -> Int.compare (tag a) (tag b)

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs ys

let rec neg = function
  | Int n -> Int (-n)
  | Neg e -> e
  | Sub (a, b) -> sub b a
  | e -> Neg e

and add a b =
  match (a, b) with
  | Int x, Int y -> Int (x + y)
  | Int 0, e | e, Int 0 -> e
  | Add (e, Int x), Int y | Int y, Add (e, Int x) -> add e (Int (x + y))
  | Sub (e, Int x), Int y | Int y, Sub (e, Int x) ->
    if y - x >= 0 then add e (Int (y - x)) else sub e (Int (x - y))
  | e, Int n when n < 0 -> Sub (e, Int (-n))
  | Int n, e when n < 0 && n <> min_int -> Sub (e, Int (-n))
  | a, Neg b -> sub a b
  | Neg a, b -> sub b a
  | _ -> Add (a, b)

and sub a b =
  match (a, b) with
  | Int x, Int y -> Int (x - y)
  | e, Int 0 -> e
  | Add (e, Int x), Int y -> add e (Int (x - y))
  | Sub (e, Int x), Int y -> sub e (Int (x + y))
  | e, Int n when n < 0 -> add e (Int (-n))
  | a, Neg b -> add a b
  | a, Sub (b, c) when equal a b -> c
  | a, b when equal a b -> Int 0
  | _ -> Sub (a, b)

let mul a b =
  match (a, b) with
  | Int x, Int y -> Int (x * y)
  | Int 0, _ | _, Int 0 -> Int 0
  | Int 1, e | e, Int 1 -> e
  | Int (-1), e | e, Int (-1) -> neg e
  | _ -> Mul (a, b)

let div a b =
  match (a, b) with
  | Int x, Int y when y <> 0 -> Int (fdiv x y)
  | e, Int 1 -> e
  | _ -> Div (a, b)

let mod_ a b =
  match (a, b) with
  | Int x, Int y when y <> 0 -> Int (fmod x y)
  | _, Int 1 -> Int 0
  | _ -> Mod (a, b)

let min_ a b =
  match (a, b) with
  | Int x, Int y -> Int (Stdlib.min x y)
  | a, b when equal a b -> a
  | _ -> Min (a, b)

let max_ a b =
  match (a, b) with
  | Int x, Int y -> Int (Stdlib.max x y)
  | a, b when equal a b -> a
  | _ -> Max (a, b)

let min_list = function
  | [] -> invalid_arg "Expr.min_list: empty"
  | e :: es -> List.fold_left min_ e es

let max_list = function
  | [] -> invalid_arg "Expr.max_list: empty"
  | e :: es -> List.fold_left max_ e es

let ceil_div e c =
  if c <= 0 then invalid_arg "Expr.ceil_div: non-positive divisor";
  if c = 1 then e else div (add e (Int (c - 1))) (Int c)

let floor_div e c =
  if c <= 0 then invalid_arg "Expr.floor_div: non-positive divisor";
  div e (Int c)

(* Structural hash, compatible with [equal]. A hand-rolled fold (rather
   than [Hashtbl.hash]) so that deep expressions — skewed bounds grow with
   every composed transformation — hash on their full structure instead of
   the truncated prefix the polymorphic hash looks at. *)
let hash_combine h k = (h * 31) + k

let rec hash = function
  | Int n -> hash_combine 1 n
  | Var v -> hash_combine 2 (Hashtbl.hash v)
  | Neg e -> hash_combine 3 (hash e)
  | Add (a, b) -> hash_combine (hash_combine 4 (hash a)) (hash b)
  | Sub (a, b) -> hash_combine (hash_combine 5 (hash a)) (hash b)
  | Mul (a, b) -> hash_combine (hash_combine 6 (hash a)) (hash b)
  | Div (a, b) -> hash_combine (hash_combine 7 (hash a)) (hash b)
  | Mod (a, b) -> hash_combine (hash_combine 8 (hash a)) (hash b)
  | Min (a, b) -> hash_combine (hash_combine 9 (hash a)) (hash b)
  | Max (a, b) -> hash_combine (hash_combine 10 (hash a)) (hash b)
  | Load { array; index } ->
    List.fold_left
      (fun h e -> hash_combine h (hash e))
      (hash_combine 11 (Hashtbl.hash array))
      index
  | Call (f, args) ->
    List.fold_left
      (fun h e -> hash_combine h (hash e))
      (hash_combine 12 (Hashtbl.hash f))
      args

let rec fold_vars f acc = function
  | Int _ -> acc
  | Var v -> f acc v
  | Neg e -> fold_vars f acc e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Min (a, b) | Max (a, b) ->
    fold_vars f (fold_vars f acc a) b
  | Load { index; _ } | Call (_, index) ->
    List.fold_left (fold_vars f) acc index

let free_vars e =
  List.sort_uniq String.compare (fold_vars (fun acc v -> v :: acc) [] e)

let rec fold_arrays f acc = function
  | Int _ | Var _ -> acc
  | Neg e -> fold_arrays f acc e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Min (a, b) | Max (a, b) ->
    fold_arrays f (fold_arrays f acc a) b
  | Load { array; index } ->
    List.fold_left (fold_arrays f) (f acc array) index
  | Call (_, args) -> List.fold_left (fold_arrays f) acc args

let arrays e =
  List.sort_uniq String.compare (fold_arrays (fun acc a -> a :: acc) [] e)

let mentions v e = List.mem v (free_vars e)

let rec subst env e =
  match e with
  | Int _ -> e
  | Var v -> ( match List.assoc_opt v env with Some e' -> e' | None -> e)
  | Neg a -> neg (subst env a)
  | Add (a, b) -> add (subst env a) (subst env b)
  | Sub (a, b) -> sub (subst env a) (subst env b)
  | Mul (a, b) -> mul (subst env a) (subst env b)
  | Div (a, b) -> div (subst env a) (subst env b)
  | Mod (a, b) -> mod_ (subst env a) (subst env b)
  | Min (a, b) -> min_ (subst env a) (subst env b)
  | Max (a, b) -> max_ (subst env a) (subst env b)
  | Load { array; index } -> Load { array; index = List.map (subst env) index }
  | Call (f, args) -> (
    match (f, List.map (subst env) args) with
    | "abs", [ Int n ] -> Int (Stdlib.abs n)
    | "sgn", [ Int n ] -> Int (Stdlib.compare n 0)
    | f, args -> Call (f, args))

let simplify e = subst [] e

let to_int e = match simplify e with Int n -> Some n | _ -> None

(* Precedence climbing for readable output:
   0 = min/max/call atoms handled separately, additive = 1,
   multiplicative = 2, unary = 3, atom = 4. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Int n ->
    if n < 0 then paren 3 (fun ppf -> Format.fprintf ppf "%d" n)
    else Format.fprintf ppf "%d" n
  | Var v -> Format.fprintf ppf "%s" v
  | Neg a -> paren 3 (fun ppf -> Format.fprintf ppf "-%a" (pp_prec 4) a)
  | Add (a, b) ->
    paren 1 (fun ppf -> Format.fprintf ppf "%a + %a" (pp_prec 1) a (pp_prec 2) b)
  | Sub (a, b) ->
    paren 1 (fun ppf -> Format.fprintf ppf "%a - %a" (pp_prec 1) a (pp_prec 2) b)
  | Mul (a, b) ->
    paren 2 (fun ppf -> Format.fprintf ppf "%a * %a" (pp_prec 2) a (pp_prec 3) b)
  | Div (a, b) ->
    paren 2 (fun ppf -> Format.fprintf ppf "%a / %a" (pp_prec 2) a (pp_prec 3) b)
  | Mod (a, b) ->
    paren 2 (fun ppf ->
        Format.fprintf ppf "%a mod %a" (pp_prec 2) a (pp_prec 3) b)
  | Min (_, _) ->
    let rec flatten = function
      | Min (a, b) -> flatten a @ flatten b
      | e -> [ e ]
    in
    Format.fprintf ppf "min(%a)" pp_args (flatten e)
  | Max (_, _) ->
    let rec flatten = function
      | Max (a, b) -> flatten a @ flatten b
      | e -> [ e ]
    in
    Format.fprintf ppf "max(%a)" pp_args (flatten e)
  | Load a -> pp_access ppf a
  | Call (f, args) -> Format.fprintf ppf "%s(%a)" f pp_args args

and pp_args ppf = function
  | [] -> ()
  | [ e ] -> pp_prec 0 ppf e
  | e :: rest -> Format.fprintf ppf "%a, %a" (pp_prec 0) e pp_args rest

and pp_access ppf { array; index } =
  Format.fprintf ppf "%s(%a)" array pp_args index

let pp = pp_prec 0
let to_string e = Format.asprintf "%a" pp e
