(** Perfect loop nests — the objects the framework transforms.

    A nest is an ordered list of loops (outermost first), a list of
    initialization statements (paper Figure 3: they define the original index
    variables as functions of the new ones and run at the top of the body on
    every innermost iteration), and the unchanged loop body. *)

type kind = Do | Pardo  (** sequential / parallel loop (paper Figure 3) *)

type loop = {
  var : string;
  lo : Expr.t;
  hi : Expr.t;
  step : Expr.t;
  kind : kind;
}

type t = { loops : loop list; inits : Stmt.t list; body : Stmt.t list }

val make : ?inits:Stmt.t list -> loop list -> Stmt.t list -> t
(** @raise Invalid_argument on duplicate loop variables or empty nest. *)

val loop : ?kind:kind -> ?step:Expr.t -> string -> Expr.t -> Expr.t -> loop
(** [loop v lo hi] is a sequential loop with step 1 by default. *)

val depth : t -> int

val loop_vars : t -> string list
(** Loop variables, outermost first. *)

val nth_loop : t -> int -> loop
(** 0-based, outermost first. *)

val all_vars : t -> string list
(** Every variable name occurring anywhere (loop vars, bounds, inits, body);
    used to generate fresh names. *)

val fresh_var : t -> string -> string
(** [fresh_var t base] is [base] if unused in [t], else [base], [base']...
    with numeric suffixes until unused. *)

val symbolic_params : t -> string list
(** Free variables of the nest that are not loop variables and not defined by
    init statements (e.g. the array size [n]). *)

val arrays_read : t -> string list
val arrays_written : t -> string list

val equal : t -> t -> bool

val hash : t -> int
(** Structural hash compatible with [equal]: loop headers (variables,
    bounds, steps, kinds), init statements and body all contribute. *)

val pp : Format.formatter -> t -> unit
(** Renders in the paper's concrete syntax: [do i = lo, hi, step] /
    [pardo ...] ... [enddo]. *)

val to_string : t -> string
