type value = Bool of bool | Int of int | Float of float | String of string

type span = {
  name : string;
  attrs : (string * value) list;
  start_s : float;
  dur_s : float;
  children : span list;
}

type open_span = {
  o_name : string;
  o_start : float;
  mutable o_attrs_rev : (string * value) list;
  mutable o_children_rev : span list;
}

type state = {
  clock : unit -> float;
  mutable stack : open_span list;  (* innermost first *)
  mutable roots_rev : span list;
}

type t = Disabled | Active of state

let null = Disabled
let create ?(clock = Unix.gettimeofday) () = Active { clock; stack = []; roots_rev = [] }
let enabled = function Disabled -> false | Active _ -> true

let attach st sp =
  match st.stack with
  | [] -> st.roots_rev <- sp :: st.roots_rev
  | parent :: _ -> parent.o_children_rev <- sp :: parent.o_children_rev

let close st o =
  let now = st.clock () in
  (match st.stack with
  | top :: rest when top == o -> st.stack <- rest
  | _ ->
    (* unbalanced exit (an inner span leaked open); drop down to [o] *)
    let rec pop = function
      | top :: rest when top == o -> rest
      | _ :: rest -> pop rest
      | [] -> []
    in
    st.stack <- pop st.stack);
  attach st
    {
      name = o.o_name;
      attrs = List.rev o.o_attrs_rev;
      start_s = o.o_start;
      dur_s = now -. o.o_start;
      children = List.rev o.o_children_rev;
    }

let span t ?attrs name f =
  match t with
  | Disabled -> f ()
  | Active st ->
    let o =
      {
        o_name = name;
        o_start = st.clock ();
        o_attrs_rev =
          (match attrs with None -> [] | Some mk -> List.rev (mk ()));
        o_children_rev = [];
      }
    in
    st.stack <- o :: st.stack;
    Fun.protect ~finally:(fun () -> close st o) f

let add_attrs t attrs =
  match t with
  | Disabled -> ()
  | Active st -> (
    match st.stack with
    | [] -> ()
    | o :: _ -> o.o_attrs_rev <- List.rev_append attrs o.o_attrs_rev)

let fork = function
  | Disabled -> Disabled
  | Active st -> Active { clock = st.clock; stack = []; roots_rev = [] }

let join t children =
  match t with
  | Disabled -> ()
  | Active st ->
    List.iter
      (function
        | Disabled -> ()
        | Active child -> List.iter (attach st) (List.rev child.roots_rev))
      children

let roots = function
  | Disabled -> []
  | Active st -> List.rev st.roots_rev

(* ------------------------------------------------------------------ *)
(* Head sampling                                                       *)
(* ------------------------------------------------------------------ *)

(* FNV-1a, 64-bit, spelled out rather than [Hashtbl.hash] so the
   keep/drop decision is a documented, stable function of the fingerprint
   bytes — reruns (and other implementations) sample identically. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let head_keep ~sample_rate ~fingerprint =
  if sample_rate >= 1. then true
  else if sample_rate <= 0. then false
  else
    (* FNV-1a has weak avalanche on the trailing bytes (the final multiply
       moves a last-byte delta only into bits ~0-9 and ~40-49), so similar
       fingerprints would draw nearly identical values; the murmur3
       finalizer below achieves full avalanche before we take 32 bits as a
       uniform draw in [0, 1). Keep iff the draw is below the rate; the
       set of kept fingerprints at rate r is a subset of the set kept at
       any r' >= r. *)
    let mix h =
      let h = Int64.logxor h (Int64.shift_right_logical h 33) in
      let h = Int64.mul h 0xff51afd7ed558ccdL in
      let h = Int64.logxor h (Int64.shift_right_logical h 33) in
      let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
      Int64.logxor h (Int64.shift_right_logical h 33)
    in
    let draw =
      Int64.to_float (Int64.logand (mix (fnv1a64 fingerprint)) 0xFFFFFFFFL)
      /. 4294967296.0
    in
    draw < sample_rate

(* ------------------------------------------------------------------ *)
(* Ambient tracer (domain-local)                                       *)
(* ------------------------------------------------------------------ *)

let ambient_key = Domain.DLS.new_key (fun () -> Disabled)
let ambient () = Domain.DLS.get ambient_key

let with_ambient t f =
  let old = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key old) f

(* ------------------------------------------------------------------ *)
(* Serialization and comparison                                        *)
(* ------------------------------------------------------------------ *)

let value_json = function
  | Bool b -> Json.Bool b
  | Int n -> Json.Int n
  | Float x -> Json.Float x
  | String s -> Json.String s

let span_json ~id ~parent (s : span) =
  Json.Obj
    [
      ("id", Json.Int id);
      ("parent", match parent with None -> Json.Null | Some p -> Json.Int p);
      ("name", Json.String s.name);
      ("start_s", Json.Float s.start_s);
      ("dur_s", Json.Float s.dur_s);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, value_json v)) s.attrs));
    ]

let fold_jsonl f acc spans =
  let next = ref 0 in
  let acc = ref acc in
  let rec go parent s =
    let id = !next in
    incr next;
    acc := f !acc (Json.to_string (span_json ~id ~parent s));
    List.iter (go (Some id)) s.children
  in
  List.iter (go None) spans;
  !acc

let write_jsonl oc spans =
  ignore
    (fold_jsonl
       (fun () line ->
         output_string oc line;
         output_char oc '\n')
       () spans)

let jsonl_lines spans = List.rev (fold_jsonl (fun acc l -> l :: acc) [] spans)

let rec equal_shape a b =
  String.equal a.name b.name
  && a.attrs = b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2 equal_shape a.children b.children

let pp_value ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float x -> Format.fprintf ppf "%g" x
  | String s -> Format.fprintf ppf "%S" s

let rec pp ppf (s : span) =
  Format.fprintf ppf "@[<v 2>%s" s.name;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v) s.attrs;
  List.iter (fun c -> Format.fprintf ppf "@,%a" pp c) s.children;
  Format.fprintf ppf "@]"
