(** A registry of named counters, gauges and histograms.

    Instruments are identified by a name plus an optional label set
    (["legality.rejections" {reason=bound-type}]). Handles are
    find-or-create: asking twice for the same (name, labels) returns the
    same instrument, so independently-constructed components accumulate
    into shared totals.

    {b Multicore}: instrument {e updates} are atomic and commutative
    (counter adds, histogram bucket increments), so totals are
    deterministic regardless of domain scheduling; handle {e creation}
    takes a registry lock and is safe from any domain. Gauges are
    last-write-wins and should be set from one domain.

    {b Determinism}: a histogram stores bucket counts only (no float sum),
    precisely so that parallel and sequential runs of the same work dump
    identical registries — float accumulation order would not commute. *)

type t

val create : unit -> t

type counter
type gauge
type histogram

val counter : t -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** [buckets] are upper bounds of the counting buckets, sorted ascending;
    an implicit overflow bucket is added. Default:
    [1, 10, 100, 1e3, ..., 1e9]. Re-opening an existing histogram ignores
    [buckets].
    @raise Invalid_argument if the (name, labels) pair already names an
    instrument of another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Increment the first bucket whose upper bound is [>= x] (the overflow
    bucket if none). *)

val merge_into : into:t -> t -> unit
(** Fold a registry into another: counters and histogram buckets add,
    gauges overwrite. Histograms must have matching buckets. *)

val dump : t -> Json.t
(** Deterministic (sorted by name, then labels) machine-readable dump:
    [{"schema": 1, "metrics": [{"name", "labels", "type", ...}, ...]}]. *)

val pp : Format.formatter -> t -> unit
(** One instrument per line, sorted: [name{k=v,...} value]. *)
