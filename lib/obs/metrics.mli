(** A registry of named counters, gauges and histograms.

    Instruments are identified by a name plus an optional label set
    (["legality.rejections" {reason=bound-type}]). Handles are
    find-or-create: asking twice for the same (name, labels) returns the
    same instrument, so independently-constructed components accumulate
    into shared totals.

    {b Multicore}: instrument {e updates} are atomic and commutative
    (counter adds, histogram bucket increments, the fixed-point histogram
    sum), so totals are deterministic regardless of domain scheduling;
    handle {e creation} takes a registry lock and is safe from any domain.
    Gauge {!set} is last-write-wins (absolute values should come from one
    writer at a time); {!gauge_add} is a CAS loop, safe for concurrent
    +/- level tracking from any domain.

    {b Determinism}: a histogram stores integer bucket counts plus an
    integer fixed-point sum (thousandths of a unit) — never a float
    accumulator — precisely so that parallel and sequential runs of the
    same work dump identical registries: integer addition commutes, float
    accumulation order does not. Quantiles ({!quantile}) are likewise a
    pure function of the bucket counts. *)

type t

val create : unit -> t

type counter
type gauge
type histogram

val counter : t -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?labels:(string * string) list -> string -> gauge

val log_linear : lo:float -> hi:float -> float array
(** A 1-2-5 log-linear bucket series: [lo, 2lo, 5lo, 10lo, 20lo, ...] up
    to the first bound [>= hi]. Three buckets per decade keeps quantile
    interpolation error within ~2.5x anywhere on the range.
    @raise Invalid_argument unless [0 < lo < hi]. *)

val duration_buckets : float array
(** [log_linear ~lo:1. ~hi:1e8] — duration buckets in {e microseconds},
    1us to 100s. The shared layout for every duration histogram, so
    registries merge without bucket mismatches. *)

val histogram :
  t -> ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** [buckets] are upper bounds of the counting buckets, sorted ascending;
    an implicit overflow bucket is added. Default:
    [1, 10, 100, 1e3, ..., 1e9]. Re-opening an existing histogram ignores
    [buckets].
    @raise Invalid_argument if the (name, labels) pair already names an
    instrument of another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val gauge_add : gauge -> float -> unit
(** [gauge_add g by] atomically adds [by] (a CAS loop, so concurrent adds
    from different domains all land — unlike {!set}, which is
    last-write-wins). Use for level gauges maintained by +1/-1 updates,
    e.g. [serve.queue.depth] and [serve.workers.busy]. *)

val observe : histogram -> float -> unit
(** Increment the first bucket whose upper bound is [>= x] (the overflow
    bucket if none) and add [x] — rounded to a thousandth — to the
    fixed-point sum. *)

val histogram_count : histogram -> int
(** Total number of observations (the sum of all bucket counts). *)

val histogram_sum : histogram -> float
(** Sum of observed values, at 1/1000 resolution per observation. *)

val quantile : histogram -> float -> float option
(** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1], clamped)
    from the bucket counts: linear interpolation inside the bucket holding
    the target rank (lower edge [0] for the first bucket); a rank landing
    in the overflow bucket saturates at the last finite bound. [None] on
    an empty histogram. Monotone in [q], and deterministic — two runs
    making the same observations report identical quantiles. *)

val quantile_of_counts :
  buckets:float array -> counts:int array -> float -> float option
(** The same estimator as a pure function of a bucket layout and count
    array ([counts] carries the trailing overflow slot) — for consumers
    reading a serialized {!dump} rather than a live registry. *)

val merge_into : into:t -> t -> unit
(** Fold a registry into another: counters, histogram buckets and
    histogram sums add, gauges overwrite.
    @raise Invalid_argument on a histogram bucket-layout mismatch; the
    message names the metric and both bucket arrays. *)

val dump : t -> Json.t
(** Deterministic (sorted by name, then labels) machine-readable dump:
    [{"schema": 1, "metrics": [{"name", "labels", "type", ...}, ...]}].
    Histogram entries carry ["buckets"], ["counts"], ["count"] and
    ["sum"]. *)

val dump_prometheus : t -> string
(** The registry in the Prometheus text exposition format: one
    [# TYPE name kind] comment per metric name, [name{labels} value]
    sample lines, and for histograms the conventional cumulative
    [name_bucket{...,le="bound"}] series ending at [le="+Inf"] plus
    [name_sum]/[name_count]. Metric and label names are sanitized to
    [[a-zA-Z0-9_:]] (so ["serve.requests"] exposes as
    [serve_requests]); label values are escaped. Sorted and
    deterministic like {!dump}. *)

val pp : Format.formatter -> t -> unit
(** One instrument per line, sorted: [name{k=v,...} value]; histograms
    render [count], [sum], [mean] and the p50/p90/p99 quantiles. *)
