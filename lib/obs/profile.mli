(** Folding a span tree into a flamegraph table.

    A profile aggregates spans {e per name}: how many times the span ran,
    its total (inclusive) time, and its {b self time} — total minus the
    time spent in child spans, i.e. the time genuinely attributable to
    that span's own code. Rows sort by self time descending, so the top
    of the table is where the wall clock actually went — the textual
    equivalent of the widest frames of a flamegraph.

    Two entry points cover both ends of the pipeline: {!of_spans} folds a
    live {!Tracer} forest (used by [loopt serve] to profile each request
    in memory, no serialization round-trip), and {!of_lines} folds a
    JSONL trace written by {!Tracer.write_jsonl} (used by
    [loopt report --profile]). The two agree on the same tree. *)

type row = { name : string; count : int; total_s : float; self_s : float }

val of_spans : Tracer.span list -> row list
(** Aggregate a completed span forest per name, sorted by self time
    descending (name ascending on ties). Self time is clamped at [0] per
    span, as in {!Report}. *)

val of_lines : string list -> (row list, string) result
(** The same aggregation from a JSONL trace; shares {!Report}'s parser,
    so malformed lines produce the same positioned errors. *)

val top : int -> row list -> row list
(** The first [n] rows (the list is already sorted by self time). *)

val to_json : row list -> Json.t
(** Rows as a JSON array of
    [{"name", "count", "total_us", "self_us"}] objects — the shape
    embedded in serve's slow-log records. *)

val pp : Format.formatter -> row list -> unit
(** Fixed-width table with a [self%] column (share of the summed self
    time). *)
