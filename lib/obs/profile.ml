type row = { name : string; count : int; total_s : float; self_s : float }

let by_self a b =
  let c = Float.compare b.self_s a.self_s in
  if c <> 0 then c else String.compare a.name b.name

let of_spans spans =
  let agg = Hashtbl.create 16 in
  let rec go (s : Tracer.span) =
    let child_dur =
      List.fold_left (fun acc c -> acc +. c.Tracer.dur_s) 0. s.Tracer.children
    in
    let row =
      match Hashtbl.find_opt agg s.Tracer.name with
      | Some r -> r
      | None -> { name = s.Tracer.name; count = 0; total_s = 0.; self_s = 0. }
    in
    Hashtbl.replace agg s.Tracer.name
      {
        row with
        count = row.count + 1;
        total_s = row.total_s +. s.Tracer.dur_s;
        self_s = row.self_s +. Float.max 0. (s.Tracer.dur_s -. child_dur);
      };
    List.iter go s.Tracer.children
  in
  List.iter go spans;
  List.sort by_self (Hashtbl.fold (fun _ r acc -> r :: acc) agg [])

let of_lines lines =
  match Report.of_lines lines with
  | Error _ as e -> e
  | Ok rows ->
    Ok
      (List.sort by_self
         (List.map
            (fun (r : Report.row) ->
              {
                name = r.Report.name;
                count = r.Report.count;
                total_s = r.Report.total_s;
                self_s = r.Report.self_s;
              })
            rows))

let top n rows = List.filteri (fun k _ -> k < n) rows

let to_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.String r.name);
             ("count", Json.Int r.count);
             ("total_us", Json.Float (r.total_s *. 1e6));
             ("self_us", Json.Float (r.self_s *. 1e6));
           ])
       rows)

let pp ppf rows =
  let grand_self =
    List.fold_left (fun acc r -> acc +. r.self_s) 0. rows
  in
  Format.fprintf ppf "%-28s %8s %12s %12s %7s@." "span" "count" "total_s"
    "self_s" "self%";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-28s %8d %12.6f %12.6f %6.1f%%@." r.name r.count
        r.total_s r.self_s
        (if grand_self > 0. then 100. *. r.self_s /. grand_self else 0.))
    rows
