(** Rendering a JSONL span trace into a per-phase summary.

    Reads the lines written by {!Tracer.write_jsonl}, rebuilds the span
    forest, and aggregates per span name: invocation count, total
    (inclusive) time, self time (total minus the children's totals), and
    min/max durations. This is the engine behind [loopt report]. *)

type row = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  min_s : float;
  max_s : float;
}

val of_lines : string list -> (row list, string) result
(** Aggregate parsed spans per name, sorted by total time descending.
    Blank lines are skipped; a malformed line is an error naming its
    (1-based) position. *)

val counters : string list -> ((string * int) list, string) result
(** Sum every integer attribute across spans, keyed
    ["span-name.attr-name"] and sorted — the trace-derived counter view
    (boolean/string/float attributes are ignored). *)

val pp : Format.formatter -> row list -> unit
(** Fixed-width table. *)

val pp_metrics_file : Format.formatter -> Json.t -> unit
(** Render a {!Metrics.dump} document as a [name{labels} value] table.
    Histograms print count, sum, mean and the p50/p90/p99 quantiles
    (computed from the dumped bucket counts with
    {!Metrics.quantile_of_counts}); dumps predating the ["sum"] field
    render ["-"] for sum and mean but still get quantiles, which need
    only the counts. *)
