type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let hex = "0123456789abcdef"

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b "\\u00";
        Buffer.add_char b hex.[Char.code c lsr 4];
        Buffer.add_char b hex.[Char.code c land 15]
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_into b x =
  if not (Float.is_finite x) then Buffer.add_string b "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" x)
  else Buffer.add_string b (Printf.sprintf "%.12g" x)

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float x -> float_into b x
  | String s -> escape_into b s
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ", ";
        to_buffer b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        escape_into b k;
        Buffer.add_string b ": ";
        to_buffer b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Fail of string

let utf8_into b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let keyword w v =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ w)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'; incr pos
        | '\\' -> Buffer.add_char b '\\'; incr pos
        | '/' -> Buffer.add_char b '/'; incr pos
        | 'n' -> Buffer.add_char b '\n'; incr pos
        | 'r' -> Buffer.add_char b '\r'; incr pos
        | 't' -> Buffer.add_char b '\t'; incr pos
        | 'b' -> Buffer.add_char b '\b'; incr pos
        | 'f' -> Buffer.add_char b '\012'; incr pos
        | 'u' ->
          incr pos;
          let cp = hex4 () in
          let cp =
            (* surrogate pair *)
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 2 <= n
               && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              else fail "unpaired surrogate"
            end
            else cp
          in
          utf8_into b cp
        | _ -> fail "unknown escape");
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if !pos < n && s.[!pos] = '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then fail "expected digits"
    in
    digits ();
    let isfloat = ref false in
    if !pos < n && s.[!pos] = '.' then begin
      isfloat := true;
      incr pos;
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      isfloat := true;
      incr pos;
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then incr pos;
      digits ()
    end;
    let lit = String.sub s start (!pos - start) in
    if !isfloat then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some k -> Int k
      | None -> Float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input";
    match s.[!pos] with
    | 'n' -> keyword "null" Null
    | 't' -> keyword "true" (Bool true)
    | 'f' -> keyword "false" (Bool false)
    | '"' -> String (parse_string ())
    | '[' ->
      incr pos;
      skip_ws ();
      if !pos < n && s.[!pos] = ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value () :: !items;
          skip_ws ();
          if !pos < n && s.[!pos] = ',' then begin
            incr pos;
            go ()
          end
          else expect ']'
        in
        go ();
        List (List.rev !items)
      end
    | '{' ->
      incr pos;
      skip_ws ();
      if !pos < n && s.[!pos] = '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let items = ref [] in
        let rec go () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          items := (k, v) :: !items;
          skip_ws ();
          if !pos < n && s.[!pos] = ',' then begin
            incr pos;
            go ()
          end
          else expect '}'
        in
        go ();
        Obj (List.rev !items)
      end
    | '-' | '0' .. '9' -> parse_number ()
    | c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input after value";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg
  | exception Stdlib.Failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float x -> Some x
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let equal (a : t) (b : t) = a = b
