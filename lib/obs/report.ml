type row = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  min_s : float;
  max_s : float;
}

type rec_span = {
  r_name : string;
  r_dur : float;
  r_parent : int option;
  r_attrs : (string * Json.t) list;
  mutable r_child_dur : float;
}

let parse_lines lines =
  let spans = Hashtbl.create 64 in
  let order = ref [] in
  let err = ref None in
  List.iteri
    (fun k line ->
      if !err = None && String.trim line <> "" then
        let fail msg = err := Some (Printf.sprintf "line %d: %s" (k + 1) msg) in
        match Json.of_string line with
        | Error m -> fail m
        | Ok j -> (
          let id = Option.bind (Json.member "id" j) Json.to_int in
          let name = Option.bind (Json.member "name" j) Json.to_str in
          let dur = Option.bind (Json.member "dur_s" j) Json.to_float in
          let parent =
            match Json.member "parent" j with
            | Some (Json.Int p) -> Some (Some p)
            | Some Json.Null | None -> Some None
            | Some _ -> None
          in
          let attrs =
            match Json.member "attrs" j with
            | Some (Json.Obj kvs) -> kvs
            | _ -> []
          in
          match (id, name, dur, parent) with
          | Some id, Some name, Some dur, Some parent ->
            let s =
              {
                r_name = name;
                r_dur = dur;
                r_parent = parent;
                r_attrs = attrs;
                r_child_dur = 0.;
              }
            in
            Hashtbl.replace spans id s;
            order := s :: !order
          | _ -> fail "span record missing id/name/dur_s/parent"))
    lines;
  match !err with
  | Some e -> Error e
  | None -> Ok (spans, List.rev !order)

let of_lines lines =
  match parse_lines lines with
  | Error _ as e -> e
  | Ok (spans, order) ->
    List.iter
      (fun s ->
        match s.r_parent with
        | None -> ()
        | Some p -> (
          match Hashtbl.find_opt spans p with
          | Some parent -> parent.r_child_dur <- parent.r_child_dur +. s.r_dur
          | None -> ()))
      order;
    let agg = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let row =
          match Hashtbl.find_opt agg s.r_name with
          | Some r -> r
          | None ->
            {
              name = s.r_name;
              count = 0;
              total_s = 0.;
              self_s = 0.;
              min_s = infinity;
              max_s = neg_infinity;
            }
        in
        Hashtbl.replace agg s.r_name
          {
            row with
            count = row.count + 1;
            total_s = row.total_s +. s.r_dur;
            self_s = row.self_s +. Float.max 0. (s.r_dur -. s.r_child_dur);
            min_s = Float.min row.min_s s.r_dur;
            max_s = Float.max row.max_s s.r_dur;
          })
      order;
    Ok
      (List.sort
         (fun a b ->
           let c = Float.compare b.total_s a.total_s in
           if c <> 0 then c else String.compare a.name b.name)
         (Hashtbl.fold (fun _ r acc -> r :: acc) agg []))

let counters lines =
  match parse_lines lines with
  | Error e -> Error e
  | Ok (_, order) ->
    let agg = Hashtbl.create 16 in
    List.iter
      (fun s ->
        List.iter
          (fun (k, v) ->
            match v with
            | Json.Int n ->
              let key = s.r_name ^ "." ^ k in
              Hashtbl.replace agg key
                (n + Option.value ~default:0 (Hashtbl.find_opt agg key))
            | _ -> ())
          s.r_attrs)
      order;
    Ok
      (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg []))

let pp ppf rows =
  Format.fprintf ppf "%-28s %8s %12s %12s %12s %12s@." "span" "count"
    "total_s" "self_s" "min_s" "max_s";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-28s %8d %12.6f %12.6f %12.6f %12.6f@." r.name
        r.count r.total_s r.self_s r.min_s r.max_s)
    rows

let pp_metrics_file ppf doc =
  match Option.bind (Json.member "metrics" doc) Json.to_list with
  | None -> Format.fprintf ppf "(not a metrics dump)@."
  | Some ms ->
    List.iter
      (fun m ->
        let name =
          Option.value ~default:"?"
            (Option.bind (Json.member "name" m) Json.to_str)
        in
        let labels =
          match Json.member "labels" m with
          | Some (Json.Obj []) | None -> ""
          | Some (Json.Obj kvs) ->
            "{"
            ^ String.concat ","
                (List.map
                   (fun (k, v) ->
                     k ^ "=" ^ Option.value ~default:"?" (Json.to_str v))
                   kvs)
            ^ "}"
          | Some _ -> ""
        in
        match Option.bind (Json.member "type" m) Json.to_str with
        | Some "counter" ->
          Format.fprintf ppf "%s%s %d@." name labels
            (Option.value ~default:0
               (Option.bind (Json.member "value" m) Json.to_int))
        | Some "gauge" ->
          Format.fprintf ppf "%s%s %g@." name labels
            (Option.value ~default:0.
               (Option.bind (Json.member "value" m) Json.to_float))
        | Some "histogram" ->
          let counts =
            match Option.bind (Json.member "counts" m) Json.to_list with
            | Some cs ->
              Some
                (Array.of_list
                   (List.map
                      (fun c -> Option.value ~default:0 (Json.to_int c))
                      cs))
            | None -> None
          in
          let buckets =
            match Option.bind (Json.member "buckets" m) Json.to_list with
            | Some bs ->
              Some
                (Array.of_list
                   (List.map
                      (fun b -> Option.value ~default:0. (Json.to_float b))
                      bs))
            | None -> None
          in
          let total =
            match counts with
            | Some cs -> Array.fold_left ( + ) 0 cs
            | None -> 0
          in
          (* [sum] is absent from pre-quantile dumps: render "-" rather
             than a fake zero, but quantiles need only the counts, so old
             files still get them. *)
          let sum = Option.bind (Json.member "sum" m) Json.to_float in
          let fmt_opt = function
            | Some x -> Printf.sprintf "%g" x
            | None -> "-"
          in
          let q p =
            match (buckets, counts) with
            | Some buckets, Some counts ->
              Metrics.quantile_of_counts ~buckets ~counts p
            | _ -> None
          in
          if total = 0 then Format.fprintf ppf "%s%s count=0@." name labels
          else
            Format.fprintf ppf
              "%s%s count=%d sum=%s mean=%s p50=%s p90=%s p99=%s@." name
              labels total (fmt_opt sum)
              (fmt_opt
                 (Option.map (fun s -> s /. float_of_int total) sum))
              (fmt_opt (q 0.5))
              (fmt_opt (q 0.9))
              (fmt_opt (q 0.99))
        | _ -> Format.fprintf ppf "%s%s ?@." name labels)
      ms
