type histo = { buckets : float array; counts : int Atomic.t array }
(* [counts] has one slot per bucket bound plus an overflow slot. *)

type instrument =
  | Counter of int Atomic.t
  | Gauge of float Atomic.t
  | Histogram of histo

type key = { name : string; labels : (string * string) list }

type t = { mutex : Mutex.t; tbl : (key, instrument) Hashtbl.t }

type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = histo

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 32 }

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create t ?(labels = []) name make =
  let key = { name; labels = normalize_labels labels } in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some i -> i
      | None ->
        let i = make () in
        Hashtbl.add t.tbl key i;
        i)

let counter t ?labels name =
  match find_or_create t ?labels name (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> c
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s is already a %s" name
         (kind_name other))

let gauge t ?labels name =
  match find_or_create t ?labels name (fun () -> Gauge (Atomic.make 0.)) with
  | Gauge g -> g
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.gauge: %s is already a %s" name (kind_name other))

let default_buckets =
  [| 1.; 10.; 100.; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let histogram t ?labels ?(buckets = default_buckets) name =
  match
    find_or_create t ?labels name (fun () ->
        Histogram
          {
            buckets = Array.copy buckets;
            counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          })
  with
  | Histogram h -> h
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s is already a %s" name
         (kind_name other))

let incr c = Atomic.incr c

let add c by = ignore (Atomic.fetch_and_add c by)

let counter_value c = Atomic.get c

let set g x = Atomic.set g x
let gauge_value g = Atomic.get g

let observe h x =
  let n = Array.length h.buckets in
  let rec go i = if i >= n then n else if x <= h.buckets.(i) then i else go (i + 1) in
  Atomic.incr h.counts.(go 0)

let entries t =
  Mutex.lock t.mutex;
  let xs =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])
  in
  List.sort
    (fun (a, _) (b, _) ->
      let c = String.compare a.name b.name in
      if c <> 0 then c else compare a.labels b.labels)
    xs

let merge_into ~into src =
  List.iter
    (fun (key, i) ->
      match i with
      | Counter c ->
        add (counter into ~labels:key.labels key.name) (Atomic.get c)
      | Gauge g -> set (gauge into ~labels:key.labels key.name) (Atomic.get g)
      | Histogram h ->
        let dst =
          histogram into ~labels:key.labels ~buckets:h.buckets key.name
        in
        if dst.buckets <> h.buckets then
          invalid_arg
            ("Metrics.merge_into: histogram bucket mismatch for " ^ key.name);
        Array.iteri (fun k c -> add dst.counts.(k) (Atomic.get c)) h.counts)
    (entries src)

let dump t =
  let metric (key, i) =
    let base =
      [
        ("name", Json.String key.name);
        ( "labels",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) key.labels) );
        ("type", Json.String (kind_name i));
      ]
    in
    let payload =
      match i with
      | Counter c -> [ ("value", Json.Int (Atomic.get c)) ]
      | Gauge g -> [ ("value", Json.Float (Atomic.get g)) ]
      | Histogram h ->
        [
          ("buckets", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.buckets)));
          ( "counts",
            Json.List
              (Array.to_list (Array.map (fun c -> Json.Int (Atomic.get c)) h.counts)) );
        ]
    in
    Json.Obj (base @ payload)
  in
  Json.Obj
    [
      ("schema", Json.Int 1);
      ("metrics", Json.List (List.map metric (entries t)));
    ]

let pp ppf t =
  List.iter
    (fun (key, i) ->
      let labels =
        if key.labels = [] then ""
        else
          "{"
          ^ String.concat ","
              (List.map (fun (k, v) -> k ^ "=" ^ v) key.labels)
          ^ "}"
      in
      match i with
      | Counter c ->
        Format.fprintf ppf "%s%s %d@." key.name labels (Atomic.get c)
      | Gauge g -> Format.fprintf ppf "%s%s %g@." key.name labels (Atomic.get g)
      | Histogram h ->
        let total = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts in
        Format.fprintf ppf "%s%s count=%d@." key.name labels total)
    (entries t)
