type histo = {
  buckets : float array;
  counts : int Atomic.t array;
  sum_milli : int Atomic.t;
}
(* [counts] has one slot per bucket bound plus an overflow slot.
   [sum_milli] is the sum of observed values in fixed-point thousandths:
   integer adds commute, so parallel and sequential runs of the same work
   still dump identical registries (a float sum would not — accumulation
   order does not commute). Each observation is rounded to 1/1000 of a
   unit; observe in microseconds if that matters. *)

type instrument =
  | Counter of int Atomic.t
  | Gauge of float Atomic.t
  | Histogram of histo

type key = { name : string; labels : (string * string) list }

type t = { mutex : Mutex.t; tbl : (key, instrument) Hashtbl.t }

type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = histo

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 32 }

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create t ?(labels = []) name make =
  let key = { name; labels = normalize_labels labels } in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some i -> i
      | None ->
        let i = make () in
        Hashtbl.add t.tbl key i;
        i)

let counter t ?labels name =
  match find_or_create t ?labels name (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> c
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s is already a %s" name
         (kind_name other))

let gauge t ?labels name =
  match find_or_create t ?labels name (fun () -> Gauge (Atomic.make 0.)) with
  | Gauge g -> g
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.gauge: %s is already a %s" name (kind_name other))

let default_buckets =
  [| 1.; 10.; 100.; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

(* A 1-2-5 log-linear series: [lo, 2lo, 5lo, 10lo, 20lo, ...] up to the
   first bound >= [hi]. Bounds are computed as mantissa * decade so the
   values are exact decimal floats, not products of rounding drift. *)
let log_linear ~lo ~hi =
  if not (lo > 0. && hi > lo) then
    invalid_arg "Metrics.log_linear: need 0 < lo < hi";
  let out = ref [] in
  let decade = ref lo in
  let stop = ref false in
  while not !stop do
    List.iter
      (fun m ->
        if not !stop then begin
          let b = m *. !decade in
          out := b :: !out;
          if b >= hi then stop := true
        end)
      [ 1.; 2.; 5. ];
    decade := !decade *. 10.
  done;
  Array.of_list (List.rev !out)

(* Duration buckets in microseconds: 1us .. 100s. *)
let duration_buckets = log_linear ~lo:1. ~hi:1e8

let histogram t ?labels ?(buckets = default_buckets) name =
  match
    find_or_create t ?labels name (fun () ->
        Histogram
          {
            buckets = Array.copy buckets;
            counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            sum_milli = Atomic.make 0;
          })
  with
  | Histogram h -> h
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s is already a %s" name
         (kind_name other))

let incr c = Atomic.incr c

let add c by = ignore (Atomic.fetch_and_add c by)

let counter_value c = Atomic.get c

let set g x = Atomic.set g x
let gauge_value g = Atomic.get g

(* CAS loop: concurrent adds from any number of domains all land (unlike
   [set], which is last-write-wins). This is what lets a gauge track a
   level — queue depth, busy workers — maintained by racing +1/-1
   updates from the serve scheduler. *)
let gauge_add g by =
  let rec go () =
    let cur = Atomic.get g in
    if not (Atomic.compare_and_set g cur (cur +. by)) then go ()
  in
  go ()

let observe h x =
  let n = Array.length h.buckets in
  let rec go i = if i >= n then n else if x <= h.buckets.(i) then i else go (i + 1) in
  Atomic.incr h.counts.(go 0);
  ignore (Atomic.fetch_and_add h.sum_milli (int_of_float (Float.round (x *. 1000.))))

let histogram_count h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts

let histogram_sum h = float_of_int (Atomic.get h.sum_milli) /. 1000.

(* Quantile estimate from bucket counts alone — a pure function of
   integers plus [q], so it is identical across runs that made the same
   observations. Linear interpolation inside the holding bucket (lower
   edge 0 for the first bucket); the overflow bucket has no finite upper
   edge, so quantiles landing there saturate at the last bound. *)
let quantile_of_counts ~buckets ~counts q =
  let n = Array.length buckets in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 || n = 0 || Float.is_nan q then None
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int total in
    let rec go i cum =
      if i >= n then Some buckets.(n - 1)
      else
        let cum' = cum + counts.(i) in
        if counts.(i) > 0 && float_of_int cum' >= target then
          let lo = if i = 0 then 0. else buckets.(i - 1) in
          let hi = buckets.(i) in
          let frac = (target -. float_of_int cum) /. float_of_int counts.(i) in
          Some (lo +. (Float.max 0. frac *. (hi -. lo)))
        else go (i + 1) cum'
    in
    go 0 0
  end

let quantile h q =
  quantile_of_counts ~buckets:h.buckets ~counts:(Array.map Atomic.get h.counts) q

let entries t =
  Mutex.lock t.mutex;
  let xs =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])
  in
  List.sort
    (fun (a, _) (b, _) ->
      let c = String.compare a.name b.name in
      if c <> 0 then c else compare a.labels b.labels)
    xs

let render_buckets buckets =
  Array.to_list buckets
  |> List.map (Printf.sprintf "%g")
  |> String.concat "; "

let merge_into ~into src =
  List.iter
    (fun (key, i) ->
      match i with
      | Counter c ->
        add (counter into ~labels:key.labels key.name) (Atomic.get c)
      | Gauge g -> set (gauge into ~labels:key.labels key.name) (Atomic.get g)
      | Histogram h ->
        let dst =
          histogram into ~labels:key.labels ~buckets:h.buckets key.name
        in
        if dst.buckets <> h.buckets then
          invalid_arg
            (Printf.sprintf
               "Metrics.merge_into: histogram bucket mismatch for %s: \
                destination has [%s], source has [%s]"
               key.name
               (render_buckets dst.buckets)
               (render_buckets h.buckets));
        Array.iteri (fun k c -> add dst.counts.(k) (Atomic.get c)) h.counts;
        ignore (Atomic.fetch_and_add dst.sum_milli (Atomic.get h.sum_milli)))
    (entries src)

let dump t =
  let metric (key, i) =
    let base =
      [
        ("name", Json.String key.name);
        ( "labels",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) key.labels) );
        ("type", Json.String (kind_name i));
      ]
    in
    let payload =
      match i with
      | Counter c -> [ ("value", Json.Int (Atomic.get c)) ]
      | Gauge g -> [ ("value", Json.Float (Atomic.get g)) ]
      | Histogram h ->
        [
          ("buckets", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.buckets)));
          ( "counts",
            Json.List
              (Array.to_list (Array.map (fun c -> Json.Int (Atomic.get c)) h.counts)) );
          ("count", Json.Int (histogram_count h));
          ("sum", Json.Float (histogram_sum h));
        ]
    in
    Json.Obj (base @ payload)
  in
  Json.Obj
    [
      ("schema", Json.Int 1);
      ("metrics", Json.List (List.map metric (entries t)));
    ]

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let prom_name s =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      then c
      else '_')
    s

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_escape v))
           labels)
    ^ "}"

let prom_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let dump_prometheus t =
  let b = Buffer.create 1024 in
  let last_typed = ref "" in
  List.iter
    (fun (key, i) ->
      let name = prom_name key.name in
      if !last_typed <> name then begin
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" name (kind_name i));
        last_typed := name
      end;
      match i with
      | Counter c ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" name (prom_labels key.labels)
             (Atomic.get c))
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" name (prom_labels key.labels)
             (prom_float (Atomic.get g)))
      | Histogram h ->
        let cum = ref 0 in
        Array.iteri
          (fun k c ->
            cum := !cum + Atomic.get c;
            let le =
              if k < Array.length h.buckets then prom_float h.buckets.(k)
              else "+Inf"
            in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (prom_labels (key.labels @ [ ("le", le) ]))
                 !cum))
          h.counts;
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" name (prom_labels key.labels)
             (prom_float (histogram_sum h)));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" name (prom_labels key.labels)
             (histogram_count h)))
    (entries t);
  Buffer.contents b

let pp ppf t =
  List.iter
    (fun (key, i) ->
      let labels =
        if key.labels = [] then ""
        else
          "{"
          ^ String.concat ","
              (List.map (fun (k, v) -> k ^ "=" ^ v) key.labels)
          ^ "}"
      in
      match i with
      | Counter c ->
        Format.fprintf ppf "%s%s %d@." key.name labels (Atomic.get c)
      | Gauge g -> Format.fprintf ppf "%s%s %g@." key.name labels (Atomic.get g)
      | Histogram h ->
        let total = histogram_count h in
        let q p =
          match quantile h p with None -> Float.nan | Some v -> v
        in
        if total = 0 then
          Format.fprintf ppf "%s%s count=0@." key.name labels
        else
          Format.fprintf ppf
            "%s%s count=%d sum=%g mean=%g p50=%g p90=%g p99=%g@." key.name
            labels total (histogram_sum h)
            (histogram_sum h /. float_of_int total)
            (q 0.5) (q 0.9) (q 0.99))
    (entries t)
