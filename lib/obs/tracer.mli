(** Span-based structured tracing.

    [span t name f] runs [f] inside a named span; spans nest into a tree
    mirroring the dynamic call structure (search step, candidate legality
    check, objective simulation, ...). Three properties drive the design:

    - {b zero cost when off}: the {!null} tracer makes [span] a direct
      call of [f] — no clock read, no allocation. Attributes are passed as
      a thunk so building them is also skipped when disabled.
    - {b deterministic parallel trees}: a worker must never append to a
      shared buffer in scheduling order. The coordinator {!fork}s one
      child tracer per unit of work, each worker records into its own
      child without contention, and {!join} splices the children back in
      {e input} order — so a parallel run produces the same span tree as a
      sequential one (timings aside; {!equal_shape} compares modulo
      timing).
    - {b pluggable sinks}: spans accumulate in memory; a completed forest
      ({!roots}) is then kept for inspection (tests), or serialized as
      JSON-lines with {!write_jsonl} (parent lines precede children,
      deterministic depth-first ids).

    The {b ambient} tracer is a domain-local handle letting deep callees
    (e.g. {!Itf_machine.Memsim} inside an objective function) attach spans
    to whatever span their caller has open, without every intermediate
    signature threading a tracer. It defaults to {!null}. *)

type value = Bool of bool | Int of int | Float of float | String of string

type span = {
  name : string;
  attrs : (string * value) list;
  start_s : float;  (** clock value at entry *)
  dur_s : float;
  children : span list;  (** completed sub-spans, in execution order *)
}

type t

val null : t
(** The disabled tracer: [span null name f = f ()]. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A live in-memory tracer. [clock] defaults to [Unix.gettimeofday];
    tests may inject a deterministic clock. *)

val enabled : t -> bool

val span : t -> ?attrs:(unit -> (string * value) list) -> string -> (unit -> 'a) -> 'a
(** Run the function inside a new span (child of the innermost open span).
    The span is closed even if the function raises. [attrs] is evaluated
    only when the tracer is enabled. *)

val add_attrs : t -> (string * value) list -> unit
(** Append attributes to the innermost open span — for values only known
    mid-span (e.g. a result count). No-op when disabled or no span is
    open. *)

val fork : t -> t
(** An empty child tracer sharing the parent's clock (or {!null} for a
    disabled parent). Fill it on any domain, then {!join} it back. *)

val join : t -> t list -> unit
(** Splice each forked child's completed top-level spans, in list order,
    as children of the parent's innermost open span (or as roots). *)

val roots : t -> span list
(** Completed top-level spans, in execution order. Empty for {!null}. *)

(** {1 Head sampling} *)

val head_keep : sample_rate:float -> fingerprint:string -> bool
(** The head-sampling decision for one unit of work (a serve request):
    keep its span tree iff a uniform draw derived from [fingerprint]
    (FNV-1a over the bytes, finalized with a full-avalanche mixer —
    deterministic across runs and processes, so reruns sample
    identically) falls below [sample_rate]. [>= 1.] keeps
    everything, [<= 0.] keeps nothing, and the kept set at rate [r] is a
    subset of the kept set at any higher rate. This decides {e retention}
    only — capture is unchanged, so sampling never alters the span trees
    that are kept (parallel == sequential determinism included). Callers
    wanting tail-based keep (slow/degraded/error requests always
    retained) OR this decision with their own predicate. *)

(** {1 Ambient tracer} *)

val ambient : unit -> t
(** The current domain's ambient tracer; {!null} unless inside
    {!with_ambient}. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install a tracer as the calling domain's ambient tracer for the
    duration of the call (restored on exit, exceptions included). *)

(** {1 Serialization and comparison} *)

val write_jsonl : out_channel -> span list -> unit
(** One JSON object per line:
    [{"id": .., "parent": id|null, "name": .., "start_s": .., "dur_s": ..,
    "attrs": {..}}]. Ids are depth-first preorder, so parents precede
    their children and ids are deterministic for a deterministic tree. *)

val jsonl_lines : span list -> string list
(** The same lines as {!write_jsonl}, without the channel. *)

val span_json : id:int -> parent:int option -> span -> Json.t
(** The JSONL record of one span (children not included). *)

val equal_shape : span -> span -> bool
(** Structural equality ignoring [start_s]/[dur_s] (recursively):
    the determinism criterion for parallel vs sequential runs. *)

val pp : Format.formatter -> span -> unit
(** Indented tree, timings omitted (shape only) — for test diagnostics. *)
