(** Minimal JSON: a value type, a serializer with correct string escaping,
    and a small recursive-descent parser.

    Every machine-readable artifact this repository produces — the
    [BENCH_*.json] benchmark records, metric dumps, JSONL span traces —
    goes through this module instead of hand-rolled [Printf] format
    strings, so escaping and separator placement cannot drift between
    emitters. The parser exists so the toolchain can read its own output
    back ([loopt report] renders a JSONL trace; tests round-trip values). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. Non-finite floats serialize as
    [null] (JSON has no representation for them); integral floats print
    with a trailing [.0] so they stay floats on re-parse. *)

val to_buffer : Buffer.t -> t -> unit

val pp : Format.formatter -> t -> unit
(** Same compact form as {!to_string}. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing garbage
    is an error). Numbers without [.]/[e] parse as [Int], others as
    [Float]; [\uXXXX] escapes decode to UTF-8, surrogate pairs included. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_int : t -> int option

val to_float : t -> float option
(** [Int] promotes. *)

val to_str : t -> string option
val to_list : t -> t list option

val equal : t -> t -> bool
(** Structural equality ([Obj] key order matters; [Float nan] is not equal
    to itself, as usual). *)
