(** C code emission for loop nests.

    Turns a (possibly transformed) nest into compilable C so the
    framework's output can actually be run by downstream users. Semantics
    match the interpreter exactly:

    - division and modulo are emitted through floor-semantics helpers
      ([ifloordiv]/[ifloormod]), matching {!Itf_ir.Expr} constant folding;
    - loop bounds and steps are evaluated once, before the loop, into
      [const] temporaries, like {!Itf_exec.Interp.run};
    - arrays become flat [long] buffers behind subscript macros honoring
      per-dimension lower bounds;
    - [pardo] loops emit [#pragma omp parallel for] when [openmp] is set,
      and plain sequential loops otherwise.

    [kernel] emits just a function; [program] emits a standalone program
    that allocates and deterministically fills every array
    ([data[k] = (k*31) % 97], the convention the tests mirror), runs the
    nest, and prints one [name checksum] line per array — which is how the
    end-to-end test compares a gcc-compiled transformed nest against the
    interpreter. *)

open Itf_ir

val expr_to_c : Expr.t -> string
(** C expression text (uses the helper functions for div/mod/min/max). *)

val kernel : ?openmp:bool -> name:string -> Nest.t -> string
(** A bare C function [static void <name>(void)] containing the scalar
    declarations, loops and statements. Array accesses are emitted as
    [A(i, j)] macro invocations and symbolic parameters as plain
    identifiers, so the surrounding translation unit must define both —
    {!program} does exactly that; use [kernel] when embedding into an
    existing harness. *)

val program :
  ?openmp:bool ->
  params:(string * int) list ->
  bounds:(string * (int * int) list) list ->
  Nest.t ->
  string
(** A complete C program. [params] gives concrete values to the symbolic
    parameters; [bounds] gives each array's per-dimension inclusive bounds
    (every array the nest references must appear).
    @raise Invalid_argument if an array is missing from [bounds] or the
    nest contains calls to uninterpreted functions other than
    [abs]/[sgn]. *)
