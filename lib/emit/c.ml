open Itf_ir

let rec expr_buf b (e : Expr.t) =
  let bin op x y =
    Buffer.add_char b '(';
    expr_buf b x;
    Buffer.add_string b op;
    expr_buf b y;
    Buffer.add_char b ')'
  in
  let fn name args =
    Buffer.add_string b name;
    Buffer.add_char b '(';
    List.iteri
      (fun k a ->
        if k > 0 then Buffer.add_string b ", ";
        expr_buf b a)
      args;
    Buffer.add_char b ')'
  in
  match e with
  | Int n ->
    if n < 0 then Buffer.add_string b (Printf.sprintf "(%dL)" n)
    else Buffer.add_string b (string_of_int n ^ "L")
  | Var v -> Buffer.add_string b v
  | Neg a ->
    Buffer.add_string b "(-";
    expr_buf b a;
    Buffer.add_char b ')'
  | Add (x, y) -> bin " + " x y
  | Sub (x, y) -> bin " - " x y
  | Mul (x, y) -> bin " * " x y
  | Div (x, y) -> fn "ifloordiv" [ x; y ]
  | Mod (x, y) -> fn "ifloormod" [ x; y ]
  | Min (x, y) -> fn "imin" [ x; y ]
  | Max (x, y) -> fn "imax" [ x; y ]
  | Load { array; index } -> fn array index
  | Call ("abs", args) -> fn "iabs" args
  | Call ("sgn", args) -> fn "isgn" args
  | Call (f, _) ->
    invalid_arg ("C emitter: uninterpreted function " ^ f)

let expr_to_c e =
  let b = Buffer.create 64 in
  expr_buf b e;
  Buffer.contents b

let helpers =
  "static long ifloordiv(long a, long b) {\n\
  \  long q = a / b, r = a % b;\n\
  \  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;\n\
   }\n\
   static long ifloormod(long a, long b) { return a - b * ifloordiv(a, b); }\n\
   static long imin(long a, long b) { return a < b ? a : b; }\n\
   static long imax(long a, long b) { return a > b ? a : b; }\n\
   static long iabs(long a) { return a < 0 ? -a : a; }\n\
   static long isgn(long a) { return (a > 0) - (a < 0); }\n"

let indent b k = Buffer.add_string b (String.make (2 * k) ' ')

let rel_to_c = function
  | Stmt.Lt -> "<"
  | Stmt.Le -> "<="
  | Stmt.Gt -> ">"
  | Stmt.Ge -> ">="
  | Stmt.Eq -> "=="
  | Stmt.Ne -> "!="

let rec stmt_buf b depth (s : Stmt.t) =
  match s with
  | Stmt.Store ({ array; index }, rhs) ->
    indent b depth;
    Buffer.add_string b array;
    Buffer.add_char b '(';
    List.iteri
      (fun k e ->
        if k > 0 then Buffer.add_string b ", ";
        expr_buf b e)
      index;
    Buffer.add_string b ") = ";
    expr_buf b rhs;
    Buffer.add_string b ";\n"
  | Stmt.Set (v, rhs) ->
    indent b depth;
    Buffer.add_string b v;
    Buffer.add_string b " = ";
    expr_buf b rhs;
    Buffer.add_string b ";\n"
  | Stmt.Guard { lhs; rel; rhs; body } ->
    indent b depth;
    Buffer.add_string b "if (";
    expr_buf b lhs;
    Buffer.add_string b (" " ^ rel_to_c rel ^ " ");
    expr_buf b rhs;
    Buffer.add_string b ") {\n";
    List.iter (stmt_buf b (depth + 1)) body;
    indent b depth;
    Buffer.add_string b "}\n"

(* Scalars assigned by inits or body; they must be declared. *)
let assigned_scalars (nest : Nest.t) =
  List.sort_uniq compare
    (List.concat_map Stmt.defined_vars (nest.Nest.inits @ nest.Nest.body))

let loops_buf ?(openmp = false) b depth0 (nest : Nest.t) =
  let rec go depth = function
    | [] ->
      List.iter (stmt_buf b depth) nest.Nest.inits;
      List.iter (stmt_buf b depth) nest.Nest.body
    | (l : Nest.loop) :: rest ->
      let v = l.Nest.var in
      indent b depth;
      Buffer.add_string b "{\n";
      indent b (depth + 1);
      Buffer.add_string b (Printf.sprintf "const long lo_%s = " v);
      expr_buf b l.Nest.lo;
      Buffer.add_string b ";\n";
      indent b (depth + 1);
      Buffer.add_string b (Printf.sprintf "const long hi_%s = " v);
      expr_buf b l.Nest.hi;
      Buffer.add_string b ";\n";
      indent b (depth + 1);
      Buffer.add_string b (Printf.sprintf "const long st_%s = " v);
      expr_buf b l.Nest.step;
      Buffer.add_string b ";\n";
      if openmp && l.Nest.kind = Nest.Pardo then begin
        indent b (depth + 1);
        Buffer.add_string b "#pragma omp parallel for\n"
      end;
      indent b (depth + 1);
      Buffer.add_string b
        (Printf.sprintf
           "for (long %s = lo_%s; st_%s > 0 ? %s <= hi_%s : %s >= hi_%s; %s += st_%s) {\n"
           v v v v v v v v v);
      go (depth + 2) rest;
      indent b (depth + 1);
      Buffer.add_string b "}\n";
      indent b depth;
      Buffer.add_string b "}\n"
  in
  go depth0 nest.Nest.loops

let kernel ?openmp ~name (nest : Nest.t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "static void %s(void) {\n" name);
  List.iter
    (fun v -> Buffer.add_string b (Printf.sprintf "  long %s = 0; (void) %s;\n" v v))
    (assigned_scalars nest);
  loops_buf ?openmp b 1 nest;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Arrays referenced by the nest with their arity. *)
let array_arities (nest : Nest.t) =
  let tbl = Hashtbl.create 8 in
  let rec expr (e : Expr.t) =
    match e with
    | Int _ | Var _ -> ()
    | Neg a -> expr a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
    | Min (a, b) | Max (a, b) ->
      expr a;
      expr b
    | Load { array; index } ->
      Hashtbl.replace tbl array (List.length index);
      List.iter expr index
    | Call (_, args) -> List.iter expr args
  in
  let rec stmt = function
    | Stmt.Store ({ array; index }, rhs) ->
      Hashtbl.replace tbl array (List.length index);
      List.iter expr index;
      expr rhs
    | Stmt.Set (_, rhs) -> expr rhs
    | Stmt.Guard { lhs; rhs; body; _ } ->
      expr lhs;
      expr rhs;
      List.iter stmt body
  in
  List.iter stmt (nest.Nest.inits @ nest.Nest.body);
  Hashtbl.fold (fun a k acc -> (a, k) :: acc) tbl [] |> List.sort compare

let program ?(openmp = false) ~params ~bounds (nest : Nest.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "#include <stdio.h>\n\n";
  Buffer.add_string b helpers;
  Buffer.add_char b '\n';
  let arrays = array_arities nest in
  (* Array storage + access macros. *)
  List.iter
    (fun (a, arity) ->
      let dims =
        match List.assoc_opt a bounds with
        | Some ds when List.length ds = arity -> ds
        | Some _ -> invalid_arg ("C emitter: wrong dimension count for " ^ a)
        | None -> invalid_arg ("C emitter: missing bounds for array " ^ a)
      in
      let sizes = List.map (fun (lo, hi) -> hi - lo + 1) dims in
      let total = List.fold_left ( * ) 1 sizes in
      Buffer.add_string b
        (Printf.sprintf "static long %s_data[%d];\n" a total);
      (* #define A(i, j) A_data[((i)-(lo0))*s1 + ((j)-(lo1))] *)
      let args = List.init arity (fun k -> Printf.sprintf "x%d" k) in
      let rec offsets k =
        if k >= arity then []
        else
          let stride =
            List.fold_left ( * ) 1
              (List.filteri (fun idx _ -> idx > k) sizes)
          in
          let lo, _ = List.nth dims k in
          Printf.sprintf "((x%d) - (%d)) * %d" k lo stride :: offsets (k + 1)
      in
      Buffer.add_string b
        (Printf.sprintf "#define %s(%s) %s_data[%s]\n" a
           (String.concat ", " args)
           a
           (String.concat " + " (offsets 0))))
    arrays;
  Buffer.add_char b '\n';
  Buffer.add_string b "int main(void) {\n";
  (* Parameters. *)
  List.iter
    (fun (v, x) -> Buffer.add_string b (Printf.sprintf "  const long %s = %d;\n" v x))
    params;
  (* Scalars. *)
  List.iter
    (fun v -> Buffer.add_string b (Printf.sprintf "  long %s = 0; (void) %s;\n" v v))
    (assigned_scalars nest);
  (* Deterministic fill. *)
  List.iter
    (fun (a, _) ->
      Buffer.add_string b
        (Printf.sprintf
           "  for (long k = 0; k < (long) (sizeof %s_data / sizeof *%s_data); k++) %s_data[k] = (k * 31) %% 97;\n"
           a a a))
    arrays;
  Buffer.add_char b '\n';
  loops_buf ~openmp b 1 nest;
  Buffer.add_char b '\n';
  (* Checksums. *)
  List.iter
    (fun (a, _) ->
      Buffer.add_string b
        (Printf.sprintf
           "  { long sum = 0; for (long k = 0; k < (long) (sizeof %s_data / sizeof *%s_data); k++) sum += %s_data[k]; printf(\"%s %%ld\\n\", sum); }\n"
           a a a a))
    arrays;
  Buffer.add_string b "  return 0;\n}\n";
  Buffer.contents b
