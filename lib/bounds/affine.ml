open Itf_ir

type t = {
  coeffs : (string * int) list;
  base : Expr.t;
  nonlinear_in : string list;
}

let norm_coeffs cs =
  List.filter (fun (_, c) -> c <> 0) (List.sort compare cs)

let constant n = { coeffs = []; base = Expr.int n; nonlinear_in = [] }

let add_assoc cs (v, c) =
  match List.assoc_opt v cs with
  | None -> (v, c) :: cs
  | Some c0 -> (v, c0 + c) :: List.remove_assoc v cs

let combine f a b =
  let coeffs =
    List.fold_left add_assoc a.coeffs
      (List.map (fun (v, c) -> (v, f c)) b.coeffs)
  in
  {
    coeffs = norm_coeffs coeffs;
    base = (if f 1 = 1 then Expr.add a.base b.base else Expr.sub a.base b.base);
    nonlinear_in =
      List.sort_uniq String.compare (a.nonlinear_in @ b.nonlinear_in);
  }

let scale k a =
  if k = 0 && a.nonlinear_in = [] then constant 0
  else
    {
      coeffs = norm_coeffs (List.map (fun (v, c) -> (v, k * c)) a.coeffs);
      base = Expr.mul (Expr.int k) a.base;
      nonlinear_in = a.nonlinear_in;
    }

(* An opaque subterm: all designated variables inside it are nonlinear uses. *)
let opaque ~vars e =
  {
    coeffs = [];
    base = e;
    nonlinear_in = List.filter (fun v -> List.mem v vars) (Expr.free_vars e);
  }

let rec split ~vars (e : Expr.t) =
  match e with
  | Int n -> constant n
  | Var v ->
    if List.mem v vars then { coeffs = [ (v, 1) ]; base = Expr.zero; nonlinear_in = [] }
    else { coeffs = []; base = e; nonlinear_in = [] }
  | Neg a -> scale (-1) (split ~vars a)
  | Add (a, b) -> combine (fun c -> c) (split ~vars a) (split ~vars b)
  | Sub (a, b) -> combine (fun c -> -c) (split ~vars a) (split ~vars b)
  | Mul (a, b) -> (
    let sa = split ~vars a and sb = split ~vars b in
    match (eval_const sa, eval_const sb) with
    | Some ka, _ -> scale ka sb
    | _, Some kb -> scale kb sa
    | None, None ->
      (* Symbol * var products (e.g. n * i) and var * var products are not
         linear with a compile-time coefficient: treat as opaque. *)
      if sa.coeffs = [] && sa.nonlinear_in = [] && sb.coeffs = [] && sb.nonlinear_in = []
      then { coeffs = []; base = e; nonlinear_in = [] }
      else opaque ~vars e)
  | Div _ | Mod _ | Min _ | Max _ | Load _ | Call _ -> opaque ~vars e

and eval_const a =
  if a.coeffs = [] && a.nonlinear_in = [] then Expr.to_int a.base else None

let coeff a v = match List.assoc_opt v a.coeffs with Some c -> c | None -> 0

let is_affine a = a.nonlinear_in = []

let is_invariant a = a.coeffs = [] && a.nonlinear_in = []

let to_expr a =
  List.fold_left
    (fun acc (v, c) -> Expr.add acc (Expr.mul (Expr.int c) (Expr.var v)))
    a.base a.coeffs

let eval_const = eval_const

let pp ppf a =
  Format.fprintf ppf "@[{";
  List.iter (fun (v, c) -> Format.fprintf ppf "%d*%s + " c v) a.coeffs;
  Format.fprintf ppf "%a" Expr.pp a.base;
  if a.nonlinear_in <> [] then
    Format.fprintf ppf " (nonlinear in %s)" (String.concat "," a.nonlinear_in);
  Format.fprintf ppf "}@]"
