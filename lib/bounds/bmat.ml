open Itf_ir

type term = { coeffs : int array; base : Expr.t; nonlinear : bool array }

type t = {
  vars : string array;
  kinds : Nest.kind array;
  lowers : term list array;
  uppers : term list array;
  steps : term array;
}

type which = L | U | S

let term_of_expr ~outer (e : Expr.t) =
  let s = Affine.split ~vars:outer e in
  let i = List.length outer in
  let coeffs = Array.make i 0 in
  let nonlinear = Array.make i false in
  List.iteri
    (fun j v ->
      coeffs.(j) <- Affine.coeff s v;
      nonlinear.(j) <- List.mem v s.Affine.nonlinear_in)
    outer;
  { coeffs; base = s.Affine.base; nonlinear }

let of_nest (nest : Nest.t) =
  let loops = Array.of_list nest.Nest.loops in
  let n = Array.length loops in
  let vars = Array.map (fun l -> l.Nest.var) loops in
  let kinds = Array.map (fun l -> l.Nest.kind) loops in
  let outer i = Array.to_list (Array.sub vars 0 i) in
  let step_sign i =
    match Expr.to_int loops.(i).Nest.step with Some s -> s | None -> 1
  in
  let terms role i e =
    List.map (term_of_expr ~outer:(outer i))
      (Classify.bound_terms role ~step_sign:(step_sign i) e)
  in
  {
    vars;
    kinds;
    lowers = Array.init n (fun i -> terms Classify.Lower i loops.(i).Nest.lo);
    uppers = Array.init n (fun i -> terms Classify.Upper i loops.(i).Nest.hi);
    steps = Array.init n (fun i -> term_of_expr ~outer:(outer i) loops.(i).Nest.step);
  }

let depth t = Array.length t.vars

let terms_of t which i =
  match which with
  | L -> t.lowers.(i)
  | U -> t.uppers.(i)
  | S -> [ t.steps.(i) ]

let term_btype (tm : term) ~wrt : Btype.t =
  if wrt < Array.length tm.coeffs && tm.nonlinear.(wrt) then Btype.Nonlinear
  else if
    (* The whole term is a literal constant: no coeffs, no nonlinear parts,
       integer base. *)
    Array.for_all (fun c -> c = 0) tm.coeffs
    && Array.for_all not tm.nonlinear
    && Expr.to_int tm.base <> None
  then Btype.Const
  else if wrt < Array.length tm.coeffs && tm.coeffs.(wrt) <> 0 then Btype.Linear
  else Btype.Invar

let btype t which ~loop ~wrt =
  List.fold_left
    (fun acc tm -> Btype.join acc (term_btype tm ~wrt))
    Btype.Const
    (terms_of t which loop)

let btype_overall t which ~loop =
  let acc = ref Btype.Const in
  for j = 0 to loop - 1 do
    acc := Btype.join !acc (btype t which ~loop ~wrt:j)
  done;
  (* Account for the invariant part being symbolic rather than constant. *)
  List.iter
    (fun tm ->
      if Expr.to_int tm.base = None then acc := Btype.join !acc Btype.Invar)
    (terms_of t which loop);
  !acc

let term_to_expr t (tm : term) =
  let e = ref tm.base in
  Array.iteri
    (fun j c ->
      if c <> 0 then e := Expr.add !e (Expr.mul (Expr.int c) (Expr.var t.vars.(j))))
    tm.coeffs;
  !e

let lower_expr t i = Expr.max_list (List.map (term_to_expr t) t.lowers.(i))
let upper_expr t i = Expr.min_list (List.map (term_to_expr t) t.uppers.(i))
let step_expr t i = term_to_expr t t.steps.(i)

let pp_entry ppf (tms : term list) j =
  let cell tm =
    if j < Array.length tm.nonlinear && tm.nonlinear.(j) then "NL"
    else if j < Array.length tm.coeffs then string_of_int tm.coeffs.(j)
    else "."
  in
  match tms with
  | [ tm ] -> Format.fprintf ppf "%6s" (cell tm)
  | tms ->
    Format.fprintf ppf "%6s"
      ("<" ^ String.concat "," (List.map cell tms) ^ ">")

let pp_base ppf (tms : term list) =
  match tms with
  | [ tm ] -> Format.fprintf ppf "%a" Expr.pp tm.base
  | tms ->
    Format.fprintf ppf "<%s>"
      (String.concat ", " (List.map (fun tm -> Expr.to_string tm.base) tms))

let pp_matrix name t (select : int -> term list) ppf =
  let n = depth t in
  Format.fprintf ppf "@[<v>%s =@," name;
  for i = 0 to n - 1 do
    Format.fprintf ppf "  %s: [" t.vars.(i);
    pp_base ppf (select i);
    for j = 0 to i - 1 do
      Format.fprintf ppf " |";
      pp_entry ppf (select i) j
    done;
    Format.fprintf ppf "]@,"
  done;
  Format.fprintf ppf "@]"

let pp ppf t =
  pp_matrix "LB" t (fun i -> t.lowers.(i)) ppf;
  Format.pp_print_cut ppf ();
  pp_matrix "UB" t (fun i -> t.uppers.(i)) ppf;
  Format.pp_print_cut ppf ();
  pp_matrix "STEP" t (fun i -> [ t.steps.(i) ]) ppf

let pp ppf t = Format.fprintf ppf "@[<v>%a@]" pp t
