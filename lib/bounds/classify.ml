open Itf_ir

let type_in (e : Expr.t) (xi : string) : Btype.t =
  match Expr.to_int e with
  | Some _ -> Btype.Const
  | None ->
    if not (Expr.mentions xi e) then Btype.Invar
    else
      let s = Affine.split ~vars:[ xi ] e in
      if List.mem xi s.Affine.nonlinear_in then Btype.Nonlinear
      else Btype.Linear

type role = Lower | Upper | Step

let rec flatten_max (e : Expr.t) =
  match e with Max (a, b) -> flatten_max a @ flatten_max b | e -> [ e ]

let rec flatten_min (e : Expr.t) =
  match e with Min (a, b) -> flatten_min a @ flatten_min b | e -> [ e ]

let bound_terms role ~step_sign e =
  match (role, step_sign >= 0) with
  | Lower, true | Upper, false -> flatten_max e
  | Upper, true | Lower, false -> flatten_min e
  | Step, _ -> [ e ]

let type_in_bound role ~step_sign e xi =
  List.fold_left
    (fun acc t -> Btype.join acc (type_in t xi))
    Btype.Const
    (bound_terms role ~step_sign e)
