open Itf_ir

type ineq = { coeffs : int array; base : Expr.t }

type system = { vars : string array; ineqs : ineq list }

let ineq coeffs base = { coeffs; base }

exception Unbounded of string

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd a b = gcd (abs a) (abs b)

(* Divide an inequality by the gcd of its coefficients when the base is a
   literal constant that the gcd divides exactly (sound for >= 0 with a
   positive divisor); otherwise leave it alone. *)
let normalize (q : ineq) =
  let g = Array.fold_left gcd 0 q.coeffs in
  if g <= 1 then q
  else
    match Expr.to_int q.base with
    | Some b when b mod g = 0 ->
      { coeffs = Array.map (fun c -> c / g) q.coeffs; base = Expr.int (b / g) }
    | Some b ->
      (* floor(b/g) is sound for integer solutions: sum(c/g * y) >= -b/g
         implies sum >= ceil(-b/g) = -floor(b/g). *)
      { coeffs = Array.map (fun c -> c / g) q.coeffs; base = Expr.int (Expr.(match div (int b) (int g) with Int v -> v | _ -> b / g)) }
    | None -> q

(* Explicit comparator for the FM inner loop: coefficient vectors first
   (cheap int comparisons), then the base expression via [Expr.compare].
   Polymorphic compare here was both slower on the hot path and fragile
   should [Expr.t] ever gain a non-structural field. *)
let compare_ineq (a : ineq) (b : ineq) =
  let la = Array.length a.coeffs and lb = Array.length b.coeffs in
  if la <> lb then Int.compare la lb
  else
    let rec go k =
      if k >= la then Expr.compare a.base b.base
      else
        let c = Int.compare a.coeffs.(k) b.coeffs.(k) in
        if c <> 0 then c else go (k + 1)
    in
    go 0

let dedupe ineqs =
  List.sort_uniq compare_ineq (List.map normalize ineqs)

(* Highest index with a nonzero coefficient, or -1. *)
let level (q : ineq) =
  let l = ref (-1) in
  Array.iteri (fun k c -> if c <> 0 then l := k) q.coeffs;
  !l

(* The part of [q] excluding variable [k]: sum_{j<>k} c_j y_j + base. *)
let rest_expr (vars : string array) (q : ineq) k =
  let e = ref q.base in
  Array.iteri
    (fun j c ->
      if j <> k && c <> 0 then
        e := Expr.add !e (Expr.mul (Expr.int c) (Expr.var vars.(j))))
    q.coeffs;
  !e

let eliminate_pairs ineqs k =
  let pos = List.filter (fun q -> q.coeffs.(k) > 0) ineqs in
  let neg = List.filter (fun q -> q.coeffs.(k) < 0) ineqs in
  let rest = List.filter (fun q -> q.coeffs.(k) = 0) ineqs in
  let combined =
    List.concat_map
      (fun p ->
        List.map
          (fun m ->
            let a = p.coeffs.(k) and b = -m.coeffs.(k) in
            (* b*p + a*m eliminates y_k; both multipliers positive. *)
            {
              coeffs =
                Array.init (Array.length p.coeffs) (fun j ->
                    (b * p.coeffs.(j)) + (a * m.coeffs.(j)));
              base =
                Expr.add
                  (Expr.mul (Expr.int b) p.base)
                  (Expr.mul (Expr.int a) m.base);
            })
          neg)
      pos
  in
  dedupe (rest @ combined)

let bounds (sys : system) =
  let n = Array.length sys.vars in
  let result = Array.make n (Expr.zero, Expr.zero) in
  let ineqs = ref (dedupe sys.ineqs) in
  for k = n - 1 downto 0 do
    let here = List.filter (fun q -> level q = k) !ineqs in
    let lowers =
      List.filter_map
        (fun q ->
          let a = q.coeffs.(k) in
          if a > 0 then
            (* a*y_k >= -(rest)  =>  y_k >= ceil(-(rest)/a) *)
            Some (Expr.ceil_div (Expr.neg (rest_expr sys.vars q k)) a)
          else None)
        here
    in
    let uppers =
      List.filter_map
        (fun q ->
          let a = q.coeffs.(k) in
          if a < 0 then
            (* -a*y_k <= rest  =>  y_k <= floor(rest/(-a)) *)
            Some (Expr.floor_div (rest_expr sys.vars q k) (-a))
          else None)
        here
    in
    if lowers = [] then raise (Unbounded (sys.vars.(k) ^ " (no lower bound)"));
    if uppers = [] then raise (Unbounded (sys.vars.(k) ^ " (no upper bound)"));
    result.(k) <- (Expr.max_list lowers, Expr.min_list uppers);
    ineqs := eliminate_pairs !ineqs k
  done;
  result

let nest_system (nest : Nest.t) =
  let loops = Array.of_list nest.Nest.loops in
  let n = Array.length loops in
  let vars = Array.map (fun l -> l.Nest.var) loops in
  let all_vars = Array.to_list vars in
  let term_ineq ~lower k (e : Expr.t) =
    (* A floor division by a positive constant is exact over integers:
       x <= e div c  <=>  c*x <= e;   x >= e div c  <=>  c*x >= e - c + 1.
       This keeps step-normalized bounds (which contain such divisions)
       inside the linear system. *)
    let scale, e, slack =
      match e with
      | Expr.Div (e', Expr.Int c) when c > 0 ->
        (c, e', if lower then c - 1 else 0)
      | _ -> (1, e, 0)
    in
    let s = Affine.split ~vars:all_vars e in
    if not (Affine.is_affine s) then
      invalid_arg "Fourier.nest_system: non-affine bound";
    let coeffs = Array.make n 0 in
    List.iter
      (fun (v, c) ->
        let j = ref (-1) in
        Array.iteri (fun idx v' -> if v = v' then j := idx) vars;
        coeffs.(!j) <- (if lower then -c else c))
      s.Affine.coeffs;
    (* lower: scale*x_k - e + slack >= 0 ; upper: e - scale*x_k >= 0 *)
    coeffs.(k) <- coeffs.(k) + (if lower then scale else -scale);
    {
      coeffs;
      base =
        (if lower then Expr.add (Expr.neg s.Affine.base) (Expr.int slack)
         else s.Affine.base);
    }
  in
  let ineqs =
    List.concat
      (List.init n (fun k ->
           let l = loops.(k) in
           let lower_terms = Classify.bound_terms Classify.Lower ~step_sign:1 l.Nest.lo in
           let upper_terms = Classify.bound_terms Classify.Upper ~step_sign:1 l.Nest.hi in
           List.map (term_ineq ~lower:true k) lower_terms
           @ List.map (term_ineq ~lower:false k) upper_terms))
  in
  { vars; ineqs }

let definitely_infeasible ?(max_ineqs = 400) (sys : system) =
  let n = Array.length sys.vars in
  let contradiction ineqs =
    List.exists
      (fun q ->
        Array.for_all (( = ) 0) q.coeffs
        &&
        match Expr.to_int q.base with Some b -> b < 0 | None -> false)
      ineqs
  in
  let rec go k ineqs =
    if contradiction ineqs then true
    else if k >= n || List.length ineqs > max_ineqs then false
    else go (k + 1) (eliminate_pairs ineqs k)
  in
  go 0 (dedupe sys.ineqs)

let substitute (sys : system) (minv : Itf_mat.Intmat.t) (new_vars : string array) =
  let n = Array.length sys.vars in
  if Itf_mat.Intmat.rows minv <> n || Itf_mat.Intmat.cols minv <> n then
    invalid_arg "Fourier.substitute: dimension mismatch";
  let ineqs =
    List.map
      (fun q ->
        (* sum_k c_k x_k = sum_k c_k (sum_j minv[k][j] y_j)
                         = sum_j (sum_k c_k minv[k][j]) y_j *)
        let coeffs =
          Array.init n (fun j ->
              let acc = ref 0 in
              for k = 0 to n - 1 do
                acc := !acc + (q.coeffs.(k) * Itf_mat.Intmat.get minv k j)
              done;
              !acc)
        in
        { coeffs; base = q.base })
      sys.ineqs
  in
  { vars = new_vars; ineqs }
