(** Fourier-Motzkin elimination over integer-coefficient inequalities with
    symbolic invariant parts.

    Used by the [Unimodular] template's code generation: the iteration space
    of the input nest is written as a system of inequalities over the new
    index vector [y = M x] (substituting [x = M^{-1} y]), then variables are
    eliminated innermost-first to produce, for each [y_k], a lower bound
    [max(...)] and an upper bound [min(...)] mentioning only [y_1..y_{k-1}]
    and loop invariants — the code-generation scheme referenced by the paper
    as "studied in detail in [7, 14]".

    An inequality is [sum_k coeffs.(k) * y_k + base >= 0] where [base] is a
    loop-invariant expression (symbols such as [n] are allowed). Divisions
    introduced when a variable's coefficient is not [+-1] are emitted as
    floor/ceiling expressions. *)

open Itf_ir

type ineq = { coeffs : int array; base : Expr.t }

type system = { vars : string array; ineqs : ineq list }

val ineq : int array -> Expr.t -> ineq

exception Unbounded of string
(** Raised when some variable has no lower or no upper constraint. *)

val bounds : system -> (Expr.t * Expr.t) array
(** [bounds sys] returns, for each variable [y_k] (in order), the pair
    [(lower, upper)] of bound expressions over [y_0..y_{k-1}] and invariants
    such that scanning the loops [y_k = lower .. upper] (step 1, outermost
    first) enumerates exactly the integer points satisfying the system
    projected per Fourier-Motzkin.
    @raise Unbounded if a variable is unconstrained on one side. *)

val nest_system : Nest.t -> system
(** The inequality system of a nest whose bounds are affine with unit steps:
    [x_k >= each max-term of l_k] and [x_k <= each min-term of u_k].
    @raise Invalid_argument if a bound is not affine in the loop variables. *)

val substitute : system -> Itf_mat.Intmat.t -> string array -> system
(** [substitute sys minv new_vars] rewrites a system over [x] into one over
    [y] given [x = minv * y] (the inverse of the transformation matrix),
    renaming to [new_vars]. *)

val definitely_infeasible : ?max_ineqs:int -> system -> bool
(** Integer-sound infeasibility by full elimination: [true] only when the
    system provably has no {e integer} solution — rational Fourier-Motzkin
    plus the gcd tightening performed during normalization (e.g.
    [1 <= 2x <= 1] is recognized as empty). Detection is a ground
    inequality reducing to a negative constant. Symbolic ground inequalities
    are treated as satisfiable, and elimination gives up (returns [false])
    past [max_ineqs] (default 400) working inequalities, so [false] means
    "possibly feasible". Used by the dependence analyzer to prune direction
    vectors that the decoupled interval test cannot. *)
