(** The [type(expr, xi)] classification of paper Section 4.1.

    [type(expr, xi)] is [Const] if [expr] is a compile-time constant, [Invar]
    if [expr] does not mention [xi], [Linear] if [xi] occurs with a
    compile-time integer coefficient, and [Nonlinear] otherwise.

    The paper's special case: when a lower bound with positive step is a
    [max] of terms (or an upper bound a [min] of terms), each term counts as
    a separate linear inequality, so the bound classifies as the join of its
    terms' types rather than as [Nonlinear]. [type_in_bound] implements
    that; [type_in] is the plain classification. *)

open Itf_ir

val type_in : Expr.t -> string -> Btype.t

type role = Lower | Upper | Step

val bound_terms : role -> step_sign:int -> Expr.t -> Expr.t list
(** Decompose a bound into its max/min terms when the special case applies
    ([Lower]+[max] for positive step, [Lower]+[min] for negative step, and
    dually for [Upper]); otherwise the single original expression. *)

val type_in_bound : role -> step_sign:int -> Expr.t -> string -> Btype.t
(** Join of [type_in] over [bound_terms]. *)
