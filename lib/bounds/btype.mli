(** The bound-expression type lattice of paper Section 4.1.

    [type(expr, xi)] captures how index variable [xi] is used in a bound
    expression. The values form a total order
    [Const ⊑ Invar ⊑ Linear ⊑ Nonlinear]; a precondition
    [type(e, x) ⊑ V] is satisfied by any value at or below [V]. *)

type t = Const | Invar | Linear | Nonlinear

val leq : t -> t -> bool
(** Lattice order: [Const ⊑ Invar ⊑ Linear ⊑ Nonlinear]. *)

val join : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
