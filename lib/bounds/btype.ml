type t = Const | Invar | Linear | Nonlinear

let rank = function Const -> 0 | Invar -> 1 | Linear -> 2 | Nonlinear -> 3

let leq a b = rank a <= rank b
let join a b = if rank a >= rank b then a else b
let compare a b = Stdlib.compare (rank a) (rank b)
let equal a b = a = b

let to_string = function
  | Const -> "const"
  | Invar -> "invar"
  | Linear -> "linear"
  | Nonlinear -> "nonlinear"

let pp ppf t = Format.pp_print_string ppf (to_string t)
