(** The LB/UB/STEP coefficient-matrix representation of loop bounds
    (paper Section 4.3, Figure 5).

    For a nest of [n] loops, each of the three matrices has a row per loop.
    Row [i]'s entry at column [j] ([j < i], 0-based loop positions) is the
    compile-time integer coefficient of index variable [j] in the bound of
    loop [i]; column "0" of the paper — the loop-invariant part, possibly
    holding folded-in nonlinear terms — is the [base] expression here. A
    bound that is a [max] (lower) or [min] (upper) of several linear terms is
    stored as a list of terms, one coefficient row fragment per inequality,
    exactly as in Figure 5's [max<n, 3>] entry.

    This structure carries enough information to answer every [type]
    predicate in the templates' preconditions without re-walking expression
    trees, and to drive Unimodular/Block code generation. *)

open Itf_ir

type term = {
  coeffs : int array;  (** length [i]: coefficient of loop [j < i] *)
  base : Expr.t;  (** invariant part (+ folded nonlinear terms) *)
  nonlinear : bool array;  (** length [i]: loop [j] occurs non-linearly *)
}

type t = private {
  vars : string array;
  kinds : Nest.kind array;
  lowers : term list array;  (** multiple terms = [max] (for positive step) *)
  uppers : term list array;  (** multiple terms = [min] (for positive step) *)
  steps : term array;
}

type which = L | U | S

val of_nest : Nest.t -> t

val depth : t -> int

val btype : t -> which -> loop:int -> wrt:int -> Btype.t
(** [btype t w ~loop:i ~wrt:j] is [type(bound, x_j)] for loop [i]'s bound
    [w], computed from the stored matrix entries — the per-term max/min
    special case of Section 4.1 is already built in. *)

val btype_overall : t -> which -> loop:int -> Btype.t
(** Join of [btype] over all [wrt < loop], joined with [Const]/[Invar]
    depending on whether the invariant part is a literal constant. *)

val lower_expr : t -> int -> Expr.t
val upper_expr : t -> int -> Expr.t
val step_expr : t -> int -> Expr.t

val pp : Format.formatter -> t -> unit
(** Prints the three matrices in the style of Figure 5. *)
