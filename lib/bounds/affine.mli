(** Splitting expressions into an affine part over designated index variables
    plus a residue.

    Given a set of {e designated} variables (the loop index variables), an
    expression is decomposed as [sum_k c_k * x_k + base], where each [c_k] is
    a compile-time integer coefficient and [base] collects everything else:
    literal constants, symbolic loop invariants (like [n]), and any subterm
    that uses a designated variable non-linearly ([div], [mod], [min]/[max],
    array loads, calls). Designated variables buried in such subterms are
    reported in [nonlinear_in] — this is exactly the information the paper's
    LB/UB/STEP matrices store (Section 4.3: "if type(i,j) = nonlinear, the
    (i,j) entry is set to zero and the terms involving index variable j are
    combined into the (i,0) entry"). *)

open Itf_ir

type t = {
  coeffs : (string * int) list;
      (** designated variables with nonzero integer coefficients, sorted *)
  base : Expr.t;  (** residue; loop-invariant unless [nonlinear_in <> []] *)
  nonlinear_in : string list;
      (** designated variables used non-linearly inside [base], sorted *)
}

val split : vars:string list -> Expr.t -> t

val coeff : t -> string -> int
(** Coefficient of a designated variable (0 when absent). *)

val is_affine : t -> bool
(** True iff no designated variable is used non-linearly. *)

val is_invariant : t -> bool
(** True iff no designated variable occurs at all (affine with no coeffs). *)

val to_expr : t -> Expr.t
(** Recombine into an expression (sum of coefficient terms plus base). *)

val eval_const : t -> int option
(** [Some c] when the split is the literal constant [c]. *)

val pp : Format.formatter -> t -> unit
