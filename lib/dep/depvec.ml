type elem = Dist of int | Dir of Dir.t

type t = elem array

let dist n = Dist n

let dir d = match d with Dir.Zero -> Dist 0 | d -> Dir d

let elem_signs = function
  | Dist n -> Dir.signs (Dir.of_int n)
  | Dir d -> Dir.signs d

let elem_dir = function Dist n -> Dir.of_int n | Dir d -> d

let elem_reverse = function
  | Dist n -> Dist (-n)
  | Dir d -> dir (Dir.reverse d)

let elem_union a b =
  match (a, b) with
  | Dist x, Dist y when x = y -> Dist x
  | a, b -> dir (Dir.union (elem_dir a) (elem_dir b))

let elem_contains e x =
  match e with Dist n -> n = x | Dir d -> Dir.contains d x

let elem_subset a b =
  match (a, b) with
  | Dist x, Dist y -> x = y
  | Dist x, Dir d -> Dir.contains d x
  | Dir da, Dir db -> Dir.subset da db
  | Dir da, Dist x -> x = 0 && Dir.equal da Dir.Zero

let elem_is_zero = function Dist 0 -> true | Dist _ -> false | Dir d -> Dir.equal d Dir.Zero

let of_list l = Array.of_list l

let zero n = Array.make n (Dist 0)

(* A lex-negative tuple exists iff some component can be negative while all
   earlier components can simultaneously be zero — components denote
   independent sets, so the choices combine freely. *)
let may_lex_negative (d : t) =
  let rec go k prefix_can_be_zero =
    if k >= Array.length d then false
    else
      let s = elem_signs d.(k) in
      if prefix_can_be_zero && s.Dir.neg then true
      else go (k + 1) (prefix_can_be_zero && s.Dir.zero)
  in
  go 0 true

let is_lex_positive_definite (d : t) =
  (* Every tuple is lex-positive iff no tuple is lex-negative and the
     all-zero tuple is not denoted. *)
  (not (may_lex_negative d))
  && not (Array.for_all (fun e -> (elem_signs e).Dir.zero) d)

let mem (d : t) (tuple : int array) =
  Array.length d = Array.length tuple
  && Array.for_all2 elem_contains d tuple

let subset (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 elem_subset a b

(* Explicit field-wise equality and ordering. The order reproduces what
   [Stdlib.compare] gave this type exactly — arrays by length first, then
   elementwise; [Dist _ < Dir _] by constructor tag; [Dir.t] by
   constructor order — because {!dedupe}'s [sort_uniq] output order is
   observable (vector lists in provenance and goldens). Hand-rolled so the
   type can never silently fall back to polymorphic compare if it gains a
   float or cyclic component. *)
let elem_equal a b =
  match (a, b) with
  | Dist x, Dist y -> Int.equal x y
  | Dir x, Dir y -> Dir.equal x y
  | Dist _, Dir _ | Dir _, Dist _ -> false

let elem_compare a b =
  match (a, b) with
  | Dist x, Dist y -> Int.compare x y
  | Dir x, Dir y -> Dir.compare x y
  | Dist _, Dir _ -> -1
  | Dir _, Dist _ -> 1

let equal (a : t) (b : t) =
  a == b || (Array.length a = Array.length b && Array.for_all2 elem_equal a b)

let compare (a : t) (b : t) =
  if a == b then 0
  else
    let c = Int.compare (Array.length a) (Array.length b) in
    if c <> 0 then c
    else
      let n = Array.length a in
      let rec go k =
        if k >= n then 0
        else
          let c = elem_compare a.(k) b.(k) in
          if c <> 0 then c else go (k + 1)
      in
      go 0

let elem_hash = function
  | Dist n -> (2 * n) + 1
  | Dir d -> 2 * Hashtbl.hash d

(* Structural hash compatible with [equal]; lets dependence-vector sets key
   the search engine's memo tables. *)
let hash (d : t) =
  Array.fold_left (fun h e -> (h * 31) + elem_hash e) (Array.length d) d

(* Hash-consing: canonical physically-shared vectors with dense ids, used
   by the tier-0 estimate memo to key on (nest id, vector ids). Vectors
   are immutable arrays; interning keys on structure. *)
module HC = Itf_mat.Hashcons.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let table = HC.create "dep.depvec"
let intern_id (d : t) = HC.intern table d
let intern d = fst (intern_id d)
let id d = snd (intern_id d)

let set_may_lex_negative ds = List.find_opt may_lex_negative ds

let dedupe ds =
  let ds = List.sort_uniq compare ds in
  List.filter
    (fun d ->
      not
        (List.exists (fun d' -> (not (equal d d')) && subset d d') ds))
    ds

let pp_elem ppf = function
  | Dist n -> Format.fprintf ppf "%d" n
  | Dir d -> Dir.pp ppf d

let pp ppf (d : t) =
  Format.fprintf ppf "(";
  Array.iteri
    (fun k e ->
      if k > 0 then Format.fprintf ppf ", ";
      pp_elem ppf e)
    d;
  Format.fprintf ppf ")"

let to_string d = Format.asprintf "%a" pp d

let elem_of_string s =
  let s = String.trim s in
  match Dir.of_string s with
  | Some d -> dir d
  | None -> (
    match int_of_string_opt s with
    | Some n -> Dist n
    | None -> invalid_arg ("Depvec.of_string: bad element " ^ s))

let of_string s =
  let s = String.trim s in
  let s =
    if String.length s >= 2 && s.[0] = '(' && s.[String.length s - 1] = ')'
    then String.sub s 1 (String.length s - 2)
    else s
  in
  of_list (List.map elem_of_string (String.split_on_char ',' s))
