(** Data-dependence analysis for perfect loop nests.

    Computes the initial set of dependence vectors [D] for a nest, as the
    paper assumes is done "using standard data dependence analysis
    techniques" (Section 3.1). Implemented tests: exact per-dimension
    distance extraction (strong SIV), the GCD test, and Banerjee-style
    interval feasibility under hierarchical direction constraints, handling
    symbolic (unknown) loop bounds conservatively.

    Per the paper's recommendation, the result is expanded so that no vector
    contains summary direction values ([0+], [0-], [+-], [*]) unless a
    subscript is non-affine, in which case the conservative [*] entry
    remains. Flow, anti, and output dependences are all considered; the
    all-zero (loop-independent) vector is omitted because iteration-
    reordering transformations never reorder work within one iteration.

    Scalars assigned in the loop body are treated as 0-dimensional arrays:
    they conflict across {e all} iteration pairs, which correctly
    serializes nests that carry values through a scalar temporary. *)

open Itf_ir

type kind = Flow | Anti | Output

type dependence = {
  array : string;
  kind : kind;
  vector : Depvec.t;
}

val dependences : Nest.t -> dependence list
(** All dependences of the nest, deduplicated per (array, kind). *)

val vectors : Nest.t -> Depvec.t list
(** Just the dependence-vector set [D], deduplicated and subsumption-
    reduced — the input to the framework's legality test. *)

val pp_dependence : Format.formatter -> dependence -> unit

(** {1 Statement-level dependences}

    Needed by statement-reordering transformations (loop distribution and
    fusion — the paper's Section 6 future work): which statement depends
    on which, and whether the dependence is carried by some loop or is
    loop-independent (same iteration, textual order). *)

type statement_edge = {
  src : int;  (** 0-based index into the nest's body *)
  dst : int;
  carried : bool;
      (** [true]: across iterations (the source's iteration precedes);
          [false]: loop-independent, within one iteration, [src] textually
          before [dst] *)
}

val statement_edges : Nest.t -> statement_edge list
(** Deduplicated edges of the statement dependence graph (flow, anti and
    output conflicts all induce edges). *)

val fusion_preventing : Nest.t -> first:Itf_ir.Stmt.t list ->
  second:Itf_ir.Stmt.t list -> bool
(** Fusing two conformable nests (bodies [first] and [second], running in
    the given nest's loops) is illegal exactly when a statement of
    [second] conflicts with a statement of [first] at a lexicographically
    {e later} iteration: originally every [first] instance ran before any
    [second] instance, but in the fused loop the later iteration runs
    after. Same-iteration conflicts are harmless because fusion keeps
    [first]'s statements textually before [second]'s. *)
