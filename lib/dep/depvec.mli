(** Dependence vectors (paper Definitions 3.1-3.3).

    A dependence vector for a nest of size [n] is an [n]-tuple whose entry
    for loop [k] is either an exact integer {e distance} or a {e direction}
    value. [Tuples(d)] — the set of integer tuples a vector denotes — is the
    Cartesian product of the per-entry integer sets; the key legality
    question is whether that set contains a lexicographically negative tuple
    (Definition 3.2), which here is decidable by a linear scan because the
    per-entry sets are independent. *)

type elem = Dist of int | Dir of Dir.t

type t = elem array

(** {1 Elements} *)

val dist : int -> elem
val dir : Dir.t -> elem
(** Normalizes [Dir Zero] to [Dist 0] (paper footnote 3: an [=] direction is
    equivalent to a zero distance). *)

val elem_signs : elem -> Dir.signs
val elem_dir : elem -> Dir.t
(** The direction summarizing an element ([dir(dk)] in paper Table 2). *)

val elem_reverse : elem -> elem
val elem_union : elem -> elem -> elem
(** Smallest representable element covering both (exact distances are kept
    only when equal). *)

val elem_contains : elem -> int -> bool
val elem_subset : elem -> elem -> bool
val elem_is_zero : elem -> bool

(** {1 Vectors} *)

val of_list : elem list -> t
val zero : int -> t

val may_lex_negative : t -> bool
(** Does [Tuples(d)] contain a lexicographically negative tuple?
    (Basis of the dependence legality test, paper Section 3.2.) *)

val is_lex_positive_definite : t -> bool
(** Is every tuple in [Tuples(d)] lexicographically positive? *)

val mem : t -> int array -> bool
(** Tuple membership in [Tuples(d)]. *)

val subset : t -> t -> bool
(** Componentwise containment: [Tuples(a)] ⊆ [Tuples(b)]. *)

val elem_equal : elem -> elem -> bool
val elem_compare : elem -> elem -> int

val equal : t -> t -> bool
(** Explicit field-wise structural equality (no polymorphic [=]). *)

val compare : t -> t -> int
(** Explicit field-wise total order, identical to the order the
    polymorphic compare produced (length first, then elementwise): the
    output order of {!dedupe} is observable and must not change. *)

val hash : t -> int
(** Structural hash compatible with [equal] (memo-table keying). *)

val intern : t -> t
(** Canonical physically-shared representative (see {!Itf_mat.Hashcons}). *)

val id : t -> int
(** Dense intern id; equal ids = equal vectors. Not an ordering. *)

(** {1 Sets of vectors} *)

val set_may_lex_negative : t list -> t option
(** First vector (if any) whose tuple set contains a lex-negative tuple. *)

val dedupe : t list -> t list
(** Remove duplicates and vectors subsumed by another vector in the list. *)

(** {1 Text} *)

val pp_elem : Format.formatter -> elem -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** Parses ["(1, -1)"], ["(0, +)"], ["(0+, *, 2)"]...
    @raise Invalid_argument on malformed input. *)
