open Itf_ir
module Affine = Itf_bounds.Affine

type kind = Flow | Anti | Output

type dependence = { array : string; kind : kind; vector : Depvec.t }

(* ------------------------------------------------------------------ *)
(* Extended integers and intervals (for Banerjee-style feasibility)    *)
(* ------------------------------------------------------------------ *)

type ext = NegInf | Fin of int | PosInf

let ext_add a b =
  match (a, b) with
  | NegInf, PosInf | PosInf, NegInf ->
    invalid_arg "Analysis.ext_add: inf - inf"
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf
  | Fin x, Fin y -> Fin (x + y)

let ext_scale c = function
  | Fin x -> Fin (c * x)
  | NegInf -> if c > 0 then NegInf else if c < 0 then PosInf else Fin 0
  | PosInf -> if c > 0 then PosInf else if c < 0 then NegInf else Fin 0

let ext_le a b =
  match (a, b) with
  | NegInf, _ | _, PosInf -> true
  | PosInf, _ | _, NegInf -> false
  | Fin x, Fin y -> x <= y

type iv = ext * ext

let iv_scale c ((lo, hi) : iv) : iv =
  if c >= 0 then (ext_scale c lo, ext_scale c hi)
  else (ext_scale c hi, ext_scale c lo)

let iv_add ((a, b) : iv) ((c, d) : iv) : iv = (ext_add a c, ext_add b d)

let iv_contains ((lo, hi) : iv) x = ext_le lo (Fin x) && ext_le (Fin x) hi

(* ------------------------------------------------------------------ *)
(* Loop normalization                                                  *)
(* ------------------------------------------------------------------ *)

(* Iteration counts and bounds in normalized iteration-number space:
   x_k = l_k + s_k * t_k with t_k in [0 .. count_k - 1]. *)
type loop_info = {
  tvar : string;
  count : int option; (* None: statically unknown (symbolic bounds) *)
}

let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let loop_infos (nest : Nest.t) =
  List.mapi
    (fun k (l : Nest.loop) ->
      let tvar = Printf.sprintf "$t%d" k in
      let count =
        match (Expr.to_int l.lo, Expr.to_int l.hi, Expr.to_int l.step) with
        | Some lo, Some hi, Some s when s <> 0 ->
          Some (max 0 (fdiv (hi - lo) s + 1))
        | _ -> None
      in
      (l, { tvar; count }))
    nest.Nest.loops

(* The box of t_k and the delta range for a direction choice. *)
let t_box info : iv =
  match info.count with
  | Some c -> (Fin 0, Fin (c - 1))
  | None -> (Fin 0, PosInf)

let delta_range info sigma : iv =
  let span = match info.count with Some c -> Fin (c - 1) | None -> PosInf in
  match sigma with
  | 0 -> (Fin 0, Fin 0)
  | 1 -> (Fin 1, span)
  | _ -> (ext_scale (-1) span, Fin (-1))

(* ------------------------------------------------------------------ *)
(* Reference collection                                                *)
(* ------------------------------------------------------------------ *)

type ref_ = { arr : string; subs : Expr.t list; write : bool }

let rec loads_of_expr ~scalars (e : Expr.t) acc =
  match e with
  | Int _ -> acc
  | Var v ->
    (* A read of a scalar that the body also assigns is a dependence
       endpoint: model scalars as 0-dimensional arrays. *)
    if List.mem v scalars then { arr = v; subs = []; write = false } :: acc
    else acc
  | Neg a -> loads_of_expr ~scalars a acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Min (a, b) | Max (a, b) ->
    loads_of_expr ~scalars a (loads_of_expr ~scalars b acc)
  | Load { array; index } ->
    List.fold_right (loads_of_expr ~scalars) index
      ({ arr = array; subs = index; write = false } :: acc)
  | Call (_, args) -> List.fold_right (loads_of_expr ~scalars) args acc

let rec refs_of_stmt ~scalars (s : Stmt.t) =
  match s with
  | Stmt.Store ({ array; index }, rhs) ->
    { arr = array; subs = index; write = true }
    :: List.fold_right (loads_of_expr ~scalars) index
         (loads_of_expr ~scalars rhs [])
  | Stmt.Set (v, rhs) ->
    { arr = v; subs = []; write = true } :: loads_of_expr ~scalars rhs []
  | Stmt.Guard { lhs; rhs; body; _ } ->
    (* a guarded access may execute: treat it as unconditional (may-dep) *)
    loads_of_expr ~scalars lhs
      (loads_of_expr ~scalars rhs
         (List.concat_map (refs_of_stmt ~scalars) body))

(* ------------------------------------------------------------------ *)
(* Per-reference subscript preparation                                 *)
(* ------------------------------------------------------------------ *)

(* Note on non-rectangular nests: the normalization environment maps each
   index variable to [lo + step * t], but a triangular lower bound keeps
   its outer-variable references un-normalized, so source and sink bases
   share those {e residual} symbols. Subtracting the bases then conflates
   per-iteration quantities of two different iterations; the subtraction
   is still exact at the {e value} level (a strong-SIV pair
   [a x + beta = a x' + beta'] pins the value difference [x' - x]
   regardless of the residuals), but any reasoning in iteration-counter
   space — GCD over [a * step] coefficients, step divisibility, Banerjee
   intervals over counter boxes — silently assumes the residuals are
   equal, i.e. that the two iterations agree on the outer loops. An
   earlier version made exactly that mistake: under [do j = i, i + 3, 3]
   it proved [b(j + 1)] and [b(j - 3)] independent by step divisibility
   ([3 dt = 4]) even though the [i]-shifted value grids intersect one
   outer iteration apart (found by the differential fuzz harness, see
   test/corpus). Equations whose bases carry residuals are therefore
   screened only at the value level ({!screen_and_pin}) and excluded from
   the counter-space interval test; the rational Fourier-Motzkin
   refinement ({!fm_refutes}), which renormalizes source and sink
   independently, recovers precision for the non-rectangular cases. *)
type sub_info = {
  coeffs : int array; (* coefficient of t_k *)
  base : Expr.t;
  affine : bool;
}

let prep_sub infos (e : Expr.t) =
  let n = List.length infos in
  let env =
    List.map
      (fun ((l : Nest.loop), info) ->
        (l.Nest.var, Expr.add l.Nest.lo (Expr.mul l.Nest.step (Expr.var info.tvar))))
      infos
  in
  let tvars = List.map (fun (_, i) -> i.tvar) infos in
  let s = Affine.split ~vars:tvars (Expr.subst env e) in
  let coeffs = Array.make n 0 in
  List.iteri (fun k tv -> coeffs.(k) <- Affine.coeff s tv) tvars;
  { coeffs; base = s.Affine.base; affine = Affine.is_affine s }

(* ------------------------------------------------------------------ *)
(* Pair analysis                                                       *)
(* ------------------------------------------------------------------ *)

type dim_eq = {
  ok : bool; (* affine subscripts with a known constant base difference *)
  residual : bool; (* a base mentions an original loop variable *)
  ca : int array; (* coefficients of source iteration t *)
  cb : int array; (* coefficients of sink iteration t' *)
  c : int; (* constant: sum ca.t - sum cb.t' + c = 0 *)
}

(* [Exact d]: grid-aligned distance — the value difference of loop [k] is
   exactly [d * step_k] (equivalently, counter distance [d] when the
   grids align). [Valued q]: the value difference is exactly [q], but [q]
   is not a multiple of the step (possible only across shifted grids), so
   no [Dist] component can express it. *)
type pin = Unknown | Exact of int | Valued of int

exception Independent

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd a b = gcd (abs a) (abs b)

let dim_equations infos (a : ref_) (b : ref_) =
  let loop_vars = List.map (fun ((l : Nest.loop), _) -> l.Nest.var) infos in
  let mentions_loop_var e =
    List.exists (fun v -> Expr.mentions v e) loop_vars
  in
  List.map2
    (fun sa sb ->
      let sa = prep_sub infos sa and sb = prep_sub infos sb in
      if not (sa.affine && sb.affine) then
        { ok = false; residual = false; ca = [||]; cb = [||]; c = 0 }
      else
        (* Constant base difference: split the subtraction over all its
           free variables so that common symbolic terms (e.g. the loop
           bound [n] introduced by normalization) cancel exactly. *)
        let diff = Expr.sub sa.base sb.base in
        let s = Affine.split ~vars:(Expr.free_vars diff) diff in
        match (s.Affine.coeffs, Expr.to_int s.Affine.base) with
        | [], Some c ->
          let residual = mentions_loop_var sa.base || mentions_loop_var sb.base in
          { ok = true; residual; ca = sa.coeffs; cb = sb.coeffs; c }
        | _ -> { ok = false; residual = false; ca = [||]; cb = [||]; c = 0 })
    a.subs b.subs

let set_pin pins k p =
  (* Two dimensions may pin the same loop; inconsistent pins prove
     independence. [Exact d] and [Valued q] describe the same value
     difference when [q = d * step], but [Valued] is only produced when
     the step does not divide it, so any mix is a conflict. *)
  match (pins.(k), p) with
  | Unknown, p -> pins.(k) <- p
  | Exact d, Exact d' -> if d <> d' then raise Independent
  | Valued q, Valued q' -> if q <> q' then raise Independent
  | Exact _, Valued _ | Valued _, Exact _ -> raise Independent
  | _, Unknown -> ()

(* ZIV + GCD screening, and exact per-loop distance pinning. Raises
   [Independent] when some dimension can never be satisfied.

   Residual equations (bases sharing original loop variables between
   source and sink) are screened at the VALUE level only: with matching
   coefficients the equation reads [sum_k alpha_k * (x'_k - x_k) = c]
   over arbitrary integer value differences, so the GCD runs over the
   [alpha_k = ca_k / step_k] and a strong-SIV pair pins the value
   difference [c / alpha] — which yields a [Dist] only when the step
   divides it. Counter-space reasoning (GCD over [alpha * step], step
   divisibility) would be unsound there: shifted grids still intersect at
   non-multiples of the step. *)
let screen_and_pin infos n (eqs : dim_eq list) =
  let steps =
    Array.of_list
      (List.map (fun ((l : Nest.loop), _) -> Expr.to_int l.Nest.step) infos)
  in
  let pins = Array.make n Unknown in
  List.iter
    (fun eq ->
      if eq.ok then begin
        let nonzero =
          List.concat
            (List.init n (fun k ->
                 (if eq.ca.(k) <> 0 then [ `A k ] else [])
                 @ if eq.cb.(k) <> 0 then [ `B k ] else []))
        in
        (* ZIV: no index variables at all (residuals imply a nonzero
           coefficient, so ZIV equations never carry them). *)
        if nonzero = [] && eq.c <> 0 then raise Independent;
        if not eq.residual then begin
          (* GCD test in counter space. *)
          let g = Array.fold_left gcd (Array.fold_left gcd 0 eq.ca) eq.cb in
          if g > 0 && eq.c mod g <> 0 then raise Independent;
          (* Strong SIV: a*t_k - a*t'_k + c = 0 pins delta_k = c / a. *)
          match nonzero with
          | [ `A k; `B k' ] when k = k' && eq.ca.(k) = eq.cb.(k) ->
            let a = eq.ca.(k) in
            if eq.c mod a <> 0 then raise Independent;
            set_pin pins k (Exact (eq.c / a))
          | _ -> ()
        end
        else if Array.for_all2 ( = ) eq.ca eq.cb then begin
          (* Value-level screens; need alpha_k = ca_k / step_k. *)
          let alphas =
            Array.init n (fun k ->
                if eq.ca.(k) = 0 then Some 0
                else
                  match steps.(k) with
                  | Some s when s <> 0 -> Some (eq.ca.(k) / s)
                  | _ -> None)
          in
          if Array.for_all Option.is_some alphas then begin
            let alphas = Array.map Option.get alphas in
            let g = Array.fold_left gcd 0 alphas in
            if g > 0 && eq.c mod g <> 0 then raise Independent;
            match nonzero with
            | [ `A k; `B k' ] when k = k' ->
              let alpha = alphas.(k) in
              if eq.c mod alpha <> 0 then raise Independent;
              let q = eq.c / alpha in
              let s = Option.get steps.(k) in
              if q mod s = 0 then set_pin pins k (Exact (q / s))
              else set_pin pins k (Valued q)
            | _ -> ()
          end
        end
      end)
    eqs;
  pins

let sigma_feasible infos (pins : pin array) eqs (sigma : int array) =
  List.for_all
    (fun eq ->
      (not eq.ok)
      ||
      let iv = ref ((Fin 0 : ext), (Fin 0 : ext)) in
      List.iteri
        (fun k (_, info) ->
          let drange =
            match pins.(k) with
            | Exact d -> ((Fin d : ext), (Fin d : ext))
            | Unknown | Valued _ -> delta_range info sigma.(k)
          in
          let contrib =
            iv_add
              (iv_scale (eq.ca.(k) - eq.cb.(k)) (t_box info))
              (iv_scale (-eq.cb.(k)) drange)
          in
          iv := iv_add !iv contrib)
        infos;
      iv_contains !iv (-eq.c))
    eqs

(* ------------------------------------------------------------------ *)
(* Exact refinement by Fourier-Motzkin feasibility                     *)
(* ------------------------------------------------------------------ *)

module Fourier = Itf_bounds.Fourier

(* Fully-normalized value of each index variable over the t vars: bound
   references to outer variables are substituted through, so (unlike
   {!prep_sub}) source and sink never share per-iteration symbols. *)
let full_env infos =
  List.fold_left
    (fun env ((l : Nest.loop), info) ->
      let lo = Expr.subst env l.Nest.lo in
      (l.Nest.var, Expr.add lo (Expr.mul l.Nest.step (Expr.var info.tvar)))
      :: env)
    [] infos

(* The decoupled interval test ignores the coupling that triangular bounds
   introduce (e.g. LU's i >= k + 1 forces the k-distance of its a(i,k)
   accesses to be positive). When some bound references a loop variable,
   refine each surviving direction vector with a full rational
   Fourier-Motzkin feasibility check over source (t) and sink (u)
   iteration variables: value-level bound constraints, the sigma/pin
   constraints, and the subscript equalities, all affine with symbolic
   invariant parts. Sound: only rationally-infeasible vectors are pruned. *)
let fm_refutes infos (pins : pin array) eqs (a : ref_) (b : ref_)
    (sigma : int array) =
  let n = List.length infos in
  let tvars = Array.of_list (List.map (fun (_, i) -> i.tvar) infos) in
  let uvars = Array.map (fun tv -> "$u" ^ String.sub tv 2 (String.length tv - 2)) tvars in
  let vars = Array.append tvars uvars in
  let env = full_env infos in
  (* split an expression over the t vars; [primed] shifts to the u copy *)
  let split ~primed (e : Expr.t) =
    let s = Affine.split ~vars:(Array.to_list tvars) e in
    if not (Affine.is_affine s) then None
    else begin
      let coeffs = Array.make (2 * n) 0 in
      Array.iteri
        (fun k tv ->
          coeffs.((if primed then n else 0) + k) <- Affine.coeff s tv)
        tvars;
      Some (coeffs, s.Affine.base)
    end
  in
  let ineqs = ref [] in
  let add coeffs base = ineqs := Fourier.ineq coeffs base :: !ineqs in
  (* e >= 0 constraints, in both the source and the sink copy *)
  let add_nonneg (e : Expr.t) =
    List.iter
      (fun primed ->
        match split ~primed e with
        | Some (coeffs, base) -> add coeffs base
        | None -> ())
      [ false; true ]
  in
  (* bounds of each loop, at the value level *)
  List.iter
    (fun ((l : Nest.loop), info) ->
      let x = Expr.subst env (Expr.var l.Nest.var) in
      (* iteration counters are non-negative *)
      add_nonneg (Expr.var info.tvar);
      match Expr.to_int l.Nest.step with
      | Some s when s <> 0 ->
        let lower_terms = Itf_bounds.Classify.bound_terms Itf_bounds.Classify.Lower ~step_sign:s l.Nest.lo in
        let upper_terms = Itf_bounds.Classify.bound_terms Itf_bounds.Classify.Upper ~step_sign:s l.Nest.hi in
        List.iter
          (fun term ->
            let term = Expr.subst env term in
            if s > 0 then add_nonneg (Expr.sub x term)
            else add_nonneg (Expr.sub term x))
          lower_terms;
        List.iter
          (fun term ->
            let term = Expr.subst env term in
            if s > 0 then add_nonneg (Expr.sub term x)
            else add_nonneg (Expr.sub x term))
          upper_terms
      | _ -> ())
    infos;
  (* Sigma / pin constraints. [Exact]/[Valued] pins and sigmas all speak
     about the VALUE difference X'_k - X_k (whose affine bases cancel
     exactly under the full normalization): [Exact d] means [d * step],
     [Valued q] means [q], and a sigma constrains the value-difference
     sign corrected for execution direction. *)
  let loops = Array.of_list (List.map fst infos) in
  Array.iteri
    (fun k s ->
      let x = Expr.subst env (Expr.var loops.(k).Nest.var) in
      match (split ~primed:false x, split ~primed:true x) with
      | Some (ct, _), Some (cu, _) -> (
        let dcoeffs = Array.init (2 * n) (fun i -> cu.(i) - ct.(i)) in
        let step_sign =
          match Expr.to_int loops.(k).Nest.step with
          | Some st -> compare st 0
          | None -> 1
        in
        let step_mag =
          match Expr.to_int loops.(k).Nest.step with
          | Some st -> abs st
          | None -> 1
        in
        let ge_const c =
          (* X' - X - c >= 0 *)
          add dcoeffs (Expr.int (-c))
        in
        let le_const c =
          (* c - (X' - X) >= 0 *)
          add (Array.map (fun v -> -v) dcoeffs) (Expr.int c)
        in
        match pins.(k) with
        | Exact d ->
          let dv = d * step_mag * step_sign in
          ge_const dv;
          le_const dv
        | Valued q ->
          (* exact value difference; the counter direction (sigma) is
             genuinely unconstrained across shifted grids *)
          ge_const q;
          le_const q
        | Unknown ->
          (* A sigma is a counter-order direction; it determines the
             value-difference sign only when the loop's grids align
             (invariant lower bound). For shifted grids leave the
             dimension unconstrained — conservative. *)
          let invariant_lo =
            not
              (List.exists
                 (fun ((l' : Nest.loop), _) ->
                   Expr.mentions l'.Nest.var loops.(k).Nest.lo)
                 infos)
          in
          if invariant_lo then begin
            if s = 0 then begin
              ge_const 0;
              le_const 0
            end
            else if s * step_sign > 0 then ge_const 1
            else le_const (-1)
          end)
      | _ -> ())
    sigma;
  (* subscript equalities, fully normalized *)
  List.iter2
    (fun sub_a sub_b ->
      match
        ( split ~primed:false (Expr.subst env sub_a),
          split ~primed:true (Expr.subst env sub_b) )
      with
      | Some (ca, base_a), Some (cb, base_b) -> (
        let diff = Expr.sub base_a base_b in
        let s = Affine.split ~vars:(Expr.free_vars diff) diff in
        match (s.Affine.coeffs, Expr.to_int s.Affine.base) with
        | [], Some c ->
          let h = Array.init (2 * n) (fun k -> ca.(k) - cb.(k)) in
          add h (Expr.int c);
          add (Array.map (fun x -> -x) h) (Expr.int (-c))
        | _ -> ())
      | _ -> ())
    a.subs b.subs;
  ignore eqs;
  Fourier.definitely_infeasible { Fourier.vars; ineqs = !ineqs }

(* All sign vectors in {-1,0,1}^n whose first nonzero entry is +1 and which
   agree with the pins. *)
let lex_positive_sigmas n (pins : pin array) =
  let out = ref [] in
  let sigma = Array.make n 0 in
  let rec go k any_nonzero =
    if k = n then begin
      if any_nonzero then out := Array.copy sigma :: !out
    end
    else
      let choices =
        match pins.(k) with
        | Exact d -> [ compare d 0 ]
        | Unknown | Valued _ -> if any_nonzero then [ -1; 0; 1 ] else [ 0; 1 ]
      in
      List.iter
        (fun s ->
          if s >= 0 || any_nonzero then begin
            sigma.(k) <- s;
            go (k + 1) (any_nonzero || s <> 0);
            sigma.(k) <- 0
          end)
        choices
  in
  go 0 false;
  !out

let vector_of_sigma infos (pins : pin array) (sigma : int array) : Depvec.t =
  let step_signs =
    Array.of_list
      (List.map
         (fun ((l : Nest.loop), _) ->
           match Expr.to_int l.Nest.step with Some s -> compare s 0 | None -> 1)
         infos)
  in
  Array.mapi
    (fun k s ->
      match pins.(k) with
      | Exact d -> Depvec.dist d
      | Valued q ->
        (* the value difference is exactly [q], but never a step multiple,
           so only the execution-direction-corrected sign is expressible *)
        Depvec.dir (if q * step_signs.(k) > 0 then Dir.Pos else Dir.Neg)
      | Unknown ->
        if s = 0 then Depvec.dist 0
        else Depvec.dir (if s > 0 then Dir.Pos else Dir.Neg))
    sigma

(* Merge vectors differing in exactly one component (componentwise union is
   then exact); iterate to a fixpoint to re-compact the sign enumeration. *)
let rec merge_pass (vs : Depvec.t list) =
  let merged = ref false in
  let try_merge (a : Depvec.t) (b : Depvec.t) =
    if Array.length a <> Array.length b then None
    else begin
      let diff = ref [] in
      Array.iteri (fun k ea -> if ea <> b.(k) then diff := k :: !diff) a;
      match !diff with
      | [ k ] ->
        let u = Array.copy a in
        u.(k) <- Depvec.elem_union a.(k) b.(k);
        Some u
      | _ -> None
    end
  in
  let rec go acc = function
    | [] -> List.rev acc
    | v :: rest -> (
      let rec find_partner seen = function
        | [] -> None
        | w :: ws -> (
          match try_merge v w with
          | Some u -> Some (u, List.rev_append seen ws)
          | None -> find_partner (w :: seen) ws)
      in
      match find_partner [] rest with
      | Some (u, rest') ->
        merged := true;
        go acc (u :: rest')
      | None -> go (v :: acc) rest)
  in
  let vs' = go [] (List.sort_uniq Depvec.compare vs) in
  if !merged then merge_pass vs' else vs'

let pair_vectors infos n (a : ref_) (b : ref_) =
  if List.length a.subs <> List.length b.subs then
    (* Mismatched arity: treat as potentially aliasing everywhere. *)
    [ Array.init n (fun _ -> Depvec.dir Dir.Any) ]
  else
    match
      let eqs = dim_equations infos a b in
      let pins = screen_and_pin infos n eqs in
      Some (eqs, pins)
    with
    | exception Independent -> []
    | None -> []
    | Some (eqs, pins) ->
      (* Residual equations are sound only at the value level (their
         screens already ran); hide them from the counter-space interval
         test. *)
      let eqs =
        List.map (fun eq -> if eq.residual then { eq with ok = false } else eq) eqs
      in
      let pin_in_range k = function
        | Unknown | Valued _ -> true
        | Exact d -> (
          match (List.nth infos k |> snd).count with
          | Some c -> abs d <= c - 1
          | None -> true)
      in
      if not (Array.for_all Fun.id (Array.mapi pin_in_range pins)) then []
      else
        (* Refinement only pays when some bound couples loop variables. *)
        let non_rectangular =
          List.exists
            (fun ((l : Nest.loop), _) ->
              let mentions_loop e =
                List.exists
                  (fun ((l' : Nest.loop), _) ->
                    Expr.mentions l'.Nest.var e)
                  infos
              in
              mentions_loop l.Nest.lo || mentions_loop l.Nest.hi)
            infos
        in
        let sigmas =
          List.filter
            (fun sigma ->
              sigma_feasible infos pins eqs sigma
              && not (non_rectangular && fm_refutes infos pins eqs a b sigma))
            (lex_positive_sigmas n pins)
        in
        merge_pass (List.map (vector_of_sigma infos pins) sigmas)

let dependences (nest : Nest.t) =
  let infos = loop_infos nest in
  let n = List.length infos in
  let scalars = List.concat_map Stmt.defined_vars nest.Nest.body in
  let refs = List.concat_map (refs_of_stmt ~scalars) nest.Nest.body in
  let out = ref [] in
  List.iter
    (fun (a : ref_) ->
      List.iter
        (fun (b : ref_) ->
          if a.arr = b.arr && (a.write || b.write) then begin
            let kind =
              match (a.write, b.write) with
              | true, true -> Output
              | true, false -> Flow
              | false, true -> Anti
              | false, false -> assert false
            in
            List.iter
              (fun vector -> out := { array = a.arr; kind; vector } :: !out)
              (pair_vectors infos n a b)
          end)
        refs)
    refs;
  List.sort_uniq compare (List.rev !out)

(* Memoized by interned-nest id: dependence analysis is pure in the nest
   and costs milliseconds, while searches (and repeated searches over the
   same kernel) re-ask for the same nest's vectors constantly. The compute
   runs outside the table lock; racing domains recompute the same
   deterministic list, so either store wins. Vectors are interned so every
   caller shares one canonical list. *)
module VMemo = Itf_mat.Hashcons.Memo (Itf_mat.Hashcons.Int_key)

let vectors_memo : Depvec.t list VMemo.t = VMemo.create "dep.vectors"

let vectors nest =
  VMemo.find_or_add vectors_memo (Itf_ir.Intern.nest_id nest) (fun () ->
      List.map Depvec.intern
        (Depvec.dedupe (List.map (fun d -> d.vector) (dependences nest))))

(* ------------------------------------------------------------------ *)
(* Statement-level dependences                                         *)
(* ------------------------------------------------------------------ *)

type statement_edge = { src : int; dst : int; carried : bool }

(* Is a same-iteration (all-zero) conflict between the two references
   feasible? *)
let zero_feasible infos n a b =
  List.length a.subs = List.length b.subs
  &&
  match
    let eqs = dim_equations infos a b in
    let pins = screen_and_pin infos n eqs in
    (eqs, pins)
  with
  | exception Independent -> false
  | eqs, pins ->
    (* A [Valued] pin means the value difference is nonzero, so the two
       references never collide in the same iteration. *)
    Array.for_all
      (function Unknown | Exact 0 -> true | Exact _ | Valued _ -> false)
      pins
    && sigma_feasible infos pins
         (List.map (fun eq -> if eq.residual then { eq with ok = false } else eq) eqs)
         (Array.make n 0)

(* Lex-positive (carried) conflict from [a]'s iteration to a later
   iteration of [b]? *)
let carried_feasible infos n a b = pair_vectors infos n a b <> []

let statement_edges (nest : Nest.t) =
  let infos = loop_infos nest in
  let n = List.length infos in
  let scalars = List.concat_map Stmt.defined_vars nest.Nest.body in
  let tagged =
    List.concat
      (List.mapi
         (fun idx s -> List.map (fun r -> (idx, r)) (refs_of_stmt ~scalars s))
         nest.Nest.body)
  in
  let edges = Hashtbl.create 16 in
  List.iter
    (fun (p, a) ->
      List.iter
        (fun (q, b) ->
          if a.arr = b.arr && (a.write || b.write) then begin
            if carried_feasible infos n a b then
              Hashtbl.replace edges (p, q, true) ();
            (* loop-independent: source textually first *)
            if p < q && zero_feasible infos n a b then
              Hashtbl.replace edges (p, q, false) ()
          end)
        tagged)
    tagged;
  Hashtbl.fold (fun (src, dst, carried) () acc -> { src; dst; carried } :: acc)
    edges []
  |> List.sort compare

let fusion_preventing (nest : Nest.t) ~first ~second =
  let infos = loop_infos nest in
  let n = List.length infos in
  (* Scalars of either body count: a shared temporary serializes. *)
  let scalars = List.concat_map Stmt.defined_vars (first @ second) in
  let refs body = List.concat_map (refs_of_stmt ~scalars) body in
  let firsts = refs first and seconds = refs second in
  List.exists
    (fun b ->
      List.exists
        (fun a ->
          b.arr = a.arr && (b.write || a.write)
          && carried_feasible infos n b a)
        firsts)
    seconds

let pp_kind ppf = function
  | Flow -> Format.pp_print_string ppf "flow"
  | Anti -> Format.pp_print_string ppf "anti"
  | Output -> Format.pp_print_string ppf "output"

let pp_dependence ppf d =
  Format.fprintf ppf "%a %s %a" pp_kind d.kind d.array Depvec.pp d.vector
