type t = Zero | Pos | Neg | NonNeg | NonPos | NonZero | Any

type signs = { neg : bool; zero : bool; pos : bool }

let signs = function
  | Zero -> { neg = false; zero = true; pos = false }
  | Pos -> { neg = false; zero = false; pos = true }
  | Neg -> { neg = true; zero = false; pos = false }
  | NonNeg -> { neg = false; zero = true; pos = true }
  | NonPos -> { neg = true; zero = true; pos = false }
  | NonZero -> { neg = true; zero = false; pos = true }
  | Any -> { neg = true; zero = true; pos = true }

let of_signs = function
  | { neg = false; zero = true; pos = false } -> Zero
  | { neg = false; zero = false; pos = true } -> Pos
  | { neg = true; zero = false; pos = false } -> Neg
  | { neg = false; zero = true; pos = true } -> NonNeg
  | { neg = true; zero = true; pos = false } -> NonPos
  | { neg = true; zero = false; pos = true } -> NonZero
  | { neg = true; zero = true; pos = true } -> Any
  | { neg = false; zero = false; pos = false } ->
    invalid_arg "Dir.of_signs: empty sign set"

let of_int x = if x > 0 then Pos else if x < 0 then Neg else Zero

let may_neg d = (signs d).neg
let may_zero d = (signs d).zero
let may_pos d = (signs d).pos

let contains d x =
  let s = signs d in
  if x > 0 then s.pos else if x < 0 then s.neg else s.zero

let subset a b =
  let sa = signs a and sb = signs b in
  ((not sa.neg) || sb.neg) && ((not sa.zero) || sb.zero) && ((not sa.pos) || sb.pos)

let reverse d =
  let s = signs d in
  of_signs { neg = s.pos; zero = s.zero; pos = s.neg }

let union a b =
  let sa = signs a and sb = signs b in
  of_signs
    { neg = sa.neg || sb.neg; zero = sa.zero || sb.zero; pos = sa.pos || sb.pos }

(* merge_lex a b: sign set of a*N + b for N >> |b|: for each pair of
   realizable signs (sa, sb), the result sign is sa if sa <> 0, else sb. *)
let merge_lex a b =
  let sa = signs a and sb = signs b in
  of_signs
    {
      neg = sa.neg || (sa.zero && sb.neg);
      zero = sa.zero && sb.zero;
      pos = sa.pos || (sa.zero && sb.pos);
    }

(* Explicit constructor-order tag — [t] is a plain enum, so this equals
   what the polymorphic compare produced, without relying on it. *)
let tag = function
  | Zero -> 0
  | Pos -> 1
  | Neg -> 2
  | NonNeg -> 3
  | NonPos -> 4
  | NonZero -> 5
  | Any -> 6

let equal (a : t) (b : t) = tag a = tag b
let compare (a : t) (b : t) = Int.compare (tag a) (tag b)

let to_string = function
  | Zero -> "0"
  | Pos -> "+"
  | Neg -> "-"
  | NonNeg -> "0+"
  | NonPos -> "0-"
  | NonZero -> "+-"
  | Any -> "*"

let of_string = function
  | "0" -> Some Zero
  | "+" -> Some Pos
  | "-" -> Some Neg
  | "0+" | "+0" -> Some NonNeg
  | "0-" | "-0" -> Some NonPos
  | "+-" | "-+" | "#" -> Some NonZero
  | "*" -> Some Any
  | _ -> None

let pp ppf d = Format.pp_print_string ppf (to_string d)
