(** Direction values for dependence-vector entries (paper Definition 3.1).

    A direction value denotes a set of integers by sign:
    [Pos] = [+] (all positive), [Neg] = [-], [NonNeg] = [0+], [NonPos] = [0-],
    [NonZero] = [+-], [Any] = [*], and [Zero] (the paper folds this into the
    zero distance; it appears here so the direction algebra is closed). *)

type t = Zero | Pos | Neg | NonNeg | NonPos | NonZero | Any

type signs = { neg : bool; zero : bool; pos : bool }
(** Which signs the value may take. Never all-false. *)

val signs : t -> signs
val of_signs : signs -> t
(** @raise Invalid_argument on the empty sign set. *)

val of_int : int -> t
(** Sign of a concrete distance. *)

val may_neg : t -> bool
val may_zero : t -> bool
val may_pos : t -> bool

val contains : t -> int -> bool
(** [contains d x] — is the integer [x] in the set denoted by [d]? *)

val subset : t -> t -> bool
(** [subset a b] — is [S(a)] contained in [S(b)]? *)

val reverse : t -> t
(** Negation of the denoted set (paper Table 2, [reverse] row). *)

val union : t -> t -> t

val merge_lex : t -> t -> t
(** Lexicographic combination used by [Coalesce]'s [mergedirs] (paper
    Table 2): the sign of the linearized distance [outer * N + inner] with
    [N] larger than any inner distance — the outer sign when nonzero, the
    inner sign when the outer is zero. E.g. [merge_lex Pos Neg = Pos],
    [merge_lex Zero d = d], [merge_lex NonNeg Neg = Any]... computed over
    sign sets. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order by constructor declaration order (identical to the order
    the polymorphic compare gave this enum). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option
(** Parses ["0" "+" "-" "0+" "0-" "+-" "*"]. *)
