(** [loopt serve] — a long-running search daemon speaking JSONL.

    One JSON object per line on stdin (responses on stdout) and,
    optionally, on a Unix-domain socket with one thread per connection.
    Requests are no longer serialized through a global lock: a bounded
    admission queue feeds a pool of up to [workers] worker domains
    (shared with the engine's candidate fan-out via
    {!Itf_opt.Pool.shared}), so independent searches run truly in
    parallel. Every search still shares the process-wide hash-cons
    intern tables, the canonicalization memo and the exact-objective
    memos ({!Itf_opt.Search}) — all sharded and safe for concurrent
    use — so the second identical-shaped request is answered mostly from
    those tables, and an {e exactly} identical request is answered from
    a bounded LRU response cache without running the engine at all.

    {b Determinism}: result payloads are byte-identical whether the
    server runs one worker or eight, cold or warm — the engine's orders
    are structural and the memoized objectives return bit-identical
    floats regardless of which worker warmed them (DESIGN.md §13). Under
    load responses may complete out of request order; clients correlate
    by ["id"]. With [workers = 1] responses come back in request order.

    {b Scheduling}: when [queue_depth] searches are already waiting, a
    new search is shed immediately with [status = "overloaded"] instead
    of stalling the client. A request whose deadline expires while it
    waits in the queue returns [status = "degraded"] with
    [cut = "queue:deadline"] without running the engine (and is never
    cached). Introspection ops are exempt from shedding.

    {b Request} fields: ["nest"] (required; loop-nest source text),
    ["id"] (echoed verbatim), ["objective"] (["locality"] (default) or
    ["parallel"]), ["params"] (object of integers), ["procs"], ["steps"],
    ["beam"], ["exact_topk"] ([0] disables the tier-0 screen),
    ["tier0_only"], ["deadline_ms"], ["max_nodes"]. The deadline is
    measured from receipt, so queueing delay counts against it.

    {b Ops}: [{"op": "shutdown"}] drains the queue and every running
    worker, then stops the server (its response is the last one out);
    [{"op": "status"}] returns a live snapshot (uptime, request
    counters, latency quantiles from the [serve.request_us] histogram,
    queue depth/capacity/shed count and wait quantiles, busy workers,
    per-phase time breakdown from the [engine.phase_us] histograms,
    cache and hash-cons intern-table health, and the recent slow
    requests); [{"op": "metrics"}] returns the whole registry in the
    Prometheus text exposition format under a ["metrics"] string field.
    Any other ["op"] is an error response.

    {b Response} fields (search): ["id"], ["status"] ([ok] — complete;
    [degraded] — budget expired, best-so-far answer plus a ["cut"]
    checkpoint name; [overloaded] — shed at admission, with an
    ["error"] message; [error] — malformed request, unparseable nest,
    unscoreable nest), ["score"], ["sequence"], ["canonical"],
    ["explored"], ["exact_evals"], ["cached"], ["time_ms"]. Errors are
    responses, never crashes. Only complete outcomes enter the response
    cache, and no wall-clock-derived value enters the cache key or the
    cached body, so a cached repeat replays the original search payload
    byte-identically with only ["cached"]/["time_ms"] fresh — and a
    cached answer is never a previously degraded one.

    {b Slow log & sampling} (DESIGN.md §12): every search request lands
    in a bounded ring of request records (id, fingerprint, status, wall
    time, per-phase breakdown, cache hit). A request is {e slow} when its
    wall time reaches [slow_ms] or its status is not [ok]; the newest
    slow records appear in the status snapshot. When [trace_out] is set,
    spans are captured per request and {e retained} by
    {!Itf_obs.Tracer.head_keep} on the request fingerprint
    ([sample_rate]) — deterministic, so reruns keep the same traces —
    with slow requests always retained (tail-based keep); retained
    requests also carry a self-time profile ({!Itf_obs.Profile}) in
    their ring record. *)

type t
(** Server state: scheduler (admission queue + worker pool), response
    cache, metrics registry, tracer, request ring. *)

val default_max_cache : int
(** Default response-cache capacity (entries). *)

val default_slow_ms : float
(** Default slow-request threshold (milliseconds). *)

val default_workers : int
(** Default worker count ([1] — serialized, responses in request
    order). *)

val default_queue_depth : int
(** Default admission-queue capacity; searches beyond it are shed as
    [status = "overloaded"]. *)

val create :
  ?domains:int ->
  ?default_deadline_ms:float ->
  ?max_cache:int ->
  ?metrics_out:string ->
  ?trace_out:string ->
  ?slow_ms:float ->
  ?sample_rate:float ->
  ?recent:int ->
  ?workers:int ->
  ?queue_depth:int ->
  unit ->
  t
(** [create ()] builds a server. [domains] is passed to every
    {!Itf_opt.Engine.search}; [default_deadline_ms] applies to requests
    that carry no ["deadline_ms"] of their own; [max_cache] (default
    {!default_max_cache}, [0] disables caching) bounds the LRU response
    cache; [metrics_out]/[trace_out] name files rewritten after every
    request with the {!Itf_obs.Metrics} dump and the retained span
    trace. [slow_ms] (default {!default_slow_ms}) sets the slow-log
    threshold; [sample_rate] (default [1.] — keep everything) the
    deterministic head-sampling rate for trace retention; [recent]
    (default 128) the request-ring capacity. [workers] (default
    {!default_workers}, clamped to [>= 1]) bounds how many requests run
    concurrently; [queue_depth] (default {!default_queue_depth}) bounds
    how many admitted searches may wait before new ones are shed. *)

val metrics : t -> Itf_obs.Metrics.t
(** The server's metrics registry (shared with every search it runs). *)

val handle_line : t -> string -> Itf_obs.Json.t * bool
(** [handle_line t line] answers one JSONL request synchronously: the
    request is admitted through the scheduler like any other, and the
    call blocks until its response lands. Returns the response value and
    whether the request asked the server to stop. Never raises —
    malformed input and engine failures become [status = "error"]
    responses. Safe to call from several threads at once (the
    concurrency tests do). Exposed for tests and simple embedding;
    {!run} pipelines requests instead of blocking per line. *)

val run : ?socket:string -> t -> unit
(** [run t] serves stdin/stdout until EOF or a shutdown request; with
    [socket], also listens on that Unix-domain socket path (removed and
    re-created), one thread per connection. Requests are pipelined: the
    reader admits them as they arrive and responses are written in
    completion order under a per-channel lock. Drains in-flight
    requests, then closes the listener and live connections on the way
    out and writes the final metrics/trace dumps. *)
